package ttsv_test

// Facade tests for the observability surface: metrics snapshots, NDJSON
// span tracing, and the enable/disable switches, exercised exactly as a
// downstream user would.

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	ttsv "repro"
)

func TestMetricsThroughFacade(t *testing.T) {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	before := ttsv.Metrics().Counters["sparse.cg.solves"]
	if _, _, err := ttsv.SolveReferenceStats(s, ttsv.DefaultResolution()); err != nil {
		t.Fatal(err)
	}
	snap := ttsv.Metrics()
	if got := snap.Counters["sparse.cg.solves"]; got != before+1 {
		t.Errorf("sparse.cg.solves = %d, want %d", got, before+1)
	}
	h, ok := snap.Histograms["sparse.cg.iterations"]
	if !ok {
		t.Fatal("no sparse.cg.iterations histogram in snapshot")
	}
	if h.Count == 0 || h.Mean() <= 0 {
		t.Errorf("iterations histogram empty: count=%d mean=%g", h.Count, h.Mean())
	}
	if snap.String() == "" {
		t.Error("snapshot String is empty")
	}
}

func TestTraceContextEmitsSolverSpans(t *testing.T) {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := ttsv.NewTracer(&buf)
	ctx := ttsv.TraceContext(context.Background(), tr)
	if _, _, err := ttsv.SolveReferenceStatsCtx(ctx, s, ttsv.DefaultResolution()); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r struct {
			Span string `json:"span"`
		}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad NDJSON %q: %v", line, err)
		}
		seen[r.Span] = true
	}
	for _, want := range []string{"fem.stack", "fem.solve", "fem.assemble", "fem.precond", "sparse.cg"} {
		if !seen[want] {
			t.Errorf("trace missing %q span (have %v)", want, seen)
		}
	}
}

func TestDisableMetricsStopsRecording(t *testing.T) {
	defer ttsv.EnableMetrics()
	ttsv.DisableMetrics()
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ttsv.SolveReferenceStats(s, ttsv.DefaultResolution()); err != nil {
		t.Fatal(err)
	}
	snap := ttsv.Metrics()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("disabled registry recorded %d series", len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
	}
	ttsv.EnableMetrics()
	if _, _, err := ttsv.SolveReferenceStats(s, ttsv.DefaultResolution()); err != nil {
		t.Fatal(err)
	}
	if ttsv.Metrics().Counters["sparse.cg.solves"] != 1 {
		t.Errorf("re-enabled registry counted %d solves, want 1", ttsv.Metrics().Counters["sparse.cg.solves"])
	}
	ttsv.ResetMetrics()
	if n := ttsv.Metrics().Counters["sparse.cg.solves"]; n != 0 {
		t.Errorf("after reset, sparse.cg.solves = %d, want 0", n)
	}
}

func TestBoundedSweepCacheThroughFacade(t *testing.T) {
	c := ttsv.NewSweepCacheSize(1)
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	jobs := ttsv.Batch{}.
		Add("a", s, ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}).
		Add("b", s, ttsv.Model1D{}).
		Add("a2", s, ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()})
	if _, err := ttsv.Sweep(context.Background(), jobs, ttsv.SweepOptions{Workers: 1, Cache: c}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("capacity-1 cache holds %d entries", c.Len())
	}
	_, _, ev := c.Counters()
	if ev == 0 {
		t.Error("capacity-1 cache over 2 distinct jobs reported no evictions")
	}
}
