package ttsv_test

// The benchmark harness regenerates the cost side of every table and figure
// in the paper's evaluation:
//
//   BenchmarkFig4Sweep*      Fig. 4   radius sweep per model
//   BenchmarkFig5Sweep*      Fig. 5   liner sweep per model
//   BenchmarkFig6Sweep*      Fig. 6   substrate sweep per model
//   BenchmarkFig7Sweep*      Fig. 7   cluster sweep per model
//   BenchmarkTable1*         Table I  Model B solve cost vs segment count
//   BenchmarkCaseStudy*      §IV-E    DRAM-µP unit-cell analysis per method
//   BenchmarkReference*      the FVM solve standing in for the paper's FEM
//   BenchmarkSweep*          the batch engine: sequential vs parallel vs cached
//
// plus the ablations DESIGN.md calls out: dense vs sparse Model B solves,
// FVM preconditioner choice, FVM mesh refinement, and the topological
// network assembly vs the transcribed three-plane equations for Model A.

import (
	"context"
	"runtime"
	"testing"
	"time"

	ttsv "repro"
	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/linalg"
	"repro/internal/sparse"
	"repro/internal/units"
)

func mustFig4(b *testing.B, rUM float64) *ttsv.Stack {
	b.Helper()
	s, err := ttsv.Fig4Block(units.UM(rUM))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchSweep(b *testing.B, m ttsv.Model, stacks []*ttsv.Stack) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range stacks {
			if _, err := m.Solve(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func fig4Stacks(b *testing.B) []*ttsv.Stack {
	b.Helper()
	var out []*ttsv.Stack
	for _, r := range []float64{1, 2, 5, 8, 12, 16, 20} {
		out = append(out, mustFig4(b, r))
	}
	return out
}

func BenchmarkFig4SweepModelA(b *testing.B) {
	benchSweep(b, ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}, fig4Stacks(b))
}

func BenchmarkFig4SweepModelB100(b *testing.B) {
	benchSweep(b, ttsv.NewModelB(100), fig4Stacks(b))
}

func BenchmarkFig4SweepModel1D(b *testing.B) {
	benchSweep(b, ttsv.Model1D{}, fig4Stacks(b))
}

func fig5Stacks(b *testing.B) []*ttsv.Stack {
	b.Helper()
	var out []*ttsv.Stack
	for _, tl := range []float64{0.5, 1, 1.5, 2, 2.5, 3} {
		s, err := ttsv.Fig5Block(units.UM(tl))
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func BenchmarkFig5SweepModelA(b *testing.B) {
	benchSweep(b, ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}, fig5Stacks(b))
}

func BenchmarkFig5SweepModelB100(b *testing.B) {
	benchSweep(b, ttsv.NewModelB(100), fig5Stacks(b))
}

func BenchmarkFig5SweepModel1D(b *testing.B) {
	benchSweep(b, ttsv.Model1D{}, fig5Stacks(b))
}

func fig6Stacks(b *testing.B) []*ttsv.Stack {
	b.Helper()
	var out []*ttsv.Stack
	for _, tsi := range []float64{5, 10, 20, 40, 60, 80} {
		s, err := ttsv.Fig6Block(units.UM(tsi))
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func BenchmarkFig6SweepModelA(b *testing.B) {
	benchSweep(b, ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}, fig6Stacks(b))
}

func BenchmarkFig6SweepModelB100(b *testing.B) {
	benchSweep(b, ttsv.NewModelB(100), fig6Stacks(b))
}

func BenchmarkFig6SweepModel1D(b *testing.B) {
	benchSweep(b, ttsv.Model1D{}, fig6Stacks(b))
}

func fig7Stacks(b *testing.B) []*ttsv.Stack {
	b.Helper()
	var out []*ttsv.Stack
	for _, n := range []int{1, 2, 4, 9, 16} {
		s, err := ttsv.Fig7Block(n)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

func BenchmarkFig7SweepModelA(b *testing.B) {
	benchSweep(b, ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}, fig7Stacks(b))
}

func BenchmarkFig7SweepModelB100(b *testing.B) {
	benchSweep(b, ttsv.NewModelB(100), fig7Stacks(b))
}

func BenchmarkFig7SweepModel1D(b *testing.B) {
	benchSweep(b, ttsv.Model1D{}, fig7Stacks(b))
}

// Table I: the solve-time column — Model B cost versus segment count on the
// Fig. 5 geometry, plus Model A and the 1-D model for scale.
func benchTable1(b *testing.B, m ttsv.Model) {
	b.Helper()
	s, err := ttsv.Fig5Block(units.UM(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1ModelB1(b *testing.B)   { benchTable1(b, ttsv.NewModelB(1)) }
func BenchmarkTable1ModelB20(b *testing.B)  { benchTable1(b, ttsv.NewModelB(20)) }
func BenchmarkTable1ModelB100(b *testing.B) { benchTable1(b, ttsv.NewModelB(100)) }
func BenchmarkTable1ModelB500(b *testing.B) { benchTable1(b, ttsv.NewModelB(500)) }
func BenchmarkTable1ModelA(b *testing.B) {
	benchTable1(b, ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()})
}
func BenchmarkTable1Model1D(b *testing.B) { benchTable1(b, ttsv.Model1D{}) }

// §IV-E: the DRAM-µP case study per method.
func benchCaseStudy(b *testing.B, m ttsv.Model) {
	b.Helper()
	sys := ttsv.DRAMuP()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Analyze(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCaseStudyModelA(b *testing.B) {
	benchCaseStudy(b, ttsv.ModelA{Coeffs: ttsv.PaperSystemCoeffs()})
}

func BenchmarkCaseStudyModelB1000(b *testing.B) { benchCaseStudy(b, ttsv.NewModelB(1000)) }
func BenchmarkCaseStudyModel1D(b *testing.B)    { benchCaseStudy(b, ttsv.Model1D{}) }

func BenchmarkCaseStudyReference(b *testing.B) {
	sys := ttsv.DRAMuP()
	cell, err := sys.UnitCell()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ttsv.SolveReference(cell, ttsv.DefaultResolution()); err != nil {
			b.Fatal(err)
		}
	}
}

// The FVM reference solve on the standard block — the cost every figure pays
// per reference point (the paper's FEM took minutes-to-an-hour here).
func BenchmarkReferenceSolveDefault(b *testing.B) {
	s := mustFig4(b, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ttsv.SolveReference(s, ttsv.DefaultResolution()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceSolveRefined measures the refined solve the way a sweep
// pays for it: through a persistent SolveContext, so the sparsity pattern,
// multigrid hierarchy and solver scratch amortize across solves. The
// operator here never changes between iterations, so this is the reuse
// upper bound (hierarchy served from cache); one warm-up solve before the
// timer pays the one-time pattern/hierarchy construction so the measurement
// is the amortized steady state the doc promises. BenchmarkSweepReuseFVM
// pays the honest rebuild cost of an actual parameter sweep, and
// ...RefinedFresh keeps the no-reuse baseline measurable.
func BenchmarkReferenceSolveRefined(b *testing.B) {
	benchReferenceRefinedReuse(b, ttsv.OperatorAuto)
}

// BenchmarkReferenceSolveRefinedMatFree/CSR are the matrix-free A/B pair:
// identical solves (bit-identical temperatures, pinned by
// TestOperatorSolveBitIdentical) with the operator forced each way, so the
// archived BENCH_ref.json records what the stencil path saves over
// streaming the assembled CSR.
func BenchmarkReferenceSolveRefinedMatFree(b *testing.B) {
	benchReferenceRefinedReuse(b, ttsv.OperatorStencil)
}

func BenchmarkReferenceSolveRefinedCSR(b *testing.B) {
	benchReferenceRefinedReuse(b, ttsv.OperatorCSR)
}

func benchReferenceRefinedReuse(b *testing.B, opk ttsv.OperatorKind) {
	b.Helper()
	s := mustFig4(b, 10)
	res := ttsv.DefaultResolution().Refine(2)
	res.Operator = opk
	sc := ttsv.NewSolveContext()
	defer sc.Close()
	if _, _, err := ttsv.SolveReferenceStatsWith(context.Background(), sc, s, res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ttsv.SolveReferenceStatsWith(context.Background(), sc, s, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceSolveRefinedFresh is the pre-reuse path: every solve
// re-derives the pattern and hierarchy from scratch.
func BenchmarkReferenceSolveRefinedFresh(b *testing.B) {
	benchReferenceRefinedFresh(b, ttsv.MGHierarchyGalerkin, ttsv.MGPrecisionF64)
}

// BenchmarkReferenceSolveRefinedFreshGeom/GeomF32 are the geometric-
// hierarchy A/B pair for the fresh path above: identical solves (converged
// temperatures within solver tolerance) with multigrid coarse levels
// re-discretized from the grid coefficients instead of Galerkin sparse
// products. The hierarchy build drops from the dominant cost to a handful
// of O(n) passes, and the line-smoothed W-cycle converges in fewer CG
// iterations than the Galerkin V-cycle on these stacks. The F32 variant
// additionally stores the preconditioner data as float32.
func BenchmarkReferenceSolveRefinedFreshGeom(b *testing.B) {
	benchReferenceRefinedFresh(b, ttsv.MGHierarchyGeometric, ttsv.MGPrecisionF64)
}

func BenchmarkReferenceSolveRefinedFreshGeomF32(b *testing.B) {
	benchReferenceRefinedFresh(b, ttsv.MGHierarchyGeometric, ttsv.MGPrecisionF32)
}

func benchReferenceRefinedFresh(b *testing.B, hier ttsv.MGHierarchyKind, prec ttsv.MGPrecisionKind) {
	b.Helper()
	s := mustFig4(b, 10)
	res := ttsv.DefaultResolution().Refine(2)
	res.Hierarchy = hier
	res.Precision = prec
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ttsv.SolveReference(s, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceSolveWorkers* runs the reference solve with the solver
// kernels on N workers (Resolution.Workers). On a multi-core machine the
// parallel variants shed most of the matvec/reduction time; on one core they
// track the sequential path, because the pool parks idle workers instead of
// spinning.
func benchReferenceWorkers(b *testing.B, workers int) {
	b.Helper()
	s := mustFig4(b, 10)
	res := ttsv.DefaultResolution()
	res.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ttsv.SolveReference(s, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceSolveWorkers1(b *testing.B) { benchReferenceWorkers(b, 1) }
func BenchmarkReferenceSolveWorkers2(b *testing.B) { benchReferenceWorkers(b, 2) }
func BenchmarkReferenceSolveWorkers4(b *testing.B) { benchReferenceWorkers(b, 4) }

// BenchmarkReferenceSolveSpeedup4 interleaves sequential and 4-worker
// refined-mesh solves and reports their wall-time ratio as the "speedup"
// metric, the headline number for the parallel linear-algebra layer. Both
// paths pin the Chebyshev preconditioner so the ratio isolates kernel
// parallelism rather than preconditioner choice.
func BenchmarkReferenceSolveSpeedup4(b *testing.B) {
	s := mustFig4(b, 10)
	prob, err := fem.BuildAxiProblem(s, fem.DefaultResolution().Refine(2))
	if err != nil {
		b.Fatal(err)
	}
	opt := sparse.Options{Tol: 1e-10, Precond: sparse.PrecondChebyshev}
	var seq, par time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Workers = 1
		sol, err := fem.SolveAxi(prob, opt)
		if err != nil {
			b.Fatal(err)
		}
		seq += sol.Stats.Wall
		opt.Workers = 4
		sol, err = fem.SolveAxi(prob, opt)
		if err != nil {
			b.Fatal(err)
		}
		par += sol.Stats.Wall
	}
	if par > 0 {
		b.ReportMetric(float64(seq)/float64(par), "speedup")
	}
}

// Ablation: Model B's chain networks have bandwidth 2, so the netlist picks
// the O(n·b²) banded direct solver automatically; these sizes previously ran
// dense LU (B(120), 529 unknowns) and conjugate gradients (B(500), 2101
// unknowns) — compare against BenchmarkDenseLU/BenchmarkBandedSolve for the
// raw solver-level difference.
func BenchmarkModelB120Banded(b *testing.B) { benchTable1(b, ttsv.NewModelB(120)) }
func BenchmarkModelB500Banded(b *testing.B) { benchTable1(b, ttsv.NewModelB(500)) }

// Raw solver ablation on the same tridiagonal SPD system.
func BenchmarkBandedSolve(b *testing.B) {
	const n = 200
	bd := linalg.NewBanded(n, 1)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		bd.Add(i, i, 4)
		if i > 0 {
			bd.Add(i, i-1, -1)
			bd.Add(i-1, i, -1)
		}
		rhs[i] = float64(i % 7)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bd.SolveBanded(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: Model A through the topological network assembly versus the
// literal transcription of the paper's equations (1)-(6).
func BenchmarkModelANetwork(b *testing.B) {
	s := mustFig4(b, 10)
	m := ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelAClosedForm(b *testing.B) {
	s := mustFig4(b, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveThreePlaneEquations(s, core.PaperBlockCoeffs()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceMG* measure the multigrid-preconditioned reference
// solve against the single-level preconditioners as the mesh refines; the
// "cgiters" metric is the CG iteration count of the last solve and
// "mglevels" the hierarchy depth. Each iteration re-solves from scratch, so
// the multigrid timings include hierarchy construction — the honest
// per-reference-point cost a sweep pays.
func benchReferenceResolved(b *testing.B, refine int, p sparse.PrecondKind) {
	b.Helper()
	s := mustFig4(b, 10)
	prob, err := fem.BuildAxiProblem(s, fem.DefaultResolution().Refine(refine))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	// Problem construction stays outside the timer: without the reset its
	// allocations amortize over b.N, making allocs/op depend on -benchtime
	// and tripping the bench-compare alloc gate whenever the run length
	// differs from the archived one.
	b.ResetTimer()
	var st sparse.Stats
	for i := 0; i < b.N; i++ {
		sol, err := fem.SolveAxi(prob, sparse.Options{Tol: 1e-10, Precond: p})
		if err != nil {
			b.Fatal(err)
		}
		st = sol.Stats
	}
	b.ReportMetric(float64(st.Iterations), "cgiters")
	if st.Levels > 0 {
		b.ReportMetric(float64(st.Levels), "mglevels")
	}
}

func BenchmarkReferenceMGDefault(b *testing.B) {
	benchReferenceResolved(b, 1, sparse.PrecondMG)
}

func BenchmarkReferenceMGRefined2(b *testing.B) {
	benchReferenceResolved(b, 2, sparse.PrecondMG)
}

func BenchmarkReferenceMGRefined4(b *testing.B) {
	benchReferenceResolved(b, 4, sparse.PrecondMG)
}

// BenchmarkReferenceMGRefined8 is the deep-refinement probe: ~93k unknowns,
// 64× the default mesh. Grading-preserving refinement
// (Resolution.RefineFactor) keeps the mesh family nested, so the iteration
// count should sit in the same band as the 2x and 4x benchmarks.
func BenchmarkReferenceMGRefined8(b *testing.B) {
	benchReferenceResolved(b, 8, sparse.PrecondMG)
}

// Single-level baselines at the same refined mesh, for the wall-time
// comparison BENCH_ref.json records. Only the 2x mesh gets single-level
// baselines: at 4x the single-level iteration counts pass 600 and the
// benchmark would spend seconds per data point demonstrating the O(√n)
// growth the 2x rows already show.
func BenchmarkReferenceSSORRefined2(b *testing.B) {
	benchReferenceResolved(b, 2, sparse.PrecondSSOR)
}

func BenchmarkReferenceChebyshevRefined2(b *testing.B) {
	benchReferenceResolved(b, 2, sparse.PrecondChebyshev)
}

// Ablation: preconditioner choice for the FVM solve.
func benchPrecond(b *testing.B, p sparse.PrecondKind) {
	b.Helper()
	s := mustFig4(b, 10)
	prob, err := fem.BuildAxiProblem(s, fem.DefaultResolution())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fem.SolveAxi(prob, sparse.Options{Tol: 1e-10, Precond: p}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFVMPrecondSSOR(b *testing.B)      { benchPrecond(b, sparse.PrecondSSOR) }
func BenchmarkFVMPrecondJacobi(b *testing.B)    { benchPrecond(b, sparse.PrecondJacobi) }
func BenchmarkFVMPrecondNone(b *testing.B)      { benchPrecond(b, sparse.PrecondNone) }
func BenchmarkFVMPrecondChebyshev(b *testing.B) { benchPrecond(b, sparse.PrecondChebyshev) }

// Ablation: the SPD direct solver (Cholesky) versus general LU on the dense
// conductance matrices Model B assembles below the sparse cutoff.
func BenchmarkDenseCholesky(b *testing.B) {
	a, rhs := spdBenchSystem(b, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SolveSPD(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseLU(b *testing.B) {
	a, rhs := spdBenchSystem(b, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func spdBenchSystem(b *testing.B, n int) (*linalg.Matrix, []float64) {
	b.Helper()
	a := linalg.NewMatrix(n, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 4)
		if i > 0 {
			a.Set(i, i-1, -1)
			a.Set(i-1, i, -1)
		}
		rhs[i] = float64(i % 7)
	}
	return a, rhs
}

// Extension benchmarks: transient step response and insertion planning.
func BenchmarkTransientModelA(b *testing.B) {
	s := mustFig4(b, 10)
	m := ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}
	spec := ttsv.TransientSpec{Dt: 1e-4, Steps: 200}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveTransient(s, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransientModelB60(b *testing.B) {
	s := mustFig4(b, 10)
	m := ttsv.NewModelB(60)
	spec := ttsv.TransientSpec{Dt: 1e-4, Steps: 200}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveTransient(s, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertionPlanning(b *testing.B) {
	f := &ttsv.Floorplan{TileSide: 0.75e-3}
	for r := 0; r < 4; r++ {
		var row [][]float64
		for c := 0; c < 4; c++ {
			row = append(row, []float64{0.4, 0.05, 0.05})
		}
		f.PlanePowers = append(f.PlanePowers, row)
	}
	tech := ttsv.DefaultTechnology()
	m := ttsv.ModelA{Coeffs: ttsv.PaperSystemCoeffs()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ttsv.PlanInsertion(f, tech, 13, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNonlinearModelA(b *testing.B) {
	s := mustFig4(b, 10)
	for i := range s.Planes {
		s.Planes[i].Si.TempCoeff = -0.004
	}
	m := ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SolveNonlinear(m, s, 25, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel sweep engine -------------------------------------------------
//
// BenchmarkSweepSequential*/BenchmarkSweepParallel* measure the same batch —
// the Fig. 4 radius sweep under the FVM reference model, the most expensive
// per-point solve in the repository — through the sweep engine at different
// worker counts. On an N-core machine the parallel variants approach N×; on
// one core they match the sequential path within scheduling noise, because
// the engine adds no per-job synchronization beyond the feed channel.

func sweepBenchJobs(b *testing.B) ttsv.Batch {
	b.Helper()
	m := ttsv.ReferenceModel(ttsv.Resolution{})
	var jobs ttsv.Batch
	for _, s := range fig4Stacks(b) {
		jobs = jobs.Add("", s, m)
	}
	return jobs
}

func benchSweepEngine(b *testing.B, workers int) {
	b.Helper()
	jobs := sweepBenchJobs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := ttsv.Sweep(context.Background(), jobs, ttsv.SweepOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		for _, oc := range outs {
			if oc.Err != nil {
				b.Fatal(oc.Err)
			}
		}
	}
}

func BenchmarkSweepSequentialFVM(b *testing.B) { benchSweepEngine(b, 1) }

func BenchmarkSweepParallelFVM(b *testing.B) { benchSweepEngine(b, runtime.GOMAXPROCS(0)) }

func BenchmarkSweepParallelFVM4(b *testing.B) { benchSweepEngine(b, 4) }

// BenchmarkSweepReuseFVM / BenchmarkSweepNoReuseFVM A/B the cross-solve
// reuse the sweep engine applies by default: a refined-mesh radius sweep in
// which every point shares the mesh topology but not the operator values, so
// each job after the first refills the cached pattern and rebuilds the
// multigrid hierarchy through recycled memory instead of re-deriving both.
// This is the honest reuse case — the per-point win of an actual sweep —
// as opposed to BenchmarkReferenceSolveRefined's unchanged-operator upper
// bound.
func benchSweepReuse(b *testing.B, noReuse bool) {
	b.Helper()
	m := ttsv.ReferenceModel(ttsv.DefaultResolution().Refine(2))
	var jobs ttsv.Batch
	for _, r := range []float64{5, 8, 12, 16, 20} {
		jobs = jobs.Add("", mustFig4(b, r), m)
	}
	opts := ttsv.SweepOptions{Workers: 1, NoReuse: noReuse}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := ttsv.Sweep(context.Background(), jobs, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, oc := range outs {
			if oc.Err != nil {
				b.Fatal(oc.Err)
			}
		}
	}
}

func BenchmarkSweepReuseFVM(b *testing.B)   { benchSweepReuse(b, false) }
func BenchmarkSweepNoReuseFVM(b *testing.B) { benchSweepReuse(b, true) }

// BenchmarkSweepCachedFVM measures the memoized path: after the first
// iteration every job is a cache hit, so this reports the engine's per-job
// overhead floor.
func BenchmarkSweepCachedFVM(b *testing.B) {
	jobs := sweepBenchJobs(b)
	cache := ttsv.NewSweepCache()
	opts := ttsv.SweepOptions{Workers: 1, Cache: cache}
	if _, err := ttsv.Sweep(context.Background(), jobs, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := ttsv.Sweep(context.Background(), jobs, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, oc := range outs {
			if oc.Err != nil {
				b.Fatal(oc.Err)
			}
		}
	}
}
