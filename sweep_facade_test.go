package ttsv_test

// Facade tests for the batch sweep engine and the solver-stats surface,
// exercised exactly as a downstream user would.

import (
	"context"
	"reflect"
	"testing"

	ttsv "repro"
	"repro/internal/sparse"
)

func TestSweepThroughFacade(t *testing.T) {
	models := []ttsv.Model{
		ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()},
		ttsv.NewModelB(20),
		ttsv.Model1D{},
	}
	var jobs ttsv.Batch
	for _, r := range []float64{5e-6, 10e-6, 20e-6} {
		s, err := ttsv.Fig4Block(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range models {
			jobs = jobs.Add("", s, m)
		}
	}
	seq, err := ttsv.Sweep(context.Background(), jobs, ttsv.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ttsv.Sweep(context.Background(), jobs, ttsv.SweepOptions{Workers: 4, Cache: ttsv.NewSweepCache()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Err != nil {
			t.Fatalf("job %d: %v", i, seq[i].Err)
		}
		if !reflect.DeepEqual(seq[i].Result, par[i].Result) {
			t.Errorf("job %d: parallel result differs from sequential", i)
		}
	}
}

func TestSolveReferenceStatsThroughFacade(t *testing.T) {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	res := ttsv.DefaultResolution()
	max, stats, err := ttsv.SolveReferenceStats(s, res)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ttsv.SolveReference(s, res)
	if err != nil {
		t.Fatal(err)
	}
	if max != plain {
		t.Errorf("SolveReferenceStats ΔT %g != SolveReference %g", max, plain)
	}
	if stats.Iterations <= 0 {
		t.Errorf("iterative reference solve reported %d iterations", stats.Iterations)
	}
	if stats.Residual <= 0 {
		t.Errorf("residual %g not populated", stats.Residual)
	}
	if stats.Precond != sparse.PrecondSSOR {
		t.Errorf("preconditioner %v, want SSOR", stats.Precond)
	}
	if stats.String() == "" {
		t.Error("stats String is empty")
	}
}

func TestReferenceModelThroughFacade(t *testing.T) {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	m := ttsv.ReferenceModel(ttsv.Resolution{})
	r, err := m.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ttsv.SolveReference(s, ttsv.DefaultResolution())
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxDT != want {
		t.Errorf("ReferenceModel ΔT %g != SolveReference %g", r.MaxDT, want)
	}
	if r.Solver.Iterations <= 0 {
		t.Errorf("Result.Solver not populated: %+v", r.Solver)
	}
}

func TestDirectSolvesReportNoIterations(t *testing.T) {
	// Result.Solver reports iterative solves only. Model A's tiny network and
	// Model B's narrow-banded π-chains both factorize directly, so their
	// stats must stay zero — only the FVM reference (covered above) iterates.
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ttsv.Model{
		ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()},
		ttsv.NewModelB(500),
	} {
		r, err := m.Solve(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Solver != (ttsv.SolverStats{}) {
			t.Errorf("%s: direct solve reported iterative stats %+v", m.Name(), r.Solver)
		}
	}
}

func TestPlanInsertionWithThroughFacade(t *testing.T) {
	f := &ttsv.Floorplan{TileSide: 0.75e-3}
	for r := 0; r < 3; r++ {
		var row [][]float64
		for c := 0; c < 3; c++ {
			row = append(row, []float64{0.4, 0.05, 0.05})
		}
		f.PlanePowers = append(f.PlanePowers, row)
	}
	m := ttsv.ModelA{Coeffs: ttsv.PaperSystemCoeffs()}
	tech := ttsv.DefaultTechnology()
	want, err := ttsv.PlanInsertion(f, tech, 13.0, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ttsv.PlanInsertionWith(f, tech, 13.0, m, ttsv.PlanOptions{Workers: 4, Cache: ttsv.NewSweepCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel cached plan differs from sequential: %+v vs %+v", got, want)
	}
}
