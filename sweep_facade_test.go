package ttsv_test

// Facade tests for the batch sweep engine and the solver-stats surface,
// exercised exactly as a downstream user would.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	ttsv "repro"
	"repro/internal/sparse"
)

func TestSweepThroughFacade(t *testing.T) {
	models := []ttsv.Model{
		ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()},
		ttsv.NewModelB(20),
		ttsv.Model1D{},
	}
	var jobs ttsv.Batch
	for _, r := range []float64{5e-6, 10e-6, 20e-6} {
		s, err := ttsv.Fig4Block(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range models {
			jobs = jobs.Add("", s, m)
		}
	}
	seq, err := ttsv.Sweep(context.Background(), jobs, ttsv.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ttsv.Sweep(context.Background(), jobs, ttsv.SweepOptions{Workers: 4, Cache: ttsv.NewSweepCache()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Err != nil {
			t.Fatalf("job %d: %v", i, seq[i].Err)
		}
		if !reflect.DeepEqual(seq[i].Result, par[i].Result) {
			t.Errorf("job %d: parallel result differs from sequential", i)
		}
	}
}

func TestSolveReferenceStatsThroughFacade(t *testing.T) {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	res := ttsv.DefaultResolution()
	max, stats, err := ttsv.SolveReferenceStats(s, res)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ttsv.SolveReference(s, res)
	if err != nil {
		t.Fatal(err)
	}
	if max != plain {
		t.Errorf("SolveReferenceStats ΔT %g != SolveReference %g", max, plain)
	}
	if stats.Iterations <= 0 {
		t.Errorf("iterative reference solve reported %d iterations", stats.Iterations)
	}
	if stats.Residual <= 0 {
		t.Errorf("residual %g not populated", stats.Residual)
	}
	if stats.Precond != sparse.PrecondSSOR {
		t.Errorf("preconditioner %v, want SSOR", stats.Precond)
	}
	if stats.String() == "" {
		t.Error("stats String is empty")
	}
}

func TestSolveReferenceStatsWithWorkers(t *testing.T) {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	res := ttsv.DefaultResolution()
	seq, _, err := ttsv.SolveReferenceStats(s, res)
	if err != nil {
		t.Fatal(err)
	}
	res.Workers = 4
	par, stats, err := ttsv.SolveReferenceStats(s, res)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 4 {
		t.Errorf("stats report %d workers, want 4", stats.Workers)
	}
	if stats.Precond != sparse.PrecondChebyshev {
		t.Errorf("parallel default preconditioner %v, want chebyshev", stats.Precond)
	}
	if stats.Wall <= 0 {
		t.Errorf("wall time %v not populated", stats.Wall)
	}
	// Chebyshev and SSOR converge to the same field within the solver
	// tolerance; the quantity of interest must agree far tighter than the
	// models the reference judges.
	if d := (par - seq) / seq; d > 1e-7 || d < -1e-7 {
		t.Errorf("worker solve ΔT %g differs from sequential %g (rel %g)", par, seq, d)
	}
}

// Cancelling a sweep must stop reference solves that are already running —
// the solver checks the context between CG iterations — not just prevent
// queued jobs from starting.
func TestSweepCancellationStopsInFlightSolves(t *testing.T) {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	// A refined mesh makes each solve take long enough (hundreds of
	// milliseconds) that the cancellation below lands mid-solve.
	m := ttsv.ReferenceModel(ttsv.DefaultResolution().Refine(2))
	var jobs ttsv.Batch
	for i := 0; i < 4; i++ {
		jobs = jobs.Add("", s, m)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	out, err := ttsv.Sweep(ctx, jobs, ttsv.SweepOptions{Workers: 1})
	elapsed := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep err = %v, want context.Canceled", err)
	}
	if len(out) != len(jobs) {
		t.Fatalf("got %d outcomes for %d jobs", len(out), len(jobs))
	}
	for i, oc := range out {
		if !errors.Is(oc.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, oc.Err)
		}
	}
	// The first job was in-flight when the context died, so its error must
	// come from the solver's mid-iteration check, not the pre-start gate.
	if !strings.Contains(out[0].Err.Error(), "cancelled after") {
		t.Errorf("first job not cancelled mid-solve: %v", out[0].Err)
	}
	// Four refined solves run well over a second sequentially; a cancelled
	// sweep must come back almost immediately.
	if elapsed > 2*time.Second {
		t.Errorf("cancelled sweep took %v", elapsed)
	}
}

func TestReferenceModelThroughFacade(t *testing.T) {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	m := ttsv.ReferenceModel(ttsv.Resolution{})
	r, err := m.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ttsv.SolveReference(s, ttsv.DefaultResolution())
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxDT != want {
		t.Errorf("ReferenceModel ΔT %g != SolveReference %g", r.MaxDT, want)
	}
	if r.Solver.Iterations <= 0 {
		t.Errorf("Result.Solver not populated: %+v", r.Solver)
	}
}

func TestDirectSolvesReportNoIterations(t *testing.T) {
	// Result.Solver reports iterative solves only. Model A's tiny network and
	// Model B's narrow-banded π-chains both factorize directly, so their
	// stats must stay zero — only the FVM reference (covered above) iterates.
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ttsv.Model{
		ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()},
		ttsv.NewModelB(500),
	} {
		r, err := m.Solve(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Solver != (ttsv.SolverStats{}) {
			t.Errorf("%s: direct solve reported iterative stats %+v", m.Name(), r.Solver)
		}
	}
}

func TestPlanInsertionWithThroughFacade(t *testing.T) {
	f := &ttsv.Floorplan{TileSide: 0.75e-3}
	for r := 0; r < 3; r++ {
		var row [][]float64
		for c := 0; c < 3; c++ {
			row = append(row, []float64{0.4, 0.05, 0.05})
		}
		f.PlanePowers = append(f.PlanePowers, row)
	}
	m := ttsv.ModelA{Coeffs: ttsv.PaperSystemCoeffs()}
	tech := ttsv.DefaultTechnology()
	want, err := ttsv.PlanInsertion(f, tech, 13.0, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ttsv.PlanInsertionWith(f, tech, 13.0, m, ttsv.PlanOptions{Workers: 4, Cache: ttsv.NewSweepCache()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel cached plan differs from sequential: %+v vs %+v", got, want)
	}
}
