package ttsv_test

import (
	"fmt"

	ttsv "repro"
)

// ExampleModelA solves the paper's standard block with the compact fitted
// network model.
func ExampleModelA() {
	s, err := ttsv.Fig4Block(10e-6) // 10 µm via
	if err != nil {
		panic(err)
	}
	res, err := ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}.Solve(s)
	if err != nil {
		panic(err)
	}
	fmt.Printf("max ΔT = %.2f K\n", res.MaxDT)
	// Output: max ΔT = 17.37 K
}

// ExampleNewModelB solves the same block with the distributed model, which
// needs no fitting coefficients.
func ExampleNewModelB() {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		panic(err)
	}
	res, err := ttsv.NewModelB(100).Solve(s)
	if err != nil {
		panic(err)
	}
	fmt.Printf("max ΔT = %.2f K with %d unknowns\n", res.MaxDT, res.Unknowns)
	// Output: max ΔT = 19.70 K with 421 unknowns
}

// ExampleStack_WithViaCount splits a via into an equal-metal-area cluster
// (paper §IV-D): four thinner vias cool better than one fat one.
func ExampleStack_WithViaCount() {
	s, err := ttsv.Fig7Block(1)
	if err != nil {
		panic(err)
	}
	m := ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}
	one, _ := m.Solve(s)
	four, _ := m.Solve(s.WithViaCount(4))
	fmt.Printf("1 via: %.2f K, 4 vias: %.2f K\n", one.MaxDT, four.MaxDT)
	// Output: 1 via: 18.73 K, 4 vias: 16.11 K
}

// ExampleResistances evaluates the paper's closed-form network elements.
func ExampleResistances() {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		panic(err)
	}
	res, rs, err := ttsv.Resistances(s, ttsv.UnitCoeffs())
	if err != nil {
		panic(err)
	}
	fmt.Printf("R1 = %.0f K/W, R2 = %.0f K/W, R3 = %.0f K/W, Rs = %.0f K/W\n",
		res[0].Surround, res[0].Metal, res[0].Liner, rs)
	// Output: R1 = 297 K/W, R2 = 40 K/W, R3 = 1109 K/W, Rs = 384 K/W
}

// ExampleSystem_Analyze runs the paper's DRAM-µP case study (§IV-E).
func ExampleSystem_Analyze() {
	sys := ttsv.DRAMuP()
	res, err := sys.Analyze(ttsv.Model1D{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("traditional 1-D model: %.1f K (the paper's FEM says ~12)\n", res.MaxDT)
	// Output: traditional 1-D model: 18.6 K (the paper's FEM says ~12)
}
