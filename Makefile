# Development targets. `make verify` is the full pre-merge gate: vet plus
# every test under the race detector.

GO ?= go

.PHONY: all build test verify race bench fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: static analysis, the whole suite — including
# the parallel sweep/plan/solver property tests — under the race detector,
# and one pass over every benchmark so the harness itself cannot rot.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Seed corpora run on every plain `go test`; this target explores further.
# Usage: make fuzz FUZZ=FuzzLoadBlockConfig PKG=./internal/stack FUZZTIME=30s
FUZZTIME ?= 10s
FUZZ ?= FuzzLoadBlockConfig
PKG ?= ./internal/stack
fuzz:
	$(GO) test -fuzz $(FUZZ) -fuzztime $(FUZZTIME) $(PKG)

clean:
	$(GO) clean ./...
