# Development targets. `make verify` is the full pre-merge gate: vet plus
# every test under the race detector.

GO ?= go

.PHONY: all build test verify race bench fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: static analysis, then the whole suite —
# including the parallel sweep/plan property tests — under the race detector.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Seed corpora run on every plain `go test`; this target explores further.
# Usage: make fuzz FUZZ=FuzzLoadBlockConfig PKG=./internal/stack FUZZTIME=30s
FUZZTIME ?= 10s
FUZZ ?= FuzzLoadBlockConfig
PKG ?= ./internal/stack
fuzz:
	$(GO) test -fuzz $(FUZZ) -fuzztime $(FUZZTIME) $(PKG)

clean:
	$(GO) clean ./...
