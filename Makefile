# Development targets. `make verify` is the full pre-merge gate: vet plus
# every test under the race detector.

GO ?= go

.PHONY: all build test verify race bench bench-json bench-compare profile profile-stencil profile-mgbuild fuzz loadsmoke sweepsmoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: static analysis, the cross-solve reuse
# determinism properties under the race detector (run first and by name —
# they are the contract that assembly/hierarchy reuse and warm-started
# sweeps never change results), the deck golden/property tests by name
# under the race detector (the contract that .ttsv decks stay bit-identical
# to struct-built runs through both the library and the CLIs), a short
# FuzzParseDeck exploration on top of the checked-in seeds, the solve-service
# suite by name under the race detector (the contract that every ttsvd
# endpoint is byte-identical to the CLI/deck path and that coalescing,
# admission and drain are race-free), the sharded/resumable-sweep identity
# properties by name under the race detector (the contract that shard
# partitioning, the checkpoint journal, resume-after-kill and the disk cache
# never change a report's bytes, through the engine, the deck layer, the CLI
# and the streaming /sweep endpoint), then the whole suite under the race
# detector, one pass over every benchmark so the harness itself cannot rot,
# and a single-iteration smoke run of the bench-json pipeline.
verify:
	$(GO) vet ./...
	$(GO) test -race -run 'SolveContext|WarmStart|SweepReuse|RebuildMatches|RebuildAcross' ./internal/fem ./internal/sweep ./internal/mg
	$(GO) test -race -run 'OperatorSolveBitIdentical|StencilMatchesCSR|StencilParallel|SolveCGStencil' ./internal/fem ./internal/sparse
	$(GO) test -race -run 'GeometricHierarchyProperty|GeometricCycleSymmetric|GeometricRebuildMatchesFreshBuild|GeometricHierarchyMatchesGalerkin|GeometricContextCacheKeyedBySelection' ./internal/mg ./internal/fem
	$(GO) test -race -run 'Deck|CorpusGoldens' ./internal/deck ./cmd/ttsvsolve ./cmd/ttsvplan .
	$(GO) test -race -run 'MatchesGoldens|MatchesDeck|Coalescing|WarmPool|Admission|Timeout|BadRequests|HealthMetrics|Flight|TokenBucket|ListenAndServeDrains|CancelledRun' ./internal/serve ./cmd/ttsvsolve
	$(GO) test -race -run 'ShardSpec|SweepJournal|SweepShardMerge|MergeJournals|DiskCache|DeckSweep|DeckShardMerge|SweepFlagsRequireDeck|SweepStream|SweepShardPartitions|WarmPoolKeysOnGridTopology|RefundsAdmissionToken|GridTopology|SweepSmoke' ./internal/sweep ./internal/deck ./internal/serve ./internal/fem ./cmd/ttsvsolve ./cmd/ttsvload
	$(GO) test -fuzz '^FuzzParseDeck$$' -fuzztime 10s -run '^FuzzParseDeck$$' ./internal/deck
	$(GO) test -race ./...
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	$(MAKE) bench-json BENCHTIME=1x BENCHCOUNT=1 BENCH_OUT=/dev/null

race:
	$(GO) test -race ./...

# loadsmoke drives an in-process ttsvd with the hotspot key mix — a quick
# end-to-end check that serving, coalescing and the warm pool hold up under
# concurrent load — and reports req/s with p50/p99 latency.
loadsmoke:
	$(GO) run ./cmd/ttsvload -inproc -n 400 -c 8 -mix hotspot

# sweepsmoke drives a small sharded sweep through an in-process ttsvd's
# streaming /sweep endpoint — a quick end-to-end check that shard
# partitioning and per-point NDJSON progress streaming jointly deliver every
# sweep point exactly once.
sweepsmoke:
	$(GO) run ./cmd/ttsvload -inproc -sweep -points 12 -shards 2

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-json archives the reference-solver costs (the BenchmarkReference*
# family, including the multigrid variants with their cgiters/mglevels
# metrics, plus the SweepReuse/SweepNoReuse A/B pair) as JSON. The committed
# BENCH_ref.json is regenerated with the defaults below — plain `make
# bench-json` — so archive and compare always run the identical
# configuration: benchjson collapses the -count runs to each benchmark's
# fastest (min-of-N filters the additive scheduling noise a shared host
# stacks on every run — on a loaded 1-CPU container single runs of the same
# benchmark spread over ±40%, while the minima are stable to a few percent),
# and keeping BENCHTIME equal on both sides matters too: allocation-heavy
# benchmarks like ...RefinedFresh pay benchtime-dependent GC amortization,
# so a 5x archive is not comparable to a 2x run even noise-free.
BENCHTIME ?= 2x
BENCHCOUNT ?= 3
BENCH_OUT ?= BENCH_ref.json
BENCH_PATTERN ?= 'Reference|SweepReuse|SweepNoReuse'
# Captured into a shell variable rather than piped directly: in a plain
# pipe a failing `go test` is masked by the parser's exit status.
bench-json:
	@out=$$($(GO) test -run '^$$' -bench $(BENCH_PATTERN) -benchtime $(BENCHTIME) -count $(BENCHCOUNT) .) || { printf '%s\n' "$$out"; exit 1; }; \
	printf '%s\n' "$$out" | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# bench-compare guards the solver's performance: it reruns the reference
# benchmarks (min-of-BENCHCOUNT, like the archive) and diffs them against
# the committed BENCH_ref.json, failing when any wall time regresses by more
# than BENCH_THRESHOLD percent or any B/op / allocs/op regresses by more
# than BENCH_ALLOC_THRESHOLD percent (allocation counts are deterministic,
# so their gate is tighter). Min-of-N keeps host noise out of the diff, but
# a marginal wall failure on a busy machine is still worth a rerun before
# being trusted.
BENCH_THRESHOLD ?= 25
BENCH_ALLOC_THRESHOLD ?= 10
bench-compare:
	@out=$$($(GO) test -run '^$$' -bench $(BENCH_PATTERN) -benchtime $(BENCHTIME) -count $(BENCHCOUNT) .) || { printf '%s\n' "$$out"; exit 1; }; \
	printf '%s\n' "$$out" | $(GO) run ./cmd/benchjson -compare BENCH_ref.json -threshold $(BENCH_THRESHOLD) -alloc-threshold $(BENCH_ALLOC_THRESHOLD)

# profile captures CPU and allocation pprof profiles of the sweep-reuse
# benchmark (the tentpole's end-to-end hot path: symbolic refill, hierarchy
# re-Galerkin, pooled CG). Inspect with
#   go tool pprof profiles/repro.test profiles/sweep_cpu.pprof
PROFILE_DIR ?= profiles
profile:
	@mkdir -p $(PROFILE_DIR)
	$(GO) test -run '^$$' -bench SweepReuseFVM -benchtime 3x \
		-cpuprofile $(PROFILE_DIR)/sweep_cpu.pprof \
		-memprofile $(PROFILE_DIR)/sweep_mem.pprof \
		-o $(PROFILE_DIR)/repro.test .
	@echo "profiles written to $(PROFILE_DIR)/"

# profile-stencil captures CPU and allocation pprof profiles of the
# matrix-free stencil matvec microbenchmark (the tentpole kernel of the
# structured-grid operator). Inspect with
#   go tool pprof profiles/sparse.test profiles/stencil_cpu.pprof
profile-stencil:
	@mkdir -p $(PROFILE_DIR)
	$(GO) test -run '^$$' -bench StencilMatVec -benchtime 200x \
		-cpuprofile $(PROFILE_DIR)/stencil_cpu.pprof \
		-memprofile $(PROFILE_DIR)/stencil_mem.pprof \
		-o $(PROFILE_DIR)/sparse.test ./internal/sparse
	@echo "profiles written to $(PROFILE_DIR)/"

# profile-mgbuild captures CPU and allocation pprof profiles of the fresh
# refined reference solve (hierarchy construction dominates the Galerkin
# path; the geometric variant is the A/B). Inspect with
#   go tool pprof profiles/repro.test profiles/mgbuild_cpu.pprof
profile-mgbuild:
	@mkdir -p $(PROFILE_DIR)
	$(GO) test -run '^$$' -bench 'ReferenceSolveRefinedFresh$$|ReferenceSolveRefinedFreshGeom$$' -benchtime 5x \
		-cpuprofile $(PROFILE_DIR)/mgbuild_cpu.pprof \
		-memprofile $(PROFILE_DIR)/mgbuild_mem.pprof \
		-o $(PROFILE_DIR)/repro.test .
	@echo "profiles written to $(PROFILE_DIR)/"

# Seed corpora run on every plain `go test`; this target explores further.
# By default it gives every fuzz target in the repo a bounded FUZZTIME run
# (go test -fuzz accepts only one target per package, hence the loop).
# Narrow to one target with
#   make fuzz FUZZ=FuzzParseDeck PKG=./internal/deck FUZZTIME=30s
FUZZTIME ?= 10s
FUZZ ?=
PKG ?=
FUZZ_TARGETS = \
	FuzzParseDeck:./internal/deck \
	FuzzLoadBlockConfig:./internal/stack \
	FuzzMaterialUnmarshalJSON:./internal/materials
fuzz:
ifneq ($(FUZZ),)
	$(GO) test -fuzz '^$(FUZZ)$$' -fuzztime $(FUZZTIME) -run '^$(FUZZ)$$' $(PKG)
else
	@for t in $(FUZZ_TARGETS); do \
		f=$${t%%:*}; p=$${t##*:}; \
		echo "== fuzz $$f ($$p, $(FUZZTIME)) =="; \
		$(GO) test -fuzz "^$$f$$" -fuzztime $(FUZZTIME) -run "^$$f$$" $$p || exit 1; \
	done
endif

clean:
	$(GO) clean ./...
