// Package ttsv is the public API of the TTSV thermal-modeling library, a
// from-scratch Go reproduction of
//
//	Hu Xu, Vasilis F. Pavlidis, Giovanni De Micheli,
//	"Analytical Heat Transfer Model for Thermal Through-Silicon Vias",
//	Design, Automation & Test in Europe (DATE), 2011.
//
// Thermal through-silicon vias (TTSVs) are dummy vertical vias inserted in
// 3-D integrated circuits purely to conduct heat towards the heat sink. The
// library provides:
//
//   - Model A (ModelA): the paper's compact per-plane resistive network with
//     two fitted coefficients — accurate and closed-form fast.
//   - Model B (ModelB, NewModelB): the distributed π-segment model that
//     needs no fitting coefficients; accuracy scales with the segment count.
//   - The traditional 1-D baseline (Model1D) the paper argues against.
//   - The equal-metal-area cluster transform (Stack.WithViaCount): divide a
//     via into n thinner vias at constant metal area.
//   - A finite-volume reference solver (SolveReference) standing in for the
//     paper's FEM tool, used to validate and calibrate the models.
//   - Full-chip embedding (System, DRAMuP) reducing a chip with a uniform
//     TTSV array to a per-via unit cell — the paper's DRAM-µP case study.
//
// Quick start:
//
//	s, err := ttsv.Fig4Block(10e-6) // 3-plane block, 10 µm via
//	if err != nil { ... }
//	res, err := ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}.Solve(s)
//	fmt.Println(res.MaxDT) // max temperature rise above the heat sink, K
//
// All quantities are SI (meters, watts, kelvins); temperatures are reported
// as rises above the heat-sink reference.
package ttsv

import (
	"context"
	"io"
	"time"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/deck"
	"repro/internal/fem"
	"repro/internal/fit"
	"repro/internal/materials"
	"repro/internal/mg"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/serve"
	"repro/internal/sparse"
	"repro/internal/stack"
	"repro/internal/sweep"
)

// Re-exported structural types. See the internal packages for full method
// documentation; the aliases make the internal types usable directly.
type (
	// Stack is an N-plane 3-D IC segment with a TTSV through it.
	Stack = stack.Stack
	// Plane is one device plane (silicon + ILD + bond below).
	Plane = stack.Plane
	// TTSV is the via geometry (radius, liner, extension, cluster count).
	TTSV = stack.TTSV
	// BlockConfig parameterizes the paper's standard experiment block.
	BlockConfig = stack.BlockConfig
	// Material is a named solid with a thermal conductivity.
	Material = materials.Material

	// Coeffs holds Model A's fitting coefficients (k1, k2, c1).
	Coeffs = core.Coeffs
	// Result is a solved temperature report (MaxDT, per-plane rises).
	Result = core.Result
	// Model is the common solver interface of all three models.
	Model = core.Model
	// ModelA is the paper's compact fitted network model (§II).
	ModelA = core.ModelA
	// ModelB is the distributed π-segment model (§III).
	ModelB = core.ModelB
	// Model1D is the traditional baseline the paper compares against.
	Model1D = core.Model1D
	// PlaneResistances are one plane's three network elements.
	PlaneResistances = core.PlaneResistances

	// System is a full chip with a uniformly distributed TTSV array.
	System = chip.System
	// Resolution controls the reference solver's mesh density.
	Resolution = fem.Resolution
	// SolveContext carries reusable solver state (assembly patterns,
	// multigrid hierarchies, scratch pools) across repeated reference
	// solves; see NewSolveContext.
	SolveContext = fem.SolveContext
	// CalibrationPoint pairs a geometry with a reference temperature.
	CalibrationPoint = fit.CalibrationPoint

	// TransientSpec configures a step-power transient simulation.
	TransientSpec = core.TransientSpec
	// TransientResult is a model's time response to a power step.
	TransientResult = core.TransientResult

	// Technology holds the per-via/per-plane parameters of a TTSV
	// insertion-planning run.
	Technology = plan.Technology
	// Floorplan is a tiled power map for insertion planning.
	Floorplan = plan.Floorplan
	// PlanResult is a completed TTSV insertion plan.
	PlanResult = plan.Result
	// PowerMapResolution controls the full-chip 3-D verification mesh.
	PowerMapResolution = chip.PowerMapResolution
	// PowerMapSolution is a solved full-chip temperature field.
	PowerMapSolution = chip.PowerMapSolution

	// Batch is an ordered set of (stack, model) evaluation jobs for Sweep.
	Batch = sweep.Batch
	// SweepJob is one evaluation in a batch.
	SweepJob = sweep.Job
	// SweepOutcome is one job's result, error, and runtime.
	SweepOutcome = sweep.Outcome
	// SweepOptions controls worker count and memoization of a sweep.
	SweepOptions = sweep.Options
	// SweepCache memoizes solves keyed on geometry+model across sweeps.
	SweepCache = sweep.Cache
	// SweepDiskCache is the persistent on-disk result cache behind
	// SweepCache; see OpenSweepDiskCache.
	SweepDiskCache = sweep.DiskCache
	// SweepShardSpec selects one chain-aligned slice of a sweep batch; see
	// ParseSweepShard and DeckSweepControl.Shard.
	SweepShardSpec = sweep.ShardSpec
	// SolverStats reports an iterative linear solve (iterations, residual,
	// preconditioner); see Result.Solver and SolveReferenceStats.
	SolverStats = sparse.Stats
	// PrecondKind selects the reference solver's preconditioner; see
	// Resolution.Precond and the Precond* constants.
	PrecondKind = sparse.PrecondKind
	// OperatorKind selects the reference solver's matrix representation;
	// see Resolution.Operator and the Operator* constants.
	OperatorKind = fem.OperatorKind
	// MGHierarchyKind selects how multigrid coarse levels are built; see
	// Resolution.Hierarchy and the MGHierarchy* constants.
	MGHierarchyKind = mg.HierarchyKind
	// MGPrecisionKind selects the multigrid preconditioner-data storage
	// precision; see Resolution.Precision and the MGPrecision* constants.
	MGPrecisionKind = mg.PrecisionKind
	// PlanOptions controls worker count and memoization of insertion
	// planning.
	PlanOptions = plan.Options

	// Deck is a parsed .ttsv scenario deck; see ParseDeck.
	Deck = deck.Deck
	// DeckScenario is a deck lowered onto the engines (stack + analyses).
	DeckScenario = deck.Scenario
	// DeckResult collects the outputs of a deck's analysis cards; its
	// WriteText renders the deterministic text report the CLIs print.
	DeckResult = deck.Result
	// DeckOptions controls a deck run's engine worker pools and tracing.
	DeckOptions = deck.Options
	// DeckSweepControl shards, journals, resumes and merges a deck's .sweep
	// analysis (DeckOptions.Sweep); the zero value changes nothing.
	DeckSweepControl = deck.SweepControl
	// DeckSweepProgress is one completed sweep point as delivered to
	// DeckSweepControl.Progress and streamed by the service's /sweep.
	DeckSweepProgress = deck.SweepProgress
	// DeckError is a positioned deck parse/lowering error
	// ("file:line:col: message").
	DeckError = deck.Error

	// ServeConfig configures the embedded solve service; see NewServeHandler
	// and Serve.
	ServeConfig = serve.Config
	// ServeHandler is the solve service's http.Handler; see NewServeHandler.
	ServeHandler = serve.Server
	// SolveRequest is the service's POST /solve JSON body.
	SolveRequest = serve.SolveRequest
	// SweepRequest is the service's POST /sweep JSON body.
	SweepRequest = serve.SweepRequest
	// PlanRequest is the service's POST /plan JSON body.
	PlanRequest = serve.PlanRequest

	// Tracer records solver/sweep/plan spans as NDJSON; see NewTracer.
	Tracer = obs.Tracer
	// MetricsSnapshot is a frozen copy of the library's metrics registry;
	// see Metrics.
	MetricsSnapshot = obs.Snapshot
)

// Preconditioner choices for Resolution.Precond. PrecondAuto picks per
// system: geometric multigrid above a few thousand unknowns, SSOR
// (sequential) or Chebyshev (parallel) below.
const (
	PrecondAuto      = sparse.PrecondDefault
	PrecondJacobi    = sparse.PrecondJacobi
	PrecondNone      = sparse.PrecondNone
	PrecondSSOR      = sparse.PrecondSSOR
	PrecondChebyshev = sparse.PrecondChebyshev
	PrecondMG        = sparse.PrecondMG
)

// ParsePrecond converts a command-line spelling ("auto", "jacobi", "none",
// "ssor", "chebyshev", "mg") into a PrecondKind.
func ParsePrecond(s string) (PrecondKind, error) { return sparse.ParsePrecond(s) }

// Operator choices for Resolution.Operator. OperatorAuto runs the solve
// matrix-free off the structured-grid stencil whenever the preconditioner
// allows it (everything but SSOR) and falls back to the assembled CSR
// otherwise; results are bit-identical either way. OperatorCSR forces the
// assembled matrix, OperatorStencil fails the solve when matrix-free is
// impossible.
const (
	OperatorAuto    = fem.OperatorAuto
	OperatorCSR     = fem.OperatorCSR
	OperatorStencil = fem.OperatorStencil
)

// ParseOperator converts a command-line spelling ("auto", "csr", "stencil",
// or "matfree") into an OperatorKind.
func ParseOperator(s string) (OperatorKind, error) { return fem.ParseOperator(s) }

// Multigrid hierarchy choices for Resolution.Hierarchy. MGHierarchyGalerkin
// (the default) coarsens by smoothed aggregation with Galerkin coarse
// operators — robust on any SPD system. MGHierarchyGeometric re-discretizes
// each coarse level directly from the fine stencil coefficients — no sparse
// matrix products, much cheaper fresh builds — and falls back to Galerkin
// (counted in fem.mg.geometric.fallback) when the operator is not
// stencil-structured. Converged temperatures agree within solver tolerance.
const (
	MGHierarchyGalerkin  = mg.HierarchyGalerkin
	MGHierarchyGeometric = mg.HierarchyGeometric
)

// ParseMGHierarchy converts a command-line spelling ("auto", "galerkin",
// "geometric") into an MGHierarchyKind.
func ParseMGHierarchy(s string) (MGHierarchyKind, error) { return mg.ParseHierarchy(s) }

// Multigrid precision choices for Resolution.Precision. MGPrecisionF32
// stores the preconditioner's data (line-smoother factors, transfers, coarse
// stencils) as float32, roughly halving its memory traffic; it requires the
// geometric hierarchy. The outer CG stays float64 either way, so reported
// temperatures stay within solver tolerance.
const (
	MGPrecisionF64 = mg.PrecisionF64
	MGPrecisionF32 = mg.PrecisionF32
)

// ParseMGPrecision converts a command-line spelling ("auto", "f64", "f32")
// into an MGPrecisionKind.
func ParseMGPrecision(s string) (MGPrecisionKind, error) { return mg.ParsePrecision(s) }

// Stock materials (conductivities from the paper's §IV).
var (
	// Silicon is the substrate material (130 W/m·K).
	Silicon = materials.Silicon
	// SiO2 is the ILD and liner dielectric (1.4 W/m·K).
	SiO2 = materials.SiO2
	// Polyimide is the bonding adhesive (0.15 W/m·K).
	Polyimide = materials.Polyimide
	// Copper is the via fill (400 W/m·K).
	Copper = materials.Copper
)

// DefaultBlock returns the paper's §IV baseline block configuration.
func DefaultBlock() BlockConfig { return stack.DefaultBlock() }

// Fig4Block returns the Fig. 4 geometry for a via radius r (meters).
func Fig4Block(r float64) (*Stack, error) { return stack.Fig4Block(r) }

// Fig5Block returns the Fig. 5 geometry for a liner thickness tl (meters).
func Fig5Block(tl float64) (*Stack, error) { return stack.Fig5Block(tl) }

// Fig6Block returns the Fig. 6 geometry for an upper-plane substrate
// thickness tsi (meters).
func Fig6Block(tsi float64) (*Stack, error) { return stack.Fig6Block(tsi) }

// Fig7Block returns the Fig. 7 geometry with the via split into n parts.
func Fig7Block(n int) (*Stack, error) { return stack.Fig7Block(n) }

// NewModelB returns Model B with the paper's segment pairing for "B(n)".
func NewModelB(n int) ModelB { return core.NewModelB(n) }

// PaperBlockCoeffs returns k1 = 1.3, k2 = 0.55 (block experiments).
func PaperBlockCoeffs() Coeffs { return core.PaperBlockCoeffs() }

// PaperSystemCoeffs returns k1 = 1.6, k2 = 0.8, c1 = 3.5 (case study).
func PaperSystemCoeffs() Coeffs { return core.PaperSystemCoeffs() }

// UnitCoeffs returns k1 = k2 = 1 (no fitting).
func UnitCoeffs() Coeffs { return core.UnitCoeffs() }

// Resistances evaluates the paper's resistance formulas (eqs. (7)-(16)) for
// every plane plus the substrate resistance R_s.
func Resistances(s *Stack, c Coeffs) ([]PlaneResistances, float64, error) {
	return core.Resistances(s, c)
}

// DRAMuP returns the paper's §IV-E DRAM-on-µP case-study system.
func DRAMuP() System { return chip.DRAMuP() }

// DefaultResolution returns the reference solver's default mesh density.
func DefaultResolution() Resolution { return fem.DefaultResolution() }

// SolveReference runs the finite-volume reference solver (the COMSOL
// stand-in) on a stack and returns the maximum temperature rise above the
// heat sink. Resolution.Workers > 1 runs the solver kernels in parallel.
func SolveReference(s *Stack, res Resolution) (float64, error) {
	max, _, err := SolveReferenceStats(s, res)
	return max, err
}

// SolveReferenceStats is SolveReference returning the iterative solver's
// statistics (iteration count, final residual, preconditioner, wall time,
// worker count) alongside the maximum temperature rise.
func SolveReferenceStats(s *Stack, res Resolution) (float64, SolverStats, error) {
	return SolveReferenceStatsCtx(context.Background(), s, res)
}

// SolveReferenceStatsCtx is SolveReferenceStats honoring cancellation: the
// solver checks ctx between conjugate-gradient iterations, so a cancelled
// caller does not run an in-flight solve to completion.
func SolveReferenceStatsCtx(ctx context.Context, s *Stack, res Resolution) (float64, SolverStats, error) {
	sol, err := fem.SolveStackCtx(ctx, s, res)
	if err != nil {
		return 0, SolverStats{}, err
	}
	max, _, _ := sol.MaxT()
	return max, sol.Stats, nil
}

// ReferenceModel wraps the finite-volume reference solver as a Model so it
// can join sweeps and planning runs next to the analytical models. The zero
// Resolution selects DefaultResolution; Resolution.Workers sets the solver's
// kernel worker count. The returned model supports sweep cancellation
// (core.ContextSolver), so cancelling a Sweep stops its in-flight reference
// solves between solver iterations, and cross-solve reuse
// (core.ReusableSolver): Sweep workers automatically cache its assembly
// patterns, multigrid hierarchies and solver scratch across jobs.
func ReferenceModel(res Resolution) Model { return fem.ReferenceModel{Res: res} }

// NewSolveContext returns a reuse context for repeated reference solves
// outside of Sweep (which manages contexts itself): assembly patterns,
// multigrid hierarchies and solver scratch carry over between solves through
// it. Reuse never changes results — a solve through a context is
// bit-identical to one without — and Close releases the held worker pool.
// A context serves one solve at a time (use one per goroutine). Setting
// WarmStart additionally seeds each solve from the previous solution of the
// same system shape, which changes the CG iterate sequence but not the
// converged tolerance.
func NewSolveContext() *SolveContext { return fem.NewSolveContext() }

// SolveReferenceStatsWith is SolveReferenceStatsCtx solving through a reuse
// context; pass the same non-nil sc across a parameter sweep's solves to
// skip re-deriving the sparsity pattern and multigrid hierarchy each time.
func SolveReferenceStatsWith(ctx context.Context, sc *SolveContext, s *Stack, res Resolution) (float64, SolverStats, error) {
	sol, err := fem.SolveStackWith(ctx, sc, s, res)
	if err != nil {
		return 0, SolverStats{}, err
	}
	max, _, _ := sol.MaxT()
	return max, sol.Stats, nil
}

// Sweep evaluates all jobs across opt.Workers workers and returns one
// outcome per job in job order, regardless of worker scheduling. Per-job
// failures are captured in SweepOutcome.Err — one failing geometry does not
// abort the batch — and Sweep itself only returns an error when ctx is
// cancelled (models supporting cancellation, like ReferenceModel, then also
// abandon their in-flight solves). Results are bitwise identical for any
// worker count.
func Sweep(ctx context.Context, jobs Batch, opt SweepOptions) ([]SweepOutcome, error) {
	return sweep.Run(ctx, jobs, opt)
}

// NewSweepCache returns an empty memoization cache for SweepOptions.Cache or
// PlanOptions.Cache; it is safe for concurrent use and may be shared across
// batches. The cache is bounded (LRU eviction beyond a generous default
// capacity); use NewSweepCacheSize(0) for the unbounded behavior.
func NewSweepCache() *SweepCache { return sweep.NewCache() }

// NewSweepCacheSize returns a memoization cache holding at most capacity
// entries with least-recently-used eviction; capacity <= 0 means unbounded.
func NewSweepCacheSize(capacity int) *SweepCache { return sweep.NewCacheSize(capacity) }

// OpenSweepDiskCache opens (creating the directory if needed) a persistent
// sweep result cache holding at most maxEntries results (<= 0 selects a
// generous default), evicting least-recently-hit entries. Concurrent
// processes — e.g. shards of one sweep — may share a directory.
func OpenSweepDiskCache(dir string, maxEntries int) (*SweepDiskCache, error) {
	return sweep.OpenDiskCache(dir, maxEntries)
}

// NewSweepCacheWithDisk layers the in-memory LRU (capacity <= 0 means
// unbounded) over a persistent disk cache; disk may be nil.
func NewSweepCacheWithDisk(capacity int, disk *SweepDiskCache) *SweepCache {
	return sweep.NewCacheWithDisk(capacity, disk)
}

// ParseSweepShard parses a 1-based "i/n" shard spec ("2/5" = the second of
// five shards); the empty string selects the whole batch. Shards partition a
// sweep on the engine's warm-chain boundaries, so per-shard results — and
// merged reports — are bit-identical to a single-process run.
func ParseSweepShard(s string) (SweepShardSpec, error) { return sweep.ParseShardSpec(s) }

// NewTracer returns a span tracer writing NDJSON records (one JSON object
// per line) to w. Attach it to SweepOptions.Trace or PlanOptions.Trace, or
// thread it through a context with TraceContext to record individual
// reference solves.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// TraceContext returns a context carrying t, so context-threaded solves
// (SolveReferenceStatsCtx, Sweep) emit spans into it. A nil tracer returns
// ctx unchanged.
func TraceContext(ctx context.Context, t *Tracer) context.Context {
	return obs.ContextWithTracer(ctx, t)
}

// Metrics returns a point-in-time snapshot of the library's metrics
// registry: solver series (sparse.cg.*, mg.*, fem.*), batch-engine series
// (sweep.*, plan.*) and workload counters (chip.*, experiments.*). The
// snapshot is safe to read and serialize while solves continue.
func Metrics() MetricsSnapshot { return obs.Default().Snapshot() }

// ResetMetrics clears every metric series, e.g. between benchmark phases.
func ResetMetrics() { obs.Default().Reset() }

// DisableMetrics turns metric recording off process-wide; every record site
// reduces to a nil check. EnableMetrics turns it back on (with a fresh
// registry).
func DisableMetrics() { obs.SetDefault(nil) }

// EnableMetrics (re)starts metric collection into a fresh registry.
func EnableMetrics() { obs.SetDefault(obs.NewRegistry()) }

// CalibrateModelA fits Model A's (k1, k2) to reference temperatures, the
// paper's calibration workflow. start supplies the fixed c1 and a fallback.
func CalibrateModelA(points []CalibrationPoint, start Coeffs) (Coeffs, float64, error) {
	return fit.CalibrateModelA(points, start)
}

// SolveNonlinear iterates a model to self-consistency when material
// conductivities depend on temperature (Material.TempCoeff). It returns the
// converged result and the number of solves performed.
func SolveNonlinear(m Model, s *Stack, maxIter int, tol float64) (*Result, int, error) {
	return core.SolveNonlinear(m, s, maxIter, tol)
}

// DefaultTechnology returns a TTSV insertion technology matching the
// paper's case-study stack.
func DefaultTechnology() Technology { return plan.DefaultTechnology() }

// PlanInsertion assigns the minimum TTSV count per floorplan tile keeping
// every tile's temperature rise at or below budget (K) under the given
// thermal model — the planning methodology the paper's conclusion argues
// needs lateral-aware models.
func PlanInsertion(f *Floorplan, tech Technology, budget float64, m Model) (*PlanResult, error) {
	return plan.Plan(f, tech, budget, m)
}

// PlanInsertionWith is PlanInsertion with explicit concurrency and
// memoization control; the plan is identical for any worker count.
func PlanInsertionWith(f *Floorplan, tech Technology, budget float64, m Model, opt PlanOptions) (*PlanResult, error) {
	return plan.PlanWith(f, tech, budget, m, opt)
}

// ParseDeck parses a .ttsv scenario deck from r; name labels error
// positions (typically the file path). See package repro/internal/deck for
// the grammar: title line, '*' comments, '+' continuations, unit-suffixed
// values, element cards (block, plane, via, source, tile) and analysis
// cards (.op, .tran, .sweep, .plan).
func ParseDeck(name string, r io.Reader) (*Deck, error) { return deck.Parse(name, r) }

// ParseDeckFile parses the deck at path.
func ParseDeckFile(path string) (*Deck, error) { return deck.ParseFile(path) }

// RunDeck lowers the deck onto the engines and executes every analysis card
// in order. Results are bit-identical to the equivalent struct-built calls
// and to any DeckOptions.Workers setting.
func RunDeck(ctx context.Context, d *Deck, opt DeckOptions) (*DeckResult, error) {
	return deck.Run(ctx, d, opt)
}

// DefaultPowerMapResolution returns the full-chip verification mesh density.
func DefaultPowerMapResolution() PowerMapResolution { return chip.DefaultPowerMapResolution() }

// VerifyPlan runs the homogenized full-chip 3-D solve of a floorplan with a
// per-tile via allocation, resolving the tile-to-tile lateral coupling the
// planner's adiabatic-tile model ignores (§IV-E's model-embedding workflow
// scaled to non-uniform power maps).
func VerifyPlan(f *Floorplan, tech Technology, counts [][]int, res PowerMapResolution) (*PowerMapSolution, error) {
	return chip.SolvePowerMap(f, tech, counts, res)
}

// NewServeHandler returns the solve service as an http.Handler: POST /solve,
// /sweep, /plan and /deck run the library's analyses and respond with the
// same deterministic text reports the CLIs print (byte-identical for equal
// inputs), with single-flight coalescing of identical in-flight requests, a
// warm solver-state pool, token-bucket admission control and /metrics,
// /healthz, /debug/pprof/ on the same mux. Close the handler to release the
// warm pool.
func NewServeHandler(cfg ServeConfig) *ServeHandler { return serve.New(cfg) }

// Serve runs the solve service on addr until ctx is cancelled, then drains
// in-flight requests gracefully; the ttsvd command is a thin wrapper around
// it. A nil ready is allowed; otherwise it receives the bound address once
// the listener is up (useful with ":0").
func Serve(ctx context.Context, addr string, cfg ServeConfig, drain time.Duration, ready func(boundAddr string)) error {
	return serve.ListenAndServe(ctx, addr, cfg, drain, ready)
}
