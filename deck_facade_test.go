package ttsv_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	ttsv "repro"
)

// TestDeckFacade exercises the public deck surface end to end: parse a deck
// from text, run it, and compare against the equivalent struct-built solve.
func TestDeckFacade(t *testing.T) {
	src := `facade smoke deck
b1 side=100um sink=27
p1 tsi=500um td=4um
p2 tsi=45um td=4um tb=1um repeat=2
v1 r=10um tl=0.5um lext=1um
iall plane=all devd=700w/mm3 ildd=70w/mm3
.op model=a
.end
`
	d, err := ttsv.ParseDeck("facade.ttsv", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ttsv.RunDeck(context.Background(), d, ttsv.DeckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Analyses) != 1 || len(res.Analyses[0].Op) != 1 {
		t.Fatalf("unexpected result shape: %+v", res)
	}

	// 10um parses as 10·10⁻⁶ computed at runtime, which is one ulp away
	// from the literal 10e-6 — the deck promises bit-identity with the
	// equivalent units.UM call, so the comparison must use the same form.
	um := 1e-6
	s, err := ttsv.Fig4Block(10 * um)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Analyses[0].Op[0].MaxDT; got != want.MaxDT {
		t.Errorf("deck MaxDT %v != struct-built %v (bitwise)", got, want.MaxDT)
	}

	var buf strings.Builder
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "title: facade smoke deck") {
		t.Errorf("report missing title:\n%s", buf.String())
	}
}

// TestDeckFacadeError checks positioned errors cross the facade as
// *ttsv.DeckError.
func TestDeckFacadeError(t *testing.T) {
	_, err := ttsv.ParseDeck("bad.ttsv", strings.NewReader("t\n+ dangling\n"))
	if err == nil {
		t.Fatal("dangling continuation accepted")
	}
	var de *ttsv.DeckError
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not a *ttsv.DeckError", err)
	}
	if de.Pos.Line != 2 || !strings.HasPrefix(err.Error(), "bad.ttsv:2:") {
		t.Errorf("unexpected position: %v", err)
	}
}
