package ttsv_test

import (
	"testing"

	ttsv "repro"
)

// The facade tests exercise the library exactly as a downstream user would.

func TestQuickstartFlow(t *testing.T) {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDT <= 0 || res.MaxDT > 100 {
		t.Fatalf("implausible ΔT %g", res.MaxDT)
	}
}

func TestAllModelsThroughFacade(t *testing.T) {
	s, err := ttsv.Fig5Block(2e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ttsv.Model{
		ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()},
		ttsv.NewModelB(50),
		ttsv.Model1D{},
	} {
		r, err := m.Solve(s)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if r.MaxDT <= 0 {
			t.Errorf("%s: ΔT %g", m.Name(), r.MaxDT)
		}
	}
}

func TestCustomBlockThroughFacade(t *testing.T) {
	cfg := ttsv.DefaultBlock()
	cfg.NumPlanes = 4
	cfg.R = 6e-6
	s, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := ttsv.NewModelB(40).Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PlaneDT) != 4 {
		t.Fatalf("PlaneDT = %v", r.PlaneDT)
	}
}

func TestReferenceAndCalibrationThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("reference solve is slow")
	}
	s, err := ttsv.Fig4Block(8e-6)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ttsv.SolveReference(s, ttsv.DefaultResolution())
	if err != nil {
		t.Fatal(err)
	}
	if ref <= 0 {
		t.Fatalf("reference ΔT %g", ref)
	}
	coeffs, rms, err := ttsv.CalibrateModelA(
		[]ttsv.CalibrationPoint{{Stack: s, RefDT: ref}}, ttsv.UnitCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	if rms > 0.02 {
		t.Errorf("calibration residual %g", rms)
	}
	got, err := ttsv.ModelA{Coeffs: coeffs}.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if e := abs(got.MaxDT-ref) / ref; e > 0.02 {
		t.Errorf("calibrated model off by %.2f%%", 100*e)
	}
}

func TestCaseStudyThroughFacade(t *testing.T) {
	sys := ttsv.DRAMuP()
	r, err := sys.Analyze(ttsv.NewModelB(200))
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxDT < 5 || r.MaxDT > 30 {
		t.Fatalf("case study ΔT %g outside plausible band", r.MaxDT)
	}
}

func TestClusterTransformThroughFacade(t *testing.T) {
	s, err := ttsv.Fig7Block(1)
	if err != nil {
		t.Fatal(err)
	}
	m := ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}
	one, err := m.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	nine, err := m.Solve(s.WithViaCount(9))
	if err != nil {
		t.Fatal(err)
	}
	if nine.MaxDT >= one.MaxDT {
		t.Errorf("splitting the via did not reduce ΔT: %g vs %g", nine.MaxDT, one.MaxDT)
	}
}

func TestResistancesThroughFacade(t *testing.T) {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	res, rs, err := ttsv.Resistances(s, ttsv.UnitCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || rs <= 0 {
		t.Fatalf("res = %v, rs = %g", res, rs)
	}
	for i, pr := range res {
		if pr.Surround <= 0 || pr.Metal <= 0 || pr.Liner <= 0 {
			t.Errorf("plane %d: non-positive resistance %+v", i, pr)
		}
	}
}

func TestStockMaterials(t *testing.T) {
	if ttsv.Copper.K != 400 || ttsv.SiO2.K != 1.4 || ttsv.Polyimide.K != 0.15 || ttsv.Silicon.K != 130 {
		t.Error("stock materials differ from the paper")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFigureBuildersThroughFacade(t *testing.T) {
	if _, err := ttsv.Fig6Block(30e-6); err != nil {
		t.Error(err)
	}
	if _, err := ttsv.Fig7Block(9); err != nil {
		t.Error(err)
	}
	if ttsv.DefaultResolution().RadialVia < 1 {
		t.Error("default resolution invalid")
	}
}

func TestTransientThroughFacade(t *testing.T) {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ttsv.NewModelB(20).SolveTransient(s, ttsv.TransientSpec{Dt: 1e-4, Steps: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Settled || tr.FinalDT <= 0 {
		t.Fatalf("transient = %+v", tr)
	}
	static, err := ttsv.NewModelB(20).Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if abs(tr.FinalDT-static.MaxDT)/static.MaxDT > 1e-3 {
		t.Errorf("transient final %g vs static %g", tr.FinalDT, static.MaxDT)
	}
}

func TestNonlinearThroughFacade(t *testing.T) {
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Planes {
		s.Planes[i].Si.TempCoeff = -0.004
	}
	res, iters, err := ttsv.SolveNonlinear(ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}, s, 20, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDT <= 0 || iters < 2 {
		t.Fatalf("nonlinear = %+v after %d iterations", res, iters)
	}
}

func TestPlanningThroughFacade(t *testing.T) {
	f := &ttsv.Floorplan{TileSide: 0.75e-3}
	f.PlanePowers = [][][]float64{{{0.4, 0.05, 0.05}}}
	res, err := ttsv.PlanInsertion(f, ttsv.DefaultTechnology(), 13, ttsv.ModelA{Coeffs: ttsv.PaperSystemCoeffs()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalVias < 1 || res.MaxDT > 13 {
		t.Fatalf("plan = %+v", res)
	}
}
