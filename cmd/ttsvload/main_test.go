package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunInProcess(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-inproc", "-n", "40", "-c", "4", "-mix", "hotspot", "-keys", "4"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"40 requests", "0 errors", "p50=", "p99="} {
		if !strings.Contains(got, want) {
			t.Errorf("output does not contain %q:\n%s", want, got)
		}
	}
}

// TestSweepSmokeInProcess drives the streaming sharded /sweep smoke through
// an in-process server: every point must arrive exactly once across the
// shards' NDJSON streams.
func TestSweepSmokeInProcess(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-inproc", "-sweep", "-points", "12", "-shards", "2"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"sweep smoke OK", "12/12 points"} {
		if !strings.Contains(got, want) {
			t.Errorf("output does not contain %q:\n%s", want, got)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                                    // neither -addr nor -inproc
		{"-addr", "x", "-inproc"},             // both
		{"-inproc", "-mix", "zipf"},           // unknown mix
		{"-inproc", "-keys", "0"},             // degenerate keys
		{"-inproc", "-sweep", "-points", "0"}, // degenerate sweep smoke
		{"-inproc", "-sweep", "-shards", "0"},
	} {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}

// TestPickKey pins the deterministic schedule: uniform round-robins, hotspot
// sends 80% of requests to key 0 and never starves the others.
func TestPickKey(t *testing.T) {
	counts := make([]int, 5)
	for i := int64(0); i < 1000; i++ {
		counts[pickKey("hotspot", i, 5)]++
	}
	if counts[0] != 800 {
		t.Errorf("hotspot key 0 got %d of 1000 requests, want 800", counts[0])
	}
	for k := 1; k < 5; k++ {
		if counts[k] != 50 {
			t.Errorf("hotspot key %d got %d of 1000 requests, want 50", k, counts[k])
		}
	}
	for i := int64(0); i < 10; i++ {
		if got := pickKey("uniform", i, 5); got != int(i%5) {
			t.Errorf("uniform pickKey(%d) = %d, want %d", i, got, i%5)
		}
	}
}
