// Command ttsvload is a load generator for the ttsvd solve service: it fires
// steady-state /solve requests drawn from a fixed set of distinct geometries
// ("keys") at a configurable concurrency and reports throughput and latency
// quantiles. The key mix exercises the service's caching machinery: "uniform"
// spreads requests evenly (worst case for coalescing), "hotspot" sends 80% of
// them to one key (best case — concurrent duplicates collapse into one
// solve).
//
//	ttsvload -inproc -n 500 -c 16 -mix hotspot
//	ttsvload -addr 127.0.0.1:7437 -duration 10s
//
// With -sweep it instead smoke-tests the service's streaming sharded /sweep:
// one concurrent streamed request per shard, verifying that every sweep point
// arrives exactly once across the shards' NDJSON progress streams.
//
//	ttsvload -inproc -sweep -points 12 -shards 2
//
// The request schedule is a deterministic function of the request index, so
// two runs against the same server are comparable.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/deck"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stack"
	"repro/internal/units"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ttsvload: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ttsvload", flag.ContinueOnError)
	addr := fs.String("addr", "", "target ttsvd address (host:port)")
	inproc := fs.Bool("inproc", false, "start an in-process server on a free port and load that")
	n := fs.Int("n", 200, "total number of requests (ignored when -duration is set)")
	duration := fs.Duration("duration", 0, "run for this long instead of a fixed request count")
	conc := fs.Int("c", 4, "concurrent client workers")
	mix := fs.String("mix", "uniform", "key mix: uniform or hotspot (80% of requests hit key 0)")
	keys := fs.Int("keys", 8, "number of distinct request geometries")
	sweepMode := fs.Bool("sweep", false, "smoke-test the streaming sharded /sweep instead of load-testing /solve")
	points := fs.Int("points", 12, "sweep points for -sweep")
	shards := fs.Int("shards", 2, "concurrent streamed shards for -sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *keys < 1 || *conc < 1 {
		return fmt.Errorf("-keys and -c must be >= 1")
	}
	if *sweepMode && (*points < 1 || *shards < 1) {
		return fmt.Errorf("-points and -shards must be >= 1")
	}
	if *mix != "uniform" && *mix != "hotspot" {
		return fmt.Errorf("unknown -mix %q (want uniform or hotspot)", *mix)
	}
	if (*addr == "") == !*inproc {
		return fmt.Errorf("give exactly one of -addr or -inproc")
	}

	target := *addr
	if *inproc {
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()
		ready := make(chan string, 1)
		errc := make(chan error, 1)
		go func() {
			errc <- serve.ListenAndServe(sctx, "127.0.0.1:0", serve.Config{Registry: obs.NewRegistry()}, time.Second, func(bound string) {
				ready <- bound
			})
		}()
		select {
		case target = <-ready:
			defer func() {
				cancel()
				<-errc // drain shutdown before reporting
			}()
		case err := <-errc:
			return fmt.Errorf("in-process server: %w", err)
		}
	}

	if *sweepMode {
		return sweepSmoke(ctx, target, *points, *shards, out)
	}

	bodies, err := makeBodies(*keys)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ttsvload: %s mix over %d keys, %d workers -> http://%s/solve\n", *mix, *keys, *conc, target)

	reg := obs.NewRegistry()
	hist := reg.Histogram("load.request.seconds", obs.ExpBuckets(1e-6, 2, 26))
	var sent, failed atomic.Int64
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	url := "http://" + target + "/solve"

	// next hands out global request indices; the index alone decides which
	// key a request hits, so the schedule is deterministic for any -c.
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := next.Add(1) - 1
				if deadline.IsZero() {
					if i >= int64(*n) {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				body := bodies[pickKey(*mix, i, *keys)]
				t0 := time.Now()
				ok := fire(ctx, client, url, body)
				hist.Observe(time.Since(t0).Seconds())
				sent.Add(1)
				if !ok {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	hs := reg.Snapshot().Histograms["load.request.seconds"]
	total := sent.Load()
	fmt.Fprintf(out, "ttsvload: %d requests in %v (%.1f req/s), %d errors\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), failed.Load())
	fmt.Fprintf(out, "ttsvload: latency p50=%s p99=%s mean=%s\n",
		secs(hs.Quantile(0.5)), secs(hs.Quantile(0.99)), secs(hs.Mean()))
	if failed.Load() > 0 {
		return fmt.Errorf("%d of %d requests failed", failed.Load(), total)
	}
	return ctx.Err()
}

// sweepSmoke fires one streamed sharded /sweep request per shard
// concurrently and verifies that the shards' NDJSON progress streams jointly
// deliver every sweep point exactly once, each stream ending in a final
// record carrying the shard's report.
func sweepSmoke(ctx context.Context, target string, points, shards int, out io.Writer) error {
	url := "http://" + target + "/sweep"
	fmt.Fprintf(out, "ttsvload: sweep smoke: %d points across %d streamed shards -> %s\n", points, shards, url)
	client := &http.Client{Timeout: 2 * time.Minute}

	counts := make([]map[int]int, shards) // per shard: point index -> times seen
	errs := make([]error, shards)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			counts[s], errs[s] = streamShard(ctx, client, url, points, s+1, shards)
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	seen := make(map[int]int, points)
	streamed := 0
	for s := 0; s < shards; s++ {
		if errs[s] != nil {
			return fmt.Errorf("shard %d/%d: %w", s+1, shards, errs[s])
		}
		for i, c := range counts[s] {
			seen[i] += c
			streamed += c
		}
		fmt.Fprintf(out, "ttsvload: shard %d/%d streamed %d points\n", s+1, shards, len(counts[s]))
	}
	for i := 0; i < points; i++ {
		if seen[i] != 1 {
			return fmt.Errorf("sweep point %d streamed %d times across the shards, want exactly once", i, seen[i])
		}
	}
	fmt.Fprintf(out, "ttsvload: sweep smoke OK: %d/%d points streamed once each in %v\n",
		streamed, points, elapsed.Round(time.Millisecond))
	return nil
}

// streamShard posts one streamed shard request and tallies the point indices
// its NDJSON progress records carry.
func streamShard(ctx context.Context, client *http.Client, url string, points, shard, shards int) (map[int]int, error) {
	body, err := json.Marshal(serve.SweepRequest{
		Block:  stack.DefaultBlock(),
		Param:  "r",
		From:   units.UM(5),
		To:     units.UM(20),
		Points: points,
		Models: deck.ModelSpec{Model: "a"},
		Shard:  fmt.Sprintf("%d/%d", shard, shards),
		Stream: true,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return nil, fmt.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}

	counts := make(map[int]int)
	sawFinal := false
	dec := json.NewDecoder(resp.Body)
	for {
		// One flat struct covers both record kinds: progress records fill
		// Index/Err, the final record fills Done/Report/Err. (The "error"
		// key means the same thing in both.)
		var rec struct {
			Index  int    `json:"i"`
			Done   bool   `json:"done"`
			Report string `json:"report"`
			Err    string `json:"error"`
		}
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if sawFinal {
			return nil, fmt.Errorf("record after the final one")
		}
		if rec.Done {
			if rec.Err != "" {
				return nil, fmt.Errorf("final record: %s", rec.Err)
			}
			if rec.Report == "" {
				return nil, fmt.Errorf("final record carries no report")
			}
			sawFinal = true
			continue
		}
		if rec.Err != "" {
			return nil, fmt.Errorf("point %d: %s", rec.Index, rec.Err)
		}
		counts[rec.Index]++
	}
	if !sawFinal {
		return nil, fmt.Errorf("stream ended without a final record")
	}
	return counts, nil
}

// pickKey maps a request index to a geometry key. Uniform round-robins;
// hotspot sends 4 of every 5 requests to key 0 and spreads the rest.
func pickKey(mix string, i int64, keys int) int {
	if mix == "hotspot" && keys > 1 {
		if i%5 != 4 {
			return 0
		}
		return 1 + int((i/5)%int64(keys-1))
	}
	return int(i % int64(keys))
}

// makeBodies builds the distinct /solve request bodies: the paper's default
// block with the via radius stepped per key, solved with Model A (cheap
// enough that the measured latency is mostly the serving machinery).
func makeBodies(keys int) ([][]byte, error) {
	bodies := make([][]byte, keys)
	for i := range bodies {
		cfg := stack.DefaultBlock()
		cfg.R = units.UM(8 + float64(i)/4)
		b, err := json.Marshal(serve.SolveRequest{Block: cfg, Models: deck.ModelSpec{Model: "a"}})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// fire sends one request and reports whether it got 200.
func fire(ctx context.Context, client *http.Client, url string, body []byte) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// secs renders a latency in seconds as a duration string.
func secs(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}
