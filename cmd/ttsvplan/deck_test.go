package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// update rewrites the shared deck golden files instead of comparing:
//
//	go test ./cmd/ttsvplan -run TestDeckGolden -update
var update = flag.Bool("update", false, "rewrite deck golden files")

const (
	deckCorpusDir = "../../testdata/decks"
	deckGoldenDir = "../../testdata/decks/golden"
)

// TestDeckGolden runs ttsvplan -deck on the planning decks of the corpus
// and compares byte for byte against the shared goldens.
func TestDeckGolden(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(deckCorpusDir, "plan_*.ttsv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("corpus has no plan decks")
	}
	sort.Strings(paths)
	for _, path := range paths {
		path := path
		base := strings.TrimSuffix(filepath.Base(path), ".ttsv")
		t.Run(base, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(context.Background(), []string{"-deck", path}, &buf); err != nil {
				t.Fatalf("ttsvplan -deck %s: %v", path, err)
			}
			golden := filepath.Join(deckGoldenDir, base+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
			}
		})
	}
}

// TestDeckWorkersInvariant checks that -workers never changes a planning
// deck's output.
func TestDeckWorkersInvariant(t *testing.T) {
	path := filepath.Join(deckCorpusDir, "plan_hotspot.ttsv")
	var ref bytes.Buffer
	if err := run(context.Background(), []string{"-deck", path, "-workers", "1"}, &ref); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"2", "8"} {
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-deck", path, "-workers", w}, &buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref.Bytes(), buf.Bytes()) {
			t.Errorf("-workers %s output differs from -workers 1", w)
		}
	}
}

// TestDeckFlagRelaxesFloorplan checks -deck lifts the -floorplan
// requirement, and that neither flag still errors.
func TestDeckFlagRelaxesFloorplan(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-floorplan or -deck") {
		t.Errorf("missing-input error = %v", err)
	}
}
