package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFloorplan(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fp.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const demoFP = `{
  "TileSide": 0.00075,
  "PlanePowers": [
    [[0.4, 0.05, 0.05], [0.4, 0.05, 0.05]],
    [[0.8, 0.1, 0.1], [0.4, 0.05, 0.05]]
  ]
}`

func TestPlanCLI(t *testing.T) {
	path := writeFloorplan(t, demoFP)
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-floorplan", path, "-budget", "12"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "vias") || !strings.Contains(out, "max ΔT") {
		t.Errorf("output:\n%s", out)
	}
	// Four tile rows of counts printed (2x2 grid => 2 lines of 2 numbers).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Errorf("expected plan header + grid, got:\n%s", out)
	}
}

func TestPlanCLIModels(t *testing.T) {
	path := writeFloorplan(t, demoFP)
	var a, d bytes.Buffer
	if err := run(context.Background(), []string{"-floorplan", path, "-budget", "12", "-model", "A"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-floorplan", path, "-budget", "12", "-model", "1D"}, &d); err != nil {
		t.Fatal(err)
	}
	if a.String() == d.String() {
		t.Error("A and 1D plans identical")
	}
	var b bytes.Buffer
	if err := run(context.Background(), []string{"-floorplan", path, "-budget", "12", "-model", "B", "-segments", "40"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "B(40)") {
		t.Errorf("Model B output: %s", b.String())
	}
}

func TestPlanCLIVerify(t *testing.T) {
	// Plan with Model B so the plan's own model matches the verifier's
	// calibration target; a Model A plan may legitimately draw a warning
	// since the verifier is calibrated against Model B.
	path := writeFloorplan(t, demoFP)
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-floorplan", path, "-budget", "13", "-model", "B", "-verify"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "full-chip 3-D verification") {
		t.Errorf("output:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "plan holds chip-wide") {
		t.Errorf("verification did not confirm the plan:\n%s", buf.String())
	}
}

func TestPlanCLITraceAndMetrics(t *testing.T) {
	path := writeFloorplan(t, demoFP)
	trace := filepath.Join(t.TempDir(), "plan.ndjson")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-floorplan", path, "-budget", "12", "-trace", trace, "-metrics"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Span   string `json:"span"`
		ID     int64  `json:"id"`
		Parent int64  `json:"parent"`
	}
	var runID int64
	tiles := 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch r.Span {
		case "plan.run":
			runID = r.ID
		case "plan.tile":
			tiles++
		}
	}
	if runID == 0 {
		t.Error("no plan.run span")
	}
	if tiles != 4 {
		t.Errorf("got %d plan.tile spans for a 2×2 floorplan, want 4", tiles)
	}
	if !strings.Contains(buf.String(), "plan.tiles") {
		t.Errorf("-metrics dump missing plan.tiles:\n%s", buf.String())
	}
}

func TestPlanCLIErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{}, &buf); err == nil {
		t.Error("missing floorplan accepted")
	}
	if err := run(context.Background(), []string{"-floorplan", "/does/not/exist.json"}, &buf); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeFloorplan(t, `{"TileSide": 0.00075, "Rows": 1}`)
	if err := run(context.Background(), []string{"-floorplan", bad}, &buf); err == nil {
		t.Error("unknown JSON field accepted")
	}
	path := writeFloorplan(t, demoFP)
	if err := run(context.Background(), []string{"-floorplan", path, "-model", "zzz"}, &buf); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(context.Background(), []string{"-floorplan", path, "-budget", "0.01"}, &buf); err == nil {
		t.Error("impossible budget accepted")
	}
}
