// Command ttsvplan runs budget-driven TTSV insertion planning on a tiled
// power map and optionally verifies the plan with the full-chip 3-D solver.
//
//	ttsvplan -floorplan chip.json -budget 14
//	ttsvplan -floorplan chip.json -budget 14 -model 1D      # the paper's warning
//	ttsvplan -floorplan chip.json -budget 14 -verify        # 3-D check
//
// The floorplan file is a JSON plan.Floorplan (SI units):
//
//	{
//	  "TileSide": 0.00075,
//	  "PlanePowers": [[[0.4, 0.05, 0.05], [0.4, 0.05, 0.05]]]
//	}
//
// PlanePowers is indexed [row][col][plane] in watts, plane 0 adjacent to the
// heat sink.
//
// The -verify solve is calibrated against Model B, so a plan computed with
// Model A (whose fitted coefficients run a few percent cooler) may draw a
// warning even though it meets its own model's budget — plan with -model B
// for a self-consistent verification.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	ttsv "repro"
	"repro/internal/cliobs"
)

func main() {
	// Ctrl-C / SIGTERM cancel the run's context instead of killing the
	// process outright, so deferred cleanup (notably the -trace NDJSON
	// flush in cliobs.Finish) still runs and partial output stays
	// well-formed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ttsvplan: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("ttsvplan", flag.ContinueOnError)
	fpPath := fs.String("floorplan", "", "JSON floorplan file (required unless -deck is given)")
	deckPath := fs.String("deck", "", ".ttsv scenario deck file; runs its analysis cards instead of -floorplan")
	budget := fs.Float64("budget", 15, "maximum allowed temperature rise [K]")
	model := fs.String("model", "A", "thermal model: A, B or 1D")
	segments := fs.Int("segments", 100, "Model B segments per plane")
	k1 := fs.Float64("k1", 1.6, "Model A coefficient k1 (system default)")
	k2 := fs.Float64("k2", 0.8, "Model A coefficient k2 (system default)")
	c1 := fs.Float64("c1", 3.5, "Model A plane-1 spreading coefficient")
	verify := fs.Bool("verify", false, "run the full-chip 3-D verification solve")
	workers := fs.Int("workers", 0, "parallel tile-planning workers (0 = all CPUs); the plan is identical for any count")
	obsf := cliobs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fpPath == "" && *deckPath == "" {
		fs.Usage()
		return fmt.Errorf("-floorplan or -deck is required")
	}
	tracer, err := obsf.Start(out)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := obsf.Finish(out); err == nil {
			err = ferr
		}
	}()
	if *deckPath != "" {
		d, err := ttsv.ParseDeckFile(*deckPath)
		if err != nil {
			return err
		}
		ctx := ttsv.TraceContext(ctx, tracer)
		res, err := ttsv.RunDeck(ctx, d, ttsv.DeckOptions{Workers: *workers, Trace: tracer})
		if err != nil {
			return err
		}
		return res.WriteText(out)
	}
	f, err := loadFloorplan(*fpPath)
	if err != nil {
		return err
	}

	var m ttsv.Model
	switch *model {
	case "A":
		m = ttsv.ModelA{Coeffs: ttsv.Coeffs{K1: *k1, K2: *k2, C1: *c1}}
	case "B":
		m = ttsv.NewModelB(*segments)
	case "1D":
		m = ttsv.Model1D{}
	default:
		return fmt.Errorf("unknown model %q (want A, B or 1D)", *model)
	}

	tech := ttsv.DefaultTechnology()
	res, err := ttsv.PlanInsertionWith(f, tech, *budget, m, ttsv.PlanOptions{Ctx: ctx, Workers: *workers, Trace: tracer})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "plan (%s, budget %.1f K): %d vias, %.3f mm² via metal, max ΔT %.2f K\n",
		m.Name(), *budget, res.TotalVias, res.ViaArea*1e6, res.MaxDT)
	fmt.Fprintln(out, "via counts per tile:")
	for _, row := range res.Counts {
		for _, n := range row {
			fmt.Fprintf(out, "%4d", n)
		}
		fmt.Fprintln(out)
	}
	if *verify {
		full, err := ttsv.VerifyPlan(f, tech, res.Counts, ttsv.DefaultPowerMapResolution())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "full-chip 3-D verification (%d cells): max ΔT %.2f K\n", full.Cells, full.MaxDT)
		if full.MaxDT > *budget {
			fmt.Fprintln(out, "WARNING: chip-wide peak exceeds the budget")
		} else {
			fmt.Fprintln(out, "plan holds chip-wide")
		}
	}
	return nil
}

func loadFloorplan(path string) (*ttsv.Floorplan, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	dec := json.NewDecoder(fh)
	dec.DisallowUnknownFields()
	var f ttsv.Floorplan
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("decoding floorplan %s: %w", path, err)
	}
	return &f, nil
}
