package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAllModels(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-model", "all", "-r", "8", "-segments", "20"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"A", "B(20)", "1D", "max ΔT", "block: 3 planes"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSingleModels(t *testing.T) {
	for _, m := range []string{"A", "B", "1D"} {
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-model", m, "-r", "6", "-segments", "10"}, &buf); err != nil {
			t.Fatalf("model %s: %v", m, err)
		}
		if !strings.Contains(buf.String(), "max ΔT") {
			t.Errorf("model %s: no result printed", m)
		}
	}
}

func TestRunReference(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-model", "ref", "-r", "10"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FVM reference") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestRunCluster(t *testing.T) {
	var one, four bytes.Buffer
	if err := run(context.Background(), []string{"-model", "A", "-r", "10", "-tsi", "20", "-td", "4", "-tl", "1"}, &one); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-model", "A", "-r", "10", "-tsi", "20", "-td", "4", "-tl", "1", "-vias", "4"}, &four); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(four.String(), "×4") {
		t.Errorf("cluster count not reported: %s", four.String())
	}
	if one.String() == four.String() {
		t.Error("cluster split changed nothing")
	}
}

func TestRunAspectRatioWarning(t *testing.T) {
	var buf bytes.Buffer
	// r = 1 µm with thick planes: aspect ratio way past 10.
	if err := run(context.Background(), []string{"-model", "1D", "-r", "1", "-tsi", "45"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "warning") {
		t.Errorf("no aspect-ratio warning:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-model", "bogus"}, &buf); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(context.Background(), []string{"-r", "-5"}, &buf); err == nil {
		t.Error("negative radius accepted")
	}
	if err := run(context.Background(), []string{"-planes", "1"}, &buf); err == nil {
		t.Error("single plane accepted")
	}
	if err := run(context.Background(), []string{"-not-a-flag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}

// A reference solve behind -trace must emit a parseable NDJSON span chain
// covering assembly → preconditioner setup → CG, and -metrics must dump the
// solver series.
func TestRunTraceAndMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-model", "ref", "-r", "10", "-trace", path, "-metrics"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Span   string `json:"span"`
		ID     int64  `json:"id"`
		Parent int64  `json:"parent"`
	}
	byName := map[string][]rec{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		byName[r.Span] = append(byName[r.Span], r)
	}
	solves := byName["fem.solve"]
	if len(solves) != 1 {
		t.Fatalf("got %d fem.solve spans, want 1 (spans: %v)", len(solves), byName)
	}
	for _, name := range []string{"fem.assemble", "fem.precond", "sparse.cg"} {
		rs := byName[name]
		if len(rs) == 0 {
			t.Errorf("trace missing %q span", name)
			continue
		}
		if rs[0].Parent != solves[0].ID {
			t.Errorf("%s parented to %d, want fem.solve id %d", name, rs[0].Parent, solves[0].ID)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "trace: wrote "+path) {
		t.Errorf("trace destination not reported:\n%s", out)
	}
	for _, want := range []string{"counter", "sparse.cg.solves", "sparse.cg.iterations"} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics dump missing %q:\n%s", want, out)
		}
	}
}

func TestRunPprofFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-model", "1D", "-pprof", "127.0.0.1:0"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pprof: serving on http://127.0.0.1:") {
		t.Errorf("pprof address not reported:\n%s", buf.String())
	}
}

func TestRunConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "block.json")
	if err := os.WriteFile(path, []byte(`{"R": 8e-6, "NumPlanes": 4, "Fill": "W"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-config", path, "-model", "1D"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4 planes") || !strings.Contains(out, "r = 8 µm") {
		t.Errorf("config not applied:\n%s", out)
	}
	// An explicit flag overrides the config.
	buf.Reset()
	if err := run(context.Background(), []string{"-config", path, "-model", "1D", "-r", "12"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "r = 12 µm") {
		t.Errorf("flag did not override config:\n%s", buf.String())
	}
	if err := run(context.Background(), []string{"-config", filepath.Join(dir, "missing.json")}, &buf); err == nil {
		t.Error("missing config accepted")
	}
}
