// Command ttsvsolve analyzes one user-specified 3-D IC block with any of the
// TTSV thermal models. All lengths are given in micrometers on the command
// line and converted internally.
//
//	ttsvsolve -model A -r 10 -tl 1 -tsi 45
//	ttsvsolve -model B -segments 200 -planes 4 -r 5
//	ttsvsolve -model all -r 8 -vias 4            # cluster of 4, all models
//	ttsvsolve -model ref -r 8                    # FVM reference solve
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	ttsv "repro"
	"repro/internal/clideck"
	"repro/internal/cliobs"
	"repro/internal/stack"
	"repro/internal/units"
)

func main() {
	// Ctrl-C / SIGTERM cancel the run's context instead of killing the
	// process outright, so deferred cleanup (notably the -trace NDJSON
	// flush in cliobs.Finish) still runs and partial output stays
	// well-formed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ttsvsolve: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("ttsvsolve", flag.ContinueOnError)
	model := fs.String("model", "all", "model to run: A, B, 1D, ref or all")
	segments := fs.Int("segments", 100, "Model B segments per plane")
	planes := fs.Int("planes", 3, "number of planes")
	r := fs.Float64("r", 10, "via radius [µm]")
	tl := fs.Float64("tl", 0.5, "liner thickness [µm]")
	td := fs.Float64("td", 4, "ILD thickness [µm]")
	tb := fs.Float64("tb", 1, "bond thickness [µm]")
	tsi := fs.Float64("tsi", 45, "upper-plane substrate thickness [µm]")
	tsi1 := fs.Float64("tsi1", 500, "first-plane substrate thickness [µm]")
	side := fs.Float64("side", 100, "square footprint side [µm]")
	vias := fs.Int("vias", 1, "split the via into this many (equal metal area)")
	k1 := fs.Float64("k1", 1.3, "Model A fitting coefficient k1")
	k2 := fs.Float64("k2", 0.55, "Model A fitting coefficient k2")
	devDensity := fs.Float64("qdev", 700, "device power density [W/mm³]")
	ildDensity := fs.Float64("qild", 70, "interconnect power density [W/mm³]")
	workers := fs.Int("workers", 0, "reference-solver kernel workers (<= 1 = sequential; only -model ref)")
	precond := fs.String("precond", "auto", "reference-solver preconditioner: auto, jacobi, ssor, chebyshev, mg or none (only -model ref)")
	operator := fs.String("operator", "auto", "reference-solver matrix representation: auto, csr or stencil (matrix-free; only -model ref)")
	mgHier := fs.String("mg-hierarchy", "auto", "multigrid coarse-level construction: auto, galerkin or geometric (only -model ref)")
	mgPrec := fs.String("mg-precision", "auto", "multigrid preconditioner-data storage: auto, f64 or f32 (f32 needs -mg-hierarchy geometric; only -model ref)")
	verbose := fs.Bool("v", false, "print per-solve linear-solver statistics (iterations, residual, preconditioner)")
	config := fs.String("config", "", "JSON block config file (SI units); explicit flags override its fields")
	deckPath := fs.String("deck", "", ".ttsv scenario deck file; runs its analysis cards and ignores the geometry flags")
	sweepf := clideck.Register(fs)
	obsf := cliobs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *deckPath == "" && sweepf.Set() {
		return fmt.Errorf("-shard/-journal/-resume/-merge/-cache-dir/-progress control a deck's .sweep and require -deck")
	}
	tracer, err := obsf.Start(out)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := obsf.Finish(out); err == nil {
			err = ferr
		}
	}()

	if *deckPath != "" {
		ctl, err := sweepf.Control(os.Stderr)
		if err != nil {
			return err
		}
		d, err := ttsv.ParseDeckFile(*deckPath)
		if err != nil {
			return err
		}
		ctx := ttsv.TraceContext(ctx, tracer)
		res, err := ttsv.RunDeck(ctx, d, ttsv.DeckOptions{Workers: *workers, Trace: tracer, Sweep: ctl})
		if err != nil {
			return err
		}
		return res.WriteText(out)
	}

	cfg := ttsv.DefaultBlock()
	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			return err
		}
		cfg, err = stack.LoadBlockConfig(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	// Geometry flags apply on top of the config only when given explicitly,
	// so a config file and a quick command-line tweak compose.
	explicit := make(map[string]bool)
	fs.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })
	apply := func(name string, set func()) {
		if *config == "" || explicit[name] {
			set()
		}
	}
	apply("planes", func() { cfg.NumPlanes = *planes })
	apply("r", func() { cfg.R = units.UM(*r) })
	apply("tl", func() { cfg.TL = units.UM(*tl) })
	apply("td", func() { cfg.TD = units.UM(*td) })
	apply("tb", func() { cfg.TB = units.UM(*tb) })
	apply("tsi", func() { cfg.TSi = units.UM(*tsi) })
	apply("tsi1", func() { cfg.TSi1 = units.UM(*tsi1) })
	apply("side", func() { cfg.FootprintSide = units.UM(*side) })
	apply("vias", func() { cfg.ViaCount = *vias })
	apply("qdev", func() { cfg.DevicePowerDensity = units.WPerMM3(*devDensity) })
	apply("qild", func() { cfg.ILDPowerDensity = units.WPerMM3(*ildDensity) })
	s, err := cfg.Build()
	if err != nil {
		return err
	}
	sideUM := units.ToUM(cfg.FootprintSide)
	fmt.Fprintf(out, "block: %d planes, A0 = %g µm², via r = %g µm ×%d, Σq = %.4g W\n",
		len(s.Planes), sideUM*sideUM, units.ToUM(s.Via.Radius), s.Via.EffectiveCount(), s.TotalPower())
	if err := s.ValidateFabrication(); err != nil {
		fmt.Fprintf(out, "warning: %v\n", err)
	}

	coeffs := ttsv.Coeffs{K1: *k1, K2: *k2, C1: 1}
	var models []ttsv.Model
	switch *model {
	case "A":
		models = []ttsv.Model{ttsv.ModelA{Coeffs: coeffs}}
	case "B":
		models = []ttsv.Model{ttsv.NewModelB(*segments)}
	case "1D":
		models = []ttsv.Model{ttsv.Model1D{}}
	case "ref":
		res := ttsv.DefaultResolution()
		res.Workers = *workers
		res.Precond, err = ttsv.ParsePrecond(*precond)
		if err != nil {
			return err
		}
		res.Operator, err = ttsv.ParseOperator(*operator)
		if err != nil {
			return err
		}
		res.Hierarchy, err = ttsv.ParseMGHierarchy(*mgHier)
		if err != nil {
			return err
		}
		res.Precision, err = ttsv.ParseMGPrecision(*mgPrec)
		if err != nil {
			return err
		}
		ctx := ttsv.TraceContext(ctx, tracer)
		dt, st, err := ttsv.SolveReferenceStatsCtx(ctx, s, res)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "FVM reference: max ΔT = %.3f K (absolute %.2f °C)\n", dt, dt+s.SinkTemp)
		if *verbose {
			fmt.Fprintf(out, "solver: %s in %v\n", st, st.Wall.Round(time.Microsecond))
		}
		return nil
	case "all":
		models = []ttsv.Model{
			ttsv.ModelA{Coeffs: coeffs},
			ttsv.NewModelB(*segments),
			ttsv.Model1D{},
		}
	default:
		return fmt.Errorf("unknown model %q (want A, B, 1D, ref or all)", *model)
	}
	for _, m := range models {
		res, err := m.Solve(s)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-8s max ΔT = %.3f K (absolute %.2f °C), planes %s\n",
			m.Name(), res.MaxDT, res.MaxDT+s.SinkTemp, formatPlanes(res.PlaneDT))
	}
	return nil
}

func formatPlanes(dts []float64) string {
	s := "["
	for i, dt := range dts {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", dt)
	}
	return s + "]"
}
