package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shardDeck gives the sharding tests 12 sweep jobs: two 8-point engine
// chains, so "-shard 1/2" and "-shard 2/2" split it [0,8) / [8,12).
const shardDeck = `Shard identity sweep
b1 side=100um sink=27
p1 tsi=500um td=4um
p2 tsi=45um td=4um tb=1um repeat=2
v1 r=10um tl=0.5um lext=1um
iall plane=all devd=700w/mm3 ildd=70w/mm3
.sweep r 6um 12um 12 model=b segments=100
.end
`

// TestDeckShardMergeIdentity drives the full CLI workflow: run each shard
// with its own journal, merge the journals, and require the merged report to
// match an unsharded run byte for byte.
func TestDeckShardMergeIdentity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ttsv")
	if err := os.WriteFile(path, []byte(shardDeck), 0o644); err != nil {
		t.Fatal(err)
	}

	var ref bytes.Buffer
	if err := run(context.Background(), []string{"-deck", path}, &ref); err != nil {
		t.Fatal(err)
	}

	var journals []string
	for _, spec := range []string{"1/2", "2/2"} {
		jp := filepath.Join(dir, strings.ReplaceAll(spec, "/", "of")+".journal")
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-deck", path, "-shard", spec, "-journal", jp}, &buf); err != nil {
			t.Fatalf("shard %s: %v", spec, err)
		}
		if !strings.Contains(buf.String(), "shard: "+spec) {
			t.Errorf("shard %s report lacks its shard header:\n%s", spec, buf.String())
		}
		journals = append(journals, jp)
	}

	var merged bytes.Buffer
	if err := run(context.Background(), []string{"-deck", path, "-merge", strings.Join(journals, ",")}, &merged); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !bytes.Equal(merged.Bytes(), ref.Bytes()) {
		t.Errorf("merged report differs from unsharded run:\n--- merged ---\n%s\n--- direct ---\n%s", merged.Bytes(), ref.Bytes())
	}
}

// TestSweepFlagsRequireDeck: the sweep-control flags shape a deck's .sweep;
// without -deck they must be rejected, not silently ignored.
func TestSweepFlagsRequireDeck(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-shard", "1/2", "-model", "A"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-deck") {
		t.Errorf("-shard without -deck: err = %v, want a -deck complaint", err)
	}
	err = run(context.Background(), []string{"-deck", "x.ttsv", "-resume"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-journal") {
		t.Errorf("-resume without -journal: err = %v, want a -journal complaint", err)
	}
	err = run(context.Background(), []string{"-deck", "x.ttsv", "-shard", "0/4"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "shard") {
		t.Errorf("malformed -shard: err = %v, want a shard parse error", err)
	}
}
