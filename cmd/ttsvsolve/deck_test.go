package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// update rewrites the shared deck golden files instead of comparing:
//
//	go test ./cmd/ttsvsolve -run TestDeckGolden -update
var update = flag.Bool("update", false, "rewrite deck golden files")

const (
	deckCorpusDir = "../../testdata/decks"
	deckGoldenDir = "../../testdata/decks/golden"
)

// TestDeckGolden runs ttsvsolve -deck over the whole corpus and compares
// the report byte for byte against the shared goldens (the same files the
// internal/deck golden tests check, so CLI plumbing cannot drift from the
// library path).
func TestDeckGolden(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(deckCorpusDir, "*.ttsv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("corpus has %d decks, want >= 6", len(paths))
	}
	sort.Strings(paths)
	for _, path := range paths {
		path := path
		base := strings.TrimSuffix(filepath.Base(path), ".ttsv")
		t.Run(base, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := run(context.Background(), []string{"-deck", path}, &buf); err != nil {
				t.Fatalf("ttsvsolve -deck %s: %v", path, err)
			}
			golden := filepath.Join(deckGoldenDir, base+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
			}
		})
	}
}

// TestDeckWorkersInvariant checks the CLI contract that -workers never
// changes deck output.
func TestDeckWorkersInvariant(t *testing.T) {
	path := filepath.Join(deckCorpusDir, "sweep_liner.ttsv")
	var ref bytes.Buffer
	if err := run(context.Background(), []string{"-deck", path, "-workers", "1"}, &ref); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"2", "8"} {
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-deck", path, "-workers", w}, &buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref.Bytes(), buf.Bytes()) {
			t.Errorf("-workers %s output differs from -workers 1", w)
		}
	}
}

// TestDeckErrorsPositioned checks that a malformed deck surfaces the
// file:line:col position through the CLI.
func TestDeckErrorsPositioned(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.ttsv")
	if err := os.WriteFile(bad, []byte("t\nv1 r=-1um tl=1um\n.op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-deck", bad}, &buf)
	if err == nil {
		t.Fatal("malformed deck did not error")
	}
	if !strings.Contains(err.Error(), "bad.ttsv:2:") {
		t.Errorf("error %q lacks the file:line position", err)
	}
}
