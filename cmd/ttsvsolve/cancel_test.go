package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCancelledRunWritesWellFormedTrace: a cancelled run must still flush
// its -trace file as complete NDJSON records. The regression this guards is
// the CLIs running on context.Background() with no signal handling, where
// Ctrl-C killed the process mid-write and truncated the trace.
func TestCancelledRunWritesWellFormedTrace(t *testing.T) {
	dir := t.TempDir()
	deckPath := filepath.Join(dir, "sweep.ttsv")
	deck := `* cancelled sweep
b1 side=100um sink=27C
p1 tsi=500um td=4um
p2 tsi=45um td=4um tb=1um
i1 dev=0.07W
v1 r=10um tl=0.5um
.sweep r 5um 10um 6 model=a
`
	if err := os.WriteFile(deckPath, []byte(deck), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "trace.ndjson")

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // simulate Ctrl-C before the run starts solving

	var out bytes.Buffer
	err := run(ctx, []string{"-deck", deckPath, "-trace", tracePath}, &out)
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("error %q does not reflect the cancellation", err)
	}

	raw, rerr := os.ReadFile(tracePath)
	if rerr != nil {
		t.Fatalf("trace file not written: %v", rerr)
	}
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if jerr := json.Unmarshal([]byte(line), &rec); jerr != nil {
			t.Fatalf("trace line %d is not well-formed JSON: %v\n%s", i+1, jerr, line)
		}
	}
	if !strings.Contains(out.String(), "trace: wrote") {
		t.Fatalf("Finish did not report the trace file; output:\n%s", out.String())
	}
}
