// Command ttsvlab regenerates every table and figure of the paper's
// evaluation section:
//
//	ttsvlab fig4        max ΔT vs TTSV radius            (paper Fig. 4)
//	ttsvlab fig5        max ΔT vs liner thickness        (paper Fig. 5)
//	ttsvlab table1      Model B error/runtime vs segments (paper Table I)
//	ttsvlab fig6        max ΔT vs substrate thickness    (paper Fig. 6)
//	ttsvlab fig7        max ΔT vs number of TTSVs        (paper Fig. 7)
//	ttsvlab casestudy   3-D DRAM-µP system               (paper §IV-E)
//	ttsvlab calibrate   re-derive Model A's k1/k2 vs the FVM reference
//	ttsvlab all         everything above plus the headline error summary
//
// Flags:
//
//	-quick       thin sweeps and coarser reference mesh (fast smoke run)
//	-plot        also draw ASCII figures for the sweeps
//	-csv DIR     write each table as CSV into DIR
//	-workers N   solve sweep points on N parallel workers (0 = all CPUs);
//	             output tables are identical for any worker count
//	-deck FILE   run a .ttsv scenario deck instead of a named experiment;
//	             -shard i/n, -journal FILE, -resume, -merge F1,F2,...,
//	             -cache-dir DIR and -progress shard, checkpoint, resume and
//	             merge its .sweep (see README "Sharded & resumable sweeps")
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	ttsv "repro"
	"repro/internal/clideck"
	"repro/internal/cliobs"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sparse"
)

func main() {
	// Ctrl-C / SIGTERM cancel the run's context instead of killing the
	// process outright, so deferred cleanup (notably the -trace NDJSON
	// flush in cliobs.Finish) still runs and partial output stays
	// well-formed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ttsvlab: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("ttsvlab", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "thin sweeps and a coarser reference mesh")
	plot := fs.Bool("plot", false, "draw ASCII figures for the sweeps")
	csvDir := fs.String("csv", "", "write tables as CSV into this directory")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = all CPUs); tables are identical for any count")
	solverWorkers := fs.Int("solver-workers", 0, "parallel linear-solver kernel workers per reference solve (<= 1 = sequential)")
	precond := fs.String("precond", "auto", "reference-solver preconditioner: auto, jacobi, ssor, chebyshev, mg or none")
	operator := fs.String("operator", "auto", "reference-solver matrix representation: auto, csr or stencil (matrix-free)")
	mgHier := fs.String("mg-hierarchy", "auto", "multigrid coarse-level construction: auto, galerkin or geometric")
	mgPrec := fs.String("mg-precision", "auto", "multigrid preconditioner-data storage: auto, f64 or f32 (f32 needs -mg-hierarchy geometric)")
	deckPath := fs.String("deck", "", ".ttsv scenario deck file; runs its analysis cards instead of a named experiment")
	sweepf := clideck.Register(fs)
	obsf := cliobs.Register(fs)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: ttsvlab [-quick] [-plot] [-csv DIR] [-workers N] [-solver-workers N] [-precond KIND] [-operator KIND] [-mg-hierarchy KIND] [-mg-precision KIND] [-trace FILE] [-metrics] [-pprof ADDR] [-deck FILE [-shard I/N] [-journal FILE] [-resume] [-merge F1,F2,...] [-cache-dir DIR] [-progress]] {fig4|fig5|fig6|fig7|table1|casestudy|calibrate|planes|transient|all}")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *deckPath == "" && fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one experiment required")
	}
	if *deckPath == "" && sweepf.Set() {
		return fmt.Errorf("-shard/-journal/-resume/-merge/-cache-dir/-progress control a deck's .sweep and require -deck")
	}
	tracer, err := obsf.Start(out)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := obsf.Finish(out); err == nil {
			err = ferr
		}
	}()
	if *deckPath != "" {
		ctl, err := sweepf.Control(os.Stderr)
		if err != nil {
			return err
		}
		d, err := ttsv.ParseDeckFile(*deckPath)
		if err != nil {
			return err
		}
		ctx := ttsv.TraceContext(ctx, tracer)
		res, err := ttsv.RunDeck(ctx, d, ttsv.DeckOptions{Workers: *workers, Trace: tracer, Sweep: ctl})
		if err != nil {
			return err
		}
		return res.WriteText(out)
	}
	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Ctx = ctx
	cfg.Trace = tracer
	cfg.Workers = *workers
	cfg.Resolution.Workers = *solverWorkers
	pk, err := sparse.ParsePrecond(*precond)
	if err != nil {
		return err
	}
	cfg.Resolution.Precond = pk
	opk, err := ttsv.ParseOperator(*operator)
	if err != nil {
		return err
	}
	cfg.Resolution.Operator = opk
	cfg.Resolution.Hierarchy, err = ttsv.ParseMGHierarchy(*mgHier)
	if err != nil {
		return err
	}
	cfg.Resolution.Precision, err = ttsv.ParseMGPrecision(*mgPrec)
	if err != nil {
		return err
	}
	app := &app{cfg: cfg, plot: *plot, csvDir: *csvDir, out: out}
	cmd := fs.Arg(0)
	switch cmd {
	case "fig4":
		return app.sweep(experiments.Fig4)
	case "fig5":
		return app.sweep(experiments.Fig5)
	case "fig6":
		return app.sweep(experiments.Fig6)
	case "fig7":
		return app.sweep(experiments.Fig7)
	case "table1":
		return app.table1()
	case "casestudy":
		return app.caseStudy()
	case "calibrate":
		return app.calibrate()
	case "planes":
		return app.sweep(experiments.PlaneScaling)
	case "transient":
		return app.transient()
	case "all":
		return app.all()
	default:
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", cmd)
	}
}

type app struct {
	cfg    experiments.Config
	plot   bool
	csvDir string
	out    io.Writer
}

func (a *app) emit(id string, t *report.Table) error {
	if err := t.Render(a.out); err != nil {
		return err
	}
	fmt.Fprintln(a.out)
	if a.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(a.csvDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(a.csvDir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(a.out, "wrote %s\n\n", path)
	return nil
}

func (a *app) sweep(fn func(experiments.Config) (*experiments.Sweep, error)) error {
	t0 := time.Now()
	sw, err := fn(a.cfg)
	if err != nil {
		return err
	}
	if err := a.emit(sw.ID, sw.Table()); err != nil {
		return err
	}
	stats := sw.ErrorStats()
	errs := report.NewTable("error vs. "+experiments.RefName, "model", "avg", "max", "avg runtime")
	for _, m := range sw.Models {
		if m == experiments.RefName {
			errs.AddRow(m, "-", "-", stats[m].AvgRuntime.Round(time.Microsecond).String())
			continue
		}
		errs.AddRow(m,
			fmt.Sprintf("%.1f%%", 100*stats[m].Avg),
			fmt.Sprintf("%.1f%%", 100*stats[m].Max),
			stats[m].AvgRuntime.Round(time.Microsecond).String())
	}
	if err := a.emit(sw.ID+"_errors", errs); err != nil {
		return err
	}
	if a.plot {
		if err := sw.Plot().Render(a.out, 68, 20); err != nil {
			return err
		}
		fmt.Fprintln(a.out)
	}
	fmt.Fprintf(a.out, "(%s in %v)\n", sw.ID, time.Since(t0).Round(time.Millisecond))
	return nil
}

func (a *app) table1() error {
	res, err := experiments.Table1(a.cfg)
	if err != nil {
		return err
	}
	return a.emit("table1", res.Table())
}

func (a *app) caseStudy() error {
	res, err := experiments.CaseStudy(a.cfg)
	if err != nil {
		return err
	}
	return a.emit("casestudy", res.Table())
}

func (a *app) calibrate() error {
	res, err := experiments.Calibrate(a.cfg)
	if err != nil {
		return err
	}
	t := report.NewTable("Model A coefficients calibrated against the FVM reference",
		"k1", "k2", "c1", "rms error", "points")
	t.AddRow(
		fmt.Sprintf("%.3f", res.Coeffs.K1),
		fmt.Sprintf("%.3f", res.Coeffs.K2),
		fmt.Sprintf("%.3f", res.Coeffs.C1),
		fmt.Sprintf("%.2f%%", 100*res.RMS),
		fmt.Sprintf("%d", res.Points))
	return a.emit("calibrate", t)
}

func (a *app) transient() error {
	res, err := experiments.Transient(a.cfg)
	if err != nil {
		return err
	}
	return a.emit("transient", res.Table())
}

func (a *app) all() error {
	// Calibrate first so every sweep can carry the "A(cal)" column — Model A
	// fitted to this repository's reference the way the paper's was fitted
	// to COMSOL.
	cal, err := experiments.Calibrate(a.cfg)
	if err != nil {
		return err
	}
	a.cfg.CalibratedA = &cal.Coeffs
	fmt.Fprintf(a.out, "calibrated Model A against the reference: k1 = %.3f, k2 = %.3f (rms %.1f%%)\n\n",
		cal.Coeffs.K1, cal.Coeffs.K2, 100*cal.RMS)
	for _, fn := range []func(experiments.Config) (*experiments.Sweep, error){
		experiments.Fig4, experiments.Fig5, experiments.Fig6, experiments.Fig7,
	} {
		if err := a.sweep(fn); err != nil {
			return err
		}
	}
	if err := a.table1(); err != nil {
		return err
	}
	if err := a.caseStudy(); err != nil {
		return err
	}
	head, err := experiments.Headline(a.cfg)
	if err != nil {
		return err
	}
	return a.emit("headline", head.Table())
}
