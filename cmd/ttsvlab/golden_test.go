package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestWorkersFlagGolden locks in the sweep engine's determinism guarantee at
// the CLI level: the rendered table and its CSV export must be byte-identical
// for any -workers value. Only the main figure table is compared — the errors
// table carries wall-clock runtimes, which legitimately vary run to run.
func TestWorkersFlagGolden(t *testing.T) {
	type capture struct {
		csv   []byte
		table []byte
	}
	runWorkers := func(n string) capture {
		t.Helper()
		dir := t.TempDir()
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-quick", "-csv", dir, "-workers", n, "fig7"}, &buf); err != nil {
			t.Fatalf("-workers %s: %v", n, err)
		}
		csv, err := os.ReadFile(filepath.Join(dir, "fig7.csv"))
		if err != nil {
			t.Fatalf("-workers %s: %v", n, err)
		}
		// The rendered output follows the main table with a "wrote DIR/..."
		// line (temp dir varies per run) and the errors table (wall-clock
		// runtimes vary); keep the fully deterministic main table only.
		table := buf.Bytes()
		if i := bytes.Index(table, []byte("wrote ")); i >= 0 {
			table = table[:i]
		}
		return capture{csv: csv, table: table}
	}

	golden := runWorkers("1")
	if len(golden.csv) == 0 || len(golden.table) == 0 {
		t.Fatal("sequential run produced no output")
	}
	for _, n := range []string{"2", "8"} {
		got := runWorkers(n)
		if !bytes.Equal(got.csv, golden.csv) {
			t.Errorf("-workers %s: fig7.csv differs from sequential run\nseq:\n%s\ngot:\n%s",
				n, golden.csv, got.csv)
		}
		if !bytes.Equal(got.table, golden.table) {
			t.Errorf("-workers %s: rendered table differs from sequential run\nseq:\n%s\ngot:\n%s",
				n, golden.table, got.table)
		}
	}
}
