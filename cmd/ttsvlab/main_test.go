package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadInvocations(t *testing.T) {
	if err := run(context.Background(), nil, io.Discard); err == nil {
		t.Error("missing experiment accepted")
	}
	if err := run(context.Background(), []string{"fig4", "fig5"}, io.Discard); err == nil {
		t.Error("two experiments accepted")
	}
	if err := run(context.Background(), []string{"nonsense"}, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(context.Background(), []string{"-bogus", "fig4"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunQuickSweeps(t *testing.T) {
	for _, exp := range []string{"fig4", "fig6", "fig7"} {
		if err := run(context.Background(), []string{"-quick", exp}, io.Discard); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunQuickTable1AndCaseStudy(t *testing.T) {
	if err := run(context.Background(), []string{"-quick", "table1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-quick", "casestudy"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickCalibrate(t *testing.T) {
	if err := run(context.Background(), []string{"-quick", "calibrate"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-quick", "-csv", dir, "fig7"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(data), "\n", 2)[0]
	for _, col := range []string{"n", "A", "B(100)", "1D", "FVM"} {
		if !strings.Contains(head, col) {
			t.Errorf("CSV header %q missing column %q", head, col)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7_errors.csv")); err != nil {
		t.Errorf("error table CSV missing: %v", err)
	}
}

func TestRunPlotFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-quick", "-plot", "fig7"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceAndMetrics(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "fig7.ndjson")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quick", "-trace", trace, "-metrics", "fig7"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var r struct {
			Span string `json:"span"`
		}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		seen[r.Span] = true
	}
	for _, want := range []string{"experiments.fig7", "sweep.run", "sweep.job", "fem.solve", "sparse.cg"} {
		if !seen[want] {
			t.Errorf("trace missing %q span (have %v)", want, seen)
		}
	}
	for _, want := range []string{"sweep.jobs", "sparse.cg.solves", "experiments.runs"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("-metrics dump missing %q", want)
		}
	}
}

func TestRunExtensionExperiments(t *testing.T) {
	if err := run(context.Background(), []string{"-quick", "planes"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-quick", "transient"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}
