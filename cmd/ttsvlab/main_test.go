package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadInvocations(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Error("missing experiment accepted")
	}
	if err := run([]string{"fig4", "fig5"}, io.Discard); err == nil {
		t.Error("two experiments accepted")
	}
	if err := run([]string{"nonsense"}, io.Discard); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-bogus", "fig4"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunQuickSweeps(t *testing.T) {
	for _, exp := range []string{"fig4", "fig6", "fig7"} {
		if err := run([]string{"-quick", exp}, io.Discard); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunQuickTable1AndCaseStudy(t *testing.T) {
	if err := run([]string{"-quick", "table1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "casestudy"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickCalibrate(t *testing.T) {
	if err := run([]string{"-quick", "calibrate"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-csv", dir, "fig7"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig7.csv"))
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(data), "\n", 2)[0]
	for _, col := range []string{"n", "A", "B(100)", "1D", "FVM"} {
		if !strings.Contains(head, col) {
			t.Errorf("CSV header %q missing column %q", head, col)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7_errors.csv")); err != nil {
		t.Errorf("error table CSV missing: %v", err)
	}
}

func TestRunPlotFlag(t *testing.T) {
	if err := run([]string{"-quick", "-plot", "fig7"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtensionExperiments(t *testing.T) {
	if err := run([]string{"-quick", "planes"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "transient"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}
