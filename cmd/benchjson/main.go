// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document. It exists so `make bench-json` can archive
// reference-solver costs (BENCH_ref.json) in a form other tooling — and
// future sessions comparing solver work — can diff without scraping the
// bench text format.
//
//	go test -run '^$' -bench Reference -benchtime 2x . | benchjson -o BENCH_ref.json
//
// Every benchmark line becomes one record: the trimmed name (without the
// Benchmark prefix and -P GOMAXPROCS suffix), the b.N iteration count,
// ns/op, and all remaining value/unit pairs (B/op, allocs/op, custom
// b.ReportMetric units such as cgiters or mglevels) in a metrics map.
// Repeated lines for the same benchmark (go test -count N) collapse to the
// fastest run, with elementwise minima for B/op and allocs/op — the minimum
// filters the additive scheduling noise a loaded host stacks on every run,
// so min-of-N is a far more stable basis for comparison than any single run.
//
// With -compare the parsed input is diffed against a previously archived
// document instead of being re-emitted; the command fails when any
// benchmark's wall time regresses past -threshold percent. This is the
// engine behind `make bench-compare`:
//
//	go test -run '^$' -bench Reference -benchtime 2x . | benchjson -compare BENCH_ref.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is the whole archive: the environment header lines go test
// prints, then every benchmark. GoMaxProcs and NumCPU are captured from
// benchjson's own process — it runs on the same host, in the same pipeline,
// as the benchmarks it archives — so a comparison against an archive from a
// differently-sized machine is recognizable as such.
type Document struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	NumCPU     int      `json:"numcpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "write JSON here instead of stdout")
	refPath := fs.String("compare", "", "diff the input against this archived JSON instead of emitting JSON")
	threshold := fs.Float64("threshold", 25, "with -compare, fail when any ns/op regresses by more than this percentage")
	allocThreshold := fs.Float64("alloc-threshold", 10, "with -compare, fail when any B/op or allocs/op regresses by more than this percentage (memory is deterministic, so the gate can be tighter than wall time)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	doc, err := parse(in)
	if err != nil {
		return err
	}
	doc.GoMaxProcs = runtime.GOMAXPROCS(0)
	doc.NumCPU = runtime.NumCPU()
	if *refPath != "" {
		return compare(doc, *refPath, *threshold, *allocThreshold, out)
	}
	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// memUnits are the deterministic allocation metrics gated by -alloc-threshold.
var memUnits = [...]string{"B/op", "allocs/op"}

// compare diffs doc against the archived reference document, one line per
// benchmark, and fails when any matched benchmark's ns/op exceeds its
// reference by more than threshold percent, or its B/op or allocs/op exceeds
// the reference by more than allocThreshold percent. Memory metrics are only
// gated when both sides report them — the archive may predate -benchmem
// capture. Benchmarks present on only one side are reported but never fail
// the comparison. Getting faster (or leaner) is never a failure.
func compare(doc *Document, refPath string, threshold, allocThreshold float64, w io.Writer) error {
	data, err := os.ReadFile(refPath)
	if err != nil {
		return err
	}
	var ref Document
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("reference %s: %w", refPath, err)
	}
	refByName := make(map[string]Record, len(ref.Benchmarks))
	for _, r := range ref.Benchmarks {
		refByName[r.Name] = r
	}
	var regressed []string
	matched := 0
	for _, b := range doc.Benchmarks {
		r, ok := refByName[b.Name]
		if !ok || r.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-40s %14.0f ns/op   (no reference)\n", b.Name, b.NsPerOp)
			continue
		}
		matched++
		delta := 100 * (b.NsPerOp - r.NsPerOp) / r.NsPerOp
		mark := ""
		if delta > threshold {
			mark = "   REGRESSION"
			regressed = append(regressed, fmt.Sprintf("%s (%+.1f%% ns/op)", b.Name, delta))
		}
		var mem strings.Builder
		for _, unit := range memUnits {
			bv, bok := b.Metrics[unit]
			rv, rok := r.Metrics[unit]
			if !bok || !rok || rv <= 0 {
				continue
			}
			md := 100 * (bv - rv) / rv
			fmt.Fprintf(&mem, "   %s %+.1f%%", unit, md)
			if md > allocThreshold {
				mark = "   REGRESSION"
				regressed = append(regressed, fmt.Sprintf("%s (%+.1f%% %s)", b.Name, md, unit))
			}
		}
		fmt.Fprintf(w, "%-40s %14.0f ns/op   ref %14.0f   %+6.1f%%%s%s\n",
			b.Name, b.NsPerOp, r.NsPerOp, delta, mem.String(), mark)
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark on input matches the reference %s", refPath)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d regression(s) past %g%% ns/op / %g%% mem vs %s: %s",
			len(regressed), threshold, allocThreshold, refPath, strings.Join(regressed, ", "))
	}
	fmt.Fprintf(w, "ok: %d benchmark(s) within %g%% ns/op and %g%% mem of %s\n", matched, threshold, allocThreshold, refPath)
	return nil
}

// mergeMin collapses two runs of the same benchmark (go test -count N emits
// one line per run) into the least-noisy estimate: the run with the lower
// wall time wins outright — its iteration count and custom metrics (cgiters,
// speedup, ...) stay together as one coherent observation — while the
// deterministic memory units take the elementwise minimum, since scheduling
// noise only ever adds allocations.
func mergeMin(a, b Record) Record {
	best, other := a, b
	if b.NsPerOp < a.NsPerOp {
		best, other = b, a
	}
	for _, unit := range memUnits {
		ov, ok := other.Metrics[unit]
		if !ok {
			continue
		}
		if bv, ok := best.Metrics[unit]; !ok || ov < bv {
			if best.Metrics == nil {
				best.Metrics = map[string]float64{}
			}
			best.Metrics[unit] = ov
		}
	}
	return best
}

func parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: []Record{}}
	byName := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			rec, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			if i, ok := byName[rec.Name]; ok {
				doc.Benchmarks[i] = mergeMin(doc.Benchmarks[i], rec)
			} else {
				byName[rec.Name] = len(doc.Benchmarks)
				doc.Benchmarks = append(doc.Benchmarks, rec)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on input (run with -bench)")
	}
	return doc, nil
}

func parseBench(line string) (Record, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Record{}, fmt.Errorf("want at least name, count and one value/unit pair")
	}
	rec := Record{Name: strings.TrimPrefix(f[0], "Benchmark")}
	if i := strings.LastIndex(rec.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(rec.Name[i+1:]); err == nil {
			rec.Procs = p
			rec.Name = rec.Name[:i]
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("iteration count %q: %w", f[1], err)
	}
	rec.Iterations = n
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Record{}, fmt.Errorf("metric value %q: %w", f[i], err)
		}
		if unit := f[i+1]; unit == "ns/op" {
			rec.NsPerOp = v
		} else {
			if rec.Metrics == nil {
				rec.Metrics = map[string]float64{}
			}
			rec.Metrics[unit] = v
		}
	}
	return rec, nil
}
