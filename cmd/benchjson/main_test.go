package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU @ 3.00GHz
BenchmarkReferenceSolveDefault-8   	      10	 111222333 ns/op	 1234 B/op	      56 allocs/op
BenchmarkReferenceMGRefined2-8     	       5	 222333444 ns/op	      14.0 cgiters	       5.0 mglevels	 99 B/op	 7 allocs/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Pkg != "repro" || doc.Goos != "linux" || doc.CPU != "Example CPU @ 3.00GHz" {
		t.Fatalf("header = %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "ReferenceSolveDefault" || b0.Procs != 8 || b0.Iterations != 10 || b0.NsPerOp != 111222333 {
		t.Fatalf("first record = %+v", b0)
	}
	if b0.Metrics["B/op"] != 1234 || b0.Metrics["allocs/op"] != 56 {
		t.Fatalf("first metrics = %+v", b0.Metrics)
	}
	b1 := doc.Benchmarks[1]
	if b1.Name != "ReferenceMGRefined2" || b1.Metrics["cgiters"] != 14 || b1.Metrics["mglevels"] != 5 {
		t.Fatalf("second record = %+v", b1)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("accepted input with no benchmark lines")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-4 notanumber 5 ns/op\n")); err == nil {
		t.Fatal("accepted a malformed count")
	}
}
