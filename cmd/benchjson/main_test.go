package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU @ 3.00GHz
BenchmarkReferenceSolveDefault-8   	      10	 111222333 ns/op	 1234 B/op	      56 allocs/op
BenchmarkReferenceMGRefined2-8     	       5	 222333444 ns/op	      14.0 cgiters	       5.0 mglevels	 99 B/op	 7 allocs/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Pkg != "repro" || doc.Goos != "linux" || doc.CPU != "Example CPU @ 3.00GHz" {
		t.Fatalf("header = %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "ReferenceSolveDefault" || b0.Procs != 8 || b0.Iterations != 10 || b0.NsPerOp != 111222333 {
		t.Fatalf("first record = %+v", b0)
	}
	if b0.Metrics["B/op"] != 1234 || b0.Metrics["allocs/op"] != 56 {
		t.Fatalf("first metrics = %+v", b0.Metrics)
	}
	b1 := doc.Benchmarks[1]
	if b1.Name != "ReferenceMGRefined2" || b1.Metrics["cgiters"] != 14 || b1.Metrics["mglevels"] != 5 {
		t.Fatalf("second record = %+v", b1)
	}
}

// -count N emits one line per run; the parser must collapse them to the
// fastest run with elementwise-minimum memory metrics, keeping the fast
// run's custom metrics as one coherent observation.
func TestParseMergesCountRuns(t *testing.T) {
	const counted = `goos: linux
BenchmarkReferenceSolveDefault-8   	      10	 150000000 ns/op	 2000 B/op	      60 allocs/op	 5.0 cgiters
BenchmarkReferenceSolveDefault-8   	      10	 100000000 ns/op	 1500 B/op	      70 allocs/op	 6.0 cgiters
BenchmarkReferenceSolveDefault-8   	      10	 120000000 ns/op	 1000 B/op	      80 allocs/op	 7.0 cgiters
PASS
`
	doc, err := parse(strings.NewReader(counted))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1 merged", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.NsPerOp != 100000000 {
		t.Fatalf("ns/op = %v, want the fastest run's 1e8", b.NsPerOp)
	}
	if b.Metrics["B/op"] != 1000 || b.Metrics["allocs/op"] != 60 {
		t.Fatalf("memory metrics = %+v, want elementwise minima 1000/60", b.Metrics)
	}
	if b.Metrics["cgiters"] != 6 {
		t.Fatalf("cgiters = %v, want the fastest run's 6", b.Metrics["cgiters"])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("accepted input with no benchmark lines")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-4 notanumber 5 ns/op\n")); err == nil {
		t.Fatal("accepted a malformed count")
	}
}

// writeRef archives sample (scaled by factor on ns/op) as a reference JSON
// for the compare tests.
func writeRef(t *testing.T, json string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ref.json")
	if err := os.WriteFile(path, []byte(json), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const refJSON = `{
  "benchmarks": [
    {"name": "ReferenceSolveDefault", "iterations": 10, "ns_per_op": 100000000},
    {"name": "ReferenceMGRefined2", "iterations": 5, "ns_per_op": 222333444}
  ]
}`

func TestCompareWithinThresholdPasses(t *testing.T) {
	// Sample's ReferenceSolveDefault runs 111222333 ns/op vs a 1e8 reference:
	// an 11.2% regression, inside the 25% default.
	ref := writeRef(t, refJSON)
	var buf bytes.Buffer
	if err := run([]string{"-compare", ref}, strings.NewReader(sample), &buf); err != nil {
		t.Fatalf("within-threshold compare failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "ok: 2 benchmark(s) within 25%") {
		t.Errorf("no pass summary:\n%s", out)
	}
	if !strings.Contains(out, "+11.2%") {
		t.Errorf("delta not reported:\n%s", out)
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	ref := writeRef(t, refJSON)
	var buf bytes.Buffer
	err := run([]string{"-compare", ref, "-threshold", "10"}, strings.NewReader(sample), &buf)
	if err == nil {
		t.Fatalf("11.2%% regression passed a 10%% threshold:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "ReferenceSolveDefault") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("regression not marked in the table:\n%s", buf.String())
	}
}

const refWithMemJSON = `{
  "benchmarks": [
    {"name": "ReferenceSolveDefault", "iterations": 10, "ns_per_op": 111222333,
     "metrics": {"B/op": 1234, "allocs/op": 40}},
    {"name": "ReferenceMGRefined2", "iterations": 5, "ns_per_op": 222333444,
     "metrics": {"B/op": 99, "allocs/op": 7}}
  ]
}`

func TestCompareFailsOnAllocRegression(t *testing.T) {
	// Sample's ReferenceSolveDefault allocates 56/op vs a reference of 40:
	// +40%, past the 10% default alloc threshold even though ns/op matches.
	ref := writeRef(t, refWithMemJSON)
	var buf bytes.Buffer
	err := run([]string{"-compare", ref}, strings.NewReader(sample), &buf)
	if err == nil {
		t.Fatalf("40%% alloc regression passed the 10%% default threshold:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "allocs/op") || !strings.Contains(err.Error(), "ReferenceSolveDefault") {
		t.Errorf("error does not name the regressed metric: %v", err)
	}
	if !strings.Contains(buf.String(), "allocs/op +40.0%") {
		t.Errorf("alloc delta not reported in the table:\n%s", buf.String())
	}
}

func TestCompareAllocThresholdFlag(t *testing.T) {
	// The same +40% alloc delta passes when -alloc-threshold is raised.
	ref := writeRef(t, refWithMemJSON)
	var buf bytes.Buffer
	if err := run([]string{"-compare", ref, "-alloc-threshold", "50"}, strings.NewReader(sample), &buf); err != nil {
		t.Fatalf("alloc delta within the raised threshold failed: %v\n%s", err, buf.String())
	}
}

func TestCompareSkipsMemWithoutReferenceMetrics(t *testing.T) {
	// refJSON predates memory capture: B/op and allocs/op must not be gated
	// (TestCompareWithinThresholdPasses covers the passing path; this one
	// pins the table output).
	ref := writeRef(t, refJSON)
	var buf bytes.Buffer
	if err := run([]string{"-compare", ref, "-alloc-threshold", "0"}, strings.NewReader(sample), &buf); err != nil {
		t.Fatalf("metric-free reference gated memory anyway: %v\n%s", err, buf.String())
	}
	if strings.Contains(buf.String(), "B/op") {
		t.Errorf("memory delta reported without reference metrics:\n%s", buf.String())
	}
}

func TestCompareIgnoresUnmatchedBenchmarks(t *testing.T) {
	// Only one of the two input benchmarks has a reference; the other is
	// reported but cannot fail the run.
	ref := writeRef(t, `{"benchmarks": [{"name": "ReferenceMGRefined2", "iterations": 5, "ns_per_op": 222333444}]}`)
	var buf bytes.Buffer
	if err := run([]string{"-compare", ref}, strings.NewReader(sample), &buf); err != nil {
		t.Fatalf("unmatched benchmark failed the compare: %v", err)
	}
	if !strings.Contains(buf.String(), "(no reference)") {
		t.Errorf("unmatched benchmark not flagged:\n%s", buf.String())
	}
}

func TestCompareRejectsDisjointSets(t *testing.T) {
	ref := writeRef(t, `{"benchmarks": [{"name": "SomethingElse", "iterations": 1, "ns_per_op": 5}]}`)
	var buf bytes.Buffer
	if err := run([]string{"-compare", ref}, strings.NewReader(sample), &buf); err == nil {
		t.Fatal("compare with zero matched benchmarks passed")
	}
}

func TestCompareRejectsBadReference(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-compare", "/does/not/exist.json"}, strings.NewReader(sample), &buf); err == nil {
		t.Fatal("missing reference accepted")
	}
	ref := writeRef(t, "not json")
	if err := run([]string{"-compare", ref}, strings.NewReader(sample), &buf); err == nil {
		t.Fatal("malformed reference accepted")
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name": "ReferenceSolveDefault"`) {
		t.Errorf("JSON output missing record:\n%s", buf.String())
	}
}

// The archive header must record the parallelism of the producing host, so a
// comparison against an archive from a differently-sized machine is
// recognizable as such.
func TestRunRecordsHostParallelism(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d, want %d", doc.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if doc.NumCPU != runtime.NumCPU() {
		t.Errorf("numcpu = %d, want %d", doc.NumCPU, runtime.NumCPU())
	}
}
