// Command ttsvd serves the TTSV thermal models over HTTP: steady-state
// solves, parameter sweeps, insertion planning and full .ttsv scenario decks
// as POST endpoints, with /metrics, /healthz and /debug/pprof/ on the same
// mux. Responses are deterministic text reports, byte-identical to the
// equivalent ttsvsolve -deck run.
//
//	ttsvd -addr 127.0.0.1:7437
//	curl -s -X POST http://127.0.0.1:7437/solve -d '{}'
//	curl -s -X POST http://127.0.0.1:7437/deck --data-binary @scenario.ttsv
//
// SIGINT/SIGTERM drain the server gracefully: the listener closes, in-flight
// solves finish (bounded by -drain), then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mg"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ttsvd: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("ttsvd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7437", "listen address (host:port; :0 picks a free port)")
	workers := fs.Int("workers", 0, "engine pool size for sweep/plan analyses (< 1 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request solve timeout (0 = none)")
	rate := fs.Float64("rate", 0, "admitted solve requests per second (0 = unlimited)")
	burst := fs.Int("burst", 0, "admission burst capacity (0 = ceil(rate))")
	poolIdle := fs.Int("pool", 2, "warm solver-state entries kept per grid topology")
	mgHier := fs.String("mg-hierarchy", "", "default multigrid hierarchy for JSON requests that don't choose: galerkin or geometric")
	mgPrec := fs.String("mg-precision", "", "default multigrid preconditioner precision for JSON requests that don't choose: f64 or f32")
	drain := fs.Duration("drain", 10*time.Second, "shutdown drain timeout for in-flight requests")
	tracePath := fs.String("trace", "", "write an NDJSON span trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Validate the multigrid defaults up front: a typo should fail startup,
	// not 400 every request.
	if _, err := mg.ParseHierarchy(*mgHier); err != nil {
		return err
	}
	if _, err := mg.ParsePrecision(*mgPrec); err != nil {
		return err
	}
	cfg := serve.Config{
		Workers:     *workers,
		Timeout:     *timeout,
		Rate:        *rate,
		Burst:       *burst,
		PoolIdle:    *poolIdle,
		MGHierarchy: *mgHier,
		MGPrecision: *mgPrec,
	}
	if *tracePath != "" {
		fh, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		tracer := obs.NewTracer(fh)
		cfg.Trace = tracer
		defer func() {
			ferr := tracer.Err()
			if cerr := fh.Close(); ferr == nil {
				ferr = cerr
			}
			if err == nil && ferr != nil {
				err = fmt.Errorf("trace %s: %w", *tracePath, ferr)
			}
		}()
	}

	return serve.ListenAndServe(ctx, *addr, cfg, *drain, func(bound string) {
		fmt.Fprintf(out, "ttsvd: listening on http://%s\n", bound)
	})
}
