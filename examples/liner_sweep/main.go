// Liner sweep: demonstrate why the traditional 1-D TTSV model is not enough
// for liner engineering. The dielectric liner around a TTSV throttles the
// lateral heat flow into the via; a thicker liner raises the hot-spot
// temperature by several degrees (paper Fig. 5) — a dependency the 1-D
// model cannot see at all because it has no lateral path.
//
// A designer choosing the liner thickness from the 1-D model would conclude
// the liner is thermally free; Models A/B show the real cost.
package main

import (
	"fmt"
	"log"

	ttsv "repro"
)

func main() {
	modelA := ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}
	modelB := ttsv.NewModelB(100)
	oneD := ttsv.Model1D{}

	fmt.Println("liner thickness sweep on the Fig. 5 block (r = 5 µm):")
	fmt.Println()
	fmt.Println("t_L [µm]   Model A   Model B   1-D model")
	var first, last float64
	liners := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	for i, tl := range liners {
		s, err := ttsv.Fig5Block(tl * 1e-6)
		if err != nil {
			log.Fatal(err)
		}
		a, err := modelA.Solve(s)
		if err != nil {
			log.Fatal(err)
		}
		b, err := modelB.Solve(s)
		if err != nil {
			log.Fatal(err)
		}
		d, err := oneD.Solve(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.1f   %6.2f K  %6.2f K  %6.2f K\n", tl, a.MaxDT, b.MaxDT, d.MaxDT)
		if i == 0 {
			first = b.MaxDT
		}
		if i == len(liners)-1 {
			last = b.MaxDT
		}
	}
	fmt.Println()
	fmt.Printf("growing the liner from 0.5 µm to 3 µm costs %.1f K of headroom\n", last-first)
	fmt.Println("(the 1-D column is flat: it models no lateral heat flow through the liner)")
}
