// Liner sweep: demonstrate why the traditional 1-D TTSV model is not enough
// for liner engineering. The dielectric liner around a TTSV throttles the
// lateral heat flow into the via; a thicker liner raises the hot-spot
// temperature by several degrees (paper Fig. 5) — a dependency the 1-D
// model cannot see at all because it has no lateral path.
//
// A designer choosing the liner thickness from the 1-D model would conclude
// the liner is thermally free; Models A/B show the real cost.
//
// The whole sweep — every (liner, model) pair — is submitted as one batch to
// the parallel sweep engine (ttsv.Sweep): outcomes come back in job order,
// identical for any worker count, so the table below prints the same no
// matter how many CPUs run it.
package main

import (
	"context"
	"fmt"
	"log"

	ttsv "repro"
)

func main() {
	models := []ttsv.Model{
		ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()},
		ttsv.NewModelB(100),
		ttsv.Model1D{},
	}
	liners := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}

	// One job per (liner, model) pair, liner-major so row i of the table is
	// outs[i*len(models) : (i+1)*len(models)].
	var jobs ttsv.Batch
	for _, tl := range liners {
		s, err := ttsv.Fig5Block(tl * 1e-6)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range models {
			jobs = jobs.Add(fmt.Sprintf("%s@%.1fµm", m.Name(), tl), s, m)
		}
	}
	outs, err := ttsv.Sweep(context.Background(), jobs, ttsv.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("liner thickness sweep on the Fig. 5 block (r = 5 µm):")
	fmt.Println()
	fmt.Println("t_L [µm]   Model A   Model B   1-D model")
	var first, last float64
	for i, tl := range liners {
		row := outs[i*len(models) : (i+1)*len(models)]
		fmt.Printf("%8.1f  ", tl)
		for _, oc := range row {
			if oc.Err != nil {
				log.Fatal(oc.Err)
			}
			fmt.Printf(" %6.2f K ", oc.Result.MaxDT)
		}
		fmt.Println()
		if i == 0 {
			first = row[1].Result.MaxDT
		}
		if i == len(liners)-1 {
			last = row[1].Result.MaxDT
		}
	}
	fmt.Println()
	fmt.Printf("growing the liner from 0.5 µm to 3 µm costs %.1f K of headroom\n", last-first)
	fmt.Println("(the 1-D column is flat: it models no lateral heat flow through the liner)")
}
