// DRAM-µP system analysis: the paper's §IV-E case study. A 10 mm × 10 mm
// processor with two stacked DRAM planes dissipates 70 + 7 + 7 W through a
// uniform array of ~177 TTSVs (0.5% area density). By symmetry, the system
// reduces to one unit cell per via; the analytical models solve it in
// micro-to-milliseconds where a full FEM run takes an hour, and the
// traditional 1-D model overestimates the temperature by ~65% — which in a
// TTSV planning flow would mean wasting silicon on vias the chip does not
// need.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	ttsv "repro"
)

func main() {
	sys := ttsv.DRAMuP()
	cell, err := sys.UnitCell()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d TTSVs (r = 30 µm) at %.1f%% density, %.0f W total\n",
		sys.ViaCount(), 100*sys.ViaDensity, 84.0)
	fmt.Printf("unit cell: %.0f µm × %.0f µm footprint, %.3f W\n\n",
		1e6*side(cell.Footprint), 1e6*side(cell.Footprint), cell.TotalPower())

	run := func(name string, m ttsv.Model) float64 {
		t0 := time.Now()
		res, err := sys.Analyze(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s max ΔT = %6.2f K   solved in %v\n", name, res.MaxDT, time.Since(t0).Round(time.Microsecond))
		return res.MaxDT
	}
	a := run("Model A", ttsv.ModelA{Coeffs: ttsv.PaperSystemCoeffs()})
	b := run("Model B", ttsv.NewModelB(1000))
	d := run("1-D", ttsv.Model1D{})

	t0 := time.Now()
	ref, err := ttsv.SolveReference(cell, ttsv.DefaultResolution())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-9s max ΔT = %6.2f K   solved in %v\n\n", "reference", ref, time.Since(t0).Round(time.Millisecond))

	fmt.Printf("Model A vs reference: %+.1f%%   Model B: %+.1f%%   1-D: %+.1f%%\n",
		100*(a-ref)/ref, 100*(b-ref)/ref, 100*(d-ref)/ref)
	fmt.Println("\nthe 1-D model's overestimate would drive a planner to insert far more")
	fmt.Println("TTSVs than needed — the paper's core argument for lateral-aware models")
}

// side reports the square cell's edge length for an area.
func side(area float64) float64 { return math.Sqrt(area) }
