// Insertion planning: the paper's closing argument, quantified. A planner
// assigns TTSVs tile-by-tile to keep a chip under a thermal budget; TTSVs
// consume active silicon, so every extra via is wasted area. Running the
// same floorplan through Model A and through the traditional 1-D model shows
// how the 1-D model's overestimate (it ignores the lateral heat entering the
// vias through their liners) inflates the via count — "excessive usage of
// TTSVs, a critical resource in 3-D ICs".
package main

import (
	"fmt"
	"log"

	ttsv "repro"
)

func main() {
	// A 6×6-tile processor+DRAM stack, 0.75 mm tiles. The center 2×2 block
	// is a compute hot spot at 3× the background density.
	const (
		tiles      = 6
		tileSide   = 0.75e-3
		background = 0.35 // W per tile
		budget     = 14.0 // K above the heat sink
	)
	f := &ttsv.Floorplan{TileSide: tileSide}
	for r := 0; r < tiles; r++ {
		var row [][]float64
		for c := 0; c < tiles; c++ {
			w := background
			if (r == 2 || r == 3) && (c == 2 || c == 3) {
				w *= 3
			}
			// Processor plane carries 5/6 of the power, DRAM planes the rest.
			row = append(row, []float64{w * 5 / 6, w / 12, w / 12})
		}
		f.PlanePowers = append(f.PlanePowers, row)
	}
	tech := ttsv.DefaultTechnology()

	planA, err := ttsv.PlanInsertion(f, tech, budget, ttsv.ModelA{Coeffs: ttsv.PaperSystemCoeffs()})
	if err != nil {
		log.Fatal(err)
	}
	plan1D, err := ttsv.PlanInsertion(f, tech, budget, ttsv.Model1D{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("budget: %.1f K above the heat sink, %dx%d tiles\n\n", budget, tiles, tiles)
	fmt.Println("via counts per tile, planned with Model A:")
	printGrid(planA.Counts)
	fmt.Println("\nvia counts per tile, planned with the 1-D model:")
	printGrid(plan1D.Counts)

	fmt.Printf("\nModel A plan:  %4d vias (%.3f mm² of via metal), max ΔT %.2f K\n",
		planA.TotalVias, planA.ViaArea*1e6, planA.MaxDT)
	fmt.Printf("1-D plan:      %4d vias (%.3f mm² of via metal), max ΔT %.2f K\n",
		plan1D.TotalVias, plan1D.ViaArea*1e6, plan1D.MaxDT)
	extra := plan1D.TotalVias - planA.TotalVias
	fmt.Printf("\nthe 1-D model would insert %d extra vias (+%.0f%%) for the same budget —\n",
		extra, 100*float64(extra)/float64(planA.TotalVias))
	fmt.Println("silicon area wasted because it cannot see the lateral liner heat path")

	// Verify Model A's plan with the full-chip 3-D solve: unlike the
	// planner's adiabatic tiles, it resolves lateral heat sharing between
	// tiles, so the true peak should come in at or under the plan's claim.
	full, err := ttsv.VerifyPlan(f, tech, planA.Counts, ttsv.DefaultPowerMapResolution())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull-chip 3-D verification (%d cells): max ΔT %.2f K vs planned %.2f K\n",
		full.Cells, full.MaxDT, planA.MaxDT)
	if full.MaxDT <= budget {
		fmt.Println("the plan holds chip-wide — tile coupling only helps")
	}
}

func printGrid(counts [][]int) {
	for _, row := range counts {
		for _, n := range row {
			fmt.Printf("%4d", n)
		}
		fmt.Println()
	}
}
