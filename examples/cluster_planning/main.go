// Cluster planning: TTSVs consume active silicon area, so a thermal-aware
// floorplanner wants the smallest via budget that keeps the hot spot under a
// target. This example uses the cluster transform (§IV-D): at constant total
// metal area, dividing one fat via into n thin vias enlarges the lateral
// liner surface and lowers the temperature — up to a point of diminishing
// returns the 1-D model cannot predict (it sees identical metal area).
//
// The planner sweeps the split count, reports the knee, and picks the
// smallest n meeting the budget.
package main

import (
	"fmt"
	"log"

	ttsv "repro"
)

func main() {
	const budgetK = 16.0 // maximum allowed temperature rise
	model := ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}

	fmt.Printf("goal: hot spot below %.1f K on the Fig. 7 block (r0 = 10 µm, equal metal area)\n\n", budgetK)
	fmt.Println("n vias   r_n [µm]   Model A ΔT   gain vs n-1 step")
	var prev float64
	best := 0
	counts := []int{1, 2, 4, 9, 16, 25}
	for i, n := range counts {
		s, err := ttsv.Fig7Block(n)
		if err != nil {
			log.Fatal(err)
		}
		res, err := model.Solve(s)
		if err != nil {
			log.Fatal(err)
		}
		gain := "-"
		if i > 0 {
			gain = fmt.Sprintf("%.2f K", prev-res.MaxDT)
		}
		mark := ""
		if res.MaxDT <= budgetK && best == 0 {
			best = n
			mark = "  <- smallest split meeting the budget"
		}
		fmt.Printf("%6d   %8.2f   %8.2f K   %12s%s\n",
			n, 1e6*s.Via.SplitRadius(), res.MaxDT, gain, mark)
		prev = res.MaxDT
	}
	fmt.Println()
	if best == 0 {
		fmt.Println("no split meets the budget — the metal area itself must grow")
		return
	}
	fmt.Printf("decision: split the via into %d parts; finer splits buy little\n", best)
	fmt.Println("(a 1-D model rates every row identically: same metal area, same ΔT)")
}
