// Transient response: how fast does a 3-D stack heat up when the workload
// steps on? The same networks that solve the paper's steady-state models
// carry the structure's thermal masses, so a power step integrates in
// milliseconds of simulated time — useful for sizing thermal throttling
// windows. A larger via lowers the final temperature, but the settling time
// is dominated by the thick first substrate's thermal mass, which the via
// cannot bypass — so faster-settling designs need thinner substrates, not
// just bigger vias.
package main

import (
	"fmt"
	"log"

	ttsv "repro"
)

func main() {
	spec := ttsv.TransientSpec{Dt: 100e-6, Steps: 400} // 40 ms horizon
	model := ttsv.NewModelB(60)

	fmt.Println("power-step response of the three-plane block (Model B, 60 segments):")
	fmt.Println()
	fmt.Println("via radius   final ΔT   5% settling time")
	for _, rUM := range []float64{2, 5, 10, 20} {
		s, err := ttsv.Fig4Block(rUM * 1e-6)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := model.SolveTransient(s, spec)
		if err != nil {
			log.Fatal(err)
		}
		settle := "beyond horizon"
		if tr.Settled {
			settle = fmt.Sprintf("%.2f ms", tr.SettlingTime*1e3)
		}
		fmt.Printf("%7.0f µm   %6.2f K   %s\n", rUM, tr.FinalDT, settle)
	}

	// Trace the r = 10 µm heating curve.
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := model.SolveTransient(s, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nheating curve at r = 10 µm (top plane):")
	for _, ms := range []float64{0.5, 1, 2, 5, 10, 20, 40} {
		k := int(ms*1e-3/spec.Dt) - 1
		fmt.Printf("  t = %5.1f ms   ΔT = %6.2f K  (%.0f%% of final)\n",
			ms, tr.TopDT[k], 100*tr.TopDT[k]/tr.FinalDT)
	}
}
