// Quickstart: build the paper's standard three-plane block, run all three
// TTSV thermal models and the finite-volume reference on it, and print the
// resulting maximum temperature rise.
package main

import (
	"fmt"
	"log"

	ttsv "repro"
)

func main() {
	// The paper's Fig. 4 block with a 10 µm via: three planes on a 100 µm ×
	// 100 µm footprint, heat sink under the 500 µm first substrate.
	s, err := ttsv.Fig4Block(10e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("three-plane block, total power %.1f mW, via r = 10 µm\n\n", 1e3*s.TotalPower())

	models := []ttsv.Model{
		ttsv.ModelA{Coeffs: ttsv.PaperBlockCoeffs()}, // compact fitted network (§II)
		ttsv.NewModelB(100),                          // distributed, no fitting (§III)
		ttsv.Model1D{},                               // traditional baseline
	}
	for _, m := range models {
		res, err := m.Solve(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model %-7s max ΔT = %6.2f K   per-plane rises: %v\n",
			m.Name(), res.MaxDT, rounded(res.PlaneDT))
	}

	ref, err := ttsv.SolveReference(s, ttsv.DefaultResolution())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference    max ΔT = %6.2f K   (finite-volume solve)\n", ref)
	fmt.Printf("\nabsolute hottest spot: %.2f °C above a %.0f °C heat sink\n", ref, s.SinkTemp)
}

func rounded(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*100)) / 100
	}
	return out
}
