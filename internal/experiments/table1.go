package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stack"
	"repro/internal/units"
)

// Table1Row is one column of the paper's Table I transposed into a row:
// a model with its error statistics over the Fig. 5 sweep and its runtime.
type Table1Row struct {
	Model      string
	MaxErr     float64
	AvgErr     float64
	AvgRuntime time.Duration
}

// Table1Result reproduces Table I: accuracy and runtime of Model B versus
// segment count, with Model A and the 1-D model for context.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 runs the Fig. 5 liner sweep for Model B at the paper's four
// segmentations — (1, 1), (2, 20), (10, 100), (50, 500) — plus Model A and
// the 1-D baseline, and reports max/avg error versus the reference solver
// and the average solve runtime (paper Table I).
func Table1(cfg Config) (*Table1Result, error) {
	liners := []float64{0.5, 1, 1.5, 2, 2.5, 3}
	segments := []int{1, 20, 100, 500}
	if cfg.Quick {
		liners = []float64{0.5, 1.5, 3}
		segments = []int{1, 20, 100}
	}
	ms := make([]namedModel, 0, len(segments)+2)
	for _, n := range segments {
		m := core.NewModelB(n)
		ms = append(ms, namedModel{m.Name(), m})
	}
	ms = append(ms,
		namedModel{"A", core.ModelA{Coeffs: cfg.BlockCoeffs}},
		namedModel{"1D", core.Model1D{}},
	)

	// The whole table — every (liner, model) pair plus the per-liner
	// reference solves — is one batch through the sweep engine.
	sw := &Sweep{ID: "table1", Models: modelNames(ms)}
	stacks := make([]*stack.Stack, 0, len(liners))
	for _, tl := range liners {
		s, err := stack.Fig5Block(units.UM(tl))
		if err != nil {
			return nil, err
		}
		stacks = append(stacks, s)
	}
	if err := runSweepPoints(cfg, sw, liners, stacks, withReference(ms, cfg.Resolution)); err != nil {
		return nil, err
	}
	out := &Table1Result{}
	stats := sw.ErrorStats()
	for _, nm := range ms {
		st := stats[nm.name]
		out.Rows = append(out.Rows, Table1Row{
			Model:      nm.name,
			MaxErr:     st.Max,
			AvgErr:     st.Avg,
			AvgRuntime: st.AvgRuntime,
		})
	}
	return out, nil
}

// Table renders the result in the paper's layout (models as columns become
// rows here for readability).
func (t *Table1Result) Table() *report.Table {
	tb := report.NewTable("Table I: error and runtime vs. number of segments in Model B",
		"model", "max error", "avg error", "avg runtime")
	for _, r := range t.Rows {
		tb.AddRow(r.Model,
			fmt.Sprintf("%.1f%%", 100*r.MaxErr),
			fmt.Sprintf("%.1f%%", 100*r.AvgErr),
			r.AvgRuntime.Round(time.Microsecond).String())
	}
	return tb
}

// Row returns the row for the named model.
func (t *Table1Result) Row(model string) (Table1Row, bool) {
	for _, r := range t.Rows {
		if r.Model == model {
			return r, true
		}
	}
	return Table1Row{}, false
}
