package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/fit"
	"repro/internal/report"
	"repro/internal/stack"
	"repro/internal/units"
)

// HeadlineResult aggregates every sweep into the abstract's claim: the
// average error of Model A and Model B against the reference over all
// varied TTSV parameters (paper: 2% and 4% vs COMSOL with the authors'
// fitted coefficients; against this repository's FVM reference the fitted
// coefficients come from Calibrate).
type HeadlineResult struct {
	// PerSweep maps experiment id -> model -> error statistics.
	PerSweep map[string]map[string]ErrStat
	// Overall maps model -> mean of the per-sweep average errors.
	Overall map[string]float64
}

// Headline runs Figs. 4-7 and aggregates the error statistics.
func Headline(cfg Config) (*HeadlineResult, error) {
	sweeps := []func(Config) (*Sweep, error){Fig4, Fig5, Fig6, Fig7}
	out := &HeadlineResult{
		PerSweep: make(map[string]map[string]ErrStat),
		Overall:  make(map[string]float64),
	}
	counts := make(map[string]int)
	for _, run := range sweeps {
		sw, err := run(cfg)
		if err != nil {
			return nil, err
		}
		stats := sw.ErrorStats()
		out.PerSweep[sw.ID] = stats
		for name, st := range stats {
			if name == RefName {
				continue
			}
			out.Overall[name] += st.Avg
			counts[name]++
		}
	}
	for name, c := range counts {
		out.Overall[name] /= float64(c)
	}
	return out, nil
}

// Table renders the per-sweep and overall error summary.
func (h *HeadlineResult) Table() *report.Table {
	tb := report.NewTable("Average relative error vs. the FVM reference",
		"sweep", "model", "avg error", "max error", "avg runtime")
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7"} {
		stats, ok := h.PerSweep[id]
		if !ok {
			continue
		}
		for _, model := range sortedModelNames(stats) {
			if model == RefName {
				st := stats[model]
				tb.AddRow(id, model, "-", "-", st.AvgRuntime.Round(time.Microsecond).String())
				continue
			}
			st := stats[model]
			tb.AddRow(id, model,
				fmt.Sprintf("%.1f%%", 100*st.Avg),
				fmt.Sprintf("%.1f%%", 100*st.Max),
				st.AvgRuntime.Round(time.Microsecond).String())
		}
	}
	for _, model := range sortedKeys(h.Overall) {
		tb.AddRow("ALL", model, fmt.Sprintf("%.1f%%", 100*h.Overall[model]), "", "")
	}
	return tb
}

func sortedModelNames(m map[string]ErrStat) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// CalibrationResult reports the re-derived Model A coefficients (§II's
// calibration workflow executed against this repository's reference solver
// instead of COMSOL).
type CalibrationResult struct {
	// Coeffs are the fitted coefficients.
	Coeffs core.Coeffs
	// RMS is the root-mean-square relative error at the calibration points.
	RMS float64
	// Points counts the calibration geometries.
	Points int
}

// Calibrate re-derives k1/k2 for Model A against the FVM reference on a
// small set of block geometries spanning all swept parameters — via radius,
// liner thickness and substrate thickness — mirroring how the paper
// obtained its fitting coefficients from FEM runs of representative blocks.
func Calibrate(cfg Config) (*CalibrationResult, error) {
	var geoms []func() (*stack.Stack, error)
	mk := func(f func(float64) (*stack.Stack, error), v float64) func() (*stack.Stack, error) {
		return func() (*stack.Stack, error) { return f(v) }
	}
	if cfg.Quick {
		geoms = []func() (*stack.Stack, error){
			mk(stack.Fig4Block, units.UM(5)),
			mk(stack.Fig4Block, units.UM(12)),
			mk(stack.Fig6Block, units.UM(20)),
		}
	} else {
		geoms = []func() (*stack.Stack, error){
			mk(stack.Fig4Block, units.UM(3)),
			mk(stack.Fig4Block, units.UM(8)),
			mk(stack.Fig4Block, units.UM(16)),
			mk(stack.Fig5Block, units.UM(1)),
			mk(stack.Fig5Block, units.UM(3)),
			mk(stack.Fig6Block, units.UM(20)),
			mk(stack.Fig6Block, units.UM(60)),
		}
	}
	var points []fit.CalibrationPoint
	for _, g := range geoms {
		s, err := g()
		if err != nil {
			return nil, err
		}
		sol, err := fem.SolveStack(s, cfg.Resolution)
		if err != nil {
			return nil, err
		}
		ref, _, _ := sol.MaxT()
		points = append(points, fit.CalibrationPoint{Stack: s, RefDT: ref})
	}
	coeffs, rms, err := fit.CalibrateModelA(points, core.UnitCoeffs())
	if err != nil {
		return nil, err
	}
	return &CalibrationResult{Coeffs: coeffs, RMS: rms, Points: len(points)}, nil
}
