package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/units"
)

// All experiment tests run the Quick configuration: thinner sweeps, coarser
// reference mesh — the assertions are about shape, not absolute values.

func TestFig4Shape(t *testing.T) {
	sw, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if sw.ID != "fig4" || len(sw.Points) < 3 {
		t.Fatalf("sweep = %+v", sw)
	}
	// ΔT decreases with radius for every method, including the reference.
	for _, m := range sw.Models {
		first := sw.Points[0].DT[m]
		last := sw.Points[len(sw.Points)-1].DT[m]
		if last >= first {
			t.Errorf("%s: ΔT did not fall from r=%g (%g) to r=%g (%g)",
				m, sw.Points[0].X, first, sw.Points[len(sw.Points)-1].X, last)
		}
	}
	// Models A and B track the reference far better than the 1-D model at
	// the high-aspect-ratio end (r = 1 µm), the paper's Fig. 4 observation.
	p0 := sw.Points[0]
	ref := p0.DT[RefName]
	if e1d, eb := units.RelErr(p0.DT["1D"], ref), units.RelErr(p0.DT["B(100)"], ref); e1d <= eb {
		t.Errorf("at r=1µm the 1-D error (%.1f%%) should exceed Model B's (%.1f%%)", 100*e1d, 100*eb)
	}
}

func TestFig5Shape(t *testing.T) {
	sw, err := Fig5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// The reference and Models A/B increase with liner thickness; the 1-D
	// model stays flat (relative change under 2%).
	for _, m := range sw.Models {
		first := sw.Points[0].DT[m]
		last := sw.Points[len(sw.Points)-1].DT[m]
		if m == "1D" {
			if units.RelErr(first, last) > 0.02 {
				t.Errorf("1-D model not flat vs liner: %g -> %g", first, last)
			}
			continue
		}
		if last <= first {
			t.Errorf("%s: ΔT did not rise with liner thickness (%g -> %g)", m, first, last)
		}
	}
	// Model B's accuracy improves with segments at the thickest liner.
	pLast := sw.Points[len(sw.Points)-1]
	ref := pLast.DT[RefName]
	e1 := units.RelErr(pLast.DT["B(1)"], ref)
	e100 := units.RelErr(pLast.DT["B(100)"], ref)
	if e100 >= e1 {
		t.Errorf("B(100) error %.1f%% not below B(1) error %.1f%%", 100*e100, 100*e1)
	}
}

func TestFig6Shape(t *testing.T) {
	sw, err := Fig6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Quick() samples t_Si = 5, 20, 80: the reference, A and B must all dip
	// at 20 µm; the 1-D model must rise monotonically.
	get := func(m string) (a, b, c float64) {
		return sw.Points[0].DT[m], sw.Points[1].DT[m], sw.Points[2].DT[m]
	}
	for _, m := range []string{"A", "B(100)", RefName} {
		lo, mid, hi := get(m)
		if !(lo > mid && hi > mid) {
			t.Errorf("%s misses the non-monotonic dip: %g, %g, %g", m, lo, mid, hi)
		}
	}
	lo, mid, hi := get("1D")
	if !(lo < mid && mid < hi) {
		t.Errorf("1-D not monotone: %g, %g, %g", lo, mid, hi)
	}
}

func TestFig7Shape(t *testing.T) {
	sw, err := Fig7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range sw.Models {
		first := sw.Points[0].DT[m]
		last := sw.Points[len(sw.Points)-1].DT[m]
		if m == "1D" {
			if units.RelErr(first, last) > 1e-9 {
				t.Errorf("1-D model sensitive to cluster count: %g vs %g", first, last)
			}
			continue
		}
		if last >= first {
			t.Errorf("%s: ΔT did not fall with cluster count (%g -> %g)", m, first, last)
		}
	}
}

func TestTable1Ordering(t *testing.T) {
	res, err := Table1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	b1, ok1 := res.Row("B(1)")
	b20, ok20 := res.Row("B(20)")
	b100, ok100 := res.Row("B(100)")
	oneD, okD := res.Row("1D")
	if !ok1 || !ok20 || !ok100 || !okD {
		t.Fatalf("missing rows: %+v", res.Rows)
	}
	// Table I's two claims: accuracy improves with segments, runtime grows.
	if !(b1.AvgErr > b20.AvgErr && b20.AvgErr > b100.AvgErr) {
		t.Errorf("error not decreasing with segments: %.3f, %.3f, %.3f", b1.AvgErr, b20.AvgErr, b100.AvgErr)
	}
	if b100.AvgRuntime <= b1.AvgRuntime {
		t.Errorf("runtime not increasing with segments: %v vs %v", b1.AvgRuntime, b100.AvgRuntime)
	}
	// The 1-D model is the least accurate method in the lineup.
	if oneD.AvgErr <= b100.AvgErr {
		t.Errorf("1-D avg error %.3f not above B(100)'s %.3f", oneD.AvgErr, b100.AvgErr)
	}
	if _, ok := res.Row("nope"); ok {
		t.Error("unknown row found")
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "B(20)") {
		t.Errorf("table missing B(20):\n%s", buf.String())
	}
}

func TestCaseStudyShape(t *testing.T) {
	res, err := CaseStudy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	ref, ok := res.Entry(RefName)
	if !ok {
		t.Fatal("no reference entry")
	}
	b, okB := res.Entry("B(200)")
	a, okA := res.Entry("A")
	d, okD := res.Entry("1D")
	if !okA || !okB || !okD {
		t.Fatalf("entries = %+v", res.Entries)
	}
	if e := units.RelErr(b.MaxDT, ref.MaxDT); e > 0.10 {
		t.Errorf("Model B off by %.0f%%", 100*e)
	}
	if e := units.RelErr(a.MaxDT, ref.MaxDT); e > 0.20 {
		t.Errorf("Model A off by %.0f%%", 100*e)
	}
	if d.MaxDT < 1.4*ref.MaxDT {
		t.Errorf("1-D %g does not overestimate reference %g substantially", d.MaxDT, ref.MaxDT)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DRAM-µP") {
		t.Errorf("table:\n%s", buf.String())
	}
}

func TestHeadlineAggregates(t *testing.T) {
	res, err := Headline(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSweep) != 4 {
		t.Fatalf("PerSweep has %d sweeps", len(res.PerSweep))
	}
	// The paper's headline ordering: B beats the 1-D model on average, and
	// both analytical models stay within a modest band of the reference.
	if res.Overall["B(100)"] >= res.Overall["1D"] {
		t.Errorf("overall: B %.3f not below 1D %.3f", res.Overall["B(100)"], res.Overall["1D"])
	}
	if res.Overall["B(100)"] > 0.10 {
		t.Errorf("overall B error %.1f%% exceeds 10%%", 100*res.Overall["B(100)"])
	}
	if res.Overall["A"] > 0.25 {
		t.Errorf("overall A error %.1f%% exceeds 25%%", 100*res.Overall["A"])
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ALL") {
		t.Errorf("table:\n%s", buf.String())
	}
}

func TestCalibrateImprovesModelA(t *testing.T) {
	cfg := Quick()
	cal, err := Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cal.RMS > 0.05 {
		t.Errorf("calibration residual %.1f%%", 100*cal.RMS)
	}
	if cal.Coeffs.K1 <= 0 || cal.Coeffs.K2 <= 0 {
		t.Errorf("coeffs = %+v", cal.Coeffs)
	}
	if cal.Points < 2 {
		t.Errorf("points = %d", cal.Points)
	}
}

func TestSweepTableAndPlot(t *testing.T) {
	sw, err := Fig7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sw.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 7", "n", "A", "B(100)", "1D", RefName} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := sw.Plot().Render(&buf, 60, 16); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "max ΔT") && !strings.Contains(buf.String(), "Fig. 7") {
		t.Errorf("plot:\n%s", buf.String())
	}
}

func TestErrorStatsRuntimes(t *testing.T) {
	sw, err := Fig7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	stats := sw.ErrorStats()
	if stats["A"].AvgRuntime <= 0 || stats[RefName].AvgRuntime <= 0 {
		t.Error("runtimes missing")
	}
	// The analytical models must be orders of magnitude faster than the
	// reference (the paper's efficiency claim).
	if stats["A"].AvgRuntime > stats[RefName].AvgRuntime/10 {
		t.Errorf("Model A runtime %v not well below reference %v",
			stats["A"].AvgRuntime, stats[RefName].AvgRuntime)
	}
	if stats[RefName].Max != 0 || stats[RefName].Avg != 0 {
		t.Error("reference has nonzero self-error")
	}
}

func TestPlaneScalingGrowsSuperlinearly(t *testing.T) {
	sw, err := PlaneScaling(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if sw.ID != "planes" || len(sw.Points) < 3 {
		t.Fatalf("sweep = %+v", sw)
	}
	for _, m := range sw.Models {
		dts := make([]float64, len(sw.Points))
		for i, p := range sw.Points {
			dts[i] = p.DT[m]
		}
		// Monotone growth with plane count.
		for i := 1; i < len(dts); i++ {
			if dts[i] <= dts[i-1] {
				t.Fatalf("%s: ΔT not growing with planes: %v", m, dts)
			}
		}
		// Superlinear: the last step (4->6 planes) adds more per plane than
		// the first (2->4) since every new plane's heat crosses all below.
		perPlaneFirst := (dts[1] - dts[0]) / (sw.Points[1].X - sw.Points[0].X)
		perPlaneLast := (dts[2] - dts[1]) / (sw.Points[2].X - sw.Points[1].X)
		if perPlaneLast <= perPlaneFirst {
			t.Errorf("%s: growth not superlinear: %g then %g per plane", m, perPlaneFirst, perPlaneLast)
		}
	}
	// Model B tracks the reference within 10% even at 6 planes.
	last := sw.Points[len(sw.Points)-1]
	if e := units.RelErr(last.DT["B(100)"], last.DT[RefName]); e > 0.10 {
		t.Errorf("B(100) at 6 planes off by %.0f%%", 100*e)
	}
}

func TestTransientExperiment(t *testing.T) {
	res, err := Transient(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) < 2 {
		t.Fatalf("entries = %+v", res.Entries)
	}
	for _, e := range res.Entries {
		if !e.Settled {
			t.Errorf("r=%g: did not settle", e.RadiusUM)
		}
		if e.FinalDT <= 0 || e.SettlingTime <= 0 {
			t.Errorf("r=%g: implausible entry %+v", e.RadiusUM, e)
		}
	}
	// Bigger via ends cooler.
	if res.Entries[0].FinalDT <= res.Entries[len(res.Entries)-1].FinalDT {
		t.Error("final ΔT not decreasing with radius")
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "settling") {
		t.Errorf("table:\n%s", buf.String())
	}
}
