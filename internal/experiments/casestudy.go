package experiments

import (
	"fmt"
	"time"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/units"
)

// CaseStudyEntry is one method's result on the DRAM-µP system.
type CaseStudyEntry struct {
	Method  string
	MaxDT   float64
	Runtime time.Duration
	// RelErr is the deviation from the reference entry.
	RelErr float64
}

// CaseStudyResult reproduces §IV-E: the 3-D DRAM-µP system analyzed with
// Model A (system coefficients), Model B (1000 segments), the 1-D model and
// the reference solver. The paper reports 12.8 °C, 13.9 °C, 20 °C and 12 °C
// respectively.
type CaseStudyResult struct {
	System  chip.System
	Entries []CaseStudyEntry
}

// CaseStudy runs the paper's §IV-E analysis.
func CaseStudy(cfg Config) (*CaseStudyResult, error) {
	sys := chip.DRAMuP()
	segments := 1000
	if cfg.Quick {
		segments = 200
	}
	out := &CaseStudyResult{System: sys}

	t0 := time.Now()
	ref, _, err := sys.AnalyzeReference(cfg.Resolution)
	if err != nil {
		return nil, err
	}
	refEntry := CaseStudyEntry{Method: RefName, MaxDT: ref, Runtime: time.Since(t0)}

	models := []namedModel{
		{"A", core.ModelA{Coeffs: cfg.SystemCoeffs}},
		{fmt.Sprintf("B(%d)", segments), core.NewModelB(segments)},
		{"1D", core.Model1D{}},
	}
	for _, nm := range models {
		t0 := time.Now()
		r, err := sys.Analyze(nm.model)
		if err != nil {
			return nil, fmt.Errorf("experiments: case study %s: %w", nm.name, err)
		}
		out.Entries = append(out.Entries, CaseStudyEntry{
			Method:  nm.name,
			MaxDT:   r.MaxDT,
			Runtime: time.Since(t0),
			RelErr:  units.RelErr(r.MaxDT, ref),
		})
	}
	out.Entries = append(out.Entries, refEntry)
	return out, nil
}

// Entry returns the named method's entry.
func (c *CaseStudyResult) Entry(method string) (CaseStudyEntry, bool) {
	for _, e := range c.Entries {
		if e.Method == method {
			return e, true
		}
	}
	return CaseStudyEntry{}, false
}

// Table renders the case study results.
func (c *CaseStudyResult) Table() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("§IV-E: 3-D DRAM-µP case study (%d TTSVs, %.1f%% density)",
			c.System.ViaCount(), 100*c.System.ViaDensity),
		"method", "max ΔT [°C]", "vs ref", "runtime")
	for _, e := range c.Entries {
		vs := "-"
		if e.Method != RefName {
			vs = fmt.Sprintf("%+.1f%%", 100*e.RelErr)
		}
		tb.AddRow(e.Method, fmt.Sprintf("%.2f", e.MaxDT), vs, e.Runtime.Round(time.Microsecond).String())
	}
	return tb
}
