// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV): the TTSV radius sweep (Fig. 4), the liner thickness
// sweep (Fig. 5), the accuracy/runtime trade-off of Model B's segmentation
// (Table I), the substrate thickness sweep (Fig. 6), the via cluster sweep
// (Fig. 7) and the 3-D DRAM-µP case study (§IV-E). Each experiment runs the
// analytical models against the finite-volume reference solver and reports
// the same rows/series as the paper.
package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sparse"
	"repro/internal/stack"
	"repro/internal/sweep"
	"repro/internal/units"
)

// RefName is the reference column's model name in sweeps.
const RefName = "FVM"

// Config controls experiment fidelity.
type Config struct {
	// Ctx optionally bounds every experiment run: a cancelled context stops
	// in-flight sweeps between solver iterations and the run returns the
	// context error. Nil means context.Background().
	Ctx context.Context
	// Resolution is the reference solver mesh density.
	Resolution fem.Resolution
	// BlockCoeffs are Model A's coefficients for the block experiments
	// (the paper's k1 = 1.3, k2 = 0.55 by default).
	BlockCoeffs core.Coeffs
	// SystemCoeffs are the case-study coefficients (k1 = 1.6, k2 = 0.8,
	// c_{1,2} = 3.5 by default).
	SystemCoeffs core.Coeffs
	// SegmentsB is the per-plane segment count of the headline Model B runs
	// ("Model B (100)" in the figures).
	SegmentsB int
	// CalibratedA optionally adds a second Model A column, "A(cal)", run
	// with these coefficients — typically the output of Calibrate, i.e.
	// Model A fitted to this repository's own reference the way the paper's
	// A was fitted to COMSOL.
	CalibratedA *core.Coeffs
	// Quick thins the sweeps for fast runs (tests); the full grids match
	// the paper's.
	Quick bool
	// Workers is the concurrency of the batch evaluation engine; values
	// < 1 select GOMAXPROCS. Results are identical for any worker count.
	Workers int
	// Trace optionally records every experiment as NDJSON spans: one
	// "experiments.<id>" root per sweep with the batch engine's sweep.run /
	// sweep.job spans and the reference solver's fem/sparse spans below it.
	Trace *obs.Tracer
}

// Default returns the paper-faithful configuration.
func Default() Config {
	return Config{
		Resolution:   fem.DefaultResolution(),
		BlockCoeffs:  core.PaperBlockCoeffs(),
		SystemCoeffs: core.PaperSystemCoeffs(),
		SegmentsB:    100,
	}
}

// Quick returns a thinned configuration for fast smoke runs.
func Quick() Config {
	c := Default()
	c.Quick = true
	c.Resolution = fem.Resolution{RadialVia: 4, RadialLiner: 2, RadialOuter: 12, AxialPerLayer: 4, AxialMin: 2, Bulk: 10}
	return c
}

// Point is one sweep sample: the sweep variable plus each model's result.
type Point struct {
	// X is the sweep variable in display units (µm for lengths, count for
	// cluster size).
	X float64
	// DT maps model name to maximum temperature rise (K).
	DT map[string]float64
	// Runtime maps model name to its solve wall time.
	Runtime map[string]time.Duration
	// Solver maps model name to the iterative-solve statistics of the run
	// (zero for models that solved directly).
	Solver map[string]sparse.Stats
}

// Sweep is one figure-shaped experiment result.
type Sweep struct {
	// ID is the experiment identifier ("fig4", ...).
	ID string
	// Title describes the sweep.
	Title string
	// XLabel names the sweep variable.
	XLabel string
	// Models lists the model names in display order (reference last).
	Models []string
	// Points are the sweep samples in X order.
	Points []Point
}

// ErrStat summarizes one model's deviation from the reference over a sweep.
type ErrStat struct {
	// Max and Avg are the maximum and mean |relative error| vs the
	// reference.
	Max, Avg float64
	// AvgRuntime is the mean solve time.
	AvgRuntime time.Duration
	// AvgIters is the mean iterative-solver iteration count (zero for
	// models that solved directly).
	AvgIters float64
}

// models bundles a named solver.
type namedModel struct {
	name  string
	model core.Model
}

// withReference appends the FVM reference solver to a model lineup.
func withReference(ms []namedModel, res fem.Resolution) []namedModel {
	return append(ms, namedModel{RefName, fem.ReferenceModel{Res: res}})
}

// runSweepPoints evaluates every (point, model) pair of a sweep through the
// batch engine — including the reference, which withReference adds as the
// last model — and assembles the per-point rows. Job order is point-major,
// so the engine's deterministic ordering maps back without bookkeeping.
func runSweepPoints(cfg Config, sw *Sweep, xs []float64, stacks []*stack.Stack, ms []namedModel) error {
	jobs := make(sweep.Batch, 0, len(stacks)*len(ms))
	for _, s := range stacks {
		for _, nm := range ms {
			jobs = jobs.Add(nm.name, s, nm.model)
		}
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx = obs.ContextWithTracer(ctx, cfg.Trace)
	ctx, sp := obs.StartSpan(ctx, "experiments."+sw.ID)
	defer sp.End()
	obs.Default().Counter("experiments.runs").Inc()
	outs, err := sweep.Run(ctx, jobs, sweep.Options{Workers: cfg.Workers})
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", sw.ID, err)
	}
	for pi := range stacks {
		p := Point{
			X:       xs[pi],
			DT:      make(map[string]float64),
			Runtime: make(map[string]time.Duration),
			Solver:  make(map[string]sparse.Stats),
		}
		for mi, nm := range ms {
			oc := outs[pi*len(ms)+mi]
			if oc.Err != nil {
				return fmt.Errorf("experiments: %s at x=%g: %w", nm.name, xs[pi], oc.Err)
			}
			p.DT[nm.name] = oc.Result.MaxDT
			if oc.FromCache {
				// A cached outcome carries the original solve's stats; counting
				// them again would double-book iterations and wall time.
				continue
			}
			p.Runtime[nm.name] = oc.Runtime
			p.Solver[nm.name] = oc.Result.Solver
		}
		sw.Points = append(sw.Points, p)
	}
	return nil
}

// standardModels returns the figure lineup: Model A (fitted), Model B, 1-D,
// plus the re-calibrated Model A when configured.
func standardModels(cfg Config) []namedModel {
	ms := []namedModel{
		{"A", core.ModelA{Coeffs: cfg.BlockCoeffs}},
	}
	if cfg.CalibratedA != nil {
		ms = append(ms, namedModel{"A(cal)", core.ModelA{Coeffs: *cfg.CalibratedA}})
	}
	return append(ms,
		namedModel{fmt.Sprintf("B(%d)", cfg.SegmentsB), core.NewModelB(cfg.SegmentsB)},
		namedModel{"1D", core.Model1D{}},
	)
}

func modelNames(ms []namedModel) []string {
	names := make([]string, 0, len(ms)+1)
	for _, m := range ms {
		names = append(names, m.name)
	}
	return append(names, RefName)
}

// Fig4 sweeps the TTSV radius from 1 µm to 20 µm (paper Fig. 4): ΔT falls
// with the radius; the substrate thickness switches at r = 5 µm to respect
// the aspect-ratio limit.
func Fig4(cfg Config) (*Sweep, error) {
	radii := []float64{1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20}
	if cfg.Quick {
		radii = []float64{1, 5, 10, 20}
	}
	ms := standardModels(cfg)
	sw := &Sweep{ID: "fig4", Title: "Fig. 4: max ΔT vs TTSV radius", XLabel: "r [µm]", Models: modelNames(ms)}
	stacks := make([]*stack.Stack, 0, len(radii))
	for _, r := range radii {
		s, err := stack.Fig4Block(units.UM(r))
		if err != nil {
			return nil, err
		}
		stacks = append(stacks, s)
	}
	if err := runSweepPoints(cfg, sw, radii, stacks, withReference(ms, cfg.Resolution)); err != nil {
		return nil, err
	}
	return sw, nil
}

// Fig5 sweeps the liner thickness from 0.5 µm to 3 µm (paper Fig. 5),
// running Model B at every segmentation of Table I alongside Model A and
// the 1-D model.
func Fig5(cfg Config) (*Sweep, error) {
	liners := []float64{0.5, 1, 1.5, 2, 2.5, 3}
	segments := []int{1, 20, 100, 500}
	if cfg.Quick {
		liners = []float64{0.5, 1.5, 3}
		segments = []int{1, 20, 100}
	}
	ms := []namedModel{{"A", core.ModelA{Coeffs: cfg.BlockCoeffs}}}
	for _, n := range segments {
		m := core.NewModelB(n)
		ms = append(ms, namedModel{m.Name(), m})
	}
	ms = append(ms, namedModel{"1D", core.Model1D{}})
	sw := &Sweep{ID: "fig5", Title: "Fig. 5: max ΔT vs liner thickness", XLabel: "t_L [µm]", Models: modelNames(ms)}
	stacks := make([]*stack.Stack, 0, len(liners))
	for _, tl := range liners {
		s, err := stack.Fig5Block(units.UM(tl))
		if err != nil {
			return nil, err
		}
		stacks = append(stacks, s)
	}
	if err := runSweepPoints(cfg, sw, liners, stacks, withReference(ms, cfg.Resolution)); err != nil {
		return nil, err
	}
	return sw, nil
}

// Fig6 sweeps the upper-plane substrate thickness from 5 µm to 80 µm (paper
// Fig. 6), the sweep exposing the non-monotonic ΔT the 1-D model misses.
func Fig6(cfg Config) (*Sweep, error) {
	thicknesses := []float64{5, 10, 15, 20, 30, 40, 50, 60, 70, 80}
	if cfg.Quick {
		thicknesses = []float64{5, 20, 80}
	}
	ms := standardModels(cfg)
	sw := &Sweep{ID: "fig6", Title: "Fig. 6: max ΔT vs substrate thickness", XLabel: "t_Si2,3 [µm]", Models: modelNames(ms)}
	stacks := make([]*stack.Stack, 0, len(thicknesses))
	for _, tsi := range thicknesses {
		s, err := stack.Fig6Block(units.UM(tsi))
		if err != nil {
			return nil, err
		}
		stacks = append(stacks, s)
	}
	if err := runSweepPoints(cfg, sw, thicknesses, stacks, withReference(ms, cfg.Resolution)); err != nil {
		return nil, err
	}
	return sw, nil
}

// Fig7 sweeps the number of equal-total-metal-area TTSVs the original via is
// divided into (paper Fig. 7, §IV-D): n = 1, 2, 4, 9, 16.
func Fig7(cfg Config) (*Sweep, error) {
	counts := []int{1, 2, 4, 9, 16}
	if cfg.Quick {
		counts = []int{1, 4, 16}
	}
	ms := standardModels(cfg)
	sw := &Sweep{ID: "fig7", Title: "Fig. 7: max ΔT vs number of TTSVs", XLabel: "n", Models: modelNames(ms)}
	xs := make([]float64, 0, len(counts))
	stacks := make([]*stack.Stack, 0, len(counts))
	for _, n := range counts {
		s, err := stack.Fig7Block(n)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(n))
		stacks = append(stacks, s)
	}
	if err := runSweepPoints(cfg, sw, xs, stacks, withReference(ms, cfg.Resolution)); err != nil {
		return nil, err
	}
	return sw, nil
}

// ErrorStats computes each model's max/avg relative error against the
// sweep's reference column, plus mean runtimes.
func (sw *Sweep) ErrorStats() map[string]ErrStat {
	out := make(map[string]ErrStat)
	for _, name := range sw.Models {
		var stat ErrStat
		var n int
		var totalRT time.Duration
		for _, p := range sw.Points {
			ref, okRef := p.DT[RefName]
			got, ok := p.DT[name]
			if !ok || !okRef {
				continue
			}
			totalRT += p.Runtime[name]
			stat.AvgIters += float64(p.Solver[name].Iterations)
			if name == RefName {
				n++
				continue
			}
			e := units.RelErr(got, ref)
			stat.Avg += e
			if e > stat.Max {
				stat.Max = e
			}
			n++
		}
		if n > 0 {
			stat.Avg /= float64(n)
			stat.AvgRuntime = totalRT / time.Duration(n)
			stat.AvgIters /= float64(n)
		}
		out[name] = stat
	}
	return out
}

// Table renders the sweep as a table with one column per model.
func (sw *Sweep) Table() *report.Table {
	cols := append([]string{sw.XLabel}, sw.Models...)
	t := report.NewTable(sw.Title, cols...)
	for _, p := range sw.Points {
		row := make([]string, 0, len(cols))
		row = append(row, trimFloat(p.X))
		for _, m := range sw.Models {
			row = append(row, fmt.Sprintf("%.2f", p.DT[m]))
		}
		t.AddRow(row...)
	}
	return t
}

// Plot renders the sweep as an ASCII figure.
func (sw *Sweep) Plot() *report.Plot {
	pl := &report.Plot{Title: sw.Title, XLabel: sw.XLabel, YLabel: "max ΔT [°C]"}
	for _, m := range sw.Models {
		s := report.Series{Name: m}
		for _, p := range sw.Points {
			if dt, ok := p.DT[m]; ok {
				s.X = append(s.X, p.X)
				s.Y = append(s.Y, dt)
			}
		}
		pl.Series = append(pl.Series, s)
	}
	return pl
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%.2g", x)
}
