package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stack"
	"repro/internal/units"
)

// PlaneScaling sweeps the plane count of the standard block from 2 to 8
// (paper §II notes Model A "can be extended to any number of planes"; this
// experiment exercises the extension and validates it against the
// reference). Every plane added stacks another heat source on the same
// sink, so ΔT grows superlinearly.
func PlaneScaling(cfg Config) (*Sweep, error) {
	counts := []int{2, 3, 4, 5, 6, 8}
	if cfg.Quick {
		counts = []int{2, 4, 6}
	}
	ms := standardModels(cfg)
	sw := &Sweep{
		ID:     "planes",
		Title:  "Extension: max ΔT vs number of planes (Fig. 4 block, r = 10 µm)",
		XLabel: "planes",
		Models: modelNames(ms),
	}
	xs := make([]float64, 0, len(counts))
	stacks := make([]*stack.Stack, 0, len(counts))
	for _, n := range counts {
		c := stack.DefaultBlock()
		c.NumPlanes = n
		c.R = units.UM(10)
		s, err := c.Build()
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(n))
		stacks = append(stacks, s)
	}
	if err := runSweepPoints(cfg, sw, xs, stacks, withReference(ms, cfg.Resolution)); err != nil {
		return nil, err
	}
	return sw, nil
}

// TransientEntry is one radius's step-response summary.
type TransientEntry struct {
	RadiusUM     float64
	FinalDT      float64
	SettlingTime float64
	Settled      bool
	Runtime      time.Duration
}

// TransientResult sweeps the via radius and reports each design's power-step
// settling behavior (extension beyond the paper's steady-state scope).
type TransientResult struct {
	Entries []TransientEntry
}

// Transient runs Model B step responses across the Fig. 4 radius range.
func Transient(cfg Config) (*TransientResult, error) {
	radii := []float64{2, 5, 10, 20}
	if cfg.Quick {
		radii = []float64{5, 20}
	}
	segments := 60
	if cfg.Quick {
		segments = 20
	}
	spec := core.TransientSpec{Dt: 100e-6, Steps: 400}
	m := core.NewModelB(segments)
	out := &TransientResult{}
	for _, r := range radii {
		s, err := stack.Fig4Block(units.UM(r))
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		tr, err := m.SolveTransient(s, spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: transient at r=%g: %w", r, err)
		}
		out.Entries = append(out.Entries, TransientEntry{
			RadiusUM:     r,
			FinalDT:      tr.FinalDT,
			SettlingTime: tr.SettlingTime,
			Settled:      tr.Settled,
			Runtime:      time.Since(t0),
		})
	}
	return out, nil
}

// Table renders the transient sweep.
func (t *TransientResult) Table() *report.Table {
	tb := report.NewTable("Extension: power-step response vs via radius (Model B)",
		"r [µm]", "final ΔT [K]", "5% settling [ms]", "runtime")
	for _, e := range t.Entries {
		settle := "beyond horizon"
		if e.Settled {
			settle = fmt.Sprintf("%.2f", e.SettlingTime*1e3)
		}
		tb.AddRow(
			fmt.Sprintf("%.0f", e.RadiusUM),
			fmt.Sprintf("%.2f", e.FinalDT),
			settle,
			e.Runtime.Round(time.Millisecond).String())
	}
	return tb
}
