package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBandedSystem(rng *rand.Rand, n, b int) (*Banded, *Matrix, []float64) {
	bd := NewBanded(n, b)
	dense := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := maxInt(0, i-b); j <= minInt(n-1, i+b); j++ {
			if j == i {
				continue
			}
			v := rng.Float64()*2 - 1
			bd.Add(i, j, v)
			dense.Set(i, j, v)
			rowSum += math.Abs(v)
		}
		d := rowSum + 0.5 + rng.Float64()
		bd.Add(i, i, d)
		dense.Set(i, i, d)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	return bd, dense, rhs
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBandedSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		b := rng.Intn(5)
		bd, dense, rhs := randomBandedSystem(rng, n, b)
		xb, err := bd.SolveBanded(rhs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		xd, err := Solve(dense, rhs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xb {
			if math.Abs(xb[i]-xd[i]) > 1e-9*(1+math.Abs(xd[i])) {
				t.Fatalf("trial %d (n=%d b=%d): x[%d] = %g vs dense %g", trial, n, b, i, xb[i], xd[i])
			}
		}
	}
}

func TestBandedAtAndMulVec(t *testing.T) {
	bd := NewBanded(4, 1)
	bd.Add(0, 0, 2)
	bd.Add(0, 1, -1)
	bd.Add(1, 0, -1)
	bd.Add(1, 1, 2)
	bd.Add(2, 2, 3)
	bd.Add(3, 3, 4)
	if bd.At(0, 1) != -1 || bd.At(0, 2) != 0 || bd.At(2, 2) != 3 {
		t.Fatal("At wrong")
	}
	y := bd.MulVec([]float64{1, 1, 1, 1})
	want := []float64{1, 1, 3, 4}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-15 {
			t.Fatalf("MulVec = %v", y)
		}
	}
}

func TestBandedOutsideBandPanics(t *testing.T) {
	bd := NewBanded(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-band Add")
		}
	}()
	bd.Add(0, 3, 1)
}

func TestBandedIndexPanics(t *testing.T) {
	bd := NewBanded(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range index")
		}
	}()
	bd.At(5, 0)
}

func TestBandedSingular(t *testing.T) {
	bd := NewBanded(2, 0)
	bd.Add(0, 0, 1)
	// Row 1 left zero.
	if _, err := bd.SolveBanded([]float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	empty := NewBanded(2, 1)
	if _, err := empty.SolveBanded([]float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix err = %v", err)
	}
}

func TestBandedDimensionChecks(t *testing.T) {
	bd := NewBanded(3, 1)
	if _, err := bd.SolveBanded([]float64{1}); err == nil {
		t.Error("short rhs accepted")
	}
	func() {
		defer func() { recover() }()
		NewBanded(0, 1)
		t.Error("NewBanded(0,1) did not panic")
	}()
	// Bandwidth clamps to n-1.
	wide := NewBanded(3, 10)
	if wide.Bandwidth() != 2 {
		t.Errorf("bandwidth = %d", wide.Bandwidth())
	}
}

func TestBandedResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		b := rng.Intn(4)
		bd, _, rhs := randomBandedSystem(rng, n, b)
		x, err := bd.SolveBanded(rhs)
		if err != nil {
			return false
		}
		ax := bd.MulVec(x)
		for i := range ax {
			if math.Abs(ax[i]-rhs[i]) > 1e-8*(1+math.Abs(rhs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBandedTridiagonalAgreesWithThomas(t *testing.T) {
	n := 30
	bd := NewBanded(n, 1)
	lower := make([]float64, n)
	diag := make([]float64, n)
	upper := make([]float64, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = 4
		bd.Add(i, i, 4)
		if i > 0 {
			lower[i] = -1
			bd.Add(i, i-1, -1)
		}
		if i < n-1 {
			upper[i] = -1.2
			bd.Add(i, i+1, -1.2)
		}
		rhs[i] = float64(i%5) - 2
	}
	xb, err := bd.SolveBanded(rhs)
	if err != nil {
		t.Fatal(err)
	}
	xt, err := SolveTridiag(lower, diag, upper, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xb {
		if math.Abs(xb[i]-xt[i]) > 1e-10 {
			t.Fatalf("banded vs Thomas at %d: %g vs %g", i, xb[i], xt[i])
		}
	}
}
