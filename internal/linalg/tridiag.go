package linalg

import "fmt"

// SolveTridiag solves a tridiagonal system using the Thomas algorithm.
//
//	lower[i]·x[i-1] + diag[i]·x[i] + upper[i]·x[i+1] = rhs[i]
//
// lower[0] and upper[n-1] are ignored. The inputs are not modified.
// The Thomas algorithm is only stable for diagonally dominant or symmetric
// positive definite systems, which is what 1-D heat-conduction chains
// produce; a zero pivot returns ErrSingular.
func SolveTridiag(lower, diag, upper, rhs []float64) ([]float64, error) {
	n := len(diag)
	if n == 0 {
		return nil, fmt.Errorf("linalg: SolveTridiag: empty system")
	}
	if len(lower) != n || len(upper) != n || len(rhs) != n {
		return nil, fmt.Errorf("linalg: SolveTridiag: inconsistent lengths (lower=%d diag=%d upper=%d rhs=%d)",
			len(lower), n, len(upper), len(rhs))
	}
	cp := make([]float64, n) // modified upper coefficients
	dp := make([]float64, n) // modified rhs
	if diag[0] == 0 {
		return nil, fmt.Errorf("%w: zero pivot at row 0", ErrSingular)
	}
	cp[0] = upper[0] / diag[0]
	dp[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - lower[i]*cp[i-1]
		if den == 0 {
			return nil, fmt.Errorf("%w: zero pivot at row %d", ErrSingular, i)
		}
		cp[i] = upper[i] / den
		dp[i] = (rhs[i] - lower[i]*dp[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x, nil
}
