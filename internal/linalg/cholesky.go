package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization meets a non-positive
// pivot: the matrix is not symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// FactorizeCholesky computes the Cholesky factorization of a symmetric
// positive definite matrix. Only the lower triangle of a is read; the input
// is not modified. Thermal conductance matrices are SPD, so this is the
// natural direct solver for the netlist engine.
func FactorizeCholesky(a *Matrix) (*Cholesky, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("linalg: cannot Cholesky-factorize non-square %dx%d matrix", n, a.Cols())
	}
	return FactorizeCholeskyInto(a, NewMatrix(n, n))
}

// FactorizeCholeskyInto is FactorizeCholesky writing the factor into l, an
// n×n matrix whose contents are fully overwritten (callers may recycle the
// backing storage of a previous factorization, e.g. via NewMatrixWithData).
// The inner loops run on raw row slices: the dense coarse solve sits on the
// multigrid build path, where accessor bounds checks cost real time. The
// summation order is exactly that of the accessor-based formulation, so the
// factor bits do not depend on which entry point produced it.
func FactorizeCholeskyInto(a, l *Matrix) (*Cholesky, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("linalg: cannot Cholesky-factorize non-square %dx%d matrix", n, a.Cols())
	}
	if l.rows != n || l.cols != n {
		return nil, fmt.Errorf("linalg: Cholesky factor buffer is %dx%d, want %dx%d", l.rows, l.cols, n, n)
	}
	ad, ld := a.data, l.data
	clear(ld)
	for j := 0; j < n; j++ {
		rowj := ld[j*n : j*n+j+1 : j*n+j+1]
		d := ad[j*n+j]
		for _, v := range rowj[:j] {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d is %g", ErrNotSPD, j, d)
		}
		d = math.Sqrt(d)
		rowj[j] = d
		for i := j + 1; i < n; i++ {
			rowi := ld[i*n : i*n+j+1 : i*n+j+1]
			s := ad[i*n+j]
			for k := 0; k < j; k++ {
				s -= rowi[k] * rowj[k]
			}
			rowi[j] = s / d
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves A·x = b using the factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	x := make([]float64, c.l.rows)
	if err := c.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A·x = b into dst, which must not alias b. It performs no
// allocation, so per-V-cycle coarse solves can run on recycled scratch.
func (c *Cholesky) SolveInto(dst, b []float64) error {
	n := c.l.rows
	if len(b) != n {
		return fmt.Errorf("linalg: Cholesky solve dimension mismatch: matrix %d, rhs %d", n, len(b))
	}
	if len(dst) != n {
		return fmt.Errorf("linalg: Cholesky solve destination length %d, want %d", len(dst), n)
	}
	ld := c.l.data
	// Forward solve L·y = b.
	y := dst
	for i := 0; i < n; i++ {
		rowi := ld[i*n : i*n+i+1 : i*n+i+1]
		s := b[i]
		for k := 0; k < i; k++ {
			s -= rowi[k] * y[k]
		}
		y[i] = s / rowi[i]
	}
	// Back solve Lᵀ·x = y.
	x := y
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= ld[k*n+i] * x[k]
		}
		x[i] = s / ld[i*n+i]
	}
	return nil
}

// Det returns the determinant of the factorized matrix (the squared product
// of the factor's diagonal).
func (c *Cholesky) Det() float64 {
	d := 1.0
	for i := 0; i < c.l.Rows(); i++ {
		v := c.l.At(i, i)
		d *= v * v
	}
	return d
}

// SolveSPD solves the symmetric positive definite system A·x = b with a
// fresh Cholesky factorization. It is roughly twice as fast as the general
// LU path and fails loudly (ErrNotSPD) when the matrix is not SPD —
// which for a thermal conductance matrix indicates an assembly bug.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorizeCholesky(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
