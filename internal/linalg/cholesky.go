package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization meets a non-positive
// pivot: the matrix is not symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// FactorizeCholesky computes the Cholesky factorization of a symmetric
// positive definite matrix. Only the lower triangle of a is read; the input
// is not modified. Thermal conductance matrices are SPD, so this is the
// natural direct solver for the netlist engine.
func FactorizeCholesky(a *Matrix) (*Cholesky, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("linalg: cannot Cholesky-factorize non-square %dx%d matrix", n, a.Cols())
	}
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d is %g", ErrNotSPD, j, d)
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves A·x = b using the factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	n := c.l.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Cholesky solve dimension mismatch: matrix %d, rhs %d", n, len(b))
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	x := y
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// Det returns the determinant of the factorized matrix (the squared product
// of the factor's diagonal).
func (c *Cholesky) Det() float64 {
	d := 1.0
	for i := 0; i < c.l.Rows(); i++ {
		v := c.l.At(i, i)
		d *= v * v
	}
	return d
}

// SolveSPD solves the symmetric positive definite system A·x = b with a
// fresh Cholesky factorization. It is roughly twice as fast as the general
// LU path and fails loudly (ErrNotSPD) when the matrix is not SPD —
// which for a thermal conductance matrix indicates an assembly bug.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorizeCholesky(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
