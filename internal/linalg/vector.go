package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scale to avoid overflow for extreme inputs.
	var max float64
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	if max == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		r := x / max
		s += r * r
	}
	return max * math.Sqrt(s)
}

// NormInf returns the max-norm of v.
func NormInf(v []float64) float64 {
	var max float64
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	return max
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// MaxIndex returns the index and value of the largest element of v.
// It panics on an empty slice.
func MaxIndex(v []float64) (int, float64) {
	if len(v) == 0 {
		panic("linalg: MaxIndex of empty vector")
	}
	idx, max := 0, v[0]
	for i, x := range v {
		if x > max {
			idx, max = i, x
		}
	}
	return idx, max
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}
