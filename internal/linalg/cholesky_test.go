package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func spdTestMatrix() *Matrix {
	return NewMatrixFromRows([][]float64{
		{4, 1, 0},
		{1, 3, -1},
		{0, -1, 2},
	})
}

func TestCholeskySolve(t *testing.T) {
	a := spdTestMatrix()
	b := []float64{1, 2, 3}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, x, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

func TestCholeskyMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(15)
		// Build SPD as Mᵀ·M + I.
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		a := m.Transpose().Mul(m)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xc, err := SolveSPD(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		xl, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xc {
			if math.Abs(xc[i]-xl[i]) > 1e-8*(1+math.Abs(xl[i])) {
				t.Fatalf("trial %d: Cholesky %g vs LU %g at %d", trial, xc[i], xl[i], i)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFromRows([][]float64{
		{1, 0},
		{0, -1},
	})
	if _, err := SolveSPD(a, []float64{1, 1}); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

func TestCholeskyRejectsSingular(t *testing.T) {
	a := NewMatrixFromRows([][]float64{
		{1, 1},
		{1, 1},
	})
	if _, err := FactorizeCholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := FactorizeCholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestCholeskySolveDimensionMismatch(t *testing.T) {
	f, err := FactorizeCholesky(spdTestMatrix())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("bad rhs accepted")
	}
}

func TestCholeskyDet(t *testing.T) {
	a := spdTestMatrix()
	fc, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fc.Det()-fl.Det()) > 1e-10*math.Abs(fl.Det()) {
		t.Fatalf("Cholesky det %g vs LU det %g", fc.Det(), fl.Det())
	}
}

func TestCholeskyReuse(t *testing.T) {
	a := spdTestMatrix()
	f, err := FactorizeCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]float64{{1, 0, 0}, {0, 1, 0}, {3, -2, 5}} {
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := Residual(a, x, b); r > 1e-12 {
			t.Fatalf("residual %g for rhs %v", r, b)
		}
	}
}

// Property: diagonally dominant symmetric matrices with positive diagonal
// are SPD and solvable via Cholesky with tiny residuals.
func TestCholeskyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64() - 0.5
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				if j != i {
					rowSum += math.Abs(a.At(i, j))
				}
			}
			a.Set(i, i, rowSum+0.5)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		return Residual(a, x, b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
