package linalg

import (
	"math"
	"testing"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, -5, 6}); got != 12 {
		t.Fatalf("Dot = %g, want 12", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %g", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %g, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %g", got)
	}
	// Overflow resistance: naive sum of squares would overflow here.
	big := []float64{1e200, 1e200}
	if got := Norm2(big); math.IsInf(got, 0) || math.Abs(got-1e200*math.Sqrt2) > 1e188 {
		t.Fatalf("Norm2(big) = %g", got)
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{1, -9, 3}); got != 9 {
		t.Fatalf("NormInf = %g", got)
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, -1}, y)
	if y[0] != 7 || y[1] != -1 {
		t.Fatalf("AXPY = %v", y)
	}
}

func TestScale(t *testing.T) {
	v := []float64{1, -2}
	Scale(-3, v)
	if v[0] != -3 || v[1] != 6 {
		t.Fatalf("Scale = %v", v)
	}
}

func TestMaxIndex(t *testing.T) {
	i, v := MaxIndex([]float64{1, 9, 3, 9})
	if i != 1 || v != 9 {
		t.Fatalf("MaxIndex = (%d, %g)", i, v)
	}
	i, v = MaxIndex([]float64{-5})
	if i != 0 || v != -5 {
		t.Fatalf("MaxIndex single = (%d, %g)", i, v)
	}
}

func TestMaxIndexEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MaxIndex(nil)
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1, 2, 3.5}); got != 6.5 {
		t.Fatalf("Sum = %g", got)
	}
}

func TestSolveTridiag(t *testing.T) {
	// System:
	// [ 2 -1  0] [x0]   [1]
	// [-1  2 -1] [x1] = [0]
	// [ 0 -1  2] [x2]   [1]
	lower := []float64{0, -1, -1}
	diag := []float64{2, 2, 2}
	upper := []float64{-1, -1, 0}
	rhs := []float64{1, 0, 1}
	x, err := SolveTridiag(lower, diag, upper, rhs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveTridiagMatchesDense(t *testing.T) {
	n := 25
	lower := make([]float64, n)
	diag := make([]float64, n)
	upper := make([]float64, n)
	rhs := make([]float64, n)
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		diag[i] = 4 + float64(i%3)
		a.Set(i, i, diag[i])
		if i > 0 {
			lower[i] = -1 - 0.1*float64(i%2)
			a.Set(i, i-1, lower[i])
		}
		if i < n-1 {
			upper[i] = -1.5
			a.Set(i, i+1, upper[i])
		}
		rhs[i] = float64(i) - 3
	}
	x, err := SolveTridiag(lower, diag, upper, rhs)
	if err != nil {
		t.Fatal(err)
	}
	xd, err := Solve(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xd[i]) > 1e-10 {
			t.Fatalf("mismatch at %d: %g vs %g", i, x[i], xd[i])
		}
	}
}

func TestSolveTridiagErrors(t *testing.T) {
	if _, err := SolveTridiag(nil, nil, nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := SolveTridiag([]float64{0}, []float64{1, 2}, []float64{0}, []float64{1}); err == nil {
		t.Error("inconsistent lengths accepted")
	}
	if _, err := SolveTridiag([]float64{0}, []float64{0}, []float64{0}, []float64{1}); err == nil {
		t.Error("zero pivot accepted")
	}
}
