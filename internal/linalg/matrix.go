// Package linalg implements the dense linear algebra needed by the TTSV
// thermal models: vectors, row-major matrices, LU factorization with partial
// pivoting, and a tridiagonal (Thomas) solver.
//
// The systems solved here are small (Model A: a handful of nodes) to medium
// (Model B with hundreds of segments); a straightforward, well-tested dense
// implementation is preferable to pulling in a numerical library, and the
// sparse package covers the genuinely large systems.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix. It panics on non-positive
// dimensions, which always indicate a programming error.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixWithData wraps an existing slice as a rows×cols matrix without
// copying; the caller keeps ownership of the backing array. len(data) must be
// exactly rows*cols. The contents are taken as-is (not zeroed), so callers
// reusing pooled buffers must clear or fully overwrite them. It exists so
// repeated dense factorizations (the multigrid coarse solver) can recycle
// their backing storage.
func NewMatrixWithData(rows, cols int, data []float64) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix dimensions %dx%d", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: NewMatrixWithData got %d elements for a %dx%d matrix", len(data), rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: data}
}

// NewMatrixFromRows builds a matrix from row slices; all rows must have the
// same length.
func NewMatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: NewMatrixFromRows needs at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d entries, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at (i, j). Assembly code uses this heavily.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// MulVec returns m · x. It panics if len(x) != Cols().
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: matrix %dx%d, vector %d", m.rows, m.cols, len(x)))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns the matrix product m · b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch: %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, v := range brow {
				orow[j] += a * v
			}
		}
	}
	return out
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// IsSymmetric reports whether the matrix is square and symmetric within the
// given absolute tolerance.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders a small matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		s += "["
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%10.4g", m.At(i, j))
		}
		s += "]\n"
	}
	return s
}
