package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds the LU factorization of a square matrix with partial pivoting:
// P·A = L·U where L is unit-lower-triangular and U is upper-triangular,
// stored compactly in a single matrix.
type LU struct {
	lu    *Matrix
	pivot []int
	// signDet is +1 or -1 depending on the number of row swaps.
	signDet float64
}

// Factorize computes the LU factorization of a. The input matrix is not
// modified. It returns ErrSingular (wrapped with the pivot column) if a
// pivot is exactly zero or smaller than a conservative threshold relative to
// the matrix scale.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: cannot factorize non-square %dx%d matrix", a.Rows(), a.Cols())
	}
	n := a.Rows()
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	scale := lu.MaxAbs()
	if scale == 0 {
		return nil, fmt.Errorf("%w: zero matrix", ErrSingular)
	}
	tiny := scale * 1e-300 // only exact/underflow-level singularity is fatal
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max = v
				p = i
			}
		}
		pivot[k] = p
		if max <= tiny {
			return nil, fmt.Errorf("%w: pivot %d (|pivot|=%g)", ErrSingular, k, max)
		}
		if p != k {
			swapRows(lu, p, k)
			sign = -sign
		}
		pk := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pk
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -m*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, signDet: sign}, nil
}

func swapRows(m *Matrix, a, b int) {
	for j := 0; j < m.Cols(); j++ {
		va, vb := m.At(a, j), m.At(b, j)
		m.Set(a, j, vb)
		m.Set(b, j, va)
	}
}

// Solve solves A·x = b using the factorization. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: LU solve dimension mismatch: matrix %d, rhs %d", n, len(b))
	}
	x := make([]float64, n)
	copy(x, b)
	// Apply the full permutation first: row swaps performed at later
	// elimination steps also moved the already-stored multipliers of earlier
	// columns, so the compact L is expressed in the final row order.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward-substitute the unit-lower-triangular L.
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			x[i] -= f.lu.At(i, k) * x[k]
		}
	}
	// Back-substitute U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x, nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := f.signDet
	for i := 0; i < f.lu.Rows(); i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A·x = b with a fresh LU factorization. Use Factorize + LU.Solve
// to reuse the factorization across multiple right-hand sides.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A^-1 or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows()
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Residual returns the max-norm of A·x - b, used by solvers to verify their
// own output.
func Residual(a *Matrix, x, b []float64) float64 {
	ax := a.MulVec(x)
	var max float64
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
