package linalg

import (
	"math"
	"strings"
	"testing"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("new matrix not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMatrix(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewMatrix(dims[0], dims[1])
		}()
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 3)
	m.Add(0, 1, 2)
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %g, want 5", got)
	}
}

func TestIndexPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, idx := range [][2]int{{2, 0}, {0, 2}, {-1, 0}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 0) != 1 || m.At(0, 1) != 2 || m.At(1, 0) != 3 || m.At(1, 1) != 4 {
		t.Fatalf("matrix contents wrong: %v", m)
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	NewMatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	x := []float64{1, -2, 7}
	y := id.MulVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("I·x != x: %v", y)
		}
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMul(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul(%d,%d) = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d", at.Rows(), at.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatal("transpose mismatch")
			}
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := NewMatrixFromRows([][]float64{{2, -1}, {-1, 2}})
	if !sym.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	asym := NewMatrixFromRows([][]float64{{2, -1}, {1, 2}})
	if asym.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	rect := NewMatrix(2, 3)
	if rect.IsSymmetric(1) {
		t.Error("rectangular matrix reported symmetric")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestMaxAbs(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, -7}, {3, 4}})
	if got := a.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %g, want 7", got)
	}
}

func TestStringContainsEntries(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1.5, 2}})
	s := a.String()
	if !strings.Contains(s, "1.5") {
		t.Errorf("String() = %q", s)
	}
}

func TestMulVecDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	NewMatrix(2, 3).MulVec([]float64{1, 2})
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestMulAssociatesWithMulVec(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, -1}})
	b := NewMatrixFromRows([][]float64{{0, 1}, {2, 0.5}})
	x := []float64{3, -4}
	left := a.Mul(b).MulVec(x)
	right := a.MulVec(b.MulVec(x))
	for i := range left {
		if math.Abs(left[i]-right[i]) > 1e-12 {
			t.Fatalf("(AB)x != A(Bx): %v vs %v", left, right)
		}
	}
}
