package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a := NewMatrixFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a row swap.
	a := NewMatrixFromRows([][]float64{
		{0, 1},
		{1, 0},
	})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrixFromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	_, err := Solve(a, []float64{1, 2})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveZeroMatrix(t *testing.T) {
	_, err := Solve(NewMatrix(2, 2), []float64{1, 1})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestFactorizeNonSquare(t *testing.T) {
	if _, err := Factorize(NewMatrix(2, 3)); err == nil {
		t.Fatal("factorizing a non-square matrix succeeded")
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	f, err := Factorize(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("rhs dimension mismatch accepted")
	}
}

func TestSolveRandomSystemsResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			// Diagonal boost keeps the random systems well-conditioned.
			a.Add(i, i, float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r := Residual(a, x, b); r > 1e-9 {
			t.Fatalf("trial %d: residual %g too large", trial, r)
		}
	}
}

func TestLUReuseAcrossRHS(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{4, 1}, {1, 3}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][]float64{{1, 2}, {0, 0}, {-3, 5}} {
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := Residual(a, x, b); r > 1e-12 {
			t.Fatalf("residual %g for rhs %v", r, b)
		}
	}
}

func TestDet(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-(-2)) > 1e-12 {
		t.Fatalf("det = %g, want -2", d)
	}
	// Determinant of identity is 1, with or without pivoting.
	fi, _ := Factorize(Identity(4))
	if d := fi.Det(); math.Abs(d-1) > 1e-12 {
		t.Fatalf("det(I) = %g", d)
	}
	// Row-swapped identity has determinant -1.
	p := NewMatrixFromRows([][]float64{{0, 1}, {1, 0}})
	fp, _ := Factorize(p)
	if d := fp.Det(); math.Abs(d+1) > 1e-12 {
		t.Fatalf("det(P) = %g, want -1", d)
	}
}

func TestInverse(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-12 {
				t.Fatalf("A·A^-1 = %v", prod)
			}
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := Inverse(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

// Property: for any diagonally dominant matrix built from random data,
// Solve produces a vector whose residual is tiny (quick-check form).
func TestSolvePropertyResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				v := rng.Float64()*2 - 1
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Set(i, i, rowSum+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return Residual(a, x, b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: solving is linear — Solve(A, b1+b2) == Solve(A,b1) + Solve(A,b2).
func TestSolveLinearity(t *testing.T) {
	a := NewMatrixFromRows([][]float64{
		{5, 1, 0},
		{1, 4, 1},
		{0, 1, 3},
	})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	b1 := []float64{1, 2, 3}
	b2 := []float64{-2, 0.5, 4}
	sum := make([]float64, 3)
	for i := range sum {
		sum[i] = b1[i] + b2[i]
	}
	x1, _ := f.Solve(b1)
	x2, _ := f.Solve(b2)
	xs, _ := f.Solve(sum)
	for i := range xs {
		if math.Abs(xs[i]-(x1[i]+x2[i])) > 1e-12 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}
