package linalg

import (
	"fmt"
	"math"
)

// Banded is a square banded matrix with equal lower and upper bandwidth b:
// entries A[i][j] with |i-j| > b are structurally zero. Storage is
// diagonal-major: row i keeps its 2b+1 band entries contiguously, so
// factorization and solve run in O(n·b²) and O(n·b).
//
// The thermal chain networks of the distributed TTSV model (Model B) have
// bandwidth 2 under their natural node ordering, which makes this the
// asymptotically right direct solver for them.
type Banded struct {
	n, b int
	// data[i*(2b+1) + (j-i+b)] holds A[i][j].
	data []float64
}

// NewBanded returns a zeroed n×n banded matrix with bandwidth b ≥ 0.
func NewBanded(n, b int) *Banded {
	if n <= 0 || b < 0 {
		panic(fmt.Sprintf("linalg: invalid banded dimensions n=%d b=%d", n, b))
	}
	if b >= n {
		b = n - 1
	}
	return &Banded{n: n, b: b, data: make([]float64, n*(2*b+1))}
}

// N returns the matrix dimension.
func (m *Banded) N() int { return m.n }

// Bandwidth returns the (half) bandwidth.
func (m *Banded) Bandwidth() int { return m.b }

func (m *Banded) idx(i, j int) (int, bool) {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("linalg: banded index (%d,%d) out of range for n=%d", i, j, m.n))
	}
	d := j - i
	if d < -m.b || d > m.b {
		return 0, false
	}
	return i*(2*m.b+1) + d + m.b, true
}

// At returns A[i][j] (zero outside the band).
func (m *Banded) At(i, j int) float64 {
	k, ok := m.idx(i, j)
	if !ok {
		return 0
	}
	return m.data[k]
}

// Add accumulates v at (i, j); it panics when (i, j) lies outside the band,
// which in assembly code indicates a wrong bandwidth estimate.
func (m *Banded) Add(i, j int, v float64) {
	k, ok := m.idx(i, j)
	if !ok {
		panic(fmt.Sprintf("linalg: banded entry (%d,%d) outside bandwidth %d", i, j, m.b))
	}
	m.data[k] += v
}

// MulVec returns A·x.
func (m *Banded) MulVec(x []float64) []float64 {
	if len(x) != m.n {
		panic(fmt.Sprintf("linalg: banded MulVec dimension mismatch %d vs %d", len(x), m.n))
	}
	y := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		lo := max(0, i-m.b)
		hi := min(m.n-1, i+m.b)
		var s float64
		row := m.data[i*(2*m.b+1):]
		for j := lo; j <= hi; j++ {
			s += row[j-i+m.b] * x[j]
		}
		y[i] = s
	}
	return y
}

// SolveBanded solves A·x = b with a one-shot LU factorization (see
// Factorize to reuse the factorization across right-hand sides). It returns
// ErrSingular on a (near-)zero pivot. The receiver is not modified.
func (m *Banded) SolveBanded(rhs []float64) ([]float64, error) {
	f, err := m.Factorize()
	if err != nil {
		return nil, err
	}
	return f.Solve(rhs)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BandedLU is a reusable LU factorization of a banded matrix, for solves
// against many right-hand sides (e.g. every step of a transient
// integration).
type BandedLU struct {
	n, b int
	lu   []float64
}

// Factorize computes the banded LU factorization (no pivoting; stable for
// the diagonally dominant/SPD systems assembled in this repository).
func (m *Banded) Factorize() (*BandedLU, error) {
	n, b := m.n, m.b
	w := 2*b + 1
	lu := make([]float64, len(m.data))
	copy(lu, m.data)
	var scale float64
	for _, v := range lu {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return nil, fmt.Errorf("%w: zero banded matrix", ErrSingular)
	}
	tiny := scale * 1e-300
	for k := 0; k < n; k++ {
		pk := lu[k*w+b]
		if math.Abs(pk) <= tiny {
			return nil, fmt.Errorf("%w: banded pivot %d (|pivot|=%g)", ErrSingular, k, math.Abs(pk))
		}
		for i := k + 1; i <= min(n-1, k+b); i++ {
			kIdx := i*w + (k - i + b)
			mult := lu[kIdx] / pk
			lu[kIdx] = mult
			if mult == 0 {
				continue
			}
			for j := k + 1; j <= min(n-1, k+b); j++ {
				lu[i*w+(j-i+b)] -= mult * lu[k*w+(j-k+b)]
			}
		}
	}
	return &BandedLU{n: n, b: b, lu: lu}, nil
}

// Solve solves A·x = rhs using the factorization; rhs is not modified.
func (f *BandedLU) Solve(rhs []float64) ([]float64, error) {
	if len(rhs) != f.n {
		return nil, fmt.Errorf("linalg: banded LU solve dimension mismatch %d vs %d", len(rhs), f.n)
	}
	n, b, w := f.n, f.b, 2*f.b+1
	x := make([]float64, n)
	copy(x, rhs)
	for k := 0; k < n; k++ {
		for i := k + 1; i <= min(n-1, k+b); i++ {
			x[i] -= f.lu[i*w+(k-i+b)] * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j <= min(n-1, i+b); j++ {
			s -= f.lu[i*w+(j-i+b)] * x[j]
		}
		x[i] = s / f.lu[i*w+b]
	}
	return x, nil
}
