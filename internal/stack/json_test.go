package stack

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestLoadBlockConfigOverlaysDefaults(t *testing.T) {
	in := strings.NewReader(`{"R": 8e-6, "NumPlanes": 4, "TL": 1e-6}`)
	cfg, err := LoadBlockConfig(in)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.R != 8e-6 || cfg.NumPlanes != 4 || cfg.TL != 1e-6 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	// Untouched fields keep the paper defaults.
	d := DefaultBlock()
	if cfg.TSi1 != d.TSi1 || cfg.FootprintSide != d.FootprintSide || cfg.Fill.Name != "Cu" {
		t.Fatalf("defaults lost: %+v", cfg)
	}
	if _, err := cfg.Build(); err != nil {
		t.Fatalf("loaded config does not build: %v", err)
	}
}

func TestLoadBlockConfigMaterialByName(t *testing.T) {
	cfg, err := LoadBlockConfig(strings.NewReader(`{"Fill": "W", "Bond": "BCB"}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fill.Name != "W" || cfg.Fill.K != 173 {
		t.Errorf("fill = %+v", cfg.Fill)
	}
	if cfg.Bond.Name != "BCB" {
		t.Errorf("bond = %+v", cfg.Bond)
	}
}

func TestLoadBlockConfigMaterialObject(t *testing.T) {
	cfg, err := LoadBlockConfig(strings.NewReader(
		`{"Liner": {"Name": "SiN", "K": 20, "C": 1.8e6}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Liner.Name != "SiN" || cfg.Liner.K != 20 {
		t.Errorf("liner = %+v", cfg.Liner)
	}
}

func TestLoadBlockConfigRejections(t *testing.T) {
	if _, err := LoadBlockConfig(strings.NewReader(`{"Radius": 1e-6}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LoadBlockConfig(strings.NewReader(`{"Fill": "unobtainium"}`)); err == nil {
		t.Error("unknown material name accepted")
	}
	if _, err := LoadBlockConfig(strings.NewReader(`{"Fill": {"Name": "x", "K": -4}}`)); err == nil {
		t.Error("invalid material object accepted")
	}
	if _, err := LoadBlockConfig(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBlockConfigJSONRoundTrip(t *testing.T) {
	orig := DefaultBlock()
	orig.R = units.UM(7)
	orig.ViaCount = 4
	var buf bytes.Buffer
	if err := SaveBlockConfig(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBlockConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.R != orig.R || back.ViaCount != orig.ViaCount || back.Fill.K != orig.Fill.K {
		t.Fatalf("round trip lost data: %+v vs %+v", back, orig)
	}
	s1, err := orig.Build()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := back.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s1.TotalPower() != s2.TotalPower() || s1.Via.Radius != s2.Via.Radius {
		t.Error("round-tripped stack differs")
	}
}
