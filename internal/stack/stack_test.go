package stack

import (
	"math"
	"strings"
	"testing"

	"repro/internal/materials"
	"repro/internal/units"
)

func validStack(t *testing.T) *Stack {
	t.Helper()
	s, err := DefaultBlock().Build()
	if err != nil {
		t.Fatalf("default block invalid: %v", err)
	}
	return s
}

func TestDefaultBlockPaperValues(t *testing.T) {
	s := validStack(t)
	if got := s.Footprint; !units.ApproxEqual(got, 1e-8, 1e-12) {
		t.Errorf("A0 = %g m², want 1e-8 (100µm × 100µm)", got)
	}
	if s.NumPlanes() != 3 {
		t.Errorf("planes = %d, want 3", s.NumPlanes())
	}
	if got := s.Planes[0].SiThickness; !units.ApproxEqual(got, 5e-4, 1e-12) {
		t.Errorf("t_Si1 = %g, want 500 µm", got)
	}
	if s.Planes[0].BondThickness != 0 {
		t.Error("plane 1 has a bond layer")
	}
	if s.Planes[1].BondThickness != units.UM(1) {
		t.Errorf("t_b = %g", s.Planes[1].BondThickness)
	}
	// Device power: 700 W/mm³ × (100µm)² × 1µm = 7 mW.
	if got := s.Planes[0].DevicePower; !units.ApproxEqual(got, 7e-3, 1e-9) {
		t.Errorf("device power = %g W, want 7e-3", got)
	}
	// ILD power: 70 W/mm³ × (100µm)² × 4µm = 2.8 mW.
	if got := s.Planes[0].ILDPower; !units.ApproxEqual(got, 2.8e-3, 1e-9) {
		t.Errorf("ILD power = %g W, want 2.8e-3", got)
	}
	if got := s.TotalPower(); !units.ApproxEqual(got, 3*9.8e-3, 1e-9) {
		t.Errorf("total power = %g W, want 29.4e-3", got)
	}
	if s.SinkTemp != 27 {
		t.Errorf("sink temp = %g", s.SinkTemp)
	}
	if s.Via.Fill.Name != "Cu" || s.Via.Liner.Name != "SiO2" {
		t.Errorf("via materials %s/%s", s.Via.Fill.Name, s.Via.Liner.Name)
	}
}

func TestSurroundArea(t *testing.T) {
	s := validStack(t)
	want := 1e-8 - math.Pi*math.Pow(units.UM(10.5), 2)
	if got := s.SurroundArea(); !units.ApproxEqual(got, want, 1e-9) {
		t.Errorf("A = %g, want %g", got, want)
	}
}

func TestColumnHeight(t *testing.T) {
	s := validStack(t)
	// Plane 1: t_D + l_ext.
	if got, want := s.ColumnHeight(0), units.UM(4+1); !units.ApproxEqual(got, want, 1e-12) {
		t.Errorf("H1 = %g, want %g", got, want)
	}
	// Middle plane: t_D + t_Si + t_b.
	if got, want := s.ColumnHeight(1), units.UM(4+45+1); !units.ApproxEqual(got, want, 1e-12) {
		t.Errorf("H2 = %g, want %g", got, want)
	}
	// Top plane: t_Si + t_b (paper eq. (14) excludes the top ILD).
	if got, want := s.ColumnHeight(2), units.UM(45+1); !units.ApproxEqual(got, want, 1e-12) {
		t.Errorf("H3 = %g, want %g", got, want)
	}
}

func TestClusterGeometry(t *testing.T) {
	s := validStack(t)
	s4 := s.WithViaCount(4)
	if s4.Via.SplitRadius() != s.Via.Radius/2 {
		t.Errorf("split radius = %g", s4.Via.SplitRadius())
	}
	if !units.ApproxEqual(s4.Via.MetalArea(), s.Via.MetalArea(), 1e-12) {
		t.Error("cluster transform changed total metal area")
	}
	if s.Via.Count != 1 {
		t.Error("WithViaCount mutated the original")
	}
	if (TTSV{Radius: 1}).EffectiveCount() != 1 {
		t.Error("zero count not mapped to 1")
	}
}

func TestValidateCatchesBadGeometry(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Stack)
		want string
	}{
		{"zero footprint", func(s *Stack) { s.Footprint = 0 }, "footprint"},
		{"one plane", func(s *Stack) { s.Planes = s.Planes[:1] }, "planes"},
		{"zero si", func(s *Stack) { s.Planes[1].SiThickness = 0 }, "silicon"},
		{"zero ild", func(s *Stack) { s.Planes[0].ILDThickness = 0 }, "ILD"},
		{"bond on plane 1", func(s *Stack) { s.Planes[0].BondThickness = 1e-6 }, "plane 1"},
		{"no bond on plane 2", func(s *Stack) { s.Planes[1].BondThickness = 0 }, "bond"},
		{"negative power", func(s *Stack) { s.Planes[2].DevicePower = -1 }, "power"},
		{"bad device layer", func(s *Stack) { s.Planes[1].DeviceLayerThickness = 1 }, "device layer"},
		{"zero radius", func(s *Stack) { s.Via.Radius = 0 }, "radius"},
		{"zero liner", func(s *Stack) { s.Via.LinerThickness = 0 }, "liner"},
		{"extension too long", func(s *Stack) { s.Via.Extension = 1 }, "extension"},
		{"negative count", func(s *Stack) { s.Via.Count = -1 }, "count"},
		{"via too big", func(s *Stack) { s.Via.Radius = units.UM(60) }, "fit"},
		{"bad material", func(s *Stack) { s.Planes[0].Si = materials.Material{} }, "name"},
		{"bad fill", func(s *Stack) { s.Via.Fill = materials.Material{Name: "x", K: -1} }, "conductivity"},
	}
	for _, m := range mutations {
		s := validStack(t)
		m.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the broken stack", m.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(m.want)) {
			t.Errorf("%s: error %q does not mention %q", m.name, err, m.want)
		}
	}
}

func TestValidateClusterFit(t *testing.T) {
	// 16 vias of 2.5µm+3µm liner occupy 16·π·(5.5µm)² ≈ 1.52e-9 < 1e-8: ok.
	c := DefaultBlock()
	c.R = units.UM(10)
	c.TL = units.UM(3)
	c.ViaCount = 16
	if _, err := c.Build(); err != nil {
		t.Errorf("valid cluster rejected: %v", err)
	}
	// A liner so thick the split vias no longer fit.
	s := validStack(t)
	s.Via.Count = 400
	s.Via.LinerThickness = units.UM(8)
	if err := s.Validate(); err == nil {
		t.Error("oversized cluster accepted")
	}
}

func TestAspectRatio(t *testing.T) {
	s, err := Fig4Block(units.UM(5))
	if err != nil {
		t.Fatal(err)
	}
	// Via length: lext + ILD1 + (ILD+Si+b)*? — structural depth through all
	// planes: 1 + 4 + (4+5+1) + (4+5+1) = 25 µm; diameter 10 µm => 2.5.
	if got := s.AspectRatio(); !units.ApproxEqual(got, 2.5, 1e-9) {
		t.Errorf("aspect ratio = %g, want 2.5", got)
	}
	if err := s.ValidateFabrication(); err != nil {
		t.Errorf("aspect ratio 2.5 flagged: %v", err)
	}
	// r = 1µm in the Fig. 4 sweep has ratio 25/2 = 12.5 > 10 (the paper
	// itself sweeps past the limit at the low end).
	s1, err := Fig4Block(units.UM(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.ValidateFabrication(); err == nil {
		t.Error("aspect ratio 12.5 not flagged")
	}
}

func TestFigureBlocks(t *testing.T) {
	if s, err := Fig4Block(units.UM(3)); err != nil {
		t.Errorf("Fig4Block(3µm): %v", err)
	} else if s.Planes[1].SiThickness != units.UM(5) {
		t.Errorf("Fig4Block(3µm) t_Si = %g, want 5µm", s.Planes[1].SiThickness)
	}
	if s, err := Fig4Block(units.UM(12)); err != nil {
		t.Errorf("Fig4Block(12µm): %v", err)
	} else if s.Planes[1].SiThickness != units.UM(45) {
		t.Errorf("Fig4Block(12µm) t_Si = %g, want 45µm", s.Planes[1].SiThickness)
	}
	if s, err := Fig5Block(units.UM(2)); err != nil {
		t.Errorf("Fig5Block: %v", err)
	} else {
		if s.Via.LinerThickness != units.UM(2) || s.Via.Radius != units.UM(5) || s.Planes[0].ILDThickness != units.UM(7) {
			t.Error("Fig5Block parameters wrong")
		}
	}
	if s, err := Fig6Block(units.UM(30)); err != nil {
		t.Errorf("Fig6Block: %v", err)
	} else if s.Planes[2].SiThickness != units.UM(30) || s.Via.Radius != units.UM(8) {
		t.Error("Fig6Block parameters wrong")
	}
	if s, err := Fig7Block(9); err != nil {
		t.Errorf("Fig7Block: %v", err)
	} else {
		if s.Via.EffectiveCount() != 9 {
			t.Error("Fig7Block count wrong")
		}
		if !units.ApproxEqual(s.Via.SplitRadius(), units.UM(10)/3, 1e-9) {
			t.Errorf("Fig7Block split radius = %g", s.Via.SplitRadius())
		}
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	c := DefaultBlock()
	c.NumPlanes = 1
	if _, err := c.Build(); err == nil {
		t.Error("1-plane config accepted")
	}
	c = DefaultBlock()
	c.R = 0
	if _, err := c.Build(); err == nil {
		t.Error("zero radius accepted")
	}
}

func TestEqualAreaRadius(t *testing.T) {
	s := validStack(t)
	r0 := s.EqualAreaRadius()
	if !units.ApproxEqual(math.Pi*r0*r0, s.Footprint, 1e-12) {
		t.Errorf("equal-area radius %g does not reproduce footprint", r0)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := validStack(t)
	c := s.Clone()
	c.Planes[0].DevicePower = 99
	c.Via.Radius = 1
	if s.Planes[0].DevicePower == 99 || s.Via.Radius == 1 {
		t.Error("Clone shares state")
	}
}

func TestPlaneHelpers(t *testing.T) {
	p := Plane{SiThickness: 2e-6, ILDThickness: 1e-6, BondThickness: 0.5e-6, DevicePower: 1, ILDPower: 0.25}
	if got := p.TotalPower(); got != 1.25 {
		t.Errorf("TotalPower = %g", got)
	}
	if got := p.Height(); !units.ApproxEqual(got, 3.5e-6, 1e-12) {
		t.Errorf("Height = %g", got)
	}
}
