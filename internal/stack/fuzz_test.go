package stack

import (
	"strings"
	"testing"
)

// FuzzLoadBlockConfig asserts the JSON loader's contract on arbitrary input:
// malformed configurations must come back as errors, never as panics or
// runaway allocations, and anything that decodes must survive Build. The
// seeds run on every plain `go test`; `go test -fuzz=FuzzLoadBlockConfig`
// explores further.
func FuzzLoadBlockConfig(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`"Cu"`,
		`{"R": 8e-6, "TL": 1e-6, "NumPlanes": 4, "Fill": "W"}`,
		`{"R": 8e-6,`,
		`{"Bogus": 1}`,
		`{"NumPlanes": -3}`,
		`{"NumPlanes": 2000000000}`,
		`{"NumPlanes": 1e30}`,
		`{"R": "not a number"}`,
		`{"Fill": "unobtainium"}`,
		`{"Fill": {"Name": "x", "K": -1}}`,
		`{"R": null, "TL": null}`,
		`{"R": -5e-6}`,
		`{"TSi": 0, "TSi1": 0, "TD": 0}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		cfg, err := LoadBlockConfig(strings.NewReader(data))
		if err != nil {
			return // rejected input: exactly what malformed JSON should get
		}
		// A config that loads must either build a valid stack or fail
		// cleanly; both Build and Validate may reject it, neither may panic.
		s, err := cfg.Build()
		if err != nil {
			return
		}
		if s == nil {
			t.Fatalf("Build returned neither stack nor error for %q", data)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Build accepted %q but produced an invalid stack: %v", data, err)
		}
	})
}
