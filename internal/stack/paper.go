package stack

import (
	"fmt"
	"math"

	"repro/internal/materials"
	"repro/internal/units"
)

// BlockConfig collects the knobs of the paper's standard experiment block
// (§IV): a square three-plane (by default) segment of a 3-D IC with one TTSV
// in the middle. All lengths in meters, power densities in W/m³.
type BlockConfig struct {
	// FootprintSide is the edge length of the square block (A0 = side²).
	FootprintSide float64
	// NumPlanes is the number of device planes (≥ 2).
	NumPlanes int
	// TSi1 is the first plane's (thick) substrate thickness.
	TSi1 float64
	// TSi is the substrate thickness of planes 2..N.
	TSi float64
	// TD is the ILD/BEOL thickness of every plane.
	TD float64
	// TB is the bonding layer thickness below planes 2..N.
	TB float64
	// TL is the via liner thickness.
	TL float64
	// R is the via radius (of the equivalent single via).
	R float64
	// Lext is the via extension into the first plane's substrate.
	Lext float64
	// ViaCount splits the via into a cluster of equal total metal area.
	ViaCount int
	// DevicePowerDensity is the volumetric device power density (W/m³)
	// applied over DeviceLayerThickness at the top of each substrate.
	DevicePowerDensity float64
	// ILDPowerDensity is the volumetric interconnect Joule heating (W/m³)
	// applied over each ILD layer.
	ILDPowerDensity float64
	// DeviceLayerThickness is the device layer extent.
	DeviceLayerThickness float64
	// SinkTemp is the heat-sink temperature (°C).
	SinkTemp float64
	// Materials; zero values default to the paper's Si/SiO2/polyimide/Cu.
	Si, ILD, Bond, Fill, Liner materials.Material
}

// DefaultBlock returns the paper's §IV baseline configuration: 100 µm ×
// 100 µm footprint, three planes, t_Si1 = 500 µm, l_ext = 1 µm, device
// power density 700 W/mm³ over a 1 µm device layer, interconnect heating
// 70 W/mm³, SiO2 ILD and liner, polyimide bond, copper fill, 27 °C sink.
// Figure-specific thicknesses (t_L, t_D, t_b, t_Si, r) default to the
// Fig. 4 values and are overridden per experiment.
func DefaultBlock() BlockConfig {
	return BlockConfig{
		FootprintSide:        units.UM(100),
		NumPlanes:            3,
		TSi1:                 units.UM(500),
		TSi:                  units.UM(45),
		TD:                   units.UM(4),
		TB:                   units.UM(1),
		TL:                   units.UM(0.5),
		R:                    units.UM(10),
		Lext:                 units.UM(1),
		ViaCount:             1,
		DevicePowerDensity:   units.WPerMM3(700),
		ILDPowerDensity:      units.WPerMM3(70),
		DeviceLayerThickness: units.UM(1),
		SinkTemp:             27,
		Si:                   materials.Silicon,
		ILD:                  materials.SiO2,
		Bond:                 materials.Polyimide,
		Fill:                 materials.Copper,
		Liner:                materials.SiO2,
	}
}

// maxPlanes bounds BlockConfig.NumPlanes far above any physical 3-D stack
// (the paper's go to 8) so that a corrupt or hostile configuration — e.g. a
// JSON file with NumPlanes in the billions — errors out instead of
// attempting the allocation.
const maxPlanes = 1024

// Build constructs and validates the stack described by the configuration.
func (c BlockConfig) Build() (*Stack, error) {
	if c.NumPlanes < 2 {
		return nil, fmt.Errorf("stack: block needs at least 2 planes, got %d", c.NumPlanes)
	}
	if c.NumPlanes > maxPlanes {
		return nil, fmt.Errorf("stack: block with %d planes exceeds the %d-plane limit", c.NumPlanes, maxPlanes)
	}
	a0 := c.FootprintSide * c.FootprintSide
	devQ := c.DevicePowerDensity * a0 * c.DeviceLayerThickness
	ildQ := c.ILDPowerDensity * a0 * c.TD
	planes := make([]Plane, c.NumPlanes)
	for i := range planes {
		tsi := c.TSi
		tb := c.TB
		if i == 0 {
			tsi = c.TSi1
			tb = 0
		}
		planes[i] = Plane{
			SiThickness:          tsi,
			ILDThickness:         c.TD,
			BondThickness:        tb,
			Si:                   c.Si,
			ILD:                  c.ILD,
			Bond:                 c.Bond,
			DevicePower:          devQ,
			ILDPower:             ildQ,
			DeviceLayerThickness: c.DeviceLayerThickness,
		}
	}
	s := &Stack{
		Footprint: a0,
		Planes:    planes,
		Via: TTSV{
			Radius:         c.R,
			LinerThickness: c.TL,
			Extension:      c.Lext,
			Fill:           c.Fill,
			Liner:          c.Liner,
			Count:          c.ViaCount,
		},
		SinkTemp: c.SinkTemp,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Fig4Block returns the Fig. 4 configuration for a given via radius. The
// paper adapts the upper-plane substrate thickness with the radius to
// respect the via aspect-ratio fabrication limit: t_Si2 = t_Si3 = 5 µm for
// r ≤ 5 µm and 45 µm for larger radii.
func Fig4Block(r float64) (*Stack, error) {
	c := DefaultBlock()
	c.R = r
	c.TL = units.UM(0.5)
	c.TD = units.UM(4)
	c.TB = units.UM(1)
	if r <= units.UM(5) {
		c.TSi = units.UM(5)
	} else {
		c.TSi = units.UM(45)
	}
	return c.Build()
}

// Fig5Block returns the Fig. 5 configuration for a given liner thickness:
// r = 5 µm, t_D = 7 µm, t_b = 1 µm, t_Si2 = t_Si3 = 45 µm.
func Fig5Block(tl float64) (*Stack, error) {
	c := DefaultBlock()
	c.R = units.UM(5)
	c.TL = tl
	c.TD = units.UM(7)
	c.TB = units.UM(1)
	c.TSi = units.UM(45)
	return c.Build()
}

// Fig6Block returns the Fig. 6 configuration for a given upper-plane
// substrate thickness: t_L = 1 µm, t_D = 7 µm, t_b = 1 µm, r = 8 µm.
func Fig6Block(tsi float64) (*Stack, error) {
	c := DefaultBlock()
	c.R = units.UM(8)
	c.TL = units.UM(1)
	c.TD = units.UM(7)
	c.TB = units.UM(1)
	c.TSi = tsi
	return c.Build()
}

// Fig7Block returns the Fig. 7 configuration for a given via cluster count:
// r_0 = 10 µm, t_L = 1 µm, t_D = 4 µm, t_b = 1 µm, t_Si2 = t_Si3 = 20 µm.
func Fig7Block(n int) (*Stack, error) {
	c := DefaultBlock()
	c.R = units.UM(10)
	c.TL = units.UM(1)
	c.TD = units.UM(4)
	c.TB = units.UM(1)
	c.TSi = units.UM(20)
	c.ViaCount = n
	return c.Build()
}

// EqualAreaRadius maps the square block to the equal-area cylinder radius
// R0 = sqrt(A0/π) used by the axisymmetric reference solver.
func (s *Stack) EqualAreaRadius() float64 {
	return math.Sqrt(s.Footprint / math.Pi)
}
