package stack

import (
	"encoding/json"
	"fmt"
	"io"
)

// LoadBlockConfig reads a BlockConfig from JSON, starting from the paper's
// DefaultBlock so a config file only states what differs. All lengths are in
// meters (SI), power densities in W/m³; materials may be given as stock
// names ("Cu") or full objects. Unknown fields are rejected to catch typos.
//
//	{"R": 8e-6, "TL": 1e-6, "NumPlanes": 4, "Fill": "W"}
func LoadBlockConfig(r io.Reader) (BlockConfig, error) {
	cfg := DefaultBlock()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return BlockConfig{}, fmt.Errorf("stack: decoding block config: %w", err)
	}
	return cfg, nil
}

// SaveBlockConfig writes the configuration as indented JSON, usable as a
// starting point for hand edits.
func SaveBlockConfig(w io.Writer, cfg BlockConfig) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}
