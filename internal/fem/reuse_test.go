package fem

import (
	"context"
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/sparse"
)

// flatT flattens a [iz][ir] (or deeper) temperature field for comparison.
func flatAxiT(t [][]float64) []float64 {
	var out []float64
	for _, row := range t {
		out = append(out, row...)
	}
	return out
}

func flatCartT(t [][][]float64) []float64 {
	var out []float64
	for _, plane := range t {
		for _, row := range plane {
			out = append(out, row...)
		}
	}
	return out
}

func wantSameBits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: bit difference at %d: %v vs %v", what, i, got[i], want[i])
		}
	}
}

// TestSolveContextBitIdentical is the tentpole reuse property: a radius
// sweep solved through one shared SolveContext (pattern refills, pooled
// scratch from the second point on) must reproduce the fresh per-point
// solves bit for bit, and so must a context with NoReuse set.
func TestSolveContextBitIdentical(t *testing.T) {
	radii := []float64{5, 10, 20}
	fresh := make([][]float64, len(radii))
	for i, r := range radii {
		s := fig4(t, r)
		sol, err := SolveStack(s, coarse())
		if err != nil {
			t.Fatalf("fresh solve r=%g: %v", r, err)
		}
		fresh[i] = flatAxiT(sol.T)
	}

	for _, noReuse := range []bool{false, true} {
		sc := NewSolveContext()
		sc.NoReuse = noReuse
		defer sc.Close()
		for i, r := range radii {
			s := fig4(t, r)
			sol, err := SolveStackWith(context.Background(), sc, s, coarse())
			if err != nil {
				t.Fatalf("context solve (noReuse=%v) r=%g: %v", noReuse, r, err)
			}
			wantSameBits(t, "context vs fresh", flatAxiT(sol.T), fresh[i])
		}
		if wantPat := 1; !noReuse && len(sc.patterns) != wantPat {
			t.Fatalf("context cached %d patterns, want %d (one topology for the whole sweep)", len(sc.patterns), wantPat)
		}
		if noReuse && len(sc.patterns) != 0 {
			t.Fatalf("NoReuse context cached %d patterns, want 0", len(sc.patterns))
		}
	}
}

// TestSolveContextMGReuse forces the multigrid preconditioner and checks the
// hierarchy cache's three tiers: bit-identity with fresh solves throughout,
// pointer-identical hierarchy when the operator is unchanged, and a rebuild
// when the radius (and therefore the operator values) moves.
func TestSolveContextMGReuse(t *testing.T) {
	res := coarse()
	res.Precond = sparse.PrecondMG
	solveFresh := func(r float64) []float64 {
		sol, err := SolveStack(fig4(t, r), res)
		if err != nil {
			t.Fatalf("fresh MG solve r=%g: %v", r, err)
		}
		return flatAxiT(sol.T)
	}

	sc := NewSolveContext()
	defer sc.Close()
	solveWith := func(r float64) []float64 {
		sol, err := SolveStackWith(context.Background(), sc, fig4(t, r), res)
		if err != nil {
			t.Fatalf("context MG solve r=%g: %v", r, err)
		}
		return flatAxiT(sol.T)
	}

	wantSameBits(t, "mg reuse r=10 first", solveWith(10), solveFresh(10))
	if len(sc.hier) != 1 {
		t.Fatalf("hierarchy cache holds %d entries, want 1", len(sc.hier))
	}
	var h0 interface{ Levels() int }
	for _, e := range sc.hier {
		h0 = e.h
	}
	// Same operator again: the cached hierarchy must be served untouched.
	wantSameBits(t, "mg reuse r=10 repeat", solveWith(10), solveFresh(10))
	for _, e := range sc.hier {
		if e.h != h0 {
			t.Fatal("unchanged operator did not reuse the cached hierarchy")
		}
	}
	// New radius, same topology: values move, hierarchy must be rebuilt —
	// and still match the fresh build bit for bit.
	wantSameBits(t, "mg rebuild r=20", solveWith(20), solveFresh(20))
	for _, e := range sc.hier {
		if e.h == h0 {
			t.Fatal("changed operator kept the stale hierarchy")
		}
	}
}

// TestSolveContextCartBitIdentical covers the Cartesian assembly path:
// refilled patterns must reproduce fresh assembly bitwise, including the
// anisotropic (separate vertical conductivity) variant.
func TestSolveContextCartBitIdentical(t *testing.T) {
	edges := func(n int, hi float64) []float64 {
		e, err := mesh.Uniform(0, hi, n)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	prob := func(k, kzTop float64) *CartProblem {
		p := &CartProblem{
			XEdges: edges(6, 1e-3),
			YEdges: edges(6, 1e-3),
			ZEdges: edges(10, 2e-3),
			K:      func(_, _, _ float64) float64 { return k },
			Q:      func(_, _, z float64) float64 { return 1e8 * z },
			Bottom: Fixed(0),
			Top:    Insulated(),
		}
		if kzTop != 0 {
			p.KZ = func(_, _, z float64) float64 {
				if z > 1e-3 {
					return kzTop
				}
				return k
			}
		}
		return p
	}

	for _, aniso := range []bool{false, true} {
		kzOf := func(kz float64) float64 {
			if !aniso {
				return 0
			}
			return kz
		}
		sc := NewSolveContext()
		for i, k := range []float64{2.5, 7.0, 0.8} {
			p := prob(k, kzOf(40*k))
			want, err := SolveCart(p, sparse.Options{})
			if err != nil {
				t.Fatalf("fresh cart solve %d (aniso=%v): %v", i, aniso, err)
			}
			got, err := SolveCartWith(context.Background(), sc, p, sparse.Options{})
			if err != nil {
				t.Fatalf("context cart solve %d (aniso=%v): %v", i, aniso, err)
			}
			wantSameBits(t, "cart context vs fresh", flatCartT(got.T), flatCartT(want.T))
		}
		sc.Close()
	}
}

// TestSolveContextTopologyChange solves two different mesh sizes through one
// context: each topology gets its own pattern and both keep matching fresh
// solves, so a context survives resolution changes mid-stream.
func TestSolveContextTopologyChange(t *testing.T) {
	sc := NewSolveContext()
	defer sc.Close()
	resA := coarse()
	resB := coarse()
	resB.RadialOuter += 3
	resB.Bulk += 2
	for _, res := range []Resolution{resA, resB, resA} {
		s := fig4(t, 10)
		want, err := SolveStack(s, res)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveStackWith(context.Background(), sc, s, res)
		if err != nil {
			t.Fatal(err)
		}
		wantSameBits(t, "topology change", flatAxiT(got.T), flatAxiT(want.T))
	}
	if len(sc.patterns) != 2 {
		t.Fatalf("context cached %d patterns, want 2 (one per topology)", len(sc.patterns))
	}
}

// TestWarmStartDeterministicAndConvergent: warm starting changes the CG
// iterate sequence, so it is not bit-identical to cold solves — but it must
// be deterministic (two identical warm sweeps agree bitwise) and still
// converge to the same solution within the solver tolerance.
func TestWarmStartDeterministicAndConvergent(t *testing.T) {
	radii := []float64{5, 8, 12, 20}
	runWarm := func() [][]float64 {
		sc := NewSolveContext()
		sc.WarmStart = true
		defer sc.Close()
		out := make([][]float64, len(radii))
		for i, r := range radii {
			sol, err := SolveStackWith(context.Background(), sc, fig4(t, r), coarse())
			if err != nil {
				t.Fatalf("warm solve r=%g: %v", r, err)
			}
			out[i] = flatAxiT(sol.T)
		}
		return out
	}
	a, b := runWarm(), runWarm()
	for i := range a {
		wantSameBits(t, "warm determinism", a[i], b[i])
	}
	for i, r := range radii {
		sol, err := SolveStack(fig4(t, r), coarse())
		if err != nil {
			t.Fatal(err)
		}
		cold := flatAxiT(sol.T)
		for j := range cold {
			denom := math.Max(math.Abs(cold[j]), 1)
			if math.Abs(a[i][j]-cold[j])/denom > 1e-6 {
				t.Fatalf("warm vs cold r=%g diverged at %d: %v vs %v", r, j, a[i][j], cold[j])
			}
		}
	}
}
