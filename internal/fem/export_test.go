package fem

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sparse"
)

func solvedFig4(t *testing.T) *AxiSolution {
	t.Helper()
	s, err := fig4At(10)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveStack(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestWriteCSVShape(t *testing.T) {
	sol := solvedFig4(t)
	var buf bytes.Buffer
	if err := sol.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	wantRows := len(sol.RCenters)*len(sol.ZCenters) + 1
	if len(lines) != wantRows {
		t.Fatalf("CSV has %d lines, want %d", len(lines), wantRows)
	}
	if lines[0] != "r_m,z_m,dT_K" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], ",") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestAxialProfile(t *testing.T) {
	sol := solvedFig4(t)
	z, temp := sol.AxialProfile()
	if len(z) != len(sol.ZCenters) || len(temp) != len(z) {
		t.Fatalf("profile lengths %d, %d", len(z), len(temp))
	}
	// Temperature must rise monotonically along the axis (heat flows down
	// through the via column).
	for j := 1; j < len(temp); j++ {
		if temp[j] < temp[j-1]-1e-9 {
			t.Fatalf("axial profile not monotone at %d: %g then %g", j, temp[j-1], temp[j])
		}
	}
	// Mutating the returned slices must not corrupt the solution.
	temp[0] = 1e9
	if sol.T[0][0] == 1e9 {
		t.Error("AxialProfile aliases internal storage")
	}
}

func TestRadialProfile(t *testing.T) {
	sol := solvedFig4(t)
	top := sol.ZCenters[len(sol.ZCenters)-1]
	r, temp, err := sol.RadialProfile(top)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != len(sol.RCenters) {
		t.Fatalf("radial profile length %d", len(r))
	}
	// Near the top, the via region (small r) is cooler than the far bulk:
	// the via drains heat down. Compare innermost vs outermost.
	if temp[0] >= temp[len(temp)-1] {
		t.Errorf("via not cooler than surroundings at the top: %g vs %g", temp[0], temp[len(temp)-1])
	}
	// Out-of-range z0 snaps to the closest height rather than failing.
	if _, _, err := sol.RadialProfile(1e9); err != nil {
		t.Errorf("RadialProfile snap failed: %v", err)
	}
}

func TestProfilesOnAnalyticSlab(t *testing.T) {
	// Uniform slab: the radial profile must be flat.
	p := uniformAxiProblem(t, 6, 20, 5, 1e7)
	sol, err := SolveAxi(p, sparse.Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	_, temp, err := sol.RadialProfile(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(temp); i++ {
		if abs(temp[i]-temp[0]) > 1e-9*(1+abs(temp[0])) {
			t.Fatalf("radial profile of a uniform slab not flat: %v", temp)
		}
	}
}
