// Package fem implements the reference heat-conduction solver that stands in
// for the commercial FEM tool (COMSOL) the paper validates against. It is a
// finite-volume discretization of steady-state heat conduction
//
//	∇·(k ∇T) + q = 0
//
// on structured meshes: a 2-D axisymmetric (r, z) solver for the single-TTSV
// block — the square footprint is mapped to the equal-area circle — and a
// 3-D Cartesian solver used for cross-validation. Conductivities are
// harmonically averaged at cell faces so layered materials are handled
// exactly; the resulting SPD system is solved with preconditioned conjugate
// gradients.
package fem

import "fmt"

// BCKind selects the boundary condition type on one boundary face.
type BCKind int

const (
	// Adiabatic is a zero-flux (homogeneous Neumann) boundary.
	Adiabatic BCKind = iota
	// Dirichlet fixes the boundary temperature.
	Dirichlet
)

// BC describes one boundary face's condition.
type BC struct {
	Kind BCKind
	// Temp is the fixed temperature for Dirichlet boundaries.
	Temp float64
}

// Fixed returns a Dirichlet boundary condition at temperature t.
func Fixed(t float64) BC { return BC{Kind: Dirichlet, Temp: t} }

// Insulated returns an adiabatic boundary condition.
func Insulated() BC { return BC{Kind: Adiabatic} }

func (b BC) String() string {
	switch b.Kind {
	case Adiabatic:
		return "adiabatic"
	case Dirichlet:
		return fmt.Sprintf("T=%g", b.Temp)
	default:
		return fmt.Sprintf("BC(%d)", int(b.Kind))
	}
}
