package fem

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/mesh"
	"repro/internal/mg"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/stack"
)

// Resolution controls the mesh density of the stack-to-problem translation.
type Resolution struct {
	// RadialVia is the cell count across the via fill radius.
	RadialVia int
	// RadialLiner is the cell count across the liner annulus.
	RadialLiner int
	// RadialOuter is the cell count from the liner to the outer radius
	// (geometrically graded outward).
	RadialOuter int
	// AxialPerLayer is the base cell count per geometric layer; thin layers
	// (device layers, bonds) get at least AxialMin cells.
	AxialPerLayer int
	// AxialMin is the minimum cell count of any layer.
	AxialMin int
	// Bulk is the cell count of the thick first-plane substrate (graded
	// towards the via tip).
	Bulk int
	// Workers is the iterative solver's kernel worker count for solves at
	// this resolution; values <= 1 solve sequentially. With a fixed
	// preconditioner results are bit-identical for any value; the default
	// preconditioner switches from SSOR to Chebyshev when Workers > 1 (see
	// pickPrecond), which changes results only within the solver tolerance.
	Workers int
	// Precond overrides the preconditioner for solves at this resolution.
	// The zero value (sparse.PrecondDefault) auto-selects: geometric
	// multigrid above ~4k unknowns, SSOR/Chebyshev below (see
	// resolveSolver). sparse.PrecondMG forces multigrid, with the hierarchy
	// built per solve from the assembled grid.
	Precond sparse.PrecondKind
	// Operator selects the matrix representation for solves at this
	// resolution. The zero value (OperatorAuto) runs matrix-free whenever
	// the preconditioner allows it; results are bit-identical either way.
	Operator OperatorKind
	// Hierarchy selects how multigrid coarse levels are built when a solve
	// at this resolution is MG-preconditioned: the zero value keeps the
	// Galerkin smoothed-aggregation hierarchy, mg.HierarchyGeometric
	// re-discretizes coarse stencils directly (no Galerkin products, no
	// coarse CSRs — the cheap-build mode for fresh refined solves). A
	// geometric build that fails (the matrix is not a structured
	// conductance stencil) falls back to Galerkin, counted in
	// fem.mg.geometric.fallback.
	Hierarchy mg.HierarchyKind
	// Precision selects the multigrid preconditioner-data storage
	// precision; mg.PrecisionF32 requires the geometric hierarchy. The
	// outer CG stays float64 either way, so converged temperatures agree
	// within the solver tolerance.
	Precision mg.PrecisionKind
	// RefineFactor records how many times finer than the base mesh this
	// resolution is (Refine maintains it). Graded mesh intervals raise
	// their per-cell ratio to the 1/RefineFactor power, keeping the total
	// first-to-last width ratio of each interval fixed under refinement:
	// refined meshes form a nested family of the same graded mesh instead
	// of compounding the per-cell ratio, which would make the width spread
	// grow exponentially with refinement (and the linear systems
	// correspondingly ill-conditioned). Values <= 1 leave ratios as
	// written.
	RefineFactor int
}

// DefaultResolution returns a resolution that keeps the block experiments
// under ~10k cells while resolving every interface.
func DefaultResolution() Resolution {
	return Resolution{RadialVia: 6, RadialLiner: 3, RadialOuter: 18, AxialPerLayer: 6, AxialMin: 2, Bulk: 14}
}

// Refine returns a resolution with every count scaled by f (≥ 1), used for
// grid-convergence tests. The returned resolution's RefineFactor scales by
// the same f, so graded intervals keep their total grading envelope (see
// RefineFactor) and successive refinements stay a nested mesh family.
func (r Resolution) Refine(f int) Resolution {
	rf := r.RefineFactor
	if rf < 1 {
		rf = 1
	}
	return Resolution{
		RadialVia:     r.RadialVia * f,
		RadialLiner:   r.RadialLiner * f,
		RadialOuter:   r.RadialOuter * f,
		AxialPerLayer: r.AxialPerLayer * f,
		AxialMin:      r.AxialMin * f,
		Bulk:          r.Bulk * f,
		Workers:       r.Workers,
		Precond:       r.Precond,
		Operator:      r.Operator,
		Hierarchy:     r.Hierarchy,
		Precision:     r.Precision,
		RefineFactor:  rf * f,
	}
}

// gradeRatio adapts a per-cell grading ratio to the resolution's refinement
// factor: ratio^(1/f) applied over f× the cells spans the same total ratio
// as the base mesh, so refinement subdivides the graded mesh instead of
// re-grading it more steeply.
func (r Resolution) gradeRatio(ratio float64) float64 {
	if r.RefineFactor > 1 && ratio != 1 {
		return math.Pow(ratio, 1/float64(r.RefineFactor))
	}
	return ratio
}

func (r Resolution) validate() error {
	if r.RadialVia < 1 || r.RadialLiner < 1 || r.RadialOuter < 1 || r.AxialPerLayer < 1 || r.AxialMin < 1 || r.Bulk < 1 {
		return fmt.Errorf("fem: resolution fields must all be >= 1: %+v", r)
	}
	if r.Precision == mg.PrecisionF32 && r.Hierarchy != mg.HierarchyGeometric {
		return fmt.Errorf("fem: mg precision f32 requires the geometric hierarchy (mg.hierarchy=geometric)")
	}
	return nil
}

// layerSpan records one material layer of the unit cell in z.
type layerSpan struct {
	lo, hi float64
	k      float64 // bulk conductivity outside the via
	c      float64 // bulk volumetric heat capacity outside the via
	q      float64 // volumetric source density (W/m³), applied across all r
	inVia  bool    // whether the via traverses this span
}

// BuildAxiProblem translates a stack into the axisymmetric unit-cell problem
// the reference solver consumes. For a via cluster (Count > 1) the unit cell
// is the symmetry cell of one via: footprint A0/n, via radius r_n, powers
// q_i/n — exact for a uniformly distributed array. The square cell is mapped
// to the equal-area circle. The bottom is the heat sink (ΔT = 0 reference);
// all other boundaries are adiabatic, matching the paper's setup.
func BuildAxiProblem(s *stack.Stack, res Resolution) (*AxiProblem, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := res.validate(); err != nil {
		return nil, err
	}
	n := float64(s.Via.EffectiveCount())
	rVia := s.Via.SplitRadius()
	rLiner := rVia + s.Via.LinerThickness
	cellArea := s.Footprint / n
	rOuter := math.Sqrt(cellArea / math.Pi)
	if rLiner >= rOuter {
		return nil, fmt.Errorf("fem: via+liner radius %g exceeds unit cell radius %g", rLiner, rOuter)
	}

	// Assemble the layer spans bottom-up and the z breakpoints.
	spans, zTop, err := buildLayerSpans(s, cellArea)
	if err != nil {
		return nil, err
	}

	// z mesh: per span, cell count proportional to the base with a minimum;
	// the thick bulk substrate is graded towards the via tip.
	var intervals []mesh.Interval
	for i, sp := range spans {
		cells := res.AxialPerLayer
		ratio := 1.0
		if i == 0 {
			cells = res.Bulk
			// Finer towards the top (the via tip / heat path); the ratio is
			// relative to the base mesh so refinement keeps the envelope.
			ratio = res.gradeRatio(0.75)
		}
		if sp.hi-sp.lo < thinSpanMax && i != 0 {
			cells = res.AxialMin
		}
		intervals = append(intervals, mesh.Interval{Hi: sp.hi, Cells: cells, Ratio: ratio})
	}
	zEdges, err := mesh.Line(0, intervals)
	if err != nil {
		return nil, err
	}

	rEdges, err := mesh.Line(0, []mesh.Interval{
		{Hi: rVia, Cells: res.RadialVia},
		{Hi: rLiner, Cells: res.RadialLiner},
		{Hi: rOuter, Cells: res.RadialOuter, Ratio: res.gradeRatio(1.2)},
	})
	if err != nil {
		return nil, err
	}

	kf := s.Via.Fill.K
	kl := s.Via.Liner.K
	spansCopy := spans
	// The closures return NaN when z falls outside the layer table instead of
	// a silently-plausible fallback: assembly validates every sampled value,
	// so a span miss (a mesh/layer bookkeeping bug) surfaces as an assembly
	// error rather than a wrong answer.
	kFn := func(r, z float64) float64 {
		sp := locateSpan(spansCopy, z)
		if sp == nil {
			return math.NaN()
		}
		if sp.inVia {
			if r < rVia {
				return kf
			}
			if r < rLiner {
				return kl
			}
		}
		return sp.k
	}
	qFn := func(r, z float64) float64 {
		sp := locateSpan(spansCopy, z)
		if sp == nil {
			return math.NaN()
		}
		return sp.q
	}
	cf, cl := s.Via.Fill.C, s.Via.Liner.C
	capFn := func(r, z float64) float64 {
		sp := locateSpan(spansCopy, z)
		if sp == nil {
			return math.NaN()
		}
		if sp.inVia {
			if r < rVia {
				return cf
			}
			if r < rLiner {
				return cl
			}
		}
		return sp.c
	}
	if !almostEqual(zTop, zEdges[len(zEdges)-1], 1e-9) {
		return nil, fmt.Errorf("fem: internal inconsistency: stack height %g vs mesh top %g", zTop, zEdges[len(zEdges)-1])
	}
	return &AxiProblem{
		REdges: rEdges,
		ZEdges: zEdges,
		K:      kFn,
		Q:      qFn,
		Cap:    capFn,
		Bottom: Fixed(0),
		Top:    Insulated(),
		Outer:  Insulated(),
	}, nil
}

// buildLayerSpans lists the z-spans of the unit cell bottom-up with their
// material and source density. cellArea scales the per-plane powers into
// volumetric densities (powers are divided by the via count with the area).
func buildLayerSpans(s *stack.Stack, cellArea float64) ([]layerSpan, float64, error) {
	frac := cellArea / s.Footprint // power share of the unit cell
	var spans []layerSpan
	z := 0.0
	add := func(t, k, c, q float64, inVia bool) {
		if t <= 0 {
			return
		}
		spans = append(spans, layerSpan{lo: z, hi: z + t, k: k, c: c, q: q, inVia: inVia})
		z += t
	}
	for i, p := range s.Planes {
		kSi, kD := p.Si.K, p.ILD.K
		cSi, cD := p.Si.C, p.ILD.C
		tdev := p.DeviceLayerThickness
		if tdev <= 0 {
			// Keep the device power by folding it into the ILD source.
			tdev = 0
		}
		devQ := 0.0
		if tdev > 0 {
			devQ = p.DevicePower * frac / (cellArea * tdev)
		}
		ildQ := 0.0
		if p.ILDThickness > 0 {
			ildQ = p.ILDPower * frac / (cellArea * p.ILDThickness)
			if tdev == 0 {
				ildQ += p.DevicePower * frac / (cellArea * p.ILDThickness)
			}
		}
		if i == 0 {
			// Thick substrate: bulk below the via tip, then the extension
			// region. The device layer is the top tdev of the substrate and
			// may coincide with the extension region.
			bulk := p.SiThickness - s.Via.Extension
			ext := s.Via.Extension
			if tdev >= ext {
				// Device layer spans the extension and dips into the bulk.
				add(bulk-(tdev-ext), kSi, cSi, 0, false)
				add(tdev-ext, kSi, cSi, devQ, false)
				add(ext, kSi, cSi, devQ, ext > 0)
			} else {
				add(bulk, kSi, cSi, 0, false)
				add(ext-tdev, kSi, cSi, 0, ext-tdev > 0)
				add(tdev, kSi, cSi, devQ, true)
			}
			add(p.ILDThickness, kD, cD, ildQ, true)
			continue
		}
		kb, cb := p.Bond.K, p.Bond.C
		add(p.BondThickness, kb, cb, 0, true)
		add(p.SiThickness-tdev, kSi, cSi, 0, true)
		add(tdev, kSi, cSi, devQ, true)
		add(p.ILDThickness, kD, cD, ildQ, true)
	}
	if len(spans) == 0 {
		return nil, 0, fmt.Errorf("fem: stack produced no layers")
	}
	return spans, z, nil
}

func locateSpan(spans []layerSpan, z float64) *layerSpan {
	i := sort.Search(len(spans), func(k int) bool { return spans[k].hi > z })
	if i >= len(spans) {
		if z == spans[len(spans)-1].hi {
			return &spans[len(spans)-1]
		}
		return nil
	}
	if z < spans[i].lo {
		return nil
	}
	return &spans[i]
}

// SolveStack builds and solves the axisymmetric reference problem for the
// stack and reports the paper's quantity of interest: the maximum
// temperature rise above the sink.
func SolveStack(s *stack.Stack, res Resolution) (*AxiSolution, error) {
	return SolveStackCtx(context.Background(), s, res)
}

// SolveStackCtx is SolveStack honoring cancellation and the resolution's
// solver worker count.
func SolveStackCtx(ctx context.Context, s *stack.Stack, res Resolution) (*AxiSolution, error) {
	return SolveStackWith(ctx, nil, s, res)
}

// SolveStackWith is SolveStackCtx solving through a reuse context (see
// SolveAxiWith): across the stacks of a parameter sweep the mesh topology is
// usually identical, so assembly patterns, multigrid hierarchies and solver
// scratch carry over from one stack to the next.
func SolveStackWith(ctx context.Context, sc *SolveContext, s *stack.Stack, res Resolution) (*AxiSolution, error) {
	ctx, sp := obs.StartSpan(ctx, "fem.stack")
	defer sp.End()
	p, err := BuildAxiProblem(s, res)
	if err != nil {
		sp.Set("error", err.Error())
		return nil, err
	}
	sp.Set("planes", len(s.Planes))
	o := sparseDefaults()
	o.Workers = res.Workers
	o.Precond = res.Precond
	return solveAxiWith(ctx, sc, p, o, res.Operator, mgSelect{Hierarchy: res.Hierarchy, Precision: res.Precision})
}
