package fem

import (
	"testing"

	"repro/internal/sparse"
)

// TestMGIterationsMeshIndependent asserts the point of the multigrid
// preconditioner: CG iteration counts stay within a constant band as the
// reference grid refines, instead of growing with the mesh.
func TestMGIterationsMeshIndependent(t *testing.T) {
	s := fig4(t, 10)
	for _, f := range []int{1, 2, 4} {
		res := coarse().Refine(f)
		res.Precond = sparse.PrecondMG
		sol, err := SolveStack(s, res)
		if err != nil {
			t.Fatalf("refine %d: %v", f, err)
		}
		if sol.Stats.Precond != sparse.PrecondMG {
			t.Fatalf("refine %d: ran %v, want multigrid", f, sol.Stats.Precond)
		}
		if sol.Stats.Levels < 2 {
			t.Fatalf("refine %d: hierarchy has %d levels", f, sol.Stats.Levels)
		}
		if sol.Stats.Iterations > 30 {
			t.Errorf("refine %d: %d CG iterations, want <= 30 (mesh-independent band)",
				f, sol.Stats.Iterations)
		}
	}
}

// TestMGBeatsJacobiIterations pins the headline speedup: at twice the
// default reference resolution, multigrid-preconditioned CG must need at
// least 3x fewer iterations than Jacobi (in practice the gap is ~50x).
func TestMGBeatsJacobiIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("Jacobi baseline at 2x default resolution is slow")
	}
	s := fig4(t, 10)

	res := DefaultResolution().Refine(2)
	res.Precond = sparse.PrecondMG
	mgSol, err := SolveStack(s, res)
	if err != nil {
		t.Fatal(err)
	}

	res.Precond = sparse.PrecondJacobi
	jacSol, err := SolveStack(s, res)
	if err != nil {
		t.Fatal(err)
	}

	mgIt, jacIt := mgSol.Stats.Iterations, jacSol.Stats.Iterations
	if mgIt == 0 || jacIt < 3*mgIt {
		t.Errorf("MG used %d iterations, Jacobi %d; want Jacobi >= 3x MG", mgIt, jacIt)
	}

	// Both converged to the same tolerance; the answers must agree closely.
	mgMax, _, _ := mgSol.MaxT()
	jacMax, _, _ := jacSol.MaxT()
	if diff := mgMax - jacMax; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("MG max ΔT %g vs Jacobi %g", mgMax, jacMax)
	}
}

// TestMGBitIdenticalAcrossWorkers asserts the determinism contract: a
// multigrid-preconditioned solve produces bit-identical temperature fields
// for any worker count.
func TestMGBitIdenticalAcrossWorkers(t *testing.T) {
	s := fig4(t, 10)
	var ref *AxiSolution
	for _, w := range []int{1, 2, 4, 8} {
		res := coarse().Refine(2)
		res.Precond = sparse.PrecondMG
		res.Workers = w
		sol, err := SolveStack(s, res)
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if ref == nil {
			ref = sol
			continue
		}
		if sol.Stats.Iterations != ref.Stats.Iterations {
			t.Fatalf("workers %d: %d iterations, want %d", w, sol.Stats.Iterations, ref.Stats.Iterations)
		}
		for j := range sol.T {
			for i := range sol.T[j] {
				if sol.T[j][i] != ref.T[j][i] {
					t.Fatalf("workers %d: T[%d][%d] = %g != %g", w, j, i, sol.T[j][i], ref.T[j][i])
				}
			}
		}
	}
}

// TestMGAutoSelection checks the default-policy threshold: small systems
// keep the single-level preconditioners, large ones upgrade to multigrid
// without the caller asking.
func TestMGAutoSelection(t *testing.T) {
	s := fig4(t, 10)
	for _, tc := range []struct {
		refine int
		wantMG bool
	}{{1, false}, {4, true}} {
		sol, err := SolveStack(s, coarse().Refine(tc.refine))
		if err != nil {
			t.Fatalf("refine %d: %v", tc.refine, err)
		}
		n := len(sol.RCenters) * len(sol.ZCenters)
		if (n >= mgAutoThreshold) != tc.wantMG {
			t.Fatalf("refine %d: n = %d does not probe the %d-unknown threshold as intended",
				tc.refine, n, mgAutoThreshold)
		}
		if got := sol.Stats.Precond == sparse.PrecondMG; got != tc.wantMG {
			t.Errorf("refine %d (n = %d): auto-selected %v, want multigrid = %v",
				tc.refine, n, sol.Stats.Precond, tc.wantMG)
		}
	}
}

// TestMGExplicitFallsBackWhenTiny: an explicit multigrid request on a grid
// too small to coarsen falls back to the default preconditioner instead of
// failing the solve.
func TestMGExplicitFallsBackWhenTiny(t *testing.T) {
	s := fig4(t, 10)
	res := coarse()
	res.RadialVia, res.RadialLiner, res.RadialOuter = 1, 1, 2
	res.AxialPerLayer, res.AxialMin, res.Bulk = 1, 1, 2
	res.Precond = sparse.PrecondMG
	sol, err := SolveStack(s, res)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Precond == sparse.PrecondMG {
		t.Errorf("tiny grid still reports multigrid (%v)", sol.Stats.Precond)
	}
}

// TestTransientMGMatchesSSOR runs the same implicit integration under the
// multigrid and SSOR preconditioners. The hierarchy is built once on the
// step matrix and reused across steps; both runs must land on the same
// trajectory endpoint.
func TestTransientMGMatchesSSOR(t *testing.T) {
	s, err := fig4At(10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildAxiProblem(s, coarse().Refine(2))
	if err != nil {
		t.Fatal(err)
	}
	const dt, steps = 1e-4, 20
	mgTr, err := SolveAxiTransient(p, dt, steps, sparse.Options{Tol: 1e-11, Precond: sparse.PrecondMG})
	if err != nil {
		t.Fatal(err)
	}
	if mgTr.Stats.Precond != sparse.PrecondMG || mgTr.Stats.Levels < 2 {
		t.Fatalf("transient stats %v: multigrid did not run", mgTr.Stats)
	}
	ssorTr, err := SolveAxiTransient(p, dt, steps, sparse.Options{Tol: 1e-11, Precond: sparse.PrecondSSOR})
	if err != nil {
		t.Fatal(err)
	}
	got := mgTr.MaxT[len(mgTr.MaxT)-1]
	want := ssorTr.MaxT[len(ssorTr.MaxT)-1]
	if diff := got - want; diff > 1e-8 || diff < -1e-8 {
		t.Errorf("transient final max ΔT: MG %g vs SSOR %g", got, want)
	}
}
