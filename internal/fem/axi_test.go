package fem

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/sparse"
)

func uniformAxiProblem(t *testing.T, nr, nz int, k, q float64) *AxiProblem {
	t.Helper()
	r, err := mesh.Uniform(0, 1e-3, nr)
	if err != nil {
		t.Fatal(err)
	}
	z, err := mesh.Uniform(0, 2e-3, nz)
	if err != nil {
		t.Fatal(err)
	}
	return &AxiProblem{
		REdges: r,
		ZEdges: z,
		K:      func(_, _ float64) float64 { return k },
		Q:      func(_, _ float64) float64 { return q },
		Bottom: Fixed(0),
		Top:    Insulated(),
		Outer:  Insulated(),
	}
}

func TestAxiUniformSlabWithSource(t *testing.T) {
	// 1-D analytic solution for a slab of height H with uniform source q,
	// bottom at 0 and top adiabatic: T(z) = (q/k)(H z - z²/2).
	const k, q, h = 2.5, 1e6, 2e-3
	p := uniformAxiProblem(t, 4, 60, k, q)
	sol, err := SolveAxi(p, sparse.Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for j, z := range sol.ZCenters {
		want := q / k * (h*z - z*z/2)
		for i := range sol.T[j] {
			if math.Abs(sol.T[j][i]-want) > 1e-3*q/k*h*h {
				t.Fatalf("T(z=%g) = %g, want %g", z, sol.T[j][i], want)
			}
		}
	}
	tmax, _, zAt := sol.MaxT()
	wantMax := q / k * h * h / 2
	if math.Abs(tmax-wantMax)/wantMax > 0.01 {
		t.Errorf("max T = %g at z=%g, want %g at top", tmax, zAt, wantMax)
	}
}

func TestAxiTwoLayerSlabSeriesResistance(t *testing.T) {
	// Heat injected in a thin top layer must cross two material slabs in
	// series: ΔT across the stack equals q_total·(t1/k1 + t2/k2)/A.
	const (
		t1, k1 = 1e-3, 100.0 // bottom layer
		t2, k2 = 0.5e-3, 2.0 // top layer
		tSrc   = 1e-5        // source sliver at the very top
		qv     = 1e9         // W/m³ in the sliver
		rOut   = 1e-3
	)
	r, _ := mesh.Uniform(0, rOut, 3)
	z, err := mesh.Line(0, []mesh.Interval{
		{Hi: t1, Cells: 40},
		{Hi: t1 + t2 - tSrc, Cells: 30},
		{Hi: t1 + t2, Cells: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &AxiProblem{
		REdges: r,
		ZEdges: z,
		K: func(_, zz float64) float64 {
			if zz < t1 {
				return k1
			}
			return k2
		},
		Q: func(_, zz float64) float64 {
			if zz > t1+t2-tSrc {
				return qv
			}
			return 0
		},
		Bottom: Fixed(0),
		Top:    Insulated(),
		Outer:  Insulated(),
	}
	sol, err := SolveAxi(p, sparse.Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	area := math.Pi * rOut * rOut
	qTot := qv * area * tSrc
	want := qTot * (t1/k1 + (t2-tSrc/2)/k2) / area
	got, _, _ := sol.MaxT()
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("two-layer ΔT = %g, want %g", got, want)
	}
}

func TestAxiRadialLogSolution(t *testing.T) {
	// Source confined to an inner cylinder r < a, outer boundary fixed,
	// top/bottom adiabatic: outside the source the solution is the classic
	// log profile T(r) = q a²/(2k) ln(R/r).
	const (
		a, rOut = 2e-4, 1.2e-3
		k       = 3.0
		qv      = 5e7
	)
	r, err := mesh.Line(0, []mesh.Interval{
		{Hi: a, Cells: 20},
		{Hi: rOut, Cells: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	z, _ := mesh.Uniform(0, 1e-4, 3)
	p := &AxiProblem{
		REdges: r,
		ZEdges: z,
		K:      func(_, _ float64) float64 { return k },
		Q: func(rr, _ float64) float64 {
			if rr < a {
				return qv
			}
			return 0
		},
		Bottom: Insulated(),
		Top:    Insulated(),
		Outer:  Fixed(0),
	}
	sol, err := SolveAxi(p, sparse.Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range sol.RCenters {
		if rr <= a*1.2 {
			continue // skip the source region and its fringe
		}
		want := qv * a * a / (2 * k) * math.Log(rOut/rr)
		got := sol.T[1][i]
		scale := qv * a * a / (2 * k) * math.Log(rOut/a)
		if math.Abs(got-want) > 0.02*scale {
			t.Fatalf("radial T(%g) = %g, want %g", rr, got, want)
		}
	}
	// Centerline value: T(0) = qa²/2k·(ln(R/a) + 1/2).
	wantCenter := qv * a * a / (2 * k) * (math.Log(rOut/a) + 0.5)
	got := sol.T[1][0]
	if math.Abs(got-wantCenter)/wantCenter > 0.02 {
		t.Errorf("centerline T = %g, want %g", got, wantCenter)
	}
}

func TestAxiFluxBalance(t *testing.T) {
	p := uniformAxiProblem(t, 8, 40, 10, 2e8)
	sol, err := SolveAxi(p, sparse.Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if fb := sol.FluxBalanceError(); fb > 1e-8 {
		t.Errorf("flux balance error %g", fb)
	}
	// Total source: q·π R²·H.
	want := 2e8 * math.Pi * 1e-6 * 2e-3
	if got := sol.TotalSource(); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("TotalSource = %g, want %g", got, want)
	}
}

func TestAxiZeroSourceZeroField(t *testing.T) {
	p := uniformAxiProblem(t, 5, 10, 1, 0)
	sol, err := SolveAxi(p, sparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tmax, _, _ := sol.MaxT()
	if math.Abs(tmax) > 1e-12 {
		t.Errorf("max T = %g with no source", tmax)
	}
}

func TestAxiDirichletOffsets(t *testing.T) {
	// With no source and bottom fixed at 27, the whole field must be 27.
	p := uniformAxiProblem(t, 4, 10, 1, 0)
	p.Bottom = Fixed(27)
	sol, err := SolveAxi(p, sparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range sol.T {
		for i := range sol.T[j] {
			if math.Abs(sol.T[j][i]-27) > 1e-9 {
				t.Fatalf("T = %g, want 27", sol.T[j][i])
			}
		}
	}
}

func TestAxiAtLookup(t *testing.T) {
	p := uniformAxiProblem(t, 4, 10, 1, 1e6)
	sol, err := SolveAxi(p, sparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sol.At(0.5e-3, 1e-3); err != nil {
		t.Errorf("At inside mesh failed: %v", err)
	}
	if _, err := sol.At(2e-3, 1e-3); err == nil {
		t.Error("At outside mesh succeeded")
	}
}

func TestAxiValidation(t *testing.T) {
	good := uniformAxiProblem(t, 4, 4, 1, 0)
	bad := *good
	bad.REdges = []float64{1e-4, 2e-4} // does not start at the axis
	if _, err := SolveAxi(&bad, sparse.Options{}); err == nil {
		t.Error("off-axis mesh accepted")
	}
	bad2 := *good
	bad2.K = nil
	if _, err := SolveAxi(&bad2, sparse.Options{}); err == nil {
		t.Error("nil conductivity accepted")
	}
	bad3 := *good
	bad3.Bottom, bad3.Top, bad3.Outer = Insulated(), Insulated(), Insulated()
	if _, err := SolveAxi(&bad3, sparse.Options{}); err == nil {
		t.Error("all-adiabatic problem accepted")
	}
	bad4 := *good
	bad4.K = func(_, _ float64) float64 { return -1 }
	if _, err := SolveAxi(&bad4, sparse.Options{}); err == nil {
		t.Error("negative conductivity accepted")
	}
}

func TestBCString(t *testing.T) {
	if Insulated().String() != "adiabatic" {
		t.Error("Insulated string")
	}
	if Fixed(3).String() != "T=3" {
		t.Error("Fixed string")
	}
}

func TestBoundaryOutflowTopAndOuter(t *testing.T) {
	// Source-free problems with different Dirichlet faces: with bottom at 0
	// and top at 10 the outflow through each must balance (what goes in the
	// top leaves the bottom).
	p := uniformAxiProblem(t, 4, 20, 3, 0)
	p.Top = Fixed(10)
	sol, err := SolveAxi(p, sparse.Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Net outflow = (out at bottom, positive) + (out at top, negative,
	// since heat enters there): must sum to ~0 for a source-free field.
	if out := sol.BoundaryOutflow(); math.Abs(out) > 1e-9 {
		t.Errorf("net outflow %g for source-free field", out)
	}
	// Outer Dirichlet with an interior source: everything leaves radially.
	p2 := uniformAxiProblem(t, 10, 4, 3, 5e6)
	p2.Bottom = Insulated()
	p2.Outer = Fixed(0)
	sol2, err := SolveAxi(p2, sparse.Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if fb := sol2.FluxBalanceError(); fb > 1e-8 {
		t.Errorf("outer-Dirichlet flux balance %g", fb)
	}
	// FluxBalanceError with zero source returns the absolute outflow.
	if fb := sol.FluxBalanceError(); fb > 1e-9 {
		t.Errorf("source-free FluxBalanceError = %g", fb)
	}
}

func TestBCStringUnknownKind(t *testing.T) {
	if s := (BC{Kind: BCKind(9)}).String(); !strings.Contains(s, "9") {
		t.Errorf("String = %q", s)
	}
}
