package fem

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/sparse"
)

func TestAlmostEqual(t *testing.T) {
	for _, tc := range []struct {
		a, b, rtol float64
		want       bool
	}{
		{1, 1, 1e-9, true},
		{0, 0, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		{-2e-3, -2e-3 * (1 + 1e-12), 1e-9, true},
		{1e-300, 2e-300, 1e-9, false},
		{0, 1e-12, 1e-9, false},
	} {
		if got := almostEqual(tc.a, tc.b, tc.rtol); got != tc.want {
			t.Errorf("almostEqual(%g, %g, %g) = %v, want %v", tc.a, tc.b, tc.rtol, got, tc.want)
		}
	}
}

// Regression: the stack-to-problem closures used to return silently-plausible
// fallbacks (k = 1, q = 0) when z missed the layer table; now they return NaN
// so assembly surfaces the bookkeeping bug as an error.
func TestProblemClosuresNaNOutsideLayerTable(t *testing.T) {
	s, err := fig4At(10)
	if err != nil {
		t.Fatal(err)
	}
	axi, err := BuildAxiProblem(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	zOut := axi.ZEdges[len(axi.ZEdges)-1] * 10
	if !math.IsNaN(axi.K(0, zOut)) || !math.IsNaN(axi.Q(0, zOut)) || !math.IsNaN(axi.Cap(0, zOut)) {
		t.Error("axi closures did not return NaN outside the layer table")
	}
	cart, err := BuildCartProblem(s, DefaultCartResolution())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(cart.K(0, 0, zOut)) || !math.IsNaN(cart.Q(0, 0, zOut)) {
		t.Error("cart closures did not return NaN outside the layer table")
	}
}

// Assembly must reject non-finite source densities the way it already rejects
// non-finite conductivities, in both geometries.
func TestAssemblyRejectsNonFiniteSource(t *testing.T) {
	r, _ := mesh.Uniform(0, 1e-4, 3)
	z, _ := mesh.Uniform(0, 1e-3, 4)
	axi := &AxiProblem{
		REdges: r, ZEdges: z,
		K:      func(_, _ float64) float64 { return 100 },
		Q:      func(_, _ float64) float64 { return math.NaN() },
		Bottom: Fixed(0), Top: Insulated(), Outer: Insulated(),
	}
	if _, err := SolveAxi(axi, sparse.Options{}); err == nil || !strings.Contains(err.Error(), "source density") {
		t.Errorf("axi assembly accepted NaN source: %v", err)
	}
	x, _ := mesh.Uniform(0, 1e-4, 3)
	cart := &CartProblem{
		XEdges: x, YEdges: append([]float64(nil), x...), ZEdges: z,
		K:      func(_, _, _ float64) float64 { return 100 },
		Q:      func(_, _, _ float64) float64 { return math.Inf(1) },
		Bottom: Fixed(0), Top: Insulated(),
	}
	if _, err := SolveCart(cart, sparse.Options{}); err == nil || !strings.Contains(err.Error(), "source density") {
		t.Errorf("cart assembly accepted Inf source: %v", err)
	}
}

// Regression: SolveAxiTransient used to discard the per-step CG statistics.
func TestTransientAccumulatesStats(t *testing.T) {
	r, _ := mesh.Uniform(0, 1e-4, 3)
	z, _ := mesh.Uniform(0, 1e-3, 20)
	p := &AxiProblem{
		REdges: r, ZEdges: z,
		K:      func(_, _ float64) float64 { return 10 },
		Cap:    func(_, _ float64) float64 { return 2e6 },
		Q:      func(_, _ float64) float64 { return 1e7 },
		Bottom: Fixed(0), Top: Insulated(), Outer: Insulated(),
	}
	const steps = 5
	tr, err := SolveAxiTransient(p, 1e-3, steps, sparse.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Iterations < steps {
		t.Errorf("aggregated iterations %d over %d steps", tr.Stats.Iterations, steps)
	}
	if tr.Stats.Wall <= 0 {
		t.Errorf("aggregated wall time %v not populated", tr.Stats.Wall)
	}
	if tr.Stats.Precond == sparse.PrecondDefault {
		t.Errorf("preconditioner not resolved: %+v", tr.Stats)
	}
	if tr.Final.Stats != tr.Stats {
		t.Errorf("Final.Stats %+v differs from aggregate %+v", tr.Final.Stats, tr.Stats)
	}
}

// Property: on the repository's real FVM systems — axisymmetric and 3-D
// Cartesian — the parallel CG solve is bit-identical to the sequential one
// for any worker count when the preconditioner is pinned.
func TestSolveCGWorkersBitIdenticalOnFEMSystems(t *testing.T) {
	s, err := fig4At(10)
	if err != nil {
		t.Fatal(err)
	}
	axiProb, err := BuildAxiProblem(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	axiSys, err := assembleAxi(axiProb)
	if err != nil {
		t.Fatal(err)
	}
	cartProb, err := BuildCartProblem(s, CartResolution{
		LateralVia: 4, LateralLiner: 1, LateralOuter: 4, AxialPerLayer: 2, AxialMin: 1, Bulk: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cartSys, err := assembleCart(cartProb)
	if err != nil {
		t.Fatal(err)
	}
	systems := []struct {
		name   string
		matrix *sparse.CSR
		rhs    []float64
	}{
		{"axi", axiSys.matrix, axiSys.rhs},
		{"cart3d", cartSys.matrix, cartSys.rhs},
	}
	for _, sys := range systems {
		for _, pc := range []sparse.PrecondKind{sparse.PrecondJacobi, sparse.PrecondChebyshev} {
			opt := sparse.Options{Tol: 1e-10, MaxIter: 100000, Precond: pc}
			opt.Workers = 1
			seq, _, err := sparse.SolveCG(sys.matrix, sys.rhs, opt)
			if err != nil {
				t.Fatalf("%s/%v sequential: %v", sys.name, pc, err)
			}
			for _, w := range []int{2, 4, 8} {
				opt.Workers = w
				par, _, err := sparse.SolveCG(sys.matrix, sys.rhs, opt)
				if err != nil {
					t.Fatalf("%s/%v workers=%d: %v", sys.name, pc, w, err)
				}
				for i := range seq {
					if par[i] != seq[i] {
						t.Fatalf("%s/%v workers=%d: x[%d] = %x, want %x",
							sys.name, pc, w, i, math.Float64bits(par[i]), math.Float64bits(seq[i]))
					}
				}
			}
		}
	}
}

// The full stack solve must produce the same field with Workers set once the
// preconditioner is pinned, and the default parallel path must still converge
// to the same answer within tolerance.
func TestSolveStackWithWorkers(t *testing.T) {
	s, err := fig4At(10)
	if err != nil {
		t.Fatal(err)
	}
	res := coarse()
	seq, err := SolveStack(s, res)
	if err != nil {
		t.Fatal(err)
	}
	res.Workers = 4
	par, err := SolveStack(s, res)
	if err != nil {
		t.Fatal(err)
	}
	if par.Stats.Workers != 4 {
		t.Errorf("parallel solve reports %d workers", par.Stats.Workers)
	}
	if par.Stats.Precond != sparse.PrecondChebyshev {
		t.Errorf("parallel default precond %v, want chebyshev", par.Stats.Precond)
	}
	if seq.Stats.Precond != sparse.PrecondSSOR {
		t.Errorf("sequential default precond %v, want ssor", seq.Stats.Precond)
	}
	maxSeq, _, _ := seq.MaxT()
	maxPar, _, _ := par.MaxT()
	if d := math.Abs(maxSeq-maxPar) / maxSeq; d > 1e-7 {
		t.Errorf("worker solve ΔT %g differs from sequential %g (rel %g)", maxPar, maxSeq, d)
	}
}

func TestSolveStackCtxCancelled(t *testing.T) {
	s, err := fig4At(10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveStackCtx(ctx, s, coarse()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A Workers-only Resolution keeps the default mesh.
func TestReferenceModelWorkersOnlyResolution(t *testing.T) {
	m := ReferenceModel{Res: Resolution{Workers: 3}}
	got := m.resolution()
	want := DefaultResolution()
	want.Workers = 3
	if got != want {
		t.Errorf("resolution() = %+v, want %+v", got, want)
	}
	if r := (ReferenceModel{}).resolution(); r != DefaultResolution() {
		t.Errorf("zero model resolution = %+v", r)
	}
}
