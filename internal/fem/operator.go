package fem

import (
	"fmt"

	"repro/internal/mg"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// OperatorKind selects the matrix representation a solve hands to the
// iterative solver: the assembled CSR, or the matrix-free structured-grid
// stencil extracted from it (sparse.Stencil — same values, a third of the
// memory traffic per matvec). The two evaluate bit-identically, so the
// choice changes wall time and bytes moved, never results.
type OperatorKind int

const (
	// OperatorAuto picks the stencil whenever the solve can run matrix-free:
	// every preconditioner except SSOR (whose triangular sweeps need the
	// assembled triangles) and every structured grid this package emits
	// qualifies. Falls back to the CSR otherwise.
	OperatorAuto OperatorKind = iota
	// OperatorCSR forces the assembled CSR.
	OperatorCSR
	// OperatorStencil forces the matrix-free stencil and fails the solve
	// when it cannot be used (SSOR preconditioning, or a matrix that is not
	// a full structured-grid stencil).
	OperatorStencil
)

// String returns the parseable name of the kind.
func (k OperatorKind) String() string {
	switch k {
	case OperatorCSR:
		return "csr"
	case OperatorStencil:
		return "stencil"
	default:
		return "auto"
	}
}

// ParseOperator maps a CLI/deck operator name to its kind. The empty string
// and "auto" select OperatorAuto.
func ParseOperator(s string) (OperatorKind, error) {
	switch s {
	case "", "auto":
		return OperatorAuto, nil
	case "csr":
		return OperatorCSR, nil
	case "stencil", "matfree":
		return OperatorStencil, nil
	default:
		return OperatorAuto, fmt.Errorf("fem: unknown operator %q (want auto, csr or stencil)", s)
	}
}

// stencilFor returns the pattern's matrix-free stencil view, building it on
// first use and refreshing its coefficient arrays after any numeric refill.
// The construction error is sticky: a matrix that is not a structured-grid
// stencil stays that way across refills (the sparsity pattern is fixed), so
// the probe runs once per pattern, not once per solve.
func (pat *pattern) stencilFor(dims []int) (*sparse.Stencil, error) {
	if pat.stencil == nil && pat.stencilErr == nil {
		pat.stencil, pat.stencilErr = sparse.NewStencil(pat.matrix, dims)
		pat.stencilDirty = false
		if pat.stencilErr != nil {
			obs.Default().Counter("fem.operator.stencil.unavailable").Inc()
		}
	}
	if pat.stencilErr != nil {
		return nil, pat.stencilErr
	}
	if pat.stencilDirty {
		if err := pat.stencil.Refresh(); err != nil {
			return nil, err
		}
		pat.stencilDirty = false
	}
	return pat.stencil, nil
}

// setMGAttrs records the multigrid construction a solve actually uses —
// after cache reuse and any geometric-build fallback — on its root span:
// fem.mg.hierarchy (galerkin|geometric) and fem.mg.precision (f64|f32).
// Solves that resolved to a single-level preconditioner record nothing.
func setMGAttrs(sp *obs.Span, o sparse.Options) {
	h, ok := o.MG.(*mg.Hierarchy)
	if !ok {
		return
	}
	hier, prec := mg.HierarchyGalerkin, mg.PrecisionF64
	if h.Geometric() {
		hier = mg.HierarchyGeometric
	}
	if h.MixedPrecision() {
		prec = mg.PrecisionF32
	}
	sp.Set("fem.mg.hierarchy", hier.String())
	sp.Set("fem.mg.precision", prec.String())
}

// operatorFor resolves the operator a solve runs on, given the fully
// resolved solver options (the preconditioner decides matrix-free
// eligibility). It returns the operator plus its name for the fem.operator
// span attribute. A forced OperatorStencil that cannot be honored is an
// error; OperatorAuto degrades to the CSR silently.
func operatorFor(kind OperatorKind, pat *pattern, dims []int, o sparse.Options) (sparse.Operator, string, error) {
	csr := func() (sparse.Operator, string, error) {
		// A hierarchy cached across solves keeps the last fine operator set;
		// a CSR solve must clear it, not inherit it.
		if h, ok := o.MG.(*mg.Hierarchy); ok {
			h.SetFineOperator(nil)
		}
		return pat.matrix, "csr", nil
	}
	if kind == OperatorCSR {
		return csr()
	}
	if o.Precond == sparse.PrecondSSOR {
		if kind == OperatorStencil {
			return nil, "", fmt.Errorf("fem: the ssor preconditioner cannot run matrix-free; choose another preconditioner or the csr operator")
		}
		return csr()
	}
	st, err := pat.stencilFor(dims)
	if err != nil {
		if kind == OperatorStencil {
			return nil, "", fmt.Errorf("fem: matrix-free operator unavailable: %w", err)
		}
		return csr()
	}
	// A multigrid preconditioner built from the assembled CSR runs its
	// fine-level smoothing and residuals through the same stencil; the
	// coarse Galerkin levels keep their CSRs.
	if h, ok := o.MG.(*mg.Hierarchy); ok {
		h.SetFineOperator(st)
	}
	return st, "stencil", nil
}
