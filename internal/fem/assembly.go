package fem

// Symbolic/numeric assembly split.
//
// The finite-volume discretizations in this package emit their matrix
// coefficients in a fixed cell order that depends only on the mesh topology
// and the boundary-condition kinds — never on the coefficient values. That
// makes the expensive half of assembly (building the CSR sparsity pattern:
// sorting the emission stream, merging duplicates, allocating the index
// arrays) a pure function of an asmKey, reusable across every solve of a
// parameter sweep. The cheap half (the numbers) is a zero + scatter-add
// through a precomputed slot map.
//
// Both halves run the same emission loop, and duplicate emissions are summed
// in emission order in both the first fill and every refill, so a system
// assembled through a cached pattern is bit-identical to one assembled from
// scratch: reuse changes where the arrays come from, never what is in them.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// asmKey identifies an assembly pattern: everything the sparsity structure
// and emission order depend on. The coefficient fields of a problem (K, Q,
// boundary temperatures) change the numbers, never the structure, so any two
// problems with equal keys share a pattern.
type asmKey struct {
	kind               byte // 'a' axisymmetric, 'c' Cartesian
	d0, d1, d2         int  // cells per axis (d2 is 0 for axisymmetric)
	bottom, top, outer BCKind
	aniso              bool // Cartesian: distinct vertical-conductivity buffer
}

// pattern is the symbolic half of an assembled system plus the buffers the
// numeric half refills in place: the CSR index arrays are built once per
// key, and slots maps every coefficient emission — in emission order — to
// its CSR value slot.
type pattern struct {
	key    asmKey
	n      int
	slots  []int32
	matrix *sparse.CSR
	val    []float64 // the matrix's value array (adopted by NewCSRFromSorted)
	rhs    []float64
	vol    []float64 // axisymmetric: cell volumes
	k      []float64 // cell conductivities, row-major like the unknowns
	kz     []float64 // Cartesian: vertical conductivities (aliases k when isotropic)

	// Matrix-free view of matrix, built lazily by stencilFor and refreshed
	// after refills; stencilErr is the sticky probe failure and stencilDirty
	// marks the coefficient arrays stale relative to val.
	stencil      *sparse.Stencil
	stencilErr   error
	stencilDirty bool
}

// finishSymbolic turns a recorded emission stream into the CSR pattern, slot
// map and first numeric fill. Duplicate (r, c) emissions share a slot and
// are summed in emission order — the order every refill also uses.
func (pat *pattern) finishSymbolic(rs, cs []int32, vs []float64) error {
	nEmit := len(rs)
	perm := make([]int32, nEmit)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(x, y int) bool {
		a, b := perm[x], perm[y]
		if rs[a] != rs[b] {
			return rs[a] < rs[b]
		}
		return cs[a] < cs[b]
	})
	slots := make([]int32, nEmit)
	rowPtr := make([]int, pat.n+1)
	colIdx := make([]int, 0, nEmit)
	prevR, prevC := int32(-1), int32(-1)
	nnz := 0
	for _, p := range perm {
		if rs[p] != prevR || cs[p] != prevC {
			prevR, prevC = rs[p], cs[p]
			colIdx = append(colIdx, int(prevC))
			rowPtr[prevR+1]++
			nnz++
		}
		slots[p] = int32(nnz - 1)
	}
	for i := 0; i < pat.n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	pat.slots = slots
	pat.val = make([]float64, nnz)
	for t, s := range slots {
		pat.val[s] += vs[t]
	}
	m, err := sparse.NewCSRFromSorted(pat.n, pat.n, rowPtr, colIdx, pat.val)
	if err != nil {
		return fmt.Errorf("fem: internal: assembled pattern invalid: %w", err)
	}
	pat.matrix = m
	return nil
}

// refillInto prepares a cached pattern for a numeric pass and returns the
// scatter-add emission sink. The returned done must be called after the
// emission loop: it verifies the loop emitted exactly as many coefficients
// as the symbolic pass recorded (the structural invariant behind reuse).
func (pat *pattern) refillInto() (add func(r, c int, v float64), done func() error) {
	clear(pat.val)
	clear(pat.rhs)
	pat.stencilDirty = true
	t := 0
	slots, val := pat.slots, pat.val
	add = func(_, _ int, v float64) {
		val[slots[t]] += v
		t++
	}
	done = func() error {
		if t != len(slots) {
			return fmt.Errorf("fem: internal: cached pattern saw %d emissions, expected %d", t, len(slots))
		}
		return nil
	}
	return add, done
}

// --- axisymmetric -----------------------------------------------------------

func axiKey(nr, nz int, p *AxiProblem) asmKey {
	return asmKey{kind: 'a', d0: nr, d1: nz, bottom: p.Bottom.Kind, top: p.Top.Kind, outer: p.Outer.Kind}
}

// fillAxiK samples and validates the cell conductivities into k[j*nr+i].
func fillAxiK(p *AxiProblem, nr, nz int, rc, zc, k []float64) error {
	for j := 0; j < nz; j++ {
		for i := 0; i < nr; i++ {
			v := p.K(rc[i], zc[j])
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("fem: conductivity %g at (r=%g, z=%g) must be positive and finite", v, rc[i], zc[j])
			}
			k[j*nr+i] = v
		}
	}
	return nil
}

// axiEmit walks the axisymmetric finite-volume discretization in a fixed
// cell order, reporting every matrix coefficient through add and writing the
// right-hand side and cell volumes directly. The symbolic recording pass and
// every numeric refill run this same loop.
func axiEmit(p *AxiProblem, nr, nz int, rc, zc, k []float64, add func(r, c int, v float64), rhs, vol []float64) error {
	idx := func(i, j int) int { return j*nr + i }
	// faceG computes the conductance between two cell centers through a
	// shared face of area a, with center-to-face distances d1, d2 and
	// conductivities k1, k2 (series/harmonic combination).
	faceG := func(a, d1, k1, d2, k2 float64) float64 {
		return a / (d1/k1 + d2/k2)
	}
	for j := 0; j < nz; j++ {
		zs, zn := p.ZEdges[j], p.ZEdges[j+1]
		dz := zn - zs
		for i := 0; i < nr; i++ {
			rw, re := p.REdges[i], p.REdges[i+1]
			ring := math.Pi * (re*re - rw*rw) // axial face area
			row := idx(i, j)
			kc := k[j*nr+i]
			vol[row] = ring * dz

			// Volumetric source. Negative densities (cooling) are legal;
			// non-finite values mean the problem definition is broken (e.g.
			// a source closure evaluated outside its layer table).
			if p.Q != nil {
				qv := p.Q(rc[i], zc[j])
				if math.IsNaN(qv) || math.IsInf(qv, 0) {
					return fmt.Errorf("fem: source density %g at (r=%g, z=%g) must be finite", qv, rc[i], zc[j])
				}
				rhs[row] += qv * vol[row]
			}

			// East neighbor (radial outward).
			if i+1 < nr {
				a := 2 * math.Pi * re * dz
				g := faceG(a, re-rc[i], kc, rc[i+1]-re, k[j*nr+i+1])
				add(row, row, g)
				add(row, idx(i+1, j), -g)
				add(idx(i+1, j), idx(i+1, j), g)
				add(idx(i+1, j), row, -g)
			} else if p.Outer.Kind == Dirichlet {
				a := 2 * math.Pi * re * dz
				g := a * kc / (re - rc[i])
				add(row, row, g)
				rhs[row] += g * p.Outer.Temp
			}
			// West face: interior handled by the east sweep of cell i-1; the
			// axis (i == 0) is a natural symmetry boundary with zero area
			// contribution beyond r = 0, i.e. adiabatic.

			// North neighbor (axial upward).
			if j+1 < nz {
				g := faceG(ring, zn-zc[j], kc, zc[j+1]-zn, k[(j+1)*nr+i])
				add(row, row, g)
				add(row, idx(i, j+1), -g)
				add(idx(i, j+1), idx(i, j+1), g)
				add(idx(i, j+1), row, -g)
			} else if p.Top.Kind == Dirichlet {
				g := ring * kc / (zn - zc[j])
				add(row, row, g)
				rhs[row] += g * p.Top.Temp
			}

			// South boundary.
			if j == 0 && p.Bottom.Kind == Dirichlet {
				g := ring * kc / (zc[j] - zs)
				add(row, row, g)
				rhs[row] += g * p.Bottom.Temp
			}
		}
	}
	return nil
}

// newAxiPattern runs the symbolic pass: record the emission stream, build
// the CSR pattern and slot map, and perform the first numeric fill.
func newAxiPattern(p *AxiProblem, key asmKey, nr, nz int, rc, zc []float64) (*pattern, error) {
	n := nr * nz
	pat := &pattern{
		key: key, n: n,
		rhs: make([]float64, n),
		vol: make([]float64, n),
		k:   make([]float64, n),
	}
	if err := fillAxiK(p, nr, nz, rc, zc, pat.k); err != nil {
		return nil, err
	}
	// Interior cells emit 8 coefficients (east + north stencils), Dirichlet
	// boundaries one more each: 9n never reallocates.
	est := 9 * n
	rs := make([]int32, 0, est)
	cs := make([]int32, 0, est)
	vs := make([]float64, 0, est)
	record := func(r, c int, v float64) {
		rs = append(rs, int32(r))
		cs = append(cs, int32(c))
		vs = append(vs, v)
	}
	if err := axiEmit(p, nr, nz, rc, zc, pat.k, record, pat.rhs, pat.vol); err != nil {
		return nil, err
	}
	if err := pat.finishSymbolic(rs, cs, vs); err != nil {
		return nil, err
	}
	return pat, nil
}

// refillAxi re-runs the numeric pass of a cached pattern for a new problem
// with the same key: resample conductivities, zero, scatter-add.
func (pat *pattern) refillAxi(p *AxiProblem, nr, nz int, rc, zc []float64) error {
	if err := fillAxiK(p, nr, nz, rc, zc, pat.k); err != nil {
		return err
	}
	add, done := pat.refillInto()
	if err := axiEmit(p, nr, nz, rc, zc, pat.k, add, pat.rhs, pat.vol); err != nil {
		return err
	}
	return done()
}

// assembleAxiWith discretizes the problem, reusing a cached assembly pattern
// from sc when one matches. With a nil (or reuse-disabled) context it builds
// a throwaway pattern through the same two-pass machinery, so the assembled
// system is bit-identical either way.
func assembleAxiWith(ctx context.Context, sc *SolveContext, p *AxiProblem) (*axiSystem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nr := len(p.REdges) - 1
	nz := len(p.ZEdges) - 1
	rc := mesh.Centers(p.REdges)
	zc := mesh.Centers(p.ZEdges)
	key := axiKey(nr, nz, p)
	if pat := sc.pattern(key); pat != nil {
		_, sp := obs.StartSpan(ctx, "fem.assemble.numeric")
		err := pat.refillAxi(p, nr, nz, rc, zc)
		sp.End()
		if err != nil {
			return nil, err
		}
		return axiSystemFrom(pat, nr, nz, rc, zc), nil
	}
	_, sp := obs.StartSpan(ctx, "fem.assemble.symbolic")
	pat, err := newAxiPattern(p, key, nr, nz, rc, zc)
	sp.End()
	if err != nil {
		return nil, err
	}
	sc.storePattern(pat)
	return axiSystemFrom(pat, nr, nz, rc, zc), nil
}

func axiSystemFrom(pat *pattern, nr, nz int, rc, zc []float64) *axiSystem {
	return &axiSystem{
		nr: nr, nz: nz, rc: rc, zc: zc,
		matrix: pat.matrix, rhs: pat.rhs, volumes: pat.vol,
		// Unknown index = iz·nr + ir: the radial axis varies fastest.
		grid: solverGrid{dims: []int{nr, nz}},
		key:  pat.key,
		pat:  pat,
	}
}

// --- Cartesian --------------------------------------------------------------

func cartKey(nx, ny, nz int, p *CartProblem) asmKey {
	return asmKey{kind: 'c', d0: nx, d1: ny, d2: nz, bottom: p.Bottom.Kind, top: p.Top.Kind, aniso: p.KZ != nil}
}

// fillCartK samples and validates the cell conductivities (and, for an
// anisotropic medium, the vertical conductivities) into k and kz.
func fillCartK(p *CartProblem, nx, ny, nz int, xc, yc, zc, k, kz []float64) error {
	idx := func(i, j, l int) int { return (l*ny+j)*nx + i }
	for l := 0; l < nz; l++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				v := p.K(xc[i], yc[j], zc[l])
				if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("fem: conductivity %g at (%g, %g, %g)", v, xc[i], yc[j], zc[l])
				}
				k[idx(i, j, l)] = v
				if p.KZ != nil {
					vz := p.KZ(xc[i], yc[j], zc[l])
					if vz <= 0 || math.IsNaN(vz) || math.IsInf(vz, 0) {
						return fmt.Errorf("fem: vertical conductivity %g at (%g, %g, %g)", vz, xc[i], yc[j], zc[l])
					}
					kz[idx(i, j, l)] = vz
				}
			}
		}
	}
	return nil
}

// cartEmit walks the 3-D Cartesian finite-volume discretization in a fixed
// cell order; see axiEmit for the pass contract.
func cartEmit(p *CartProblem, nx, ny, nz int, xc, yc, zc, k, kz []float64, add func(r, c int, v float64), rhs []float64) error {
	idx := func(i, j, l int) int { return (l*ny+j)*nx + i }
	for l := 0; l < nz; l++ {
		dz := p.ZEdges[l+1] - p.ZEdges[l]
		for j := 0; j < ny; j++ {
			dy := p.YEdges[j+1] - p.YEdges[j]
			for i := 0; i < nx; i++ {
				dx := p.XEdges[i+1] - p.XEdges[i]
				row := idx(i, j, l)
				kc := k[row]
				if p.Q != nil {
					qv := p.Q(xc[i], yc[j], zc[l])
					if math.IsNaN(qv) || math.IsInf(qv, 0) {
						return fmt.Errorf("fem: source density %g at (%g, %g, %g) must be finite", qv, xc[i], yc[j], zc[l])
					}
					rhs[row] += qv * dx * dy * dz
				}
				// +x neighbor.
				if i+1 < nx {
					a := dy * dz
					g := a / ((p.XEdges[i+1]-xc[i])/kc + (xc[i+1]-p.XEdges[i+1])/k[idx(i+1, j, l)])
					nb := idx(i+1, j, l)
					add(row, row, g)
					add(row, nb, -g)
					add(nb, nb, g)
					add(nb, row, -g)
				}
				// +y neighbor.
				if j+1 < ny {
					a := dx * dz
					g := a / ((p.YEdges[j+1]-yc[j])/kc + (yc[j+1]-p.YEdges[j+1])/k[idx(i, j+1, l)])
					nb := idx(i, j+1, l)
					add(row, row, g)
					add(row, nb, -g)
					add(nb, nb, g)
					add(nb, row, -g)
				}
				// +z neighbor (vertical conductivity).
				kcz := kz[row]
				if l+1 < nz {
					a := dx * dy
					g := a / ((p.ZEdges[l+1]-zc[l])/kcz + (zc[l+1]-p.ZEdges[l+1])/kz[idx(i, j, l+1)])
					nb := idx(i, j, l+1)
					add(row, row, g)
					add(row, nb, -g)
					add(nb, nb, g)
					add(nb, row, -g)
				} else if p.Top.Kind == Dirichlet {
					g := dx * dy * kcz / (p.ZEdges[nz] - zc[l])
					add(row, row, g)
					rhs[row] += g * p.Top.Temp
				}
				if l == 0 && p.Bottom.Kind == Dirichlet {
					g := dx * dy * kcz / (zc[0] - p.ZEdges[0])
					add(row, row, g)
					rhs[row] += g * p.Bottom.Temp
				}
			}
		}
	}
	return nil
}

// newCartPattern runs the symbolic pass for a Cartesian problem.
func newCartPattern(p *CartProblem, key asmKey, nx, ny, nz int, xc, yc, zc []float64) (*pattern, error) {
	n := nx * ny * nz
	pat := &pattern{
		key: key, n: n,
		rhs: make([]float64, n),
		k:   make([]float64, n),
	}
	pat.kz = pat.k
	if key.aniso {
		pat.kz = make([]float64, n)
	}
	if err := fillCartK(p, nx, ny, nz, xc, yc, zc, pat.k, pat.kz); err != nil {
		return nil, err
	}
	// Interior cells emit 12 coefficients (three neighbor stencils of 4);
	// 13n covers the Dirichlet extremes without reallocating.
	est := 13 * n
	rs := make([]int32, 0, est)
	cs := make([]int32, 0, est)
	vs := make([]float64, 0, est)
	record := func(r, c int, v float64) {
		rs = append(rs, int32(r))
		cs = append(cs, int32(c))
		vs = append(vs, v)
	}
	if err := cartEmit(p, nx, ny, nz, xc, yc, zc, pat.k, pat.kz, record, pat.rhs); err != nil {
		return nil, err
	}
	if err := pat.finishSymbolic(rs, cs, vs); err != nil {
		return nil, err
	}
	return pat, nil
}

func (pat *pattern) refillCart(p *CartProblem, nx, ny, nz int, xc, yc, zc []float64) error {
	if err := fillCartK(p, nx, ny, nz, xc, yc, zc, pat.k, pat.kz); err != nil {
		return err
	}
	add, done := pat.refillInto()
	if err := cartEmit(p, nx, ny, nz, xc, yc, zc, pat.k, pat.kz, add, pat.rhs); err != nil {
		return err
	}
	return done()
}

// assembleCartWith is assembleAxiWith for the 3-D Cartesian solver.
func assembleCartWith(ctx context.Context, sc *SolveContext, p *CartProblem) (*cartSystem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nx := len(p.XEdges) - 1
	ny := len(p.YEdges) - 1
	nz := len(p.ZEdges) - 1
	xc := mesh.Centers(p.XEdges)
	yc := mesh.Centers(p.YEdges)
	zc := mesh.Centers(p.ZEdges)
	key := cartKey(nx, ny, nz, p)
	if pat := sc.pattern(key); pat != nil {
		_, sp := obs.StartSpan(ctx, "fem.assemble.numeric")
		err := pat.refillCart(p, nx, ny, nz, xc, yc, zc)
		sp.End()
		if err != nil {
			return nil, err
		}
		return cartSystemFrom(pat, nx, ny, nz, xc, yc, zc), nil
	}
	_, sp := obs.StartSpan(ctx, "fem.assemble.symbolic")
	pat, err := newCartPattern(p, key, nx, ny, nz, xc, yc, zc)
	sp.End()
	if err != nil {
		return nil, err
	}
	sc.storePattern(pat)
	return cartSystemFrom(pat, nx, ny, nz, xc, yc, zc), nil
}

func cartSystemFrom(pat *pattern, nx, ny, nz int, xc, yc, zc []float64) *cartSystem {
	return &cartSystem{
		nx: nx, ny: ny, nz: nz, xc: xc, yc: yc, zc: zc,
		matrix: pat.matrix, rhs: pat.rhs,
		// Unknown index = (iz·ny + iy)·nx + ix: x varies fastest, then y, z.
		grid: solverGrid{dims: []int{nx, ny, nz}},
		key:  pat.key,
		pat:  pat,
	}
}
