package fem

import (
	"context"
	"fmt"
	"math"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// AxiProblem is a steady heat-conduction problem on an axisymmetric (r, z)
// structured mesh. The axis r = 0 is always a symmetry (zero-flux) boundary.
type AxiProblem struct {
	// REdges and ZEdges are the strictly increasing cell edge coordinates.
	// REdges[0] must be 0 (the symmetry axis).
	REdges, ZEdges []float64
	// K returns the thermal conductivity (W/m·K) at a cell center.
	K func(r, z float64) float64
	// Q returns the volumetric heat source (W/m³) at a cell center; may be
	// nil for a source-free problem.
	Q func(r, z float64) float64
	// Cap returns the volumetric heat capacity (J/m³·K) at a cell center.
	// It is only consulted by SolveAxiTransient and may be nil otherwise.
	Cap func(r, z float64) float64
	// Bottom, Top and Outer are the boundary conditions at z = ZEdges[0],
	// z = ZEdges[end] and r = REdges[end]. At least one must be Dirichlet.
	Bottom, Top, Outer BC
}

// AxiSolution is a solved axisymmetric temperature field.
type AxiSolution struct {
	p *AxiProblem
	// T holds cell-center temperatures indexed [iz][ir].
	T [][]float64
	// RCenters and ZCenters are the cell center coordinates.
	RCenters, ZCenters []float64
	// Stats reports the linear solve.
	Stats sparse.Stats
}

// Validate checks the problem definition.
func (p *AxiProblem) Validate() error {
	if err := mesh.Validate(p.REdges); err != nil {
		return fmt.Errorf("fem: r edges: %w", err)
	}
	if err := mesh.Validate(p.ZEdges); err != nil {
		return fmt.Errorf("fem: z edges: %w", err)
	}
	if p.REdges[0] != 0 {
		return fmt.Errorf("fem: axisymmetric mesh must start at the axis r = 0, got %g", p.REdges[0])
	}
	if p.K == nil {
		return fmt.Errorf("fem: conductivity function K is nil")
	}
	if p.Bottom.Kind != Dirichlet && p.Top.Kind != Dirichlet && p.Outer.Kind != Dirichlet {
		return fmt.Errorf("fem: at least one boundary must be Dirichlet (temperature would be undefined)")
	}
	return nil
}

// axiSystem is the assembled finite-volume system of an AxiProblem.
type axiSystem struct {
	nr, nz  int
	rc, zc  []float64
	matrix  *sparse.CSR
	rhs     []float64
	volumes []float64 // cell volumes, row-major like the unknowns
	grid    solverGrid
	key     asmKey
	pat     *pattern // the owning pattern, for the matrix-free stencil view
}

// assembleAxi discretizes the problem without a reuse context; shared by the
// transient solver and tests. The discretization itself lives in assembly.go
// (axiEmit), shared with the pattern-cached path.
func assembleAxi(p *AxiProblem) (*axiSystem, error) {
	return assembleAxiWith(context.Background(), nil, p)
}

// solveDefaults fills in the solver settings this package uses: tight
// tolerance, preconditioner auto-selection (multigrid above the size
// threshold, served from sc's hierarchy cache when possible), and a MaxIter
// budget scaled to the preconditioner class.
func solveDefaults(sc *SolveContext, opt sparse.Options, sys *axiSystem, sel mgSelect) sparse.Options {
	if opt.Tol == 0 {
		opt.Tol = 1e-10
	}
	return resolveSolverWith(sc, sys.key, opt, sys.matrix, sys.grid, sel)
}

// fieldFrom reshapes a flat unknown vector into the [iz][ir] grid. All rows
// share one backing array, so the reshape costs two allocations instead of
// one per z-plane.
func (sys *axiSystem) fieldFrom(x []float64) [][]float64 {
	t := make([][]float64, sys.nz)
	backing := make([]float64, sys.nz*sys.nr)
	copy(backing, x)
	for j := 0; j < sys.nz; j++ {
		t[j] = backing[j*sys.nr : (j+1)*sys.nr : (j+1)*sys.nr]
	}
	return t
}

// SolveAxi assembles and solves the finite-volume system. The zero Options
// value selects defaults appropriate for the meshes in this repository.
func SolveAxi(p *AxiProblem, opt sparse.Options) (*AxiSolution, error) {
	return SolveAxiCtx(context.Background(), p, opt)
}

// SolveAxiCtx is SolveAxi honoring cancellation: the conjugate-gradient
// iteration checks ctx between iterations, so a cancelled caller (e.g. an
// aborted sweep) does not run an in-flight solve to completion.
//
// When ctx carries an obs.Tracer the solve emits a "fem.solve" span with
// "fem.assemble" and "fem.precond" children; the CG iteration's "sparse.cg"
// span nests under "fem.solve", giving the assembly → preconditioner → CG
// chain in the trace.
func SolveAxiCtx(ctx context.Context, p *AxiProblem, opt sparse.Options) (*AxiSolution, error) {
	return SolveAxiWith(ctx, nil, p, opt)
}

// SolveAxiWith is SolveAxiCtx solving through a reuse context: assembly
// patterns, multigrid hierarchies and kernel pools cached in sc are
// recycled, and with sc.WarmStart the CG iteration starts from the previous
// solution of the same system shape. A nil sc (or sc.NoReuse) makes every
// solve fresh; the results are bit-identical either way (warm starts aside).
func SolveAxiWith(ctx context.Context, sc *SolveContext, p *AxiProblem, opt sparse.Options) (*AxiSolution, error) {
	return solveAxiWith(ctx, sc, p, opt, OperatorAuto, mgSelect{})
}

// solveAxiWith is SolveAxiWith with explicit operator and multigrid
// selections (see OperatorKind, mgSelect); the stack-level entry points
// thread Resolution.Operator/Hierarchy/Precision through here.
func solveAxiWith(ctx context.Context, sc *SolveContext, p *AxiProblem, opt sparse.Options, opk OperatorKind, sel mgSelect) (*AxiSolution, error) {
	ctx, root := obs.StartSpan(ctx, "fem.solve")
	defer root.End()
	asmCtx, asp := obs.StartSpan(ctx, "fem.assemble")
	sys, err := assembleAxiWith(asmCtx, sc, p)
	asp.End()
	if err != nil {
		root.Set("error", err.Error())
		return nil, err
	}
	root.Set("unknowns", len(sys.rhs))
	_, psp := obs.StartSpan(ctx, "fem.precond")
	o := solveDefaults(sc, opt, sys, sel)
	if psp != nil {
		psp.Set("precond", o.Precond.String())
		psp.End()
	}
	setMGAttrs(root, o)
	op, opName, err := operatorFor(opk, sys.pat, sys.grid.dims, o)
	if err != nil {
		root.Set("error", err.Error())
		return nil, err
	}
	root.Set("fem.operator", opName)
	if o.Pool == nil {
		o.Pool = sc.poolFor(o.Workers)
	}
	if o.X0 == nil {
		o.X0 = sc.warmX0(sys.key, len(sys.rhs))
	}
	x, st, err := sparse.SolveCGCtx(ctx, op, sys.rhs, o)
	if err != nil {
		root.Set("error", err.Error())
		return nil, solveErr("axisymmetric solve", len(sys.rhs), st, err)
	}
	sc.storeWarm(sys.key, x)
	return &AxiSolution{p: p, RCenters: sys.rc, ZCenters: sys.zc, Stats: st, T: sys.fieldFrom(x)}, nil
}

// MaxT returns the maximum cell temperature and its location.
func (s *AxiSolution) MaxT() (tmax, r, z float64) {
	tmax = math.Inf(-1)
	for j := range s.T {
		for i, t := range s.T[j] {
			if t > tmax {
				tmax, r, z = t, s.RCenters[i], s.ZCenters[j]
			}
		}
	}
	return tmax, r, z
}

// At returns the temperature of the cell containing (r, z).
func (s *AxiSolution) At(r, z float64) (float64, error) {
	i := mesh.Locate(s.p.REdges, r)
	j := mesh.Locate(s.p.ZEdges, z)
	if i < 0 || j < 0 {
		return 0, fmt.Errorf("fem: point (r=%g, z=%g) outside mesh", r, z)
	}
	return s.T[j][i], nil
}

// TotalSource integrates the volumetric source over the mesh (W).
func (s *AxiSolution) TotalSource() float64 {
	if s.p.Q == nil {
		return 0
	}
	var q float64
	for j := range s.T {
		dz := s.p.ZEdges[j+1] - s.p.ZEdges[j]
		for i := range s.T[j] {
			rw, re := s.p.REdges[i], s.p.REdges[i+1]
			q += s.p.Q(s.RCenters[i], s.ZCenters[j]) * math.Pi * (re*re - rw*rw) * dz
		}
	}
	return q
}

// BoundaryOutflow integrates the conductive heat flow leaving the domain
// through the Dirichlet boundaries (W). For a converged solution it matches
// TotalSource.
func (s *AxiSolution) BoundaryOutflow() float64 {
	p := s.p
	nr := len(p.REdges) - 1
	nz := len(p.ZEdges) - 1
	var out float64
	if p.Bottom.Kind == Dirichlet {
		for i := 0; i < nr; i++ {
			rw, re := p.REdges[i], p.REdges[i+1]
			a := math.Pi * (re*re - rw*rw)
			kc := p.K(s.RCenters[i], s.ZCenters[0])
			g := a * kc / (s.ZCenters[0] - p.ZEdges[0])
			out += g * (s.T[0][i] - p.Bottom.Temp)
		}
	}
	if p.Top.Kind == Dirichlet {
		for i := 0; i < nr; i++ {
			rw, re := p.REdges[i], p.REdges[i+1]
			a := math.Pi * (re*re - rw*rw)
			kc := p.K(s.RCenters[i], s.ZCenters[nz-1])
			g := a * kc / (p.ZEdges[nz] - s.ZCenters[nz-1])
			out += g * (s.T[nz-1][i] - p.Top.Temp)
		}
	}
	if p.Outer.Kind == Dirichlet {
		re := p.REdges[nr]
		for j := 0; j < nz; j++ {
			dz := p.ZEdges[j+1] - p.ZEdges[j]
			a := 2 * math.Pi * re * dz
			kc := p.K(s.RCenters[nr-1], s.ZCenters[j])
			g := a * kc / (re - s.RCenters[nr-1])
			out += g * (s.T[j][nr-1] - p.Outer.Temp)
		}
	}
	return out
}

// FluxBalanceError returns |outflow - source| / max(source, 1e-300), the
// relative energy-conservation defect of the solution.
func (s *AxiSolution) FluxBalanceError() float64 {
	src := s.TotalSource()
	if src == 0 {
		return math.Abs(s.BoundaryOutflow())
	}
	return math.Abs(s.BoundaryOutflow()-src) / math.Abs(src)
}
