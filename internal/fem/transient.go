package fem

import (
	"fmt"
	"math"

	"repro/internal/mg"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// AxiTransient is a transient finite-volume simulation: the stack starts at
// the heat-sink temperature, the sources switch on at t = 0, and implicit
// Euler steps integrate ρc·∂T/∂t = ∇·(k∇T) + q forward.
type AxiTransient struct {
	// Times lists the simulated instants (s).
	Times []float64
	// MaxT is the domain-maximum temperature rise at each instant.
	MaxT []float64
	// Final is the temperature field at the last step.
	Final *AxiSolution
	// Stats aggregates the per-step linear solves: Iterations and Wall are
	// summed over all steps, the remaining fields describe the last step.
	Stats sparse.Stats
}

// SolveAxiTransient integrates the problem for steps·dt seconds. The problem
// must supply a Cap function (volumetric heat capacity). Each implicit step
// solves (M/dt + K)·T' = M/dt·T + q with conjugate gradients warm-started
// from the previous instant.
func SolveAxiTransient(p *AxiProblem, dt float64, steps int, opt sparse.Options) (*AxiTransient, error) {
	if dt <= 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		return nil, fmt.Errorf("fem: transient step %g must be positive and finite", dt)
	}
	if steps < 1 {
		return nil, fmt.Errorf("fem: transient needs at least 1 step, got %d", steps)
	}
	if p.Cap == nil {
		return nil, fmt.Errorf("fem: transient solve needs a heat-capacity function (Cap)")
	}
	sys, err := assembleAxi(p)
	if err != nil {
		return nil, err
	}
	n := len(sys.rhs)
	// Lumped mass over dt: m_i = V_i·c_i/dt, added to the diagonal.
	mOverDt := make([]float64, n)
	coo := sparse.NewCOO(n, n)
	for j := 0; j < sys.nz; j++ {
		for i := 0; i < sys.nr; i++ {
			row := j*sys.nr + i
			c := p.Cap(sys.rc[i], sys.zc[j])
			if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("fem: heat capacity %g at (r=%g, z=%g) must be positive and finite",
					c, sys.rc[i], sys.zc[j])
			}
			mOverDt[row] = sys.volumes[row] * c / dt
			coo.Add(row, row, mOverDt[row])
		}
	}
	// stepMatrix = K + M/dt.
	stepMatrix, err := addDiagonal(sys.matrix, mOverDt)
	if err != nil {
		return nil, err
	}

	o := opt
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	// Resolve the preconditioner against the step matrix, not the steady
	// operator: K + M/dt is what every implicit step solves. The operator is
	// fixed across steps, so one multigrid hierarchy (built here by
	// resolveSolver and carried in o.MG) serves the whole integration —
	// amortizing the setup the same way the shared pool amortizes workers.
	o = resolveSolver(o, stepMatrix, sys.grid)
	// The step matrix shares the steady operator's structured-grid stencil
	// shape (a diagonal addition changes no sparsity), so the per-step
	// matvecs run matrix-free whenever the preconditioner allows it —
	// the same auto policy as the steady solves, applied once for the
	// whole integration.
	var stepOp sparse.Operator = stepMatrix
	if o.Precond != sparse.PrecondSSOR {
		if st, err := sparse.NewStencil(stepMatrix, sys.grid.dims); err == nil {
			stepOp = st
			if h, ok := o.MG.(*mg.Hierarchy); ok {
				h.SetFineOperator(st)
			}
		}
	}
	if o.Pool == nil {
		// One pool serves every step; spawning and tearing down workers per
		// step would dominate the short warm-started solves.
		pl := sparse.NewPool(o.Workers)
		defer pl.Close()
		o.Pool = pl
	}
	x := make([]float64, n)
	rhs := make([]float64, n)
	out := &AxiTransient{}
	for k := 1; k <= steps; k++ {
		for i := range rhs {
			rhs[i] = sys.rhs[i] + mOverDt[i]*x[i]
		}
		o.X0 = x
		xNew, st, err := sparse.SolveCG(stepOp, rhs, o)
		if err != nil {
			return nil, solveErr(fmt.Sprintf("transient step %d", k), n, st, err)
		}
		x = xNew
		iters, wall := out.Stats.Iterations+st.Iterations, out.Stats.Wall+st.Wall
		out.Stats = st
		out.Stats.Iterations, out.Stats.Wall = iters, wall
		var max float64 = math.Inf(-1)
		for _, v := range x {
			if v > max {
				max = v
			}
		}
		out.Times = append(out.Times, float64(k)*dt)
		out.MaxT = append(out.MaxT, max)
	}
	out.Final = &AxiSolution{p: p, RCenters: sys.rc, ZCenters: sys.zc, T: sys.fieldFrom(x), Stats: out.Stats}
	obs.Default().Counter("fem.transient.steps").Add(int64(steps))
	return out, nil
}

// addDiagonal returns a + diag(d) as a new CSR matrix.
func addDiagonal(a *sparse.CSR, d []float64) (*sparse.CSR, error) {
	n := a.Rows()
	if a.Cols() != n || len(d) != n {
		return nil, fmt.Errorf("fem: addDiagonal dimension mismatch")
	}
	coo := sparse.NewCOO(n, n)
	a.Each(func(i, j int, v float64) {
		coo.Add(i, j, v)
	})
	for i, v := range d {
		coo.Add(i, i, v)
	}
	return coo.ToCSR(), nil
}

// SettlingTime returns the first simulated instant after which the maximum
// temperature stays within fraction of its final value, and whether it
// settled before the horizon's final sample.
func (t *AxiTransient) SettlingTime(fraction float64) (float64, bool) {
	final := t.MaxT[len(t.MaxT)-1]
	band := math.Abs(final) * fraction
	settledAt := -1
	for k, v := range t.MaxT {
		if math.Abs(v-final) <= band {
			if settledAt < 0 {
				settledAt = k
			}
		} else {
			settledAt = -1
		}
	}
	if settledAt < 0 || settledAt == len(t.MaxT)-1 {
		return t.Times[len(t.Times)-1], false
	}
	return t.Times[settledAt], true
}
