package fem

import (
	"strings"
	"testing"

	"repro/internal/stack"
	"repro/internal/units"
)

// TestGridTopologySignature pins the signature's shape and its two contract
// properties: stacks whose spans mesh identically share a signature, and
// stacks whose spans cross the thin-span threshold do not — even at equal
// plane counts.
func TestGridTopologySignature(t *testing.T) {
	base, err := stack.DefaultBlock().Build()
	if err != nil {
		t.Fatal(err)
	}
	sig, err := GridTopology(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sig, "axi:") {
		t.Fatalf("signature %q lacks the axi: prefix", sig)
	}
	if !strings.HasPrefix(sig, "axi:b") {
		t.Fatalf("signature %q does not start with the bulk span", sig)
	}

	// A pure resolution change of the same geometry (different via radius,
	// same layer structure) keeps the signature: radii shape the r-mesh
	// only, and the r-mesh is Resolution-determined.
	big, err := stack.Fig4Block(units.UM(20))
	if err != nil {
		t.Fatal(err)
	}
	small, err := stack.Fig4Block(units.UM(10))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := GridTopology(big)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := GridTopology(small)
	if err != nil {
		t.Fatal(err)
	}
	if sb != ss {
		t.Errorf("radius change altered the topology: %q vs %q", sb, ss)
	}

	// Equal plane counts, different topology: a bonding layer crossing the
	// thin-span threshold changes the axial meshing class.
	cfg := stack.DefaultBlock()
	cfg.TB = units.UM(3) // past thinSpanMax: bond spans mesh at AxialPerLayer
	thick, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	st, err := GridTopology(thick)
	if err != nil {
		t.Fatal(err)
	}
	if len(thick.Planes) != len(base.Planes) {
		t.Fatalf("premise broken: plane counts differ")
	}
	if st == sig {
		t.Errorf("thin and thick bond stacks share topology %q", sig)
	}
}

// TestGridTopologyRejectsInvalidStack: a stack that fails validation cannot
// produce a signature.
func TestGridTopologyRejectsInvalidStack(t *testing.T) {
	if _, err := GridTopology(&stack.Stack{}); err == nil {
		t.Fatal("empty stack produced a topology signature")
	}
}
