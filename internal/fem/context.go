package fem

import (
	"repro/internal/mg"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// SolveContext carries reusable state across the repeated solves of a
// parameter sweep: assembly patterns (symbolic CSR structure + refillable
// value buffers), multigrid hierarchies, kernel worker pools with their
// scratch free-lists, and — opt-in — the previous solution of each system
// shape for warm-starting CG.
//
// Everything except WarmStart is invisible in the results: a solve through a
// context is bit-identical to the same solve without one, because the reuse
// paths run the exact machinery of the fresh paths and only recycle memory.
// WarmStart changes the CG starting point and therefore the iterate sequence
// (the solution still converges to the same tolerance), which is why it is a
// separate switch rather than part of the default reuse.
//
// A SolveContext is not safe for concurrent use: like sparse.Pool it serves
// one solve at a time. Sweep workers each own one. The zero value of the
// pointer (nil) is valid everywhere and means "no reuse".
type SolveContext struct {
	// NoReuse disables pattern, hierarchy and pool reuse, making every solve
	// behave as if it ran without a context. Mainly for A/B-testing reuse
	// itself (the equivalence property tests flip it).
	NoReuse bool
	// WarmStart seeds each solve's CG iteration with the previous solution
	// of the same system shape. Off by default: it perturbs the iterate
	// sequence, so it is excluded from the bit-identity contract above.
	WarmStart bool

	patterns map[asmKey]*pattern
	hier     map[asmKey]*hierEntry
	warm     map[asmKey][]float64
	pool     *sparse.Pool
}

// hierEntry pairs a multigrid hierarchy with a snapshot of the operator
// values it was built from — so hierarchyFor can prove the operator
// unchanged before serving the hierarchy again — and the mg selection it
// was built under: a cached Galerkin hierarchy must never be served to a
// solve that asked for the geometric one (or vice versa), even on identical
// operator values.
type hierEntry struct {
	h    *mg.Hierarchy
	vals []float64
	sel  mgSelect
}

// NewSolveContext returns an empty context ready for reuse.
func NewSolveContext() *SolveContext {
	return &SolveContext{
		patterns: make(map[asmKey]*pattern),
		hier:     make(map[asmKey]*hierEntry),
		warm:     make(map[asmKey][]float64),
	}
}

// Close releases the context's worker pool. The context remains usable;
// a later solve simply re-creates the pool.
func (sc *SolveContext) Close() {
	if sc == nil {
		return
	}
	sc.pool.Close()
	sc.pool = nil
}

// ResetWarm forgets the stored previous solutions, so the next warm-started
// solve of every shape begins cold. Sweep workers call it at warm-chain
// boundaries to keep chains — and therefore results — independent of how
// jobs were distributed over workers.
func (sc *SolveContext) ResetWarm() {
	if sc == nil {
		return
	}
	clear(sc.warm)
}

func (sc *SolveContext) reusing() bool { return sc != nil && !sc.NoReuse }

// pattern returns the cached assembly pattern for key, or nil when the
// caller must build one.
func (sc *SolveContext) pattern(key asmKey) *pattern {
	if !sc.reusing() {
		return nil
	}
	pat := sc.patterns[key]
	if pat != nil {
		obs.Default().Counter("fem.assemble.pattern.hits").Inc()
	} else {
		obs.Default().Counter("fem.assemble.pattern.misses").Inc()
	}
	return pat
}

func (sc *SolveContext) storePattern(pat *pattern) {
	if !sc.reusing() {
		return
	}
	sc.patterns[pat.key] = pat
}

// poolFor returns the context's kernel pool for the given worker count,
// creating or resizing it as needed. The pool's scratch free-list is what
// lets consecutive solves share their CG work vectors. Returns nil when the
// context is nil or reuse is off (the solver then manages its own pool).
func (sc *SolveContext) poolFor(workers int) *sparse.Pool {
	if !sc.reusing() {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if sc.pool != nil && sc.pool.Workers() == workers {
		return sc.pool
	}
	sc.pool.Close()
	sc.pool = sparse.NewPool(workers)
	return sc.pool
}

// hierarchyFor returns a multigrid hierarchy for the system (a, g) assembled
// under key. Three tiers, cheapest first:
//
//   - the cached hierarchy's operator snapshot matches a's values bit for
//     bit → serve it untouched (repeated solves of one design point);
//   - a cached hierarchy exists but the values moved → full rebuild through
//     the predecessor's recycled arena (mg.Options.Prev): every aggregation,
//     transfer and Galerkin product is recomputed — the smoothed prolongation
//     depends on the operator values, so none can be kept — but without
//     allocations, and bit-identical to a fresh build;
//   - no cached hierarchy (or no context) → fresh build.
func (sc *SolveContext) hierarchyFor(key asmKey, a *sparse.CSR, g solverGrid, sel mgSelect) (*mg.Hierarchy, error) {
	if !sc.reusing() {
		return buildHierarchy(a, g, sel, nil)
	}
	e := sc.hier[key]
	vals := sc.operatorValues(key, a)
	if e != nil && e.h != nil && e.sel == sel && vals != nil && sameFloats(e.vals, vals) {
		obs.Default().Counter("fem.mg.reuse.hits").Inc()
		return e.h, nil
	}
	var prev *mg.Hierarchy
	if e != nil && e.h != nil {
		// A selection change recycles too: the arena's arrays are untyped
		// capacity, equally useful to either hierarchy mode.
		prev = e.h
		e.h = nil
		obs.Default().Counter("fem.mg.reuse.rebuilds").Inc()
	}
	h, err := buildHierarchy(a, g, sel, prev)
	if err != nil {
		delete(sc.hier, key)
		return nil, err
	}
	if e == nil {
		e = &hierEntry{}
		sc.hier[key] = e
	}
	e.h = h
	e.sel = sel
	if vals != nil {
		e.vals = append(e.vals[:0], vals...)
	} else {
		e.vals = nil
	}
	return h, nil
}

// buildHierarchy builds a multigrid hierarchy under the given selection,
// recycling prev's arena when provided. A failed geometric build — the
// matrix was not a structured conductance stencil — retries as a fresh
// Galerkin build (counted in fem.mg.geometric.fallback) before the caller's
// single-level fallback kicks in; prev is already consumed by then and is
// not offered again.
func buildHierarchy(a *sparse.CSR, g solverGrid, sel mgSelect, prev *mg.Hierarchy) (*mg.Hierarchy, error) {
	opt := mg.Options{Hierarchy: sel.Hierarchy, Precision: sel.Precision, Prev: prev}
	h, err := mg.Build(a, g.dims, opt)
	if err != nil && sel.Hierarchy == mg.HierarchyGeometric {
		obs.Default().Counter("fem.mg.geometric.fallback").Inc()
		h, err = mg.Build(a, g.dims, mg.Options{})
	}
	return h, err
}

// operatorValues returns the live value array of the pattern-owned matrix
// behind key, or nil when a was not assembled through this context (then no
// snapshot comparison is possible and the hierarchy is always rebuilt).
func (sc *SolveContext) operatorValues(key asmKey, a *sparse.CSR) []float64 {
	pat := sc.patterns[key]
	if pat == nil || pat.matrix != a {
		return nil
	}
	return pat.val
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// warmX0 returns the stored previous solution for key, or nil for a cold
// start. The sweep.warmstart.* counters make warm-start effectiveness
// visible in metrics snapshots.
func (sc *SolveContext) warmX0(key asmKey, n int) []float64 {
	if sc == nil || !sc.WarmStart {
		return nil
	}
	x := sc.warm[key]
	if len(x) != n {
		obs.Default().Counter("sweep.warmstart.resets").Inc()
		return nil
	}
	obs.Default().Counter("sweep.warmstart.hits").Inc()
	return x
}

// storeWarm retains a converged solution as the next warm start for key.
// The solver treats X0 as read-only and every caller of the solve copies
// the field out, so holding on to x is safe.
func (sc *SolveContext) storeWarm(key asmKey, x []float64) {
	if sc == nil || !sc.WarmStart {
		return
	}
	sc.warm[key] = x
}
