package fem

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports the solved temperature field as CSV rows of
// r, z, temperature (cell centers, SI units), suitable for plotting with
// any external tool.
func (s *AxiSolution) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"r_m", "z_m", "dT_K"}); err != nil {
		return err
	}
	for j, z := range s.ZCenters {
		for i, r := range s.RCenters {
			rec := []string{
				strconv.FormatFloat(r, 'g', -1, 64),
				strconv.FormatFloat(z, 'g', -1, 64),
				strconv.FormatFloat(s.T[j][i], 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// AxialProfile returns the temperature along the axis (r = innermost cells)
// as (z, T) pairs — the vertical heat-path profile through the via.
func (s *AxiSolution) AxialProfile() (z, t []float64) {
	z = make([]float64, len(s.ZCenters))
	t = make([]float64, len(s.ZCenters))
	copy(z, s.ZCenters)
	for j := range s.ZCenters {
		t[j] = s.T[j][0]
	}
	return z, t
}

// RadialProfile returns the temperature along the radius at the height
// closest to z0 as (r, T) pairs.
func (s *AxiSolution) RadialProfile(z0 float64) (r, t []float64, err error) {
	if len(s.ZCenters) == 0 {
		return nil, nil, fmt.Errorf("fem: empty solution")
	}
	best := 0
	for j, z := range s.ZCenters {
		if abs(z-z0) < abs(s.ZCenters[best]-z0) {
			best = j
		}
	}
	r = make([]float64, len(s.RCenters))
	t = make([]float64, len(s.RCenters))
	copy(r, s.RCenters)
	copy(t, s.T[best])
	return r, t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
