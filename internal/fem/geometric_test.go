package fem

import (
	"context"
	"testing"

	"repro/internal/mg"
	"repro/internal/sparse"
)

// TestGeometricHierarchyMatchesGalerkin runs the reference stack at a
// refinement deep enough for multigrid under all three hierarchy/precision
// selections. The preconditioner only shapes the Krylov space, so every
// selection must converge to the same temperature field, and the geometric
// line-smoothed W-cycle must stay in the same mesh-independent iteration
// band as Galerkin.
func TestGeometricHierarchyMatchesGalerkin(t *testing.T) {
	s := fig4(t, 10)
	var refMax float64
	var refIters int
	for _, tc := range []struct {
		name string
		hier mg.HierarchyKind
		prec mg.PrecisionKind
	}{
		{"galerkin", mg.HierarchyGalerkin, mg.PrecisionF64},
		{"geometric", mg.HierarchyGeometric, mg.PrecisionF64},
		{"geometric-f32", mg.HierarchyGeometric, mg.PrecisionF32},
	} {
		res := coarse().Refine(2)
		res.Precond = sparse.PrecondMG
		res.Hierarchy = tc.hier
		res.Precision = tc.prec
		sol, err := SolveStack(s, res)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if sol.Stats.Precond != sparse.PrecondMG || sol.Stats.Levels < 2 {
			t.Fatalf("%s: ran %v with %d levels, want multigrid", tc.name, sol.Stats.Precond, sol.Stats.Levels)
		}
		if sol.Stats.Iterations > 30 {
			t.Errorf("%s: %d CG iterations, want <= 30", tc.name, sol.Stats.Iterations)
		}
		maxT, _, _ := sol.MaxT()
		if tc.hier == mg.HierarchyGalerkin {
			refMax, refIters = maxT, sol.Stats.Iterations
			continue
		}
		if diff := maxT - refMax; diff > 1e-8 || diff < -1e-8 {
			t.Errorf("%s: max ΔT %g vs galerkin %g", tc.name, maxT, refMax)
		}
		if sol.Stats.Iterations > refIters+5 {
			t.Errorf("%s: %d CG iterations vs galerkin's %d", tc.name, sol.Stats.Iterations, refIters)
		}
	}
}

// TestGeometricResolutionValidation: f32 preconditioner storage requires the
// geometric hierarchy; the Galerkin CSR kernels are float64-only.
func TestGeometricResolutionValidation(t *testing.T) {
	s := fig4(t, 10)
	res := coarse()
	res.Precision = mg.PrecisionF32
	if _, err := SolveStack(s, res); err == nil {
		t.Fatal("f32 precision without geometric hierarchy did not error")
	}
	res.Hierarchy = mg.HierarchyGeometric
	if _, err := SolveStack(s, res); err != nil {
		t.Fatalf("f32 + geometric rejected: %v", err)
	}
}

// TestGeometricContextCacheKeyedBySelection: a warm SolveContext must not
// hand a hierarchy built under one hierarchy/precision selection to a solve
// requesting another, and warm solves must match cold ones bit-for-bit.
func TestGeometricContextCacheKeyedBySelection(t *testing.T) {
	s := fig4(t, 10)
	sc := NewSolveContext()
	defer sc.Close()

	solve := func(hier mg.HierarchyKind, prec mg.PrecisionKind) *AxiSolution {
		res := coarse().Refine(2)
		res.Precond = sparse.PrecondMG
		res.Hierarchy = hier
		res.Precision = prec
		sol, err := SolveStackWith(context.Background(), sc, s, res)
		if err != nil {
			t.Fatalf("%v/%v: %v", hier, prec, err)
		}
		return sol
	}

	gal1 := solve(mg.HierarchyGalerkin, mg.PrecisionF64)
	geo1 := solve(mg.HierarchyGeometric, mg.PrecisionF64)
	f32a := solve(mg.HierarchyGeometric, mg.PrecisionF32)
	// Second round reuses the context's cached assembly and hierarchies.
	gal2 := solve(mg.HierarchyGalerkin, mg.PrecisionF64)
	geo2 := solve(mg.HierarchyGeometric, mg.PrecisionF64)
	f32b := solve(mg.HierarchyGeometric, mg.PrecisionF32)

	for _, pair := range []struct {
		name       string
		cold, warm *AxiSolution
	}{{"galerkin", gal1, gal2}, {"geometric", geo1, geo2}, {"geometric-f32", f32a, f32b}} {
		if pair.cold.Stats.Iterations != pair.warm.Stats.Iterations {
			t.Errorf("%s: warm solve took %d iterations, cold %d",
				pair.name, pair.warm.Stats.Iterations, pair.cold.Stats.Iterations)
		}
		coldMax, _, _ := pair.cold.MaxT()
		warmMax, _, _ := pair.warm.MaxT()
		// The warm solve starts from the cached solution, so CG may stop on
		// a different Krylov sequence; answers agree within solver tolerance.
		if diff := coldMax - warmMax; diff > 1e-8 || diff < -1e-8 {
			t.Errorf("%s: warm max ΔT %g vs cold %g", pair.name, warmMax, coldMax)
		}
	}
}
