package fem

import (
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/sparse"
	"repro/internal/stack"
	"repro/internal/units"
)

func TestCartUniformSlabWithSource(t *testing.T) {
	// Same 1-D analytic check as the axisymmetric solver: T(z) =
	// (q/k)(Hz - z²/2) for uniform source, bottom fixed, top adiabatic.
	const k, q, h = 4.0, 2e6, 1e-3
	x, _ := mesh.Uniform(0, 5e-4, 3)
	z, _ := mesh.Uniform(0, h, 50)
	p := &CartProblem{
		XEdges: x, YEdges: append([]float64(nil), x...), ZEdges: z,
		K:      func(_, _, _ float64) float64 { return k },
		Q:      func(_, _, _ float64) float64 { return q },
		Bottom: Fixed(0),
		Top:    Insulated(),
	}
	sol, err := SolveCart(p, sparse.Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := q / k * h * h / 2
	if got := sol.MaxT(); math.Abs(got-want)/want > 0.01 {
		t.Fatalf("max T = %g, want %g", got, want)
	}
	for l, zz := range sol.ZCenters {
		wantT := q / k * (h*zz - zz*zz/2)
		if got := sol.T[l][1][1]; math.Abs(got-wantT) > 0.01*want {
			t.Fatalf("T(z=%g) = %g, want %g", zz, got, wantT)
		}
	}
}

func TestCartTotalSource(t *testing.T) {
	x, _ := mesh.Uniform(0, 1e-3, 4)
	z, _ := mesh.Uniform(0, 2e-3, 8)
	p := &CartProblem{
		XEdges: x, YEdges: append([]float64(nil), x...), ZEdges: z,
		K:      func(_, _, _ float64) float64 { return 1 },
		Q:      func(_, _, _ float64) float64 { return 1e6 },
		Bottom: Fixed(0),
		Top:    Insulated(),
	}
	sol, err := SolveCart(p, sparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e6 * 1e-3 * 1e-3 * 2e-3
	if got := sol.TotalSource(); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("TotalSource = %g, want %g", got, want)
	}
}

func TestCartValidation(t *testing.T) {
	x, _ := mesh.Uniform(0, 1, 2)
	good := &CartProblem{
		XEdges: x, YEdges: x, ZEdges: x,
		K:      func(_, _, _ float64) float64 { return 1 },
		Bottom: Fixed(0), Top: Insulated(),
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	bad := *good
	bad.K = nil
	if _, err := SolveCart(&bad, sparse.Options{}); err == nil {
		t.Error("nil K accepted")
	}
	bad2 := *good
	bad2.Bottom, bad2.Top = Insulated(), Insulated()
	if _, err := SolveCart(&bad2, sparse.Options{}); err == nil {
		t.Error("no Dirichlet face accepted")
	}
	bad3 := *good
	bad3.XEdges = []float64{1, 0}
	if _, err := SolveCart(&bad3, sparse.Options{}); err == nil {
		t.Error("decreasing edges accepted")
	}
	bad4 := *good
	bad4.K = func(_, _, _ float64) float64 { return 0 }
	if _, err := SolveCart(&bad4, sparse.Options{}); err == nil {
		t.Error("zero conductivity accepted")
	}
}

// TestAxisymmetricReductionValidatedIn3D is the key substitution check of
// this reproduction: the true 3-D square block with a cylindrical via and
// its equal-area axisymmetric reduction must agree on the maximum
// temperature rise within a few percent.
func TestAxisymmetricReductionValidatedIn3D(t *testing.T) {
	if testing.Short() {
		t.Skip("3-D cross-validation is slow")
	}
	// Thick liner (Fig. 5 at t_L = 3 µm): the Cartesian grid resolves the
	// liner ring well, so the two solvers must agree tightly.
	s, err := stack.Fig5Block(units.UM(3))
	if err != nil {
		t.Fatal(err)
	}
	axi, err := SolveStack(s, DefaultResolution())
	if err != nil {
		t.Fatal(err)
	}
	axiMax, _, _ := axi.MaxT()

	p3, err := BuildCartProblem(s, DefaultCartResolution())
	if err != nil {
		t.Fatal(err)
	}
	sol3, err := SolveCart(p3, sparse.Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	cartMax := sol3.MaxT()
	if e := units.RelErr(axiMax, cartMax); e > 0.05 {
		t.Errorf("axisymmetric %g vs 3-D %g differ by %.1f%%", axiMax, cartMax, 100*e)
	}
	// Power bookkeeping across both problem builders.
	if e := units.RelErr(sol3.TotalSource(), s.TotalPower()); e > 1e-9 {
		t.Errorf("3-D source %g vs stack power %g", sol3.TotalSource(), s.TotalPower())
	}

	// Thin liner (Fig. 4 at t_L = 0.5 µm): the staircase ring resolves less
	// cleanly; require agreement within 10%.
	s4, err := stack.Fig4Block(units.UM(10))
	if err != nil {
		t.Fatal(err)
	}
	axi4, err := SolveStack(s4, DefaultResolution())
	if err != nil {
		t.Fatal(err)
	}
	axi4Max, _, _ := axi4.MaxT()
	p4, err := BuildCartProblem(s4, DefaultCartResolution())
	if err != nil {
		t.Fatal(err)
	}
	sol4, err := SolveCart(p4, sparse.Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if e := units.RelErr(axi4Max, sol4.MaxT()); e > 0.10 {
		t.Errorf("thin-liner axisymmetric %g vs 3-D %g differ by %.1f%%", axi4Max, sol4.MaxT(), 100*e)
	}
}

func TestBuildCartProblemRejectsClusters(t *testing.T) {
	s, err := stack.Fig7Block(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildCartProblem(s, DefaultCartResolution()); err == nil {
		t.Error("cluster accepted by the 3-D block builder")
	}
}

func TestBuildCartProblemRejectsBadResolution(t *testing.T) {
	s, err := stack.Fig4Block(units.UM(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildCartProblem(s, CartResolution{}); err == nil {
		t.Error("zero resolution accepted")
	}
}
