package fem

import "repro/internal/sparse"

// sparseDefaults returns the iterative-solver settings used by the stack
// reference solves: tight tolerance (the reference must out-resolve the
// models it judges) with a generous iteration budget. The preconditioner is
// left at PrecondDefault so pickPrecond can choose per worker count.
func sparseDefaults() sparse.Options {
	return sparse.Options{Tol: 1e-10}
}

// pickPrecond resolves the default preconditioner for this package's
// solves: SSOR for sequential runs (fewest iterations), Chebyshev when the
// solve runs on more than one worker (SSOR's triangular sweeps are
// inherently sequential; Chebyshev parallelizes and stays bit-identical for
// any worker count). An explicit opt.Precond is honored unchanged.
func pickPrecond(opt sparse.Options) sparse.Options {
	if opt.Precond != sparse.PrecondDefault {
		return opt
	}
	workers := opt.Workers
	if opt.Pool != nil {
		workers = opt.Pool.Workers()
	}
	if workers > 1 {
		opt.Precond = sparse.PrecondChebyshev
	} else {
		opt.Precond = sparse.PrecondSSOR
	}
	return opt
}

// almostEqual reports whether a and b agree to within rtol relatively (or
// exactly, for zero values). Mesh construction accumulates layer
// thicknesses in floating point, so consistency checks between a summed
// height and a mesh endpoint must not use exact equality.
func almostEqual(a, b, rtol float64) bool {
	if a == b {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	max := a
	if max < 0 {
		max = -max
	}
	if b > max {
		max = b
	} else if -b > max {
		max = -b
	}
	return diff <= rtol*max
}
