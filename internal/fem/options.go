package fem

import "repro/internal/sparse"

// sparseDefaults returns the iterative-solver settings used by the stack
// reference solves: tight tolerance (the reference must out-resolve the
// models it judges) with a generous iteration budget.
func sparseDefaults() sparse.Options {
	return sparse.Options{Tol: 1e-10, Precond: sparse.PrecondSSOR}
}
