package fem

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mg"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// ErrNotConverged is returned when a reference solve exhausts its iteration
// budget; the error message carries the achieved residual, iteration count
// and preconditioner so a failed solve is diagnosable without a rerun.
var ErrNotConverged = errors.New("fem: reference solve did not converge")

// ConvergenceError is the concrete error behind ErrNotConverged: it keeps
// the solver stats of the failed attempt structurally accessible (via
// errors.As), so callers can read the achieved residual and iteration count
// instead of parsing the message.
type ConvergenceError struct {
	// What names the solve that failed (e.g. "axisymmetric solve").
	What string
	// Cells is the unknown count of the system.
	Cells int
	// Stats reports the failed solve, including the residual it reached.
	Stats sparse.Stats

	err error
}

func (e *ConvergenceError) Error() string {
	return fmt.Sprintf("%v: %s (%d cells): %v preconditioner stopped at residual %.3g after %d iterations: %v",
		ErrNotConverged, e.What, e.Cells, e.Stats.Precond, e.Stats.Residual, e.Stats.Iterations, e.err)
}

// Unwrap exposes both ErrNotConverged and the underlying sparse error to
// errors.Is chains.
func (e *ConvergenceError) Unwrap() []error { return []error{ErrNotConverged, e.err} }

// mgAutoThreshold is the unknown count above which the default
// preconditioner becomes geometric multigrid. Below it the hierarchy setup
// (Galerkin products, coarse factorization) costs more than the CG
// iterations it saves; above it the mesh-independent iteration count wins —
// decisively so at the 2–4× refined resolutions of convergence studies.
// The default-resolution axisymmetric block (~2k cells) stays on the
// single-level preconditioners; the 3-D and refined solves cross over.
const mgAutoThreshold = 4000

// sparseDefaults returns the iterative-solver settings used by the stack
// reference solves: tight tolerance (the reference must out-resolve the
// models it judges) with a generous iteration budget. The preconditioner is
// left at PrecondDefault so resolveSolver can choose per system.
func sparseDefaults() sparse.Options {
	return sparse.Options{Tol: 1e-10}
}

// solverGrid carries the structured-grid shape behind an assembled system:
// the per-axis cell counts, fastest-varying first. Multigrid construction
// uses it to cross-check the matrix layout; the aggregation itself is
// driven by the matrix coefficients.
type solverGrid struct {
	dims []int
}

// mgSelect bundles the multigrid construction choices a Resolution carries
// (hierarchy mode and preconditioner-data precision) through the solve paths
// into the hierarchy cache. The zero value is the default Galerkin/f64 build.
type mgSelect struct {
	Hierarchy mg.HierarchyKind
	Precision mg.PrecisionKind
}

// resolveSolver finalizes the solver options for an assembled system: the
// default preconditioner becomes multigrid above mgAutoThreshold unknowns
// (falling back to the single-level default when a hierarchy cannot be
// built), an explicit PrecondMG request gets its hierarchy built here, and
// an unset MaxIter scales with the preconditioner class instead of the
// system size. A pre-built Options.MG (e.g. the transient integrator's
// shared hierarchy) is reused as-is.
func resolveSolver(opt sparse.Options, a *sparse.CSR, g solverGrid) sparse.Options {
	return resolveSolverWith(nil, asmKey{}, opt, a, g, mgSelect{})
}

// resolveSolverWith is resolveSolver drawing the multigrid hierarchy from
// sc's cache (reused when the operator values are unchanged and the mg
// selection matches, rebuilt through the predecessor's recycled arena
// otherwise). A nil sc builds fresh.
func resolveSolverWith(sc *SolveContext, key asmKey, opt sparse.Options, a *sparse.CSR, g solverGrid, sel mgSelect) sparse.Options {
	if opt.MG == nil && (opt.Precond == sparse.PrecondMG ||
		(opt.Precond == sparse.PrecondDefault && a.Rows() >= mgAutoThreshold)) {
		if h, err := sc.hierarchyFor(key, a, g, sel); err == nil {
			if opt.Precond == sparse.PrecondDefault {
				obs.Default().Counter("fem.mg.auto").Inc()
			}
			opt.Precond = sparse.PrecondMG
			opt.MG = h
		} else {
			obs.Default().Counter("fem.mg.fallback").Inc()
			if opt.Precond == sparse.PrecondMG {
				// An explicit request on a grid that cannot support a hierarchy
				// (too few cells to coarsen, degenerate operator): fall back to
				// the default selection rather than failing the solve; Stats
				// reports the preconditioner that actually ran.
				opt.Precond = sparse.PrecondDefault
			}
		}
	}
	opt = pickPrecond(opt)
	if opt.MaxIter == 0 {
		opt.MaxIter = maxIterFor(opt.Precond, a.Rows())
	}
	return opt
}

// maxIterFor budgets CG iterations by preconditioner class rather than the
// flat 10·n default: multigrid converges in a mesh-independent handful of
// iterations, the single-level preconditioners in O(√κ) ≈ O(√n) on these
// second-order elliptic systems. Unpreconditioned CG gets a far larger
// budget still — without diagonal scaling its condition number carries the
// stack's full four-decade coefficient contrast, and the default-resolution
// block already needs ~9k iterations. Each budget is several times the
// observed count, so hitting one genuinely means "did not converge", caught
// early instead of after 10·n wasted iterations.
func maxIterFor(p sparse.PrecondKind, n int) int {
	root := int(math.Sqrt(float64(n)))
	switch p {
	case sparse.PrecondMG:
		return 200
	case sparse.PrecondSSOR, sparse.PrecondChebyshev:
		return 40*root + 1000
	case sparse.PrecondNone:
		return 600*root + 8000
	default: // Jacobi
		return 150*root + 2000
	}
}

// solveErr wraps a linear-solver failure with the system context; iteration
// exhaustion maps to a *ConvergenceError matching ErrNotConverged and
// carrying the achieved residual.
func solveErr(what string, n int, st sparse.Stats, err error) error {
	if errors.Is(err, sparse.ErrNotConverged) {
		obs.Default().Counter("fem.solve.notconverged").Inc()
		return &ConvergenceError{What: what, Cells: n, Stats: st, err: err}
	}
	return fmt.Errorf("fem: %s (%d cells): %w", what, n, err)
}

// pickPrecond resolves the default preconditioner for this package's
// solves: SSOR for sequential runs (fewest iterations), Chebyshev when the
// solve runs on more than one worker (SSOR's triangular sweeps are
// inherently sequential; Chebyshev parallelizes and stays bit-identical for
// any worker count). An explicit opt.Precond — including the PrecondMG
// resolveSolver may have attached — is honored unchanged.
func pickPrecond(opt sparse.Options) sparse.Options {
	if opt.Precond != sparse.PrecondDefault {
		return opt
	}
	workers := opt.Workers
	if opt.Pool != nil {
		workers = opt.Pool.Workers()
	}
	if workers > 1 {
		opt.Precond = sparse.PrecondChebyshev
	} else {
		opt.Precond = sparse.PrecondSSOR
	}
	return opt
}

// almostEqual reports whether a and b agree to within rtol relatively (or
// exactly, for zero values). Mesh construction accumulates layer
// thicknesses in floating point, so consistency checks between a summed
// height and a mesh endpoint must not use exact equality.
func almostEqual(a, b, rtol float64) bool {
	if a == b {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	max := a
	if max < 0 {
		max = -max
	}
	if b > max {
		max = b
	} else if -b > max {
		max = -b
	}
	return diff <= rtol*max
}
