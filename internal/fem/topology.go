package fem

import (
	"strings"

	"repro/internal/stack"
)

// thinSpanMax is the span thickness below which the axial mesh falls back to
// Resolution.AxialMin cells instead of AxialPerLayer — thin bond/liner-scale
// layers would otherwise force needle cells. The threshold decides the cell
// count of every span, which makes it part of the grid topology (see
// GridTopology).
const thinSpanMax = 2e-6

// GridTopology returns a signature of the axisymmetric grid structure
// BuildAxiProblem derives from the stack: one class character per layer span,
// bottom-up — 'b' for the graded bulk substrate, 't' for thin spans meshed at
// AxialMin, 'n' for normal spans meshed at AxialPerLayer. Two stacks with the
// same signature produce grids with identical cell counts and boundary
// conditions at any given Resolution (radial counts depend only on the
// Resolution), so solver state assembled for one is structurally reusable for
// the other; stacks with different signatures are not, even when their plane
// counts coincide.
//
// The signature is cheap (no meshing) and deterministic, making it a sound
// pool/cache key component for solver-state reuse across requests.
func GridTopology(s *stack.Stack) (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	cellArea := s.Footprint / float64(s.Via.EffectiveCount())
	spans, _, err := buildLayerSpans(s, cellArea)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("axi:")
	for i, sp := range spans {
		switch {
		case i == 0:
			b.WriteByte('b')
		case sp.hi-sp.lo < thinSpanMax:
			b.WriteByte('t')
		default:
			b.WriteByte('n')
		}
	}
	return b.String(), nil
}
