package fem

import (
	"context"
	"fmt"
	"math"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/sparse"
	"repro/internal/stack"
)

// CartProblem is a steady heat-conduction problem on a 3-D Cartesian
// structured mesh. It exists to validate the axisymmetric unit-cell
// reduction: the paper's block is a square with a cylindrical via, which the
// 2-D solver maps to an equal-area circle; this solver keeps the true square
// outline (with a staircase via) so the two can be compared.
type CartProblem struct {
	// XEdges, YEdges, ZEdges are the strictly increasing cell edges.
	XEdges, YEdges, ZEdges []float64
	// K and Q give the conductivity (W/m·K) and volumetric source (W/m³) at
	// a cell center; Q may be nil.
	K func(x, y, z float64) float64
	Q func(x, y, z float64) float64
	// KZ optionally gives a distinct vertical conductivity (anisotropic
	// medium, e.g. a homogenized via array that conducts better vertically
	// than laterally). Nil means the medium is isotropic (KZ = K).
	KZ func(x, y, z float64) float64
	// Bottom and Top are the boundary conditions at z extremes; the four
	// lateral faces are always adiabatic (the block's symmetry planes).
	Bottom, Top BC
}

// CartSolution is a solved 3-D temperature field.
type CartSolution struct {
	p *CartProblem
	// T holds cell temperatures indexed [iz][iy][ix].
	T [][][]float64
	// XCenters, YCenters, ZCenters are the cell centers.
	XCenters, YCenters, ZCenters []float64
	// Stats reports the linear solve.
	Stats sparse.Stats
}

// Validate checks the problem definition.
func (p *CartProblem) Validate() error {
	for _, e := range []struct {
		name  string
		edges []float64
	}{{"x", p.XEdges}, {"y", p.YEdges}, {"z", p.ZEdges}} {
		if err := mesh.Validate(e.edges); err != nil {
			return fmt.Errorf("fem: %s edges: %w", e.name, err)
		}
	}
	if p.K == nil {
		return fmt.Errorf("fem: conductivity function K is nil")
	}
	if p.Bottom.Kind != Dirichlet && p.Top.Kind != Dirichlet {
		return fmt.Errorf("fem: at least one of bottom/top must be Dirichlet")
	}
	return nil
}

// cartSystem is the assembled finite-volume system of a CartProblem.
type cartSystem struct {
	nx, ny, nz int
	xc, yc, zc []float64
	matrix     *sparse.CSR
	rhs        []float64
	grid       solverGrid
	key        asmKey
	pat        *pattern // the owning pattern, for the matrix-free stencil view
}

// assembleCart discretizes the problem without a reuse context. The
// discretization itself lives in assembly.go (cartEmit), shared with the
// pattern-cached path.
func assembleCart(p *CartProblem) (*cartSystem, error) {
	return assembleCartWith(context.Background(), nil, p)
}

// SolveCart assembles and solves the finite-volume system.
func SolveCart(p *CartProblem, opt sparse.Options) (*CartSolution, error) {
	return SolveCartCtx(context.Background(), p, opt)
}

// SolveCartCtx is SolveCart honoring cancellation between conjugate-gradient
// iterations. Like SolveAxiCtx it emits fem.solve/fem.assemble/fem.precond
// spans when ctx carries an obs.Tracer.
func SolveCartCtx(ctx context.Context, p *CartProblem, opt sparse.Options) (*CartSolution, error) {
	return SolveCartWith(ctx, nil, p, opt)
}

// SolveCartWith is SolveCartCtx solving through a reuse context; see
// SolveAxiWith for the contract.
func SolveCartWith(ctx context.Context, sc *SolveContext, p *CartProblem, opt sparse.Options) (*CartSolution, error) {
	return solveCartWith(ctx, sc, p, opt, OperatorAuto, mgSelect{})
}

// solveCartWith is SolveCartWith with explicit operator and multigrid
// selections (see OperatorKind, mgSelect).
func solveCartWith(ctx context.Context, sc *SolveContext, p *CartProblem, opt sparse.Options, opk OperatorKind, sel mgSelect) (*CartSolution, error) {
	ctx, root := obs.StartSpan(ctx, "fem.solve")
	defer root.End()
	asmCtx, asp := obs.StartSpan(ctx, "fem.assemble")
	sys, err := assembleCartWith(asmCtx, sc, p)
	asp.End()
	if err != nil {
		root.Set("error", err.Error())
		return nil, err
	}
	o := opt
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	_, psp := obs.StartSpan(ctx, "fem.precond")
	o = resolveSolverWith(sc, sys.key, o, sys.matrix, sys.grid, sel)
	if psp != nil {
		psp.Set("precond", o.Precond.String())
		psp.End()
	}
	setMGAttrs(root, o)
	op, opName, err := operatorFor(opk, sys.pat, sys.grid.dims, o)
	if err != nil {
		root.Set("error", err.Error())
		return nil, err
	}
	root.Set("fem.operator", opName)
	if o.Pool == nil {
		o.Pool = sc.poolFor(o.Workers)
	}
	n := sys.nx * sys.ny * sys.nz
	root.Set("unknowns", n)
	if o.X0 == nil {
		o.X0 = sc.warmX0(sys.key, n)
	}
	x, st, err := sparse.SolveCGCtx(ctx, op, sys.rhs, o)
	if err != nil {
		root.Set("error", err.Error())
		return nil, solveErr("3-D solve", n, st, err)
	}
	sc.storeWarm(sys.key, x)
	nx, ny, nz := sys.nx, sys.ny, sys.nz
	sol := &CartSolution{p: p, XCenters: sys.xc, YCenters: sys.yc, ZCenters: sys.zc, Stats: st}
	// x is laid out (l*ny+j)*nx + i, so the field rows can share one backing
	// array instead of allocating nz*ny separate slices.
	backing := make([]float64, nz*ny*nx)
	copy(backing, x)
	sol.T = make([][][]float64, nz)
	rows := make([][]float64, nz*ny)
	for l := 0; l < nz; l++ {
		sol.T[l] = rows[l*ny : (l+1)*ny : (l+1)*ny]
		for j := 0; j < ny; j++ {
			at := (l*ny + j) * nx
			sol.T[l][j] = backing[at : at+nx : at+nx]
		}
	}
	return sol, nil
}

// MaxT returns the maximum cell temperature.
func (s *CartSolution) MaxT() float64 {
	max := math.Inf(-1)
	for _, plane := range s.T {
		for _, row := range plane {
			for _, t := range row {
				if t > max {
					max = t
				}
			}
		}
	}
	return max
}

// TotalSource integrates the volumetric source (W).
func (s *CartSolution) TotalSource() float64 {
	if s.p.Q == nil {
		return 0
	}
	var q float64
	for l := range s.T {
		dz := s.p.ZEdges[l+1] - s.p.ZEdges[l]
		for j := range s.T[l] {
			dy := s.p.YEdges[j+1] - s.p.YEdges[j]
			for i := range s.T[l][j] {
				dx := s.p.XEdges[i+1] - s.p.XEdges[i]
				q += s.p.Q(s.XCenters[i], s.YCenters[j], s.ZCenters[l]) * dx * dy * dz
			}
		}
	}
	return q
}

// CartResolution controls BuildCartProblem's mesh density.
type CartResolution struct {
	// LateralVia is the cell count across the via diameter (per axis).
	LateralVia int
	// LateralLiner is the cell count across each liner band (per side).
	// The liner is thin; unless the lateral mesh resolves it, the staircase
	// via is effectively linerless and the 3-D block runs several percent
	// cooler than reality.
	LateralLiner int
	// LateralOuter is the cell count from the via to each block edge.
	LateralOuter int
	// AxialPerLayer, AxialMin and Bulk mirror Resolution.
	AxialPerLayer, AxialMin, Bulk int
}

// DefaultCartResolution returns a resolution adequate for cross-validation.
func DefaultCartResolution() CartResolution {
	return CartResolution{LateralVia: 10, LateralLiner: 2, LateralOuter: 10, AxialPerLayer: 4, AxialMin: 2, Bulk: 10}
}

// BuildCartProblem translates a single-via stack into the true 3-D square
// block problem (via centered, circular cross-section approximated on the
// Cartesian grid). Clusters are not supported here — the 3-D solver exists
// to validate the axisymmetric reduction of the single-via block.
func BuildCartProblem(s *stack.Stack, res CartResolution) (*CartProblem, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Via.EffectiveCount() != 1 {
		return nil, fmt.Errorf("fem: 3-D block builder supports a single via, stack has %d", s.Via.EffectiveCount())
	}
	if res.LateralVia < 2 || res.LateralLiner < 1 || res.LateralOuter < 1 || res.AxialPerLayer < 1 || res.AxialMin < 1 || res.Bulk < 1 {
		return nil, fmt.Errorf("fem: invalid 3-D resolution %+v", res)
	}
	side := math.Sqrt(s.Footprint)
	c := side / 2
	rv := s.Via.Radius
	rl := rv + s.Via.LinerThickness
	if c-rl <= 0 {
		return nil, fmt.Errorf("fem: via with liner does not fit the square block")
	}
	lat, err := mesh.Line(0, []mesh.Interval{
		{Hi: c - rl, Cells: res.LateralOuter, Ratio: 0.8},
		{Hi: c - rv, Cells: res.LateralLiner},
		{Hi: c + rv, Cells: res.LateralVia},
		{Hi: c + rl, Cells: res.LateralLiner},
		{Hi: side, Cells: res.LateralOuter, Ratio: 1.25},
	})
	if err != nil {
		return nil, err
	}

	spans, zTop, err := buildLayerSpans(s, s.Footprint)
	if err != nil {
		return nil, err
	}
	var intervals []mesh.Interval
	for i, sp := range spans {
		cells := res.AxialPerLayer
		ratio := 1.0
		if i == 0 {
			cells = res.Bulk
			ratio = 0.75
		}
		if sp.hi-sp.lo < 2e-6 && i != 0 {
			cells = res.AxialMin
		}
		intervals = append(intervals, mesh.Interval{Hi: sp.hi, Cells: cells, Ratio: ratio})
	}
	zEdges, err := mesh.Line(0, intervals)
	if err != nil {
		return nil, err
	}
	if !almostEqual(zTop, zEdges[len(zEdges)-1], 1e-9) {
		return nil, fmt.Errorf("fem: internal inconsistency: stack height %g vs mesh top %g", zTop, zEdges[len(zEdges)-1])
	}

	rVia := s.Via.Radius
	kf, kl := s.Via.Fill.K, s.Via.Liner.K
	// NaN on a span miss turns a mesh/layer bookkeeping bug into an assembly
	// error (assembly validates every sampled value) instead of silently
	// solving the wrong problem.
	kFn := func(x, y, z float64) float64 {
		sp := locateSpan(spans, z)
		if sp == nil {
			return math.NaN()
		}
		if sp.inVia {
			rr := math.Hypot(x-c, y-c)
			if rr < rVia {
				return kf
			}
			if rr < rl {
				return kl
			}
		}
		return sp.k
	}
	qFn := func(x, y, z float64) float64 {
		sp := locateSpan(spans, z)
		if sp == nil {
			return math.NaN()
		}
		return sp.q
	}
	return &CartProblem{
		XEdges: lat,
		YEdges: append([]float64(nil), lat...),
		ZEdges: zEdges,
		K:      kFn,
		Q:      qFn,
		Bottom: Fixed(0),
		Top:    Insulated(),
	}, nil
}
