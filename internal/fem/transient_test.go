package fem

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/sparse"
	"repro/internal/stack"
	"repro/internal/units"
)

func TestAxiTransientSlabDecayTimeConstant(t *testing.T) {
	// A uniform slab (bottom fixed at 0, top adiabatic) relaxing from T = 1
	// decays with the fundamental time constant tau = (2H/π)²/α.
	const (
		k, c = 10.0, 2e6
		h    = 1e-3
	)
	alpha := k / c
	tau := (2 * h / math.Pi) * (2 * h / math.Pi) / alpha
	r, _ := mesh.Uniform(0, 1e-4, 2)
	z, _ := mesh.Uniform(0, h, 60)
	p := &AxiProblem{
		REdges: r, ZEdges: z,
		K:      func(_, _ float64) float64 { return k },
		Cap:    func(_, _ float64) float64 { return c },
		Bottom: Fixed(0), Top: Insulated(), Outer: Insulated(),
	}
	// Run from a heated steady state: first heat with a source to steady,
	// then remove the source and watch the decay. Simpler: heat step and
	// compare against the complementary behavior — the rise towards steady
	// has the same fundamental time constant.
	p.Q = func(_, _ float64) float64 { return 1e7 }
	dt := tau / 50
	steps := int(6 * tau / dt)
	tr, err := SolveAxiTransient(p, dt, steps, sparse.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	final := tr.MaxT[len(tr.MaxT)-1]
	// Steady max: qH²/2k.
	if want := 1e7 * h * h / (2 * k); units.RelErr(final, want) > 0.02 {
		t.Fatalf("final %g, want %g", final, want)
	}
	// Find when the max reaches (1 - 1/e·8/π²) of steady: for the dominant
	// mode, T_top(t) = T_ss·(1 - (8/π²)·exp(-t/tau) + ...). Measure the time
	// where the deficit drops by e and compare to tau.
	deficit0 := final - tr.MaxT[0]
	var tAtE float64
	for i, v := range tr.MaxT {
		if final-v <= deficit0/math.E {
			tAtE = tr.Times[i] - tr.Times[0]
			break
		}
	}
	if tAtE == 0 {
		t.Fatal("never decayed by 1/e")
	}
	if tAtE < 0.6*tau || tAtE > 1.6*tau {
		t.Errorf("1/e time %g, analytic tau %g", tAtE, tau)
	}
}

func TestAxiTransientConvergesToSteady(t *testing.T) {
	s, err := fig4At(10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildAxiProblem(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	static, err := SolveAxi(p, sparse.Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := static.MaxT()
	// The block's slowest constant is ~ms (500 µm silicon); 40 ms suffices.
	tr, err := SolveAxiTransient(p, 1e-3, 40, sparse.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	got := tr.MaxT[len(tr.MaxT)-1]
	if units.RelErr(got, want) > 0.01 {
		t.Fatalf("transient final %g vs steady %g", got, want)
	}
	fmax, _, _ := tr.Final.MaxT()
	if units.RelErr(fmax, got) > 1e-12 {
		t.Errorf("Final field max %g vs trace %g", fmax, got)
	}
}

func TestAxiTransientMonotoneRise(t *testing.T) {
	s, err := fig4At(10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildAxiProblem(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := SolveAxiTransient(p, 2e-4, 60, sparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, v := range tr.MaxT {
		if v < prev-1e-9 {
			t.Fatalf("max T dropped at step %d: %g after %g", i, v, prev)
		}
		prev = v
	}
}

func TestAxiTransientMatchesModelTimescale(t *testing.T) {
	// The distributed model's settling time and the reference solver's must
	// agree within a factor ~2 — the transient extension's key validation.
	if testing.Short() {
		t.Skip("transient cross-validation is slow")
	}
	s, err := fig4At(10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildAxiProblem(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := SolveAxiTransient(p, 2.5e-4, 160, sparse.Options{}) // 40 ms
	if err != nil {
		t.Fatal(err)
	}
	refSettle, ok := tr.SettlingTime(0.05)
	if !ok {
		t.Fatal("reference did not settle")
	}
	mb, err := core.NewModelB(30).SolveTransient(s, core.TransientSpec{Dt: 2.5e-4, Steps: 160})
	if err != nil {
		t.Fatal(err)
	}
	if !mb.Settled {
		t.Fatal("Model B did not settle")
	}
	ratio := mb.SettlingTime / refSettle
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("settling times diverge: model %g s vs reference %g s", mb.SettlingTime, refSettle)
	}
}

func TestAxiTransientValidation(t *testing.T) {
	s, err := fig4At(10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildAxiProblem(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveAxiTransient(p, 0, 10, sparse.Options{}); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := SolveAxiTransient(p, 1e-3, 0, sparse.Options{}); err == nil {
		t.Error("zero steps accepted")
	}
	noCap := *p
	noCap.Cap = nil
	if _, err := SolveAxiTransient(&noCap, 1e-3, 5, sparse.Options{}); err == nil {
		t.Error("missing Cap accepted")
	}
	badCap := *p
	badCap.Cap = func(_, _ float64) float64 { return -1 }
	if _, err := SolveAxiTransient(&badCap, 1e-3, 5, sparse.Options{}); err == nil {
		t.Error("negative capacity accepted")
	}
}

// fig4At builds the Fig. 4 stack at a radius in µm (shared test helper).
func fig4At(rUM float64) (*stack.Stack, error) {
	return stack.Fig4Block(units.UM(rUM))
}
