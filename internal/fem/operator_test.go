package fem

import (
	"context"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/sparse"
)

// TestOperatorSolveBitIdenticalAxi pins the matrix-free contract end to end:
// forcing the stencil or the CSR operator (or leaving the choice to auto)
// must produce bit-identical temperature fields and iteration counts, at
// every worker count and under both the single-level and multigrid
// preconditioners.
func TestOperatorSolveBitIdenticalAxi(t *testing.T) {
	s := fig4(t, 10)
	for _, pc := range []sparse.PrecondKind{sparse.PrecondChebyshev, sparse.PrecondMG} {
		var ref *AxiSolution
		for _, w := range []int{1, 2, 4, 8} {
			for _, opk := range []OperatorKind{OperatorCSR, OperatorStencil, OperatorAuto} {
				res := coarse().Refine(2)
				res.Precond = pc
				res.Workers = w
				res.Operator = opk
				sol, err := SolveStack(s, res)
				if err != nil {
					t.Fatalf("%v/%v workers %d: %v", pc, opk, w, err)
				}
				if ref == nil {
					ref = sol
					continue
				}
				if sol.Stats.Iterations != ref.Stats.Iterations {
					t.Fatalf("%v/%v workers %d: %d iterations, want %d",
						pc, opk, w, sol.Stats.Iterations, ref.Stats.Iterations)
				}
				for j := range sol.T {
					for i := range sol.T[j] {
						if sol.T[j][i] != ref.T[j][i] {
							t.Fatalf("%v/%v workers %d: T[%d][%d] = %g != %g",
								pc, opk, w, j, i, sol.T[j][i], ref.T[j][i])
						}
					}
				}
			}
		}
	}
}

// TestOperatorSolveBitIdenticalCart covers the 3-D path, including the
// anisotropic (distinct vertical conductivity) assembly: the forced stencil
// and forced CSR solves must agree bitwise.
func TestOperatorSolveBitIdenticalCart(t *testing.T) {
	edges := func(n int, hi float64) []float64 {
		e, err := mesh.Uniform(0, hi, n)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	for _, aniso := range []bool{false, true} {
		p := &CartProblem{
			XEdges: edges(7, 1e-3),
			YEdges: edges(5, 1e-3),
			ZEdges: edges(11, 2e-3),
			K:      func(_, _, _ float64) float64 { return 3.0 },
			Q:      func(_, _, z float64) float64 { return 1e8 * (z + 1e-4) },
			Bottom: Fixed(0),
			Top:    Insulated(),
		}
		if aniso {
			p.KZ = func(_, _, z float64) float64 {
				if z > 1e-3 {
					return 120
				}
				return 3.0
			}
		}
		var ref *CartSolution
		for _, w := range []int{1, 4} {
			for _, opk := range []OperatorKind{OperatorCSR, OperatorStencil} {
				sc := NewSolveContext()
				// Pin a matrix-free-capable preconditioner: a system this
				// small auto-selects SSOR, which rejects the forced stencil.
				sol, err := solveCartWith(context.Background(), sc, p,
					sparse.Options{Workers: w, Precond: sparse.PrecondChebyshev}, opk, mgSelect{})
				sc.Close()
				if err != nil {
					t.Fatalf("aniso=%v %v workers %d: %v", aniso, opk, w, err)
				}
				if ref == nil {
					ref = sol
					continue
				}
				if sol.Stats.Iterations != ref.Stats.Iterations {
					t.Fatalf("aniso=%v %v workers %d: %d iterations, want %d",
						aniso, opk, w, sol.Stats.Iterations, ref.Stats.Iterations)
				}
				for l := range sol.T {
					for j := range sol.T[l] {
						for i := range sol.T[l][j] {
							if sol.T[l][j][i] != ref.T[l][j][i] {
								t.Fatalf("aniso=%v %v workers %d: T[%d][%d][%d] differs",
									aniso, opk, w, l, j, i)
							}
						}
					}
				}
			}
		}
	}
}

// TestOperatorForcedStencilSSORFails: SSOR's triangular sweeps need the
// assembled matrix, so forcing the stencil under it must fail the solve
// with a diagnostic naming the conflict — while auto quietly keeps the CSR.
func TestOperatorForcedStencilSSORFails(t *testing.T) {
	s := fig4(t, 10)
	res := coarse()
	res.Precond = sparse.PrecondSSOR
	res.Operator = OperatorStencil
	if _, err := SolveStack(s, res); err == nil || !strings.Contains(err.Error(), "ssor") {
		t.Fatalf("forced stencil under SSOR: err = %v, want mention of ssor", err)
	}
	res.Operator = OperatorAuto
	if _, err := SolveStack(s, res); err != nil {
		t.Fatalf("auto under SSOR must fall back to the CSR: %v", err)
	}
}

// TestOperatorRefineCarriesSolverKnobs: Refine scales mesh counts and the
// grading exponent but must pass the solver knobs through untouched.
func TestOperatorRefineCarriesSolverKnobs(t *testing.T) {
	r := DefaultResolution()
	r.Workers = 3
	r.Precond = sparse.PrecondMG
	r.Operator = OperatorStencil
	r2 := r.Refine(2)
	if r2.Workers != 3 || r2.Precond != sparse.PrecondMG || r2.Operator != OperatorStencil {
		t.Fatalf("Refine dropped solver knobs: %+v", r2)
	}
	if r2.RefineFactor != 2 {
		t.Fatalf("Refine(2).RefineFactor = %d, want 2", r2.RefineFactor)
	}
	if r4 := r2.Refine(2); r4.RefineFactor != 4 || r4.Bulk != 4*r.Bulk {
		t.Fatalf("Refine(2).Refine(2) = %+v, want factor 4 and 4x counts", r4)
	}
}

// TestRefineKeepsGradingEnvelope asserts the nested-family property behind
// deep-refinement solver scaling: refining must subdivide the same graded
// mesh, so the widest/narrowest cell ratio of the graded bulk interval stays
// (nearly) fixed instead of growing exponentially with the factor.
func TestRefineKeepsGradingEnvelope(t *testing.T) {
	s := fig4(t, 10)
	spread := func(res Resolution) float64 {
		p, err := BuildAxiProblem(s, res)
		if err != nil {
			t.Fatal(err)
		}
		// The first res.Bulk cells of the z mesh are the graded substrate.
		wMax, wMin := 0.0, 1e300
		for i := 0; i < res.Bulk; i++ {
			w := p.ZEdges[i+1] - p.ZEdges[i]
			if w > wMax {
				wMax = w
			}
			if w < wMin {
				wMin = w
			}
		}
		return wMax / wMin
	}
	base := spread(DefaultResolution())
	for _, f := range []int{2, 4, 8} {
		sp := spread(DefaultResolution().Refine(f))
		// Nested subdivision keeps the end-to-end envelope; the extra factor
		// below ratio^(1/f) per cell is small and bounded.
		if sp > 1.5*base {
			t.Fatalf("refine %d: bulk width spread %.3g vs base %.3g — grading is compounding", f, sp, base)
		}
	}
}
