package fem

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stack"
	"repro/internal/units"
)

func coarse() Resolution {
	// Keep unit tests fast; accuracy-sensitive tests refine explicitly.
	return Resolution{RadialVia: 4, RadialLiner: 2, RadialOuter: 12, AxialPerLayer: 4, AxialMin: 2, Bulk: 10}
}

func fig4(t *testing.T, rUM float64) *stack.Stack {
	t.Helper()
	s, err := stack.Fig4Block(units.UM(rUM))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSolveStackEnergyConservation(t *testing.T) {
	s := fig4(t, 10)
	sol, err := SolveStack(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	// The integrated source must equal the stack's total power and leave
	// through the sink.
	if got, want := sol.TotalSource(), s.TotalPower(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("TotalSource = %g, want %g", got, want)
	}
	if fb := sol.FluxBalanceError(); fb > 1e-7 {
		t.Errorf("flux balance error %g", fb)
	}
}

func TestSolveStackMaxAtTop(t *testing.T) {
	s := fig4(t, 10)
	sol, err := SolveStack(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	tmax, _, zAt := sol.MaxT()
	if tmax <= 0 {
		t.Fatalf("max ΔT = %g", tmax)
	}
	// The hottest point must be in the upper half of the structure (heat
	// sinks at the bottom).
	top := sol.p.ZEdges[len(sol.p.ZEdges)-1]
	if zAt < top/2 {
		t.Errorf("hottest point at z=%g of %g, expected upper half", zAt, top)
	}
}

func TestSolveStackGridConvergence(t *testing.T) {
	s := fig4(t, 10)
	c, err := SolveStack(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	f, err := SolveStack(s, coarse().Refine(2))
	if err != nil {
		t.Fatal(err)
	}
	tc, _, _ := c.MaxT()
	tf, _, _ := f.MaxT()
	if units.RelErr(tc, tf) > 0.05 {
		t.Errorf("coarse %g vs refined %g differ by more than 5%%", tc, tf)
	}
}

func TestSolveStackAgreesWithModelB(t *testing.T) {
	// The paper's central accuracy claim: the distributed model without any
	// fitting stays within ~10% of the reference over the sweeps.
	mb := core.NewModelB(100)
	for _, r := range []float64{2, 5, 10, 16} {
		s := fig4(t, r)
		sol, err := SolveStack(s, DefaultResolution())
		if err != nil {
			t.Fatal(err)
		}
		ref, _, _ := sol.MaxT()
		b, err := mb.Solve(s)
		if err != nil {
			t.Fatal(err)
		}
		if e := units.RelErr(b.MaxDT, ref); e > 0.12 {
			t.Errorf("r=%gµm: Model B %g vs FVM %g (err %.1f%%)", r, b.MaxDT, ref, 100*e)
		}
	}
}

func TestSolveStackNonMonotoneInTSi(t *testing.T) {
	// Fig. 6's headline: the reference itself shows the interior minimum.
	at := func(tsi float64) float64 {
		s, err := stack.Fig6Block(units.UM(tsi))
		if err != nil {
			t.Fatal(err)
		}
		sol, err := SolveStack(s, coarse())
		if err != nil {
			t.Fatal(err)
		}
		v, _, _ := sol.MaxT()
		return v
	}
	lo, mid, hi := at(5), at(20), at(80)
	if !(lo > mid && hi > mid) {
		t.Errorf("FVM misses non-monotonicity: ΔT(5)=%g ΔT(20)=%g ΔT(80)=%g", lo, mid, hi)
	}
}

func TestSolveStackClusterLowersTemperature(t *testing.T) {
	at := func(n int) float64 {
		s, err := stack.Fig7Block(n)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := SolveStack(s, coarse())
		if err != nil {
			t.Fatal(err)
		}
		v, _, _ := sol.MaxT()
		return v
	}
	n1, n4, n16 := at(1), at(4), at(16)
	if !(n1 > n4 && n4 > n16) {
		t.Errorf("cluster effect missing in FVM: %g, %g, %g", n1, n4, n16)
	}
	// Diminishing returns.
	if n1-n4 <= n4-n16 {
		t.Errorf("no saturation: gains %g then %g", n1-n4, n4-n16)
	}
}

func TestSolveStackLinearInPower(t *testing.T) {
	s := fig4(t, 10)
	sol1, err := SolveStack(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	s2 := s.Clone()
	for i := range s2.Planes {
		s2.Planes[i].DevicePower *= 2
		s2.Planes[i].ILDPower *= 2
	}
	sol2, err := SolveStack(s2, coarse())
	if err != nil {
		t.Fatal(err)
	}
	t1, _, _ := sol1.MaxT()
	t2, _, _ := sol2.MaxT()
	if units.RelErr(t2, 2*t1) > 1e-6 {
		t.Errorf("doubling power: %g, want %g", t2, 2*t1)
	}
}

func TestBuildAxiProblemValidation(t *testing.T) {
	s := fig4(t, 10)
	if _, err := BuildAxiProblem(s, Resolution{}); err == nil {
		t.Error("zero resolution accepted")
	}
	bad := s.Clone()
	bad.Via.Radius = -1
	if _, err := BuildAxiProblem(bad, coarse()); err == nil {
		t.Error("invalid stack accepted")
	}
	// Via cluster so dense the vias no longer fit the footprint; per-via
	// unit cells cannot contain a via then either. (The per-cell fit check
	// π(r_n+t_L)² < A0/n is exactly the n-via occupancy check, so this is
	// rejected by validation before meshing.)
	tight := s.Clone()
	tight.Via.Count = 25
	tight.Via.LinerThickness = units.UM(3)
	tight.Via.Radius = units.UM(45)
	if _, err := BuildAxiProblem(tight, coarse()); err == nil {
		t.Error("via larger than unit cell accepted")
	}
}

func TestBuildAxiProblemRegionClassification(t *testing.T) {
	s := fig4(t, 10)
	p, err := BuildAxiProblem(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	zTop := p.ZEdges[len(p.ZEdges)-1]
	// Deep in the first substrate: silicon, no source, no via.
	if k := p.K(units.UM(2), units.UM(100)); k != 130 {
		t.Errorf("bulk k = %g, want 130", k)
	}
	if k := p.K(units.UM(60), units.UM(100)); k != 130 {
		t.Errorf("bulk k (outside via radius) = %g", k)
	}
	// Inside the via fill above the first plane: copper.
	zMid := units.UM(500+4) + s.Planes[1].BondThickness + units.UM(1) // inside Si2
	if k := p.K(units.UM(2), zMid); k != 400 {
		t.Errorf("via fill k = %g, want 400", k)
	}
	// Inside the liner annulus at the same height: SiO2.
	if k := p.K(units.UM(10.2), zMid); k != 1.4 {
		t.Errorf("liner k = %g, want 1.4", k)
	}
	// Outside the liner: silicon.
	if k := p.K(units.UM(20), zMid); k != 130 {
		t.Errorf("surroundings k = %g, want 130", k)
	}
	// Top ILD: SiO2 with Joule source.
	zILD := zTop - s.Planes[2].ILDThickness/2
	if k := p.K(units.UM(30), zILD); k != 1.4 {
		t.Errorf("ILD k = %g, want 1.4", k)
	}
	if q := p.Q(units.UM(30), zILD); q <= 0 {
		t.Errorf("ILD source = %g, want positive", q)
	}
	// Device layer of plane 3: top 1 µm of Si3.
	zDev := zTop - s.Planes[2].ILDThickness - units.UM(0.5)
	if q := p.Q(units.UM(30), zDev); q <= 0 {
		t.Errorf("device source = %g, want positive", q)
	}
	// Silicon below the device layer: no source.
	zSi := zTop - s.Planes[2].ILDThickness - units.UM(3)
	if q := p.Q(units.UM(30), zSi); q != 0 {
		t.Errorf("substrate source = %g, want 0", q)
	}
}

func TestResolutionRefine(t *testing.T) {
	r := DefaultResolution().Refine(2)
	d := DefaultResolution()
	if r.RadialVia != 2*d.RadialVia || r.Bulk != 2*d.Bulk || r.AxialPerLayer != 2*d.AxialPerLayer {
		t.Errorf("Refine(2) = %+v", r)
	}
}
