package fem

import (
	"repro/internal/core"
	"repro/internal/stack"
)

// ReferenceModel adapts the finite-volume reference solver to the core.Model
// interface, so the FVM column of the paper's figures can run through the
// same batch-evaluation machinery (worker pools, memoization, error capture)
// as the analytical models. The zero value uses DefaultResolution.
type ReferenceModel struct {
	// Res is the mesh density; the zero value selects DefaultResolution.
	Res Resolution
}

// RefModelName is the name ReferenceModel reports, matching the reference
// column label of every figure.
const RefModelName = "FVM"

// Name implements core.Model.
func (ReferenceModel) Name() string { return RefModelName }

// resolution returns the effective mesh density.
func (m ReferenceModel) resolution() Resolution {
	if m.Res == (Resolution{}) {
		return DefaultResolution()
	}
	return m.Res
}

// Solve implements core.Model by running the axisymmetric finite-volume
// solve. PlaneDT is left nil: the cell field does not attribute temperatures
// to planes the way the lumped models do. Solver carries the CG statistics.
func (m ReferenceModel) Solve(s *stack.Stack) (*core.Result, error) {
	sol, err := SolveStack(s, m.resolution())
	if err != nil {
		return nil, err
	}
	max, _, _ := sol.MaxT()
	cells := len(sol.RCenters) * len(sol.ZCenters)
	return &core.Result{
		Model:    RefModelName,
		MaxDT:    max,
		Unknowns: cells,
		Solver:   sol.Stats,
	}, nil
}
