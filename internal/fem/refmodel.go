package fem

import (
	"context"

	"repro/internal/core"
	"repro/internal/stack"
)

// ReferenceModel adapts the finite-volume reference solver to the core.Model
// interface, so the FVM column of the paper's figures can run through the
// same batch-evaluation machinery (worker pools, memoization, error capture)
// as the analytical models. The zero value uses DefaultResolution.
type ReferenceModel struct {
	// Res is the mesh density; the zero value selects DefaultResolution.
	// Res.Workers, Res.Precond, Res.Operator, Res.Hierarchy and/or
	// Res.Precision alone (all mesh counts zero) keep the default mesh but
	// tune the solver.
	Res Resolution
}

// RefModelName is the name ReferenceModel reports, matching the reference
// column label of every figure.
const RefModelName = "FVM"

// Name implements core.Model.
func (ReferenceModel) Name() string { return RefModelName }

// resolution returns the effective mesh density: a Resolution whose mesh
// counts are all zero keeps the default mesh, with the solver knobs
// (Workers, Precond, Operator, Hierarchy, Precision) carried over.
func (m ReferenceModel) resolution() Resolution {
	if m.Res == (Resolution{Workers: m.Res.Workers, Precond: m.Res.Precond, Operator: m.Res.Operator,
		Hierarchy: m.Res.Hierarchy, Precision: m.Res.Precision}) {
		r := DefaultResolution()
		r.Workers = m.Res.Workers
		r.Precond = m.Res.Precond
		r.Operator = m.Res.Operator
		r.Hierarchy = m.Res.Hierarchy
		r.Precision = m.Res.Precision
		return r
	}
	return m.Res
}

// Solve implements core.Model by running the axisymmetric finite-volume
// solve. PlaneDT is left nil: the cell field does not attribute temperatures
// to planes the way the lumped models do. Solver carries the CG statistics.
func (m ReferenceModel) Solve(s *stack.Stack) (*core.Result, error) {
	return m.SolveCtx(context.Background(), s)
}

// SolveCtx implements core.ContextSolver: the underlying conjugate-gradient
// iteration checks ctx between iterations, so cancelling a sweep also stops
// its in-flight finite-volume solves.
func (m ReferenceModel) SolveCtx(ctx context.Context, s *stack.Stack) (*core.Result, error) {
	return m.solveWith(ctx, nil, s)
}

func (m ReferenceModel) solveWith(ctx context.Context, sc *SolveContext, s *stack.Stack) (*core.Result, error) {
	sol, err := SolveStackWith(ctx, sc, s, m.resolution())
	if err != nil {
		return nil, err
	}
	max, _, _ := sol.MaxT()
	cells := len(sol.RCenters) * len(sol.ZCenters)
	return &core.Result{
		Model:    RefModelName,
		MaxDT:    max,
		Unknowns: cells,
		Solver:   sol.Stats,
	}, nil
}

// NewReusable implements core.ReusableSolver: the returned instance owns a
// SolveContext, so consecutive solves share the assembled sparsity pattern,
// the multigrid hierarchy (reused outright when the operator is unchanged,
// rebuilt through recycled memory when it is not) and the CG scratch pool.
func (m ReferenceModel) NewReusable(warmStart bool) core.ReusableInstance {
	sc := NewSolveContext()
	sc.WarmStart = warmStart
	return &reusableRef{m: m, sc: sc}
}

type reusableRef struct {
	m  ReferenceModel
	sc *SolveContext
}

func (r *reusableRef) SolveCtx(ctx context.Context, s *stack.Stack) (*core.Result, error) {
	return r.m.solveWith(ctx, r.sc, s)
}

func (r *reusableRef) ResetWarm() { r.sc.ResetWarm() }
func (r *reusableRef) Close()     { r.sc.Close() }
