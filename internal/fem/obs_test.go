package fem

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// counterDelta runs fn and returns how much the named obs counter moved.
// Deltas (not absolute values) keep the assertions valid when other tests
// run in parallel against the shared default registry.
func counterDelta(name string, fn func()) int64 {
	before := obs.Default().Counter(name).Value()
	fn()
	return obs.Default().Counter(name).Value() - before
}

// TestMGFallbackSelectsWorkingPrecondAndCounts: an explicit multigrid
// request on a grid too small to coarsen must fall back to a preconditioner
// that actually converges, and the fallback must be visible in the metrics
// registry.
func TestMGFallbackSelectsWorkingPrecondAndCounts(t *testing.T) {
	s := fig4(t, 10)
	res := coarse()
	res.RadialVia, res.RadialLiner, res.RadialOuter = 1, 1, 2
	res.AxialPerLayer, res.AxialMin, res.Bulk = 1, 1, 2
	res.Precond = sparse.PrecondMG

	var sol *AxiSolution
	var err error
	d := counterDelta("fem.mg.fallback", func() {
		sol, err = SolveStack(s, res)
	})
	if err != nil {
		t.Fatal(err)
	}
	if d < 1 {
		t.Errorf("fem.mg.fallback moved by %d, want >= 1", d)
	}
	if sol.Stats.Precond == sparse.PrecondMG || sol.Stats.Precond == sparse.PrecondDefault {
		t.Errorf("fallback ran %v, want a concrete single-level preconditioner", sol.Stats.Precond)
	}
	if sol.Stats.Levels != 0 {
		t.Errorf("fallback reports %d multigrid levels, want 0", sol.Stats.Levels)
	}
	if sol.Stats.Residual > 1e-10 {
		t.Errorf("fallback preconditioner did not converge: residual %g", sol.Stats.Residual)
	}
}

// TestNotConvergedCarriesResidualAndCounts starves a solve of iterations
// and asserts the structured error: it matches both ErrNotConverged
// sentinels, exposes the achieved residual via ConvergenceError, and bumps
// the not-converged counter.
func TestNotConvergedCarriesResidualAndCounts(t *testing.T) {
	s := fig4(t, 10)
	p, err := BuildAxiProblem(s, coarse())
	if err != nil {
		t.Fatal(err)
	}
	var solveErr error
	d := counterDelta("fem.solve.notconverged", func() {
		_, solveErr = SolveAxi(p, sparse.Options{MaxIter: 2})
	})
	if solveErr == nil {
		t.Fatal("2-iteration budget converged; test cannot probe the failure path")
	}
	if d < 1 {
		t.Errorf("fem.solve.notconverged moved by %d, want >= 1", d)
	}
	if !errors.Is(solveErr, ErrNotConverged) {
		t.Errorf("error does not match fem.ErrNotConverged: %v", solveErr)
	}
	if !errors.Is(solveErr, sparse.ErrNotConverged) {
		t.Errorf("error does not match sparse.ErrNotConverged: %v", solveErr)
	}
	var ce *ConvergenceError
	if !errors.As(solveErr, &ce) {
		t.Fatalf("error is not a *ConvergenceError: %v", solveErr)
	}
	if ce.Stats.Iterations != 2 {
		t.Errorf("ConvergenceError iterations = %d, want 2", ce.Stats.Iterations)
	}
	if ce.Stats.Residual <= 0 {
		t.Errorf("ConvergenceError residual = %g, want the achieved (positive) residual", ce.Stats.Residual)
	}
	if ce.Cells == 0 || ce.What == "" {
		t.Errorf("ConvergenceError context incomplete: %+v", ce)
	}
	if !strings.Contains(solveErr.Error(), "residual") {
		t.Errorf("error message lost the residual: %v", solveErr)
	}
}

// TestSolveStackCtxEmitsSpanChain runs a reference solve under a tracer and
// checks the NDJSON trace contains the fem.stack → fem.solve →
// {fem.assemble, fem.precond, sparse.cg} chain with correct parent links.
func TestSolveStackCtxEmitsSpanChain(t *testing.T) {
	s := fig4(t, 10)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	ctx := obs.ContextWithTracer(context.Background(), tr)
	if _, err := SolveStackCtx(ctx, s, coarse()); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Span   string         `json:"span"`
		ID     int64          `json:"id"`
		Parent int64          `json:"parent"`
		DurNS  int64          `json:"dur_ns"`
		Attrs  map[string]any `json:"attrs"`
	}
	byName := map[string]rec{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("unparseable NDJSON line %q: %v", line, err)
		}
		byName[r.Span] = r
	}
	for _, want := range []string{"fem.stack", "fem.solve", "fem.assemble", "fem.precond", "sparse.cg"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("trace missing span %q (have %v)", want, buf.String())
		}
	}
	if byName["fem.stack"].Parent != 0 {
		t.Error("fem.stack is not a root span")
	}
	if byName["fem.solve"].Parent != byName["fem.stack"].ID {
		t.Error("fem.solve not parented to fem.stack")
	}
	for _, child := range []string{"fem.assemble", "fem.precond", "sparse.cg"} {
		if byName[child].Parent != byName["fem.solve"].ID {
			t.Errorf("%s not parented to fem.solve", child)
		}
	}
	if _, ok := byName["sparse.cg"].Attrs["iterations"]; !ok {
		t.Error("sparse.cg span lacks the iterations attribute")
	}
}

// TestSolveRecordsMetrics asserts one reference solve feeds the solver
// series of the default registry.
func TestSolveRecordsMetrics(t *testing.T) {
	s := fig4(t, 10)
	before := obs.Default().Snapshot()
	if _, err := SolveStack(s, coarse()); err != nil {
		t.Fatal(err)
	}
	after := obs.Default().Snapshot()
	if d := after.Counters["sparse.cg.solves"] - before.Counters["sparse.cg.solves"]; d < 1 {
		t.Errorf("sparse.cg.solves moved by %d, want >= 1", d)
	}
	if d := after.Histograms["sparse.cg.iterations"].Count - before.Histograms["sparse.cg.iterations"].Count; d < 1 {
		t.Errorf("sparse.cg.iterations histogram gained %d observations, want >= 1", d)
	}
}
