package sparse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
)

// ErrNotConverged is returned when an iterative solver exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNotConverged = errors.New("sparse: iterative solver did not converge")

// Options configures the iterative solvers. The zero value selects sensible
// defaults (rtol 1e-10, 10·n iterations, Jacobi preconditioning, one
// worker).
type Options struct {
	// Tol is the relative residual tolerance ||r||/||b||. Zero means 1e-10.
	Tol float64
	// MaxIter caps the iteration count. Zero means 10·n (at least 100).
	MaxIter int
	// Precond selects the preconditioner for PCG. The zero value
	// (PrecondDefault) resolves to Jacobi, or to Chebyshev when the solve
	// runs on more than one worker (SSOR-class preconditioners are
	// inherently sequential; Chebyshev parallelizes).
	Precond PrecondKind
	// X0 optionally supplies an initial guess (copied, not modified).
	X0 []float64
	// Workers is the kernel worker count of the solve; values <= 1 run
	// sequentially. With a fixed preconditioner, results are bit-identical
	// for any value: all reductions use fixed chunk boundaries combined in
	// chunk order. Ignored when Pool is set.
	Workers int
	// Pool optionally supplies a reusable worker pool, e.g. one pool shared
	// across the many linear solves of a transient integration. The caller
	// retains ownership and must Close it.
	Pool *Pool
	// MG supplies the multigrid hierarchy applied when Precond is PrecondMG.
	// It must have been built for the same matrix passed to the solver
	// (enforced by a size check). The solvers never build a hierarchy
	// themselves: construction needs the grid structure behind the matrix,
	// which the matrix alone does not carry — internal/fem builds and
	// attaches hierarchies for its structured finite-volume grids.
	MG MGSolver
}

// MGSolver is the hook through which a multigrid hierarchy (internal/mg)
// plugs into the iterative solvers as a preconditioner without this package
// importing it. Implementations must be fixed linear SPD operators —
// CG's convergence theory assumes the preconditioner does not change
// between iterations — and deterministic for any pool worker count.
type MGSolver interface {
	// Cycle applies one multigrid cycle approximating A⁻¹·r into z, running
	// its kernels on pool p (nil = sequential). z and r have Size() elements.
	Cycle(z, r []float64, p *Pool)
	// Levels reports the hierarchy depth (≥ 1).
	Levels() int
	// Size reports the fine-grid unknown count the hierarchy was built for.
	Size() int
}

// PrecondKind enumerates the available preconditioners.
type PrecondKind int

const (
	// PrecondDefault lets the caller of the solver pick; the solvers in this
	// package treat it as Jacobi.
	PrecondDefault PrecondKind = iota
	// PrecondJacobi scales by the inverse diagonal. Cheap and robust for
	// the strongly diagonal heat-conduction systems in this repo.
	PrecondJacobi
	// PrecondNone runs the unpreconditioned method.
	PrecondNone
	// PrecondSSOR applies a symmetric successive-over-relaxation sweep
	// (omega = 1, i.e. symmetric Gauss-Seidel) as the preconditioner. Its
	// triangular solves are inherently sequential.
	PrecondSSOR
	// PrecondChebyshev applies a fixed-degree Chebyshev polynomial in the
	// Jacobi-scaled matrix. Every operation is a matrix product or an
	// element-wise update, so it parallelizes across workers and stays
	// bit-identical for any worker count.
	PrecondChebyshev
	// PrecondMG applies one V-cycle of a geometric multigrid hierarchy
	// supplied via Options.MG. On the structured finite-volume grids of this
	// repository the CG iteration count becomes essentially mesh-independent,
	// which is what makes fine-resolution reference solves tractable. Like
	// Chebyshev, every operation is a matrix product, transfer, or
	// element-wise update on a fixed chunk grid, so solves stay bit-identical
	// for any worker count.
	PrecondMG
)

func (p PrecondKind) String() string {
	switch p {
	case PrecondDefault:
		return "default"
	case PrecondJacobi:
		return "jacobi"
	case PrecondNone:
		return "none"
	case PrecondSSOR:
		return "ssor"
	case PrecondChebyshev:
		return "chebyshev"
	case PrecondMG:
		return "multigrid"
	default:
		return fmt.Sprintf("PrecondKind(%d)", int(p))
	}
}

// ParsePrecond converts a command-line spelling into a PrecondKind.
// "auto" and "default" select PrecondDefault (the caller's policy decides);
// "mg" and "multigrid" both select PrecondMG.
func ParsePrecond(s string) (PrecondKind, error) {
	switch s {
	case "auto", "default", "":
		return PrecondDefault, nil
	case "jacobi":
		return PrecondJacobi, nil
	case "none":
		return PrecondNone, nil
	case "ssor":
		return PrecondSSOR, nil
	case "chebyshev":
		return PrecondChebyshev, nil
	case "mg", "multigrid":
		return PrecondMG, nil
	}
	return PrecondDefault, fmt.Errorf("sparse: unknown preconditioner %q (want auto, jacobi, none, ssor, chebyshev or mg)", s)
}

// Stats reports what an iterative solve did.
type Stats struct {
	// Iterations actually performed.
	Iterations int
	// Residual is the final relative residual.
	Residual float64
	// Precond is the preconditioner that actually ran (PrecondDefault is
	// resolved to the concrete kind before the solve starts).
	Precond PrecondKind
	// Wall is the wall-clock duration of the solve (for a transient
	// integration, the sum over all steps).
	Wall time.Duration
	// Workers is the kernel worker count the solve ran on (1 = sequential).
	Workers int
	// Levels is the multigrid hierarchy depth when Precond is PrecondMG,
	// zero otherwise.
	Levels int
}

func (s Stats) String() string {
	out := fmt.Sprintf("%d iterations, residual %.3g, precond %v", s.Iterations, s.Residual, s.Precond)
	if s.Levels > 0 {
		out += fmt.Sprintf(" (%d levels)", s.Levels)
	}
	if s.Workers > 1 {
		out += fmt.Sprintf(", %d workers", s.Workers)
	}
	return out
}

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return 1e-10
}

func (o Options) maxIter(n int) int {
	if o.MaxIter > 0 {
		return o.MaxIter
	}
	if n < 10 {
		return 100
	}
	return 10 * n
}

type preconditioner interface {
	apply(z, r []float64)
}

// releaser is implemented by preconditioners whose workspace came from a
// pool's scratch free-list; the solver releases them when the solve ends.
type releaser interface {
	release()
}

type identityPrecond struct{}

func (identityPrecond) apply(z, r []float64) { copy(z, r) }

type jacobiPrecond struct {
	invDiag []float64
	pool    *Pool
}

func newJacobi(a Operator, pl *Pool) (*jacobiPrecond, error) {
	inv := a.DiagonalInto(pl.Grab(a.Rows()))
	for i, v := range inv {
		if v == 0 {
			pl.Release(inv)
			return nil, fmt.Errorf("sparse: jacobi preconditioner: zero diagonal at row %d", i)
		}
		inv[i] = 1 / v
	}
	return &jacobiPrecond{invDiag: inv, pool: pl}, nil
}

func (p *jacobiPrecond) release() { p.pool.Release(p.invDiag) }

func (p *jacobiPrecond) apply(z, r []float64) {
	for i := range r {
		z[i] = r[i] * p.invDiag[i]
	}
}

// ssorPrecond implements M = (D+L) D^-1 (D+U) with omega = 1.
type ssorPrecond struct {
	a    *CSR
	diag []float64
	pool *Pool
}

// newSSOR builds the SSOR preconditioner. Its triangular sweeps walk the
// explicit CSR index arrays, so it is the one preconditioner that cannot run
// on a matrix-free Operator; callers selecting SSOR must solve through the
// assembled CSR matrix.
func newSSOR(op Operator, pl *Pool) (*ssorPrecond, error) {
	a, ok := op.(*CSR)
	if !ok {
		return nil, fmt.Errorf("sparse: ssor preconditioner requires an assembled *CSR matrix, got a matrix-free operator")
	}
	d := a.DiagonalInto(pl.Grab(a.rows))
	for i, v := range d {
		if v == 0 {
			pl.Release(d)
			return nil, fmt.Errorf("sparse: ssor preconditioner: zero diagonal at row %d", i)
		}
	}
	return &ssorPrecond{a: a, diag: d, pool: pl}, nil
}

func (p *ssorPrecond) release() { p.pool.Release(p.diag) }

func (p *ssorPrecond) apply(z, r []float64) {
	a, d := p.a, p.diag
	n := a.rows
	// Forward solve (D+L) y = r.
	for i := 0; i < n; i++ {
		s := r[i]
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			if j := a.colIdx[k]; j < i {
				s -= a.val[k] * z[j]
			}
		}
		z[i] = s / d[i]
	}
	// Scale by D: y = D·y.
	for i := 0; i < n; i++ {
		z[i] *= d[i]
	}
	// Backward solve (D+U) z = y.
	for i := n - 1; i >= 0; i-- {
		s := z[i]
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			if j := a.colIdx[k]; j > i {
				s -= a.val[k] * z[j]
			}
		}
		z[i] = s / d[i]
	}
}

// mgPrecond adapts an MGSolver hierarchy to the internal preconditioner
// interface, binding the pool of the enclosing solve.
type mgPrecond struct {
	h    MGSolver
	pool *Pool
}

func (m mgPrecond) apply(z, r []float64) { m.h.Cycle(z, r, m.pool) }

func makePrecond(a Operator, kind PrecondKind, mg MGSolver, pl *Pool) (preconditioner, PrecondKind, error) {
	if kind == PrecondDefault {
		if pl.Workers() > 1 {
			kind = PrecondChebyshev
		} else {
			kind = PrecondJacobi
		}
	}
	switch kind {
	case PrecondJacobi:
		p, err := newJacobi(a, pl)
		return p, PrecondJacobi, err
	case PrecondNone:
		return identityPrecond{}, PrecondNone, nil
	case PrecondSSOR:
		p, err := newSSOR(a, pl)
		return p, PrecondSSOR, err
	case PrecondChebyshev:
		p, err := newChebyshev(a, pl)
		return p, PrecondChebyshev, err
	case PrecondMG:
		if mg == nil {
			return nil, kind, fmt.Errorf("sparse: PrecondMG requires Options.MG (build a hierarchy with internal/mg)")
		}
		if mg.Size() != a.Rows() {
			return nil, kind, fmt.Errorf("sparse: multigrid hierarchy built for %d unknowns, matrix has %d", mg.Size(), a.Rows())
		}
		return mgPrecond{h: mg, pool: pl}, PrecondMG, nil
	default:
		return nil, kind, fmt.Errorf("sparse: unknown preconditioner %v", kind)
	}
}

// ctxErr reports a context cancellation without blocking; the nil Done
// channel of context.Background costs one branch.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// SolveCG solves the symmetric positive definite system A·x = b with the
// preconditioned Conjugate Gradient method. The matrix is consumed through
// the Operator interface: pass the assembled *CSR, or a matrix-free Stencil
// for structured grids — with the same values the two produce bit-identical
// iterates (every kernel accumulates in ascending column order either way).
func SolveCG(a Operator, b []float64, opt Options) ([]float64, Stats, error) {
	return SolveCGCtx(context.Background(), a, b, opt)
}

// SolveCGCtx is SolveCG honoring cancellation: the context is checked
// between iterations, and a cancelled solve returns promptly with the
// iterate so far and an error wrapping ctx.Err(). Kernels run across
// opt.Workers workers (or opt.Pool); with a fixed preconditioner the result
// is bit-identical for any worker count.
//
// Each solve emits a "sparse.cg" span when the context carries an
// obs.Tracer, and records iteration/residual/wall histograms plus
// per-preconditioner counters into the obs default registry. Neither
// touches the numerical path.
func SolveCGCtx(ctx context.Context, a Operator, b []float64, opt Options) ([]float64, Stats, error) {
	ctx, sp := obs.StartSpan(ctx, "sparse.cg")
	x, st, err := solveCG(ctx, a, b, opt)
	if sp != nil {
		sp.Set("unknowns", a.Rows())
		sp.Set("iterations", st.Iterations)
		sp.Set("residual", st.Residual)
		sp.Set("precond", st.Precond.String())
		sp.Set("workers", st.Workers)
		if st.Levels > 0 {
			sp.Set("mg_levels", st.Levels)
		}
		if err != nil {
			sp.Set("error", err.Error())
		}
		sp.End()
	}
	recordSolve(st, err)
	return x, st, err
}

func solveCG(ctx context.Context, a Operator, b []float64, opt Options) ([]float64, Stats, error) {
	start := time.Now()
	n := a.Rows()
	if a.Cols() != n {
		return nil, Stats{}, fmt.Errorf("sparse: CG needs a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("sparse: CG rhs length %d, want %d", len(b), n)
	}
	pl := opt.Pool
	if pl == nil {
		pl = NewPool(opt.Workers)
		defer pl.Close()
	}
	stats := func(it int, res float64, kind PrecondKind) Stats {
		st := Stats{Iterations: it, Residual: res, Precond: kind, Wall: time.Since(start), Workers: pl.Workers()}
		if kind == PrecondMG && opt.MG != nil {
			st.Levels = opt.MG.Levels()
		}
		return st
	}
	pre, kind, err := makePrecond(a, opt.Precond, opt.MG, pl)
	if err != nil {
		return nil, stats(0, 0, kind), err
	}
	if rel, ok := pre.(releaser); ok {
		defer rel.release()
	}
	// x escapes (it is the returned solution); the other four vectors are
	// pure scratch, fully overwritten before first read, so they come from
	// the pool's free-list — repeated solves on a shared pool (sweeps,
	// transient steps) then allocate no CG workspace at all.
	x := make([]float64, n)
	r, z, p, ap := pl.Grab(n), pl.Grab(n), pl.Grab(n), pl.Grab(n)
	defer pl.Release(r, z, p, ap)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, stats(0, 0, kind), fmt.Errorf("sparse: CG initial guess length %d, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
		pl.residualFrom(a, x, b, r)
	} else {
		copy(r, b)
	}
	bnorm := pl.norm2(b)
	if bnorm == 0 {
		// The unique SPD solution for b = 0 is x = 0.
		for i := range x {
			x[i] = 0
		}
		return x, stats(0, 0, kind), nil
	}
	tol := opt.tol()
	maxIter := opt.maxIter(n)
	pre.apply(z, r)
	copy(p, z)
	rz := pl.dot(r, z)
	rr := pl.dot(r, r)
	var it int
	for it = 0; it < maxIter; it++ {
		if math.Sqrt(rr)/bnorm <= tol {
			break
		}
		if err := ctxErr(ctx); err != nil {
			res := math.Sqrt(rr) / bnorm
			return x, stats(it, res, kind), fmt.Errorf("sparse: CG cancelled after %d iterations (residual %g): %w", it, res, err)
		}
		pap := pl.mulVecDot(a, p, ap, p)
		if pap <= 0 || math.IsNaN(pap) {
			return nil, stats(it, 0, kind), fmt.Errorf("sparse: CG breakdown (p·Ap = %g); matrix is not SPD", pap)
		}
		alpha := rz / pap
		rr = pl.cgUpdate(x, r, p, ap, alpha)
		pre.apply(z, r)
		rzNew := pl.dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		pl.xpby(p, z, beta)
	}
	res := math.Sqrt(rr) / bnorm
	st := stats(it, res, kind)
	if res > tol {
		return x, st, fmt.Errorf("%w: CG after %d iterations, residual %g > tol %g", ErrNotConverged, it, res, tol)
	}
	return x, st, nil
}

// SolveBiCGSTAB solves a general (possibly non-symmetric) system A·x = b.
func SolveBiCGSTAB(a *CSR, b []float64, opt Options) ([]float64, Stats, error) {
	n := a.rows
	if a.cols != n {
		return nil, Stats{}, fmt.Errorf("sparse: BiCGSTAB needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	if len(b) != n {
		return nil, Stats{}, fmt.Errorf("sparse: BiCGSTAB rhs length %d, want %d", len(b), n)
	}
	pre, kind, err := makePrecond(a, opt.Precond, opt.MG, nil)
	if err != nil {
		return nil, Stats{Precond: kind}, err
	}
	x := make([]float64, n)
	r := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, Stats{Precond: kind}, fmt.Errorf("sparse: BiCGSTAB initial guess length %d, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
		ax := a.MulVec(x, nil)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
	} else {
		copy(r, b)
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		return x, Stats{Precond: kind}, nil
	}
	tol := opt.tol()
	maxIter := opt.maxIter(n)

	rhat := make([]float64, n)
	copy(rhat, r)
	v := make([]float64, n)
	p := make([]float64, n)
	ph := make([]float64, n)
	s := make([]float64, n)
	sh := make([]float64, n)
	t := make([]float64, n)
	rho, alpha, omega := 1.0, 1.0, 1.0
	var it int
	for it = 0; it < maxIter; it++ {
		if norm2(r)/bnorm <= tol {
			break
		}
		rhoNew := dot(rhat, r)
		if rhoNew == 0 {
			return nil, Stats{Iterations: it, Precond: kind}, fmt.Errorf("sparse: BiCGSTAB breakdown (rho = 0)")
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		pre.apply(ph, p)
		a.MulVec(ph, v)
		d := dot(rhat, v)
		if d == 0 {
			return nil, Stats{Iterations: it, Precond: kind}, fmt.Errorf("sparse: BiCGSTAB breakdown (rhat·v = 0)")
		}
		alpha = rho / d
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if norm2(s)/bnorm <= tol {
			for i := range x {
				x[i] += alpha * ph[i]
			}
			copy(r, s)
			it++
			break
		}
		pre.apply(sh, s)
		a.MulVec(sh, t)
		tt := dot(t, t)
		if tt == 0 {
			return nil, Stats{Iterations: it, Precond: kind}, fmt.Errorf("sparse: BiCGSTAB breakdown (t·t = 0)")
		}
		omega = dot(t, s) / tt
		if omega == 0 {
			return nil, Stats{Iterations: it, Precond: kind}, fmt.Errorf("sparse: BiCGSTAB breakdown (omega = 0)")
		}
		for i := range x {
			x[i] += alpha*ph[i] + omega*sh[i]
			r[i] = s[i] - omega*t[i]
		}
	}
	res := norm2(r) / bnorm
	st := Stats{Iterations: it, Residual: res, Precond: kind}
	if res > tol {
		return x, st, fmt.Errorf("%w: BiCGSTAB after %d iterations, residual %g > tol %g", ErrNotConverged, it, res, tol)
	}
	return x, st, nil
}

// SolveGaussSeidel solves A·x = b with Gauss-Seidel sweeps. It is slow and
// exists as an independent cross-check of the Krylov solvers in tests.
func SolveGaussSeidel(a *CSR, b []float64, opt Options) ([]float64, Stats, error) {
	n := a.rows
	if a.cols != n || len(b) != n {
		return nil, Stats{}, fmt.Errorf("sparse: Gauss-Seidel dimension mismatch")
	}
	d := a.Diagonal()
	for i, v := range d {
		if v == 0 {
			return nil, Stats{}, fmt.Errorf("sparse: Gauss-Seidel: zero diagonal at row %d", i)
		}
	}
	x := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, Stats{}, fmt.Errorf("sparse: Gauss-Seidel initial guess length %d, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		return make([]float64, n), Stats{Precond: PrecondNone}, nil
	}
	tol := opt.tol()
	maxIter := opt.maxIter(n)
	var it int
	for it = 0; it < maxIter; it++ {
		for i := 0; i < n; i++ {
			s := b[i]
			for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
				if j := a.colIdx[k]; j != i {
					s -= a.val[k] * x[j]
				}
			}
			x[i] = s / d[i]
		}
		if a.Residual(x, b)/bnorm <= tol {
			break
		}
	}
	res := a.Residual(x, b) / bnorm
	st := Stats{Iterations: it, Residual: res, Precond: PrecondNone}
	if res > tol {
		return x, st, fmt.Errorf("%w: Gauss-Seidel after %d iterations, residual %g > tol %g", ErrNotConverged, it, res, tol)
	}
	return x, st, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
