package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func buildTestCSR(t *testing.T) *CSR {
	t.Helper()
	c := NewCOO(3, 3)
	c.Add(0, 0, 4)
	c.Add(0, 1, -1)
	c.Add(1, 0, -1)
	c.Add(1, 1, 4)
	c.Add(1, 2, -1)
	c.Add(2, 1, -1)
	c.Add(2, 2, 4)
	return c.ToCSR()
}

func TestCOOToCSRBasic(t *testing.T) {
	m := buildTestCSR(t)
	if m.Rows() != 3 || m.Cols() != 3 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	if m.NNZ() != 7 {
		t.Fatalf("NNZ = %d, want 7", m.NNZ())
	}
	if m.At(0, 0) != 4 || m.At(0, 1) != -1 || m.At(0, 2) != 0 {
		t.Fatal("entries wrong")
	}
}

func TestCOODuplicatesSum(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 0, 2.5)
	c.Add(1, 1, -1)
	c.Add(1, 1, 1) // sums to zero but stays stored
	m := c.ToCSR()
	if m.At(0, 0) != 3.5 {
		t.Fatalf("At(0,0) = %g, want 3.5", m.At(0, 0))
	}
	if m.At(1, 1) != 0 {
		t.Fatalf("At(1,1) = %g, want 0", m.At(1, 1))
	}
}

func TestCOOIgnoresExplicitZero(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 0)
	if c.NNZ() != 0 {
		t.Fatalf("explicit zero stored, NNZ = %d", c.NNZ())
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	c := NewCOO(2, 2)
	for _, idx := range [][2]int{{2, 0}, {0, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			c.Add(idx[0], idx[1], 1)
		}()
	}
}

func TestMulVec(t *testing.T) {
	m := buildTestCSR(t)
	y := m.MulVec([]float64{1, 2, 3}, nil)
	want := []float64{2, 4, 10}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec = %v, want %v", y, want)
		}
	}
}

func TestMulVecReusesBuffer(t *testing.T) {
	m := buildTestCSR(t)
	buf := make([]float64, 3)
	y := m.MulVec([]float64{1, 0, 0}, buf)
	if &y[0] != &buf[0] {
		t.Fatal("MulVec did not reuse the provided buffer")
	}
}

func TestDiagonal(t *testing.T) {
	m := buildTestCSR(t)
	d := m.Diagonal()
	for i, v := range d {
		if v != 4 {
			t.Fatalf("diag[%d] = %g, want 4", i, v)
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	if !buildTestCSR(t).IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	c := NewCOO(2, 2)
	c.Add(0, 1, 1)
	c.Add(1, 1, 1)
	if c.ToCSR().IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
}

func TestResidual(t *testing.T) {
	m := buildTestCSR(t)
	x := []float64{1, 2, 3}
	b := m.MulVec(x, nil)
	if r := m.Residual(x, b); r != 0 {
		t.Fatalf("residual of exact solution = %g", r)
	}
	b[0] += 0.5
	if r := m.Residual(x, b); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("residual = %g, want 0.5", r)
	}
}

func TestCSRMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 30
	c := NewCOO(n, n)
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
	}
	for k := 0; k < 200; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		v := rng.NormFloat64()
		c.Add(i, j, v)
		dense[i][j] += v
	}
	m := c.ToCSR()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := m.MulVec(x, nil)
	for i := 0; i < n; i++ {
		var want float64
		for j := 0; j < n; j++ {
			want += dense[i][j] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-10 {
			t.Fatalf("row %d: %g vs dense %g", i, y[i], want)
		}
		for j := 0; j < n; j++ {
			if math.Abs(m.At(i, j)-dense[i][j]) > 1e-12 {
				t.Fatalf("At(%d,%d) = %g, dense %g", i, j, m.At(i, j), dense[i][j])
			}
		}
	}
}

func TestEachVisitsAllEntries(t *testing.T) {
	m := buildTestCSR(t)
	var count int
	var sum float64
	m.Each(func(i, j int, v float64) {
		count++
		sum += v
		if m.At(i, j) != v {
			t.Fatalf("Each reported (%d,%d)=%g, At says %g", i, j, v, m.At(i, j))
		}
	})
	if count != m.NNZ() {
		t.Fatalf("Each visited %d entries, NNZ = %d", count, m.NNZ())
	}
	if math.Abs(sum-(4-1-1+4-1-1+4)) > 1e-12 {
		t.Fatalf("Each sum = %g", sum)
	}
}

func TestNewCOOPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCOO(0,1) did not panic")
		}
	}()
	NewCOO(0, 1)
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := buildTestCSR(t)
	defer func() {
		if recover() == nil {
			t.Fatal("At(9,0) did not panic")
		}
	}()
	m.At(9, 0)
}
