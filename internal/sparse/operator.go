package sparse

import "math"

// Operator is the read-only matrix contract the iterative solvers and the
// single-level preconditioners consume: everything CG, the Chebyshev
// preconditioner and the multigrid smoother need from A without committing
// to a storage format. *CSR implements it, as does the matrix-free Stencil
// for structured grids.
//
// The span methods mirror the pool kernels: each covers the half-open row
// range [lo, hi) with one plain sequential loop, and each row's sum must
// accumulate its terms in ascending column order — that single well-defined
// evaluation order is what makes two implementations of the same matrix
// bit-identical, and results independent of the pool's worker count.
type Operator interface {
	// Rows and Cols report the matrix dimensions.
	Rows() int
	Cols() int
	// SpanMulVec writes y[i] = (A·x)[i] for lo <= i < hi.
	SpanMulVec(x, y []float64, lo, hi int)
	// SpanMulVecAdd accumulates y[i] += (A·x)[i] for lo <= i < hi.
	SpanMulVecAdd(x, y []float64, lo, hi int)
	// SpanMulVecDot writes y[i] = (A·x)[i] for lo <= i < hi and returns the
	// partial dot product Σ w[i]·y[i] over the span, accumulated in row
	// order — the fused kernel at the heart of every CG iteration.
	SpanMulVecDot(x, y, w []float64, lo, hi int) float64
	// SpanResidual writes r[i] = b[i] - (A·x)[i] for lo <= i < hi.
	SpanResidual(x, b, r []float64, lo, hi int)
	// DiagonalInto writes the main diagonal into d (len min(rows, cols)) and
	// returns it.
	DiagonalInto(d []float64) []float64
	// AbsRowSumsInto writes Σ_j |a_ij| into s and returns it, each row's sum
	// accumulated in ascending column order (the Gershgorin bounds behind the
	// Chebyshev eigenvalue estimates).
	AbsRowSumsInto(s []float64) []float64
}

// SpanMulVec implements Operator.
func (m *CSR) SpanMulVec(x, y []float64, lo, hi int) { mulVecSpan(m, x, y, lo, hi) }

// SpanMulVecAdd implements Operator.
func (m *CSR) SpanMulVecAdd(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		y[i] += s
	}
}

// SpanMulVecDot implements Operator.
func (m *CSR) SpanMulVecDot(x, y, w []float64, lo, hi int) float64 {
	return mulVecDotSpan(m, x, y, w, lo, hi)
}

// SpanResidual implements Operator.
func (m *CSR) SpanResidual(x, b, r []float64, lo, hi int) { residualSpan(m, x, b, r, lo, hi) }

// AbsRowSumsInto implements Operator. s must have Rows() elements.
func (m *CSR) AbsRowSumsInto(s []float64) []float64 {
	if len(s) != m.rows {
		panic("sparse: AbsRowSumsInto length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		var row float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			row += math.Abs(m.val[k])
		}
		s[i] = row
	}
	return s
}
