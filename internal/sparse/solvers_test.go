package sparse

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// laplacian1D builds the standard SPD tridiagonal [-1 2 -1] matrix of size n.
func laplacian1D(n int) *CSR {
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

func TestSolveCGLaplacian(t *testing.T) {
	for _, n := range []int{1, 2, 5, 50, 500} {
		a := laplacian1D(n)
		b := make([]float64, n)
		for i := range b {
			b[i] = 1
		}
		x, st, err := SolveCG(a, b, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := a.Residual(x, b); r > 1e-8 {
			t.Fatalf("n=%d: residual %g (stats %+v)", n, r, st)
		}
	}
}

func TestSolveCGAllPreconditioners(t *testing.T) {
	a := laplacian1D(200)
	b := make([]float64, 200)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	for _, p := range []PrecondKind{PrecondNone, PrecondJacobi, PrecondSSOR, PrecondChebyshev} {
		x, st, err := SolveCG(a, b, Options{Precond: p})
		if err != nil {
			t.Fatalf("precond %v: %v", p, err)
		}
		if r := a.Residual(x, b); r > 1e-7 {
			t.Fatalf("precond %v: residual %g after %d iters", p, r, st.Iterations)
		}
	}
}

func TestSSORConvergesFasterThanNone(t *testing.T) {
	a := laplacian1D(400)
	b := make([]float64, 400)
	for i := range b {
		b[i] = 1
	}
	_, stNone, err := SolveCG(a, b, Options{Precond: PrecondNone})
	if err != nil {
		t.Fatal(err)
	}
	_, stSSOR, err := SolveCG(a, b, Options{Precond: PrecondSSOR})
	if err != nil {
		t.Fatal(err)
	}
	if stSSOR.Iterations >= stNone.Iterations {
		t.Fatalf("SSOR (%d iters) not faster than unpreconditioned (%d iters)",
			stSSOR.Iterations, stNone.Iterations)
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	a := laplacian1D(10)
	x, st, err := SolveCG(a, make([]float64, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 0 {
		t.Errorf("iterations = %d for zero rhs", st.Iterations)
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %g, want 0", i, v)
		}
	}
}

func TestSolveCGInitialGuess(t *testing.T) {
	a := laplacian1D(50)
	b := make([]float64, 50)
	for i := range b {
		b[i] = 1
	}
	exact, _, err := SolveCG(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Starting from the exact solution should converge immediately.
	_, st, err := SolveCG(a, b, Options{X0: exact})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 1 {
		t.Errorf("warm start took %d iterations", st.Iterations)
	}
}

func TestSolveCGNotSPD(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1) // indefinite
	_, _, err := SolveCG(c.ToCSR(), []float64{0, 1}, Options{Precond: PrecondNone})
	if err == nil {
		t.Fatal("CG on indefinite matrix succeeded")
	}
}

func TestSolveCGDimensionErrors(t *testing.T) {
	a := laplacian1D(4)
	if _, _, err := SolveCG(a, []float64{1, 2}, Options{}); err == nil {
		t.Error("bad rhs length accepted")
	}
	if _, _, err := SolveCG(a, make([]float64, 4), Options{X0: []float64{1}}); err == nil {
		t.Error("bad x0 length accepted")
	}
	rect := NewCOO(2, 3)
	rect.Add(0, 0, 1)
	if _, _, err := SolveCG(rect.ToCSR(), []float64{1, 2}, Options{}); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

func TestSolveCGNotConverged(t *testing.T) {
	a := laplacian1D(300)
	b := make([]float64, 300)
	b[0] = 1
	_, _, err := SolveCG(a, b, Options{MaxIter: 2, Precond: PrecondNone})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

func TestSolveBiCGSTABNonSymmetric(t *testing.T) {
	// Non-symmetric diagonally dominant system.
	c := NewCOO(3, 3)
	c.Add(0, 0, 5)
	c.Add(0, 1, 1)
	c.Add(1, 0, -2)
	c.Add(1, 1, 6)
	c.Add(1, 2, 0.5)
	c.Add(2, 1, 1)
	c.Add(2, 2, 4)
	a := c.ToCSR()
	b := []float64{1, 2, 3}
	x, _, err := SolveBiCGSTAB(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := a.Residual(x, b); r > 1e-8 {
		t.Fatalf("residual %g", r)
	}
}

func TestSolveBiCGSTABMatchesCGOnSPD(t *testing.T) {
	a := laplacian1D(100)
	b := make([]float64, 100)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	xcg, _, err := SolveCG(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	xbi, _, err := SolveBiCGSTAB(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xcg {
		if math.Abs(xcg[i]-xbi[i]) > 1e-6*(1+math.Abs(xcg[i])) {
			t.Fatalf("mismatch at %d: %g vs %g", i, xcg[i], xbi[i])
		}
	}
}

func TestSolveBiCGSTABZeroRHS(t *testing.T) {
	a := laplacian1D(5)
	x, _, err := SolveBiCGSTAB(a, make([]float64, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("nonzero solution for zero rhs")
		}
	}
}

func TestSolveGaussSeidel(t *testing.T) {
	a := laplacian1D(30)
	b := make([]float64, 30)
	for i := range b {
		b[i] = 1
	}
	x, _, err := SolveGaussSeidel(a, b, Options{Tol: 1e-9, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	xcg, _, err := SolveCG(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xcg[i]) > 1e-6*(1+math.Abs(xcg[i])) {
			t.Fatalf("GS vs CG mismatch at %d: %g vs %g", i, x[i], xcg[i])
		}
	}
}

func TestSolveGaussSeidelZeroDiagonal(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	if _, _, err := SolveGaussSeidel(c.ToCSR(), []float64{1, 1}, Options{}); err == nil {
		t.Fatal("zero diagonal accepted")
	}
}

// Property: CG solutions are linear in the right-hand side.
func TestCGLinearityProperty(t *testing.T) {
	a := laplacian1D(40)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b1 := make([]float64, 40)
		b2 := make([]float64, 40)
		sum := make([]float64, 40)
		for i := range b1 {
			b1[i] = rng.NormFloat64()
			b2[i] = rng.NormFloat64()
			sum[i] = b1[i] + b2[i]
		}
		opt := Options{Tol: 1e-12}
		x1, _, err1 := SolveCG(a, b1, opt)
		x2, _, err2 := SolveCG(a, b2, opt)
		xs, _, err3 := SolveCG(a, sum, opt)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range xs {
			if math.Abs(xs[i]-(x1[i]+x2[i])) > 1e-6*(1+math.Abs(xs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPrecondKindString(t *testing.T) {
	if PrecondJacobi.String() != "jacobi" || PrecondNone.String() != "none" ||
		PrecondSSOR.String() != "ssor" || PrecondDefault.String() != "default" ||
		PrecondChebyshev.String() != "chebyshev" {
		t.Error("PrecondKind.String wrong")
	}
	if PrecondKind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

// Regression: SolveGaussSeidel used to silently accept an initial guess of
// the wrong length, copying a prefix and solving from a corrupted start.
func TestSolveGaussSeidelBadInitialGuess(t *testing.T) {
	a := laplacian1D(10)
	b := make([]float64, 10)
	b[0] = 1
	if _, _, err := SolveGaussSeidel(a, b, Options{X0: make([]float64, 3)}); err == nil {
		t.Fatal("short X0 accepted")
	}
	if _, _, err := SolveGaussSeidel(a, b, Options{X0: make([]float64, 11)}); err == nil {
		t.Fatal("long X0 accepted")
	}
}

// Property: with a fixed preconditioner, the parallel CG solve is bit-
// identical to the sequential one for any worker count.
func TestSolveCGWorkersBitIdentical(t *testing.T) {
	const n = 900
	a := randomSPD(n, 31)
	b := randomVec(n, 32)
	for _, pc := range []PrecondKind{PrecondJacobi, PrecondChebyshev} {
		seq, _, err := SolveCG(a, b, Options{Precond: pc, Workers: 1})
		if err != nil {
			t.Fatalf("precond %v sequential: %v", pc, err)
		}
		for _, w := range []int{2, 4, 8} {
			par, st, err := SolveCG(a, b, Options{Precond: pc, Workers: w})
			if err != nil {
				t.Fatalf("precond %v workers=%d: %v", pc, w, err)
			}
			if st.Workers != w {
				t.Errorf("precond %v workers=%d: stats report %d workers", pc, w, st.Workers)
			}
			for i := range seq {
				if par[i] != seq[i] {
					t.Fatalf("precond %v workers=%d: x[%d] = %x, want %x",
						pc, w, i, math.Float64bits(par[i]), math.Float64bits(seq[i]))
				}
			}
		}
	}
}

func TestSolveCGDefaultPrecondSelection(t *testing.T) {
	a := laplacian1D(100)
	b := make([]float64, 100)
	b[0] = 1
	_, seq, err := SolveCG(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Precond != PrecondJacobi {
		t.Errorf("sequential default precond %v, want jacobi", seq.Precond)
	}
	_, par, err := SolveCG(a, b, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Precond != PrecondChebyshev {
		t.Errorf("parallel default precond %v, want chebyshev", par.Precond)
	}
}

func TestSolveCGStatsWallAndWorkers(t *testing.T) {
	a := laplacian1D(300)
	b := make([]float64, 300)
	for i := range b {
		b[i] = 1
	}
	_, st, err := SolveCG(a, b, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Wall <= 0 {
		t.Errorf("wall time %v not populated", st.Wall)
	}
	if st.Workers != 2 {
		t.Errorf("workers = %d, want 2", st.Workers)
	}
	if s := st.String(); s == "" {
		t.Error("stats String is empty")
	}
}

func TestSolveCGCtxPreCancelled(t *testing.T) {
	a := laplacian1D(200)
	b := make([]float64, 200)
	b[0] = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x, st, err := SolveCGCtx(ctx, a, b, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Iterations != 0 {
		t.Errorf("pre-cancelled solve ran %d iterations", st.Iterations)
	}
	if x == nil {
		t.Error("cancelled solve did not return the iterate so far")
	}
}

// countdownCtx reports cancellation only after Done has been polled n times,
// cancelling a solve mid-flight at a deterministic iteration.
type countdownCtx struct {
	context.Context
	remaining int
	done      chan struct{}
}

func newCountdownCtx(n int) *countdownCtx {
	return &countdownCtx{Context: context.Background(), remaining: n, done: make(chan struct{})}
}

func (c *countdownCtx) Done() <-chan struct{} {
	if c.remaining > 0 {
		c.remaining--
		return nil // blocks forever: not cancelled yet
	}
	select {
	case <-c.done:
	default:
		close(c.done)
	}
	return c.done
}

func (c *countdownCtx) Err() error {
	select {
	case <-c.done:
		return context.Canceled
	default:
		return nil
	}
}

func TestSolveCGCtxCancelsMidFlight(t *testing.T) {
	a := laplacian1D(500)
	b := make([]float64, 500)
	b[0] = 1
	const after = 5
	ctx := newCountdownCtx(after)
	x, st, err := SolveCGCtx(ctx, a, b, Options{Precond: PrecondNone})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Iterations != after {
		t.Errorf("cancelled after %d iterations, want %d", st.Iterations, after)
	}
	if st.Residual <= 0 {
		t.Errorf("cancelled stats missing residual: %+v", st)
	}
	if x == nil {
		t.Error("cancelled solve did not return the iterate so far")
	}
}
