package sparse

// Parallel, deterministic linear-algebra kernels.
//
// Every kernel runs over a fixed grid of row chunks whose boundaries depend
// only on the vector length — never on the worker count — and every
// reduction (dot, norm2) sums one partial per chunk, combined in chunk-index
// order by the caller. A chunk is always processed by exactly one worker
// with a plain sequential loop, so each kernel has a single well-defined
// floating-point evaluation order: results are bit-identical for any worker
// count, including the sequential path, which walks the same chunk grid.
//
// Each kernel is written twice: a span function with the actual loop, and a
// dispatching method that either calls the span directly (sequential pools)
// or wraps it in a closure for parRange. The split is deliberate: a function
// literal handed to parRange escapes to the heap on every call — the
// parallel path ships it to worker goroutines, so escape analysis pins it
// even when the sequential branch runs — and with hundreds of kernel calls
// per solve those closures dominated the steady-state allocation profile.
// The sequential fast paths never build a closure.

import (
	"math"
	"sync"
)

// chunkLen is the fixed row-chunk size of the parallel kernels. It must not
// depend on the worker count or the environment: chunk boundaries are part
// of the numerical contract (they fix the reduction order).
const chunkLen = 256

// numChunks returns the size of the fixed chunk grid for length n.
func numChunks(n int) int { return (n + chunkLen - 1) / chunkLen }

// chunkSpan returns the half-open bounds of chunk c of the grid for length n.
func chunkSpan(c, n int) (lo, hi int) {
	lo = c * chunkLen
	hi = lo + chunkLen
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Pool is a reusable set of kernel workers for the iterative solvers. A nil
// Pool and a one-worker Pool both run every kernel inline on the calling
// goroutine. Pools may be reused across solves (e.g. the many steps of a
// transient integration) but serve one solve at a time: methods must not be
// called concurrently.
type Pool struct {
	workers  int
	tasks    chan func()
	partials []float64 // per-chunk reduction scratch, grown on demand
	scratch  [][]float64
	closed   bool
}

// NewPool returns a pool with the given worker count; values < 1 select the
// sequential single-worker pool, which spawns no goroutines. Close must be
// called to release the workers of a parallel pool.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan func())
		for w := 1; w < workers; w++ {
			go func() {
				for f := range p.tasks {
					f()
				}
			}()
		}
	}
	return p
}

// Workers returns the pool's worker count (at least 1).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// seq reports whether every kernel runs inline on the calling goroutine,
// selecting the closure-free sequential fast paths.
func (p *Pool) seq() bool { return p == nil || p.workers <= 1 }

// Close releases the pool's workers. It is safe to call on a nil or
// sequential pool, and more than once.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil || p.closed {
		return
	}
	p.closed = true
	close(p.tasks)
}

// Grab returns a length-n float64 slice from the pool's scratch free-list,
// allocating when nothing fits. The contents are UNDEFINED: callers must
// fully overwrite the slice before reading it (the CG scratch vectors all
// qualify — each is written before its first read). A nil pool allocates.
// Like every Pool method, Grab/Release serve one solve at a time.
func (p *Pool) Grab(n int) []float64 {
	if p != nil {
		for i, s := range p.scratch {
			if cap(s) >= n {
				last := len(p.scratch) - 1
				p.scratch[i] = p.scratch[last]
				p.scratch[last] = nil
				p.scratch = p.scratch[:last]
				return s[:n]
			}
		}
	}
	return make([]float64, n)
}

// Release returns slices obtained from Grab to the free-list for reuse by a
// later solve on the same pool. A nil pool drops them for the GC.
func (p *Pool) Release(vs ...[]float64) {
	if p == nil {
		return
	}
	for _, v := range vs {
		if cap(v) > 0 {
			p.scratch = append(p.scratch, v[:cap(v)])
		}
	}
}

// parRange runs body(lo, hi, chunk) over every chunk of the fixed grid for
// length n, spreading contiguous chunk spans across the workers. The chunk
// grid — and therefore the work each chunk performs — is identical for any
// worker count; only the assignment of chunks to OS threads varies.
func (p *Pool) parRange(n int, body func(lo, hi, chunk int)) {
	nc := numChunks(n)
	runSpan := func(c0, c1 int) {
		for c := c0; c < c1; c++ {
			lo, hi := chunkSpan(c, n)
			body(lo, hi, c)
		}
	}
	w := p.Workers()
	if w > nc {
		w = nc
	}
	if w <= 1 {
		runSpan(0, nc)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 1; i < w; i++ {
		c0, c1 := i*nc/w, (i+1)*nc/w
		p.tasks <- func() {
			defer wg.Done()
			runSpan(c0, c1)
		}
	}
	runSpan(0, nc/w)
	wg.Wait()
}

// reduce computes one partial per chunk and combines them in chunk-index
// order, giving every reduction a single evaluation order for any worker
// count.
func (p *Pool) reduce(n int, partial func(lo, hi int) float64) float64 {
	nc := numChunks(n)
	var ps []float64
	if p == nil {
		ps = make([]float64, nc)
	} else {
		if cap(p.partials) < nc {
			p.partials = make([]float64, nc)
		}
		ps = p.partials[:nc]
	}
	p.parRange(n, func(lo, hi, c int) {
		ps[c] = partial(lo, hi)
	})
	var s float64
	for _, v := range ps {
		s += v
	}
	return s
}

// Span loops. Each holds the single floating-point evaluation order of its
// kernel; both the sequential and the parallel dispatch run these exact
// loops over the same chunk grid.

func dotSpan(a, b []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += a[i] * b[i]
	}
	return s
}

func mulVecSpan(m *CSR, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		y[i] = s
	}
}

func mulVecDotSpan(m *CSR, x, y, w []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		var yi float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			yi += m.val[k] * x[m.colIdx[k]]
		}
		y[i] = yi
		s += w[i] * yi
	}
	return s
}

func residualSpan(m *CSR, x, b, r []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		r[i] = b[i] - s
	}
}

func cgUpdateSpan(x, r, d, ad []float64, alpha float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		x[i] += alpha * d[i]
		ri := r[i] - alpha*ad[i]
		r[i] = ri
		s += ri * ri
	}
	return s
}

func xpbySpan(d, z []float64, beta float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		d[i] = z[i] + beta*d[i]
	}
}

func rawMulVecSpan(ptr, col []int32, val, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := ptr[i]; k < ptr[i+1]; k++ {
			s += val[k] * x[col[k]]
		}
		y[i] = s
	}
}

func rawMulVecAddSpan(ptr, col []int32, val, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := ptr[i]; k < ptr[i+1]; k++ {
			s += val[k] * x[col[k]]
		}
		y[i] += s
	}
}

func vecAddSpan(dst, src []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] += src[i]
	}
}

func chebyBeginSpan(z, d, res, invD, r []float64, invTheta float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		rh := invD[i] * r[i]
		res[i] = rh
		di := rh * invTheta
		d[i] = di
		z[i] = di
	}
}

func chebyStepSpan(z, d, res, invD, t []float64, c1, c2 float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		ri := res[i] - invD[i]*t[i] // res -= B·d (previous correction)
		res[i] = ri
		di := c1*d[i] + c2*ri
		d[i] = di
		z[i] += di
	}
}

// dot computes a·b with chunked ordered reduction.
func (p *Pool) dot(a, b []float64) float64 {
	if p.seq() {
		var s float64
		for c, nc := 0, numChunks(len(a)); c < nc; c++ {
			lo, hi := chunkSpan(c, len(a))
			s += dotSpan(a, b, lo, hi)
		}
		return s
	}
	return p.reduce(len(a), func(lo, hi int) float64 { return dotSpan(a, b, lo, hi) })
}

// norm2 computes ||v||₂ with chunked ordered reduction. dot(v, v) performs
// the exact per-chunk summation the dedicated closure used to.
func (p *Pool) norm2(v []float64) float64 { return math.Sqrt(p.dot(v, v)) }

// mulVec computes y = A·x across the pool. Rows are independent, so the
// result is exact regardless of chunking.
func (p *Pool) mulVec(m *CSR, x, y []float64) {
	if p.seq() {
		mulVecSpan(m, x, y, 0, m.rows)
		return
	}
	p.parRange(m.rows, func(lo, hi, _ int) { mulVecSpan(m, x, y, lo, hi) })
}

// mulVecDot fuses y = A·x with the reduction dot(w, y), saving one pass over
// the vectors per CG iteration.
func (p *Pool) mulVecDot(m *CSR, x, y, w []float64) float64 {
	if p.seq() {
		var s float64
		for c, nc := 0, numChunks(m.rows); c < nc; c++ {
			lo, hi := chunkSpan(c, m.rows)
			s += mulVecDotSpan(m, x, y, w, lo, hi)
		}
		return s
	}
	return p.reduce(m.rows, func(lo, hi int) float64 { return mulVecDotSpan(m, x, y, w, lo, hi) })
}

// residualFrom computes r = b - A·x across the pool.
func (p *Pool) residualFrom(m *CSR, x, b, r []float64) {
	if p.seq() {
		residualSpan(m, x, b, r, 0, m.rows)
		return
	}
	p.parRange(m.rows, func(lo, hi, _ int) { residualSpan(m, x, b, r, lo, hi) })
}

// cgUpdate fuses the CG solution/residual updates x += α·d, r -= α·ad with
// the reduction dot(r, r) over the updated residual.
func (p *Pool) cgUpdate(x, r, d, ad []float64, alpha float64) float64 {
	if p.seq() {
		var s float64
		for c, nc := 0, numChunks(len(x)); c < nc; c++ {
			lo, hi := chunkSpan(c, len(x))
			s += cgUpdateSpan(x, r, d, ad, alpha, lo, hi)
		}
		return s
	}
	return p.reduce(len(x), func(lo, hi int) float64 { return cgUpdateSpan(x, r, d, ad, alpha, lo, hi) })
}

// xpby computes d = z + β·d (the CG direction update).
func (p *Pool) xpby(d, z []float64, beta float64) {
	if p.seq() {
		xpbySpan(d, z, beta, 0, len(d))
		return
	}
	p.parRange(len(d), func(lo, hi, _ int) { xpbySpan(d, z, beta, lo, hi) })
}

// Range runs body(lo, hi) over the fixed deterministic chunk grid for
// length n, spreading the chunks across the pool's workers. Chunk boundaries
// depend only on n — never on the worker count — and each chunk is processed
// by exactly one worker with a plain sequential loop, so any computation
// whose chunks are independent (element-wise updates, per-row sums) is
// bit-identical for any worker count. A nil pool runs sequentially over the
// same grid. It exists for external deterministic kernels; note that the
// body closure escapes to the heap on every call, so hot per-iteration loops
// should use a dedicated kernel method (VecAdd, MulVecRaw, ChebyStep, ...)
// instead. Reductions that must combine partials stay inside this package.
func (p *Pool) Range(n int, body func(lo, hi int)) {
	if p.seq() {
		for c, nc := 0, numChunks(n); c < nc; c++ {
			lo, hi := chunkSpan(c, n)
			body(lo, hi)
		}
		return
	}
	p.parRange(n, func(lo, hi, _ int) { body(lo, hi) })
}

// VecAdd computes dst[i] += src[i] across the pool — element-wise, so
// bit-identical for any worker count. A nil pool runs sequentially.
func (p *Pool) VecAdd(dst, src []float64) {
	if p.seq() {
		vecAddSpan(dst, src, 0, len(dst))
		return
	}
	p.parRange(len(dst), func(lo, hi, _ int) { vecAddSpan(dst, src, lo, hi) })
}

// MulVecRaw computes y = M·x for a raw CSR triple (row pointers, column
// indices, values) that is not wrapped in a *CSR — the multigrid transfer
// operators store their prolongator and its transpose this way. Per-row sums
// accumulate in index order within one worker, so the result is bit-identical
// for any worker count. A nil pool runs sequentially.
func (p *Pool) MulVecRaw(ptr, col []int32, val, x, y []float64) {
	n := len(ptr) - 1
	if p.seq() {
		rawMulVecSpan(ptr, col, val, x, y, 0, n)
		return
	}
	p.parRange(n, func(lo, hi, _ int) { rawMulVecSpan(ptr, col, val, x, y, lo, hi) })
}

// MulVecAddRaw computes y += M·x for a raw CSR triple; see MulVecRaw.
func (p *Pool) MulVecAddRaw(ptr, col []int32, val, x, y []float64) {
	n := len(ptr) - 1
	if p.seq() {
		rawMulVecAddSpan(ptr, col, val, x, y, 0, n)
		return
	}
	p.parRange(n, func(lo, hi, _ int) { rawMulVecAddSpan(ptr, col, val, x, y, lo, hi) })
}

// ChebyBegin runs the first step of the Chebyshev semi-iteration on
// B·z = D⁻¹r from z = 0: res = D⁻¹r, d = res/θ, z = d. Fused and
// element-wise, so bit-identical for any worker count. Shared by the
// standalone Chebyshev preconditioner and the multigrid smoother.
func (p *Pool) ChebyBegin(z, d, res, invD, r []float64, invTheta float64) {
	if p.seq() {
		chebyBeginSpan(z, d, res, invD, r, invTheta, 0, len(r))
		return
	}
	p.parRange(len(r), func(lo, hi, _ int) { chebyBeginSpan(z, d, res, invD, r, invTheta, lo, hi) })
}

// ChebyStep runs one subsequent step of the Chebyshev semi-iteration given
// t = A·d: res -= D⁻¹t, d = c1·d + c2·res, z += d. See ChebyBegin.
func (p *Pool) ChebyStep(z, d, res, invD, t []float64, c1, c2 float64) {
	if p.seq() {
		chebyStepSpan(z, d, res, invD, t, c1, c2, 0, len(res))
		return
	}
	p.parRange(len(res), func(lo, hi, _ int) { chebyStepSpan(z, d, res, invD, t, c1, c2, lo, hi) })
}

// MulVecParallel computes y = A·x across the pool's workers, reusing y when
// it has the right length. The result is bitwise identical to MulVec for
// any worker count (rows are independent; no reduction is involved). A nil
// pool runs sequentially.
func (m *CSR) MulVecParallel(p *Pool, x, y []float64) []float64 {
	if len(x) != m.cols {
		panic("sparse: MulVecParallel dimension mismatch")
	}
	if len(y) != m.rows {
		y = make([]float64, m.rows)
	}
	p.mulVec(m, x, y)
	return y
}

// ResidualParallel computes r = b - A·x across the pool's workers. The
// matvec and subtraction are fused per row; each row's sum accumulates in
// index order, so the result is bit-identical to MulVecParallel followed by
// an element-wise subtraction, for any worker count. A nil pool runs
// sequentially.
func (m *CSR) ResidualParallel(p *Pool, x, b, r []float64) {
	if len(x) != m.cols || len(b) != m.rows || len(r) != m.rows {
		panic("sparse: ResidualParallel dimension mismatch")
	}
	p.residualFrom(m, x, b, r)
}
