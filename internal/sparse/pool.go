package sparse

// Parallel, deterministic linear-algebra kernels.
//
// Every kernel runs over a fixed grid of row chunks whose boundaries depend
// only on the vector length — never on the worker count — and every
// reduction (dot, norm2) sums one partial per chunk, combined in chunk-index
// order by the caller. A chunk is always processed by exactly one worker
// with a plain sequential loop, so each kernel has a single well-defined
// floating-point evaluation order: results are bit-identical for any worker
// count, including the sequential path, which walks the same chunk grid.
//
// Dispatch is closure-free on both paths. The parallel path stores the
// pending kernel's kind and operands in the pool's reusable job struct and
// ships plain chunk-span values over a channel; workers switch on the kind
// and run the span loops directly. The earlier design sent a function
// literal per worker per kernel call, and with hundreds of kernel calls per
// solve those escaping closures dominated the multi-worker allocation
// profile (thousands of allocs per solve vs double digits sequentially).
// A pool serves one solve at a time, so a single job struct suffices: the
// channel send orders the operand writes before the workers' reads, and
// wg.Wait orders the workers' results before the caller continues.

import (
	"math"
	"sync"
)

// chunkLen is the fixed row-chunk size of the parallel kernels. It must not
// depend on the worker count or the environment: chunk boundaries are part
// of the numerical contract (they fix the reduction order).
const chunkLen = 256

// numChunks returns the size of the fixed chunk grid for length n.
func numChunks(n int) int { return (n + chunkLen - 1) / chunkLen }

// chunkSpan returns the half-open bounds of chunk c of the grid for length n.
func chunkSpan(c, n int) (lo, hi int) {
	lo = c * chunkLen
	hi = lo + chunkLen
	if hi > n {
		hi = n
	}
	return lo, hi
}

// kernelKind enumerates the span loops the workers can run; see runChunk.
type kernelKind uint8

const (
	kernDot kernelKind = iota
	kernMulVec
	kernMulVecDot
	kernResidual
	kernCGUpdate
	kernXpby
	kernRawMulVec
	kernRawMulVecAdd
	kernVecAdd
	kernChebyBegin
	kernChebyStep
	kernRawMulVecF32
	kernRawMulVecAddF32
	kernLineSolve
	kernLineSolveF32
	kernBody
)

// kernelJob holds one kernel dispatch: the kind plus every operand any kind
// needs. It lives on the pool and is overwritten per call — never allocated —
// and cleared after the call so pooled vectors stay collectable.
type kernelJob struct {
	kind kernelKind
	n    int
	op   Operator
	ptr  []int32
	col  []int32
	// v1..v5 are the vector operands; their role depends on the kind (e.g.
	// for kernResidual: v1 = x, v2 = b, v3 = r).
	v1, v2, v3, v4, v5 []float64
	// f1/f2 are the float32 operands of the mixed-precision kinds: the raw
	// matvec values of kernRawMulVec*F32, the tridiagonal factors of
	// kernLineSolveF32.
	f1, f2 []float32
	// nd and axis carry the grid shape of the line-solve kinds.
	nd     [3]int
	axis   int
	s1, s2 float64
	body   func(lo, hi int)
}

// spanRange is a contiguous run of chunk indices assigned to one worker.
type spanRange struct{ c0, c1 int }

// Pool is a reusable set of kernel workers for the iterative solvers. A nil
// Pool and a one-worker Pool both run every kernel inline on the calling
// goroutine. Pools may be reused across solves (e.g. the many steps of a
// transient integration) but serve one solve at a time: methods must not be
// called concurrently.
type Pool struct {
	workers  int
	spans    chan spanRange
	wg       sync.WaitGroup
	job      kernelJob
	partials []float64 // per-chunk reduction scratch, grown on demand
	scratch  [][]float64
	closed   bool
}

// NewPool returns a pool with the given worker count; values < 1 select the
// sequential single-worker pool, which spawns no goroutines. Close must be
// called to release the workers of a parallel pool.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.spans = make(chan spanRange)
		for w := 1; w < workers; w++ {
			go func() {
				for t := range p.spans {
					for c := t.c0; c < t.c1; c++ {
						p.runChunk(c)
					}
					p.wg.Done()
				}
			}()
		}
	}
	return p
}

// Workers returns the pool's worker count (at least 1).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// seq reports whether every kernel runs inline on the calling goroutine,
// selecting the closure-free sequential fast paths.
func (p *Pool) seq() bool { return p == nil || p.workers <= 1 }

// Close releases the pool's workers. It is safe to call on a nil or
// sequential pool, and more than once.
func (p *Pool) Close() {
	if p == nil || p.spans == nil || p.closed {
		return
	}
	p.closed = true
	close(p.spans)
}

// Grab returns a length-n float64 slice from the pool's scratch free-list,
// allocating when nothing fits. The contents are UNDEFINED: callers must
// fully overwrite the slice before reading it (the CG scratch vectors all
// qualify — each is written before its first read). A nil pool allocates.
// Like every Pool method, Grab/Release serve one solve at a time.
func (p *Pool) Grab(n int) []float64 {
	if p != nil {
		for i, s := range p.scratch {
			if cap(s) >= n {
				last := len(p.scratch) - 1
				p.scratch[i] = p.scratch[last]
				p.scratch[last] = nil
				p.scratch = p.scratch[:last]
				return s[:n]
			}
		}
	}
	return make([]float64, n)
}

// Release returns slices obtained from Grab to the free-list for reuse by a
// later solve on the same pool. A nil pool drops them for the GC.
func (p *Pool) Release(vs ...[]float64) {
	if p == nil {
		return
	}
	for _, v := range vs {
		if cap(v) > 0 {
			p.scratch = append(p.scratch, v[:cap(v)])
		}
	}
}

// runChunk executes the current job on chunk c. Reduction kinds store their
// partial into partials[c]; the caller combines partials in chunk order.
func (p *Pool) runChunk(c int) {
	j := &p.job
	lo, hi := chunkSpan(c, j.n)
	switch j.kind {
	case kernDot:
		p.partials[c] = dotSpan(j.v1, j.v2, lo, hi)
	case kernMulVec:
		j.op.SpanMulVec(j.v1, j.v2, lo, hi)
	case kernMulVecDot:
		p.partials[c] = j.op.SpanMulVecDot(j.v1, j.v2, j.v3, lo, hi)
	case kernResidual:
		j.op.SpanResidual(j.v1, j.v2, j.v3, lo, hi)
	case kernCGUpdate:
		p.partials[c] = cgUpdateSpan(j.v1, j.v2, j.v3, j.v4, j.s1, lo, hi)
	case kernXpby:
		xpbySpan(j.v1, j.v2, j.s1, lo, hi)
	case kernRawMulVec:
		rawMulVecSpan(j.ptr, j.col, j.v1, j.v2, j.v3, lo, hi)
	case kernRawMulVecAdd:
		rawMulVecAddSpan(j.ptr, j.col, j.v1, j.v2, j.v3, lo, hi)
	case kernVecAdd:
		vecAddSpan(j.v1, j.v2, lo, hi)
	case kernChebyBegin:
		chebyBeginSpan(j.v1, j.v2, j.v3, j.v4, j.v5, j.s1, lo, hi)
	case kernChebyStep:
		chebyStepSpan(j.v1, j.v2, j.v3, j.v4, j.v5, j.s1, j.s2, lo, hi)
	case kernRawMulVecF32:
		rawMulVecF32Span(j.ptr, j.col, j.f1, j.v1, j.v2, lo, hi)
	case kernRawMulVecAddF32:
		rawMulVecAddF32Span(j.ptr, j.col, j.f1, j.v1, j.v2, lo, hi)
	case kernLineSolve:
		lineSolveSpan(j.nd, j.axis, j.v1, j.v2, j.v3, j.v4, lo, hi)
	case kernLineSolveF32:
		lineSolveF32Span(j.nd, j.axis, j.f1, j.f2, j.v1, j.v2, lo, hi)
	case kernBody:
		j.body(lo, hi)
	}
}

// run executes the job stored in p.job over every chunk of the grid for
// length n, spreading contiguous chunk spans across the workers. The chunk
// grid — and therefore the work each chunk performs — is identical for any
// worker count; only the assignment of chunks to OS threads varies. Callers
// must have filled p.job (except n, set here); run clears it before
// returning. Only the parallel path reaches run: the sequential fast paths
// in each kernel method never touch the job struct.
func (p *Pool) run(n int) {
	p.job.n = n
	nc := numChunks(n)
	w := p.workers
	if w > nc {
		w = nc
	}
	if w <= 1 {
		for c := 0; c < nc; c++ {
			p.runChunk(c)
		}
	} else {
		p.wg.Add(w - 1)
		for i := 1; i < w; i++ {
			p.spans <- spanRange{c0: i * nc / w, c1: (i + 1) * nc / w}
		}
		for c := 0; c < nc/w; c++ {
			p.runChunk(c)
		}
		p.wg.Wait()
	}
	p.job = kernelJob{}
}

// runReduce is run for reduction kinds: it sizes the per-chunk partial
// buffer, executes the job, and combines the partials in chunk-index order.
func (p *Pool) runReduce(n int) float64 {
	nc := numChunks(n)
	if cap(p.partials) < nc {
		p.partials = make([]float64, nc)
	}
	p.partials = p.partials[:nc]
	p.run(n)
	var s float64
	for _, v := range p.partials {
		s += v
	}
	return s
}

// Span loops. Each holds the single floating-point evaluation order of its
// kernel; both the sequential and the parallel dispatch run these exact
// loops over the same chunk grid.

func dotSpan(a, b []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += a[i] * b[i]
	}
	return s
}

func mulVecSpan(m *CSR, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		y[i] = s
	}
}

func mulVecDotSpan(m *CSR, x, y, w []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		var yi float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			yi += m.val[k] * x[m.colIdx[k]]
		}
		y[i] = yi
		s += w[i] * yi
	}
	return s
}

func residualSpan(m *CSR, x, b, r []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		r[i] = b[i] - s
	}
}

func cgUpdateSpan(x, r, d, ad []float64, alpha float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		x[i] += alpha * d[i]
		ri := r[i] - alpha*ad[i]
		r[i] = ri
		s += ri * ri
	}
	return s
}

func xpbySpan(d, z []float64, beta float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		d[i] = z[i] + beta*d[i]
	}
}

func rawMulVecSpan(ptr, col []int32, val, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := ptr[i]; k < ptr[i+1]; k++ {
			s += val[k] * x[col[k]]
		}
		y[i] = s
	}
}

func rawMulVecAddSpan(ptr, col []int32, val, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := ptr[i]; k < ptr[i+1]; k++ {
			s += val[k] * x[col[k]]
		}
		y[i] += s
	}
}

func vecAddSpan(dst, src []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] += src[i]
	}
}

func chebyBeginSpan(z, d, res, invD, r []float64, invTheta float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		rh := invD[i] * r[i]
		res[i] = rh
		di := rh * invTheta
		d[i] = di
		z[i] = di
	}
}

func chebyStepSpan(z, d, res, invD, t []float64, c1, c2 float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		ri := res[i] - invD[i]*t[i] // res -= B·d (previous correction)
		res[i] = ri
		di := c1*d[i] + c2*ri
		d[i] = di
		z[i] += di
	}
}

// Mixed-precision span loops: float32 coefficient/diagonal data widened per
// term, float64 vectors and accumulation — the bandwidth half of the
// mixed-precision multigrid cycle. Same evaluation order as their float64
// twins, so results stay bit-identical for any worker count.

func rawMulVecF32Span(ptr, col []int32, val []float32, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := ptr[i]; k < ptr[i+1]; k++ {
			s += float64(val[k]) * x[col[k]]
		}
		y[i] = s
	}
}

func rawMulVecAddF32Span(ptr, col []int32, val []float32, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := ptr[i]; k < ptr[i+1]; k++ {
			s += float64(val[k]) * x[col[k]]
		}
		y[i] += s
	}
}

// lineBase resolves the traversal of grid lines along an axis: the
// element stride within a line, the line length, and the base cell of line t.
// Lines enumerate the cells of the perpendicular plane in ascending index
// order, so line t's base follows from t and the grid shape alone.
func lineBase(nd [3]int, axis, t int) (base, stride, length int) {
	nx := nd[0]
	switch axis {
	case 0:
		return t * nx, 1, nx
	case 1:
		nxy := nx * nd[1]
		return t/nx*nxy + t%nx, nx, nd[1]
	default:
		return t, nx * nd[1], nd[2]
	}
}

func lineSolveSpan(nd [3]int, axis int, l, invc, r, x []float64, lo, hi int) {
	for t := lo; t < hi; t++ {
		i, s, length := lineBase(nd, axis, t)
		// LDLᵀ backsolve of the line's tridiagonal block: forward substitution
		// (I+L)y = r, then x = (I+Lᵀ)⁻¹C⁻¹y walking back down the line.
		x[i] = r[i]
		for k := 1; k < length; k++ {
			i += s
			x[i] = r[i] - l[i]*x[i-s]
		}
		x[i] *= invc[i]
		for k := length - 2; k >= 0; k-- {
			i -= s
			x[i] = x[i]*invc[i] - l[i+s]*x[i+s]
		}
	}
}

func lineSolveF32Span(nd [3]int, axis int, l, invc []float32, r, x []float64, lo, hi int) {
	for t := lo; t < hi; t++ {
		i, s, length := lineBase(nd, axis, t)
		x[i] = r[i]
		for k := 1; k < length; k++ {
			i += s
			x[i] = r[i] - float64(l[i])*x[i-s]
		}
		x[i] *= float64(invc[i])
		for k := length - 2; k >= 0; k-- {
			i -= s
			x[i] = x[i]*float64(invc[i]) - float64(l[i+s])*x[i+s]
		}
	}
}

// dot computes a·b with chunked ordered reduction.
func (p *Pool) dot(a, b []float64) float64 {
	if p.seq() {
		var s float64
		for c, nc := 0, numChunks(len(a)); c < nc; c++ {
			lo, hi := chunkSpan(c, len(a))
			s += dotSpan(a, b, lo, hi)
		}
		return s
	}
	p.job = kernelJob{kind: kernDot, v1: a, v2: b}
	return p.runReduce(len(a))
}

// norm2 computes ||v||₂ with chunked ordered reduction. dot(v, v) performs
// the exact per-chunk summation the dedicated closure used to.
func (p *Pool) norm2(v []float64) float64 { return math.Sqrt(p.dot(v, v)) }

// mulVec computes y = A·x across the pool. Rows are independent, so the
// result is exact regardless of chunking.
func (p *Pool) mulVec(m Operator, x, y []float64) {
	if p.seq() {
		m.SpanMulVec(x, y, 0, m.Rows())
		return
	}
	p.job = kernelJob{kind: kernMulVec, op: m, v1: x, v2: y}
	p.run(m.Rows())
}

// mulVecDot fuses y = A·x with the reduction dot(w, y), saving one pass over
// the vectors per CG iteration.
func (p *Pool) mulVecDot(m Operator, x, y, w []float64) float64 {
	n := m.Rows()
	if p.seq() {
		var s float64
		for c, nc := 0, numChunks(n); c < nc; c++ {
			lo, hi := chunkSpan(c, n)
			s += m.SpanMulVecDot(x, y, w, lo, hi)
		}
		return s
	}
	p.job = kernelJob{kind: kernMulVecDot, op: m, v1: x, v2: y, v3: w}
	return p.runReduce(n)
}

// residualFrom computes r = b - A·x across the pool.
func (p *Pool) residualFrom(m Operator, x, b, r []float64) {
	if p.seq() {
		m.SpanResidual(x, b, r, 0, m.Rows())
		return
	}
	p.job = kernelJob{kind: kernResidual, op: m, v1: x, v2: b, v3: r}
	p.run(m.Rows())
}

// cgUpdate fuses the CG solution/residual updates x += α·d, r -= α·ad with
// the reduction dot(r, r) over the updated residual.
func (p *Pool) cgUpdate(x, r, d, ad []float64, alpha float64) float64 {
	if p.seq() {
		var s float64
		for c, nc := 0, numChunks(len(x)); c < nc; c++ {
			lo, hi := chunkSpan(c, len(x))
			s += cgUpdateSpan(x, r, d, ad, alpha, lo, hi)
		}
		return s
	}
	p.job = kernelJob{kind: kernCGUpdate, v1: x, v2: r, v3: d, v4: ad, s1: alpha}
	return p.runReduce(len(x))
}

// xpby computes d = z + β·d (the CG direction update).
func (p *Pool) xpby(d, z []float64, beta float64) {
	if p.seq() {
		xpbySpan(d, z, beta, 0, len(d))
		return
	}
	p.job = kernelJob{kind: kernXpby, v1: d, v2: z, s1: beta}
	p.run(len(d))
}

// Range runs body(lo, hi) over the fixed deterministic chunk grid for
// length n, spreading the chunks across the pool's workers. Chunk boundaries
// depend only on n — never on the worker count — and each chunk is processed
// by exactly one worker with a plain sequential loop, so any computation
// whose chunks are independent (element-wise updates, per-row sums) is
// bit-identical for any worker count. A nil pool runs sequentially over the
// same grid. It exists for external deterministic kernels; note that the
// body closure escapes to the heap on every call, so hot per-iteration loops
// should use a dedicated kernel method (VecAdd, MulVecOp, ChebyStep, ...)
// instead. Reductions that must combine partials stay inside this package.
func (p *Pool) Range(n int, body func(lo, hi int)) {
	if p.seq() {
		for c, nc := 0, numChunks(n); c < nc; c++ {
			lo, hi := chunkSpan(c, n)
			body(lo, hi)
		}
		return
	}
	p.job = kernelJob{kind: kernBody, body: body}
	p.run(n)
}

// VecAdd computes dst[i] += src[i] across the pool — element-wise, so
// bit-identical for any worker count. A nil pool runs sequentially.
func (p *Pool) VecAdd(dst, src []float64) {
	if p.seq() {
		vecAddSpan(dst, src, 0, len(dst))
		return
	}
	p.job = kernelJob{kind: kernVecAdd, v1: dst, v2: src}
	p.run(len(dst))
}

// MulVecRaw computes y = M·x for a raw CSR triple (row pointers, column
// indices, values) that is not wrapped in a *CSR — the multigrid transfer
// operators store their prolongator and its transpose this way. Per-row sums
// accumulate in index order within one worker, so the result is bit-identical
// for any worker count. A nil pool runs sequentially.
func (p *Pool) MulVecRaw(ptr, col []int32, val, x, y []float64) {
	n := len(ptr) - 1
	if p.seq() {
		rawMulVecSpan(ptr, col, val, x, y, 0, n)
		return
	}
	p.job = kernelJob{kind: kernRawMulVec, ptr: ptr, col: col, v1: val, v2: x, v3: y}
	p.run(n)
}

// MulVecAddRaw computes y += M·x for a raw CSR triple; see MulVecRaw.
func (p *Pool) MulVecAddRaw(ptr, col []int32, val, x, y []float64) {
	n := len(ptr) - 1
	if p.seq() {
		rawMulVecAddSpan(ptr, col, val, x, y, 0, n)
		return
	}
	p.job = kernelJob{kind: kernRawMulVecAdd, ptr: ptr, col: col, v1: val, v2: x, v3: y}
	p.run(n)
}

// MulVecRawF32 computes y = M·x for a raw CSR triple whose values are stored
// as float32; each term widens to float64 before accumulating. See MulVecRaw.
func (p *Pool) MulVecRawF32(ptr, col []int32, val []float32, x, y []float64) {
	n := len(ptr) - 1
	if p.seq() {
		rawMulVecF32Span(ptr, col, val, x, y, 0, n)
		return
	}
	p.job = kernelJob{kind: kernRawMulVecF32, ptr: ptr, col: col, f1: val, v1: x, v2: y}
	p.run(n)
}

// MulVecAddRawF32 computes y += M·x for a float32-valued raw CSR triple; see
// MulVecRawF32.
func (p *Pool) MulVecAddRawF32(ptr, col []int32, val []float32, x, y []float64) {
	n := len(ptr) - 1
	if p.seq() {
		rawMulVecAddF32Span(ptr, col, val, x, y, 0, n)
		return
	}
	p.job = kernelJob{kind: kernRawMulVecAddF32, ptr: ptr, col: col, f1: val, v1: x, v2: y}
	p.run(n)
}

// ChebyBegin runs the first step of the Chebyshev semi-iteration on
// B·z = D⁻¹r from z = 0: res = D⁻¹r, d = res/θ, z = d. Fused and
// element-wise, so bit-identical for any worker count. Shared by the
// standalone Chebyshev preconditioner and the multigrid smoother.
func (p *Pool) ChebyBegin(z, d, res, invD, r []float64, invTheta float64) {
	if p.seq() {
		chebyBeginSpan(z, d, res, invD, r, invTheta, 0, len(r))
		return
	}
	p.job = kernelJob{kind: kernChebyBegin, v1: z, v2: d, v3: res, v4: invD, v5: r, s1: invTheta}
	p.run(len(r))
}

// ChebyStep runs one subsequent step of the Chebyshev semi-iteration given
// t = A·d: res -= D⁻¹t, d = c1·d + c2·res, z += d. See ChebyBegin.
func (p *Pool) ChebyStep(z, d, res, invD, t []float64, c1, c2 float64) {
	if p.seq() {
		chebyStepSpan(z, d, res, invD, t, c1, c2, 0, len(res))
		return
	}
	p.job = kernelJob{kind: kernChebyStep, v1: z, v2: d, v3: res, v4: invD, v5: t, s1: c1, s2: c2}
	p.run(len(res))
}

// LineSolve computes x = T⁻¹r for the tridiagonal block-diagonal matrix T
// whose blocks are the grid lines along the given axis of an nd-shaped grid
// (fastest-varying axis first), given the lines' LDLᵀ factors: l[i] the
// unit-lower-triangular entry of row i coupling it to the previous cell on
// its line, invc[i] the inverse pivot. Lines are independent and each is
// solved by one worker with a fixed-order recurrence, so the result is
// bit-identical for any worker count — the line relaxation of the geometric
// multigrid smoother. x must not alias r. A nil pool runs sequentially.
func (p *Pool) LineSolve(nd [3]int, axis int, l, invc, r, x []float64) {
	lines := len(r) / nd[axis]
	if p.seq() {
		lineSolveSpan(nd, axis, l, invc, r, x, 0, lines)
		return
	}
	p.job = kernelJob{kind: kernLineSolve, nd: nd, axis: axis, v1: l, v2: invc, v3: r, v4: x}
	p.run(lines)
}

// LineSolveF32 is LineSolve with float32 factors, widened per term — the
// smoother half of the mixed-precision multigrid cycle.
func (p *Pool) LineSolveF32(nd [3]int, axis int, l, invc []float32, r, x []float64) {
	lines := len(r) / nd[axis]
	if p.seq() {
		lineSolveF32Span(nd, axis, l, invc, r, x, 0, lines)
		return
	}
	p.job = kernelJob{kind: kernLineSolveF32, nd: nd, axis: axis, f1: l, f2: invc, v1: r, v2: x}
	p.run(lines)
}

// MulVecOp computes y = A·x for any Operator across the pool's workers. The
// result is bitwise identical for any worker count (rows are independent; no
// reduction is involved). A nil pool runs sequentially.
func (p *Pool) MulVecOp(a Operator, x, y []float64) {
	if len(x) != a.Cols() || len(y) != a.Rows() {
		panic("sparse: MulVecOp dimension mismatch")
	}
	p.mulVec(a, x, y)
}

// ResidualOp computes r = b - A·x for any Operator across the pool's
// workers. The matvec and subtraction are fused per row; each row's sum
// accumulates in ascending column order, so the result is bit-identical to
// MulVecOp followed by an element-wise subtraction, for any worker count.
// A nil pool runs sequentially.
func (p *Pool) ResidualOp(a Operator, x, b, r []float64) {
	if len(x) != a.Cols() || len(b) != a.Rows() || len(r) != a.Rows() {
		panic("sparse: ResidualOp dimension mismatch")
	}
	p.residualFrom(a, x, b, r)
}

// MulVecParallel computes y = A·x across the pool's workers, reusing y when
// it has the right length. The result is bitwise identical to MulVec for
// any worker count (rows are independent; no reduction is involved). A nil
// pool runs sequentially.
func (m *CSR) MulVecParallel(p *Pool, x, y []float64) []float64 {
	if len(x) != m.cols {
		panic("sparse: MulVecParallel dimension mismatch")
	}
	if len(y) != m.rows {
		y = make([]float64, m.rows)
	}
	p.mulVec(m, x, y)
	return y
}

// ResidualParallel computes r = b - A·x across the pool's workers. The
// matvec and subtraction are fused per row; each row's sum accumulates in
// index order, so the result is bit-identical to MulVecParallel followed by
// an element-wise subtraction, for any worker count. A nil pool runs
// sequentially.
func (m *CSR) ResidualParallel(p *Pool, x, b, r []float64) {
	if len(x) != m.cols || len(b) != m.rows || len(r) != m.rows {
		panic("sparse: ResidualParallel dimension mismatch")
	}
	p.residualFrom(m, x, b, r)
}
