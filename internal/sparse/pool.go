package sparse

// Parallel, deterministic linear-algebra kernels.
//
// Every kernel runs over a fixed grid of row chunks whose boundaries depend
// only on the vector length — never on the worker count — and every
// reduction (dot, norm2) sums one partial per chunk, combined in chunk-index
// order by the caller. A chunk is always processed by exactly one worker
// with a plain sequential loop, so each kernel has a single well-defined
// floating-point evaluation order: results are bit-identical for any worker
// count, including the sequential path, which walks the same chunk grid.

import (
	"math"
	"sync"
)

// chunkLen is the fixed row-chunk size of the parallel kernels. It must not
// depend on the worker count or the environment: chunk boundaries are part
// of the numerical contract (they fix the reduction order).
const chunkLen = 256

// numChunks returns the size of the fixed chunk grid for length n.
func numChunks(n int) int { return (n + chunkLen - 1) / chunkLen }

// Pool is a reusable set of kernel workers for the iterative solvers. A nil
// Pool and a one-worker Pool both run every kernel inline on the calling
// goroutine. Pools may be reused across solves (e.g. the many steps of a
// transient integration) but serve one solve at a time: methods must not be
// called concurrently.
type Pool struct {
	workers  int
	tasks    chan func()
	partials []float64 // per-chunk reduction scratch, grown on demand
	closed   bool
}

// NewPool returns a pool with the given worker count; values < 1 select the
// sequential single-worker pool, which spawns no goroutines. Close must be
// called to release the workers of a parallel pool.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan func())
		for w := 1; w < workers; w++ {
			go func() {
				for f := range p.tasks {
					f()
				}
			}()
		}
	}
	return p
}

// Workers returns the pool's worker count (at least 1).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Close releases the pool's workers. It is safe to call on a nil or
// sequential pool, and more than once.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil || p.closed {
		return
	}
	p.closed = true
	close(p.tasks)
}

// parRange runs body(lo, hi, chunk) over every chunk of the fixed grid for
// length n, spreading contiguous chunk spans across the workers. The chunk
// grid — and therefore the work each chunk performs — is identical for any
// worker count; only the assignment of chunks to OS threads varies.
func (p *Pool) parRange(n int, body func(lo, hi, chunk int)) {
	nc := numChunks(n)
	runSpan := func(c0, c1 int) {
		for c := c0; c < c1; c++ {
			lo := c * chunkLen
			hi := lo + chunkLen
			if hi > n {
				hi = n
			}
			body(lo, hi, c)
		}
	}
	w := p.Workers()
	if w > nc {
		w = nc
	}
	if w <= 1 {
		runSpan(0, nc)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 1; i < w; i++ {
		c0, c1 := i*nc/w, (i+1)*nc/w
		p.tasks <- func() {
			defer wg.Done()
			runSpan(c0, c1)
		}
	}
	runSpan(0, nc/w)
	wg.Wait()
}

// reduce computes one partial per chunk and combines them in chunk-index
// order, giving every reduction a single evaluation order for any worker
// count.
func (p *Pool) reduce(n int, partial func(lo, hi int) float64) float64 {
	nc := numChunks(n)
	var ps []float64
	if p == nil {
		ps = make([]float64, nc)
	} else {
		if cap(p.partials) < nc {
			p.partials = make([]float64, nc)
		}
		ps = p.partials[:nc]
	}
	p.parRange(n, func(lo, hi, c int) {
		ps[c] = partial(lo, hi)
	})
	var s float64
	for _, v := range ps {
		s += v
	}
	return s
}

// dot computes a·b with chunked ordered reduction.
func (p *Pool) dot(a, b []float64) float64 {
	return p.reduce(len(a), func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += a[i] * b[i]
		}
		return s
	})
}

// norm2 computes ||v||₂ with chunked ordered reduction.
func (p *Pool) norm2(v []float64) float64 {
	return math.Sqrt(p.reduce(len(v), func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += v[i] * v[i]
		}
		return s
	}))
}

// mulVec computes y = A·x across the pool. Rows are independent, so the
// result is exact regardless of chunking.
func (p *Pool) mulVec(m *CSR, x, y []float64) {
	p.parRange(m.rows, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			var s float64
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				s += m.val[k] * x[m.colIdx[k]]
			}
			y[i] = s
		}
	})
}

// mulVecDot fuses y = A·x with the reduction dot(w, y), saving one pass over
// the vectors per CG iteration.
func (p *Pool) mulVecDot(m *CSR, x, y, w []float64) float64 {
	return p.reduce(m.rows, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			var yi float64
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				yi += m.val[k] * x[m.colIdx[k]]
			}
			y[i] = yi
			s += w[i] * yi
		}
		return s
	})
}

// residualFrom computes r = b - A·x across the pool.
func (p *Pool) residualFrom(m *CSR, x, b, r []float64) {
	p.parRange(m.rows, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			var s float64
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				s += m.val[k] * x[m.colIdx[k]]
			}
			r[i] = b[i] - s
		}
	})
}

// cgUpdate fuses the CG solution/residual updates x += α·d, r -= α·ad with
// the reduction dot(r, r) over the updated residual.
func (p *Pool) cgUpdate(x, r, d, ad []float64, alpha float64) float64 {
	return p.reduce(len(x), func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			x[i] += alpha * d[i]
			ri := r[i] - alpha*ad[i]
			r[i] = ri
			s += ri * ri
		}
		return s
	})
}

// xpby computes d = z + β·d (the CG direction update).
func (p *Pool) xpby(d, z []float64, beta float64) {
	p.parRange(len(d), func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			d[i] = z[i] + beta*d[i]
		}
	})
}

// Range runs body(lo, hi) over the fixed deterministic chunk grid for
// length n, spreading the chunks across the pool's workers. Chunk boundaries
// depend only on n — never on the worker count — and each chunk is processed
// by exactly one worker with a plain sequential loop, so any computation
// whose chunks are independent (element-wise updates, per-row sums) is
// bit-identical for any worker count. A nil pool runs sequentially over the
// same grid. It exists for external deterministic kernels (e.g. the
// multigrid transfer operators in internal/mg); reductions that must combine
// partials stay inside this package.
func (p *Pool) Range(n int, body func(lo, hi int)) {
	p.parRange(n, func(lo, hi, _ int) { body(lo, hi) })
}

// MulVecParallel computes y = A·x across the pool's workers, reusing y when
// it has the right length. The result is bitwise identical to MulVec for
// any worker count (rows are independent; no reduction is involved). A nil
// pool runs sequentially.
func (m *CSR) MulVecParallel(p *Pool, x, y []float64) []float64 {
	if len(x) != m.cols {
		panic("sparse: MulVecParallel dimension mismatch")
	}
	if len(y) != m.rows {
		y = make([]float64, m.rows)
	}
	p.mulVec(m, x, y)
	return y
}
