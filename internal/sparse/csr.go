// Package sparse implements sparse matrices and iterative Krylov solvers
// used by the distributed TTSV model (Model B) at large segment counts and
// by the finite-volume heat-conduction reference solver.
//
// The usual workflow is: accumulate entries into a COO builder during
// assembly (duplicates sum), convert once to CSR, then run a preconditioned
// Conjugate Gradient (symmetric positive definite systems, the common case
// for heat conduction) or BiCGSTAB (mildly non-symmetric systems).
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// COO is a coordinate-format builder for sparse matrices. Entries with
// identical coordinates are summed on conversion, which is exactly what
// finite-volume/network assembly needs.
type COO struct {
	rows, cols int
	ri, ci     []int
	v          []float64
}

// NewCOO returns an empty builder for a rows×cols matrix.
func NewCOO(rows, cols int) *COO {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sparse: invalid COO dimensions %dx%d", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Add accumulates v at (i, j).
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("sparse: COO index (%d,%d) out of range for %dx%d", i, j, c.rows, c.cols))
	}
	if v == 0 {
		return
	}
	c.ri = append(c.ri, i)
	c.ci = append(c.ci, j)
	c.v = append(c.v, v)
}

// NNZ returns the number of accumulated (pre-deduplication) entries.
func (c *COO) NNZ() int { return len(c.v) }

// ToCSR converts the builder to compressed sparse row format, summing
// duplicate coordinates.
func (c *COO) ToCSR() *CSR {
	type entry struct {
		r, c int
		v    float64
	}
	entries := make([]entry, len(c.v))
	for i := range c.v {
		entries[i] = entry{c.ri[i], c.ci[i], c.v[i]}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].r != entries[b].r {
			return entries[a].r < entries[b].r
		}
		return entries[a].c < entries[b].c
	})
	// Merge duplicates.
	merged := entries[:0]
	for _, e := range entries {
		if n := len(merged); n > 0 && merged[n-1].r == e.r && merged[n-1].c == e.c {
			merged[n-1].v += e.v
			continue
		}
		merged = append(merged, e)
	}
	m := &CSR{
		rows:   c.rows,
		cols:   c.cols,
		rowPtr: make([]int, c.rows+1),
		colIdx: make([]int, len(merged)),
		val:    make([]float64, len(merged)),
	}
	for i, e := range merged {
		m.rowPtr[e.r+1]++
		m.colIdx[i] = e.c
		m.val[i] = e.v
	}
	for i := 0; i < c.rows; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []float64
}

// NewCSRFromSorted wraps pre-compressed arrays as a CSR matrix without the
// COO round-trip, for callers that assemble rows in order with sorted,
// deduplicated columns (e.g. the multigrid Galerkin products, whose
// accumulator already flushes that layout — re-sorting it through ToCSR
// dominated hierarchy construction). The slices are adopted, not copied;
// the caller must not modify them afterwards. The layout is validated in
// one O(nnz) pass.
func NewCSRFromSorted(rows, cols int, rowPtr, colIdx []int, val []float64) (*CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: invalid CSR dimensions %dx%d", rows, cols)
	}
	if len(rowPtr) != rows+1 || rowPtr[0] != 0 || rowPtr[rows] != len(colIdx) || len(colIdx) != len(val) {
		return nil, fmt.Errorf("sparse: inconsistent CSR arrays: %d rowPtr, %d colIdx, %d val",
			len(rowPtr), len(colIdx), len(val))
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("sparse: rowPtr not monotone at row %d", i)
		}
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if j := colIdx[k]; j < 0 || j >= cols {
				return nil, fmt.Errorf("sparse: column %d out of range in row %d", j, i)
			}
			if k > rowPtr[i] && colIdx[k] <= colIdx[k-1] {
				return nil, fmt.Errorf("sparse: columns not strictly ascending in row %d", i)
			}
		}
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}, nil
}

// Rows returns the row count.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the column count.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.val) }

// At returns the value at (i, j) (zero when not stored). Intended for tests
// and diagnostics; hot paths should use MulVec.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range for %dx%d", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	row := m.colIdx[lo:hi]
	k := sort.SearchInts(row, j)
	if k < len(row) && row[k] == j {
		return m.val[lo+k]
	}
	return 0
}

// MulVec computes y = A·x, reusing y when it has the right length.
func (m *CSR) MulVec(x, y []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: matrix %dx%d, x %d", m.rows, m.cols, len(x)))
	}
	if len(y) != m.rows {
		y = make([]float64, m.rows)
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		y[i] = s
	}
	return y
}

// Each calls fn for every stored entry in row-major order.
func (m *CSR) Each(fn func(i, j int, v float64)) {
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			fn(i, m.colIdx[k], m.val[k])
		}
	}
}

// Diagonal extracts the main diagonal.
func (m *CSR) Diagonal() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	return m.DiagonalInto(make([]float64, n))
}

// DiagonalInto writes the main diagonal into d and returns it. d must have
// min(rows, cols) elements; it lets repeated-build callers (the multigrid
// hierarchy) extract diagonals without allocating.
func (m *CSR) DiagonalInto(d []float64) []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	if len(d) != n {
		panic("sparse: DiagonalInto length mismatch")
	}
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// IsSymmetric reports whether the matrix equals its transpose within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.colIdx[k]
			if math.Abs(m.val[k]-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Residual returns ||A·x - b||_inf.
func (m *CSR) Residual(x, b []float64) float64 {
	ax := m.MulVec(x, nil)
	var max float64
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
