package sparse

import (
	"math/rand"
	"strings"
	"testing"
)

// gridCSR assembles a structured-grid conduction matrix the way the fem
// package does: one strictly positive conductance per axis-neighbor pair,
// emitted symmetrically (i,i)+g (i,j)-g (j,j)+g (j,i)-g, plus a positive
// Dirichlet-style diagonal boost — SPD with a full nearest-neighbor stencil.
func gridCSR(dims []int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	nd := [3]int{1, 1, 1}
	n := 1
	for i, d := range dims {
		nd[i] = d
		n *= d
	}
	stride := [3]int{1, nd[0], nd[0] * nd[1]}
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		ix := i % nd[0]
		iy := i / nd[0] % nd[1]
		iz := i / (nd[0] * nd[1])
		coord := [3]int{ix, iy, iz}
		for d := 0; d < 3; d++ {
			if coord[d]+1 >= nd[d] {
				continue
			}
			j := i + stride[d]
			g := 0.1 + rng.Float64()
			c.Add(i, i, g)
			c.Add(i, j, -g)
			c.Add(j, j, g)
			c.Add(j, i, -g)
		}
		c.Add(i, i, 0.5+rng.Float64())
	}
	return c.ToCSR()
}

var stencilDims = [][]int{
	{9},
	{7, 5},
	{1, 6},
	{6, 1},
	{4, 3, 5},
	{1, 4, 5},
	{4, 1, 5},
	{3, 4, 1},
	{1, 1, 7},
}

// The stencil operator must reproduce the CSR product bit for bit — same
// values, same accumulation order — for every grid shape, including axes
// collapsed to one cell, and for every kernel the solvers call.
func TestStencilMatchesCSRBitIdentical(t *testing.T) {
	for _, dims := range stencilDims {
		a := gridCSR(dims, 17)
		st, err := NewStencil(a, dims)
		if err != nil {
			t.Fatalf("dims %v: NewStencil: %v", dims, err)
		}
		n := a.Rows()
		x := randomVec(n, 5)
		b := randomVec(n, 6)
		w := randomVec(n, 7)

		yc := make([]float64, n)
		ys := make([]float64, n)
		a.SpanMulVec(x, yc, 0, n)
		st.SpanMulVec(x, ys, 0, n)
		for i := range yc {
			if yc[i] != ys[i] {
				t.Fatalf("dims %v: SpanMulVec differs at %d: %x vs %x", dims, i, yc[i], ys[i])
			}
		}

		ac := append([]float64(nil), b...)
		as := append([]float64(nil), b...)
		a.SpanMulVecAdd(x, ac, 0, n)
		st.SpanMulVecAdd(x, as, 0, n)
		for i := range ac {
			if ac[i] != as[i] {
				t.Fatalf("dims %v: SpanMulVecAdd differs at %d", dims, i)
			}
		}

		dc := a.SpanMulVecDot(x, yc, w, 0, n)
		ds := st.SpanMulVecDot(x, ys, w, 0, n)
		if dc != ds {
			t.Fatalf("dims %v: SpanMulVecDot differs: %x vs %x", dims, dc, ds)
		}

		rc := make([]float64, n)
		rs := make([]float64, n)
		a.SpanResidual(x, b, rc, 0, n)
		st.SpanResidual(x, b, rs, 0, n)
		for i := range rc {
			if rc[i] != rs[i] {
				t.Fatalf("dims %v: SpanResidual differs at %d", dims, i)
			}
		}

		diagC := a.DiagonalInto(make([]float64, n))
		diagS := st.DiagonalInto(make([]float64, n))
		absC := a.AbsRowSumsInto(make([]float64, n))
		absS := st.AbsRowSumsInto(make([]float64, n))
		for i := 0; i < n; i++ {
			if diagC[i] != diagS[i] {
				t.Fatalf("dims %v: DiagonalInto differs at %d", dims, i)
			}
			if absC[i] != absS[i] {
				t.Fatalf("dims %v: AbsRowSumsInto differs at %d: %x vs %x", dims, i, absC[i], absS[i])
			}
		}
	}
}

// The pool's parallel kernels over a Stencil must stay bit-identical to the
// sequential CSR product for any worker count (same chunk grid, same
// per-chunk evaluation order).
func TestStencilParallelBitIdenticalAcrossWorkers(t *testing.T) {
	dims := []int{13, 11, 7} // 1001 rows: several 256-row chunks plus a ragged tail
	a := gridCSR(dims, 23)
	st, err := NewStencil(a, dims)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows()
	x := randomVec(n, 8)
	b := randomVec(n, 9)
	ref := make([]float64, n)
	a.SpanMulVec(x, ref, 0, n)
	refR := make([]float64, n)
	a.SpanResidual(x, b, refR, 0, n)
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		y := make([]float64, n)
		r := make([]float64, n)
		p.MulVecOp(st, x, y)
		p.ResidualOp(st, x, b, r)
		for i := 0; i < n; i++ {
			if y[i] != ref[i] {
				t.Fatalf("workers=%d: MulVecOp differs at %d", workers, i)
			}
			if r[i] != refR[i] {
				t.Fatalf("workers=%d: ResidualOp differs at %d", workers, i)
			}
		}
		p.Close()
	}
}

// Refresh must pick up in-place value changes (the numeric-refill path) and
// reject refills that break the off-diagonal symmetry the lower-neighbor
// reuse depends on.
func TestStencilRefresh(t *testing.T) {
	dims := []int{5, 4}
	a := gridCSR(dims, 31)
	st, err := NewStencil(a, dims)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows()
	// Scale every value in place, as a refill with different material
	// parameters would.
	for k := range a.val {
		a.val[k] *= 1.75
	}
	if err := st.Refresh(); err != nil {
		t.Fatalf("Refresh after symmetric rescale: %v", err)
	}
	x := randomVec(n, 4)
	yc := make([]float64, n)
	ys := make([]float64, n)
	a.SpanMulVec(x, yc, 0, n)
	st.SpanMulVec(x, ys, 0, n)
	for i := range yc {
		if yc[i] != ys[i] {
			t.Fatalf("post-Refresh product differs at %d", i)
		}
	}
	// Break one off-diagonal pair: Refresh must notice.
	for k := a.rowPtr[1]; k < a.rowPtr[2]; k++ {
		if a.colIdx[k] == 2 {
			a.val[k] *= 2
		}
	}
	if err := st.Refresh(); err == nil {
		t.Fatal("Refresh accepted an asymmetric refill")
	}
}

func TestNewStencilRejectsNonStencilMatrices(t *testing.T) {
	// Entry outside the neighbor pattern.
	c := NewCOO(6, 6)
	for i := 0; i < 6; i++ {
		c.Add(i, i, 2)
	}
	c.Add(0, 5, -1)
	c.Add(5, 0, -1)
	if _, err := NewStencil(c.ToCSR(), []int{3, 2}); err == nil ||
		!strings.Contains(err.Error(), "stencil neighbor") {
		t.Fatalf("expected non-neighbor rejection, got %v", err)
	}
	// Missing interior coupling: diagonal-only matrix on a 2-D grid.
	d := NewCOO(6, 6)
	for i := 0; i < 6; i++ {
		d.Add(i, i, 2)
	}
	if _, err := NewStencil(d.ToCSR(), []int{3, 2}); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("expected missing-coupling rejection, got %v", err)
	}
	// Grid size must match the matrix.
	if _, err := NewStencil(gridCSR([]int{3, 2}, 1), []int{3, 3}); err == nil {
		t.Fatal("expected cell-count mismatch rejection")
	}
	// Unstructured matrix (random couplings) must be rejected, not mis-read.
	if _, err := NewStencil(randomSPD(12, 2), []int{12}); err == nil {
		t.Fatal("expected rejection of an unstructured matrix")
	}
}

// End to end: CG over the Stencil must return bit-identical solutions and
// iteration counts to CG over the CSR it was extracted from, for the
// preconditioners that support matrix-free operation.
func TestSolveCGStencilMatchesCSR(t *testing.T) {
	dims := []int{9, 8, 5}
	a := gridCSR(dims, 41)
	st, err := NewStencil(a, dims)
	if err != nil {
		t.Fatal(err)
	}
	b := randomVec(a.Rows(), 11)
	for _, pk := range []PrecondKind{PrecondNone, PrecondJacobi, PrecondChebyshev} {
		xc, sc, err := SolveCG(a, b, Options{Precond: pk})
		if err != nil {
			t.Fatalf("%v csr: %v", pk, err)
		}
		xs, ss, err := SolveCG(st, b, Options{Precond: pk})
		if err != nil {
			t.Fatalf("%v stencil: %v", pk, err)
		}
		if sc.Iterations != ss.Iterations {
			t.Fatalf("%v: iteration count differs: %d vs %d", pk, sc.Iterations, ss.Iterations)
		}
		for i := range xc {
			if xc[i] != xs[i] {
				t.Fatalf("%v: solution differs at %d: %x vs %x", pk, i, xc[i], xs[i])
			}
		}
	}
	// SSOR needs the assembled CSR; a matrix-free operator must be refused
	// loudly rather than silently downgraded.
	if _, _, err := SolveCG(st, b, Options{Precond: PrecondSSOR}); err == nil ||
		!strings.Contains(err.Error(), "ssor") {
		t.Fatalf("expected ssor-over-stencil rejection, got %v", err)
	}
}
