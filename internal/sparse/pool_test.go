package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// randomVec fills a length-n vector from a fixed-seed generator.
func randomVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// randomSPD builds a strictly diagonally dominant (hence SPD) sparse matrix
// with a few random off-diagonals per row.
func randomSPD(n int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	c := NewCOO(n, n)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.Float64()
			c.Add(i, j, -v)
			c.Add(j, i, -v)
			diag[i] += v
			diag[j] += v
		}
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, diag[i]+1+rng.Float64())
	}
	return c.ToCSR()
}

// Kernels must be bit-identical for any worker count: the chunk grid fixes
// the reduction order, workers only change which OS thread runs a chunk.
func TestKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	// 1100 elements spans several 256-element chunks with a ragged tail.
	const n = 1100
	a := randomVec(n, 1)
	b := randomVec(n, 2)
	m := randomSPD(n, 3)

	type snapshot struct {
		dot, norm, mvDot, cgRR float64
		y, x, r, d             []float64
	}
	run := func(p *Pool) snapshot {
		var s snapshot
		s.dot = p.dot(a, b)
		s.norm = p.norm2(a)
		s.y = make([]float64, n)
		s.mvDot = p.mulVecDot(m, a, s.y, b)
		s.x = append([]float64(nil), a...)
		s.r = append([]float64(nil), b...)
		s.cgRR = p.cgUpdate(s.x, s.r, a, b, 0.37)
		s.d = append([]float64(nil), a...)
		p.xpby(s.d, b, -1.21)
		return s
	}

	seq := run(NewPool(1))
	for _, w := range []int{2, 4, 8} {
		p := NewPool(w)
		got := run(p)
		p.Close()
		if got.dot != seq.dot || got.norm != seq.norm || got.mvDot != seq.mvDot || got.cgRR != seq.cgRR {
			t.Fatalf("workers=%d: reduction mismatch: %v vs sequential %v", w, got, seq)
		}
		for i := 0; i < n; i++ {
			if got.y[i] != seq.y[i] || got.x[i] != seq.x[i] || got.r[i] != seq.r[i] || got.d[i] != seq.d[i] {
				t.Fatalf("workers=%d: vector mismatch at %d", w, i)
			}
		}
	}
}

func TestMulVecParallelMatchesMulVec(t *testing.T) {
	const n = 700
	m := randomSPD(n, 7)
	x := randomVec(n, 8)
	want := m.MulVec(x, nil)
	for _, w := range []int{1, 2, 4} {
		p := NewPool(w)
		got := m.MulVecParallel(p, x, nil)
		p.Close()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: y[%d] = %g, want %g", w, i, got[i], want[i])
			}
		}
	}
	// Nil pool runs sequentially.
	var nilPool *Pool
	got := m.MulVecParallel(nilPool, x, make([]float64, n))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil pool: y[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// A pool must survive reuse across many kernel calls (a transient integration
// shares one pool over all its steps) and repeated Close calls.
func TestPoolReuseAndClose(t *testing.T) {
	p := NewPool(4)
	a := randomVec(600, 11)
	first := p.dot(a, a)
	for i := 0; i < 50; i++ {
		if got := p.dot(a, a); got != first {
			t.Fatalf("reuse %d: dot drifted: %g vs %g", i, got, first)
		}
	}
	p.Close()
	p.Close() // idempotent

	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Errorf("nil pool workers = %d, want 1", nilPool.Workers())
	}
	nilPool.Close() // no-op
	if got := nilPool.dot(a, a); got != first {
		t.Errorf("nil pool dot %g, want %g", got, first)
	}
	if NewPool(0).Workers() != 1 || NewPool(-3).Workers() != 1 {
		t.Error("worker counts < 1 must clamp to the sequential pool")
	}
}

// The chunk grid must depend only on the vector length.
func TestChunkGridFixed(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 1}, {chunkLen, 1}, {chunkLen + 1, 2}, {10 * chunkLen, 10},
	} {
		if got := numChunks(tc.n); got != tc.want {
			t.Errorf("numChunks(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestChebyshevPrecondSPDAndDeterministic(t *testing.T) {
	const n = 500
	m := randomSPD(n, 21)
	r := randomVec(n, 22)
	seq, err := newChebyshev(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	z0 := make([]float64, n)
	seq.apply(z0, r)
	// z = q(B)·D⁻¹r with q positive on the spectrum: r·z must be positive.
	var rz float64
	for i := range r {
		rz += r[i] * z0[i]
	}
	if rz <= 0 || math.IsNaN(rz) {
		t.Fatalf("chebyshev application not positive definite: r·z = %g", rz)
	}
	for _, w := range []int{2, 4, 8} {
		p := NewPool(w)
		c, err := newChebyshev(m, p)
		if err != nil {
			t.Fatal(err)
		}
		z := make([]float64, n)
		c.apply(z, r)
		p.Close()
		for i := range z {
			if z[i] != z0[i] {
				t.Fatalf("workers=%d: z[%d] = %g, want %g", w, i, z[i], z0[i])
			}
		}
	}
}
