package sparse

import "repro/internal/obs"

// Metric names recorded by SolveCGCtx. Kept as constants so tests and the
// README stay in sync with the code.
const (
	metricSolves      = "sparse.cg.solves"
	metricFailures    = "sparse.cg.failures"
	metricIterations  = "sparse.cg.iterations"
	metricResidual    = "sparse.cg.residual"
	metricWallSeconds = "sparse.cg.wall_seconds"
)

// recordSolve feeds one finished CG solve into the obs default registry.
// With the registry disabled (obs.SetDefault(nil)) this is a single pointer
// load and a return.
func recordSolve(st Stats, err error) {
	r := obs.Default()
	if r == nil {
		return
	}
	r.Counter(metricSolves).Inc()
	r.Counter("sparse.cg.precond." + st.Precond.String()).Inc()
	if err != nil {
		r.Counter(metricFailures).Inc()
	}
	r.Histogram(metricIterations, obs.ExpBuckets(1, 2, 14)).Observe(float64(st.Iterations))
	r.Histogram(metricResidual, obs.ExpBuckets(1e-16, 10, 15)).Observe(st.Residual)
	r.Histogram(metricWallSeconds, obs.ExpBuckets(1e-6, 4, 13)).Observe(st.Wall.Seconds())
}
