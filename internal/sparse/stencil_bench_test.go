package sparse

import "testing"

// BenchmarkStencilMatVec / BenchmarkCSRMatVec are the microbenchmark A/B
// behind the matrix-free operator: one y = A·x product on a 64×64×32
// structured grid (131k unknowns, 7-point stencil), evaluated from the
// per-direction coefficient arrays versus streaming the assembled CSR.
// `make profile-stencil` captures CPU/alloc pprof of the stencil variant.
func benchMatVec(b *testing.B, op Operator) {
	n := op.Rows()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%17) - 8
	}
	p := NewPool(1)
	defer p.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MulVecOp(op, x, y)
	}
}

func benchGrid(b *testing.B) (*CSR, []int) {
	b.Helper()
	dims := []int{64, 64, 32}
	return gridCSR(dims, 5), dims
}

func BenchmarkStencilMatVec(b *testing.B) {
	a, dims := benchGrid(b)
	st, err := NewStencil(a, dims)
	if err != nil {
		b.Fatal(err)
	}
	benchMatVec(b, st)
}

func BenchmarkCSRMatVec(b *testing.B) {
	a, _ := benchGrid(b)
	benchMatVec(b, a)
}
