package sparse

// Float32-storage stencil operator.
//
// StencilF32 is the mixed-precision sibling of the coefficient-backed
// Stencil: the 7-point coefficients are stored as float32 while every vector
// stays float64 and every accumulation runs in float64 after widening each
// coefficient. Halving the coefficient bytes roughly halves the memory
// traffic of a matvec this regular — and on the coarse levels of a multigrid
// preconditioner, where the operator only shapes the Krylov space of the
// float64 outer CG, the rounding never reaches the reported solution.
//
// The span loops walk the exact neighbor sequence of the float64 stencil
// (−z, −y, −x, diagonal, +x, +y, +z), so results are deterministic and
// bit-identical for any pool worker count.

import "fmt"

// StencilF32 is a matrix-free Operator over float32 coefficient arrays on a
// structured grid. Off-diagonal symmetry is structural: off[d][i] serves as
// both A[i, i+stride_d] and A[i+stride_d, i].
type StencilF32 struct {
	nx, ny, nz int // cells per axis, fastest-varying first; 1 when absent
	nxy        int
	n          int

	diag []float32
	// off[d][i] = A[i, i + stride_d]; nil for axes of extent 1, and never
	// read where the upper neighbor does not exist.
	off [3][]float32
}

// NewStencilF32Coeffs wraps caller-owned float32 coefficient arrays as a
// matrix-free operator; see NewStencilCoeffs for the layout contract. The
// arrays are retained, not copied.
func NewStencilF32Coeffs(dims []int, diag []float32, off [3][]float32) (*StencilF32, error) {
	nd, n, err := checkStencilDims(dims, len(diag))
	if err != nil {
		return nil, err
	}
	s := &StencilF32{nx: nd[0], ny: nd[1], nz: nd[2], nxy: nd[0] * nd[1], n: n, diag: diag}
	for d := 0; d < 3; d++ {
		if nd[d] > 1 {
			if len(off[d]) != n {
				return nil, fmt.Errorf("sparse: stencil axis-%d coefficients have %d entries, want %d", d, len(off[d]), n)
			}
			s.off[d] = off[d]
		} else if off[d] != nil {
			return nil, fmt.Errorf("sparse: stencil axis %d has extent 1 but non-nil coefficients", d)
		}
	}
	return s, nil
}

// Rows implements Operator.
func (s *StencilF32) Rows() int { return s.n }

// Cols implements Operator.
func (s *StencilF32) Cols() int { return s.n }

// NNZ returns the structural entry count of the stencil.
func (s *StencilF32) NNZ() int { return stencilNNZ(s.n, [3]int{s.nx, s.ny, s.nz}) }

// coords decomposes row i into its grid coordinates.
func (s *StencilF32) coords(i int) (ix, iy, iz int) {
	iz = i / s.nxy
	rem := i - iz*s.nxy
	iy = rem / s.nx
	return rem - iy*s.nx, iy, iz
}

// SpanMulVec implements Operator: y[i] = (A·x)[i] for lo <= i < hi.
func (s *StencilF32) SpanMulVec(x, y []float64, lo, hi int) {
	nx, ny, nz, nxy := s.nx, s.ny, s.nz, s.nxy
	d, ox, oy, oz := s.diag, s.off[0], s.off[1], s.off[2]
	ix, iy, iz := s.coords(lo)
	for i := lo; i < hi; i++ {
		var acc float64
		if iz > 0 {
			acc += float64(oz[i-nxy]) * x[i-nxy]
		}
		if iy > 0 {
			acc += float64(oy[i-nx]) * x[i-nx]
		}
		if ix > 0 {
			acc += float64(ox[i-1]) * x[i-1]
		}
		acc += float64(d[i]) * x[i]
		if ix+1 < nx {
			acc += float64(ox[i]) * x[i+1]
		}
		if iy+1 < ny {
			acc += float64(oy[i]) * x[i+nx]
		}
		if iz+1 < nz {
			acc += float64(oz[i]) * x[i+nxy]
		}
		y[i] = acc
		if ix++; ix == nx {
			ix = 0
			if iy++; iy == ny {
				iy = 0
				iz++
			}
		}
	}
}

// SpanMulVecAdd implements Operator: y[i] += (A·x)[i] for lo <= i < hi.
func (s *StencilF32) SpanMulVecAdd(x, y []float64, lo, hi int) {
	nx, ny, nz, nxy := s.nx, s.ny, s.nz, s.nxy
	d, ox, oy, oz := s.diag, s.off[0], s.off[1], s.off[2]
	ix, iy, iz := s.coords(lo)
	for i := lo; i < hi; i++ {
		var acc float64
		if iz > 0 {
			acc += float64(oz[i-nxy]) * x[i-nxy]
		}
		if iy > 0 {
			acc += float64(oy[i-nx]) * x[i-nx]
		}
		if ix > 0 {
			acc += float64(ox[i-1]) * x[i-1]
		}
		acc += float64(d[i]) * x[i]
		if ix+1 < nx {
			acc += float64(ox[i]) * x[i+1]
		}
		if iy+1 < ny {
			acc += float64(oy[i]) * x[i+nx]
		}
		if iz+1 < nz {
			acc += float64(oz[i]) * x[i+nxy]
		}
		y[i] += acc
		if ix++; ix == nx {
			ix = 0
			if iy++; iy == ny {
				iy = 0
				iz++
			}
		}
	}
}

// SpanMulVecDot implements Operator: y = A·x over the span plus the partial
// Σ w[i]·y[i], accumulated in row order.
func (s *StencilF32) SpanMulVecDot(x, y, w []float64, lo, hi int) float64 {
	nx, ny, nz, nxy := s.nx, s.ny, s.nz, s.nxy
	d, ox, oy, oz := s.diag, s.off[0], s.off[1], s.off[2]
	ix, iy, iz := s.coords(lo)
	var sum float64
	for i := lo; i < hi; i++ {
		var acc float64
		if iz > 0 {
			acc += float64(oz[i-nxy]) * x[i-nxy]
		}
		if iy > 0 {
			acc += float64(oy[i-nx]) * x[i-nx]
		}
		if ix > 0 {
			acc += float64(ox[i-1]) * x[i-1]
		}
		acc += float64(d[i]) * x[i]
		if ix+1 < nx {
			acc += float64(ox[i]) * x[i+1]
		}
		if iy+1 < ny {
			acc += float64(oy[i]) * x[i+nx]
		}
		if iz+1 < nz {
			acc += float64(oz[i]) * x[i+nxy]
		}
		y[i] = acc
		sum += w[i] * acc
		if ix++; ix == nx {
			ix = 0
			if iy++; iy == ny {
				iy = 0
				iz++
			}
		}
	}
	return sum
}

// SpanResidual implements Operator: r[i] = b[i] - (A·x)[i] for lo <= i < hi.
func (s *StencilF32) SpanResidual(x, b, r []float64, lo, hi int) {
	nx, ny, nz, nxy := s.nx, s.ny, s.nz, s.nxy
	d, ox, oy, oz := s.diag, s.off[0], s.off[1], s.off[2]
	ix, iy, iz := s.coords(lo)
	for i := lo; i < hi; i++ {
		var acc float64
		if iz > 0 {
			acc += float64(oz[i-nxy]) * x[i-nxy]
		}
		if iy > 0 {
			acc += float64(oy[i-nx]) * x[i-nx]
		}
		if ix > 0 {
			acc += float64(ox[i-1]) * x[i-1]
		}
		acc += float64(d[i]) * x[i]
		if ix+1 < nx {
			acc += float64(ox[i]) * x[i+1]
		}
		if iy+1 < ny {
			acc += float64(oy[i]) * x[i+nx]
		}
		if iz+1 < nz {
			acc += float64(oz[i]) * x[i+nxy]
		}
		r[i] = b[i] - acc
		if ix++; ix == nx {
			ix = 0
			if iy++; iy == ny {
				iy = 0
				iz++
			}
		}
	}
}

// MulVec computes y = A·x sequentially, reusing y when it has the right
// length — for tests and diagnostics.
func (s *StencilF32) MulVec(x, y []float64) []float64 {
	if len(x) != s.n {
		panic(fmt.Sprintf("sparse: stencil MulVec dimension mismatch: matrix %dx%d, x %d", s.n, s.n, len(x)))
	}
	if len(y) != s.n {
		y = make([]float64, s.n)
	}
	s.SpanMulVec(x, y, 0, s.n)
	return y
}

// DiagonalInto implements Operator, widening each stored value.
func (s *StencilF32) DiagonalInto(d []float64) []float64 {
	if len(d) != s.n {
		panic("sparse: DiagonalInto length mismatch")
	}
	for i, v := range s.diag {
		d[i] = float64(v)
	}
	return d
}

// AbsRowSumsInto implements Operator, accumulating each row's absolute sum
// in the same ascending column order as the matvec.
func (s *StencilF32) AbsRowSumsInto(out []float64) []float64 {
	if len(out) != s.n {
		panic("sparse: AbsRowSumsInto length mismatch")
	}
	nx, ny, nz, nxy := s.nx, s.ny, s.nz, s.nxy
	d, ox, oy, oz := s.diag, s.off[0], s.off[1], s.off[2]
	ix, iy, iz := 0, 0, 0
	for i := 0; i < s.n; i++ {
		var acc float64
		if iz > 0 {
			acc += abs(float64(oz[i-nxy]))
		}
		if iy > 0 {
			acc += abs(float64(oy[i-nx]))
		}
		if ix > 0 {
			acc += abs(float64(ox[i-1]))
		}
		acc += abs(float64(d[i]))
		if ix+1 < nx {
			acc += abs(float64(ox[i]))
		}
		if iy+1 < ny {
			acc += abs(float64(oy[i]))
		}
		if iz+1 < nz {
			acc += abs(float64(oz[i]))
		}
		out[i] = acc
		if ix++; ix == nx {
			ix = 0
			if iy++; iy == ny {
				iy = 0
				iz++
			}
		}
	}
	return out
}
