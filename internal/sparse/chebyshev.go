package sparse

import (
	"fmt"
	"math"
)

// chebyshevDegree is the polynomial degree of the Chebyshev preconditioner:
// each application performs this many correction steps (degree-1 matrix
// products). Degree 6 balances per-application cost against the CG
// iteration count on the heat-conduction systems in this repository (the
// default-resolution reference solve drops from 246 SSOR-preconditioned
// iterations to ~120).
const chebyshevDegree = 6

// chebyshevCondTarget sets the lower eigenvalue estimate of the Jacobi-
// scaled operator as lmax/chebyshevCondTarget, the standard polynomial-
// smoother heuristic: the polynomial equioscillates over [lmax/60, lmax]
// and stays positive below it, keeping the preconditioner SPD.
const chebyshevCondTarget = 60.0

// chebyshevPrecond approximates A⁻¹ by a fixed Chebyshev polynomial in the
// Jacobi-scaled operator B = D⁻¹A: z = q(B)·D⁻¹r. Unlike SSOR's
// inherently sequential triangular sweeps, every operation is a matrix
// product or an element-wise update, so the application parallelizes across
// the pool while remaining a fixed linear SPD operator (CG stays valid) and
// bit-identical for any worker count.
type chebyshevPrecond struct {
	a            Operator
	invDiag      []float64
	theta, delta float64 // midpoint and half-width of the eigenvalue bounds
	pool         *Pool
	d, res, t    []float64 // correction, scaled residual, matvec scratch
}

func newChebyshev(a Operator, pool *Pool) (*chebyshevPrecond, error) {
	n := a.Rows()
	// All four workspaces come from the pool free-list: inv is fully written
	// here, and apply overwrites d, res and t before their first read.
	inv := a.DiagonalInto(pool.Grab(n))
	for i, diag := range inv {
		if diag == 0 {
			pool.Release(inv)
			return nil, fmt.Errorf("sparse: chebyshev preconditioner: zero diagonal at row %d", i)
		}
		inv[i] = 1 / diag
	}
	// Gershgorin upper bound on the spectrum of D⁻¹A. The row sums accumulate
	// in ascending column order in every Operator implementation, so the
	// bound — and with it the whole preconditioner — is bit-identical between
	// the CSR and matrix-free paths.
	rowAbs := a.AbsRowSumsInto(pool.Grab(n))
	var lmax float64
	for i := 0; i < n; i++ {
		if b := rowAbs[i] * math.Abs(inv[i]); b > lmax {
			lmax = b
		}
	}
	pool.Release(rowAbs)
	if lmax <= 0 || math.IsNaN(lmax) || math.IsInf(lmax, 0) {
		pool.Release(inv)
		return nil, fmt.Errorf("sparse: chebyshev preconditioner: eigenvalue bound %g", lmax)
	}
	lmin := lmax / chebyshevCondTarget
	return &chebyshevPrecond{
		a:       a,
		invDiag: inv,
		theta:   (lmax + lmin) / 2,
		delta:   (lmax - lmin) / 2,
		pool:    pool,
		d:       pool.Grab(n),
		res:     pool.Grab(n),
		t:       pool.Grab(n),
	}, nil
}

func (c *chebyshevPrecond) release() { c.pool.Release(c.invDiag, c.d, c.res, c.t) }

// apply runs the Chebyshev semi-iteration for a fixed number of steps on
// B·z = D⁻¹r starting from z = 0 (Saad, Iterative Methods, alg. 12.1). The
// iterate z is a fixed polynomial in B applied to D⁻¹r, i.e. a linear SPD
// preconditioner.
func (c *chebyshevPrecond) apply(z, r []float64) {
	p, a := c.pool, c.a
	invD, d, res, t := c.invDiag, c.d, c.res, c.t
	// First correction: res = D⁻¹r, d = res/θ, z = d. The recurrence runs
	// through the fused Cheby kernels shared with the multigrid smoother.
	p.ChebyBegin(z, d, res, invD, r, 1/c.theta)
	sigma := c.theta / c.delta
	rhoOld := 1 / sigma
	for k := 2; k <= chebyshevDegree; k++ {
		p.mulVec(a, d, t)
		rho := 1 / (2*sigma - rhoOld)
		p.ChebyStep(z, d, res, invD, t, rho*rhoOld, 2*rho/c.delta)
		rhoOld = rho
	}
}
