package sparse

// Matrix-free stencil operator for structured grids.
//
// The finite-volume discretizations in internal/fem live on structured
// tensor-product grids: every row of the assembled matrix couples a cell to
// at most one neighbor per axis direction (a 5-point stencil on the
// axisymmetric (r, z) grid, 7-point on the 3-D Cartesian grid), and the
// assembly emits each symmetric pair (i, j)/(j, i) from the same conductance,
// so the off-diagonals are bitwise symmetric. A general CSR walk through such
// a matrix streams 8 bytes of column index per value and stores every
// off-diagonal twice; the Stencil instead keeps one diagonal array plus one
// off-diagonal array per axis (off[d][i] = A[i, i+stride_d]) and enumerates
// the neighbors arithmetically — roughly a third of the memory traffic per
// matvec, which is the whole cost of a matvec this regular.
//
// Bit-identity with the CSR product is a design invariant, not an accident:
// for any row the stored columns are exactly {i−s2, i−s1, i−s0, i, i+s0,
// i+s1, i+s2} ∩ existing neighbors, CSR accumulates them in ascending column
// order, and the stencil loops add their terms in that same order, using
// off[d][i−s_d] for the lower neighbor — bitwise equal to A[i, i−s_d] by the
// verified symmetry. Property tests in this package and internal/fem pin the
// equivalence matvec-by-matvec and solve-by-solve.

import "fmt"

// Stencil is a matrix-free Operator for a structured-grid matrix: per-axis
// coefficient arrays extracted from an assembled *CSR, evaluated without
// touching the CSR index arrays. It stays attached to the source matrix:
// after the matrix's values are refilled in place (the symbolic/numeric
// assembly split), Refresh re-extracts the coefficients through precomputed
// slot maps in one O(nnz) pass.
type Stencil struct {
	a          *CSR
	nx, ny, nz int // cells per axis, fastest-varying first; 1 when absent
	nxy        int // nx·ny, the z-neighbor stride
	n          int

	diag []float64
	// off[d][i] = A[i, i + stride_d] where stride = {1, nx, nx·ny}; zero and
	// never read where the neighbor does not exist. Lower neighbors reuse the
	// same arrays through symmetry: A[i, i−s_d] = off[d][i−s_d].
	off [3][]float64

	diagSlot []int32
	// upSlot[d][i] / loSlot[d][i] are the CSR value slots of A[i, i+s_d] and
	// its transpose A[i+s_d, i]; −1 at the high edge of axis d. Refresh reads
	// the up slot and verifies the lo slot matches (the symmetry the lower-
	// neighbor reuse depends on).
	upSlot, loSlot [3][]int32
}

// NewStencil extracts a matrix-free stencil operator from the n-unknown
// matrix a laid out on a structured grid with the given per-axis cell
// counts, fastest-varying axis first (the fem convention: axi index =
// iz·nr + ir has dims [nr, nz]; cart index = (iz·ny + iy)·nx + ix has dims
// [nx, ny, nz]). It fails — and the caller falls back to the CSR — when the
// matrix is not a full symmetric nearest-neighbor stencil on that grid:
// every stored entry must be the diagonal or an axis neighbor, every axis
// neighbor must be stored, and each symmetric pair must match bitwise.
func NewStencil(a *CSR, dims []int) (*Stencil, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("sparse: stencil needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	if len(dims) < 1 || len(dims) > 3 {
		return nil, fmt.Errorf("sparse: stencil supports 1-3 grid axes, got %d", len(dims))
	}
	nd := [3]int{1, 1, 1}
	cells := 1
	for i, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("sparse: invalid grid dimensions %v", dims)
		}
		nd[i] = d
		cells *= d
	}
	if cells != n {
		return nil, fmt.Errorf("sparse: grid %v has %d cells, matrix has %d rows", dims, cells, n)
	}
	s := &Stencil{
		a: a, nx: nd[0], ny: nd[1], nz: nd[2], nxy: nd[0] * nd[1], n: n,
		diag:     make([]float64, n),
		diagSlot: make([]int32, n),
	}
	for i := range s.diagSlot {
		s.diagSlot[i] = -1
	}
	stride := [3]int{1, s.nx, s.nxy}
	for d := 0; d < 3; d++ {
		if nd[d] > 1 {
			s.off[d] = make([]float64, n)
			s.upSlot[d] = make([]int32, n)
			s.loSlot[d] = make([]int32, n)
			for i := range s.upSlot[d] {
				s.upSlot[d][i] = -1
				s.loSlot[d][i] = -1
			}
		}
	}
	// Classify every stored entry. The coordinate guards make the directions
	// mutually exclusive even when strides collide (an axis of extent 1 never
	// owns a neighbor), so each entry lands in exactly one slot or fails.
	ix, iy, iz := 0, 0, 0
	for i := 0; i < n; i++ {
		coord := [3]int{ix, iy, iz}
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			j := a.colIdx[k]
			switch diff := j - i; {
			case diff == 0:
				s.diagSlot[i] = int32(k)
			case diff == stride[2] && coord[2]+1 < nd[2]:
				s.upSlot[2][i] = int32(k)
			case diff == stride[1] && coord[1]+1 < nd[1]:
				s.upSlot[1][i] = int32(k)
			case diff == stride[0] && coord[0]+1 < nd[0]:
				s.upSlot[0][i] = int32(k)
			case diff == -stride[2] && coord[2] > 0:
				s.loSlot[2][j] = int32(k)
			case diff == -stride[1] && coord[1] > 0:
				s.loSlot[1][j] = int32(k)
			case diff == -stride[0] && coord[0] > 0:
				s.loSlot[0][j] = int32(k)
			default:
				return nil, fmt.Errorf("sparse: entry (%d,%d) is not a grid-%v stencil neighbor", i, j, dims)
			}
		}
		if s.diagSlot[i] < 0 {
			return nil, fmt.Errorf("sparse: stencil row %d has no diagonal entry", i)
		}
		if ix++; ix == s.nx {
			ix = 0
			if iy++; iy == s.ny {
				iy = 0
				iz++
			}
		}
	}
	// Full-stencil check: every existing neighbor must be stored in both
	// triangles. A missing coupling would make the stencil product differ
	// from the CSR product in signed-zero corner cases, so it is rejected
	// rather than papered over with a zero coefficient.
	for d := 0; d < 3; d++ {
		if s.off[d] == nil {
			continue
		}
		for i := 0; i < n; i++ {
			if !s.hasUp(d, i) {
				continue
			}
			if s.upSlot[d][i] < 0 || s.loSlot[d][i] < 0 {
				return nil, fmt.Errorf("sparse: stencil row %d is missing its axis-%d neighbor coupling", i, d)
			}
		}
	}
	if err := s.Refresh(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewStencilCoeffs wraps caller-owned coefficient arrays as a matrix-free
// stencil operator with no CSR backing — the storage format of the
// re-discretized coarse levels of internal/mg's geometric hierarchy, which
// never assemble a coarse matrix at all. diag holds the main diagonal;
// off[d][i] = A[i, i+stride_d] must be nil exactly for axes of extent 1 and
// is never read where the upper neighbor does not exist. The arrays are
// retained, not copied: a caller refreshing coefficients in place just
// overwrites them. Refresh is a no-op (there is no source matrix to re-read)
// and symmetry is structural — the same off entry serves both triangles.
func NewStencilCoeffs(dims []int, diag []float64, off [3][]float64) (*Stencil, error) {
	nd, n, err := checkStencilDims(dims, len(diag))
	if err != nil {
		return nil, err
	}
	s := &Stencil{nx: nd[0], ny: nd[1], nz: nd[2], nxy: nd[0] * nd[1], n: n, diag: diag}
	for d := 0; d < 3; d++ {
		if nd[d] > 1 {
			if len(off[d]) != n {
				return nil, fmt.Errorf("sparse: stencil axis-%d coefficients have %d entries, want %d", d, len(off[d]), n)
			}
			s.off[d] = off[d]
		} else if off[d] != nil {
			return nil, fmt.Errorf("sparse: stencil axis %d has extent 1 but non-nil coefficients", d)
		}
	}
	return s, nil
}

// checkStencilDims validates a 1-3 axis dims slice against the unknown count and
// returns the padded per-axis extents.
func checkStencilDims(dims []int, n int) ([3]int, int, error) {
	nd := [3]int{1, 1, 1}
	if len(dims) < 1 || len(dims) > 3 {
		return nd, 0, fmt.Errorf("sparse: stencil supports 1-3 grid axes, got %d", len(dims))
	}
	cells := 1
	for i, d := range dims {
		if d < 1 {
			return nd, 0, fmt.Errorf("sparse: invalid grid dimensions %v", dims)
		}
		nd[i] = d
		cells *= d
	}
	if cells != n {
		return nd, 0, fmt.Errorf("sparse: grid %v has %d cells, coefficients have %d", dims, cells, n)
	}
	return nd, cells, nil
}

// hasUp reports whether cell i has an upper neighbor along axis d.
func (s *Stencil) hasUp(d, i int) bool {
	switch d {
	case 0:
		return i%s.nx < s.nx-1
	case 1:
		return i%s.nxy/s.nx < s.ny-1
	default:
		return i/s.nxy < s.nz-1
	}
}

// Refresh re-extracts the coefficient arrays from the source matrix's value
// array — one O(nnz) pass through the precomputed slot maps, run after every
// in-place numeric refill. It verifies the off-diagonal symmetry the lower-
// neighbor reuse depends on and fails when the refilled values broke it.
func (s *Stencil) Refresh() error {
	if s.a == nil {
		// Coefficient-backed stencil (NewStencilCoeffs): the coefficient
		// arrays ARE the storage, there is nothing to re-extract.
		return nil
	}
	val := s.a.val
	for i, k := range s.diagSlot {
		s.diag[i] = val[k]
	}
	for d := 0; d < 3; d++ {
		off := s.off[d]
		if off == nil {
			continue
		}
		up, lo := s.upSlot[d], s.loSlot[d]
		for i, ku := range up {
			if ku < 0 {
				continue
			}
			v := val[ku]
			if val[lo[i]] != v {
				return fmt.Errorf("sparse: stencil coupling (%d, axis %d) is not symmetric: %g vs %g",
					i, d, v, val[lo[i]])
			}
			off[i] = v
		}
	}
	return nil
}

// Rows implements Operator.
func (s *Stencil) Rows() int { return s.n }

// Cols implements Operator.
func (s *Stencil) Cols() int { return s.n }

// NNZ returns the stored-entry count of the source matrix, or the structural
// entry count (diagonal plus both triangles of every axis coupling) for a
// coefficient-backed stencil with no CSR behind it.
func (s *Stencil) NNZ() int {
	if s.a != nil {
		return s.a.NNZ()
	}
	return stencilNNZ(s.n, [3]int{s.nx, s.ny, s.nz})
}

// stencilNNZ counts the structural entries of a full nearest-neighbor stencil
// on the given grid: n diagonals plus two stored values per axis face.
func stencilNNZ(n int, nd [3]int) int {
	nnz := n
	for d := 0; d < 3; d++ {
		if nd[d] > 1 {
			nnz += 2 * (n / nd[d]) * (nd[d] - 1)
		}
	}
	return nnz
}

// coords decomposes row i into its grid coordinates.
func (s *Stencil) coords(i int) (ix, iy, iz int) {
	iz = i / s.nxy
	rem := i - iz*s.nxy
	iy = rem / s.nx
	return rem - iy*s.nx, iy, iz
}

// The span loops below all walk the same neighbor sequence: −z, −y, −x,
// diagonal, +x, +y, +z — ascending column order, matching the CSR row walk
// term for term. Axes of extent 1 never pass their coordinate guards, so the
// nil off arrays of collapsed axes are never read.

// SpanMulVec implements Operator: y[i] = (A·x)[i] for lo <= i < hi.
func (s *Stencil) SpanMulVec(x, y []float64, lo, hi int) {
	nx, ny, nz, nxy := s.nx, s.ny, s.nz, s.nxy
	d, ox, oy, oz := s.diag, s.off[0], s.off[1], s.off[2]
	ix, iy, iz := s.coords(lo)
	for i := lo; i < hi; i++ {
		var acc float64
		if iz > 0 {
			acc += oz[i-nxy] * x[i-nxy]
		}
		if iy > 0 {
			acc += oy[i-nx] * x[i-nx]
		}
		if ix > 0 {
			acc += ox[i-1] * x[i-1]
		}
		acc += d[i] * x[i]
		if ix+1 < nx {
			acc += ox[i] * x[i+1]
		}
		if iy+1 < ny {
			acc += oy[i] * x[i+nx]
		}
		if iz+1 < nz {
			acc += oz[i] * x[i+nxy]
		}
		y[i] = acc
		if ix++; ix == nx {
			ix = 0
			if iy++; iy == ny {
				iy = 0
				iz++
			}
		}
	}
}

// SpanMulVecAdd implements Operator: y[i] += (A·x)[i] for lo <= i < hi.
func (s *Stencil) SpanMulVecAdd(x, y []float64, lo, hi int) {
	nx, ny, nz, nxy := s.nx, s.ny, s.nz, s.nxy
	d, ox, oy, oz := s.diag, s.off[0], s.off[1], s.off[2]
	ix, iy, iz := s.coords(lo)
	for i := lo; i < hi; i++ {
		var acc float64
		if iz > 0 {
			acc += oz[i-nxy] * x[i-nxy]
		}
		if iy > 0 {
			acc += oy[i-nx] * x[i-nx]
		}
		if ix > 0 {
			acc += ox[i-1] * x[i-1]
		}
		acc += d[i] * x[i]
		if ix+1 < nx {
			acc += ox[i] * x[i+1]
		}
		if iy+1 < ny {
			acc += oy[i] * x[i+nx]
		}
		if iz+1 < nz {
			acc += oz[i] * x[i+nxy]
		}
		y[i] += acc
		if ix++; ix == nx {
			ix = 0
			if iy++; iy == ny {
				iy = 0
				iz++
			}
		}
	}
}

// SpanMulVecDot implements Operator: y = A·x over the span plus the partial
// Σ w[i]·y[i], accumulated in row order like the CSR kernel.
func (s *Stencil) SpanMulVecDot(x, y, w []float64, lo, hi int) float64 {
	nx, ny, nz, nxy := s.nx, s.ny, s.nz, s.nxy
	d, ox, oy, oz := s.diag, s.off[0], s.off[1], s.off[2]
	ix, iy, iz := s.coords(lo)
	var sum float64
	for i := lo; i < hi; i++ {
		var acc float64
		if iz > 0 {
			acc += oz[i-nxy] * x[i-nxy]
		}
		if iy > 0 {
			acc += oy[i-nx] * x[i-nx]
		}
		if ix > 0 {
			acc += ox[i-1] * x[i-1]
		}
		acc += d[i] * x[i]
		if ix+1 < nx {
			acc += ox[i] * x[i+1]
		}
		if iy+1 < ny {
			acc += oy[i] * x[i+nx]
		}
		if iz+1 < nz {
			acc += oz[i] * x[i+nxy]
		}
		y[i] = acc
		sum += w[i] * acc
		if ix++; ix == nx {
			ix = 0
			if iy++; iy == ny {
				iy = 0
				iz++
			}
		}
	}
	return sum
}

// SpanResidual implements Operator: r[i] = b[i] - (A·x)[i] for lo <= i < hi.
func (s *Stencil) SpanResidual(x, b, r []float64, lo, hi int) {
	nx, ny, nz, nxy := s.nx, s.ny, s.nz, s.nxy
	d, ox, oy, oz := s.diag, s.off[0], s.off[1], s.off[2]
	ix, iy, iz := s.coords(lo)
	for i := lo; i < hi; i++ {
		var acc float64
		if iz > 0 {
			acc += oz[i-nxy] * x[i-nxy]
		}
		if iy > 0 {
			acc += oy[i-nx] * x[i-nx]
		}
		if ix > 0 {
			acc += ox[i-1] * x[i-1]
		}
		acc += d[i] * x[i]
		if ix+1 < nx {
			acc += ox[i] * x[i+1]
		}
		if iy+1 < ny {
			acc += oy[i] * x[i+nx]
		}
		if iz+1 < nz {
			acc += oz[i] * x[i+nxy]
		}
		r[i] = b[i] - acc
		if ix++; ix == nx {
			ix = 0
			if iy++; iy == ny {
				iy = 0
				iz++
			}
		}
	}
}

// MulVec computes y = A·x sequentially, reusing y when it has the right
// length — the Stencil counterpart of CSR.MulVec, for tests and diagnostics.
func (s *Stencil) MulVec(x, y []float64) []float64 {
	if len(x) != s.n {
		panic(fmt.Sprintf("sparse: stencil MulVec dimension mismatch: matrix %dx%d, x %d", s.n, s.n, len(x)))
	}
	if len(y) != s.n {
		y = make([]float64, s.n)
	}
	s.SpanMulVec(x, y, 0, s.n)
	return y
}

// DiagonalInto implements Operator. The stored diagonal is the CSR's value
// array read through the slot map, so the result is bitwise identical to the
// CSR extraction.
func (s *Stencil) DiagonalInto(d []float64) []float64 {
	if len(d) != s.n {
		panic("sparse: DiagonalInto length mismatch")
	}
	copy(d, s.diag)
	return d
}

// AbsRowSumsInto implements Operator, accumulating each row's absolute sum
// in the same ascending column order as the CSR walk.
func (s *Stencil) AbsRowSumsInto(out []float64) []float64 {
	if len(out) != s.n {
		panic("sparse: AbsRowSumsInto length mismatch")
	}
	nx, ny, nz, nxy := s.nx, s.ny, s.nz, s.nxy
	d, ox, oy, oz := s.diag, s.off[0], s.off[1], s.off[2]
	ix, iy, iz := 0, 0, 0
	for i := 0; i < s.n; i++ {
		var acc float64
		if iz > 0 {
			acc += abs(oz[i-nxy])
		}
		if iy > 0 {
			acc += abs(oy[i-nx])
		}
		if ix > 0 {
			acc += abs(ox[i-1])
		}
		acc += abs(d[i])
		if ix+1 < nx {
			acc += abs(ox[i])
		}
		if iy+1 < ny {
			acc += abs(oy[i])
		}
		if iz+1 < nz {
			acc += abs(oz[i])
		}
		out[i] = acc
		if ix++; ix == nx {
			ix = 0
			if iy++; iy == ny {
				iy = 0
				iz++
			}
		}
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
