// Package materials provides a small thermal-materials database for 3-D IC
// structures: silicon substrates, inter-layer dielectrics, bonding adhesives
// and via fill/liner materials.
//
// The package stores thermal conductivity in W/(m·K). Conductivity may be a
// constant or a linear function of temperature; the analytical TTSV models of
// the paper are linear and use the constant evaluated at the reference
// temperature, while the iterative solvers can optionally re-evaluate k(T).
package materials

import (
	"fmt"
	"sort"
)

// Material describes one solid used in a 3-D IC stack.
type Material struct {
	// Name is a short identifier, e.g. "Si" or "SiO2".
	Name string
	// K is the thermal conductivity at the reference temperature, W/(m·K).
	K float64
	// C is the volumetric heat capacity, J/(m³·K). It only matters for
	// transient analysis; steady-state solves ignore it.
	C float64
	// TempCoeff is the optional linear temperature coefficient of the
	// conductivity: k(T) = K * (1 + TempCoeff*(T - RefTemp)). Zero means the
	// conductivity is treated as constant.
	TempCoeff float64
	// RefTemp is the temperature at which K is specified, in °C.
	RefTemp float64
}

// Conductivity returns the thermal conductivity at temperature t (°C).
// With a zero TempCoeff this is simply m.K.
func (m Material) Conductivity(t float64) float64 {
	if m.TempCoeff == 0 {
		return m.K
	}
	k := m.K * (1 + m.TempCoeff*(t-m.RefTemp))
	if k <= 0 {
		// A linearised fit can go negative far outside its validity range;
		// clamp to a small positive value to keep solvers well-posed.
		return m.K * 1e-3
	}
	return k
}

// Validate reports an error for physically meaningless materials.
func (m Material) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("materials: material has empty name")
	}
	if m.K <= 0 {
		return fmt.Errorf("materials: %s: conductivity %g W/(m·K) must be positive", m.Name, m.K)
	}
	return nil
}

func (m Material) String() string {
	return fmt.Sprintf("%s (k=%g W/m·K)", m.Name, m.K)
}

// Stock materials with the conductivities used in the paper (§IV) and common
// handbook values for the rest. All at ~27 °C.
var (
	// Silicon is the bulk substrate material. The paper does not state its
	// conductivity; 130 W/(m·K) is the standard value for doped bulk silicon
	// used by its references ([1], [9]). The heat capacity is density ×
	// specific heat (2330 kg/m³ × 700 J/kg·K).
	Silicon = Material{Name: "Si", K: 130, C: 1.63e6, RefTemp: 27}
	// SiO2 is the ILD and TTSV liner dielectric, k = 1.4 W/(m·K) (§IV).
	SiO2 = Material{Name: "SiO2", K: 1.4, C: 1.64e6, RefTemp: 27}
	// Polyimide is the bonding layer adhesive, k = 0.15 W/(m·K) (§IV).
	Polyimide = Material{Name: "polyimide", K: 0.15, C: 1.55e6, RefTemp: 27}
	// Copper is the TTSV fill, k = 400 W/(m·K) (§IV).
	Copper = Material{Name: "Cu", K: 400, C: 3.45e6, RefTemp: 27}
	// Tungsten is an alternative via fill for technology exploration.
	Tungsten = Material{Name: "W", K: 173, C: 2.55e6, RefTemp: 27}
	// BCB is an alternative polymer bonding adhesive.
	BCB = Material{Name: "BCB", K: 0.29, C: 1.2e6, RefTemp: 27}
	// Aluminum is an alternative interconnect/fill metal.
	Aluminum = Material{Name: "Al", K: 237, C: 2.42e6, RefTemp: 27}
)

// stock is the built-in lookup table.
var stock = map[string]Material{
	"Si":        Silicon,
	"SiO2":      SiO2,
	"polyimide": Polyimide,
	"Cu":        Copper,
	"W":         Tungsten,
	"BCB":       BCB,
	"Al":        Aluminum,
}

// Lookup returns the stock material with the given name.
func Lookup(name string) (Material, error) {
	m, ok := stock[name]
	if !ok {
		return Material{}, fmt.Errorf("materials: unknown material %q (known: %v)", name, Names())
	}
	return m, nil
}

// Names lists the stock material names in sorted order.
func Names() []string {
	out := make([]string, 0, len(stock))
	for n := range stock {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WithConductivity returns a copy of m with the conductivity replaced. It is
// used, e.g., to fold interconnect metal into an effective ILD conductivity
// as the paper suggests ("k_D can be adapted to include the effect of the
// metal within the ILD layer").
func (m Material) WithConductivity(k float64) Material {
	m.K = k
	return m
}
