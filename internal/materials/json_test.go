package materials

import (
	"encoding/json"
	"testing"
)

func TestUnmarshalStockName(t *testing.T) {
	var m Material
	if err := json.Unmarshal([]byte(`"Cu"`), &m); err != nil {
		t.Fatal(err)
	}
	if m.Name != "Cu" || m.K != 400 {
		t.Fatalf("m = %+v", m)
	}
}

func TestUnmarshalObject(t *testing.T) {
	var m Material
	if err := json.Unmarshal([]byte(`{"Name":"AlN","K":285,"C":2.4e6}`), &m); err != nil {
		t.Fatal(err)
	}
	if m.Name != "AlN" || m.K != 285 || m.C != 2.4e6 {
		t.Fatalf("m = %+v", m)
	}
}

func TestUnmarshalRejections(t *testing.T) {
	var m Material
	if err := json.Unmarshal([]byte(`"kryptonite"`), &m); err == nil {
		t.Error("unknown stock name accepted")
	}
	if err := json.Unmarshal([]byte(`{"Name":"bad","K":-1}`), &m); err == nil {
		t.Error("invalid object accepted")
	}
	if err := json.Unmarshal([]byte(`{"Name":""}`), &m); err == nil {
		t.Error("nameless material accepted")
	}
	if err := json.Unmarshal([]byte(`42`), &m); err == nil {
		t.Error("number accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	data, err := json.Marshal(Silicon)
	if err != nil {
		t.Fatal(err)
	}
	var back Material
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != Silicon {
		t.Fatalf("round trip: %+v vs %+v", back, Silicon)
	}
}
