package materials

import (
	"encoding/json"
	"testing"
)

// FuzzMaterialUnmarshalJSON asserts the dual-form material decoder (stock
// name or full object) never panics, and that whatever it accepts passes
// Validate — a successfully decoded material must be usable in a solve.
func FuzzMaterialUnmarshalJSON(f *testing.F) {
	seeds := []string{
		``,
		`""`,
		`"Cu"`,
		`"SiO2"`,
		`"unobtainium"`,
		`{}`,
		`null`,
		`42`,
		`{"Name": "custom", "K": 100}`,
		`{"Name": "bad", "K": -1}`,
		`{"Name": "bad", "K": 0}`,
		`{"K": 1e308}`,
		`{"Name": "x", "K": "not a number"}`,
		`{"Name": "x", "K": 1, "TempCoeff": -5}`,
		`[1, 2]`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		var m Material
		if err := json.Unmarshal([]byte(data), &m); err != nil {
			return // malformed or invalid input must error, and did
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("UnmarshalJSON accepted %q but Validate rejects it: %v", data, err)
		}
	})
}
