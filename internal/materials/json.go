package materials

import (
	"encoding/json"
	"fmt"
)

// UnmarshalJSON accepts either a stock material name ("Cu", "SiO2", …) or a
// full material object ({"Name": "...", "K": ..., "C": ...}).
func (m *Material) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		found, err := Lookup(name)
		if err != nil {
			return err
		}
		*m = found
		return nil
	}
	// plain is Material without methods, so the standard decoder applies.
	type plain Material
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("materials: material must be a stock name or an object: %w", err)
	}
	*m = Material(p)
	return m.Validate()
}
