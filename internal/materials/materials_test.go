package materials

import (
	"math"
	"strings"
	"testing"
)

func TestPaperConductivities(t *testing.T) {
	// §IV of the paper fixes these values.
	cases := []struct {
		m    Material
		want float64
	}{
		{SiO2, 1.4},
		{Polyimide, 0.15},
		{Copper, 400},
		{Silicon, 130},
	}
	for _, c := range cases {
		if c.m.K != c.want {
			t.Errorf("%s: K = %g, want %g", c.m.Name, c.m.K, c.want)
		}
	}
}

func TestLookupKnown(t *testing.T) {
	for _, name := range Names() {
		m, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("Lookup(%q).Name = %q", name, m.Name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("stock material %q invalid: %v", name, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("unobtainium")
	if err == nil {
		t.Fatal("Lookup(unobtainium) succeeded, want error")
	}
	if !strings.Contains(err.Error(), "unobtainium") {
		t.Errorf("error %q does not mention the requested name", err)
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("expected at least 5 stock materials, got %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestConductivityConstant(t *testing.T) {
	for _, temp := range []float64{-50, 0, 27, 125} {
		if got := Copper.Conductivity(temp); got != Copper.K {
			t.Errorf("constant material conductivity at %g = %g, want %g", temp, got, Copper.K)
		}
	}
}

func TestConductivityLinear(t *testing.T) {
	m := Material{Name: "test", K: 100, TempCoeff: -0.001, RefTemp: 27}
	if got := m.Conductivity(27); got != 100 {
		t.Errorf("k(ref) = %g, want 100", got)
	}
	if got := m.Conductivity(127); got != 90 {
		t.Errorf("k(ref+100) = %g, want 90", got)
	}
	if got := m.Conductivity(-73); math.Abs(got-110) > 1e-9 {
		t.Errorf("k(ref-100) = %g, want 110", got)
	}
}

func TestConductivityClampsPositive(t *testing.T) {
	m := Material{Name: "test", K: 10, TempCoeff: -0.01, RefTemp: 27}
	// At ref+200 the linear fit gives -10; conductivity must stay positive.
	if got := m.Conductivity(27 + 200); got <= 0 {
		t.Errorf("conductivity clamp failed: %g", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Material{Name: "ok", K: 1}).Validate(); err != nil {
		t.Errorf("valid material rejected: %v", err)
	}
	if err := (Material{Name: "", K: 1}).Validate(); err == nil {
		t.Error("empty name accepted")
	}
	if err := (Material{Name: "bad", K: 0}).Validate(); err == nil {
		t.Error("zero conductivity accepted")
	}
	if err := (Material{Name: "bad", K: -3}).Validate(); err == nil {
		t.Error("negative conductivity accepted")
	}
}

func TestWithConductivity(t *testing.T) {
	eff := SiO2.WithConductivity(2.0)
	if eff.K != 2.0 || eff.Name != "SiO2" {
		t.Errorf("WithConductivity = %+v", eff)
	}
	if SiO2.K != 1.4 {
		t.Error("WithConductivity mutated the original")
	}
}

func TestString(t *testing.T) {
	s := Silicon.String()
	if !strings.Contains(s, "Si") || !strings.Contains(s, "130") {
		t.Errorf("String() = %q", s)
	}
}
