package spread

import (
	"math"
	"testing"

	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/sparse"
)

func TestJ1Roots(t *testing.T) {
	// The first roots of J1 are tabulated: 3.8317, 7.0156, 10.1735, 13.3237.
	want := []float64{3.83170597, 7.01558667, 10.17346814, 13.32369194}
	for i, w := range want {
		if math.Abs(j1Roots[i]-w) > 1e-6 {
			t.Errorf("root %d = %.8f, want %.8f", i, j1Roots[i], w)
		}
	}
	// All roots must actually be roots and increasing.
	for i, r := range j1Roots {
		if math.Abs(math.J1(r)) > 1e-10 {
			t.Errorf("J1(root %d) = %g", i, math.J1(r))
		}
		if i > 0 && r <= j1Roots[i-1] {
			t.Errorf("roots not increasing at %d", i)
		}
	}
}

func TestSpreadingVanishesForFullFaceSource(t *testing.T) {
	// ε = 1: the source covers the tube; only the bulk term remains.
	sp, err := SpreadingResistance(1e-3, 1e-3, 1e-3, 100)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Resistance(1e-3, 1e-3, 1e-3, 100)
	if err != nil {
		t.Fatal(err)
	}
	bulk := 1e-3 / (100 * math.Pi * 1e-6)
	if math.Abs(sp)/bulk > 1e-6 {
		t.Errorf("spreading %g not negligible vs bulk %g at ε=1", sp, bulk)
	}
	if math.Abs(full-bulk)/bulk > 1e-6 {
		t.Errorf("total %g, want bulk %g", full, bulk)
	}
}

func TestDeepTubeMatchesMikic(t *testing.T) {
	// τ = t/b ≫ 1: the series approaches the half-space constriction value.
	const (
		a, b, k = 0.1e-3, 1e-3, 50.0
		tt      = 10e-3 // τ = 10
	)
	sp, err := SpreadingResistance(a, b, tt, k)
	if err != nil {
		t.Fatal(err)
	}
	mikic := MikicHalfSpace(a, b, k)
	// Mikic's (1-ε)^1.5 correlation is itself a few percent off the
	// exact isoflux average-temperature solution; allow 15%.
	if e := math.Abs(sp-mikic) / mikic; e > 0.15 {
		t.Errorf("deep-tube spreading %g vs Mikic %g (%.1f%%)", sp, mikic, 100*e)
	}
}

func TestSeriesAgainstFVM(t *testing.T) {
	// The strongest check: solve the exact same flux-tube problem with the
	// axisymmetric FVM — isoflux disc source (thin heated layer) of radius a
	// on a cylinder with isothermal base — and compare resistances.
	const (
		a, b, tt, k = 0.3e-3, 1e-3, 0.5e-3, 30.0
		qv          = 1e9 // W/m³ in the source sliver
		sliver      = 2e-6
	)
	r, err := mesh.Line(0, []mesh.Interval{
		{Hi: a, Cells: 24},
		{Hi: b, Cells: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	z, err := mesh.Line(0, []mesh.Interval{
		{Hi: tt - sliver, Cells: 60, Ratio: 1.02},
		{Hi: tt, Cells: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &fem.AxiProblem{
		REdges: r, ZEdges: z,
		K: func(_, _ float64) float64 { return k },
		Q: func(rr, zz float64) float64 {
			if zz > tt-sliver && rr < a {
				return qv
			}
			return 0
		},
		Bottom: fem.Fixed(0),
		Top:    fem.Insulated(),
		Outer:  fem.Insulated(),
	}
	sol, err := fem.SolveAxi(p, sparse.Options{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	// Average source temperature over the disc.
	var tSum, aSum float64
	top := len(sol.ZCenters) - 1
	for i, rr := range sol.RCenters {
		if rr >= a {
			break
		}
		ring := math.Pi * (p.REdges[i+1]*p.REdges[i+1] - p.REdges[i]*p.REdges[i])
		tSum += sol.T[top][i] * ring
		aSum += ring
	}
	q := qv * math.Pi * a * a * sliver
	rFVM := (tSum / aSum) / q
	rSeries, err := Resistance(a, b, tt, k)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(rFVM-rSeries) / rSeries; e > 0.05 {
		t.Errorf("FVM %g K/W vs series %g K/W (%.1f%%)", rFVM, rSeries, 100*e)
	}
}

func TestSpreadingMonotonicity(t *testing.T) {
	// Smaller sources constrict more.
	var prev float64
	for i, a := range []float64{0.9e-3, 0.6e-3, 0.3e-3, 0.1e-3} {
		sp, err := SpreadingResistance(a, 1e-3, 1e-3, 10)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && sp <= prev {
			t.Fatalf("spreading not increasing as the source shrinks: %g then %g", prev, sp)
		}
		prev = sp
	}
}

func TestCaseStudySpreadingSupportsC12(t *testing.T) {
	// The paper's case-study coefficient c₁,₂ = 3.5 boosts the first
	// plane's conductance. Physically: the unit cell's heat converges on
	// the via/cell center before entering the 300 µm substrate, which then
	// spreads it — the naive 1-D estimate over the concentrated area is
	// several times too pessimistic. Model the concentrated entry as a disc
	// of roughly a third of the cell radius on the 300 µm substrate: the
	// 1-D/spreading ratio must land in the same few-× regime as c₁,₂.
	const (
		cellRadius = 424e-6 // equal-area radius of the 752 µm case-study cell
		tSub       = 300e-6
		kSi        = 130.0
	)
	a := cellRadius / 3
	oneD := OneDSlab(a, tSub, kSi)
	real, err := Resistance(a, cellRadius, tSub, kSi)
	if err != nil {
		t.Fatal(err)
	}
	ratio := oneD / real
	if ratio < 1.5 || ratio > 8 {
		t.Errorf("spreading ratio %.2f outside the plausible c₁,₂ regime (paper fits 3.5)", ratio)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Resistance(-1, 1, 1, 1); err == nil {
		t.Error("negative a accepted")
	}
	if _, err := Resistance(2, 1, 1, 1); err == nil {
		t.Error("a > b accepted")
	}
	if _, err := SpreadingResistance(1, 1, 0, 1); err == nil {
		t.Error("zero thickness accepted")
	}
	if _, err := SpreadingResistance(2, 1, 1, 1); err == nil {
		t.Error("a > b accepted in SpreadingResistance")
	}
}
