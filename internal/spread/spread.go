// Package spread implements the classical flux-tube spreading-resistance
// solution: a circular heat source of radius a centered on a cylinder of
// radius b and height t with adiabatic sides and an isothermal base. This is
// the canonical analytical description of lateral heat spreading in a thick
// substrate — the physics behind the paper's case-study coefficient c₁,₂,
// which boosts the first plane's conductance to account for the spreading a
// 300 µm substrate above the heat sink provides.
//
// The solution is the standard Bessel series (Yovanovich et al.): with
// δ_n the positive roots of J₁ and ε = a/b, τ = t/b,
//
//	R_total = t/(kπb²) + R_sp
//	R_sp    = 4/(π k ε² b) · Σ_n J₁²(δ_n ε) / (δ_n³ J₀²(δ_n)) · tanh(δ_n τ)
//
// R_sp vanishes as ε → 1 (full-face source) and approaches the Mikic
// half-space limit ψ ≈ (1-ε)^{3/2}/(4 k a) for deep tubes.
package spread

import (
	"fmt"
	"math"
)

// maxTerms is the number of series terms; the series converges like 1/δ³,
// so 60 terms give far better accuracy than the FVM we validate against.
const maxTerms = 60

// j1Roots caches the positive roots of J₁.
var j1Roots = computeJ1Roots(maxTerms)

// computeJ1Roots finds the first n positive roots of the Bessel function J₁
// by bisection; the roots are asymptotically spaced ~π apart starting near
// 3.8317.
func computeJ1Roots(n int) []float64 {
	roots := make([]float64, 0, n)
	lo := 2.0
	for len(roots) < n {
		hi := lo + 0.1
		// March until the sign changes.
		for math.Signbit(math.J1(lo)) == math.Signbit(math.J1(hi)) {
			lo = hi
			hi += 0.1
		}
		// Bisect.
		a, b := lo, hi
		for i := 0; i < 80; i++ {
			mid := 0.5 * (a + b)
			if math.Signbit(math.J1(a)) == math.Signbit(math.J1(mid)) {
				a = mid
			} else {
				b = mid
			}
		}
		roots = append(roots, 0.5*(a+b))
		lo = b + 0.5
	}
	return roots
}

// Resistance returns the total thermal resistance (K/W) from a circular
// isoflux source of radius a to the isothermal base of a cylinder with
// radius b ≥ a, height t and conductivity k: the 1-D bulk term plus the
// spreading term, using the average source temperature.
func Resistance(a, b, t, k float64) (float64, error) {
	if !(a > 0) || !(b > 0) || !(t > 0) || !(k > 0) {
		return 0, fmt.Errorf("spread: all of a=%g, b=%g, t=%g, k=%g must be positive", a, b, t, k)
	}
	if a > b {
		return 0, fmt.Errorf("spread: source radius %g exceeds tube radius %g", a, b)
	}
	bulk := t / (k * math.Pi * b * b)
	sp, err := SpreadingResistance(a, b, t, k)
	if err != nil {
		return 0, err
	}
	return bulk + sp, nil
}

// SpreadingResistance returns only the constriction/spreading part (K/W).
func SpreadingResistance(a, b, t, k float64) (float64, error) {
	if !(a > 0) || !(b > 0) || !(t > 0) || !(k > 0) {
		return 0, fmt.Errorf("spread: all of a=%g, b=%g, t=%g, k=%g must be positive", a, b, t, k)
	}
	if a > b {
		return 0, fmt.Errorf("spread: source radius %g exceeds tube radius %g", a, b)
	}
	eps := a / b
	tau := t / b
	var sum float64
	for _, d := range j1Roots {
		j1 := math.J1(d * eps)
		j0 := math.J0(d)
		sum += j1 * j1 / (d * d * d * j0 * j0) * math.Tanh(d*tau)
	}
	return 4 / (math.Pi * k * eps * eps * b) * sum, nil
}

// MikicHalfSpace returns the classic half-space (deep tube) approximation
// ψ/(4ka) with ψ = (1-ε)^{3/2}, useful as a sanity bound for τ ≳ 1.
func MikicHalfSpace(a, b, k float64) float64 {
	eps := a / b
	return math.Pow(1-eps, 1.5) / (4 * k * a)
}

// OneDSlab returns the naive 1-D slab resistance t/(kπa²) that ignores
// spreading entirely — what the paper's eq. (7)-style surroundings formulas
// assume. The ratio OneDSlab/Resistance quantifies how much a thick
// substrate's spreading reduces the real resistance, i.e. the physical
// origin of a c₁,₂-style coefficient.
func OneDSlab(a, t, k float64) float64 {
	return t / (k * math.Pi * a * a)
}
