package sweep

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stack"
	"repro/internal/units"
)

func fig4Stack(t testing.TB, r float64) *stack.Stack {
	t.Helper()
	s, err := stack.Fig4Block(units.UM(r))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// failModel errors on every solve.
type failModel struct{}

func (failModel) Name() string                             { return "fail" }
func (failModel) Solve(*stack.Stack) (*core.Result, error) { return nil, errors.New("boom") }

// panickyModel panics on every solve.
type panickyModel struct{}

func (panickyModel) Name() string { return "panicky" }
func (panickyModel) Solve(*stack.Stack) (*core.Result, error) {
	panic("deliberate test panic")
}

func TestRunOrderAndResults(t *testing.T) {
	m := core.Model1D{}
	var jobs Batch
	radii := []float64{2, 5, 10, 20}
	for _, r := range radii {
		jobs = jobs.Add("", fig4Stack(t, r), m)
	}
	outs, err := jobs.Run(context.Background(), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(jobs) {
		t.Fatalf("got %d outcomes for %d jobs", len(outs), len(jobs))
	}
	for i, oc := range outs {
		if oc.Err != nil {
			t.Fatalf("job %d: %v", i, oc.Err)
		}
		want, err := m.Solve(jobs[i].Stack)
		if err != nil {
			t.Fatal(err)
		}
		if oc.Result.MaxDT != want.MaxDT {
			t.Errorf("job %d: out-of-order result: got %.4f want %.4f", i, oc.Result.MaxDT, want.MaxDT)
		}
		if oc.Runtime < 0 {
			t.Errorf("job %d: negative runtime %v", i, oc.Runtime)
		}
	}
}

func TestRunCapturesPerJobErrors(t *testing.T) {
	s := fig4Stack(t, 10)
	jobs := Batch{}.
		Add("ok", s, core.Model1D{}).
		Add("bad", s, failModel{}).
		Add("also ok", s, core.Model1D{})
	outs, err := Run(context.Background(), jobs, Options{})
	if err != nil {
		t.Fatalf("batch error for a per-job failure: %v", err)
	}
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Errorf("healthy jobs failed: %v, %v", outs[0].Err, outs[2].Err)
	}
	if outs[1].Err == nil {
		t.Fatal("failing model produced no error")
	}
	if !strings.Contains(outs[1].Err.Error(), `"bad"`) {
		t.Errorf("error %q does not name the job", outs[1].Err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	s := fig4Stack(t, 10)
	jobs := Batch{}.
		Add("kaboom", s, panickyModel{}).
		Add("survivor", s, core.Model1D{})
	outs, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err == nil || !strings.Contains(outs[0].Err.Error(), "panicked") {
		t.Errorf("panic not converted to error: %v", outs[0].Err)
	}
	if outs[1].Err != nil {
		t.Errorf("panic killed a later job: %v", outs[1].Err)
	}
}

func TestRunRejectsNilJobParts(t *testing.T) {
	s := fig4Stack(t, 10)
	jobs := Batch{}.
		Add("no model", s, nil).
		Add("no stack", nil, core.Model1D{})
	outs, err := Run(context.Background(), jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, oc := range outs {
		if oc.Err == nil {
			t.Errorf("job %d with nil part accepted", i)
		}
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var jobs Batch
	for i := 0; i < 16; i++ {
		jobs = jobs.Add("", fig4Stack(t, 10), core.Model1D{})
	}
	outs, err := Run(ctx, jobs, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	for i, oc := range outs {
		if oc.Result == nil && oc.Err == nil {
			t.Errorf("job %d has neither result nor error after cancellation", i)
		}
	}
}

func TestRunEmptyBatch(t *testing.T) {
	outs, err := Run(context.Background(), nil, Options{})
	if err != nil || len(outs) != 0 {
		t.Fatalf("empty batch: outs=%v err=%v", outs, err)
	}
}

func TestCacheHits(t *testing.T) {
	s := fig4Stack(t, 10)
	m := core.Model1D{}
	cache := NewCache()
	jobs := Batch{}.Add("a", s, m).Add("b", s, m).Add("c", s, m)
	outs, err := Run(context.Background(), jobs, Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
	hits, misses, _ := cache.Counters()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", hits, misses)
	}
	if outs[0].FromCache || !outs[1].FromCache || !outs[2].FromCache {
		t.Errorf("cached flags wrong: %v %v %v", outs[0].FromCache, outs[1].FromCache, outs[2].FromCache)
	}
	for i := 1; i < 3; i++ {
		if outs[i].Result != outs[0].Result {
			t.Errorf("job %d did not reuse the cached result", i)
		}
	}
}

func TestCacheDistinguishesModelsAndStacks(t *testing.T) {
	cache := NewCache()
	jobs := Batch{}.
		Add("", fig4Stack(t, 10), core.Model1D{}).
		Add("", fig4Stack(t, 20), core.Model1D{}).
		Add("", fig4Stack(t, 10), core.NewModelB(10))
	if _, err := Run(context.Background(), jobs, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 3 {
		t.Errorf("distinct jobs collided: cache holds %d entries, want 3", cache.Len())
	}
}

func TestCacheStoresFailuresWithPerJobLabels(t *testing.T) {
	s := fig4Stack(t, 10)
	cache := NewCache()
	jobs := Batch{}.Add("first", s, failModel{}).Add("second", s, failModel{})
	outs, err := Run(context.Background(), jobs, Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !outs[1].FromCache {
		t.Error("second failure was not served from cache")
	}
	if !strings.Contains(outs[0].Err.Error(), `"first"`) ||
		!strings.Contains(outs[1].Err.Error(), `"second"`) {
		t.Errorf("cached errors lost their per-job labels: %v / %v", outs[0].Err, outs[1].Err)
	}
}

func TestCachedModelWrapper(t *testing.T) {
	s := fig4Stack(t, 10)
	cache := NewCache()
	m := Cached(core.Model1D{}, cache)
	if m.Name() != (core.Model1D{}).Name() {
		t.Errorf("wrapper changed the model name to %q", m.Name())
	}
	r1, err := m.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("second solve was not memoized")
	}
	if hits, _, _ := cache.Counters(); hits != 1 {
		t.Errorf("hits=%d, want 1", hits)
	}
	if Cached(core.Model1D{}, nil) == nil {
		t.Error("nil cache should return the model unwrapped, not nil")
	}
}
