package sweep

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/stack"
)

// oldCacheKey is the %#v formula the canonical encoder replaced, kept here
// as the behavioral reference: for every model type in the repository today
// (plain value structs without pointer or map fields) it was a complete
// serialization, so the canonical key must preserve exactly its equalities
// and its distinctions on those types.
func oldCacheKey(m core.Model, s *stack.Stack) string {
	return fmt.Sprintf("%T|%#v|%#v", m, m, *s)
}

// keyCases enumerates (model, stack) points spanning every current model
// type and the stack fields the key must resolve: coefficients, segment
// counts, resolutions, via geometry, materials, NaN corners.
func keyCases(t *testing.T) []struct {
	name  string
	model core.Model
	stack *stack.Stack
} {
	t.Helper()
	base := fig4Stack(t, 10)
	r12 := fig4Stack(t, 12)
	nanStack := base.Clone()
	nanStack.Footprint = math.NaN()
	matStack := base.Clone()
	matStack.Planes[0].Si.K = matStack.Planes[0].Si.K + 1
	refined := fem.DefaultResolution().Refine(2)

	return []struct {
		name  string
		model core.Model
		stack *stack.Stack
	}{
		{"A/paper", core.ModelA{Coeffs: core.PaperBlockCoeffs()}, base},
		{"A/system", core.ModelA{Coeffs: core.PaperSystemCoeffs()}, base},
		{"A/paper/r12", core.ModelA{Coeffs: core.PaperBlockCoeffs()}, r12},
		{"A/k1-epsilon", core.ModelA{Coeffs: core.Coeffs{K1: math.Nextafter(1.3, 2), K2: 0.55, C1: 1}}, base},
		{"B/100", core.NewModelB(100), base},
		{"B/20", core.NewModelB(20), base},
		{"1D", core.Model1D{}, base},
		{"1D/nan", core.Model1D{}, nanStack},
		{"1D/material", core.Model1D{}, matStack},
		{"FVM/default", fem.ReferenceModel{}, base},
		{"FVM/refined", fem.ReferenceModel{Res: refined}, base},
		{"FVM/workers", fem.ReferenceModel{Res: fem.Resolution{Workers: 4}}, base},
	}
}

// TestCacheKeyPreservesOldKeySpace: on every pair of current-model-type
// points, the canonical key collides exactly where the old %#v key collided
// and distinguishes exactly where it distinguished.
func TestCacheKeyPreservesOldKeySpace(t *testing.T) {
	cases := keyCases(t)
	for i := range cases {
		for j := range cases {
			oldEq := oldCacheKey(cases[i].model, cases[i].stack) == oldCacheKey(cases[j].model, cases[j].stack)
			newEq := cacheKey(cases[i].model, cases[i].stack) == cacheKey(cases[j].model, cases[j].stack)
			if oldEq != newEq {
				t.Errorf("%s vs %s: old key equal=%v, canonical key equal=%v",
					cases[i].name, cases[j].name, oldEq, newEq)
			}
		}
	}
	// Self-consistency: every case must equal itself under both keys (guards
	// against an encoder that injects per-call state).
	for _, c := range cases {
		if cacheKey(c.model, c.stack) != cacheKey(c.model, c.stack) {
			t.Errorf("%s: canonical key not stable across calls", c.name)
		}
	}
}

// pointerModel simulates a future model type gaining a pointer field — the
// exact shape that silently broke the %#v key (it rendered the address, so
// two equal configurations never shared a cache slot).
type pointerModel struct {
	Coeffs *core.Coeffs
}

func (pointerModel) Name() string                             { return "ptr-probe" }
func (pointerModel) Solve(*stack.Stack) (*core.Result, error) { return &core.Result{}, nil }

func TestCacheKeyHandlesPointerFields(t *testing.T) {
	s := fig4Stack(t, 10)
	c1 := core.PaperBlockCoeffs()
	c2 := core.PaperBlockCoeffs()
	m1, m2 := pointerModel{&c1}, pointerModel{&c2}
	if cacheKey(m1, s) != cacheKey(m2, s) {
		t.Fatalf("equal configurations behind distinct pointers do not share a key:\n%s\nvs\n%s",
			cacheKey(m1, s), cacheKey(m2, s))
	}
	c3 := core.PaperSystemCoeffs()
	if cacheKey(m1, s) == cacheKey(pointerModel{&c3}, s) {
		t.Fatal("distinct configurations behind pointers share a key")
	}
	if cacheKey(pointerModel{nil}, s) == cacheKey(m1, s) {
		t.Fatal("nil pointer configuration aliases a non-nil one")
	}
}
