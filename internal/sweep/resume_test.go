package sweep

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/fem"
)

// cheapRef is the cheap FVM reference model used across the reuse tests:
// small enough (a few hundred unknowns) to solve in milliseconds, real
// enough to exercise reusable instances and warm-start chains.
func cheapRef() fem.ReferenceModel {
	return fem.ReferenceModel{Res: fem.Resolution{
		RadialVia: 4, RadialLiner: 2, RadialOuter: 8,
		AxialPerLayer: 3, AxialMin: 2, Bulk: 6,
	}}
}

func resumeJobs(t *testing.T, m core.Model, n int) Batch {
	t.Helper()
	var jobs Batch
	for i := 0; i < n; i++ {
		r := 2 + float64(i) // distinct radii, one per point
		jobs = jobs.Add(fmt.Sprintf("r=%gum", r), fig4Stack(t, r), m)
	}
	return jobs
}

// normOutcome strips the fields that legitimately differ between a fresh
// solve and a journal replay of the same point: wall times and provenance
// flags. Everything numerical must match bit-for-bit.
func normOutcome(oc Outcome) Outcome {
	oc.Runtime = 0
	oc.FromCache = false
	oc.Replayed = false
	if oc.Result != nil {
		r := *oc.Result
		r.Solver.Wall = 0
		oc.Result = &r
	}
	if oc.Err != nil {
		// Replayed errors are flattened to strings; compare the rendering.
		oc.Err = fmt.Errorf("%s", oc.Err.Error())
	}
	return oc
}

func requireSameOutcomes(t *testing.T, got, want []Outcome) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d outcomes, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := normOutcome(got[i]), normOutcome(want[i])
		if (g.Err == nil) != (w.Err == nil) || (g.Err != nil && g.Err.Error() != w.Err.Error()) {
			t.Fatalf("point %d error %v, want %v", i, g.Err, w.Err)
		}
		if !reflect.DeepEqual(g.Result, w.Result) {
			t.Fatalf("point %d result differs\n got %+v\nwant %+v", i, g.Result, w.Result)
		}
	}
}

// killAndResume journals a run that is cancelled after roughly kill completed
// points, then resumes it from the journal and returns the resumed outcomes
// plus the resumed journal's contents.
func killAndResume(t *testing.T, jobs Batch, opt Options, kill int) ([]Outcome, *bytes.Buffer) {
	t.Helper()
	var first bytes.Buffer
	j1, err := NewJournal(&first, jobs, ShardSpec{})
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int64
	killOpt := opt
	killOpt.Journal = j1
	killOpt.Progress = func(i int, oc Outcome) {
		if completed.Add(1) >= int64(kill) {
			cancel()
		}
	}
	Run(cctx, jobs, killOpt) // cancellation mid-run is the point; error expected
	if err := j1.Err(); err != nil {
		t.Fatalf("journal write error: %v", err)
	}

	resume, _, err := ReadJournal(bytes.NewReader(first.Bytes()), jobs)
	if err != nil {
		t.Fatalf("reading interrupted journal: %v", err)
	}
	if kill > 0 && len(resume) == 0 && kill <= len(jobs) {
		t.Fatalf("interrupted run journaled no points (wanted ~%d)", kill)
	}

	var second bytes.Buffer
	j2, err := NewJournal(&second, jobs, ShardSpec{})
	if err != nil {
		t.Fatal(err)
	}
	resumeOpt := opt
	resumeOpt.Journal = j2
	resumeOpt.Resume = resume
	out, err := Run(context.Background(), jobs, resumeOpt)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	return out, &second
}

// TestSweepJournalResumeIdentity is the crash/resume property test: a
// journaled sweep killed after an arbitrary number of completed points and
// resumed from its journal produces outcomes bit-identical to an
// uninterrupted run, across worker counts — and the resumed journal is
// complete (every point present), so a further resume is a pure replay.
func TestSweepJournalResumeIdentity(t *testing.T) {
	jobs := resumeJobs(t, core.Model1D{}, 24)
	baseline, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, kill := range []int{0, 1, 5, 17, 24} {
			t.Run(fmt.Sprintf("workers=%d/kill=%d", workers, kill), func(t *testing.T) {
				out, journal := killAndResume(t, jobs, Options{Workers: workers}, kill)
				requireSameOutcomes(t, out, baseline)
				final, _, err := ReadJournal(bytes.NewReader(journal.Bytes()), jobs)
				if err != nil {
					t.Fatal(err)
				}
				if len(final) != len(jobs) {
					t.Fatalf("resumed journal holds %d of %d points", len(final), len(jobs))
				}
			})
		}
	}
}

// TestSweepJournalResumeIdentityWarmStart is the same property over
// warm-start chains with the real FVM reference model: replay is
// chain-granular, so a chain interrupted halfway re-solves from its boundary
// and reproduces the exact warm-seeded iterate sequence.
func TestSweepJournalResumeIdentityWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("FVM resume matrix in -short mode")
	}
	jobs := resumeJobs(t, cheapRef(), 24)
	opt := Options{WarmStart: true}
	base := opt
	base.Workers = 1
	baseline, err := Run(context.Background(), jobs, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, kill := range []int{3, 11} {
			t.Run(fmt.Sprintf("workers=%d/kill=%d", workers, kill), func(t *testing.T) {
				wopt := opt
				wopt.Workers = workers
				out, _ := killAndResume(t, jobs, wopt, kill)
				requireSameOutcomes(t, out, baseline)
			})
		}
	}
}

// TestSweepShardMergeIdentity: running every shard of a partition separately
// (journaled) and merging the journals reproduces the single-process
// outcomes exactly, for shard counts 1/2/5 with and without warm-start
// chains. Shard boundaries are chain-aligned, so warm seeding inside each
// shard replays the unsharded sequence.
func TestSweepShardMergeIdentity(t *testing.T) {
	for _, warm := range []bool{false, true} {
		var m core.Model
		var n int
		if warm {
			if testing.Short() {
				continue
			}
			m, n = cheapRef(), 24
		} else {
			m, n = core.Model1D{}, 27 // not a chain multiple: exercises the ragged tail
		}
		jobs := resumeJobs(t, m, n)
		baseline, err := Run(context.Background(), jobs, Options{Workers: 2, WarmStart: warm})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 5} {
			t.Run(fmt.Sprintf("warm=%v/shards=%d", warm, shards), func(t *testing.T) {
				var concat []Outcome
				readers := make([]*bytes.Buffer, shards)
				for s := 0; s < shards; s++ {
					spec := ShardSpec{Index: s, Count: shards}
					readers[s] = &bytes.Buffer{}
					j, err := NewJournal(readers[s], jobs, spec)
					if err != nil {
						t.Fatal(err)
					}
					out, lo, err := RunShard(context.Background(), jobs, spec,
						Options{Workers: 3, WarmStart: warm, Journal: j})
					if err != nil {
						t.Fatal(err)
					}
					wantLo, wantHi := spec.Range(len(jobs))
					if lo != wantLo || len(out) != wantHi-wantLo {
						t.Fatalf("shard %s returned [%d,%d), want [%d,%d)",
							spec.String(), lo, lo+len(out), wantLo, wantHi)
					}
					concat = append(concat, out...)
				}
				requireSameOutcomes(t, concat, baseline)

				var ioReaders []io.Reader
				for _, b := range readers {
					ioReaders = append(ioReaders, bytes.NewReader(b.Bytes()))
				}
				merged, err := MergeJournals(jobs, ioReaders...)
				if err != nil {
					t.Fatal(err)
				}
				requireSameOutcomes(t, merged, baseline)
			})
		}
	}
}
