package sweep

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/stack"
)

// Cache memoizes solve results keyed on the full geometry and model
// configuration. Planning loops (plan.Plan bisections, calibration,
// design-space search) revisit identical (stack, model) points constantly;
// with a cache those repeats cost a map lookup instead of a solve.
//
// A Cache is safe for concurrent use. Cached *core.Result values are shared
// between all callers and must be treated as read-only.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	hits    int
	misses  int
}

type cacheEntry struct {
	res *core.Result
	err error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]cacheEntry)}
}

// lookup returns the cached outcome for key, counting hit/miss.
func (c *Cache) lookup(key string) (*core.Result, error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e.res, e.err, ok
}

// store records an outcome (including failures, so repeatedly-invalid
// geometries fail fast).
func (c *Cache) store(key string, res *core.Result, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = cacheEntry{res: res, err: err}
}

// Len returns the number of distinct memoized points.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Counters reports the lookup hit/miss totals since creation.
func (c *Cache) Counters() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// cacheKey fingerprints a (model, stack) pair. Both are plain value structs
// (materials are names plus scalar properties), so their %+v rendering is a
// complete, deterministic serialization: distinct float64 values print
// distinctly under Go's shortest round-trip formatting, and the concrete
// model type is included to separate models whose field sets collide.
func cacheKey(m core.Model, s *stack.Stack) string {
	return fmt.Sprintf("%T|%+v|%+v", m, m, *s)
}

// Cached wraps a model so every Solve is memoized in c. The wrapper
// preserves the model's name, making it a drop-in replacement anywhere a
// core.Model is consumed (e.g. plan.Plan, which re-solves identical tiles).
func Cached(m core.Model, c *Cache) core.Model {
	if c == nil {
		return m
	}
	return cachedModel{m: m, c: c}
}

type cachedModel struct {
	m core.Model
	c *Cache
}

// Name implements core.Model.
func (cm cachedModel) Name() string { return cm.m.Name() }

// Solve implements core.Model with memoization. Returned results are shared
// and must be treated as read-only.
func (cm cachedModel) Solve(s *stack.Stack) (*core.Result, error) {
	key := cacheKey(cm.m, s)
	if res, err, ok := cm.c.lookup(key); ok {
		return res, err
	}
	res, err := cm.m.Solve(s)
	cm.c.store(key, res, err)
	return res, err
}
