package sweep

import (
	"container/list"
	"sync"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stack"
)

// DefaultCacheCapacity bounds NewCache: generous enough that every sweep and
// planning run in this repository fits with room to spare, small enough that
// a long-lived process hammering the solve path (a design-planning loop
// bisecting across a large floorplan) cannot hold every point it ever solved.
const DefaultCacheCapacity = 1 << 16

// Cache memoizes solve results keyed on the full geometry and model
// configuration. Planning loops (plan.Plan bisections, calibration,
// design-space search) revisit identical (stack, model) points constantly;
// with a cache those repeats cost a map lookup instead of a solve.
//
// The cache holds at most its capacity and evicts least-recently-used
// entries beyond it; Counters reports how many lookups hit, missed and how
// many entries were evicted, and the same counts feed the obs default
// registry as sweep.cache.{hits,misses,evictions}.
//
// A Cache is safe for concurrent use. Cached *core.Result values are shared
// between all callers and must be treated as read-only.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	disk      *DiskCache // optional persistent tier behind the LRU
	hits      int
	misses    int
	evictions int
}

type cacheEntry struct {
	key string
	res *core.Result
	err error
}

// NewCache returns an empty cache bounded at DefaultCacheCapacity entries.
func NewCache() *Cache { return NewCacheSize(DefaultCacheCapacity) }

// NewCacheSize returns an empty cache holding at most capacity entries,
// evicting least-recently-used ones beyond that. capacity <= 0 means
// unbounded (the historical behavior).
func NewCacheSize(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// NewCacheWithDisk returns a two-tier cache: the in-memory LRU in front of a
// persistent DiskCache. Lookups consult memory first and fall through to
// disk on a miss, promoting disk hits into memory; successful results are
// stored in both tiers, failures only in memory (see DiskCache). A nil disk
// degrades to NewCacheSize.
func NewCacheWithDisk(capacity int, disk *DiskCache) *Cache {
	c := NewCacheSize(capacity)
	c.disk = disk
	return c
}

// Disk returns the persistent tier, or nil for a memory-only cache.
func (c *Cache) Disk() *DiskCache { return c.disk }

// lookup returns the cached outcome for key, counting hit/miss and marking
// the entry most recently used. Memory misses fall through to the disk tier
// (outside the lock — disk lookups do file I/O) and promote hits.
func (c *Cache) lookup(key string) (*core.Result, error, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		obs.Default().Counter("sweep.cache.hits").Inc()
		return e.res, e.err, true
	}
	c.mu.Unlock()
	if res, ok := c.disk.lookup(key); ok {
		c.storeMem(key, res, nil)
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		obs.Default().Counter("sweep.cache.hits").Inc()
		return res, nil, true
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	obs.Default().Counter("sweep.cache.misses").Inc()
	return nil, nil, false
}

// store records an outcome in both tiers (failures stay memory-only).
func (c *Cache) store(key string, res *core.Result, err error) {
	c.storeMem(key, res, err)
	if err == nil {
		c.disk.store(key, res)
	}
}

// storeMem records an outcome in the in-memory LRU (including failures, so
// repeatedly-invalid geometries fail fast), evicting the least-recently-used
// entry when the capacity is exceeded.
func (c *Cache) storeMem(key string, res *core.Result, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Concurrent workers may race to solve the same point; keep one.
		el.Value = &cacheEntry{key: key, res: res, err: err}
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res, err: err})
	if c.capacity > 0 && c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
		obs.Default().Counter("sweep.cache.evictions").Inc()
	}
}

// Len returns the number of distinct memoized points.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Capacity returns the entry bound (0 = unbounded).
func (c *Cache) Capacity() int { return c.capacity }

// Counters reports the lookup hit/miss totals and the number of entries
// evicted by the capacity bound since creation.
func (c *Cache) Counters() (hits, misses, evictions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// cacheKey fingerprints a (model, stack) pair through the canonical
// deterministic encoder. Unlike the %#v rendering it replaces, the canonical
// form never prints pointer addresses (a model gaining a pointer or map
// field keeps deduplicating instead of silently keying every solve apart)
// and is stable across processes, so the same key space serves both this
// in-process memoization and the solve daemon's cross-request coalescing.
func cacheKey(m core.Model, s *stack.Stack) string {
	return canon.String(m, s)
}

// Cached wraps a model so every Solve is memoized in c. The wrapper
// preserves the model's name, making it a drop-in replacement anywhere a
// core.Model is consumed (e.g. plan.Plan, which re-solves identical tiles).
func Cached(m core.Model, c *Cache) core.Model {
	if c == nil {
		return m
	}
	return cachedModel{m: m, c: c}
}

type cachedModel struct {
	m core.Model
	c *Cache
}

// Name implements core.Model.
func (cm cachedModel) Name() string { return cm.m.Name() }

// Solve implements core.Model with memoization. Returned results are shared
// and must be treated as read-only.
func (cm cachedModel) Solve(s *stack.Stack) (*core.Result, error) {
	key := cacheKey(cm.m, s)
	if res, err, ok := cm.c.lookup(key); ok {
		return res, err
	}
	res, err := cm.m.Solve(s)
	cm.c.store(key, res, err)
	return res, err
}
