package sweep

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/stack"
	"repro/internal/units"
)

// randomBatch builds a seeded pseudo-random job mix: varied geometries,
// varied models, duplicate points (to exercise the cache) and a sprinkling
// of failing jobs (to check errors stay attached to the right slot).
func randomBatch(t *testing.T, rng *rand.Rand, n int) Batch {
	t.Helper()
	models := []core.Model{
		core.Model1D{},
		core.ModelA{Coeffs: core.PaperBlockCoeffs()},
		core.NewModelB(5),
		core.NewModelB(20),
		failModel{},
	}
	radii := []float64{2, 5, 10, 15, 20}
	var jobs Batch
	for i := 0; i < n; i++ {
		r := radii[rng.Intn(len(radii))]
		m := models[rng.Intn(len(models))]
		s, err := stack.Fig4Block(units.UM(r))
		if err != nil {
			t.Fatal(err)
		}
		jobs = jobs.Add(fmt.Sprintf("job%d", i), s, m)
	}
	return jobs
}

// stripTiming removes the wall-clock fields, which are the only parts of an
// outcome allowed to differ between runs.
func stripTiming(outs []Outcome) []Outcome {
	clean := make([]Outcome, len(outs))
	for i, oc := range outs {
		oc.Runtime = 0
		clean[i] = oc
	}
	return clean
}

// errStrings flattens errors for comparison (identical text, possibly
// distinct allocations).
func errStrings(outs []Outcome) []string {
	es := make([]string, len(outs))
	for i, oc := range outs {
		if oc.Err != nil {
			es[i] = oc.Err.Error()
		}
	}
	return es
}

// TestParallelMatchesSequential is the engine's central property: for any
// job mix, any worker count, with or without memoization, the outcome slice
// is identical (same results bit for bit, same errors, same order) to the
// one-worker sequential run.
func TestParallelMatchesSequential(t *testing.T) {
	for _, withCache := range []bool{false, true} {
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			jobs := randomBatch(t, rng, 24)

			opts := Options{Workers: 1}
			if withCache {
				opts.Cache = NewCache()
			}
			want, err := Run(context.Background(), jobs, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantClean, wantErrs := stripTiming(want), errStrings(want)

			for _, workers := range []int{2, 8} {
				opts := Options{Workers: workers}
				if withCache {
					opts.Cache = NewCache()
				}
				got, err := Run(context.Background(), jobs, opts)
				if err != nil {
					t.Fatal(err)
				}
				gotClean, gotErrs := stripTiming(got), errStrings(got)
				for i := range wantClean {
					if !reflect.DeepEqual(gotClean[i].Result, wantClean[i].Result) {
						t.Errorf("cache=%v seed=%d workers=%d job %d: result diverged\nseq: %+v\npar: %+v",
							withCache, seed, workers, i, wantClean[i].Result, gotClean[i].Result)
					}
					if gotErrs[i] != wantErrs[i] {
						t.Errorf("cache=%v seed=%d workers=%d job %d: error diverged: %q vs %q",
							withCache, seed, workers, i, gotErrs[i], wantErrs[i])
					}
				}
			}
		}
	}
}

// TestCachedRunMatchesUncached asserts memoization changes performance, not
// answers: a cached run returns the same results as an uncached one.
func TestCachedRunMatchesUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	jobs := randomBatch(t, rng, 24)
	plain, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Run(context.Background(), jobs, Options{Workers: 4, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if !reflect.DeepEqual(plain[i].Result, cached[i].Result) {
			t.Errorf("job %d: cached result diverged", i)
		}
	}
}
