package sweep

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stack"
)

// keyModel is a minimal model whose fields participate in the cache key.
type keyModel struct {
	A, B string
}

func (keyModel) Name() string                             { return "key-probe" }
func (keyModel) Solve(*stack.Stack) (*core.Result, error) { return &core.Result{}, nil }

// TestCacheKeyDistinguishesCollidingRenderings: under %+v the two models
// below both render `{A:a B:b B:c}`, silently aliasing distinct
// configurations to one cache slot. The canonical %#v key quotes strings,
// so they must fingerprint differently.
func TestCacheKeyDistinguishesCollidingRenderings(t *testing.T) {
	s := fig4Stack(t, 10)
	m1 := keyModel{A: "a B:b", B: "c"}
	m2 := keyModel{A: "a", B: "b B:c"}
	if fmt.Sprintf("%+v", m1) != fmt.Sprintf("%+v", m2) {
		t.Fatalf("probe models no longer collide under %%+v; rebuild the test inputs")
	}
	k1, k2 := cacheKey(m1, s), cacheKey(m2, s)
	if k1 == k2 {
		t.Fatalf("colliding renderings share a cache key:\n%s", k1)
	}
}

// TestCacheKeyDistinguishesNaNField: stacks that differ only in a field one
// of which is NaN must not share a key (a NaN-valued geometry is degenerate,
// but it must never alias a valid one).
func TestCacheKeyDistinguishesNaNField(t *testing.T) {
	a := fig4Stack(t, 10)
	b := *a
	b.Footprint = math.NaN()
	m := core.Model1D{}
	if cacheKey(m, a) == cacheKey(m, &b) {
		t.Fatal("NaN-differing stacks share a cache key")
	}
	// Two stacks with the same NaN field are the same point and may share.
	c := *a
	c.Footprint = math.NaN()
	if cacheKey(m, &b) != cacheKey(m, &c) {
		t.Fatal("identical NaN stacks got distinct keys")
	}
}

// TestCacheLRUEviction fills a capacity-2 cache with three points and
// asserts the least-recently-used entry is the one that left.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCacheSize(2)
	r := &core.Result{}
	c.store("k1", r, nil)
	c.store("k2", r, nil)
	// Touch k1 so k2 becomes the LRU entry.
	if _, _, ok := c.lookup("k1"); !ok {
		t.Fatal("k1 missing before eviction")
	}
	c.store("k3", r, nil)
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if _, _, ok := c.lookup("k2"); ok {
		t.Error("LRU entry k2 survived eviction")
	}
	if _, _, ok := c.lookup("k1"); !ok {
		t.Error("recently-used k1 was evicted")
	}
	if _, _, ok := c.lookup("k3"); !ok {
		t.Error("newest entry k3 was evicted")
	}
	_, _, evictions := c.Counters()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
}

// TestCacheUnboundedBackCompat: capacity 0 disables eviction.
func TestCacheUnboundedBackCompat(t *testing.T) {
	c := NewCacheSize(0)
	r := &core.Result{}
	for i := 0; i < 1000; i++ {
		c.store(fmt.Sprintf("k%d", i), r, nil)
	}
	if c.Len() != 1000 {
		t.Fatalf("unbounded cache holds %d entries, want 1000", c.Len())
	}
	if _, _, evictions := c.Counters(); evictions != 0 {
		t.Fatalf("unbounded cache evicted %d entries", evictions)
	}
	if NewCache().Capacity() != DefaultCacheCapacity {
		t.Errorf("NewCache capacity = %d, want %d", NewCache().Capacity(), DefaultCacheCapacity)
	}
}

// TestCacheStoreIdempotentUnderRace: two workers racing to store the same
// key must leave one entry and no leaked list nodes.
func TestCacheStoreIdempotentUnderRace(t *testing.T) {
	c := NewCacheSize(4)
	r := &core.Result{}
	c.store("k", r, nil)
	c.store("k", r, nil)
	if c.Len() != 1 {
		t.Fatalf("duplicate store left %d entries", c.Len())
	}
	if c.order.Len() != 1 {
		t.Fatalf("duplicate store leaked list nodes: %d", c.order.Len())
	}
}
