package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// ShardSpec selects one shard of a deterministically partitioned batch. A
// batch of n jobs is split into Count contiguous index ranges whose
// boundaries are aligned to warm-chain boundaries (multiples of
// warmChainLen), so a warm-start chain never straddles two shards: every
// shard solves exactly the chains a single-process run would have solved over
// the same indices, which is what makes the merged outcomes bit-identical to
// an unsharded run.
//
// The partition is a pure function of (n, Count): shards can be computed
// independently by separate processes and are guaranteed disjoint and
// covering.
type ShardSpec struct {
	// Index is the 0-based shard index, in [0, Count).
	Index int
	// Count is the total number of shards; values <= 1 select the whole
	// batch (the zero ShardSpec is "unsharded").
	Count int
}

// ParseShardSpec parses the textual form "i/n" (1-based, e.g. "2/5" is the
// second of five shards). "1/1", "" and "0/0" all mean unsharded.
func ParseShardSpec(s string) (ShardSpec, error) {
	if s == "" {
		return ShardSpec{}, nil
	}
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return ShardSpec{}, fmt.Errorf("sweep: shard spec %q: want \"i/n\" (e.g. \"2/5\")", s)
	}
	idx, err := strconv.Atoi(s[:i])
	if err != nil {
		return ShardSpec{}, fmt.Errorf("sweep: shard spec %q: bad index: %v", s, err)
	}
	cnt, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return ShardSpec{}, fmt.Errorf("sweep: shard spec %q: bad count: %v", s, err)
	}
	sp := ShardSpec{Index: idx - 1, Count: cnt}
	if cnt == 0 && idx == 0 {
		return ShardSpec{}, nil
	}
	if err := sp.Validate(); err != nil {
		return ShardSpec{}, err
	}
	return sp, nil
}

// IsZero reports whether the spec selects the whole batch.
func (sp ShardSpec) IsZero() bool { return sp.Count <= 1 }

// String renders the 1-based "i/n" form; the unsharded spec renders empty.
func (sp ShardSpec) String() string {
	if sp.IsZero() {
		return ""
	}
	return fmt.Sprintf("%d/%d", sp.Index+1, sp.Count)
}

// Validate rejects out-of-range indices.
func (sp ShardSpec) Validate() error {
	if sp.IsZero() {
		if sp.Index != 0 {
			return fmt.Errorf("sweep: shard index %d with count %d", sp.Index, sp.Count)
		}
		return nil
	}
	if sp.Index < 0 || sp.Index >= sp.Count {
		return fmt.Errorf("sweep: shard index %d out of range for %d shards (want 1/%d .. %d/%d)",
			sp.Index+1, sp.Count, sp.Count, sp.Count, sp.Count)
	}
	return nil
}

// Range returns the half-open job-index range [lo, hi) of the shard for a
// batch of n jobs. Boundaries fall on multiples of warmChainLen and chains
// are distributed as evenly as possible (the first chains%Count shards get
// one extra chain). The union of all shards' ranges is exactly [0, n) and
// the ranges are pairwise disjoint.
func (sp ShardSpec) Range(n int) (lo, hi int) {
	if sp.IsZero() {
		return 0, n
	}
	chains := (n + warmChainLen - 1) / warmChainLen
	per, rem := chains/sp.Count, chains%sp.Count
	var cLo, cHi int
	if sp.Index < rem {
		cLo = sp.Index * (per + 1)
		cHi = cLo + per + 1
	} else {
		cLo = rem*(per+1) + (sp.Index-rem)*per
		cHi = cLo + per
	}
	lo = cLo * warmChainLen
	hi = cHi * warmChainLen
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
