package sweep

import (
	"fmt"
	"testing"
)

func TestParseShardSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    ShardSpec
		wantErr bool
	}{
		{"", ShardSpec{}, false},
		{"0/0", ShardSpec{}, false},
		{"1/1", ShardSpec{Index: 0, Count: 1}, false},
		{"1/4", ShardSpec{Index: 0, Count: 4}, false},
		{"4/4", ShardSpec{Index: 3, Count: 4}, false},
		{"2/5", ShardSpec{Index: 1, Count: 5}, false},
		{"5/4", ShardSpec{}, true},  // index past count
		{"0/4", ShardSpec{}, true},  // specs are 1-based
		{"-1/4", ShardSpec{}, true}, // negative index
		{"2", ShardSpec{}, true},    // missing slash
		{"a/4", ShardSpec{}, true},
		{"2/b", ShardSpec{}, true},
	}
	for _, c := range cases {
		got, err := ParseShardSpec(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseShardSpec(%q): err=%v wantErr=%v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseShardSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestShardSpecStringRoundTrip(t *testing.T) {
	for count := 2; count <= 6; count++ {
		for idx := 0; idx < count; idx++ {
			sp := ShardSpec{Index: idx, Count: count}
			back, err := ParseShardSpec(sp.String())
			if err != nil {
				t.Fatalf("%+v round-trip: %v", sp, err)
			}
			if back != sp {
				t.Fatalf("%+v round-trips to %+v", sp, back)
			}
		}
	}
	if s := (ShardSpec{}).String(); s != "" {
		t.Fatalf("zero spec renders %q, want empty", s)
	}
}

// TestShardSpecPartition: for every (n, count) the shard ranges are disjoint,
// covering, in order, and every boundary except the batch ends falls on a
// warm-chain multiple — the invariant that lets warm-start chains replay
// identically inside each shard.
func TestShardSpecPartition(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 16, 24, 25, 63, 64, 65, 200} {
		for _, count := range []int{1, 2, 3, 5, 8, 17} {
			t.Run(fmt.Sprintf("n=%d/shards=%d", n, count), func(t *testing.T) {
				next := 0
				for idx := 0; idx < count; idx++ {
					lo, hi := ShardSpec{Index: idx, Count: count}.Range(n)
					if lo != next {
						t.Fatalf("shard %d starts at %d, want %d (gap or overlap)", idx, lo, next)
					}
					if hi < lo {
						t.Fatalf("shard %d has inverted range [%d,%d)", idx, lo, hi)
					}
					if lo%warmChainLen != 0 && lo != n {
						t.Fatalf("shard %d boundary %d not chain-aligned", idx, lo)
					}
					next = hi
				}
				if next != n {
					t.Fatalf("shards cover [0,%d), want [0,%d)", next, n)
				}
			})
		}
	}
}

func TestShardRangeZeroSpecIsWholeBatch(t *testing.T) {
	lo, hi := ShardSpec{}.Range(37)
	if lo != 0 || hi != 37 {
		t.Fatalf("zero spec range [%d,%d), want [0,37)", lo, hi)
	}
}
