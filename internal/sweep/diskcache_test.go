package sweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
)

func TestDiskCachePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	jobs := resumeJobs(t, core.Model1D{}, 4)

	d1, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(context.Background(), jobs, Options{Workers: 2, Cache: NewCacheWithDisk(16, d1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, stores, _ := d1.Counters(); stores != len(jobs) {
		t.Fatalf("first run persisted %d entries, want %d", stores, len(jobs))
	}

	// A fresh process: new memory tier, same directory. Every point must be
	// a disk hit and replay the identical result.
	d2, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != len(jobs) {
		t.Fatalf("reopened cache sees %d entries, want %d", d2.Len(), len(jobs))
	}
	second, err := Run(context.Background(), jobs, Options{Workers: 2, Cache: NewCacheWithDisk(16, d2)})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _, _ := d2.Counters()
	if hits != len(jobs) || misses != 0 {
		t.Fatalf("reopened cache: %d hits %d misses, want %d/0", hits, misses, len(jobs))
	}
	for i := range first {
		if !second[i].FromCache {
			t.Fatalf("point %d not served from cache on second run", i)
		}
		if !reflect.DeepEqual(first[i].Result, second[i].Result) {
			t.Fatalf("point %d differs across processes", i)
		}
	}
}

func TestDiskCacheDoesNotPersistFailures(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	jobs := Batch{}.Add("bad", fig4Stack(t, 10), failModel{})
	if _, err := Run(context.Background(), jobs, Options{Cache: NewCacheWithDisk(16, d)}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("failure persisted to disk (%d entries)", d.Len())
	}
}

func TestDiskCacheEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Result{Model: "x", MaxDT: 1}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("key-%d", i)
		d.store(key, res)
		// Distinct mtimes so eviction order is well defined even on coarse
		// filesystem timestamp granularity.
		now := time.Now().Add(time.Duration(i-10) * time.Second)
		os.Chtimes(d.path(key), now, now)
	}
	d.cap = 3
	d.evict()
	if d.Len() != 3 {
		t.Fatalf("cache holds %d entries after eviction, want 3", d.Len())
	}
	if _, ok := d.lookup("key-0"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := d.lookup("key-4"); !ok {
		t.Fatal("newest entry evicted")
	}
}

// TestDiskCacheEvictionTieBreak: entries sharing one mtime (coarse
// filesystem timestamps) evict in file-name order, so the surviving set is
// deterministic no matter which process runs the eviction.
func TestDiskCacheEvictionTieBreak(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Result{Model: "x", MaxDT: 1}
	keys := []string{"key-0", "key-1", "key-2", "key-3", "key-4"}
	stamp := time.Now().Add(-time.Hour)
	names := make(map[string]string, len(keys))
	for _, key := range keys {
		d.store(key, res)
		if err := os.Chtimes(d.path(key), stamp, stamp); err != nil {
			t.Fatal(err)
		}
		names[key] = filepath.Base(d.path(key))
	}
	d.cap = 2
	d.evict()
	if d.Len() != 2 {
		t.Fatalf("cache holds %d entries after eviction, want 2", d.Len())
	}
	// The two lexicographically-last hashed names must be the survivors.
	sorted := append([]string(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return names[sorted[i]] < names[sorted[j]] })
	for _, key := range sorted[:3] {
		if _, ok := d.lookup(key); ok {
			t.Errorf("entry %s (file %s) should have been evicted first", key, names[key])
		}
	}
	for _, key := range sorted[3:] {
		if _, ok := d.lookup(key); !ok {
			t.Errorf("entry %s (file %s) should have survived", key, names[key])
		}
	}
}

func TestDiskCacheRejectsCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.store("k", &core.Result{Model: "x", MaxDT: 2})
	if err := os.WriteFile(d.path("k"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.lookup("k"); ok {
		t.Fatal("corrupt entry served")
	}
	// And a colliding key (file content for a different canonical key) is a
	// miss, not a wrong replay.
	d.store("other", &core.Result{Model: "y", MaxDT: 3})
	data, err := os.ReadFile(d.path("other"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path("k"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.lookup("k"); ok {
		t.Fatal("entry with mismatched key served")
	}
}
