package sweep

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func journalJobs(t *testing.T, radii ...float64) Batch {
	t.Helper()
	var jobs Batch
	for _, r := range radii {
		jobs = jobs.Add("", fig4Stack(t, r), core.Model1D{})
	}
	return jobs
}

// TestJournalRoundTrip: every completed point of a journaled run replays
// bit-identically through ReadJournal.
func TestJournalRoundTrip(t *testing.T) {
	jobs := journalJobs(t, 2, 5, 10, 20)
	var buf bytes.Buffer
	j, err := NewJournal(&buf, jobs, ShardSpec{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(context.Background(), jobs, Options{Workers: 2, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}
	replayed, spec, err := ReadJournal(&buf, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.IsZero() {
		t.Fatalf("unsharded journal read back shard %q", spec.String())
	}
	if len(replayed) != len(jobs) {
		t.Fatalf("replayed %d of %d points", len(replayed), len(jobs))
	}
	for i, want := range out {
		got, ok := replayed[i]
		if !ok {
			t.Fatalf("point %d missing from journal", i)
		}
		if !got.Replayed {
			t.Fatalf("point %d not marked Replayed", i)
		}
		if !reflect.DeepEqual(got.Result, want.Result) {
			t.Fatalf("point %d replays %+v, want %+v", i, got.Result, want.Result)
		}
	}
}

// TestJournalReplaysErrors: failed points journal their wrapped error string
// and replay as failures.
func TestJournalReplaysErrors(t *testing.T) {
	jobs := Batch{}.
		Add("ok", fig4Stack(t, 10), core.Model1D{}).
		Add("bad", fig4Stack(t, 10), failModel{})
	var buf bytes.Buffer
	j, err := NewJournal(&buf, jobs, ShardSpec{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(context.Background(), jobs, Options{Workers: 1, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	replayed, _, err := ReadJournal(&buf, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if replayed[1].Err == nil || replayed[1].Err.Error() != out[1].Err.Error() {
		t.Fatalf("replayed error %v, want %v", replayed[1].Err, out[1].Err)
	}
}

// TestSweepJournalRejectsMismatch: a journal written for one batch refuses to
// replay into a different one — wrong job count, or same count with different
// geometry (fingerprint mismatch).
func TestSweepJournalRejectsMismatch(t *testing.T) {
	jobs := journalJobs(t, 2, 5, 10, 20)
	var buf bytes.Buffer
	j, err := NewJournal(&buf, jobs, ShardSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), jobs, Options{Journal: j}); err != nil {
		t.Fatal(err)
	}

	if _, _, err := ReadJournal(bytes.NewReader(buf.Bytes()), jobs[:3]); err == nil {
		t.Fatal("journal for 4 jobs replayed into 3-job batch")
	} else if !strings.Contains(err.Error(), "jobs") {
		t.Fatalf("unhelpful job-count error: %v", err)
	}

	other := journalJobs(t, 2, 5, 10, 21) // same count, one radius differs
	if _, _, err := ReadJournal(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("journal replayed into a batch with different geometry")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("unhelpful fingerprint error: %v", err)
	}
}

// TestJournalToleratesTornTail: a partial final line — the tail a killed
// process leaves — is ignored; everything before it replays. The same
// garbage mid-file is corruption and errors.
func TestJournalToleratesTornTail(t *testing.T) {
	jobs := journalJobs(t, 2, 5, 10, 20)
	var buf bytes.Buffer
	j, err := NewJournal(&buf, jobs, ShardSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), jobs, Options{Journal: j}); err != nil {
		t.Fatal(err)
	}

	torn := append(append([]byte{}, buf.Bytes()...), []byte(`{"kind":"point","i":2,"resu`)...)
	replayed, _, err := ReadJournal(bytes.NewReader(torn), jobs)
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(replayed) != len(jobs) {
		t.Fatalf("torn journal replays %d of %d points", len(replayed), len(jobs))
	}

	lines := bytes.SplitAfter(buf.Bytes(), []byte("\n"))
	var mid []byte
	mid = append(mid, lines[0]...)                    // header
	mid = append(mid, []byte("{\"kind\":\"poi\n")...) // garbage, not the final line
	mid = append(mid, bytes.Join(lines[1:], nil)...)
	if _, _, err := ReadJournal(bytes.NewReader(mid), jobs); err == nil {
		t.Fatal("mid-file garbage accepted")
	}
}

// TestJournalResumeAppendsMatchingHeader: resuming appends a second header to
// the same stream; ReadJournal accepts matching headers and rejects a header
// from a different shard.
func TestJournalResumeAppendsMatchingHeader(t *testing.T) {
	jobs := journalJobs(t, 2, 5, 8, 11, 14, 17, 20, 23, 26)
	spec := ShardSpec{Index: 0, Count: 2}
	var buf bytes.Buffer
	j1, err := NewJournal(&buf, jobs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunShard(context.Background(), jobs, spec, Options{Journal: j1}); err != nil {
		t.Fatal(err)
	}
	// Resume session: a second matching header on the same stream.
	j2, err := NewJournal(&buf, jobs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunShard(context.Background(), jobs, spec, Options{Journal: j2}); err != nil {
		t.Fatal(err)
	}
	replayed, got, err := ReadJournal(bytes.NewReader(buf.Bytes()), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Fatalf("read back shard %q, want %q", got.String(), spec.String())
	}
	lo, hi := spec.Range(len(jobs))
	if len(replayed) != hi-lo {
		t.Fatalf("replayed %d points, want %d", len(replayed), hi-lo)
	}

	// A header from another shard on the same stream must be rejected.
	if _, err := NewJournal(&buf, jobs, ShardSpec{Index: 1, Count: 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadJournal(bytes.NewReader(buf.Bytes()), jobs); err == nil {
		t.Fatal("mixed-shard journal accepted")
	}
}

// TestMergeJournalsRequiresFullCoverage: merging shard journals errors when a
// point is missing, and succeeds (in batch order) when shards cover the batch.
func TestMergeJournalsRequiresFullCoverage(t *testing.T) {
	jobs := journalJobs(t, 2, 5, 8, 11, 14, 17, 20, 23, 26, 29)
	var bufs [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		spec := ShardSpec{Index: i, Count: 2}
		j, err := NewJournal(&bufs[i], jobs, spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := RunShard(context.Background(), jobs, spec, Options{Journal: j}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := MergeJournals(jobs, bytes.NewReader(bufs[0].Bytes())); err == nil {
		t.Fatal("merge of one shard out of two succeeded")
	}
	merged, err := MergeJournals(jobs, bytes.NewReader(bufs[0].Bytes()), bytes.NewReader(bufs[1].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(context.Background(), jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(merged[i].Result, want[i].Result) {
			t.Fatalf("merged point %d = %+v, want %+v", i, merged[i].Result, want[i].Result)
		}
	}
}
