package sweep

import (
	"context"
	"math"
	"testing"

	"repro/internal/fem"
	"repro/internal/stack"
	"repro/internal/units"
)

// reuseJobs builds a radius sweep of reference-solver jobs: one model value
// shared by all jobs, so sweep workers cache its patterns and hierarchies.
func reuseJobs(t *testing.T, n int) []Job {
	t.Helper()
	res := fem.Resolution{RadialVia: 4, RadialLiner: 2, RadialOuter: 8, AxialPerLayer: 3, AxialMin: 2, Bulk: 6}
	m := fem.ReferenceModel{Res: res}
	jobs := make([]Job, n)
	for i := range jobs {
		s, err := stack.Fig4Block(units.UM(4 + 2*float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = Job{Stack: s, Model: m}
	}
	return jobs
}

func maxDTs(t *testing.T, out []Outcome) []float64 {
	t.Helper()
	dts := make([]float64, len(out))
	for i, oc := range out {
		if oc.Err != nil {
			t.Fatalf("job %d failed: %v", i, oc.Err)
		}
		dts[i] = oc.Result.MaxDT
	}
	return dts
}

// TestSweepReuseWorkerInvariance is the sweep-level reuse property: with
// per-worker solver-state reuse (the default), results must be bit-identical
// for any worker count and to a reuse-disabled run — reuse recycles memory,
// never numbers.
func TestSweepReuseWorkerInvariance(t *testing.T) {
	jobs := reuseJobs(t, 12)
	base, err := Run(context.Background(), jobs, Options{Workers: 1, NoReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	want := maxDTs(t, base)
	for _, workers := range []int{1, 2, 4, 8} {
		out, err := Run(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := maxDTs(t, out)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d job %d: reuse %v vs fresh %v (must be bit-identical)", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSweepWarmStartWorkerInvariance: warm-started sweeps run jobs in fixed
// chains, so their (iterate-sequence-dependent) results must also be
// bit-identical for any worker count — and stay within solver tolerance of
// the cold results.
func TestSweepWarmStartWorkerInvariance(t *testing.T) {
	jobs := reuseJobs(t, 20) // several warm chains
	cold, err := Run(context.Background(), jobs, Options{Workers: 1, NoReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	coldDT := maxDTs(t, cold)
	var want []float64
	for _, workers := range []int{1, 2, 4, 8} {
		out, err := Run(context.Background(), jobs, Options{Workers: workers, WarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		got := maxDTs(t, out)
		if want == nil {
			want = got
			for i := range got {
				denom := math.Max(math.Abs(coldDT[i]), 1)
				if math.Abs(got[i]-coldDT[i])/denom > 1e-6 {
					t.Fatalf("warm job %d diverged from cold: %v vs %v", i, got[i], coldDT[i])
				}
			}
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("warm start workers=%d job %d: %v vs %v (chains must make this worker-invariant)", workers, i, got[i], want[i])
			}
		}
	}
}
