package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestRunEmitsSpans: a traced batch produces one sweep.run root with a
// sweep.job child per job, cache hits flagged.
func TestRunEmitsSpans(t *testing.T) {
	s := fig4Stack(t, 10)
	m := core.Model1D{}
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	jobs := Batch{}.Add("a", s, m).Add("b", s, m)
	if _, err := Run(context.Background(), jobs, Options{Workers: 1, Cache: NewCache(), Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Span   string         `json:"span"`
		ID     int64          `json:"id"`
		Parent int64          `json:"parent"`
		Attrs  map[string]any `json:"attrs"`
	}
	var runID int64
	var jobRecs []rec
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad NDJSON %q: %v", line, err)
		}
		switch r.Span {
		case "sweep.run":
			runID = r.ID
		case "sweep.job":
			jobRecs = append(jobRecs, r)
		}
	}
	if runID == 0 {
		t.Fatal("no sweep.run span")
	}
	if len(jobRecs) != 2 {
		t.Fatalf("got %d sweep.job spans, want 2", len(jobRecs))
	}
	hits := 0
	for _, r := range jobRecs {
		if r.Parent != runID {
			t.Errorf("job span %v not parented to sweep.run", r.Attrs)
		}
		if r.Attrs["from_cache"] == true {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("%d job spans flagged from_cache, want 1 (second job repeats the first)", hits)
	}
}
