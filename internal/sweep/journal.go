package sweep

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
)

// journalVersion is bumped when the record layout changes incompatibly.
const journalVersion = 1

// maxJournalLine bounds one journal record; results with large PlaneDT
// arrays stay far below this.
const maxJournalLine = 16 << 20

// BatchFingerprint returns a digest of the batch's jobs — labels, models and
// stacks through the canonical encoder — used by journals to refuse replay
// against a different job list. It is deterministic across processes, so a
// shard's journal written on one machine validates against the same deck
// lowered on another.
func BatchFingerprint(jobs []Job) string {
	h := sha256.New()
	for _, j := range jobs {
		io.WriteString(h, j.Label)
		io.WriteString(h, "\x00")
		io.WriteString(h, cacheKey(j.Model, j.Stack))
		io.WriteString(h, "\x01")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// journalHeader is the first record of a journal (and of every resumed
// append session): enough to validate that a replay targets the same batch
// partitioned the same way.
type journalHeader struct {
	Kind    string `json:"kind"` // "header"
	Version int    `json:"version"`
	Jobs    int    `json:"jobs"`
	Batch   string `json:"batch"`
	Shard   string `json:"shard,omitempty"` // "i/n", empty = whole batch
}

// journalPoint is one completed point. Result round-trips exactly: Go's JSON
// encoder renders float64 in shortest round-trip form, so a replayed result
// is bit-identical to the solved one.
type journalPoint struct {
	Kind      string       `json:"kind"` // "point"
	I         int          `json:"i"`    // global batch index
	Label     string       `json:"label,omitempty"`
	Result    *core.Result `json:"result,omitempty"`
	Err       string       `json:"err,omitempty"`
	RuntimeNS int64        `json:"runtime_ns,omitempty"`
	FromCache bool         `json:"from_cache,omitempty"`
}

// Journal is an append-only NDJSON checkpoint of a sweep's completed points.
// Workers append one record per finished job (reusing the obs tracer's
// locked line-atomic writer idiom), so a killed sweep loses at most its
// in-flight solves; ReadJournal replays everything that completed. Records
// of cancelled jobs are never written — a context error is not an outcome.
//
// A Journal is safe for concurrent use. Like the tracer, a write failure is
// sticky: recording stops, solving continues, and Err surfaces the failure
// when the run finishes.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJournal writes a header describing the batch and shard to w and returns
// the journal. Appending to an existing journal file (a resume) writes a
// fresh header; ReadJournal accepts any number of matching headers.
func NewJournal(w io.Writer, jobs []Job, spec ShardSpec) (*Journal, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	j := &Journal{w: w}
	line, err := json.Marshal(journalHeader{
		Kind:    "header",
		Version: journalVersion,
		Jobs:    len(jobs),
		Batch:   BatchFingerprint(jobs),
		Shard:   spec.String(),
	})
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(append(line, '\n')); err != nil {
		return nil, fmt.Errorf("sweep: writing journal header: %w", err)
	}
	return j, nil
}

// Err returns the first write error the journal encountered, if any. Callers
// that rely on the journal for crash safety should surface it after the run.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// point appends one completed outcome. Nil-safe: a nil journal no-ops, so
// the run loop needs no guards.
func (j *Journal) point(i int, oc Outcome) {
	if j == nil {
		return
	}
	rec := journalPoint{
		Kind:      "point",
		I:         i,
		Label:     oc.Job.Label,
		Result:    oc.Result,
		RuntimeNS: oc.Runtime.Nanoseconds(),
		FromCache: oc.FromCache,
	}
	if oc.Err != nil {
		rec.Err = oc.Err.Error()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		// A result that cannot be marshalled (no such type exists in this
		// repository) drops the record, not the sweep.
		return
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		if _, werr := j.w.Write(line); werr != nil {
			j.err = werr
		}
	}
}

// isCancellation reports whether an outcome's error is a context error — an
// interrupted job, not a solved one, and therefore not journal material.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ReadJournal parses a journal stream written for jobs and returns the
// completed outcomes keyed by global batch index, plus the journal's shard
// spec. The header must match the batch (job count and fingerprint);
// mismatches are an error, because replaying a different batch's results
// would be silently wrong. A torn final line — the usual tail of a killed
// process — is tolerated; garbage anywhere else is corruption and errors.
//
// Replayed outcomes reference the live jobs slice (journals store results,
// not geometries) and carry Replayed = true.
func ReadJournal(r io.Reader, jobs []Job) (map[int]Outcome, ShardSpec, error) {
	var (
		spec        ShardSpec
		sawHeader   bool
		fingerprint string
	)
	out := make(map[int]Outcome)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxJournalLine)

	type anyRecord struct {
		Kind string `json:"kind"`
	}
	var pendingErr error
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// The bad line was not the final one: corruption, not a tear.
			return nil, ShardSpec{}, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var kind anyRecord
		if err := json.Unmarshal(line, &kind); err != nil {
			pendingErr = fmt.Errorf("sweep: journal line %d: %v", lineNo, err)
			continue
		}
		switch kind.Kind {
		case "header":
			var h journalHeader
			if err := json.Unmarshal(line, &h); err != nil {
				pendingErr = fmt.Errorf("sweep: journal line %d: %v", lineNo, err)
				continue
			}
			if h.Version != journalVersion {
				return nil, ShardSpec{}, fmt.Errorf("sweep: journal version %d, want %d", h.Version, journalVersion)
			}
			if h.Jobs != len(jobs) {
				return nil, ShardSpec{}, fmt.Errorf("sweep: journal was written for %d jobs, this sweep has %d", h.Jobs, len(jobs))
			}
			if fingerprint == "" {
				fingerprint = BatchFingerprint(jobs)
			}
			if h.Batch != fingerprint {
				return nil, ShardSpec{}, fmt.Errorf("sweep: journal batch fingerprint %.12s… does not match this sweep (%.12s…): different geometries or models", h.Batch, fingerprint)
			}
			hs, err := ParseShardSpec(h.Shard)
			if err != nil {
				return nil, ShardSpec{}, err
			}
			if sawHeader && hs != spec {
				return nil, ShardSpec{}, fmt.Errorf("sweep: journal mixes shards %q and %q", spec.String(), hs.String())
			}
			spec, sawHeader = hs, true
		case "point":
			if !sawHeader {
				return nil, ShardSpec{}, fmt.Errorf("sweep: journal line %d: point before header", lineNo)
			}
			var p journalPoint
			if err := json.Unmarshal(line, &p); err != nil {
				pendingErr = fmt.Errorf("sweep: journal line %d: %v", lineNo, err)
				continue
			}
			lo, hi := spec.Range(len(jobs))
			if p.I < lo || p.I >= hi {
				return nil, ShardSpec{}, fmt.Errorf("sweep: journal point %d outside shard range [%d,%d)", p.I, lo, hi)
			}
			oc := Outcome{
				Job:       jobs[p.I],
				Result:    p.Result,
				Runtime:   time.Duration(p.RuntimeNS),
				FromCache: p.FromCache,
				Replayed:  true,
			}
			if p.Err != "" {
				oc.Err = errors.New(p.Err)
			}
			out[p.I] = oc
		default:
			pendingErr = fmt.Errorf("sweep: journal line %d: unknown record kind %q", lineNo, kind.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, ShardSpec{}, fmt.Errorf("sweep: reading journal: %w", err)
	}
	// pendingErr still set here means the malformed line was the last one: a
	// torn write from a killed process. Everything before it replays — unless
	// nothing valid preceded it, in which case the file is just garbage.
	if pendingErr != nil && !sawHeader {
		return nil, ShardSpec{}, pendingErr
	}
	return out, spec, nil
}

// MergeJournals reassembles a full batch's outcomes from one or more shard
// journals. Every job index must be covered by some journal (shards may
// overlap, e.g. after a re-run; later readers win); a gap is an error naming
// the first missing point. The merged outcomes are ordered like a
// single-process Run over the same jobs, so rendering them produces the
// byte-identical report.
func MergeJournals(jobs []Job, readers ...io.Reader) ([]Outcome, error) {
	merged := make(map[int]Outcome)
	for k, r := range readers {
		m, _, err := ReadJournal(r, jobs)
		if err != nil {
			return nil, fmt.Errorf("sweep: journal %d: %w", k+1, err)
		}
		for i, oc := range m {
			merged[i] = oc
		}
	}
	out := make([]Outcome, len(jobs))
	for i := range jobs {
		oc, ok := merged[i]
		if !ok {
			return nil, fmt.Errorf("sweep: merged journals cover %d of %d points; point %d (%s) is missing — run its shard to completion first",
				len(merged), len(jobs), i, jobs[i].Name())
		}
		out[i] = oc
	}
	return out, nil
}
