package sweep

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestRunRejectsWarmStartWithCache: memoizing chain-order-dependent warm
// results would leak them into unrelated batches, so Run must refuse the
// combination up front instead of silently producing order-dependent caches.
func TestRunRejectsWarmStartWithCache(t *testing.T) {
	jobs := []Job{{Stack: fig4Stack(t, 10), Model: core.Model1D{}}}

	_, err := Run(context.Background(), jobs, Options{WarmStart: true, Cache: NewCacheSize(8)})
	if err == nil {
		t.Fatal("Run accepted WarmStart together with a shared Cache")
	}
	for _, want := range []string{"WarmStart", "Cache"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %s", err, want)
		}
	}

	// NoReuse disables reuse entirely, so WarmStart is inert and the cache is
	// safe again; each option alone is fine too.
	for _, opt := range []Options{
		{WarmStart: true, NoReuse: true, Cache: NewCacheSize(8)},
		{WarmStart: true},
		{Cache: NewCacheSize(8)},
	} {
		if _, err := Run(context.Background(), jobs, opt); err != nil {
			t.Errorf("Run(%+v) = %v, want nil", opt, err)
		}
	}
}
