package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultDiskCacheEntries bounds OpenDiskCache when the caller passes a
// non-positive cap. Each entry is one solved point (a few hundred bytes to a
// few KB of JSON), so the default stays well under typical tmp quotas while
// covering every sweep in the paper several times over.
const DefaultDiskCacheEntries = 1 << 14

// DiskCache is a persistent result store keyed by the canonical (model,
// stack) fingerprint, sitting behind the in-memory LRU (see
// NewCacheWithDisk): a point solved by yesterday's sweep — or by another
// process sharing the directory — is a file read today, not a solve.
//
// Layout: one JSON file per entry named sha256(key).json under the cache
// directory. The file carries the full canonical key alongside the result,
// so a (vanishingly unlikely) digest collision is detected instead of
// replaying the wrong geometry's temperatures. Writes go through a temp
// file + rename, so a crashed process never leaves a torn entry behind.
// Hits refresh the file's mtime, and when the directory exceeds the entry
// cap the oldest-mtime files are evicted — i.e. LRU, at file granularity.
//
// Only successful results are persisted. Failures stay in the in-memory
// tier: an error is often environmental (cancellation, resource pressure)
// and must not poison future runs.
//
// A DiskCache is safe for concurrent use within a process. Across processes
// the rename-based writes keep entries internally consistent; concurrent
// writers of the same key race benignly (the results are identical by
// determinism).
type DiskCache struct {
	dir string
	cap int

	mu        sync.Mutex
	count     int // files present, maintained incrementally after the open scan
	hits      int
	misses    int
	stores    int
	evictions int
}

// diskEntry is the on-disk JSON layout of one cached point.
type diskEntry struct {
	Key    string       `json:"key"`
	Result *core.Result `json:"result"`
}

// OpenDiskCache opens (creating if needed) a persistent result cache rooted
// at dir, holding at most maxEntries files; maxEntries <= 0 selects
// DefaultDiskCacheEntries.
func OpenDiskCache(dir string, maxEntries int) (*DiskCache, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultDiskCacheEntries
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: opening disk cache: %w", err)
	}
	d := &DiskCache{dir: dir, cap: maxEntries}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening disk cache: %w", err)
	}
	for _, e := range names {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			d.count++
		}
	}
	return d, nil
}

// Dir returns the cache directory.
func (d *DiskCache) Dir() string { return d.dir }

// Len returns the number of entries currently on disk.
func (d *DiskCache) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Counters reports hit/miss/store/eviction totals since open. The same
// counts feed the obs default registry as sweep.diskcache.{hits,misses,
// stores,evictions}.
func (d *DiskCache) Counters() (hits, misses, stores, evictions int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hits, d.misses, d.stores, d.evictions
}

// path maps a canonical key to its entry file.
func (d *DiskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".json")
}

// lookup returns the persisted result for key, refreshing its recency.
func (d *DiskCache) lookup(key string) (*core.Result, bool) {
	if d == nil {
		return nil, false
	}
	p := d.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		d.miss()
		return nil, false
	}
	var e diskEntry
	// An unreadable or colliding entry is treated as a miss: the solve path
	// will overwrite it with a fresh, correct entry.
	if json.Unmarshal(data, &e) != nil || e.Key != key || e.Result == nil {
		d.miss()
		return nil, false
	}
	// Best-effort recency bump for LRU eviction: a filesystem that rejects
	// Chtimes (read-only remount, permission change) only costs this entry
	// its recency, never the hit.
	now := time.Now()
	_ = os.Chtimes(p, now, now)
	d.mu.Lock()
	d.hits++
	d.mu.Unlock()
	obs.Default().Counter("sweep.diskcache.hits").Inc()
	return e.Result, true
}

func (d *DiskCache) miss() {
	d.mu.Lock()
	d.misses++
	d.mu.Unlock()
	obs.Default().Counter("sweep.diskcache.misses").Inc()
}

// store persists a successful result. Failures are not an error of the
// sweep: a full disk degrades the cache to pass-through, nothing more.
func (d *DiskCache) store(key string, res *core.Result) {
	if d == nil || res == nil {
		return
	}
	data, err := json.Marshal(diskEntry{Key: key, Result: res})
	if err != nil {
		return
	}
	p := d.path(key)
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	_, statErr := os.Stat(p)
	existed := statErr == nil
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return
	}
	d.mu.Lock()
	d.stores++
	if !existed {
		d.count++
	}
	over := d.count - d.cap
	d.mu.Unlock()
	obs.Default().Counter("sweep.diskcache.stores").Inc()
	if over > 0 {
		d.evict()
	}
}

// evict removes oldest-mtime entries until the directory is back under cap.
func (d *DiskCache) evict() {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	type aged struct {
		name string
		mod  time.Time
	}
	var files []aged
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, aged{e.Name(), info.ModTime()})
	}
	// Ties on mtime (coarse filesystem timestamps, entries written within
	// one tick) break on the file name so the eviction order — and therefore
	// the surviving set — is deterministic across runs and processes.
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.Before(files[j].mod)
		}
		return files[i].name < files[j].name
	})
	d.count = len(files)
	for _, f := range files {
		if d.count <= d.cap {
			break
		}
		if os.Remove(filepath.Join(d.dir, f.name)) == nil {
			d.count--
			d.evictions++
			obs.Default().Counter("sweep.diskcache.evictions").Inc()
		}
	}
}
