// Package sweep is the batch-evaluation engine of the repository: it runs N
// independent (stack, model) thermal solves across a pool of workers with
// deterministic result ordering, per-job error capture, context
// cancellation, and optional memoization.
//
// Every figure and table of the paper is a sweep — solve the same stack
// family across a parameter range, per model — and planning workloads
// (plan.Plan, design-space exploration) evaluate thousands of candidate
// geometries. All of them funnel through Run.
//
// Jobs are independent by construction, so parallel execution is bitwise
// identical to the sequential path: every solver in this repository is
// deterministic and models are stateless values, making them safe for
// concurrent use.
package sweep

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stack"
)

// Job is one evaluation: solve Stack with Model.
type Job struct {
	// Label optionally tags the job in reports; Name returns the model
	// name when it is empty.
	Label string
	// Stack is the geometry to solve. It must not be mutated while the
	// batch runs.
	Stack *stack.Stack
	// Model is the thermal model. Models must be safe for concurrent use;
	// all models in this repository are stateless values and qualify.
	Model core.Model
}

// Name returns the job's display name: the label when set, otherwise the
// model name.
func (j Job) Name() string {
	if j.Label != "" {
		return j.Label
	}
	if j.Model != nil {
		return j.Model.Name()
	}
	return "<no model>"
}

// Outcome is one job's result. Exactly one of Result and Err is set.
type Outcome struct {
	// Job echoes the evaluated job.
	Job Job
	// Result is the solved temperature report (nil when Err is set).
	Result *core.Result
	// Err captures the job's failure; one failing geometry does not abort
	// the batch.
	Err error
	// Runtime is the wall-clock time of this job's solve. Zero for cache
	// hits, which perform no solve.
	Runtime time.Duration
	// FromCache reports whether the result came from the memoization cache.
	// A cached Result carries the Solver stats of the original solve, so
	// stats aggregation must skip outcomes with FromCache set or it
	// double-counts iterations and wall time.
	FromCache bool
	// Replayed reports that the outcome was restored from a checkpoint
	// journal (Options.Resume) instead of being solved in this run. Like
	// FromCache, a replayed Result carries the original solve's stats.
	Replayed bool
}

// Options configures a batch run. The zero value runs on GOMAXPROCS workers
// without memoization.
type Options struct {
	// Workers is the number of concurrent solvers; values < 1 select
	// runtime.GOMAXPROCS(0).
	Workers int
	// Cache optionally memoizes results keyed on geometry+model, making
	// repeated points (common in planning loops) free. The same Cache may
	// be shared across batches and is safe for concurrent use.
	Cache *Cache
	// Trace optionally records the batch as NDJSON spans: one "sweep.run"
	// root span with a "sweep.job" child per job, under which the solver
	// spans (fem.solve, sparse.cg) of context-aware models nest.
	Trace *obs.Tracer
	// NoReuse disables per-worker solver-state reuse for models implementing
	// core.ReusableSolver; every job then solves from scratch. Reuse never
	// changes results — a reusable instance is contractually bit-identical
	// to the fresh path — so this switch exists for A/B comparison and as an
	// escape hatch, not for correctness.
	NoReuse bool
	// WarmStart additionally seeds each reusable solve from the previous
	// solution of the same system shape. Jobs are dispatched to workers as
	// contiguous chains of warmChainLen batch indices — the caller's job
	// order, which sweeps lay out along the swept axis, is the warm-start
	// order — and warm state resets at every chain boundary, so results do
	// not depend on the worker count. Warm-started solves converge to the
	// same tolerance as cold ones but through a different iterate sequence;
	// see EXPERIMENTS.md for when that matters.
	//
	// WarmStart must not be combined with Cache: a warm-started result
	// depends on which solves preceded it in its chain, so memoizing it
	// under the (model, stack) key alone would replay chain-order-dependent
	// values into unrelated batches. Run rejects the combination.
	WarmStart bool
	// Journal optionally checkpoints every completed point as one NDJSON
	// record, so a killed run can be resumed (see ReadJournal and Resume).
	// Cancelled points are not journaled — a context error is not an
	// outcome. Replayed points ARE re-journaled, which keeps a journal
	// written across several resume sessions self-complete. Journal write
	// failures never abort the sweep; check Journal.Err after the run.
	Journal *Journal
	// Resume replays previously completed outcomes (from ReadJournal) by
	// global batch index instead of re-solving them. Replay is
	// chain-granular: a warm-start chain is replayed only when every one of
	// its points is present, otherwise the whole chain re-solves from its
	// boundary — deterministically identical to the first attempt — so
	// resumed results stay bit-identical to an uninterrupted run.
	Resume map[int]Outcome
	// Progress, when set, is called once per completed point with the global
	// batch index. It is invoked concurrently from worker goroutines; the
	// callback must be safe for concurrent use and should return quickly
	// (it runs on the solving goroutine).
	Progress func(i int, oc Outcome)
}

// validate rejects option combinations that would silently change results.
func (o Options) validate() error {
	if o.WarmStart && !o.NoReuse && o.Cache != nil {
		return fmt.Errorf("sweep: Options.WarmStart cannot be combined with a shared Cache: warm-started results depend on their chain order, so caching them under the (model, stack) key would leak order-dependent values into other batches (drop the cache or the warm start)")
	}
	return nil
}

// warmChainLen is the fixed length of a warm-start job chain. Like
// sparse's kernel chunk size it must not depend on the worker count: chain
// boundaries decide which solves seed which, making them part of the
// numerical contract of a warm-started sweep.
const warmChainLen = 8

// Batch is an ordered set of evaluation jobs.
type Batch []Job

// Add appends a job and returns the batch for chaining.
func (b Batch) Add(label string, s *stack.Stack, m core.Model) Batch {
	return append(b, Job{Label: label, Stack: s, Model: m})
}

// Run evaluates the batch; see the package-level Run.
func (b Batch) Run(ctx context.Context, opt Options) ([]Outcome, error) {
	return Run(ctx, b, opt)
}

// Run evaluates all jobs across opt.Workers workers and returns one Outcome
// per job in job order (out[i] belongs to jobs[i], regardless of worker
// scheduling). Per-job failures are captured in Outcome.Err; Run itself only
// returns an error when ctx is cancelled, in which case the outcomes of jobs
// that never started carry the context error.
func Run(ctx context.Context, jobs []Job, opt Options) ([]Outcome, error) {
	out, _, err := RunShard(ctx, jobs, ShardSpec{}, opt)
	return out, err
}

// RunShard evaluates one shard of the batch: the chain-aligned job-index
// range spec.Range(len(jobs)). It returns one Outcome per shard job (the
// slice covers [lo, lo+len(out)) of the batch) plus the shard's first global
// index. The zero spec evaluates the whole batch, making Run a special case.
//
// Because shard boundaries coincide with warm-chain boundaries, running every
// shard of a partition (in any number of processes) and concatenating the
// outcomes in shard order yields exactly the outcomes of a single-process
// Run over the same jobs.
func RunShard(ctx context.Context, jobs []Job, spec ShardSpec, opt Options) ([]Outcome, int, error) {
	if err := opt.validate(); err != nil {
		return nil, 0, err
	}
	if err := spec.Validate(); err != nil {
		return nil, 0, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	lo, hi := spec.Range(len(jobs))
	out, err := runRange(ctx, jobs, lo, hi, opt)
	return out, lo, err
}

// runRange is the worker-pool core shared by Run and RunShard: it evaluates
// jobs[lo:hi] and returns their outcomes (out[0] belongs to jobs[lo]).
func runRange(ctx context.Context, jobs []Job, lo, hi int, opt Options) ([]Outcome, error) {
	ctx = obs.ContextWithTracer(ctx, opt.Trace)
	n := hi - lo
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]Outcome, n)
	if n == 0 {
		return out, ctx.Err()
	}
	ctx, run := obs.StartSpan(ctx, "sweep.run")
	if run != nil {
		run.Set("jobs", n)
		run.Set("workers", workers)
		defer run.End()
	}
	busy := obs.Default().Gauge("sweep.workers.busy")

	// Jobs are dispatched as contiguous chains of batch indices: length 1
	// normally (identical to per-job dispatch), warmChainLen when warm
	// starting, where the chain is the unit of warm-start seeding. Chain
	// boundaries are anchored at index 0, not at lo; shard ranges are
	// chain-aligned by construction, so a sharded run walks the same chains
	// as the unsharded one.
	chain := 1
	if opt.WarmStart && !opt.NoReuse {
		chain = warmChainLen
	}
	finish := func(k int, oc Outcome) {
		out[k-lo] = oc
		if opt.Journal != nil && !isCancellation(oc.Err) {
			opt.Journal.point(k, oc)
		}
		if opt.Progress != nil {
			opt.Progress(k, oc)
		}
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			inst := &instances{warmStart: opt.WarmStart, disabled: opt.NoReuse}
			defer inst.close()
			for i := range idx {
				end := min(i+chain, hi)
				// Replay the chain from the checkpoint journal only when it
				// completed wholly; a partially journaled chain re-solves
				// from its boundary so warm-start seeding replays the exact
				// original sequence.
				if chainJournaled(opt.Resume, i, end) {
					for k := i; k < end; k++ {
						finish(k, opt.Resume[k])
					}
					continue
				}
				inst.resetWarm()
				for k := i; k < end; k++ {
					busy.Add(1)
					oc := evaluate(ctx, jobs[k], opt.Cache, inst)
					busy.Add(-1)
					finish(k, oc)
				}
			}
		}()
	}

feed:
	for i := lo; i < hi; i += chain {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Mark the jobs that never ran (their zero Outcome has neither a
		// result nor an error).
		for k := range out {
			if out[k].Result == nil && out[k].Err == nil {
				out[k] = Outcome{Job: jobs[lo+k], Err: err}
			}
		}
		return out, err
	}
	return out, nil
}

// chainJournaled reports whether every point of the chain [i, end) was
// restored from a journal.
func chainJournaled(resume map[int]Outcome, i, end int) bool {
	if len(resume) == 0 {
		return false
	}
	for k := i; k < end; k++ {
		if _, ok := resume[k]; !ok {
			return false
		}
	}
	return true
}

// instances is one worker's set of reusable solver instances, keyed by
// model value. Worker-local by design: instances are not safe for
// concurrent use, and reuse must not introduce cross-worker coupling.
type instances struct {
	warmStart bool
	disabled  bool
	m         map[core.Model]core.ReusableInstance
}

// instanceFor returns the worker's instance for the model, creating one on
// first sight. Models that do not implement core.ReusableSolver — or whose
// dynamic type is not comparable and so cannot key the map — get nil, which
// routes the job down the stateless path.
func (s *instances) instanceFor(mdl core.Model) core.ReusableInstance {
	if s == nil || s.disabled {
		return nil
	}
	rs, ok := mdl.(core.ReusableSolver)
	if !ok || !reflect.TypeOf(mdl).Comparable() {
		return nil
	}
	inst, ok := s.m[mdl]
	if !ok {
		inst = rs.NewReusable(s.warmStart)
		if s.m == nil {
			s.m = make(map[core.Model]core.ReusableInstance)
		}
		s.m[mdl] = inst
	}
	return inst
}

// resetWarm starts a fresh warm-start chain on every held instance.
func (s *instances) resetWarm() {
	for _, inst := range s.m {
		inst.ResetWarm()
	}
}

// close releases every held instance.
func (s *instances) close() {
	for _, inst := range s.m {
		inst.Close()
	}
}

// evaluate runs one job, consulting the cache and converting panics of
// misbehaving models into errors so a single bad geometry cannot kill the
// whole sweep.
func evaluate(ctx context.Context, j Job, c *Cache, inst *instances) Outcome {
	oc := Outcome{Job: j}
	if err := ctx.Err(); err != nil {
		oc.Err = err
		return oc
	}
	if j.Model == nil {
		oc.Err = fmt.Errorf("sweep: job %q has no model", j.Name())
		return oc
	}
	if j.Stack == nil {
		oc.Err = fmt.Errorf("sweep: job %q has no stack", j.Name())
		return oc
	}
	ctx, sp := obs.StartSpan(ctx, "sweep.job")
	if sp != nil {
		sp.Set("job", j.Name())
		defer func() {
			sp.Set("from_cache", oc.FromCache)
			if oc.Err != nil {
				sp.Set("error", oc.Err.Error())
			}
			sp.End()
		}()
	}
	var key string
	if c != nil {
		key = cacheKey(j.Model, j.Stack)
		if res, err, ok := c.lookup(key); ok {
			oc.Result, oc.Err, oc.FromCache = res, wrapErr(j, err), true
			return oc
		}
	}
	t0 := time.Now()
	res, err := solve(ctx, j, inst)
	oc.Runtime = time.Since(t0)
	recordJob(oc.Runtime, err)
	if c != nil {
		// Raw errors are cached so each job wraps them with its own label.
		c.store(key, res, err)
	}
	oc.Result, oc.Err = res, wrapErr(j, err)
	return oc
}

// recordJob feeds one solved (non-cached) job into the obs default registry.
func recordJob(d time.Duration, err error) {
	r := obs.Default()
	if r == nil {
		return
	}
	r.Counter("sweep.jobs").Inc()
	if err != nil {
		r.Counter("sweep.job.failures").Inc()
	}
	r.Histogram("sweep.job.seconds", obs.ExpBuckets(1e-6, 4, 13)).Observe(d.Seconds())
}

// wrapErr labels a job's failure with the job name.
func wrapErr(j Job, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("sweep: job %q: %w", j.Name(), err)
}

// solve invokes the model with panic capture, preferring the worker's
// reusable instance when the model offers one (cross-solve reuse), then the
// cancellable entry point: a cancelled batch stops its in-flight solves
// between solver iterations instead of running them to completion.
func solve(ctx context.Context, j Job, inst *instances) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("model panicked: %v", r)
		}
	}()
	if ri := inst.instanceFor(j.Model); ri != nil {
		res, err = ri.SolveCtx(ctx, j.Stack)
	} else if cs, ok := j.Model.(core.ContextSolver); ok {
		res, err = cs.SolveCtx(ctx, j.Stack)
	} else {
		res, err = j.Model.Solve(j.Stack)
	}
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("model returned no result")
	}
	return res, nil
}
