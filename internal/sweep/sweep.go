// Package sweep is the batch-evaluation engine of the repository: it runs N
// independent (stack, model) thermal solves across a pool of workers with
// deterministic result ordering, per-job error capture, context
// cancellation, and optional memoization.
//
// Every figure and table of the paper is a sweep — solve the same stack
// family across a parameter range, per model — and planning workloads
// (plan.Plan, design-space exploration) evaluate thousands of candidate
// geometries. All of them funnel through Run.
//
// Jobs are independent by construction, so parallel execution is bitwise
// identical to the sequential path: every solver in this repository is
// deterministic and models are stateless values, making them safe for
// concurrent use.
package sweep

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stack"
)

// Job is one evaluation: solve Stack with Model.
type Job struct {
	// Label optionally tags the job in reports; Name returns the model
	// name when it is empty.
	Label string
	// Stack is the geometry to solve. It must not be mutated while the
	// batch runs.
	Stack *stack.Stack
	// Model is the thermal model. Models must be safe for concurrent use;
	// all models in this repository are stateless values and qualify.
	Model core.Model
}

// Name returns the job's display name: the label when set, otherwise the
// model name.
func (j Job) Name() string {
	if j.Label != "" {
		return j.Label
	}
	if j.Model != nil {
		return j.Model.Name()
	}
	return "<no model>"
}

// Outcome is one job's result. Exactly one of Result and Err is set.
type Outcome struct {
	// Job echoes the evaluated job.
	Job Job
	// Result is the solved temperature report (nil when Err is set).
	Result *core.Result
	// Err captures the job's failure; one failing geometry does not abort
	// the batch.
	Err error
	// Runtime is the wall-clock time of this job's solve. Zero for cache
	// hits, which perform no solve.
	Runtime time.Duration
	// FromCache reports whether the result came from the memoization cache.
	// A cached Result carries the Solver stats of the original solve, so
	// stats aggregation must skip outcomes with FromCache set or it
	// double-counts iterations and wall time.
	FromCache bool
}

// Options configures a batch run. The zero value runs on GOMAXPROCS workers
// without memoization.
type Options struct {
	// Workers is the number of concurrent solvers; values < 1 select
	// runtime.GOMAXPROCS(0).
	Workers int
	// Cache optionally memoizes results keyed on geometry+model, making
	// repeated points (common in planning loops) free. The same Cache may
	// be shared across batches and is safe for concurrent use.
	Cache *Cache
	// Trace optionally records the batch as NDJSON spans: one "sweep.run"
	// root span with a "sweep.job" child per job, under which the solver
	// spans (fem.solve, sparse.cg) of context-aware models nest.
	Trace *obs.Tracer
	// NoReuse disables per-worker solver-state reuse for models implementing
	// core.ReusableSolver; every job then solves from scratch. Reuse never
	// changes results — a reusable instance is contractually bit-identical
	// to the fresh path — so this switch exists for A/B comparison and as an
	// escape hatch, not for correctness.
	NoReuse bool
	// WarmStart additionally seeds each reusable solve from the previous
	// solution of the same system shape. Jobs are dispatched to workers as
	// contiguous chains of warmChainLen batch indices — the caller's job
	// order, which sweeps lay out along the swept axis, is the warm-start
	// order — and warm state resets at every chain boundary, so results do
	// not depend on the worker count. Warm-started solves converge to the
	// same tolerance as cold ones but through a different iterate sequence;
	// see EXPERIMENTS.md for when that matters.
	//
	// WarmStart must not be combined with Cache: a warm-started result
	// depends on which solves preceded it in its chain, so memoizing it
	// under the (model, stack) key alone would replay chain-order-dependent
	// values into unrelated batches. Run rejects the combination.
	WarmStart bool
}

// validate rejects option combinations that would silently change results.
func (o Options) validate() error {
	if o.WarmStart && !o.NoReuse && o.Cache != nil {
		return fmt.Errorf("sweep: Options.WarmStart cannot be combined with a shared Cache: warm-started results depend on their chain order, so caching them under the (model, stack) key would leak order-dependent values into other batches (drop the cache or the warm start)")
	}
	return nil
}

// warmChainLen is the fixed length of a warm-start job chain. Like
// sparse's kernel chunk size it must not depend on the worker count: chain
// boundaries decide which solves seed which, making them part of the
// numerical contract of a warm-started sweep.
const warmChainLen = 8

// Batch is an ordered set of evaluation jobs.
type Batch []Job

// Add appends a job and returns the batch for chaining.
func (b Batch) Add(label string, s *stack.Stack, m core.Model) Batch {
	return append(b, Job{Label: label, Stack: s, Model: m})
}

// Run evaluates the batch; see the package-level Run.
func (b Batch) Run(ctx context.Context, opt Options) ([]Outcome, error) {
	return Run(ctx, b, opt)
}

// Run evaluates all jobs across opt.Workers workers and returns one Outcome
// per job in job order (out[i] belongs to jobs[i], regardless of worker
// scheduling). Per-job failures are captured in Outcome.Err; Run itself only
// returns an error when ctx is cancelled, in which case the outcomes of jobs
// that never started carry the context error.
func Run(ctx context.Context, jobs []Job, opt Options) ([]Outcome, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx = obs.ContextWithTracer(ctx, opt.Trace)
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return out, ctx.Err()
	}
	ctx, run := obs.StartSpan(ctx, "sweep.run")
	if run != nil {
		run.Set("jobs", len(jobs))
		run.Set("workers", workers)
		defer run.End()
	}
	busy := obs.Default().Gauge("sweep.workers.busy")

	// Jobs are dispatched as contiguous chains of batch indices: length 1
	// normally (identical to per-job dispatch), warmChainLen when warm
	// starting, where the chain is the unit of warm-start seeding.
	chain := 1
	if opt.WarmStart && !opt.NoReuse {
		chain = warmChainLen
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			inst := &instances{warmStart: opt.WarmStart, disabled: opt.NoReuse}
			defer inst.close()
			for i := range idx {
				inst.resetWarm()
				for k := i; k < min(i+chain, len(jobs)); k++ {
					busy.Add(1)
					out[k] = evaluate(ctx, jobs[k], opt.Cache, inst)
					busy.Add(-1)
				}
			}
		}()
	}

feed:
	for i := 0; i < len(jobs); i += chain {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Mark the jobs that never ran (their zero Outcome has neither a
		// result nor an error).
		for i := range out {
			if out[i].Result == nil && out[i].Err == nil {
				out[i] = Outcome{Job: jobs[i], Err: err}
			}
		}
		return out, err
	}
	return out, nil
}

// instances is one worker's set of reusable solver instances, keyed by
// model value. Worker-local by design: instances are not safe for
// concurrent use, and reuse must not introduce cross-worker coupling.
type instances struct {
	warmStart bool
	disabled  bool
	m         map[core.Model]core.ReusableInstance
}

// instanceFor returns the worker's instance for the model, creating one on
// first sight. Models that do not implement core.ReusableSolver — or whose
// dynamic type is not comparable and so cannot key the map — get nil, which
// routes the job down the stateless path.
func (s *instances) instanceFor(mdl core.Model) core.ReusableInstance {
	if s == nil || s.disabled {
		return nil
	}
	rs, ok := mdl.(core.ReusableSolver)
	if !ok || !reflect.TypeOf(mdl).Comparable() {
		return nil
	}
	inst, ok := s.m[mdl]
	if !ok {
		inst = rs.NewReusable(s.warmStart)
		if s.m == nil {
			s.m = make(map[core.Model]core.ReusableInstance)
		}
		s.m[mdl] = inst
	}
	return inst
}

// resetWarm starts a fresh warm-start chain on every held instance.
func (s *instances) resetWarm() {
	for _, inst := range s.m {
		inst.ResetWarm()
	}
}

// close releases every held instance.
func (s *instances) close() {
	for _, inst := range s.m {
		inst.Close()
	}
}

// evaluate runs one job, consulting the cache and converting panics of
// misbehaving models into errors so a single bad geometry cannot kill the
// whole sweep.
func evaluate(ctx context.Context, j Job, c *Cache, inst *instances) Outcome {
	oc := Outcome{Job: j}
	if err := ctx.Err(); err != nil {
		oc.Err = err
		return oc
	}
	if j.Model == nil {
		oc.Err = fmt.Errorf("sweep: job %q has no model", j.Name())
		return oc
	}
	if j.Stack == nil {
		oc.Err = fmt.Errorf("sweep: job %q has no stack", j.Name())
		return oc
	}
	ctx, sp := obs.StartSpan(ctx, "sweep.job")
	if sp != nil {
		sp.Set("job", j.Name())
		defer func() {
			sp.Set("from_cache", oc.FromCache)
			if oc.Err != nil {
				sp.Set("error", oc.Err.Error())
			}
			sp.End()
		}()
	}
	var key string
	if c != nil {
		key = cacheKey(j.Model, j.Stack)
		if res, err, ok := c.lookup(key); ok {
			oc.Result, oc.Err, oc.FromCache = res, wrapErr(j, err), true
			return oc
		}
	}
	t0 := time.Now()
	res, err := solve(ctx, j, inst)
	oc.Runtime = time.Since(t0)
	recordJob(oc.Runtime, err)
	if c != nil {
		// Raw errors are cached so each job wraps them with its own label.
		c.store(key, res, err)
	}
	oc.Result, oc.Err = res, wrapErr(j, err)
	return oc
}

// recordJob feeds one solved (non-cached) job into the obs default registry.
func recordJob(d time.Duration, err error) {
	r := obs.Default()
	if r == nil {
		return
	}
	r.Counter("sweep.jobs").Inc()
	if err != nil {
		r.Counter("sweep.job.failures").Inc()
	}
	r.Histogram("sweep.job.seconds", obs.ExpBuckets(1e-6, 4, 13)).Observe(d.Seconds())
}

// wrapErr labels a job's failure with the job name.
func wrapErr(j Job, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("sweep: job %q: %w", j.Name(), err)
}

// solve invokes the model with panic capture, preferring the worker's
// reusable instance when the model offers one (cross-solve reuse), then the
// cancellable entry point: a cancelled batch stops its in-flight solves
// between solver iterations instead of running them to completion.
func solve(ctx context.Context, j Job, inst *instances) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("model panicked: %v", r)
		}
	}()
	if ri := inst.instanceFor(j.Model); ri != nil {
		res, err = ri.SolveCtx(ctx, j.Stack)
	} else if cs, ok := j.Model.(core.ContextSolver); ok {
		res, err = cs.SolveCtx(ctx, j.Stack)
	} else {
		res, err = j.Model.Solve(j.Stack)
	}
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("model returned no result")
	}
	return res, nil
}
