// Package plan implements thermal-budget-driven TTSV insertion, the
// application the paper's conclusion motivates: "adapting a 1-D model in a
// TTSV insertion/planning methodology can result in excessive usage of
// TTSVs (a critical resource in 3-D ICs)".
//
// The chip is divided into square tiles with individual power budgets. Each
// tile is treated as an adiabatic unit cell — accurate when neighboring
// tiles run comparable densities — and the planner assigns the smallest via
// count per tile that keeps the tile's maximum temperature rise under a
// budget, using any core.Model as the thermal engine. Planning the same
// floorplan with the 1-D model quantifies exactly how many vias its bias
// wastes (or misses).
package plan

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/materials"
	"repro/internal/obs"
	"repro/internal/stack"
	"repro/internal/sweep"
)

// Technology collects the per-via and per-plane fabrication parameters
// shared by all tiles.
type Technology struct {
	// ViaRadius is the radius of each individual TTSV (m).
	ViaRadius float64
	// LinerThickness is each via's liner thickness (m).
	LinerThickness float64
	// Extension is l_ext into the first plane's substrate (m).
	Extension float64
	// TSi1, TSi, TD, TB are the layer thicknesses (first-plane substrate,
	// upper substrates, ILD, bond), in meters.
	TSi1, TSi, TD, TB float64
	// NumPlanes is the plane count (≥ 2).
	NumPlanes int
	// MaxDensity caps the via metal area fraction per tile (e.g. 0.1).
	MaxDensity float64
	// DeviceLayerThickness spreads tile power for the reference solver.
	DeviceLayerThickness float64
	// Materials; zero values default to the paper's set.
	Si, ILD, Bond, Fill, Liner materials.Material
}

// DefaultTechnology returns a technology matching the paper's case-study
// stack: 300 µm substrates, 20 µm ILD, 10 µm bond, 30 µm vias with 1 µm
// liners, up to 10% metal density.
func DefaultTechnology() Technology {
	return Technology{
		ViaRadius:            30e-6,
		LinerThickness:       1e-6,
		Extension:            1e-6,
		TSi1:                 300e-6,
		TSi:                  300e-6,
		TD:                   20e-6,
		TB:                   10e-6,
		NumPlanes:            3,
		MaxDensity:           0.10,
		DeviceLayerThickness: 1e-6,
		Si:                   materials.Silicon,
		ILD:                  materials.SiO2,
		Bond:                 materials.Polyimide,
		Fill:                 materials.Copper,
		Liner:                materials.SiO2,
	}
}

// Floorplan is the thermal view of a chip: a grid of square tiles with the
// total power each tile's stack of planes dissipates.
type Floorplan struct {
	// TileSide is the edge length of each square tile (m).
	TileSide float64
	// PlanePowers[r][c][p] is the power (W) of plane p in tile (r, c);
	// plane 0 is adjacent to the heat sink.
	PlanePowers [][][]float64
}

// Rows and Cols report the grid dimensions.
func (f *Floorplan) Rows() int { return len(f.PlanePowers) }

// Cols reports the number of tile columns.
func (f *Floorplan) Cols() int {
	if len(f.PlanePowers) == 0 {
		return 0
	}
	return len(f.PlanePowers[0])
}

// Validate checks the floorplan's consistency against a technology.
func (f *Floorplan) Validate(tech Technology) error {
	if f.TileSide <= 0 {
		return fmt.Errorf("plan: tile side %g must be positive", f.TileSide)
	}
	if f.Rows() == 0 || f.Cols() == 0 {
		return fmt.Errorf("plan: empty floorplan")
	}
	for r, row := range f.PlanePowers {
		if len(row) != f.Cols() {
			return fmt.Errorf("plan: ragged floorplan at row %d", r)
		}
		for c, tile := range row {
			if len(tile) != tech.NumPlanes {
				return fmt.Errorf("plan: tile (%d,%d) has %d plane powers, technology has %d planes",
					r, c, len(tile), tech.NumPlanes)
			}
			for p, q := range tile {
				if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
					return fmt.Errorf("plan: tile (%d,%d) plane %d power %g invalid", r, c, p, q)
				}
			}
		}
	}
	return nil
}

// Result is a completed insertion plan.
type Result struct {
	// Counts[r][c] is the number of TTSVs assigned to each tile.
	Counts [][]int
	// TileDT[r][c] is the planned tile's predicted maximum temperature rise.
	TileDT [][]float64
	// TotalVias sums the counts.
	TotalVias int
	// MaxDT is the hottest planned tile's rise.
	MaxDT float64
	// ViaArea is the total via metal area (m²).
	ViaArea float64
}

// Options configures how a plan is computed; the plan itself is identical
// for any setting.
type Options struct {
	// Ctx optionally bounds the run: a cancelled context stops dispatching
	// tiles and PlanWith returns the context error instead of a partial
	// plan. Nil means context.Background() (run to completion).
	Ctx context.Context
	// Workers is the number of tiles planned concurrently; values < 1
	// select runtime.GOMAXPROCS(0).
	Workers int
	// Cache optionally memoizes per-(geometry, model) solves. Floorplans
	// routinely repeat tile power vectors, and the bisection in every such
	// tile then re-walks identical via counts; a shared cache makes the
	// repeats free. Nil creates a fresh cache per call.
	Cache *sweep.Cache
	// Trace optionally records the planning run as NDJSON spans: one
	// "plan.run" root with a "plan.tile" child per tile.
	Trace *obs.Tracer
}

// Plan assigns the minimum via count per tile keeping every tile's maximum
// temperature rise at or below budget (K) according to the given model.
// Tiles whose unaided rise already meets the budget get zero vias. It fails
// when some tile cannot meet the budget even at the technology's maximum
// via density.
func Plan(f *Floorplan, tech Technology, budget float64, m core.Model) (*Result, error) {
	return PlanWith(f, tech, budget, m, Options{})
}

// PlanWith is Plan with explicit concurrency and memoization control. Tiles
// are planned in parallel across opt.Workers workers; the result (including
// which error is reported on failure) is byte-identical to a sequential
// row-major pass. The model must be safe for concurrent use; all models in
// this repository are stateless values and qualify.
func PlanWith(f *Floorplan, tech Technology, budget float64, m core.Model, opt Options) (*Result, error) {
	if err := f.Validate(tech); err != nil {
		return nil, err
	}
	if budget <= 0 || math.IsNaN(budget) {
		return nil, fmt.Errorf("plan: budget %g K must be positive", budget)
	}
	tileArea := f.TileSide * f.TileSide
	perVia := math.Pi * tech.ViaRadius * tech.ViaRadius
	maxCount := int(tech.MaxDensity * tileArea / perVia)
	if maxCount < 1 {
		return nil, fmt.Errorf("plan: tile side %g too small for even one via at density cap %g",
			f.TileSide, tech.MaxDensity)
	}
	cache := opt.Cache
	if cache == nil {
		cache = sweep.NewCache()
	}
	m = sweep.Cached(m, cache)

	rows, cols := f.Rows(), f.Cols()
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > rows*cols {
		workers = rows * cols
	}

	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx = obs.ContextWithTracer(ctx, opt.Trace)
	ctx, run := obs.StartSpan(ctx, "plan.run")
	if run != nil {
		run.Set("tiles", rows*cols)
		run.Set("workers", workers)
		defer run.End()
	}
	tileCounter := obs.Default().Counter("plan.tiles")
	tileWall := obs.Default().Histogram("plan.tile.seconds", obs.ExpBuckets(1e-6, 4, 13))

	counts := make([]int, rows*cols)
	dts := make([]float64, rows*cols)
	errs := make([]error, rows*cols)
	tiles := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range tiles {
				if ctx.Err() != nil {
					continue // drain; the cancelled run discards the plan
				}
				r, c := i/cols, i%cols
				_, sp := obs.StartSpan(ctx, "plan.tile")
				t0 := time.Now()
				count, dt, err := planTile(f.PlanePowers[r][c], tileArea, tech, budget, m, maxCount)
				tileCounter.Inc()
				tileWall.Observe(time.Since(t0).Seconds())
				if sp != nil {
					sp.Set("tile", fmt.Sprintf("%d,%d", r, c))
					sp.Set("vias", count)
					if err != nil {
						sp.Set("error", err.Error())
					}
					sp.End()
				}
				if err != nil {
					errs[i] = fmt.Errorf("plan: tile (%d,%d): %w", r, c, err)
					continue
				}
				counts[i], dts[i] = count, dt
			}
		}()
	}
feed:
	for i := 0; i < rows*cols; i++ {
		select {
		case tiles <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(tiles)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	// Report the same error a sequential row-major pass would have hit
	// first, keeping failures deterministic under any worker count.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &Result{
		Counts: make([][]int, rows),
		TileDT: make([][]float64, rows),
	}
	for r := 0; r < rows; r++ {
		out.Counts[r] = counts[r*cols : (r+1)*cols : (r+1)*cols]
		out.TileDT[r] = dts[r*cols : (r+1)*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			out.TotalVias += counts[r*cols+c]
			if dt := dts[r*cols+c]; dt > out.MaxDT {
				out.MaxDT = dt
			}
		}
	}
	out.ViaArea = float64(out.TotalVias) * perVia
	return out, nil
}

// planTile finds the smallest count meeting the budget by bisection over
// [0, maxCount]; ΔT is monotone non-increasing in the via count.
func planTile(powers []float64, tileArea float64, tech Technology, budget float64, m core.Model, maxCount int) (int, float64, error) {
	dt0, err := noViaDT(powers, tileArea, tech)
	if err != nil {
		return 0, 0, err
	}
	if dt0 <= budget {
		return 0, dt0, nil
	}
	dtAt := func(n int) (float64, error) {
		s, err := TileStack(powers, tileArea, tech, n)
		if err != nil {
			return 0, err
		}
		res, err := m.Solve(s)
		if err != nil {
			return 0, err
		}
		return res.MaxDT, nil
	}
	dtMax, err := dtAt(maxCount)
	if err != nil {
		return 0, 0, err
	}
	if dtMax > budget {
		return 0, dtMax, fmt.Errorf("budget %g K unreachable: ΔT %g K even at %d vias (density cap %g)",
			budget, dtMax, maxCount, tech.MaxDensity)
	}
	lo, hi := 1, maxCount // hi always meets the budget
	dtHi := dtMax
	for lo < hi {
		mid := (lo + hi) / 2
		dt, err := dtAt(mid)
		if err != nil {
			return 0, 0, err
		}
		if dt <= budget {
			hi = mid
			dtHi = dt
		} else {
			lo = mid + 1
		}
	}
	if lo == maxCount {
		return maxCount, dtMax, nil
	}
	return hi, dtHi, nil
}

// TileStack builds the unit stack of one tile carrying n vias of the
// technology's radius (expressed through the equal-metal-area cluster
// representation: equivalent radius r·√n with Count = n). It is exported so
// verification flows (e.g. the full-chip power-map solver) can rebuild the
// exact stacks the planner evaluated.
func TileStack(powers []float64, tileArea float64, tech Technology, n int) (*stack.Stack, error) {
	planes := make([]stack.Plane, tech.NumPlanes)
	for i := range planes {
		tsi := tech.TSi
		tb := tech.TB
		if i == 0 {
			tsi = tech.TSi1
			tb = 0
		}
		planes[i] = stack.Plane{
			SiThickness:          tsi,
			ILDThickness:         tech.TD,
			BondThickness:        tb,
			Si:                   tech.Si,
			ILD:                  tech.ILD,
			Bond:                 tech.Bond,
			DevicePower:          powers[i],
			DeviceLayerThickness: tech.DeviceLayerThickness,
		}
	}
	s := &stack.Stack{
		Footprint: tileArea,
		Planes:    planes,
		Via: stack.TTSV{
			Radius:         tech.ViaRadius * math.Sqrt(float64(n)),
			LinerThickness: tech.LinerThickness,
			Extension:      tech.Extension,
			Fill:           tech.Fill,
			Liner:          tech.Liner,
			Count:          n,
		},
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// noViaDT evaluates the tile without any via: a plain series slab stack.
func noViaDT(powers []float64, tileArea float64, tech Technology) (float64, error) {
	if tileArea <= 0 {
		return 0, fmt.Errorf("plan: non-positive tile area")
	}
	// Cumulative heat crossing each plane.
	crossing := make([]float64, tech.NumPlanes)
	var sum float64
	for i := tech.NumPlanes - 1; i >= 0; i-- {
		sum += powers[i]
		crossing[i] = sum
	}
	dt := sum * (tech.TSi1 - tech.Extension) / (tech.Si.K * tileArea)
	for i := 0; i < tech.NumPlanes; i++ {
		var vertical float64
		if i == 0 {
			vertical = tech.TD/tech.ILD.K + tech.Extension/tech.Si.K
		} else {
			vertical = tech.TD/tech.ILD.K + tech.TSi/tech.Si.K + tech.TB/tech.Bond.K
		}
		dt += crossing[i] * vertical / tileArea
	}
	return dt, nil
}
