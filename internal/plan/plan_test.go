package plan

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sweep"
)

// uniformFloorplan builds rows×cols tiles, each dissipating watts split as
// 5/6 in plane 1 and 1/12 in each upper plane (processor-heavy like the
// case study).
func uniformFloorplan(rows, cols int, tileSide, watts float64) *Floorplan {
	f := &Floorplan{TileSide: tileSide}
	for r := 0; r < rows; r++ {
		var row [][]float64
		for c := 0; c < cols; c++ {
			row = append(row, []float64{watts * 5 / 6, watts / 12, watts / 12})
		}
		f.PlanePowers = append(f.PlanePowers, row)
	}
	return f
}

func modelA() core.Model { return core.ModelA{Coeffs: core.PaperSystemCoeffs()} }

func TestPlanUniformChip(t *testing.T) {
	// ~the case-study chip: 13×13 tiles of 0.75 mm, 84 W total.
	f := uniformFloorplan(13, 13, 0.75e-3, 84.0/169)
	res, err := Plan(f, DefaultTechnology(), 13.0, modelA())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDT > 13.0 {
		t.Errorf("planned max ΔT %g exceeds budget", res.MaxDT)
	}
	// Uniform power must give uniform counts.
	first := res.Counts[0][0]
	for r := range res.Counts {
		for c := range res.Counts[r] {
			if res.Counts[r][c] != first {
				t.Fatalf("non-uniform plan for uniform power: %d vs %d at (%d,%d)",
					res.Counts[r][c], first, r, c)
			}
		}
	}
	if first < 1 {
		t.Errorf("uniform hot chip planned %d vias per tile", first)
	}
	if res.TotalVias != first*169 {
		t.Errorf("TotalVias = %d", res.TotalVias)
	}
	if res.ViaArea <= 0 {
		t.Error("via area missing")
	}
}

func TestPlanMinimality(t *testing.T) {
	// One via fewer than planned must violate the budget (the plan is the
	// minimal feasible count).
	f := uniformFloorplan(1, 1, 0.75e-3, 84.0/169)
	tech := DefaultTechnology()
	const budget = 13.0
	res, err := Plan(f, tech, budget, modelA())
	if err != nil {
		t.Fatal(err)
	}
	n := res.Counts[0][0]
	if n < 2 {
		t.Skipf("plan used %d vias; minimality check needs ≥ 2", n)
	}
	s, err := TileStack(f.PlanePowers[0][0], f.TileSide*f.TileSide, tech, n-1)
	if err != nil {
		t.Fatal(err)
	}
	under, err := modelA().Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if under.MaxDT <= budget {
		t.Errorf("n-1 = %d vias still meet the budget (ΔT %g)", n-1, under.MaxDT)
	}
}

func TestPlanHotTileGetsMoreVias(t *testing.T) {
	f := uniformFloorplan(2, 2, 0.75e-3, 0.3)
	// Make tile (0,0) three times hotter.
	for p := range f.PlanePowers[0][0] {
		f.PlanePowers[0][0][p] *= 3
	}
	res, err := Plan(f, DefaultTechnology(), 10.0, modelA())
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0][0] <= res.Counts[1][1] {
		t.Errorf("hot tile got %d vias, cool tile %d", res.Counts[0][0], res.Counts[1][1])
	}
}

func TestPlanColdTileGetsNoVias(t *testing.T) {
	f := uniformFloorplan(1, 2, 0.75e-3, 0.4)
	for p := range f.PlanePowers[0][1] {
		f.PlanePowers[0][1][p] = 0.0001 // nearly idle tile
	}
	res, err := Plan(f, DefaultTechnology(), 12.0, modelA())
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0][1] != 0 {
		t.Errorf("idle tile got %d vias", res.Counts[0][1])
	}
	if res.Counts[0][0] < 1 {
		t.Errorf("hot tile got no vias")
	}
}

func TestPlanImpossibleBudget(t *testing.T) {
	f := uniformFloorplan(1, 1, 0.75e-3, 5) // 5 W on one tiny tile
	_, err := Plan(f, DefaultTechnology(), 1.0, modelA())
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v, want unreachable-budget error", err)
	}
}

func TestPlanOneDModelOverprovisions(t *testing.T) {
	// The paper's conclusion, quantified: in the case-study regime the 1-D
	// model overestimates ΔT, so planning with it inserts more vias than
	// planning with Model A for the same budget.
	f := uniformFloorplan(3, 3, 0.75e-3, 84.0/169)
	budget := 13.0
	withA, err := Plan(f, DefaultTechnology(), budget, modelA())
	if err != nil {
		t.Fatal(err)
	}
	with1D, err := Plan(f, DefaultTechnology(), budget, core.Model1D{})
	if err != nil {
		t.Fatal(err)
	}
	if with1D.TotalVias <= withA.TotalVias {
		t.Errorf("1-D planned %d vias, Model A %d — expected overprovisioning",
			with1D.TotalVias, withA.TotalVias)
	}
}

func TestPlanValidation(t *testing.T) {
	tech := DefaultTechnology()
	good := uniformFloorplan(1, 1, 0.75e-3, 0.4)
	if _, err := Plan(good, tech, 0, modelA()); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Plan(&Floorplan{TileSide: 1e-3}, tech, 5, modelA()); err == nil {
		t.Error("empty floorplan accepted")
	}
	bad := uniformFloorplan(1, 1, -1, 0.4)
	if _, err := Plan(bad, tech, 5, modelA()); err == nil {
		t.Error("negative tile side accepted")
	}
	wrongPlanes := &Floorplan{TileSide: 1e-3, PlanePowers: [][][]float64{{{1, 2}}}}
	if err := wrongPlanes.Validate(tech); err == nil {
		t.Error("wrong plane count accepted")
	}
	negPower := uniformFloorplan(1, 1, 1e-3, 0.4)
	negPower.PlanePowers[0][0][1] = -1
	if err := negPower.Validate(tech); err == nil {
		t.Error("negative power accepted")
	}
	ragged := uniformFloorplan(2, 2, 1e-3, 0.4)
	ragged.PlanePowers[1] = ragged.PlanePowers[1][:1]
	if err := ragged.Validate(tech); err == nil {
		t.Error("ragged floorplan accepted")
	}
	tiny := uniformFloorplan(1, 1, 50e-6, 0.01) // tile smaller than one via footprint at cap
	if _, err := Plan(tiny, tech, 5, modelA()); err == nil {
		t.Error("tile too small for one via accepted")
	}
}

func TestNoViaDTMatchesSlabSum(t *testing.T) {
	tech := DefaultTechnology()
	powers := []float64{1, 0.5, 0.25}
	area := 1e-6
	got, err := noViaDT(powers, area, tech)
	if err != nil {
		t.Fatal(err)
	}
	// Hand sum.
	want := 1.75 * (tech.TSi1 - tech.Extension) / (tech.Si.K * area)
	want += 1.75 * (tech.TD/tech.ILD.K + tech.Extension/tech.Si.K) / area
	mid := tech.TD/tech.ILD.K + tech.TSi/tech.Si.K + tech.TB/tech.Bond.K
	want += 0.75 * mid / area
	want += 0.25 * mid / area
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("noViaDT = %g, want %g", got, want)
	}
}

// nonUniformFloorplan adds a hot corner and a cold stripe so different tiles
// plan different counts.
func nonUniformFloorplan() *Floorplan {
	f := uniformFloorplan(5, 7, 0.75e-3, 84.0/169)
	for p := range f.PlanePowers[0][0] {
		f.PlanePowers[0][0][p] *= 2.5
	}
	for c := range f.PlanePowers[2] {
		for p := range f.PlanePowers[2][c] {
			f.PlanePowers[2][c][p] *= 0.01
		}
	}
	return f
}

func TestPlanWithMatchesSequential(t *testing.T) {
	f := nonUniformFloorplan()
	tech := DefaultTechnology()
	want, err := PlanWith(f, tech, 13.0, modelA(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := PlanWith(f, tech, 13.0, modelA(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: plan differs from sequential\nseq: %+v\npar: %+v", workers, want, got)
		}
	}
}

func TestPlanWithSharedCacheCollapsesRepeatedTiles(t *testing.T) {
	f := uniformFloorplan(4, 4, 0.75e-3, 84.0/169)
	cache := sweep.NewCache()
	res, err := PlanWith(f, DefaultTechnology(), 13.0, modelA(), Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Plan(f, DefaultTechnology(), 13.0, modelA())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, plain) {
		t.Error("cached plan differs from uncached plan")
	}
	hits, misses, _ := cache.Counters()
	// 16 identical tiles bisect over identical via counts: every solve after
	// the first pass over the distinct counts must be a cache hit.
	if hits == 0 {
		t.Errorf("shared cache saw no hits (hits=%d misses=%d)", hits, misses)
	}
	if misses != cache.Len() {
		t.Errorf("misses=%d but cache holds %d entries", misses, cache.Len())
	}
}

func TestPlanWithDeterministicError(t *testing.T) {
	// Two impossible tiles: the reported error must name the row-major first
	// one, (0,1), under any worker count.
	f := uniformFloorplan(2, 2, 0.75e-3, 84.0/169)
	for _, rc := range [][2]int{{0, 1}, {1, 0}} {
		for p := range f.PlanePowers[rc[0]][rc[1]] {
			f.PlanePowers[rc[0]][rc[1]][p] *= 1e4
		}
	}
	for _, workers := range []int{1, 2, 8} {
		_, err := PlanWith(f, DefaultTechnology(), 13.0, modelA(), Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: impossible floorplan accepted", workers)
		}
		if !strings.Contains(err.Error(), "tile (0,1)") {
			t.Errorf("workers=%d: error %q does not name the row-major first failing tile", workers, err)
		}
	}
}
