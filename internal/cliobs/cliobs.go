// Package cliobs wires the observability flags shared by the ttsv
// command-line tools: -trace (NDJSON span export), -metrics (registry dump)
// and -pprof (net/http/pprof debug server).
package cliobs

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// Flags holds the parsed observability flag values for one command run.
type Flags struct {
	tracePath string
	metrics   bool
	pprofAddr string

	traceFile *os.File
	tracer    *obs.Tracer
}

// Register adds the -trace, -metrics and -pprof flags to fs and returns the
// holder to Start/Finish around the command's work.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.tracePath, "trace", "", "write an NDJSON span trace to this file")
	fs.BoolVar(&f.metrics, "metrics", false, "dump the metrics registry after the run")
	fs.StringVar(&f.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return f
}

// Start opens the trace sink and the pprof server as requested by the parsed
// flags and returns the tracer to thread into the run (nil when -trace is
// unset, which disables span recording throughout the library).
func (f *Flags) Start(out io.Writer) (*obs.Tracer, error) {
	if f.pprofAddr != "" {
		// Deliberately fire-and-forget: the CLI profile endpoint stays up
		// for the whole run and dies with the process, so the closer
		// ServePprof hands back is intentionally dropped here. Long-lived
		// processes (the solve daemon, tests) must keep and Close it.
		addr, _, err := obs.ServePprof(f.pprofAddr)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "pprof: serving on http://%s/debug/pprof/\n", addr)
	}
	if f.tracePath != "" {
		fh, err := os.Create(f.tracePath)
		if err != nil {
			return nil, err
		}
		f.traceFile = fh
		f.tracer = obs.NewTracer(fh)
	}
	return f.tracer, nil
}

// Finish closes the trace file and dumps the metrics registry when
// requested. Call it once after the command's work, on success and error
// paths alike, so a partial trace is still flushed and well-formed.
func (f *Flags) Finish(out io.Writer) error {
	if f.traceFile != nil {
		err := f.tracer.Err()
		if cerr := f.traceFile.Close(); err == nil {
			err = cerr
		}
		f.traceFile = nil
		if err != nil {
			return fmt.Errorf("trace %s: %w", f.tracePath, err)
		}
		fmt.Fprintf(out, "trace: wrote %s\n", f.tracePath)
	}
	if f.metrics {
		fmt.Fprint(out, obs.Default().Snapshot().String())
	}
	return nil
}
