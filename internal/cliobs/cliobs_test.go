package cliobs

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func parsed(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNoFlagsIsInert(t *testing.T) {
	f := parsed(t)
	var buf bytes.Buffer
	tr, err := f.Start(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr != nil {
		t.Error("tracer created without -trace")
	}
	if err := f.Finish(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("inert run wrote output: %q", buf.String())
	}
}

func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.ndjson")
	f := parsed(t, "-trace", path)
	var buf bytes.Buffer
	tr, err := f.Start(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("no tracer despite -trace")
	}
	tr.Start("demo").End()
	if err := f.Finish(&buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"span":"demo"`) {
		t.Errorf("trace file missing span: %q", data)
	}
	if !strings.Contains(buf.String(), "trace: wrote "+path) {
		t.Errorf("destination not reported: %q", buf.String())
	}
}

func TestStartRejectsBadTracePath(t *testing.T) {
	f := parsed(t, "-trace", filepath.Join(t.TempDir(), "missing", "t.ndjson"))
	if _, err := f.Start(io.Discard); err == nil {
		t.Error("unwritable trace path accepted")
	}
}

func TestMetricsDump(t *testing.T) {
	obs.Default().Counter("cliobs.test.counter").Inc()
	f := parsed(t, "-metrics")
	var buf bytes.Buffer
	if _, err := f.Start(&buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Finish(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cliobs.test.counter") {
		t.Errorf("dump missing counter:\n%s", buf.String())
	}
}

func TestPprofServes(t *testing.T) {
	f := parsed(t, "-pprof", "127.0.0.1:0")
	var buf bytes.Buffer
	if _, err := f.Start(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pprof: serving on http://127.0.0.1:") {
		t.Errorf("address not reported: %q", buf.String())
	}
	if err := f.Finish(&buf); err != nil {
		t.Fatal(err)
	}
}
