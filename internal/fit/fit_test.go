package fit

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/stack"
	"repro/internal/units"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	x, v, evals, err := NelderMead(f, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-4 || math.Abs(x[1]+1) > 1e-4 {
		t.Fatalf("x = %v, want (3, -1)", x)
	}
	if v > 1e-7 {
		t.Errorf("min value %g", v)
	}
	if evals <= 0 {
		t.Errorf("evals = %d", evals)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, _, _, err := NelderMead(f, []float64{-1.2, 1}, Options{MaxEvals: 5000, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock minimum not found: %v", x)
	}
}

func TestNelderMeadRejectsInfeasibleRegion(t *testing.T) {
	// Objective infinite for x < 0: the minimizer must stay feasible.
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.Inf(1)
		}
		return (x[0] - 0.5) * (x[0] - 0.5)
	}
	x, _, _, err := NelderMead(f, []float64{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.5) > 1e-4 {
		t.Fatalf("x = %v", x)
	}
}

func TestNelderMeadAllInfeasible(t *testing.T) {
	f := func([]float64) float64 { return math.Inf(1) }
	if _, _, _, err := NelderMead(f, []float64{1}, Options{MaxEvals: 50}); err == nil {
		t.Fatal("no error for fully infeasible objective")
	}
}

func TestNelderMeadEmptyStart(t *testing.T) {
	if _, _, _, err := NelderMead(func([]float64) float64 { return 0 }, nil, Options{}); err == nil {
		t.Fatal("empty start accepted")
	}
}

func TestGridSearch(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-0.5)*(x[0]-0.5) + (x[1]-0.25)*(x[1]-0.25)
	}
	x, v, err := GridSearch(f, []float64{0, 0}, []float64{1, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.5) > 0.13 || math.Abs(x[1]-0.25) > 0.13 {
		t.Fatalf("grid best %v", x)
	}
	if v < 0 {
		t.Errorf("v = %g", v)
	}
}

func TestGridSearchErrors(t *testing.T) {
	f := func([]float64) float64 { return 0 }
	if _, _, err := GridSearch(f, nil, nil, 3); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, _, err := GridSearch(f, []float64{0}, []float64{1}, 1); err == nil {
		t.Error("steps=1 accepted")
	}
	if _, _, err := GridSearch(f, []float64{1}, []float64{0}, 3); err == nil {
		t.Error("reversed bounds accepted")
	}
	inf := func([]float64) float64 { return math.Inf(1) }
	if _, _, err := GridSearch(inf, []float64{0}, []float64{1}, 3); err == nil {
		t.Error("all-infinite objective accepted")
	}
}

func TestCalibrateModelARecoversKnownCoefficients(t *testing.T) {
	// Generate "reference" data from Model A itself with known coefficients;
	// calibration must recover them closely.
	truth := core.Coeffs{K1: 1.4, K2: 0.6, C1: 1}
	m := core.ModelA{Coeffs: truth}
	var points []CalibrationPoint
	for _, r := range []float64{3, 8, 15} {
		s, err := stack.Fig4Block(units.UM(r))
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Solve(s)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, CalibrationPoint{Stack: s, RefDT: res.MaxDT})
	}
	got, rms, err := CalibrateModelA(points, core.UnitCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	if rms > 1e-3 {
		t.Errorf("residual RMS %g", rms)
	}
	if math.Abs(got.K1-truth.K1) > 0.05 || math.Abs(got.K2-truth.K2) > 0.1 {
		t.Errorf("recovered %+v, want %+v", got, truth)
	}
}

func TestCalibrateModelAAgainstFVM(t *testing.T) {
	// The real workflow: calibrate against the reference solver on a couple
	// of geometries, then check the fitted model tracks the reference on a
	// held-out geometry better than a few percent.
	if testing.Short() {
		t.Skip("FVM calibration is slow")
	}
	resolution := fem.DefaultResolution()
	var points []CalibrationPoint
	for _, r := range []float64{5, 12} {
		s, err := stack.Fig4Block(units.UM(r))
		if err != nil {
			t.Fatal(err)
		}
		sol, err := fem.SolveStack(s, resolution)
		if err != nil {
			t.Fatal(err)
		}
		ref, _, _ := sol.MaxT()
		points = append(points, CalibrationPoint{Stack: s, RefDT: ref})
	}
	coeffs, rms, err := CalibrateModelA(points, core.UnitCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	if rms > 0.05 {
		t.Errorf("calibration residual %g", rms)
	}
	// Held-out point.
	s, err := stack.Fig4Block(units.UM(8))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := fem.SolveStack(s, resolution)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, _ := sol.MaxT()
	got, err := (core.ModelA{Coeffs: coeffs}).Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if e := units.RelErr(got.MaxDT, ref); e > 0.08 {
		t.Errorf("held-out error %.1f%% (model %g vs ref %g, coeffs %+v)", 100*e, got.MaxDT, ref, coeffs)
	}
}

func TestCalibrateModelAErrors(t *testing.T) {
	if _, _, err := CalibrateModelA(nil, core.UnitCoeffs()); err == nil {
		t.Error("empty points accepted")
	}
	s, err := stack.Fig4Block(units.UM(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CalibrateModelA([]CalibrationPoint{{Stack: s, RefDT: -1}}, core.UnitCoeffs()); err == nil {
		t.Error("negative reference accepted")
	}
	if _, _, err := CalibrateModelA([]CalibrationPoint{{Stack: s, RefDT: 10}}, core.Coeffs{}); err == nil {
		t.Error("invalid start coefficients accepted")
	}
}
