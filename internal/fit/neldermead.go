// Package fit provides derivative-free minimization — a Nelder-Mead simplex
// and a coarse grid search — and uses them to calibrate Model A's fitting
// coefficients (k1, k2) against the finite-volume reference solver, exactly
// as the paper calibrates them against its FEM tool.
package fit

import (
	"fmt"
	"math"
	"sort"
)

// Options configures NelderMead. The zero value picks reasonable defaults.
type Options struct {
	// MaxEvals caps the number of objective evaluations (default 2000).
	MaxEvals int
	// Tol terminates when the simplex's objective spread falls below it
	// (default 1e-10).
	Tol float64
	// InitialStep sets the initial simplex size per coordinate (default
	// 10% of the start value, or 0.1 where the start is zero).
	InitialStep float64
}

func (o Options) maxEvals() int {
	if o.MaxEvals > 0 {
		return o.MaxEvals
	}
	return 2000
}

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return 1e-10
}

// NelderMead minimizes f starting from x0 and returns the best point found,
// its objective value and the number of evaluations. f may return +Inf to
// reject a point (e.g. outside a validity domain).
func NelderMead(f func([]float64) float64, x0 []float64, opt Options) ([]float64, float64, int, error) {
	n := len(x0)
	if n == 0 {
		return nil, 0, 0, fmt.Errorf("fit: empty start point")
	}
	type vertex struct {
		x []float64
		v float64
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	// Build the initial simplex.
	simplex := make([]vertex, n+1)
	base := append([]float64(nil), x0...)
	simplex[0] = vertex{x: base, v: eval(base)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		step := opt.InitialStep
		if step == 0 {
			step = 0.1 * math.Abs(x[i])
			if step == 0 {
				step = 0.1
			}
		}
		x[i] += step
		simplex[i+1] = vertex{x: x, v: eval(x)}
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	centroid := make([]float64, n)
	xr := make([]float64, n)
	xe := make([]float64, n)
	xc := make([]float64, n)

	for evals < opt.maxEvals() {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].v < simplex[b].v })
		best, worst := simplex[0], simplex[n]
		if !math.IsInf(worst.v, 1) && worst.v-best.v < opt.tol()*(math.Abs(best.v)+opt.tol()) {
			// A small objective spread alone is not convergence: a simplex
			// symmetric around the minimum has zero spread but finite size.
			// Require the simplex itself to have collapsed too.
			size := 0.0
			for i := 1; i <= n; i++ {
				for j := range best.x {
					if d := math.Abs(simplex[i].x[j] - best.x[j]); d > size {
						size = d
					}
				}
			}
			scale := 0.0
			for _, xv := range best.x {
				if a := math.Abs(xv); a > scale {
					scale = a
				}
			}
			if size <= 1e-7*(1+scale) {
				break
			}
		}
		// Centroid of all but the worst.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := range centroid {
				centroid[j] += simplex[i].x[j] / float64(n)
			}
		}
		// Reflect.
		for j := range xr {
			xr[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		vr := eval(xr)
		switch {
		case vr < best.v:
			// Expand.
			for j := range xe {
				xe[j] = centroid[j] + gamma*(xr[j]-centroid[j])
			}
			if ve := eval(xe); ve < vr {
				simplex[n] = vertex{x: append([]float64(nil), xe...), v: ve}
			} else {
				simplex[n] = vertex{x: append([]float64(nil), xr...), v: vr}
			}
		case vr < simplex[n-1].v:
			simplex[n] = vertex{x: append([]float64(nil), xr...), v: vr}
		default:
			// Contract (inside).
			for j := range xc {
				xc[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
			}
			if vc := eval(xc); vc < worst.v {
				simplex[n] = vertex{x: append([]float64(nil), xc...), v: vc}
			} else {
				// Shrink towards the best vertex.
				for i := 1; i <= n; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = best.x[j] + sigma*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].v = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].v < simplex[b].v })
	if math.IsInf(simplex[0].v, 1) {
		return nil, 0, evals, fmt.Errorf("fit: Nelder-Mead found no feasible point")
	}
	return simplex[0].x, simplex[0].v, evals, nil
}

// GridSearch evaluates f on a regular steps^d grid over [lo, hi] and returns
// the best point. It is used to seed NelderMead with a robust start.
func GridSearch(f func([]float64) float64, lo, hi []float64, steps int) ([]float64, float64, error) {
	d := len(lo)
	if d == 0 || len(hi) != d {
		return nil, 0, fmt.Errorf("fit: GridSearch bounds mismatch (%d vs %d)", len(lo), len(hi))
	}
	if steps < 2 {
		return nil, 0, fmt.Errorf("fit: GridSearch needs steps >= 2, got %d", steps)
	}
	for i := range lo {
		if !(hi[i] > lo[i]) {
			return nil, 0, fmt.Errorf("fit: GridSearch bounds [%g, %g] invalid at dim %d", lo[i], hi[i], i)
		}
	}
	best := math.Inf(1)
	var bestX []float64
	x := make([]float64, d)
	idx := make([]int, d)
	for {
		for i := range x {
			x[i] = lo[i] + (hi[i]-lo[i])*float64(idx[i])/float64(steps-1)
		}
		if v := f(x); v < best {
			best = v
			bestX = append([]float64(nil), x...)
		}
		// Odometer increment.
		k := 0
		for k < d {
			idx[k]++
			if idx[k] < steps {
				break
			}
			idx[k] = 0
			k++
		}
		if k == d {
			break
		}
	}
	if bestX == nil {
		return nil, 0, fmt.Errorf("fit: GridSearch found no finite value")
	}
	return bestX, best, nil
}
