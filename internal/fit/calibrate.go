package fit

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stack"
	"repro/internal/units"
)

// CalibrationPoint pairs a geometry with its reference maximum temperature
// rise (from the FVM solver or any other trusted source).
type CalibrationPoint struct {
	Stack *stack.Stack
	RefDT float64
}

// CalibrateModelA finds the (k1, k2) pair minimizing the mean squared
// relative error of Model A's maximum ΔT against the reference points,
// mirroring the paper's calibration of its fitting coefficients against FEM
// runs of a representative block (§II, §IV-E). C1 is kept at the start
// value's C1.
//
// A coarse grid search seeds a Nelder-Mead refinement; the returned Coeffs
// always validate.
func CalibrateModelA(points []CalibrationPoint, start core.Coeffs) (core.Coeffs, float64, error) {
	if len(points) == 0 {
		return core.Coeffs{}, 0, fmt.Errorf("fit: no calibration points")
	}
	if err := start.Validate(); err != nil {
		return core.Coeffs{}, 0, err
	}
	for i, p := range points {
		if p.Stack == nil || p.RefDT <= 0 || math.IsNaN(p.RefDT) {
			return core.Coeffs{}, 0, fmt.Errorf("fit: calibration point %d invalid (ref %g)", i, p.RefDT)
		}
	}
	obj := func(x []float64) float64 {
		c := core.Coeffs{K1: x[0], K2: x[1], C1: start.C1}
		if c.Validate() != nil {
			return math.Inf(1)
		}
		m := core.ModelA{Coeffs: c}
		var sse float64
		for _, p := range points {
			r, err := m.Solve(p.Stack)
			if err != nil {
				return math.Inf(1)
			}
			e := units.RelErr(r.MaxDT, p.RefDT)
			sse += e * e
		}
		return sse / float64(len(points))
	}
	seed, _, err := GridSearch(obj, []float64{0.5, 0.1}, []float64{3, 2}, 9)
	if err != nil {
		return core.Coeffs{}, 0, err
	}
	x, v, _, err := NelderMead(obj, seed, Options{MaxEvals: 600, Tol: 1e-12})
	if err != nil {
		return core.Coeffs{}, 0, err
	}
	return core.Coeffs{K1: x[0], K2: x[1], C1: start.C1}, math.Sqrt(v), nil
}
