package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLengthConversions(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"UM(1)", UM(1), 1e-6},
		{"UM(500)", UM(500), 5e-4},
		{"MM(1)", MM(1), 1e-3},
		{"MM(10)", MM(10), 1e-2},
		{"MM2(100)", MM2(100), 1e-4},
		{"UM2(1)", UM2(1), 1e-12},
		{"UM2(10000)", UM2(10000), 1e-8},
		{"ToUM(1e-6)", ToUM(1e-6), 1},
		{"ToMM(1e-3)", ToMM(1e-3), 1},
	}
	for _, c := range cases {
		if !ApproxEqual(c.got, c.want, 1e-12) {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
}

func TestPowerDensityConversion(t *testing.T) {
	// 700 W/mm^3 == 7e11 W/m^3 (the paper's device power density).
	if got := WPerMM3(700); !ApproxEqual(got, 7e11, 1e-12) {
		t.Fatalf("WPerMM3(700) = %g, want 7e11", got)
	}
	if got := WPerMM3(70); !ApproxEqual(got, 7e10, 1e-12) {
		t.Fatalf("WPerMM3(70) = %g, want 7e10", got)
	}
}

func TestRoundTripUM(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		return ApproxEqual(ToUM(UM(v)), v, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1.1, 1e-9, false},
		{0, 1e-12, 1e-9, true},
		{0, 1e-3, 1e-9, false},
		{1e20, 1e20 * (1 + 1e-12), 1e-9, true},
		{math.NaN(), math.NaN(), 1, false},
		{math.NaN(), 0, 1, false},
		{-1, 1, 1e-9, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(11, 10); !ApproxEqual(got, 0.1, 1e-12) {
		t.Errorf("RelErr(11,10) = %g, want 0.1", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Errorf("RelErr(0,0) = %g, want 0", got)
	}
	if got := RelErr(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelErr(1,0) = %g, want +Inf", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %g", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %g", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %g", got)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(1, 3, 5)
	want := []float64{1, 1.5, 2, 2.5, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !ApproxEqual(got[i], want[i], 1e-12) {
			t.Errorf("Linspace[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestLinspaceEndpointsExact(t *testing.T) {
	got := Linspace(0.1, 0.7, 7)
	if got[0] != 0.1 || got[6] != 0.7 {
		t.Fatalf("endpoints %g, %g not exact", got[0], got[6])
	}
}

func TestLinspacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Linspace(0,1,1) did not panic")
		}
	}()
	Linspace(0, 1, 1)
}

func TestFormatting(t *testing.T) {
	if s := FormatKelvin(12.345); s != "12.35 °C" {
		t.Errorf("FormatKelvin = %q", s)
	}
	if s := FormatMeters(UM(5)); !strings.Contains(s, "µm") {
		t.Errorf("FormatMeters(5µm) = %q, want µm suffix", s)
	}
	if s := FormatMeters(MM(10)); !strings.Contains(s, "mm") {
		t.Errorf("FormatMeters(10mm) = %q, want mm suffix", s)
	}
}
