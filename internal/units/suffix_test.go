package units

import (
	"math"
	"strings"
	"testing"
)

func TestParseValueScales(t *testing.T) {
	// Scale factors must be applied the same way runtime call sites apply
	// them (a runtime multiply, not a folded constant), so expectations are
	// computed through variables.
	micro, milli := 1e-6, 1e-3
	cases := []struct {
		in   string
		dim  Dim
		want float64
	}{
		{"42", DimNone, 42},
		{"1meg", DimNone, 1e6},
		{"1MEG", DimNone, 1e6},
		{"2.5k", DimNone, 2.5e3},
		{"300u", DimLength, 300 * micro},
		{"300um", DimLength, UM(300)},
		{"0.5um", DimLength, UM(0.5)},
		{"1mm", DimLength, MM(1)},
		{"1m", DimLength, 1},     // meter, not milli
		{"1m", DimNone, 1 * milli}, // milli when dimensionless
		{"25k", DimTemperature, 25}, // kelvin, not kilo
		{"25k", DimNone, 25e3},
		{"27c", DimTemperature, 27},
		{"0.35w", DimPower, 0.35},
		{"50mw", DimPower, 0.05},
		{"700w/mm3", DimPowerDensity, WPerMM3(700)},
		{"70w/m3", DimPowerDensity, 70},
		{"100us", DimTime, 100 * micro},
		{"1e-4s", DimTime, 1e-4},
		{"1e-6", DimLength, 1e-6},
		{"1e-3m2", DimArea, 1e-3},
		{"2mm2", DimArea, MM2(2)},
		{"-3", DimNone, -3},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in, c.dim)
		if err != nil {
			t.Errorf("ParseValue(%q, %v): %v", c.in, c.dim, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseValue(%q, %v) = %v, want %v (bitwise)", c.in, c.dim, got, c.want)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	cases := []struct {
		in  string
		dim Dim
		msg string
	}{
		{"", DimNone, "empty"},
		{"abc", DimNone, "does not start with a number"},
		{"10zz", DimLength, "unknown unit suffix"},
		{"10w", DimLength, "unknown unit suffix"}, // watts on a length
		{"10um", DimPower, "unknown unit suffix"}, // meters on a power
		{"inf", DimNone, "does not start with a number"},
		{"NaN", DimNone, "does not start with a number"},
		{"0x1p4", DimNone, "unknown unit suffix"}, // "0" + suffix "x1p4"
		{"1_000", DimNone, "unknown unit suffix"}, // "1" + suffix "_000"
		{"1e400", DimNone, "out of range"},
		{strings.Repeat("1", 80), DimNone, "longer than"},
	}
	for _, c := range cases {
		_, err := ParseValue(c.in, c.dim)
		if err == nil {
			t.Errorf("ParseValue(%q, %v) unexpectedly succeeded", c.in, c.dim)
			continue
		}
		if !strings.Contains(err.Error(), c.msg) {
			t.Errorf("ParseValue(%q, %v) error %q does not mention %q", c.in, c.dim, err, c.msg)
		}
	}
}

func TestParseValueFiniteOnly(t *testing.T) {
	if v, err := ParseValue("1e308", DimNone); err != nil || math.IsInf(v, 0) {
		t.Fatalf("1e308: v=%v err=%v", v, err)
	}
	if _, err := ParseValue("1e308meg", DimNone); err == nil {
		t.Fatal("overflowing suffixed value accepted")
	}
}
