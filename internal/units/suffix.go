package units

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Dim is the physical dimension a suffixed value is parsed against. The
// dimension resolves the classic SPICE suffix ambiguities: on a length the
// trailing "m" means meters (not milli), on a temperature "k" means kelvin
// (not kilo), on a power "w" means watts. Suffixes not claimed by the
// dimension's unit table fall back to the plain SPICE scale factors
// (t, g, meg, k, m, u, n, p, f).
type Dim int

const (
	// DimNone is a dimensionless value; only scale suffixes apply.
	DimNone Dim = iota
	// DimLength values resolve to meters.
	DimLength
	// DimArea values resolve to square meters.
	DimArea
	// DimPower values resolve to watts.
	DimPower
	// DimPowerDensity values resolve to W/m³.
	DimPowerDensity
	// DimTemperature values resolve to kelvin (or °C for absolute
	// temperatures; the two share a scale).
	DimTemperature
	// DimTime values resolve to seconds.
	DimTime
)

// String names the dimension for error messages.
func (d Dim) String() string {
	switch d {
	case DimLength:
		return "length"
	case DimArea:
		return "area"
	case DimPower:
		return "power"
	case DimPowerDensity:
		return "power density"
	case DimTemperature:
		return "temperature"
	case DimTime:
		return "time"
	default:
		return "dimensionless"
	}
}

// scaleSuffix holds the SPICE scale factors, applied by multiplication.
var scaleSuffix = map[string]float64{
	"t":   1e12,
	"g":   1e9,
	"meg": 1e6,
	"k":   1e3,
	"m":   1e-3,
	"u":   1e-6,
	"µ":   1e-6,
	"n":   1e-9,
	"p":   1e-12,
	"f":   1e-15,
}

// unitSuffix maps each dimension's unit words to conversion functions. The
// conversions reuse this package's constructors (UM, MM, WPerMM3, …) so a
// deck value like "700w/mm3" lands on exactly the same float64 as a Go call
// site writing units.WPerMM3(700) — bit-identical, not merely close.
var unitSuffix = map[Dim]map[string]func(float64) float64{
	DimLength: {
		"m":  ident,
		"cm": func(v float64) float64 { return v * Centimeter },
		"mm": MM,
		"um": UM,
		"µm": UM,
		"nm": func(v float64) float64 { return v * 1e-9 },
	},
	DimArea: {
		"m2":  ident,
		"cm2": func(v float64) float64 { return v * Centimeter * Centimeter },
		"mm2": MM2,
		"um2": UM2,
		"µm2": UM2,
	},
	DimPower: {
		"w":  ident,
		"kw": func(v float64) float64 { return v * 1e3 },
		"mw": func(v float64) float64 { return v * 1e-3 },
		"uw": func(v float64) float64 { return v * 1e-6 },
		"µw": func(v float64) float64 { return v * 1e-6 },
		"nw": func(v float64) float64 { return v * 1e-9 },
	},
	DimPowerDensity: {
		"w/m3":  ident,
		"w/cm3": func(v float64) float64 { return v / (Centimeter * Centimeter * Centimeter) },
		"w/mm3": WPerMM3,
		"w/um3": func(v float64) float64 { return v / (Micrometer * Micrometer * Micrometer) },
		"w/µm3": func(v float64) float64 { return v / (Micrometer * Micrometer * Micrometer) },
	},
	DimTemperature: {
		"k":  ident,
		"c":  ident, // temperature rises share the kelvin scale
		"mk": func(v float64) float64 { return v * 1e-3 },
	},
	DimTime: {
		"s":  ident,
		"ms": func(v float64) float64 { return v * 1e-3 },
		"us": func(v float64) float64 { return v * 1e-6 },
		"µs": func(v float64) float64 { return v * 1e-6 },
		"ns": func(v float64) float64 { return v * 1e-9 },
		"ps": func(v float64) float64 { return v * 1e-12 },
	},
}

func ident(v float64) float64 { return v }

// maxValueLen bounds the accepted token length; the longest-numeric-prefix
// scan below is quadratic in the token, so unbounded hostile input (fuzzing,
// network decks) must be cut off before it can burn CPU.
const maxValueLen = 64

// ParseValue parses a SPICE-style suffixed number against a dimension:
// "45u" and "45um" are 45·10⁻⁶ m as a length, "1meg" is 10⁶, "700w/mm3" is
// a power density in W/m³, "100us" is 10⁻⁴ s, and a temperature "25k" is
// 25 kelvin rather than 25000. Suffixes are case-insensitive. The result
// must be finite; anything else — unknown suffix, malformed number,
// overflow — is an error.
func ParseValue(s string, d Dim) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	if len(s) > maxValueLen {
		return 0, fmt.Errorf("value %q longer than %d bytes", s[:16]+"…", maxValueLen)
	}
	// Longest numeric prefix wins, so "1e-6k" parses as 1e-6 with suffix
	// "k" and "1meg" as 1 with suffix "meg".
	num, suffix := splitNumber(s)
	if num == "" {
		return 0, fmt.Errorf("value %q does not start with a number", s)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("value %q: %v", s, err)
	}
	out, err := applySuffix(v, strings.ToLower(suffix), d)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(out) || math.IsInf(out, 0) {
		return 0, fmt.Errorf("value %q is not finite", s)
	}
	return out, nil
}

// splitNumber splits s into its longest strconv-parseable numeric prefix and
// the remaining suffix. Only plain decimal literals count as numeric —
// textual floats ("inf", "nan") and hex floats are suffix material, never
// numbers. An overflowing decimal prefix ("1e400") is returned as the number
// so the caller surfaces the range error instead of mis-splitting.
func splitNumber(s string) (num, suffix string) {
	for i := len(s); i > 0; i-- {
		if !isDecimal(s[:i]) {
			continue
		}
		if _, err := strconv.ParseFloat(s[:i], 64); err == nil || errors.Is(err, strconv.ErrRange) {
			return s[:i], s[i:]
		}
	}
	return "", s
}

// isDecimal reports whether the numeric literal uses only plain decimal
// syntax (digits, sign, point, decimal exponent).
func isDecimal(s string) bool {
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '+' || r == '-' || r == '.' || r == 'e' || r == 'E':
		default:
			return false
		}
	}
	return true
}

// applySuffix resolves the suffix: the dimension's unit table first, then
// the generic SPICE scale factors.
func applySuffix(v float64, suffix string, d Dim) (float64, error) {
	if suffix == "" {
		return v, nil
	}
	if tbl, ok := unitSuffix[d]; ok {
		if conv, ok := tbl[suffix]; ok {
			return conv(v), nil
		}
	}
	if mult, ok := scaleSuffix[suffix]; ok {
		return v * mult, nil
	}
	return 0, fmt.Errorf("unknown unit suffix %q for %s value", suffix, d)
}
