// Package units provides SI unit helpers and numeric comparison utilities
// shared across the TTSV thermal-modeling packages.
//
// All physical quantities in this repository are stored in base SI units
// (meters, watts, kelvins). The constructors in this package exist so that
// call sites can state values in the units the paper uses (micrometers,
// millimeters, W/mm^3) without sprinkling conversion factors around.
package units

import (
	"fmt"
	"math"
)

// Conversion factors to base SI units.
const (
	// Micrometer is one micrometer expressed in meters.
	Micrometer = 1e-6
	// Millimeter is one millimeter expressed in meters.
	Millimeter = 1e-3
	// Centimeter is one centimeter expressed in meters.
	Centimeter = 1e-2
)

// UM converts a length in micrometers to meters.
func UM(v float64) float64 { return v * Micrometer }

// MM converts a length in millimeters to meters.
func MM(v float64) float64 { return v * Millimeter }

// MM2 converts an area in square millimeters to square meters.
func MM2(v float64) float64 { return v * Millimeter * Millimeter }

// UM2 converts an area in square micrometers to square meters.
func UM2(v float64) float64 { return v * Micrometer * Micrometer }

// WPerMM3 converts a volumetric power density from W/mm^3 to W/m^3.
func WPerMM3(v float64) float64 { return v / (Millimeter * Millimeter * Millimeter) }

// ToUM converts a length in meters to micrometers.
func ToUM(v float64) float64 { return v / Micrometer }

// ToMM converts a length in meters to millimeters.
func ToMM(v float64) float64 { return v / Millimeter }

// DefaultTol is the default relative tolerance used by ApproxEqual.
const DefaultTol = 1e-9

// ApproxEqual reports whether a and b agree within relative tolerance tol
// (falling back to absolute tolerance near zero). NaNs are never equal.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= tol
	}
	return diff <= tol*scale
}

// RelErr returns |got-want| / max(|want|, floor). A small floor avoids
// division blow-up when want is (near) zero.
func RelErr(got, want float64) float64 {
	denom := math.Abs(want)
	if denom < 1e-300 {
		if math.Abs(got) < 1e-300 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / denom
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// It panics if n < 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("units: Linspace needs n >= 2, got %d", n))
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// FormatKelvin renders a temperature rise in a compact human-readable form.
func FormatKelvin(dt float64) string {
	return fmt.Sprintf("%.2f °C", dt)
}

// FormatMeters renders a length choosing µm or mm as appropriate.
func FormatMeters(l float64) string {
	if math.Abs(l) < Millimeter {
		return fmt.Sprintf("%.3g µm", ToUM(l))
	}
	return fmt.Sprintf("%.3g mm", ToMM(l))
}
