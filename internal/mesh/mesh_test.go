package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniform(t *testing.T) {
	e, err := Uniform(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(e[i]-want[i]) > 1e-15 {
			t.Fatalf("edges = %v", e)
		}
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform(0, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Uniform(1, 1, 3); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := Uniform(2, 1, 3); err == nil {
		t.Error("reversed interval accepted")
	}
}

func TestGradedGeometricWidths(t *testing.T) {
	e, err := Graded(0, 15, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Widths 1, 2, 4, 8 sum to 15.
	widths := []float64{1, 2, 4, 8}
	for i, w := range widths {
		if got := e[i+1] - e[i]; math.Abs(got-w) > 1e-12 {
			t.Fatalf("width %d = %g, want %g (edges %v)", i, got, w, e)
		}
	}
	if e[4] != 15 {
		t.Fatalf("last edge %g", e[4])
	}
}

func TestGradedRatioOneIsUniform(t *testing.T) {
	e, err := Graded(0, 1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := Uniform(0, 1, 5)
	for i := range u {
		if math.Abs(e[i]-u[i]) > 1e-15 {
			t.Fatalf("graded(1) != uniform: %v vs %v", e, u)
		}
	}
}

func TestGradedShrinking(t *testing.T) {
	e, err := Graded(0, 1, 6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < len(e); i++ {
		w1 := e[i-1] - e[i-2]
		w2 := e[i] - e[i-1]
		if w2 >= w1 {
			t.Fatalf("widths not shrinking: %v", e)
		}
	}
}

func TestGradedErrors(t *testing.T) {
	if _, err := Graded(0, 1, 3, -1); err == nil {
		t.Error("negative ratio accepted")
	}
	if _, err := Graded(0, 1, 0, 2); err == nil {
		t.Error("zero cells accepted")
	}
	if _, err := Graded(0, 1, 3, math.Inf(1)); err == nil {
		t.Error("infinite ratio accepted")
	}
}

func TestLineCompositeSharedEdges(t *testing.T) {
	e, err := Line(0, []Interval{
		{Hi: 1, Cells: 2},
		{Hi: 3, Cells: 4, Ratio: 1.5},
		{Hi: 3.5, Cells: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(e); err != nil {
		t.Fatal(err)
	}
	if len(e) != 2+4+1+1 {
		t.Fatalf("edge count = %d (%v)", len(e), e)
	}
	// Interface edges present exactly.
	found1, found3 := false, false
	for _, x := range e {
		if x == 1 {
			found1 = true
		}
		if x == 3 {
			found3 = true
		}
	}
	if !found1 || !found3 {
		t.Fatalf("interval boundaries not in edges: %v", e)
	}
	if e[len(e)-1] != 3.5 {
		t.Fatalf("last edge %g", e[len(e)-1])
	}
}

func TestLineErrors(t *testing.T) {
	if _, err := Line(0, nil); err == nil {
		t.Error("empty interval list accepted")
	}
	if _, err := Line(0, []Interval{{Hi: -1, Cells: 2}}); err == nil {
		t.Error("backwards interval accepted")
	}
}

func TestCenters(t *testing.T) {
	c := Centers([]float64{0, 1, 3})
	if len(c) != 2 || c[0] != 0.5 || c[1] != 2 {
		t.Fatalf("Centers = %v", c)
	}
	if Centers([]float64{1}) != nil {
		t.Error("degenerate input not nil")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]float64{0, 1, 2}); err != nil {
		t.Errorf("valid edges rejected: %v", err)
	}
	if err := Validate([]float64{0, 1, 1}); err == nil {
		t.Error("repeated edge accepted")
	}
	if err := Validate([]float64{0, 2, 1}); err == nil {
		t.Error("decreasing edges accepted")
	}
	if err := Validate([]float64{0}); err == nil {
		t.Error("single edge accepted")
	}
}

func TestLocate(t *testing.T) {
	e := []float64{0, 1, 2.5, 4}
	cases := []struct {
		x    float64
		want int
	}{
		{-0.1, -1}, {0, 0}, {0.5, 0}, {1, 1}, {2.4, 1}, {2.5, 2}, {3.9, 2}, {4, 2}, {4.1, -1},
	}
	for _, c := range cases {
		if got := Locate(e, c.x); got != c.want {
			t.Errorf("Locate(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

// Property: Locate is consistent with the edge array for random points.
func TestLocateProperty(t *testing.T) {
	e, err := Line(0, []Interval{{Hi: 1, Cells: 7}, {Hi: 2, Cells: 3, Ratio: 2}})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 2)
		i := Locate(e, x)
		if i < 0 || i >= len(e)-1 {
			return false
		}
		return e[i] <= x && (x < e[i+1] || (x == e[len(e)-1] && i == len(e)-2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGradedTotalLengthProperty(t *testing.T) {
	f := func(seedN uint8, seedR uint8) bool {
		n := 1 + int(seedN)%20
		ratio := 0.3 + float64(seedR)/64.0
		e, err := Graded(2, 7, n, ratio)
		if err != nil {
			return false
		}
		if len(e) != n+1 || e[0] != 2 || e[n] != 7 {
			return false
		}
		return Validate(e) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
