// Package mesh builds the structured, boundary-aligned grids the
// finite-volume reference solver runs on. Grids are described by their cell
// edge coordinates along each axis; all generators guarantee strictly
// increasing edges that hit material interfaces exactly.
package mesh

import (
	"fmt"
	"math"
	"sort"
)

// Uniform subdivides [lo, hi] into n equal cells and returns the n+1 edges.
func Uniform(lo, hi float64, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("mesh: Uniform needs n >= 1, got %d", n)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("mesh: Uniform needs hi > lo, got [%g, %g]", lo, hi)
	}
	e := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		e[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	e[n] = hi
	return e, nil
}

// Graded subdivides [lo, hi] into n cells whose widths form a geometric
// progression with the given ratio between successive cells (ratio > 1 makes
// cells grow from lo towards hi; ratio < 1 shrink). ratio == 1 is uniform.
func Graded(lo, hi float64, n int, ratio float64) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("mesh: Graded needs n >= 1, got %d", n)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("mesh: Graded needs hi > lo, got [%g, %g]", lo, hi)
	}
	if ratio <= 0 || math.IsNaN(ratio) || math.IsInf(ratio, 0) {
		return nil, fmt.Errorf("mesh: Graded ratio %g must be positive and finite", ratio)
	}
	if ratio == 1 {
		return Uniform(lo, hi, n)
	}
	// First width w satisfies w·(ratio^n - 1)/(ratio - 1) = hi - lo.
	w := (hi - lo) * (ratio - 1) / (math.Pow(ratio, float64(n)) - 1)
	e := make([]float64, n+1)
	e[0] = lo
	width := w
	for i := 1; i <= n; i++ {
		e[i] = e[i-1] + width
		width *= ratio
	}
	e[n] = hi
	return e, nil
}

// Interval is one segment of a composite 1-D mesh.
type Interval struct {
	// Hi is the upper edge of the interval; the lower edge is the previous
	// interval's Hi (or the line's origin).
	Hi float64
	// Cells is the number of cells in the interval.
	Cells int
	// Ratio optionally grades the interval (see Graded); 0 means uniform.
	Ratio float64
}

// Line builds a composite 1-D mesh starting at origin through the given
// intervals. Edges at interval boundaries are shared, so material interfaces
// always coincide with cell faces.
func Line(origin float64, intervals []Interval) ([]float64, error) {
	if len(intervals) == 0 {
		return nil, fmt.Errorf("mesh: Line needs at least one interval")
	}
	edges := []float64{origin}
	lo := origin
	for i, iv := range intervals {
		ratio := iv.Ratio
		if ratio == 0 {
			ratio = 1
		}
		seg, err := Graded(lo, iv.Hi, iv.Cells, ratio)
		if err != nil {
			return nil, fmt.Errorf("mesh: Line interval %d: %w", i, err)
		}
		edges = append(edges, seg[1:]...)
		lo = iv.Hi
	}
	return edges, nil
}

// Centers returns the midpoints of the cells defined by edges.
func Centers(edges []float64) []float64 {
	if len(edges) < 2 {
		return nil
	}
	c := make([]float64, len(edges)-1)
	for i := range c {
		c[i] = 0.5 * (edges[i] + edges[i+1])
	}
	return c
}

// Validate checks that edges are strictly increasing and at least one cell
// exists.
func Validate(edges []float64) error {
	if len(edges) < 2 {
		return fmt.Errorf("mesh: need at least 2 edges, have %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			return fmt.Errorf("mesh: edges not strictly increasing at %d: %g then %g", i, edges[i-1], edges[i])
		}
	}
	return nil
}

// Locate returns the index of the cell containing x (edges[i] <= x <
// edges[i+1]); x exactly at the last edge maps to the last cell. It returns
// -1 when x lies outside the mesh.
func Locate(edges []float64, x float64) int {
	n := len(edges)
	if n < 2 || x < edges[0] || x > edges[n-1] {
		return -1
	}
	if x == edges[n-1] {
		return n - 2
	}
	// Find the first edge strictly greater than x; the cell is just below it.
	i := sort.Search(n, func(k int) bool { return edges[k] > x })
	return i - 1
}
