// Package canon produces deterministic canonical encodings of Go values for
// use as cache and coalescing keys. It exists because fmt's %#v is not a
// serialization: it renders pointer fields as addresses (different on every
// run and every process) and map fields in random order, so any key built
// from it silently stops deduplicating the moment a keyed type grows a
// pointer or map — and it can never coordinate work across processes.
//
// String walks a value by reflection and writes a complete, deterministic
// rendering: concrete type names, struct fields in declaration order,
// pointers dereferenced (never printed as addresses), map entries sorted by
// their encoded key, floats in Go's shortest round-trip form, strings
// quoted. Two values of the same printable shape encode equally if and only
// if they are structurally equal, which makes the encoding usable as an
// exact memoization key both within a process (internal/sweep's result
// cache) and across processes (the solve daemon's request coalescing).
//
// Functions, channels and unsafe pointers have no meaningful value identity;
// they encode as their type name only, so keys over values containing them
// may collide. No keyed type in this repository contains any.
package canon

import (
	"crypto/sha256"
	"encoding/hex"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// String returns the canonical encoding of vs, "|"-separated. It is
// deterministic across runs and processes and injective for the plain value
// types used as cache keys in this repository (structs of scalars, strings,
// slices, maps and pointers thereto, without function or channel fields).
func String(vs ...any) string {
	var b strings.Builder
	for i, v := range vs {
		if i > 0 {
			b.WriteByte('|')
		}
		enc(&b, reflect.ValueOf(v), make(map[uintptr]bool))
	}
	return b.String()
}

// Hash returns a fixed-length hex digest of String(vs...), suitable as a
// compact coalescing or sharding key.
func Hash(vs ...any) string {
	sum := sha256.Sum256([]byte(String(vs...)))
	return hex.EncodeToString(sum[:])
}

// enc writes one value. active guards against pointer cycles: a pointer
// already being encoded on this path writes a marker instead of recursing.
func enc(b *strings.Builder, v reflect.Value, active map[uintptr]bool) {
	if !v.IsValid() {
		b.WriteString("nil")
		return
	}
	switch v.Kind() {
	case reflect.Bool:
		b.WriteString(strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		b.WriteString(strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		b.WriteString(strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32:
		b.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 32))
	case reflect.Float64:
		b.WriteString(strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		b.WriteByte('(')
		b.WriteString(strconv.FormatFloat(real(c), 'g', -1, 64))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(imag(c), 'g', -1, 64))
		b.WriteByte(')')
	case reflect.String:
		b.WriteString(strconv.Quote(v.String()))
	case reflect.Pointer:
		if v.IsNil() {
			b.WriteString("nil")
			return
		}
		addr := v.Pointer()
		if active[addr] {
			b.WriteString("&cycle")
			return
		}
		active[addr] = true
		b.WriteByte('&')
		enc(b, v.Elem(), active)
		delete(active, addr)
	case reflect.Interface:
		if v.IsNil() {
			b.WriteString("nil")
			return
		}
		enc(b, v.Elem(), active)
	case reflect.Struct:
		t := v.Type()
		b.WriteString(t.String())
		b.WriteByte('{')
		for i := 0; i < t.NumField(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(t.Field(i).Name)
			b.WriteByte(':')
			enc(b, v.Field(i), active)
		}
		b.WriteByte('}')
	case reflect.Slice:
		if v.IsNil() {
			b.WriteString(v.Type().String())
			b.WriteString("(nil)")
			return
		}
		encSeq(b, v, active)
	case reflect.Array:
		encSeq(b, v, active)
	case reflect.Map:
		t := v.Type()
		b.WriteString(t.String())
		if v.IsNil() {
			b.WriteString("(nil)")
			return
		}
		// Entries sorted by their encoded key: map iteration order is
		// random, the encoding must not be.
		entries := make([]string, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			var e strings.Builder
			enc(&e, iter.Key(), active)
			e.WriteByte(':')
			enc(&e, iter.Value(), active)
			entries = append(entries, e.String())
		}
		sort.Strings(entries)
		b.WriteByte('{')
		for i, e := range entries {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(e)
		}
		b.WriteByte('}')
	default:
		// Func, Chan, UnsafePointer: no portable value identity. Encode the
		// type alone; see the package comment for the collision caveat.
		b.WriteString(v.Type().String())
	}
}

// encSeq writes a slice or array body.
func encSeq(b *strings.Builder, v reflect.Value, active map[uintptr]bool) {
	b.WriteString(v.Type().String())
	b.WriteByte('[')
	for i := 0; i < v.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		enc(b, v.Index(i), active)
	}
	b.WriteByte(']')
}
