package canon

import (
	"math"
	"strings"
	"testing"
)

type inner struct {
	A int
	B string
}

type outer struct {
	P *inner
	M map[string]float64
	S []int
	F float64
}

func TestStringDeterministic(t *testing.T) {
	v := outer{
		P: &inner{A: 1, B: "x"},
		M: map[string]float64{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5},
		S: []int{1, 2, 3},
		F: 0.1,
	}
	first := String(v)
	for i := 0; i < 50; i++ {
		if got := String(v); got != first {
			t.Fatalf("encoding not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
}

func TestPointerFieldsEncodeByValue(t *testing.T) {
	a := outer{P: &inner{A: 7, B: "q"}}
	b := outer{P: &inner{A: 7, B: "q"}}
	if String(a) != String(b) {
		t.Fatalf("equal pointees encode differently:\n%s\nvs\n%s", String(a), String(b))
	}
	c := outer{P: &inner{A: 8, B: "q"}}
	if String(a) == String(c) {
		t.Fatalf("distinct pointees collide: %s", String(a))
	}
	if strings.Contains(String(a), "0x") {
		t.Fatalf("encoding leaks an address: %s", String(a))
	}
}

func TestNilsAreDistinguished(t *testing.T) {
	if String(outer{}) == String(outer{P: &inner{}}) {
		t.Fatal("nil pointer collides with zero pointee")
	}
	if String([]int(nil)) == String([]int{}) {
		t.Fatal("nil slice collides with empty slice")
	}
	if String(map[string]int(nil)) == String(map[string]int{}) {
		t.Fatal("nil map collides with empty map")
	}
	if String(nil) != "nil" {
		t.Fatalf("nil interface: got %q", String(nil))
	}
}

func TestFloatsRoundTrip(t *testing.T) {
	// Adjacent floats must encode distinctly (shortest round-trip form).
	a, b := 0.1, math.Nextafter(0.1, 1)
	if String(a) == String(b) {
		t.Fatalf("adjacent floats collide: %s", String(a))
	}
	if String(math.NaN()) != "NaN" {
		t.Fatalf("NaN: got %q", String(math.NaN()))
	}
	if String(0.0) == String(math.Copysign(0, -1)) {
		t.Fatal("-0 collides with +0")
	}
}

func TestTypeNamesAreEmbedded(t *testing.T) {
	type otherInner struct {
		A int
		B string
	}
	if String(inner{1, "x"}) == String(otherInner{1, "x"}) {
		t.Fatal("structurally identical but distinct types collide")
	}
	// The same value through an interface encodes as its dynamic type.
	var any1 any = inner{1, "x"}
	if String(any1) != String(inner{1, "x"}) {
		t.Fatalf("interface indirection changes encoding: %s vs %s", String(any1), String(inner{1, "x"}))
	}
}

type ring struct {
	Name string
	Next *ring
}

func TestCycleSafe(t *testing.T) {
	a := &ring{Name: "a"}
	b := &ring{Name: "b", Next: a}
	a.Next = b
	got := String(a) // must terminate
	if !strings.Contains(got, "cycle") {
		t.Fatalf("cycle not marked: %s", got)
	}
	// A DAG (shared pointer, no cycle) is not a cycle.
	shared := &inner{A: 1}
	type pair struct{ L, R *inner }
	if s := String(pair{shared, shared}); strings.Contains(s, "cycle") {
		t.Fatalf("shared pointer misdetected as cycle: %s", s)
	}
}

func TestMapOrderIndependent(t *testing.T) {
	m1 := map[string]int{}
	m2 := map[string]int{}
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	for i, k := range keys {
		m1[k] = i
	}
	for i := len(keys) - 1; i >= 0; i-- {
		m2[keys[i]] = i
	}
	if String(m1) != String(m2) {
		t.Fatalf("map insertion order leaks:\n%s\nvs\n%s", String(m1), String(m2))
	}
}

func TestHashStable(t *testing.T) {
	h := Hash("solve", inner{1, "x"})
	if len(h) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(h))
	}
	if h != Hash("solve", inner{1, "x"}) {
		t.Fatal("hash not deterministic")
	}
	if h == Hash("sweep", inner{1, "x"}) {
		t.Fatal("distinct inputs collide")
	}
}

func TestMultiValueSeparator(t *testing.T) {
	if String("a", "b") == String("a|b") {
		// strconv.Quote makes this impossible; guard it anyway.
		t.Fatal("argument boundary ambiguous")
	}
}
