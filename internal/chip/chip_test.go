package chip

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/units"
)

func TestDRAMuPPaperParameters(t *testing.T) {
	sys := DRAMuP()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := sys.Area(); !units.ApproxEqual(got, 1e-4, 1e-12) {
		t.Errorf("area = %g, want 1e-4 m²", got)
	}
	if len(sys.PlanePowers) != 3 || sys.PlanePowers[0] != 70 || sys.PlanePowers[1] != 7 {
		t.Errorf("powers = %v", sys.PlanePowers)
	}
	if sys.TSi != units.UM(300) || sys.TD != units.UM(20) || sys.TB != units.UM(10) || sys.R != units.UM(30) {
		t.Error("geometry differs from §IV-E")
	}
	if sys.ViaDensity != 0.005 {
		t.Errorf("density = %g", sys.ViaDensity)
	}
	// 0.5% of 100 mm² at r = 30 µm: 5e-7/2.83e-9 ≈ 177 vias.
	if n := sys.ViaCount(); n < 170 || n > 185 {
		t.Errorf("via count = %d, want ≈177", n)
	}
}

func TestUnitCellConservesPower(t *testing.T) {
	sys := DRAMuP()
	cell, err := sys.UnitCell()
	if err != nil {
		t.Fatal(err)
	}
	// cell power · (chip area / cell area) = total power.
	total := cell.TotalPower() * sys.Area() / sys.CellArea()
	if units.RelErr(total, 84) > 1e-9 {
		t.Errorf("recovered total power %g, want 84 W", total)
	}
	// Density identity: via metal area / cell area = ViaDensity.
	if got := cell.Via.MetalArea() / cell.Footprint; units.RelErr(got, sys.ViaDensity) > 1e-9 {
		t.Errorf("cell density %g, want %g", got, sys.ViaDensity)
	}
	if cell.Planes[0].BondThickness != 0 || cell.Planes[1].BondThickness != sys.TB {
		t.Error("bond layers misplaced")
	}
}

func TestCaseStudyReproducesPaperShape(t *testing.T) {
	// §IV-E's qualitative result: Models A and B land close to the
	// reference while the 1-D model overestimates by tens of percent
	// (paper: A 12.8, B(1000) 13.9, FEM 12, 1-D 20 — 1-D is ~65% high).
	sys := DRAMuP()
	ref, _, err := sys.AnalyzeReference(fem.DefaultResolution())
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Analyze(core.ModelA{Coeffs: core.PaperSystemCoeffs()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Analyze(core.NewModelB(1000))
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys.Analyze(core.Model1D{})
	if err != nil {
		t.Fatal(err)
	}
	if e := units.RelErr(b.MaxDT, ref); e > 0.10 {
		t.Errorf("Model B %g vs reference %g (err %.0f%%), want < 10%%", b.MaxDT, ref, 100*e)
	}
	if e := units.RelErr(a.MaxDT, ref); e > 0.20 {
		t.Errorf("Model A %g vs reference %g (err %.0f%%), want < 20%%", a.MaxDT, ref, 100*e)
	}
	if d.MaxDT < 1.4*ref {
		t.Errorf("1-D model %g does not overestimate reference %g by ≥40%%", d.MaxDT, ref)
	}
	// Paper-style magnitudes: everything within the 8-25 °C band.
	for _, v := range []float64{ref, a.MaxDT, b.MaxDT, d.MaxDT} {
		if v < 5 || v > 30 {
			t.Errorf("ΔT %g outside the plausible case-study band", v)
		}
	}
}

func TestAnalyzeModelsAgree(t *testing.T) {
	// B with moderate segments approximates B with many segments.
	sys := DRAMuP()
	b200, err := sys.Analyze(core.NewModelB(200))
	if err != nil {
		t.Fatal(err)
	}
	b1000, err := sys.Analyze(core.NewModelB(1000))
	if err != nil {
		t.Fatal(err)
	}
	if units.RelErr(b200.MaxDT, b1000.MaxDT) > 0.03 {
		t.Errorf("B(200) %g vs B(1000) %g", b200.MaxDT, b1000.MaxDT)
	}
}

func TestValidateRejectsBadSystems(t *testing.T) {
	mutations := []func(*System){
		func(s *System) { s.Width = 0 },
		func(s *System) { s.PlanePowers = s.PlanePowers[:1] },
		func(s *System) { s.PlanePowers[0] = -1 },
		func(s *System) { s.PlanePowers[1] = math.NaN() },
		func(s *System) { s.ViaDensity = 0 },
		func(s *System) { s.ViaDensity = 1.5 },
		func(s *System) { s.R = units.MM(20) }, // one via bigger than the chip
	}
	for i, mut := range mutations {
		sys := DRAMuP()
		mut(&sys)
		if err := sys.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestUnitCellPropagatesValidation(t *testing.T) {
	sys := DRAMuP()
	sys.ViaDensity = 0
	if _, err := sys.UnitCell(); err == nil {
		t.Error("invalid system produced a unit cell")
	}
	if _, err := sys.Analyze(core.Model1D{}); err == nil {
		t.Error("Analyze on invalid system succeeded")
	}
	if _, _, err := sys.AnalyzeReference(fem.DefaultResolution()); err == nil {
		t.Error("AnalyzeReference on invalid system succeeded")
	}
}

func TestDensitySweepMonotone(t *testing.T) {
	// More via area (higher density) must reduce the temperature: a free
	// extension experiment supported by the same machinery.
	var prev float64
	for i, density := range []float64{0.001, 0.005, 0.02, 0.05} {
		sys := DRAMuP()
		sys.ViaDensity = density
		r, err := sys.Analyze(core.NewModelB(200))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && r.MaxDT >= prev {
			t.Fatalf("ΔT did not fall as density rose to %g: %g then %g", density, prev, r.MaxDT)
		}
		prev = r.MaxDT
	}
}
