// Package chip embeds the TTSV models into full-chip thermal analysis, the
// paper's §IV-E workflow: a 3-D system whose TTSVs are distributed uniformly
// at a given area density is reduced, by symmetry, to one unit cell per via
// — a stack.Stack with the cell's share of the plane powers — which any of
// the core models (or the FVM reference) then solves. For a uniform array
// the unit cell's maximum temperature rise equals the system's.
package chip

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/materials"
	"repro/internal/obs"
	"repro/internal/stack"
	"repro/internal/units"
)

// System describes a full 3-D chip with a uniformly distributed TTSV array.
type System struct {
	// Width and Depth are the chip footprint dimensions (m).
	Width, Depth float64
	// PlanePowers lists the total power of each plane (W), plane 1 (next to
	// the heat sink) first.
	PlanePowers []float64
	// TSi, TD, TB are the per-plane silicon, ILD and bond thicknesses (m);
	// the case study uses equal substrate thickness in all planes.
	TSi, TD, TB float64
	// TL, R, Lext describe each via: liner thickness, radius and the
	// extension into the first plane's substrate (m).
	TL, R, Lext float64
	// ViaDensity is the fraction of the chip area occupied by via metal
	// (0.005 in the paper).
	ViaDensity float64
	// DeviceLayerThickness spreads each plane's power over a thin layer for
	// the reference solver.
	DeviceLayerThickness float64
	// SinkTemp is the heat-sink temperature (°C).
	SinkTemp float64
	// Si, ILD, Bond, Fill, Liner are the materials.
	Si, ILD, Bond, Fill, Liner materials.Material
}

// DRAMuP returns the paper's 3-D DRAM-on-µP case study (§IV-E, Fig. 8):
// 10 mm × 10 mm footprint, three planes of 300 µm silicon, t_D = 20 µm,
// t_b = 10 µm, t_L = 1 µm, r = 30 µm, 0.5% TTSV density; the processor
// plane (adjacent to the heat sink) dissipates 70 W and each DRAM plane 7 W.
func DRAMuP() System {
	return System{
		Width:                units.MM(10),
		Depth:                units.MM(10),
		PlanePowers:          []float64{70, 7, 7},
		TSi:                  units.UM(300),
		TD:                   units.UM(20),
		TB:                   units.UM(10),
		TL:                   units.UM(1),
		R:                    units.UM(30),
		Lext:                 units.UM(1),
		ViaDensity:           0.005,
		DeviceLayerThickness: units.UM(1),
		SinkTemp:             27,
		Si:                   materials.Silicon,
		ILD:                  materials.SiO2,
		Bond:                 materials.Polyimide,
		Fill:                 materials.Copper,
		Liner:                materials.SiO2,
	}
}

// Area returns the chip footprint area (m²).
func (sys System) Area() float64 { return sys.Width * sys.Depth }

// ViaCount returns the number of TTSVs implied by the density.
func (sys System) ViaCount() int {
	per := math.Pi * sys.R * sys.R
	return int(math.Round(sys.Area() * sys.ViaDensity / per))
}

// CellArea returns the footprint of one via's symmetry unit cell (m²).
func (sys System) CellArea() float64 {
	return math.Pi * sys.R * sys.R / sys.ViaDensity
}

// Validate checks the system description.
func (sys System) Validate() error {
	if sys.Width <= 0 || sys.Depth <= 0 {
		return fmt.Errorf("chip: footprint %g × %g m must be positive", sys.Width, sys.Depth)
	}
	if len(sys.PlanePowers) < 2 {
		return fmt.Errorf("chip: need at least 2 planes, have %d", len(sys.PlanePowers))
	}
	for i, p := range sys.PlanePowers {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("chip: plane %d power %g W invalid", i+1, p)
		}
	}
	if sys.ViaDensity <= 0 || sys.ViaDensity >= 1 {
		return fmt.Errorf("chip: via density %g outside (0, 1)", sys.ViaDensity)
	}
	if sys.ViaCount() < 1 {
		return fmt.Errorf("chip: density %g with radius %s yields no vias", sys.ViaDensity, units.FormatMeters(sys.R))
	}
	return nil
}

// UnitCell builds the per-via symmetry cell as a stack the core models and
// the reference solver consume. Plane powers are scaled by the cell's share
// of the chip area.
func (sys System) UnitCell() (*stack.Stack, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	cell := sys.CellArea()
	frac := cell / sys.Area()
	planes := make([]stack.Plane, len(sys.PlanePowers))
	for i, p := range sys.PlanePowers {
		tb := sys.TB
		if i == 0 {
			tb = 0
		}
		planes[i] = stack.Plane{
			SiThickness:          sys.TSi,
			ILDThickness:         sys.TD,
			BondThickness:        tb,
			Si:                   sys.Si,
			ILD:                  sys.ILD,
			Bond:                 sys.Bond,
			DevicePower:          p * frac,
			DeviceLayerThickness: sys.DeviceLayerThickness,
		}
	}
	s := &stack.Stack{
		Footprint: cell,
		Planes:    planes,
		Via: stack.TTSV{
			Radius:         sys.R,
			LinerThickness: sys.TL,
			Extension:      sys.Lext,
			Fill:           sys.Fill,
			Liner:          sys.Liner,
			Count:          1,
		},
		SinkTemp: sys.SinkTemp,
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("chip: unit cell: %w", err)
	}
	return s, nil
}

// Analyze runs a core model on the system's unit cell. The returned MaxDT is
// the system's maximum temperature rise above the heat sink.
func (sys System) Analyze(m core.Model) (*core.Result, error) {
	obs.Default().Counter("chip.analyze.runs").Inc()
	cell, err := sys.UnitCell()
	if err != nil {
		return nil, err
	}
	return m.Solve(cell)
}

// AnalyzeReference runs the FVM reference solver on the unit cell and
// returns the maximum temperature rise.
func (sys System) AnalyzeReference(res fem.Resolution) (float64, *fem.AxiSolution, error) {
	obs.Default().Counter("chip.analyze.runs").Inc()
	cell, err := sys.UnitCell()
	if err != nil {
		return 0, nil, err
	}
	sol, err := fem.SolveStack(cell, res)
	if err != nil {
		return 0, nil, err
	}
	max, _, _ := sol.MaxT()
	return max, sol, nil
}
