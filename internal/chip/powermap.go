package chip

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sparse"
)

// PowerMapResolution controls the full-chip 3-D mesh density.
type PowerMapResolution struct {
	// CellsPerTile is the lateral cell count per tile edge.
	CellsPerTile int
	// AxialPerLayer, AxialMin and Bulk mirror fem.Resolution.
	AxialPerLayer, AxialMin, Bulk int
}

// DefaultPowerMapResolution keeps a ~6×6-tile chip under ~50k cells.
func DefaultPowerMapResolution() PowerMapResolution {
	return PowerMapResolution{CellsPerTile: 4, AxialPerLayer: 3, AxialMin: 2, Bulk: 8}
}

// PowerMapSolution is a solved full-chip temperature field.
type PowerMapSolution struct {
	// MaxDT is the chip's maximum temperature rise (K).
	MaxDT float64
	// TileMaxDT[r][c] is the maximum rise within each tile's column.
	TileMaxDT [][]float64
	// Cells is the mesh size of the solve.
	Cells int
}

// SolvePowerMap runs a homogenized full-chip 3-D conduction solve of a
// floorplan with a per-tile TTSV allocation (typically a plan.Result's
// Counts). This is the paper's §IV-E move — "the proposed models are
// embedded in the analytic thermal analysis model of the system" — scaled to
// non-uniform power maps: each tile's via array becomes an anisotropic
// effective medium with *additional vertical* conductivity in the layers the
// vias traverse.
//
// A local effective medium cannot represent the via's series structure
// (lateral liner access + full-column fill) exactly — a naive parallel-mix
// smearing drops the liner bottleneck and rebuilds the very 1-D optimism the
// paper warns about. The added conductivity is therefore *calibrated per
// tile*: a scalar per tile scales the analytical via-path shape
// (eqs. (8)-(15)/(22)) until the homogenized column's own 1-D evaluation
// reproduces the tile's Model B temperature. In the uniform-array limit the
// full-chip solve then matches the unit-cell models by construction; on
// non-uniform maps the 3-D solve adds what the planner's adiabatic tiles
// ignore — tile-to-tile lateral coupling. This mirrors how the paper itself
// calibrates simple structures against richer references.
func SolvePowerMap(f *plan.Floorplan, tech plan.Technology, counts [][]int, res PowerMapResolution) (*PowerMapSolution, error) {
	if r := obs.Default(); r != nil {
		r.Counter("chip.powermap.solves").Inc()
		t0 := time.Now()
		defer func() {
			r.Histogram("chip.powermap.seconds", obs.ExpBuckets(1e-3, 4, 10)).Observe(time.Since(t0).Seconds())
		}()
	}
	if err := f.Validate(tech); err != nil {
		return nil, err
	}
	if res.CellsPerTile < 1 || res.AxialPerLayer < 1 || res.AxialMin < 1 || res.Bulk < 1 {
		return nil, fmt.Errorf("chip: invalid power-map resolution %+v", res)
	}
	rows, cols := f.Rows(), f.Cols()
	if len(counts) != rows {
		return nil, fmt.Errorf("chip: counts grid has %d rows, floorplan %d", len(counts), rows)
	}
	tileArea := f.TileSide * f.TileSide
	perVia := math.Pi * tech.ViaRadius * tech.ViaRadius
	nPlanes := tech.NumPlanes

	// z layout, bottom-up: bulk Si1, [per plane: (bond), Si below device,
	// device layer, ILD]. viaPlane tags the plane whose analytical via
	// column covers a span (matching core.Resistances' column heights:
	// l_ext + ILD for plane 1, bond + Si + ILD for middle planes, bond + Si
	// for the top plane — its ILD carries no via conductance, eq. (14)).
	var spans []pmSpan
	z := 0.0
	add := func(t, k float64, viaPlane, qPlane int) {
		if t <= 0 {
			return
		}
		spans = append(spans, pmSpan{lo: z, hi: z + t, kBulk: k, viaPlane: viaPlane, qPlane: qPlane})
		z += t
	}
	tdev := tech.DeviceLayerThickness
	add(tech.TSi1-tech.Extension, tech.Si.K, -1, -1)
	add(tech.Extension-tdev, tech.Si.K, 0, -1)
	add(tdev, tech.Si.K, 0, 0)
	add(tech.TD, tech.ILD.K, 0, -1)
	for p := 1; p < nPlanes; p++ {
		add(tech.TB, tech.Bond.K, p, -1)
		add(tech.TSi-tdev, tech.Si.K, p, -1)
		add(tdev, tech.Si.K, p, p)
		topILDPlane := p
		if p == nPlanes-1 {
			topILDPlane = -1 // the top ILD is outside the analytical column
		}
		add(tech.TD, tech.ILD.K, topILDPlane, -1)
	}

	// Per tile and per plane: the extra vertical conductivity (W/m·K over
	// the tile area) in the spans the via column traverses. The analytical
	// series conductance 1/(R_metal + R_liner) per plane sets the shape; a
	// per-tile scalar alpha is then calibrated so the homogenized column's
	// 1-D evaluation reproduces the tile's Model B temperature.
	kAdd := make([][][]float64, rows) // [r][c][plane]
	modelB := core.NewModelB(100)
	for r := range counts {
		if len(counts[r]) != cols {
			return nil, fmt.Errorf("chip: counts grid ragged at row %d", r)
		}
		kAdd[r] = make([][]float64, cols)
		for c, n := range counts[r] {
			if n < 0 {
				return nil, fmt.Errorf("chip: tile (%d,%d) has negative via count", r, c)
			}
			kAdd[r][c] = make([]float64, nPlanes)
			if n == 0 {
				continue
			}
			if density := float64(n) * perVia / tileArea; density >= 1 {
				return nil, fmt.Errorf("chip: tile (%d,%d) via density %g >= 1", r, c, density)
			}
			ts, err := plan.TileStack(f.PlanePowers[r][c], tileArea, tech, n)
			if err != nil {
				return nil, fmt.Errorf("chip: tile (%d,%d): %w", r, c, err)
			}
			elems, _, err := core.Resistances(ts, core.UnitCoeffs())
			if err != nil {
				return nil, fmt.Errorf("chip: tile (%d,%d): %w", r, c, err)
			}
			shape := make([]float64, nPlanes)
			for p := 0; p < nPlanes; p++ {
				shape[p] = ts.ColumnHeight(p) / ((elems[p].Metal + elems[p].Liner) * tileArea)
			}
			target, err := modelB.Solve(ts)
			if err != nil {
				return nil, fmt.Errorf("chip: tile (%d,%d): %w", r, c, err)
			}
			alpha := calibrateColumn(spans, shape, f.PlanePowers[r][c], tileArea, target.MaxDT)
			for p := 0; p < nPlanes; p++ {
				kAdd[r][c][p] = alpha * shape[p]
			}
		}
	}

	var zIntervals []mesh.Interval
	for i, sp := range spans {
		cells := res.AxialPerLayer
		ratio := 1.0
		if i == 0 {
			cells = res.Bulk
			ratio = 0.75
		}
		if sp.hi-sp.lo < 3e-6 && i != 0 {
			cells = res.AxialMin
		}
		zIntervals = append(zIntervals, mesh.Interval{Hi: sp.hi, Cells: cells, Ratio: ratio})
	}
	zEdges, err := mesh.Line(0, zIntervals)
	if err != nil {
		return nil, err
	}
	var xIntervals, yIntervals []mesh.Interval
	for c := 0; c < cols; c++ {
		xIntervals = append(xIntervals, mesh.Interval{Hi: float64(c+1) * f.TileSide, Cells: res.CellsPerTile})
	}
	for r := 0; r < rows; r++ {
		yIntervals = append(yIntervals, mesh.Interval{Hi: float64(r+1) * f.TileSide, Cells: res.CellsPerTile})
	}
	xEdges, err := mesh.Line(0, xIntervals)
	if err != nil {
		return nil, err
	}
	yEdges, err := mesh.Line(0, yIntervals)
	if err != nil {
		return nil, err
	}

	tileOf := func(x, y float64) (int, int) {
		c := int(x / f.TileSide)
		r := int(y / f.TileSide)
		if c >= cols {
			c = cols - 1
		}
		if r >= rows {
			r = rows - 1
		}
		return r, c
	}
	spanOf := func(zz float64) *pmSpan {
		for i := range spans {
			if zz < spans[i].hi {
				return &spans[i]
			}
		}
		return &spans[len(spans)-1]
	}
	// Lateral conduction sees the layer bulk (the sparse via array barely
	// changes it); vertical conduction gains each tile's analytical
	// via-path conductivity.
	kFn := func(x, y, zz float64) float64 {
		return spanOf(zz).kBulk
	}
	kzFn := func(x, y, zz float64) float64 {
		sp := spanOf(zz)
		if sp.viaPlane < 0 {
			return sp.kBulk
		}
		r, c := tileOf(x, y)
		return sp.kBulk + kAdd[r][c][sp.viaPlane]
	}
	devVol := tileArea * tdev
	qFn := func(x, y, zz float64) float64 {
		sp := spanOf(zz)
		if sp.qPlane < 0 {
			return 0
		}
		r, c := tileOf(x, y)
		return f.PlanePowers[r][c][sp.qPlane] / devVol
	}

	prob := &fem.CartProblem{
		XEdges: xEdges,
		YEdges: yEdges,
		ZEdges: zEdges,
		K:      kFn,
		KZ:     kzFn,
		Q:      qFn,
		Bottom: fem.Fixed(0),
		Top:    fem.Insulated(),
	}
	sol, err := fem.SolveCart(prob, sparse.Options{Tol: 1e-8})
	if err != nil {
		return nil, err
	}

	out := &PowerMapSolution{
		TileMaxDT: make([][]float64, rows),
		Cells:     (len(xEdges) - 1) * (len(yEdges) - 1) * (len(zEdges) - 1),
	}
	for r := range out.TileMaxDT {
		out.TileMaxDT[r] = make([]float64, cols)
	}
	for l, zc := range sol.ZCenters {
		_ = zc
		for j, yc := range sol.YCenters {
			for i, xc := range sol.XCenters {
				t := sol.T[l][j][i]
				r, c := tileOf(xc, yc)
				if t > out.TileMaxDT[r][c] {
					out.TileMaxDT[r][c] = t
				}
				if t > out.MaxDT {
					out.MaxDT = t
				}
			}
		}
	}
	return out, nil
}

// pmSpan is one z-layer of the homogenized full-chip stack.
type pmSpan struct {
	lo, hi   float64
	kBulk    float64 // conductivity of the layer bulk
	viaPlane int     // plane whose via column covers this span, or -1
	qPlane   int     // plane whose device power heats this span, or -1
}

// calibrateColumn finds the scalar alpha such that the homogenized tile
// column — per-span vertical conductivity kBulk + alpha·shape[viaPlane],
// evaluated as a 1-D series stack with the plane powers injected at their
// device layers — reproduces the target temperature rise. The evaluation is
// monotone decreasing in alpha, so bisection converges; alpha = 0 is
// returned when even the bare stack meets the target (no via needed).
func calibrateColumn(spans []pmSpan, shape, powers []float64, area, target float64) float64 {
	// Crossing heat per span: everything injected at or above it.
	crossing := make([]float64, len(spans))
	devIndex := make([]int, len(powers))
	for i, sp := range spans {
		if sp.qPlane >= 0 {
			devIndex[sp.qPlane] = i
		}
	}
	for i := range spans {
		var sum float64
		for p, q := range powers {
			if devIndex[p] >= i {
				sum += q
			}
		}
		crossing[i] = sum
	}
	eval := func(alpha float64) float64 {
		var dt float64
		for i, sp := range spans {
			k := sp.kBulk
			if sp.viaPlane >= 0 {
				k += alpha * shape[sp.viaPlane]
			}
			dt += crossing[i] * (sp.hi - sp.lo) / (k * area)
		}
		return dt
	}
	if eval(0) <= target {
		return 0
	}
	hi := 1.0
	for eval(hi) > target && hi < 1e9 {
		hi *= 2
	}
	lo := 0.0
	for iter := 0; iter < 80; iter++ {
		mid := 0.5 * (lo + hi)
		if eval(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}
