package chip

import (
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/units"
)

func demoFloorplan(rows, cols int, watts float64) *plan.Floorplan {
	f := &plan.Floorplan{TileSide: 0.75e-3}
	for r := 0; r < rows; r++ {
		var row [][]float64
		for c := 0; c < cols; c++ {
			row = append(row, []float64{watts * 5 / 6, watts / 12, watts / 12})
		}
		f.PlanePowers = append(f.PlanePowers, row)
	}
	return f
}

func uniformCounts(rows, cols, n int) [][]int {
	out := make([][]int, rows)
	for r := range out {
		out[r] = make([]int, cols)
		for c := range out[r] {
			out[r][c] = n
		}
	}
	return out
}

func TestPowerMapUniformMatchesUnitCell(t *testing.T) {
	// A uniform power map with a uniform via allocation is exactly the
	// symmetric-array case: the full-chip 3-D solve must land near the
	// planner's per-tile (adiabatic unit cell) prediction.
	if testing.Short() {
		t.Skip("3-D power-map solve is slow")
	}
	tech := plan.DefaultTechnology()
	const watts = 84.0 / 169
	f := demoFloorplan(4, 4, watts)
	counts := uniformCounts(4, 4, 2)
	sol, err := SolvePowerMap(f, tech, counts, DefaultPowerMapResolution())
	if err != nil {
		t.Fatal(err)
	}
	// Per-tile reference: the same tile solved by Model B on the unit stack.
	s, err := plan.TileStack(f.PlanePowers[0][0], f.TileSide*f.TileSide, tech, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewModelB(100).Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if e := units.RelErr(sol.MaxDT, ref.MaxDT); e > 0.25 {
		t.Errorf("full-chip %g vs unit cell %g differ by %.0f%%", sol.MaxDT, ref.MaxDT, 100*e)
	}
	// Interior uniformity: all tiles within a few percent of each other.
	if e := units.RelErr(sol.TileMaxDT[0][0], sol.TileMaxDT[2][2]); e > 0.05 {
		t.Errorf("uniform map produced non-uniform tiles: %v", sol.TileMaxDT)
	}
}

func TestPowerMapHotspotCoupling(t *testing.T) {
	if testing.Short() {
		t.Skip("3-D power-map solve is slow")
	}
	tech := plan.DefaultTechnology()
	// Hot center tile in a cool neighborhood.
	f := demoFloorplan(3, 3, 0.15)
	for p := range f.PlanePowers[1][1] {
		f.PlanePowers[1][1][p] *= 4
	}
	counts := uniformCounts(3, 3, 1)
	coupled, err := SolvePowerMap(f, tech, counts, DefaultPowerMapResolution())
	if err != nil {
		t.Fatal(err)
	}
	// The planner's adiabatic tile model for the hot tile alone.
	s, err := plan.TileStack(f.PlanePowers[1][1], f.TileSide*f.TileSide, tech, 1)
	if err != nil {
		t.Fatal(err)
	}
	isolated, err := core.NewModelB(100).Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	// Lateral coupling lets the hot tile shed heat into its neighbors: the
	// true hot-tile peak must be LOWER than the adiabatic-tile prediction —
	// the planner is conservative, never optimistic.
	if coupled.TileMaxDT[1][1] >= isolated.MaxDT {
		t.Errorf("full-chip hot tile %g not below adiabatic prediction %g",
			coupled.TileMaxDT[1][1], isolated.MaxDT)
	}
	// And the hot tile is still the hottest on the chip.
	if coupled.TileMaxDT[1][1] <= coupled.TileMaxDT[0][0] {
		t.Errorf("hot tile %g not hotter than corner %g",
			coupled.TileMaxDT[1][1], coupled.TileMaxDT[0][0])
	}
}

func TestPowerMapMoreViasCooler(t *testing.T) {
	if testing.Short() {
		t.Skip("3-D power-map solve is slow")
	}
	tech := plan.DefaultTechnology()
	f := demoFloorplan(2, 2, 0.4)
	res := PowerMapResolution{CellsPerTile: 3, AxialPerLayer: 2, AxialMin: 2, Bulk: 6}
	sparse1, err := SolvePowerMap(f, tech, uniformCounts(2, 2, 1), res)
	if err != nil {
		t.Fatal(err)
	}
	dense4, err := SolvePowerMap(f, tech, uniformCounts(2, 2, 4), res)
	if err != nil {
		t.Fatal(err)
	}
	if dense4.MaxDT >= sparse1.MaxDT {
		t.Errorf("4 vias/tile (%g) not cooler than 1 via/tile (%g)", dense4.MaxDT, sparse1.MaxDT)
	}
}

func TestPowerMapValidation(t *testing.T) {
	tech := plan.DefaultTechnology()
	f := demoFloorplan(2, 2, 0.4)
	res := DefaultPowerMapResolution()
	if _, err := SolvePowerMap(f, tech, uniformCounts(1, 2, 1), res); err == nil {
		t.Error("wrong counts rows accepted")
	}
	if _, err := SolvePowerMap(f, tech, [][]int{{1, 1}, {1}}, res); err == nil {
		t.Error("ragged counts accepted")
	}
	bad := uniformCounts(2, 2, 1)
	bad[0][0] = -1
	if _, err := SolvePowerMap(f, tech, bad, res); err == nil {
		t.Error("negative count accepted")
	}
	over := uniformCounts(2, 2, 1)
	over[0][0] = 1000 // via area exceeds the tile
	if _, err := SolvePowerMap(f, tech, over, res); err == nil {
		t.Error("over-dense tile accepted")
	}
	if _, err := SolvePowerMap(f, tech, uniformCounts(2, 2, 1), PowerMapResolution{}); err == nil {
		t.Error("zero resolution accepted")
	}
}
