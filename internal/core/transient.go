package core

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/stack"
)

// TransientSpec configures a transient (step-power) simulation: the heat
// sources switch on at t = 0 with the stack at the heat-sink temperature,
// and the network integrates forward with the implicit Euler method.
type TransientSpec struct {
	// Dt is the time step (s).
	Dt float64
	// Steps is the number of steps; the simulated horizon is Dt·Steps.
	Steps int
}

// Validate checks the specification.
func (ts TransientSpec) Validate() error {
	if ts.Dt <= 0 {
		return fmt.Errorf("core: transient step %g must be positive", ts.Dt)
	}
	if ts.Steps < 1 {
		return fmt.Errorf("core: transient needs at least 1 step, got %d", ts.Steps)
	}
	return nil
}

// TransientResult is the time response of a TTSV model to a power step.
type TransientResult struct {
	// Model names the producing model.
	Model string
	// Times lists the simulated instants (s).
	Times []float64
	// TopDT is the top plane's temperature rise at each instant (K) — the
	// transient counterpart of Result.MaxDT.
	TopDT []float64
	// FinalDT is the last sample of TopDT.
	FinalDT float64
	// SettlingTime is the first time the top plane stays within 5% of its
	// final value; Settled is false when the horizon was too short.
	SettlingTime float64
	// Settled reports whether the 5% band was reached before the horizon.
	Settled bool
}

// transientFromNetwork runs the shared integration and extraction.
func transientFromNetwork(model string, net *netlist.Network, top netlist.NodeID, spec TransientSpec) (*TransientResult, error) {
	sol, err := net.SolveTransient(spec.Dt, spec.Steps, nil)
	if err != nil {
		return nil, fmt.Errorf("core: %s transient: %w", model, err)
	}
	times, temps := sol.History(top)
	out := &TransientResult{
		Model:   model,
		Times:   times,
		TopDT:   temps,
		FinalDT: temps[len(temps)-1],
	}
	out.SettlingTime, out.Settled = sol.SettlingTime(top, 0.05)
	return out, nil
}

// SolveTransient simulates the stack's step response with Model A's network.
// Each node carries the thermal mass of the structure it lumps (plane bulk,
// via column, first-plane substrate), so the response exposes the stack's
// dominant thermal time constants — an extension beyond the paper's
// steady-state scope, built on the same networks.
func (m ModelA) SolveTransient(s *stack.Stack, spec TransientSpec) (*TransientResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	res, rs, err := Resistances(s, m.Coeffs)
	if err != nil {
		return nil, err
	}
	net, nodes, err := buildModelANetwork(s, res, rs)
	if err != nil {
		return nil, err
	}
	return transientFromNetwork(m.Name(), net, nodes.surround[len(s.Planes)-1], spec)
}

// SolveTransient simulates the stack's step response with Model B's
// distributed network; segment-resolved masses make it the more faithful
// transient model of the two.
func (m ModelB) SolveTransient(s *stack.Stack, spec TransientSpec) (*TransientResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	net, nodes, err := m.buildNetwork(s)
	if err != nil {
		return nil, err
	}
	return transientFromNetwork(m.Name(), net, nodes.planeTop[len(nodes.planeTop)-1], spec)
}
