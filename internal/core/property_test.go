package core

import (
	"testing"
	"testing/quick"

	"repro/internal/stack"
	"repro/internal/units"
)

// randomBlock derives a valid block geometry from quick-check seed bytes,
// spanning the paper's parameter ranges.
func randomBlock(seed int64) (*stack.Stack, bool) {
	pick := func(shift uint, lo, hi float64) float64 {
		x := float64((seed>>shift)&0xff) / 255.0
		return lo + (hi-lo)*x
	}
	c := stack.DefaultBlock()
	c.R = units.UM(pick(0, 1, 18))
	c.TL = units.UM(pick(8, 0.3, 3))
	c.TD = units.UM(pick(16, 2, 10))
	c.TSi = units.UM(pick(24, 5, 80))
	c.TB = units.UM(pick(32, 0.5, 4))
	c.ViaCount = 1 + int((seed>>40)&0x3)
	s, err := c.Build()
	if err != nil {
		return nil, false
	}
	return s, true
}

// Property: all three models produce positive, finite, ordered temperatures
// on any valid geometry, and base ≤ every plane.
func TestModelsWellBehavedProperty(t *testing.T) {
	models := []Model{ModelA{Coeffs: PaperBlockCoeffs()}, NewModelB(20), Model1D{}}
	f := func(seed int64) bool {
		s, ok := randomBlock(seed)
		if !ok {
			return true
		}
		for _, m := range models {
			r, err := m.Solve(s)
			if err != nil {
				return false
			}
			if !(r.MaxDT > 0) || r.MaxDT > 1e4 {
				return false
			}
			if !(r.BaseDT > 0) {
				return false
			}
			for _, dt := range r.PlaneDT {
				if dt < r.BaseDT-1e-12 || dt > r.MaxDT+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: increasing k1 (better vertical conduction everywhere) can only
// lower Model A's temperature; increasing k2 (better lateral liner
// conduction) likewise.
func TestModelACoefficientMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		s, ok := randomBlock(seed)
		if !ok {
			return true
		}
		base, err := (ModelA{Coeffs: Coeffs{K1: 1, K2: 1, C1: 1}}).Solve(s)
		if err != nil {
			return false
		}
		hiK1, err := (ModelA{Coeffs: Coeffs{K1: 1.5, K2: 1, C1: 1}}).Solve(s)
		if err != nil {
			return false
		}
		hiK2, err := (ModelA{Coeffs: Coeffs{K1: 1, K2: 1.5, C1: 1}}).Solve(s)
		if err != nil {
			return false
		}
		return hiK1.MaxDT < base.MaxDT && hiK2.MaxDT <= base.MaxDT+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the equal-metal-area cluster transform never makes things worse
// for the lateral-aware models and never changes the 1-D model.
func TestClusterTransformProperty(t *testing.T) {
	f := func(seed int64) bool {
		s, ok := randomBlock(seed)
		if !ok {
			return true
		}
		s1 := s.Clone()
		s1.Via.Count = 1
		s4 := s1.WithViaCount(4)
		if s4.Validate() != nil {
			return true
		}
		a1, err := (ModelA{Coeffs: PaperBlockCoeffs()}).Solve(s1)
		if err != nil {
			return false
		}
		a4, err := (ModelA{Coeffs: PaperBlockCoeffs()}).Solve(s4)
		if err != nil {
			return false
		}
		if a4.MaxDT > a1.MaxDT+1e-12 {
			return false
		}
		d1, err := (Model1D{}).Solve(s1)
		if err != nil {
			return false
		}
		d4, err := (Model1D{}).Solve(s4)
		if err != nil {
			return false
		}
		return units.RelErr(d4.MaxDT, d1.MaxDT) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: adding power to any single plane raises every plane temperature
// (monotone response; the conductance matrix inverse is entrywise positive
// on a connected network).
func TestPowerMonotonicityProperty(t *testing.T) {
	f := func(seed int64, plane uint8) bool {
		s, ok := randomBlock(seed)
		if !ok {
			return true
		}
		m := NewModelB(10)
		base, err := m.Solve(s)
		if err != nil {
			return false
		}
		s2 := s.Clone()
		p := int(plane) % len(s2.Planes)
		s2.Planes[p].DevicePower *= 1.5
		more, err := m.Solve(s2)
		if err != nil {
			return false
		}
		for i := range base.PlaneDT {
			if more.PlaneDT[i] <= base.PlaneDT[i] {
				return false
			}
		}
		return more.MaxDT > base.MaxDT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
