package core

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestNonlinearConstantMaterialsMatchesLinear(t *testing.T) {
	s := fig4Stack(t)
	m := ModelA{Coeffs: PaperBlockCoeffs()}
	linear, err := m.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	nl, iters, err := SolveNonlinear(m, s, 10, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if iters != 2 {
		t.Errorf("constant materials took %d iterations, want 2", iters)
	}
	if units.RelErr(nl.MaxDT, linear.MaxDT) > 1e-12 {
		t.Errorf("nonlinear %g vs linear %g", nl.MaxDT, linear.MaxDT)
	}
}

func TestNonlinearSiliconDegradation(t *testing.T) {
	// Silicon conductivity falls with temperature (~ -0.4%/K near 300 K).
	// A self-consistent solve must therefore run hotter than the linear one.
	s := fig4Stack(t)
	for i := range s.Planes {
		s.Planes[i].Si.TempCoeff = -0.004
		s.Planes[i].Si.RefTemp = 27
	}
	m := ModelA{Coeffs: PaperBlockCoeffs()}
	linear, err := m.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	nl, iters, err := SolveNonlinear(m, s, 25, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if nl.MaxDT <= linear.MaxDT {
		t.Errorf("degrading silicon did not raise ΔT: %g vs %g", nl.MaxDT, linear.MaxDT)
	}
	// The feedback is modest at these temperatures — not a runaway.
	if nl.MaxDT > 1.5*linear.MaxDT {
		t.Errorf("implausible feedback: %g vs %g", nl.MaxDT, linear.MaxDT)
	}
	if iters < 3 {
		t.Errorf("temperature feedback resolved suspiciously fast (%d iterations)", iters)
	}
}

func TestNonlinearWorksWithAllModels(t *testing.T) {
	s := fig4Stack(t)
	for i := range s.Planes {
		s.Planes[i].Si.TempCoeff = -0.003
	}
	for _, m := range []Model{
		ModelA{Coeffs: PaperBlockCoeffs()},
		NewModelB(20),
		Model1D{},
	} {
		nl, _, err := SolveNonlinear(m, s, 25, 1e-8)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if nl.MaxDT <= 0 {
			t.Errorf("%s: ΔT %g", m.Name(), nl.MaxDT)
		}
	}
}

func TestNonlinearDoesNotMutateInput(t *testing.T) {
	s := fig4Stack(t)
	for i := range s.Planes {
		s.Planes[i].Si.TempCoeff = -0.004
	}
	before := s.Planes[1].Si.K
	if _, _, err := SolveNonlinear(ModelA{Coeffs: PaperBlockCoeffs()}, s, 10, 1e-8); err != nil {
		t.Fatal(err)
	}
	if s.Planes[1].Si.K != before {
		t.Error("input stack mutated")
	}
}

func TestNonlinearValidation(t *testing.T) {
	s := fig4Stack(t)
	m := ModelA{Coeffs: PaperBlockCoeffs()}
	if _, _, err := SolveNonlinear(m, s, 0, 1e-8); err == nil {
		t.Error("zero maxIter accepted")
	}
	if _, _, err := SolveNonlinear(m, s, 5, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
	// Propagates model errors.
	if _, _, err := SolveNonlinear(ModelA{}, s, 5, 1e-8); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestNonlinearNonConvergenceReported(t *testing.T) {
	s := fig4Stack(t)
	for i := range s.Planes {
		s.Planes[i].Si.TempCoeff = -0.004
	}
	// One iteration cannot confirm convergence.
	_, _, err := SolveNonlinear(ModelA{Coeffs: PaperBlockCoeffs()}, s, 1, 1e-12)
	if err == nil || !strings.Contains(err.Error(), "converge") {
		t.Fatalf("err = %v, want non-convergence", err)
	}
}
