package core

import (
	"math"
	"testing"

	"repro/internal/stack"
	"repro/internal/units"
)

func solveB(t *testing.T, m ModelB, s *stack.Stack) *Result {
	t.Helper()
	r, err := m.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewModelBPaperPairs(t *testing.T) {
	// Table I uses segment pairs (1,1), (2,20), (10,100), (50,500).
	cases := []struct{ n, wantN1 int }{
		{1, 1}, {20, 2}, {100, 10}, {500, 50}, {1000, 100}, {5, 1},
	}
	for _, c := range cases {
		m := NewModelB(c.n)
		if m.PlaneSegments != c.n || m.Plane1Segments != c.wantN1 {
			t.Errorf("NewModelB(%d) = %+v, want plane1 %d", c.n, m, c.wantN1)
		}
	}
}

func TestModelBName(t *testing.T) {
	if got := NewModelB(100).Name(); got != "B(100)" {
		t.Errorf("Name = %q", got)
	}
}

func TestSplitSegments(t *testing.T) {
	s := splitSegments(1, 4e-6, 45e-6)
	if s.nILD != 1 || s.nSi != 0 {
		t.Errorf("split(1) = %+v", s)
	}
	s = splitSegments(100, 7e-6, 45e-6)
	if s.nILD+s.nSi != 100 || s.nILD < 1 || s.nSi < 1 {
		t.Errorf("split(100) = %+v", s)
	}
	// ILD share should be roughly proportional to thickness: 7/52 of 100 ≈ 13.
	if s.nILD < 8 || s.nILD > 20 {
		t.Errorf("split(100).nILD = %d, expected near 13", s.nILD)
	}
	// Extreme thin ILD still gets one segment.
	s = splitSegments(10, 1e-9, 1e-4)
	if s.nILD != 1 || s.nSi != 9 {
		t.Errorf("split(thin ILD) = %+v", s)
	}
	// Extreme thick ILD leaves one silicon segment.
	s = splitSegments(10, 1e-4, 1e-9)
	if s.nILD != 9 || s.nSi != 1 {
		t.Errorf("split(thick ILD) = %+v", s)
	}
}

func TestModelBUnknownCount(t *testing.T) {
	// 2·n_A + 1 unknowns (the paper's 2·n_A plus the T0 node we keep
	// explicit).
	s := fig4Stack(t)
	m := ModelB{Plane1Segments: 3, PlaneSegments: 10}
	r := solveB(t, m, s)
	wantSegments := 3 + 10 + 10
	if r.Unknowns != 2*wantSegments+1 {
		t.Errorf("unknowns = %d, want %d", r.Unknowns, 2*wantSegments+1)
	}
}

func TestModelBBaseTempEq6(t *testing.T) {
	// All heat still drains through Rs, so T0 = Rs·Σq holds exactly.
	s := fig4Stack(t)
	r := solveB(t, NewModelB(20), s)
	_, rs, err := Resistances(s, UnitCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	if units.RelErr(r.BaseDT, rs*s.TotalPower()) > 1e-9 {
		t.Errorf("T0 = %g, want %g", r.BaseDT, rs*s.TotalPower())
	}
}

func TestModelBConvergesWithSegments(t *testing.T) {
	// Refining the segmentation must converge: successive refinements get
	// closer to the finest result (Table I's premise).
	s := fig4Stack(t)
	ref := solveB(t, NewModelB(800), s).MaxDT
	var prevErr float64
	for i, n := range []int{1, 20, 100, 400} {
		got := solveB(t, NewModelB(n), s).MaxDT
		e := math.Abs(got - ref)
		if i > 0 && e > prevErr*1.05 { // small slack for non-monotone wiggle
			t.Fatalf("segment refinement not converging: err(%d) = %g, previous %g", n, e, prevErr)
		}
		prevErr = e
	}
	if prevErr/ref > 0.02 {
		t.Errorf("B(400) still %g%% from B(800)", 100*prevErr/ref)
	}
}

func TestModelBSingleSegmentNearModelAUnitCoeffs(t *testing.T) {
	// B(1) collapses to one π-segment per plane — the same topology as
	// Model A with k1 = k2 = 1 up to where in the plane the liner attaches.
	// The two must agree within a modest tolerance.
	s := fig4Stack(t)
	b1 := solveB(t, NewModelB(1), s).MaxDT
	a, err := (ModelA{Coeffs: UnitCoeffs()}).Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if units.RelErr(b1, a.MaxDT) > 0.15 {
		t.Errorf("B(1) = %g vs A(unit) = %g differ by more than 15%%", b1, a.MaxDT)
	}
}

func TestModelBLinearInPower(t *testing.T) {
	s := fig4Stack(t)
	r1 := solveB(t, NewModelB(50), s)
	s2 := s.Clone()
	for i := range s2.Planes {
		s2.Planes[i].DevicePower *= 2
		s2.Planes[i].ILDPower *= 2
	}
	r2 := solveB(t, NewModelB(50), s2)
	if units.RelErr(r2.MaxDT, 2*r1.MaxDT) > 1e-8 {
		t.Errorf("doubling power: %g, want %g", r2.MaxDT, 2*r1.MaxDT)
	}
}

func TestModelBPlaneMonotone(t *testing.T) {
	s := fig4Stack(t)
	r := solveB(t, NewModelB(100), s)
	prev := r.BaseDT
	for i, dt := range r.PlaneDT {
		if dt <= prev {
			t.Fatalf("plane %d ΔT %g not above %g", i+1, dt, prev)
		}
		prev = dt
	}
	if r.MaxDT < r.PlaneDT[2] {
		t.Errorf("max ΔT %g below top plane %g", r.MaxDT, r.PlaneDT[2])
	}
}

func TestModelBQualitativeBehaviors(t *testing.T) {
	m := NewModelB(100)
	// Fig. 5: liner thickness raises ΔT.
	thin, err := stack.Fig5Block(units.UM(0.5))
	if err != nil {
		t.Fatal(err)
	}
	thick, err := stack.Fig5Block(units.UM(3))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := solveB(t, m, thin).MaxDT, solveB(t, m, thick).MaxDT; a >= b {
		t.Errorf("liner effect missing: %g vs %g", a, b)
	}
	// Fig. 6: non-monotone in t_Si.
	at := func(tsi float64) float64 {
		s, err := stack.Fig6Block(units.UM(tsi))
		if err != nil {
			t.Fatal(err)
		}
		return solveB(t, m, s).MaxDT
	}
	lo, mid, hi := at(5), at(20), at(80)
	if !(lo > mid && hi > mid) {
		t.Errorf("non-monotone t_Si behavior missing: %g, %g, %g", lo, mid, hi)
	}
	// Fig. 7: cluster split lowers ΔT.
	s1, err := stack.Fig7Block(1)
	if err != nil {
		t.Fatal(err)
	}
	s16, err := stack.Fig7Block(16)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := solveB(t, m, s1).MaxDT, solveB(t, m, s16).MaxDT; b >= a {
		t.Errorf("cluster effect missing: n=1 %g vs n=16 %g", a, b)
	}
}

func TestModelBLargeSystemSparsePath(t *testing.T) {
	// 1000 segments per plane exceeds the netlist dense cutoff and exercises
	// the CG path; results must stay close to a moderate segmentation.
	s := fig4Stack(t)
	big := solveB(t, NewModelB(1000), s).MaxDT
	mid := solveB(t, NewModelB(200), s).MaxDT
	if units.RelErr(big, mid) > 0.02 {
		t.Errorf("B(1000) = %g vs B(200) = %g differ by more than 2%%", big, mid)
	}
}

func TestModelBFivePlanes(t *testing.T) {
	c := stack.DefaultBlock()
	c.NumPlanes = 5
	s, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := solveB(t, NewModelB(40), s)
	if len(r.PlaneDT) != 5 {
		t.Fatalf("PlaneDT = %v", r.PlaneDT)
	}
	prev := r.BaseDT
	for i, dt := range r.PlaneDT {
		if dt <= prev {
			t.Fatalf("plane %d not hotter (%g <= %g)", i+1, dt, prev)
		}
		prev = dt
	}
}

func TestModelBInvalidSegments(t *testing.T) {
	s := fig4Stack(t)
	if _, err := (ModelB{Plane1Segments: 0, PlaneSegments: 10}).Solve(s); err == nil {
		t.Error("zero plane-1 segments accepted")
	}
	if _, err := (ModelB{Plane1Segments: 1, PlaneSegments: -5}).Solve(s); err == nil {
		t.Error("negative segments accepted")
	}
}
