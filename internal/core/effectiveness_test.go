package core

import (
	"math"
	"testing"

	"repro/internal/stack"
	"repro/internal/units"
)

func TestNoViaDTHandComputed(t *testing.T) {
	s := fig4Stack(t)
	got, err := NoViaDT(s)
	if err != nil {
		t.Fatal(err)
	}
	q := s.Planes[0].TotalPower()
	a := s.Footprint
	want := 3 * q * 500e-6 / (130 * a)
	want += 3 * q * (4e-6 / 1.4) / a
	mid := 4e-6/1.4 + 45e-6/130 + 1e-6/0.15
	want += 2 * q * mid / a
	want += 1 * q * mid / a
	if units.RelErr(got, want) > 1e-12 {
		t.Fatalf("NoViaDT = %g, want %g", got, want)
	}
}

func TestNoViaDTRejectsInvalid(t *testing.T) {
	s := fig4Stack(t)
	s.Footprint = -1
	if _, err := NoViaDT(s); err == nil {
		t.Fatal("invalid stack accepted")
	}
}

func TestViaEffectivenessPositive(t *testing.T) {
	s := fig4Stack(t)
	for _, m := range []Model{ModelA{Coeffs: PaperBlockCoeffs()}, NewModelB(50), Model1D{}} {
		e, err := ViaEffectiveness(m, s)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if e.Reduction <= 0 {
			t.Errorf("%s: via does not help (reduction %g)", m.Name(), e.Reduction)
		}
		if e.Fraction <= 0 || e.Fraction >= 1 {
			t.Errorf("%s: fraction %g outside (0,1)", m.Name(), e.Fraction)
		}
		if math.Abs(e.WithoutVia-e.WithVia-e.Reduction) > 1e-12 {
			t.Errorf("%s: inconsistent fields %+v", m.Name(), e)
		}
	}
}

func TestViaEffectivenessGrowsWithRadius(t *testing.T) {
	m := ModelA{Coeffs: PaperBlockCoeffs()}
	var prev float64
	for i, r := range []float64{6, 10, 16, 20} {
		s, err := stack.Fig4Block(units.UM(r))
		if err != nil {
			t.Fatal(err)
		}
		e, err := ViaEffectiveness(m, s)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && e.Reduction <= prev {
			t.Fatalf("reduction did not grow with radius at %g µm: %g then %g", r, prev, e.Reduction)
		}
		prev = e.Reduction
	}
}

func TestViaEffectivenessPropagatesModelErrors(t *testing.T) {
	s := fig4Stack(t)
	if _, err := ViaEffectiveness(ModelA{}, s); err == nil {
		t.Fatal("invalid model accepted")
	}
}
