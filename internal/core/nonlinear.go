package core

import (
	"fmt"
	"math"

	"repro/internal/materials"
	"repro/internal/stack"
)

// SolveNonlinear iterates a model to self-consistency when material
// conductivities depend on temperature (materials.Material.TempCoeff). Each
// pass evaluates every plane's layer conductivities at that plane's last
// solved temperature (absolute, i.e. rise + sink temperature), the via fill
// and liner at the mean plane temperature, re-solves, and repeats until the
// maximum temperature rise changes by less than tol (relative) or maxIter
// passes elapse.
//
// With temperature-independent materials the first pass is already exact and
// the function returns after the second (confirmation) pass. The returned
// int is the number of solves performed.
func SolveNonlinear(m Model, s *stack.Stack, maxIter int, tol float64) (*Result, int, error) {
	if maxIter < 1 {
		return nil, 0, fmt.Errorf("core: nonlinear solve needs maxIter >= 1, got %d", maxIter)
	}
	if tol <= 0 || math.IsNaN(tol) {
		return nil, 0, fmt.Errorf("core: nonlinear solve needs a positive tolerance, got %g", tol)
	}
	work := s.Clone()
	var last *Result
	for iter := 1; iter <= maxIter; iter++ {
		res, err := m.Solve(work)
		if err != nil {
			return nil, iter, err
		}
		if last != nil {
			if math.Abs(res.MaxDT-last.MaxDT) <= tol*(math.Abs(last.MaxDT)+tol) {
				return res, iter, nil
			}
		}
		last = res
		// Re-evaluate conductivities at the solved temperatures.
		var meanDT float64
		for _, dt := range res.PlaneDT {
			meanDT += dt
		}
		meanDT /= float64(len(res.PlaneDT))
		for i := range work.Planes {
			tAbs := s.SinkTemp + res.PlaneDT[i]
			work.Planes[i].Si = updatedAt(s.Planes[i].Si, tAbs)
			work.Planes[i].ILD = updatedAt(s.Planes[i].ILD, tAbs)
			if i > 0 {
				work.Planes[i].Bond = updatedAt(s.Planes[i].Bond, tAbs)
			}
		}
		viaT := s.SinkTemp + meanDT
		work.Via.Fill = updatedAt(s.Via.Fill, viaT)
		work.Via.Liner = updatedAt(s.Via.Liner, viaT)
	}
	return last, maxIter, fmt.Errorf("core: nonlinear solve did not converge in %d iterations (last ΔT %g)",
		maxIter, last.MaxDT)
}

// updatedAt returns a copy of the base material with its conductivity
// evaluated at temperature t. The base (not the previous iterate) supplies
// the temperature law, so every pass re-evaluates from the original data.
func updatedAt(base materials.Material, t float64) materials.Material {
	return base.WithConductivity(base.Conductivity(t))
}
