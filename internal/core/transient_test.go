package core

import (
	"testing"

	"repro/internal/units"
)

// blockSpec returns a horizon comfortably past the block's thermal time
// constants (~ms for the 500 µm substrate).
func blockSpec() TransientSpec {
	return TransientSpec{Dt: 100e-6, Steps: 400} // 40 ms
}

func TestModelATransientReachesSteadyState(t *testing.T) {
	s := fig4Stack(t)
	m := ModelA{Coeffs: PaperBlockCoeffs()}
	static, err := m.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.SolveTransient(s, blockSpec())
	if err != nil {
		t.Fatal(err)
	}
	if units.RelErr(tr.FinalDT, static.MaxDT) > 1e-3 {
		t.Errorf("transient final %g vs steady %g", tr.FinalDT, static.MaxDT)
	}
	if !tr.Settled {
		t.Error("did not settle within 40 ms")
	}
	if tr.SettlingTime <= 0 || tr.SettlingTime > 0.04 {
		t.Errorf("settling time %g s", tr.SettlingTime)
	}
}

func TestModelBTransientReachesSteadyState(t *testing.T) {
	s := fig4Stack(t)
	m := NewModelB(30)
	static, err := m.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.SolveTransient(s, blockSpec())
	if err != nil {
		t.Fatal(err)
	}
	if units.RelErr(tr.FinalDT, static.MaxDT) > 1e-3 {
		t.Errorf("transient final %g vs steady %g", tr.FinalDT, static.MaxDT)
	}
}

func TestTransientMonotoneRise(t *testing.T) {
	s := fig4Stack(t)
	tr, err := (ModelA{Coeffs: PaperBlockCoeffs()}).SolveTransient(s, blockSpec())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for k, dt := range tr.TopDT {
		if dt < prev-1e-12 {
			t.Fatalf("temperature dropped at step %d", k)
		}
		prev = dt
	}
	// Early in the transient the stack is far below steady state.
	if tr.TopDT[0] > 0.5*tr.FinalDT {
		t.Errorf("first step already at %g of final %g — time constants too fast", tr.TopDT[0], tr.FinalDT)
	}
}

func TestTransientModelsAgreeOnTimescale(t *testing.T) {
	// A and B lump the same physical masses, so their settling times must be
	// within a factor ~2 of each other.
	s := fig4Stack(t)
	a, err := (ModelA{Coeffs: UnitCoeffs()}).SolveTransient(s, blockSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewModelB(30).SolveTransient(s, blockSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Settled || !b.Settled {
		t.Fatal("models did not settle")
	}
	ratio := a.SettlingTime / b.SettlingTime
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("settling times diverge: A %g s vs B %g s", a.SettlingTime, b.SettlingTime)
	}
}

func TestTransientBiggerViaSettlesCooler(t *testing.T) {
	// The steady-state radius trend must hold at every transient instant.
	small, err := solveTransientRadius(t, 5)
	if err != nil {
		t.Fatal(err)
	}
	large, err := solveTransientRadius(t, 20)
	if err != nil {
		t.Fatal(err)
	}
	if large.FinalDT >= small.FinalDT {
		t.Errorf("larger via ends hotter: %g vs %g", large.FinalDT, small.FinalDT)
	}
}

func solveTransientRadius(t *testing.T, rUM float64) (*TransientResult, error) {
	t.Helper()
	s, err := fig4At(rUM)
	if err != nil {
		return nil, err
	}
	return (ModelA{Coeffs: PaperBlockCoeffs()}).SolveTransient(s, blockSpec())
}

func TestTransientSpecValidation(t *testing.T) {
	s := fig4Stack(t)
	m := ModelA{Coeffs: PaperBlockCoeffs()}
	if _, err := m.SolveTransient(s, TransientSpec{Dt: 0, Steps: 10}); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := m.SolveTransient(s, TransientSpec{Dt: 1e-3, Steps: 0}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := (ModelA{}).SolveTransient(s, blockSpec()); err == nil {
		t.Error("invalid coefficients accepted")
	}
	if _, err := (ModelB{}).SolveTransient(s, blockSpec()); err == nil {
		t.Error("invalid segmentation accepted")
	}
}
