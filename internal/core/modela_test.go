package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stack"
	"repro/internal/units"
)

func solveA(t *testing.T, s *stack.Stack) *Result {
	t.Helper()
	r, err := (ModelA{Coeffs: PaperBlockCoeffs()}).Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestModelAMatchesTranscribedEquations(t *testing.T) {
	// The topologically assembled network and the literal transcription of
	// eqs. (1)-(6) must agree to solver precision across geometries.
	cases := []func() (*stack.Stack, error){
		func() (*stack.Stack, error) { return stack.Fig4Block(units.UM(1)) },
		func() (*stack.Stack, error) { return stack.Fig4Block(units.UM(10)) },
		func() (*stack.Stack, error) { return stack.Fig5Block(units.UM(3)) },
		func() (*stack.Stack, error) { return stack.Fig6Block(units.UM(5)) },
		func() (*stack.Stack, error) { return stack.Fig6Block(units.UM(80)) },
		func() (*stack.Stack, error) { return stack.Fig7Block(16) },
	}
	for i, mk := range cases {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []Coeffs{UnitCoeffs(), PaperBlockCoeffs(), PaperSystemCoeffs()} {
			net, err := (ModelA{Coeffs: c}).Solve(s)
			if err != nil {
				t.Fatalf("case %d: network: %v", i, err)
			}
			eqs, err := SolveThreePlaneEquations(s, c)
			if err != nil {
				t.Fatalf("case %d: equations: %v", i, err)
			}
			if units.RelErr(net.MaxDT, eqs.MaxDT) > 1e-9 {
				t.Errorf("case %d coeffs %+v: maxΔT %g (network) vs %g (equations)", i, c, net.MaxDT, eqs.MaxDT)
			}
			for p := range net.PlaneDT {
				if units.RelErr(net.PlaneDT[p], eqs.PlaneDT[p]) > 1e-9 {
					t.Errorf("case %d plane %d: %g vs %g", i, p, net.PlaneDT[p], eqs.PlaneDT[p])
				}
			}
			if units.RelErr(net.BaseDT, eqs.BaseDT) > 1e-9 {
				t.Errorf("case %d: base %g vs %g", i, net.BaseDT, eqs.BaseDT)
			}
		}
	}
}

func TestModelABaseTempEq6(t *testing.T) {
	// Eq. (6): T0 = Rs·Σq, independently of everything above.
	s := fig4Stack(t)
	r := solveA(t, s)
	_, rs, err := Resistances(s, PaperBlockCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	want := rs * s.TotalPower()
	if units.RelErr(r.BaseDT, want) > 1e-9 {
		t.Errorf("T0 = %g, want Rs·Σq = %g", r.BaseDT, want)
	}
}

func TestModelATopPlaneHottest(t *testing.T) {
	s := fig4Stack(t)
	r := solveA(t, s)
	if r.MaxDT != r.PlaneDT[len(r.PlaneDT)-1] {
		t.Errorf("max ΔT %g is not the top plane's %g", r.MaxDT, r.PlaneDT[2])
	}
	// Temperatures must increase monotonically with plane index: every
	// plane's heat flows down through the planes below.
	prev := r.BaseDT
	for i, dt := range r.PlaneDT {
		if dt <= prev {
			t.Fatalf("plane %d ΔT %g not above lower level %g", i+1, dt, prev)
		}
		prev = dt
	}
	if r.BaseDT <= 0 {
		t.Errorf("T0 = %g, want positive", r.BaseDT)
	}
}

func TestModelAZeroPower(t *testing.T) {
	s := fig4Stack(t)
	for i := range s.Planes {
		s.Planes[i].DevicePower = 0
		s.Planes[i].ILDPower = 0
	}
	r := solveA(t, s)
	if math.Abs(r.MaxDT) > 1e-12 {
		t.Errorf("ΔT = %g with zero power", r.MaxDT)
	}
}

func TestModelALinearInPower(t *testing.T) {
	s := fig4Stack(t)
	r1 := solveA(t, s)
	s2 := s.Clone()
	for i := range s2.Planes {
		s2.Planes[i].DevicePower *= 3
		s2.Planes[i].ILDPower *= 3
	}
	r3 := solveA(t, s2)
	if units.RelErr(r3.MaxDT, 3*r1.MaxDT) > 1e-9 {
		t.Errorf("tripling power: ΔT %g, want %g", r3.MaxDT, 3*r1.MaxDT)
	}
}

func TestModelASuperposition(t *testing.T) {
	// Solving with only plane i powered and summing must equal the full
	// solve (linearity of the network).
	s := fig4Stack(t)
	full := solveA(t, s)
	sum := make([]float64, len(s.Planes))
	for i := range s.Planes {
		si := s.Clone()
		for j := range si.Planes {
			if j != i {
				si.Planes[j].DevicePower = 0
				si.Planes[j].ILDPower = 0
			}
		}
		part := solveA(t, si)
		for p, dt := range part.PlaneDT {
			sum[p] += dt
		}
	}
	for p := range sum {
		if units.RelErr(sum[p], full.PlaneDT[p]) > 1e-9 {
			t.Errorf("superposition at plane %d: Σ single-plane %g vs full %g", p+1, sum[p], full.PlaneDT[p])
		}
	}
}

func TestModelARadiusMonotone(t *testing.T) {
	// Fig. 4 behavior: larger via, lower ΔT (within a fixed t_Si regime).
	var prev float64
	for i, r := range []float64{6, 8, 10, 14, 20} {
		s, err := stack.Fig4Block(units.UM(r))
		if err != nil {
			t.Fatal(err)
		}
		res := solveA(t, s)
		if i > 0 && res.MaxDT >= prev {
			t.Fatalf("ΔT did not decrease from r=%gµm (%g) to larger radius (%g)", r, prev, res.MaxDT)
		}
		prev = res.MaxDT
	}
}

func TestModelALinerMonotone(t *testing.T) {
	// Fig. 5 behavior: thicker liner, higher ΔT.
	var prev float64
	for i, tl := range []float64{0.5, 1, 1.5, 2, 2.5, 3} {
		s, err := stack.Fig5Block(units.UM(tl))
		if err != nil {
			t.Fatal(err)
		}
		res := solveA(t, s)
		if i > 0 && res.MaxDT <= prev {
			t.Fatalf("ΔT did not increase from t_L=%gµm (%g to %g)", tl, prev, res.MaxDT)
		}
		prev = res.MaxDT
	}
}

func TestModelASiliconNonMonotone(t *testing.T) {
	// Fig. 6 headline behavior: ΔT vs t_Si has an interior minimum — the
	// vertical resistances grow with t_Si while the lateral liner resistance
	// shrinks. The 1-D model (tested elsewhere) is monotone instead.
	var dts []float64
	ticks := []float64{5, 10, 20, 40, 60, 80}
	for _, tsi := range ticks {
		s, err := stack.Fig6Block(units.UM(tsi))
		if err != nil {
			t.Fatal(err)
		}
		dts = append(dts, solveA(t, s).MaxDT)
	}
	if !(dts[0] > dts[2]) {
		t.Errorf("ΔT(5µm)=%g not above ΔT(20µm)=%g", dts[0], dts[2])
	}
	if !(dts[len(dts)-1] > dts[2]) {
		t.Errorf("ΔT(80µm)=%g not above ΔT(20µm)=%g", dts[len(dts)-1], dts[2])
	}
}

func TestModelAClusterMonotoneSaturating(t *testing.T) {
	// Fig. 7 behavior: more (thinner) vias of equal total metal area lower
	// ΔT with diminishing returns.
	var dts []float64
	for _, n := range []int{1, 2, 4, 9, 16} {
		s, err := stack.Fig7Block(n)
		if err != nil {
			t.Fatal(err)
		}
		dts = append(dts, solveA(t, s).MaxDT)
	}
	for i := 1; i < len(dts); i++ {
		if dts[i] >= dts[i-1] {
			t.Fatalf("ΔT did not decrease at cluster step %d: %v", i, dts)
		}
	}
	// Diminishing improvement: the 9->16 gain is smaller than the 1->2 gain.
	if dts[0]-dts[1] <= dts[3]-dts[4] {
		t.Errorf("no saturation: first gain %g, last gain %g", dts[0]-dts[1], dts[3]-dts[4])
	}
}

func TestModelAFivePlanes(t *testing.T) {
	// The model extends to N planes (paper §II end). A 5-plane stack must
	// solve, stay monotone in plane index, and obey eq. (6).
	c := stack.DefaultBlock()
	c.NumPlanes = 5
	s, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := solveA(t, s)
	if len(r.PlaneDT) != 5 {
		t.Fatalf("PlaneDT has %d entries", len(r.PlaneDT))
	}
	prev := r.BaseDT
	for i, dt := range r.PlaneDT {
		if dt <= prev {
			t.Fatalf("plane %d not hotter than below (%g <= %g)", i+1, dt, prev)
		}
		prev = dt
	}
	_, rs, err := Resistances(s, PaperBlockCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	if units.RelErr(r.BaseDT, rs*s.TotalPower()) > 1e-9 {
		t.Errorf("eq. (6) violated for 5 planes")
	}
}

func TestModelATwoPlanes(t *testing.T) {
	c := stack.DefaultBlock()
	c.NumPlanes = 2
	s, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := solveA(t, s)
	if len(r.PlaneDT) != 2 || r.MaxDT <= 0 {
		t.Fatalf("2-plane solve wrong: %+v", r)
	}
}

func TestModelAInvalidInputs(t *testing.T) {
	s := fig4Stack(t)
	if _, err := (ModelA{}).Solve(s); err == nil {
		t.Error("zero-value coefficients accepted")
	}
	bad := s.Clone()
	bad.Planes = bad.Planes[:1]
	if _, err := (ModelA{Coeffs: UnitCoeffs()}).Solve(bad); err == nil {
		t.Error("single-plane stack accepted")
	}
	if _, err := SolveThreePlaneEquations(bad, UnitCoeffs()); err == nil {
		t.Error("equations accepted non-3-plane stack")
	}
}

// Property: for random valid geometries, network and transcription agree and
// produce positive temperatures.
func TestModelAEquationsAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := func(lo, hi float64, bits int64) float64 {
			x := float64((seed>>bits)&0xff) / 255.0
			return lo + (hi-lo)*x
		}
		c := stack.DefaultBlock()
		c.R = units.UM(rnd(1, 20, 0))
		c.TL = units.UM(rnd(0.2, 3, 8))
		c.TD = units.UM(rnd(1, 10, 16))
		c.TSi = units.UM(rnd(5, 80, 24))
		c.TB = units.UM(rnd(0.5, 5, 32))
		s, err := c.Build()
		if err != nil {
			return true // geometry rejected by validation is fine
		}
		a, err := (ModelA{Coeffs: PaperBlockCoeffs()}).Solve(s)
		if err != nil {
			return false
		}
		e, err := SolveThreePlaneEquations(s, PaperBlockCoeffs())
		if err != nil {
			return false
		}
		return a.MaxDT > 0 && units.RelErr(a.MaxDT, e.MaxDT) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestResultString(t *testing.T) {
	r := solveA(t, fig4Stack(t))
	s := r.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String() = %q", s)
	}
}
