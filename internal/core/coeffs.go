// Package core implements the paper's contribution: the compact analytical
// TTSV thermal model (Model A, paper §II), the distributed π-segment model
// (Model B, §III), the traditional 1-D baseline the paper compares against,
// and the equal-metal-area cluster transform (§IV-D).
//
// All models consume a stack.Stack and report steady-state temperature rise
// above the heat sink. Temperatures are obtained by solving the nodal
// heat-balance (KCL) equations of a thermal resistive network; heat flow is
// the analogue of electrical current and temperature of voltage.
package core

import (
	"fmt"
	"math"
)

// Coeffs holds the fitting coefficients of Model A. The lateral heat flow
// within a plane is richer than the three discrete paths of the compact
// network, so the paper calibrates two coefficients against a reference FEM
// simulation: k1 scales the vertical conductances (eqs. (7)-(16)) and k2 the
// lateral liner conductances (eqs. (9), (12), (15)). C1 is the additional
// spreading coefficient c_{1,2} the paper introduces for the DRAM-µP case
// study (Fig. 8 caption); it boosts the first plane's surroundings
// conductance to account for the lateral spreading a thick first substrate
// provides right above the heat sink. C1 = 1 disables it.
type Coeffs struct {
	K1 float64
	K2 float64
	C1 float64
}

// UnitCoeffs returns the identity coefficients (k1 = k2 = 1) used by
// Model B, which by construction needs no fitting.
func UnitCoeffs() Coeffs { return Coeffs{K1: 1, K2: 1, C1: 1} }

// PaperBlockCoeffs returns the coefficients the paper uses for all the
// 100 µm × 100 µm block experiments (Figs. 4-7): k1 = 1.3, k2 = 0.55.
func PaperBlockCoeffs() Coeffs { return Coeffs{K1: 1.3, K2: 0.55, C1: 1} }

// PaperSystemCoeffs returns the coefficients of the DRAM-µP case study
// (§IV-E, Fig. 8): k1 = 1.6, k2 = 0.8, c_{1,2} = 3.5.
func PaperSystemCoeffs() Coeffs { return Coeffs{K1: 1.6, K2: 0.8, C1: 3.5} }

// Validate reports an error for non-physical coefficients.
func (c Coeffs) Validate() error {
	if c.K1 <= 0 || math.IsNaN(c.K1) || math.IsInf(c.K1, 0) {
		return fmt.Errorf("core: coefficient k1 = %g must be positive and finite", c.K1)
	}
	if c.K2 <= 0 || math.IsNaN(c.K2) || math.IsInf(c.K2, 0) {
		return fmt.Errorf("core: coefficient k2 = %g must be positive and finite", c.K2)
	}
	if c.C1 <= 0 || math.IsNaN(c.C1) || math.IsInf(c.C1, 0) {
		return fmt.Errorf("core: coefficient c1 = %g must be positive and finite", c.C1)
	}
	return nil
}
