package core

import (
	"fmt"
	"math"

	"repro/internal/stack"
)

// PlaneResistances holds the three Model A network elements contributed by
// one plane (paper Fig. 2 and eqs. (7)-(15)).
type PlaneResistances struct {
	// Surround is the vertical thermal resistance of the plane bulk outside
	// the via: R1, R4, R7, ... (K/W).
	Surround float64
	// Metal is the vertical thermal resistance of the via fill column
	// through the plane: R2, R5, R8, ... (K/W).
	Metal float64
	// Liner is the lateral (radial) thermal resistance of the via liner
	// within the plane: R3, R6, R9, ... (K/W). For a via cluster the value
	// follows the equal-metal-area update of eq. (22).
	Liner float64
}

// Resistances evaluates the paper's resistance formulas for every plane of
// the stack plus the first-plane substrate resistance R_s (eq. (16)).
// The slice is indexed like s.Planes (0 = plane adjacent to the sink).
func Resistances(s *stack.Stack, c Coeffs) ([]PlaneResistances, float64, error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	if err := c.Validate(); err != nil {
		return nil, 0, err
	}
	v := s.Via
	area := s.SurroundArea()
	metalArea := v.MetalArea()
	n := float64(v.EffectiveCount())
	rn := v.SplitRadius()
	kL := v.Liner.K
	kf := v.Fill.K

	out := make([]PlaneResistances, len(s.Planes))
	for i, p := range s.Planes {
		kSi, kD, kb := p.Si.K, p.ILD.K, p.Bond.K
		// Vertical path lengths weighted by conductivity (Σ t/k).
		var vertical float64
		switch i {
		case 0:
			// Eq. (7): ILD plus the via extension's worth of silicon.
			vertical = p.ILDThickness/kD + v.Extension/kSi
		default:
			// Eqs. (10) and (13): ILD, substrate and bond below.
			vertical = p.ILDThickness/kD + p.SiThickness/kSi + p.BondThickness/kb
		}
		h := s.ColumnHeight(i)
		k1 := c.K1
		surround := vertical / (k1 * area)
		if i == 0 {
			// The case-study spreading coefficient c_{1,2} applies to the
			// first plane, whose thick substrate sits directly on the sink.
			surround /= c.C1
		}
		// Eqs. (8), (11), (14): the fill column. The cluster transform keeps
		// the total metal area constant, so Metal is independent of n.
		metal := h / (k1 * kf * metalArea)
		// Eqs. (9), (12), (15) generalized by eq. (22) to n split vias:
		// R_L = ln((r_n + t_L)/r_n) / (2 n π k2 kL H).
		liner := math.Log((rn+v.LinerThickness)/rn) / (2 * n * math.Pi * c.K2 * kL * h)
		out[i] = PlaneResistances{Surround: surround, Metal: metal, Liner: liner}
	}
	// Eq. (16): the first plane's bulk substrate below the via tip.
	p0 := s.Planes[0]
	rs := (p0.SiThickness - v.Extension) / (c.K1 * p0.Si.K * s.Footprint)
	if rs <= 0 {
		return nil, 0, fmt.Errorf("core: non-positive substrate resistance R_s = %g (t_Si1 = %g, l_ext = %g)",
			rs, p0.SiThickness, v.Extension)
	}
	return out, rs, nil
}
