package core

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/stack"
)

// SolveThreePlaneEquations solves Model A for a three-plane stack by a
// literal transcription of the paper's KCL equations (1)-(6) into a 5×5
// linear system in T1..T5 (T0 follows directly from eq. (6)).
//
// It is an intentionally independent implementation of the same model as
// ModelA.Solve — the latter assembles the network topologically — and exists
// as a cross-check; library users should prefer ModelA, which handles any
// plane count.
func SolveThreePlaneEquations(s *stack.Stack, c Coeffs) (*Result, error) {
	if len(s.Planes) != 3 {
		return nil, fmt.Errorf("core: the transcribed equations cover exactly 3 planes, stack has %d", len(s.Planes))
	}
	res, rs, err := Resistances(s, c)
	if err != nil {
		return nil, err
	}
	r1, r2, r3 := res[0].Surround, res[0].Metal, res[0].Liner
	r4, r5, r6 := res[1].Surround, res[1].Metal, res[1].Liner
	r7, r89 := res[2].Surround, res[2].Metal+res[2].Liner

	q1 := s.Planes[0].TotalPower()
	q2 := s.Planes[1].TotalPower()
	q3 := s.Planes[2].TotalPower()

	// Eq. (6): all heat drains through R_s.
	t0 := rs * (q1 + q2 + q3)

	// Unknown vector x = [T1, T2, T3, T4, T5].
	g := linalg.NewMatrix(5, 5)
	b := make([]float64, 5)

	// Eq. (4): q1 + (T3-T1)/R4 = (T1-T2)/R3 + (T1-T0)/R1
	g.Add(0, 0, 1/r4+1/r3+1/r1)
	g.Add(0, 2, -1/r4)
	g.Add(0, 1, -1/r3)
	b[0] = q1 + t0/r1

	// Eq. (5): (T1-T2)/R3 + (T4-T2)/R5 = (T2-T0)/R2
	g.Add(1, 1, 1/r3+1/r5+1/r2)
	g.Add(1, 0, -1/r3)
	g.Add(1, 3, -1/r5)
	b[1] = t0 / r2

	// Eq. (2): q2 + (T5-T3)/R7 = (T3-T4)/R6 + (T3-T1)/R4
	g.Add(2, 2, 1/r7+1/r6+1/r4)
	g.Add(2, 4, -1/r7)
	g.Add(2, 3, -1/r6)
	g.Add(2, 0, -1/r4)
	b[2] = q2

	// Eq. (3): (T3-T4)/R6 + (T5-T4)/(R8+R9) = (T4-T2)/R5
	g.Add(3, 3, 1/r6+1/r89+1/r5)
	g.Add(3, 2, -1/r6)
	g.Add(3, 4, -1/r89)
	g.Add(3, 1, -1/r5)
	b[3] = 0

	// Eq. (1): q3 = (T5-T3)/R7 + (T5-T4)/(R8+R9)
	g.Add(4, 4, 1/r7+1/r89)
	g.Add(4, 2, -1/r7)
	g.Add(4, 3, -1/r89)
	b[4] = q3

	x, err := linalg.Solve(g, b)
	if err != nil {
		return nil, fmt.Errorf("core: three-plane equations: %w", err)
	}
	out := &Result{
		Model:    "A(eqs)",
		PlaneDT:  []float64{x[0], x[2], x[4]},
		BaseDT:   t0,
		Unknowns: 5,
	}
	out.MaxDT = t0
	for _, t := range x {
		if t > out.MaxDT {
			out.MaxDT = t
		}
	}
	return out, nil
}
