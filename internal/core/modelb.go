package core

import (
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/stack"
)

// ModelB is the paper's distributed TTSV model (§III, Fig. 3). Each plane is
// sliced into π-segments — n_D in the ILD sub-layer and n_S in the silicon
// sub-layer — each carrying a vertical surroundings resistor, a vertical via
// fill resistor R_M/n and a lateral liner resistor n·R_L (eq. (21)). No
// fitting coefficients are used: the distributed lateral coupling itself
// captures the multi-dimensional heat flow that Model A's k1/k2 absorb.
//
// The resulting 2·n_A node system (eq. (19)) is assembled as a thermal
// network and solved; accuracy rises with the segment count at increasing
// solve cost (paper Table I).
type ModelB struct {
	// Plane1Segments is the segment count of the first plane, whose via
	// column only spans the ILD plus the extension l_ext (its thick
	// substrate is the lumped R_s).
	Plane1Segments int
	// PlaneSegments is the per-plane segment count n_j of every other plane,
	// split between ILD and silicon proportionally to thickness.
	PlaneSegments int
}

// NewModelB returns a Model B instance with the paper's segment pairing:
// for "Model B (n)" the paper uses n segments in planes 2..N and n/10
// (at least 1) in the first plane — (1,1), (2,20), (10,100), (50,500).
func NewModelB(n int) ModelB {
	n1 := n / 10
	if n1 < 1 {
		n1 = 1
	}
	return ModelB{Plane1Segments: n1, PlaneSegments: n}
}

// Name implements Model.
func (m ModelB) Name() string { return fmt.Sprintf("B(%d)", m.PlaneSegments) }

// segmentation describes how one plane is sliced.
type segmentation struct {
	nILD, nSi int
}

// splitSegments divides n segments between the ILD and silicon sub-layers of
// a plane proportionally to their thickness, guaranteeing at least one ILD
// segment (heat is injected there, eq. (20)) and, when n > 1, at least one
// silicon segment.
func splitSegments(n int, tILD, tSi float64) segmentation {
	if n <= 1 {
		return segmentation{nILD: 1, nSi: 0}
	}
	nILD := int(math.Round(float64(n) * tILD / (tILD + tSi)))
	if nILD < 1 {
		nILD = 1
	}
	if nILD > n-1 {
		nILD = n - 1
	}
	return segmentation{nILD: nILD, nSi: n - nILD}
}

// Solve implements Model.
func (m ModelB) Solve(s *stack.Stack) (*Result, error) {
	net, nodes, err := m.buildNetwork(s)
	if err != nil {
		return nil, err
	}
	sol, err := net.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: model B solve: %w", err)
	}
	out := &Result{
		Model:    m.Name(),
		PlaneDT:  make([]float64, len(s.Planes)),
		BaseDT:   sol.Temp(nodes.base),
		Unknowns: 2*nodes.totalSegments + 1,
		Solver:   sol.SolverStats(),
	}
	for i, id := range nodes.planeTop {
		out.PlaneDT[i] = sol.Temp(id)
	}
	_, out.MaxDT = sol.MaxTemp()
	return out, nil
}

// modelBNodes records the node handles of a built Model B network.
type modelBNodes struct {
	sink, base    netlist.NodeID
	planeTop      []netlist.NodeID
	totalSegments int
}

// buildNetwork assembles the distributed π-segment network (Fig. 3) with
// per-node thermal masses attached for transient analysis.
func (m ModelB) buildNetwork(s *stack.Stack) (*netlist.Network, modelBNodes, error) {
	var nodes modelBNodes
	if m.Plane1Segments < 1 || m.PlaneSegments < 1 {
		return nil, nodes, fmt.Errorf("core: model B needs positive segment counts, got (%d, %d)",
			m.Plane1Segments, m.PlaneSegments)
	}
	// Element values follow the Model A formulas with k1 = k2 = 1 (§III).
	res, rs, err := Resistances(s, UnitCoeffs())
	if err != nil {
		return nil, nodes, err
	}

	net := netlist.New()
	sink := net.Node("sink")
	if err := net.Fix(sink, 0); err != nil {
		return nil, nodes, err
	}
	base := net.Node("T0")
	if err := net.AddResistor("Rs", sink, base, rs); err != nil {
		return nil, nodes, err
	}

	area := s.SurroundArea()
	metalArea := s.Via.MetalArea()
	rl := s.Via.SplitRadius() + s.Via.LinerThickness
	linerArea := float64(s.Via.EffectiveCount())*math.Pi*rl*rl - metalArea
	// The first plane's bulk substrate mass sits on T0 (transient only).
	p0 := s.Planes[0]
	if err := net.SetCapacitance(base, (p0.SiThickness-s.Via.Extension)*s.Footprint*p0.Si.C); err != nil {
		return nil, nodes, err
	}
	// Both chains grow upward from T0.
	prevS, prevM := base, base

	planeTop := make([]netlist.NodeID, len(s.Planes))
	totalSegments := 0

	for i, p := range s.Planes {
		var seg segmentation
		if i == 0 {
			seg = segmentation{nILD: m.Plane1Segments, nSi: 0}
		} else {
			seg = splitSegments(m.PlaneSegments, p.ILDThickness, p.SiThickness)
		}
		nj := seg.nILD + seg.nSi
		totalSegments += nj
		metalSeg := res[i].Metal / float64(nj) // R_M/n_j, eq. (21)
		linerSeg := res[i].Liner * float64(nj) // n_j·R_L, eq. (21)

		// Vertical surroundings resistances of the sub-layers (no k1).
		var rILDseg, rSiSeg, rBond float64
		if i == 0 {
			// The first plane's column is ILD + l_ext; slice it uniformly.
			full := (p.ILDThickness/p.ILD.K + s.Via.Extension/p.Si.K) / area
			rILDseg = full / float64(seg.nILD)
		} else {
			rILDseg = p.ILDThickness / (p.ILD.K * area * float64(seg.nILD))
			if seg.nSi > 0 {
				rSiSeg = p.SiThickness / (p.Si.K * area * float64(seg.nSi))
			}
			rBond = p.BondThickness / (p.Bond.K * area)
			if seg.nSi == 0 {
				// Single-segment plane: fold silicon and bond into the one
				// ILD segment so the vertical path is complete.
				rILDseg += (p.SiThickness/p.Si.K + p.BondThickness/p.Bond.K) / area
				rBond = 0
			}
		}

		qPerILD := p.TotalPower() / float64(seg.nILD) // eq. (20)

		// Per-segment thermal masses (used only by transient analysis).
		h := s.ColumnHeight(i)
		metalCap := h / float64(nj) * (metalArea*s.Via.Fill.C + linerArea*s.Via.Liner.C)
		var ildSurrCap, siSurrCap, bondCap float64
		if i == 0 {
			ildSurrCap = area * (p.ILDThickness*p.ILD.C + s.Via.Extension*p.Si.C) / float64(seg.nILD)
		} else {
			ildSurrCap = area * p.ILDThickness * p.ILD.C / float64(seg.nILD)
			bondCap = area * p.BondThickness * p.Bond.C
			if seg.nSi > 0 {
				siSurrCap = area * p.SiThickness * p.Si.C / float64(seg.nSi)
			} else {
				// Single-segment plane: silicon and bond mass fold into the
				// one ILD segment like their resistances do.
				ildSurrCap += area * (p.SiThickness*p.Si.C + p.BondThickness*p.Bond.C)
				bondCap = 0
			}
		}

		// Build segments bottom-to-top: bond (folded into the first silicon
		// segment), silicon, then ILD (paper Fig. 3).
		segIdx := 0
		addSegment := func(vertical, inject, surrCap float64) error {
			segIdx++
			sn := net.Node(fmt.Sprintf("p%d/s%d/T", i+1, segIdx))
			mn := net.Node(fmt.Sprintf("p%d/s%d/M", i+1, segIdx))
			if err := net.AddResistor(fmt.Sprintf("p%d/s%d/vert", i+1, segIdx), prevS, sn, vertical); err != nil {
				return err
			}
			if err := net.AddResistor(fmt.Sprintf("p%d/s%d/metal", i+1, segIdx), prevM, mn, metalSeg); err != nil {
				return err
			}
			if err := net.AddResistor(fmt.Sprintf("p%d/s%d/liner", i+1, segIdx), sn, mn, linerSeg); err != nil {
				return err
			}
			if inject != 0 {
				if err := net.AddSource(fmt.Sprintf("p%d/s%d/q", i+1, segIdx), sn, inject); err != nil {
					return err
				}
			}
			if err := net.SetCapacitance(sn, surrCap); err != nil {
				return err
			}
			if err := net.SetCapacitance(mn, metalCap); err != nil {
				return err
			}
			prevS, prevM = sn, mn
			return nil
		}

		for k := 0; k < seg.nSi; k++ {
			vertical := rSiSeg
			cap := siSurrCap
			if k == 0 {
				vertical += rBond // first silicon segment carries the bond
				cap += bondCap
			}
			if err := addSegment(vertical, 0, cap); err != nil {
				return nil, nodes, err
			}
		}
		for k := 0; k < seg.nILD; k++ {
			if err := addSegment(rILDseg, qPerILD, ildSurrCap); err != nil {
				return nil, nodes, err
			}
		}
		planeTop[i] = prevS
	}

	nodes = modelBNodes{sink: sink, base: base, planeTop: planeTop, totalSegments: totalSegments}

	return net, nodes, nil
}
