package core

import (
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/stack"
)

// ModelA is the paper's compact resistive-network TTSV model (§II, Fig. 2).
// Each plane contributes a vertical surroundings resistor, a vertical via
// fill resistor and a lateral liner resistor; two fitted coefficients absorb
// the difference between this three-path abstraction and the true
// multi-dimensional heat flow. It generalizes to any number of planes ≥ 2
// exactly as the paper describes: plane 1 follows the R1-R3 pattern, the top
// plane the R7-R9 pattern (with fill and liner in series into the plane
// below), and every other plane the R4-R6 pattern.
type ModelA struct {
	// Coeffs are the fitting coefficients; zero value is invalid, use
	// PaperBlockCoeffs/PaperSystemCoeffs/UnitCoeffs or calibrate.
	Coeffs Coeffs
}

// Name implements Model.
func (m ModelA) Name() string { return "A" }

// Solve implements Model by assembling the Fig. 2 network and solving its
// nodal equations (eqs. (1)-(6) for three planes).
func (m ModelA) Solve(s *stack.Stack) (*Result, error) {
	res, rs, err := Resistances(s, m.Coeffs)
	if err != nil {
		return nil, err
	}
	net, nodes, err := buildModelANetwork(s, res, rs)
	if err != nil {
		return nil, err
	}
	sol, err := net.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: model A solve: %w", err)
	}

	n := len(s.Planes)
	out := &Result{
		Model:    m.Name(),
		PlaneDT:  make([]float64, n),
		BaseDT:   sol.Temp(nodes.base),
		Unknowns: net.NumNodes() - 1, // all but the grounded sink
		Solver:   sol.SolverStats(),
	}
	for i, id := range nodes.surround {
		out.PlaneDT[i] = sol.Temp(id)
	}
	_, out.MaxDT = sol.MaxTemp()
	return out, nil
}

// modelANodes records the node ids of the assembled network.
type modelANodes struct {
	sink     netlist.NodeID
	base     netlist.NodeID   // T0
	surround []netlist.NodeID // T1, T3, T5, ... (per plane)
	metal    []netlist.NodeID // T2, T4, ...     (per plane except the top)
}

// buildModelANetwork wires the Fig. 2 topology for any plane count.
func buildModelANetwork(s *stack.Stack, res []PlaneResistances, rs float64) (*netlist.Network, modelANodes, error) {
	n := len(s.Planes)
	net := netlist.New()
	nodes := modelANodes{
		sink:     net.Node("sink"),
		base:     net.Node("T0"),
		surround: make([]netlist.NodeID, n),
		metal:    make([]netlist.NodeID, n-1),
	}
	if err := net.Fix(nodes.sink, 0); err != nil {
		return nil, nodes, err
	}
	if err := net.AddResistor("Rs", nodes.sink, nodes.base, rs); err != nil {
		return nil, nodes, err
	}
	for i := 0; i < n; i++ {
		nodes.surround[i] = net.Node(fmt.Sprintf("plane%d/T", i+1))
		if i < n-1 {
			nodes.metal[i] = net.Node(fmt.Sprintf("plane%d/M", i+1))
		}
	}
	for i := 0; i < n; i++ {
		r := res[i]
		// Nodes below this plane's elements.
		downS, downM := nodes.base, nodes.base
		if i > 0 {
			downS, downM = nodes.surround[i-1], nodes.metal[i-1]
		}
		label := func(kind string) string { return fmt.Sprintf("plane%d/%s", i+1, kind) }
		if i < n-1 {
			if err := net.AddResistor(label("surround"), downS, nodes.surround[i], r.Surround); err != nil {
				return nil, nodes, err
			}
			if err := net.AddResistor(label("metal"), downM, nodes.metal[i], r.Metal); err != nil {
				return nil, nodes, err
			}
			if err := net.AddResistor(label("liner"), nodes.surround[i], nodes.metal[i], r.Liner); err != nil {
				return nil, nodes, err
			}
		} else {
			// Top plane: single node; fill and liner act in series into the
			// metal node of the plane below (R8 + R9 in eq. (1)).
			if err := net.AddResistor(label("surround"), downS, nodes.surround[i], r.Surround); err != nil {
				return nil, nodes, err
			}
			if err := net.AddResistor(label("metal+liner"), downM, nodes.surround[i], r.Metal+r.Liner); err != nil {
				return nil, nodes, err
			}
		}
		if q := s.Planes[i].TotalPower(); q != 0 {
			if err := net.AddSource(label("q"), nodes.surround[i], q); err != nil {
				return nil, nodes, err
			}
		}
	}
	if err := setModelACapacitances(s, net, nodes); err != nil {
		return nil, nodes, err
	}
	return net, nodes, nil
}

// setModelACapacitances lumps each plane's thermal mass onto its network
// nodes for transient analysis: the surroundings volume onto the plane node,
// the via fill (plus liner) column onto the metal node, and the first
// plane's bulk substrate onto T0. Steady-state solves ignore these.
func setModelACapacitances(s *stack.Stack, net *netlist.Network, nodes modelANodes) error {
	v := s.Via
	area := s.SurroundArea()
	metalArea := v.MetalArea()
	rl := v.SplitRadius() + v.LinerThickness
	linerArea := float64(v.EffectiveCount())*math.Pi*rl*rl - metalArea
	p0 := s.Planes[0]
	bulkCap := (p0.SiThickness - v.Extension) * s.Footprint * p0.Si.C
	if err := net.SetCapacitance(nodes.base, bulkCap); err != nil {
		return err
	}
	for i, p := range s.Planes {
		var surrCap float64
		switch i {
		case 0:
			surrCap = area * (p.ILDThickness*p.ILD.C + v.Extension*p.Si.C)
		default:
			surrCap = area * (p.ILDThickness*p.ILD.C + p.SiThickness*p.Si.C + p.BondThickness*p.Bond.C)
		}
		h := s.ColumnHeight(i)
		viaCap := h * (metalArea*v.Fill.C + linerArea*v.Liner.C)
		if i < len(s.Planes)-1 {
			if err := net.SetCapacitance(nodes.surround[i], surrCap); err != nil {
				return err
			}
			if err := net.SetCapacitance(nodes.metal[i], viaCap); err != nil {
				return err
			}
		} else {
			// Single top node carries the whole plane's mass.
			if err := net.SetCapacitance(nodes.surround[i], surrCap+viaCap); err != nil {
				return err
			}
		}
	}
	return nil
}
