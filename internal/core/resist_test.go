package core

import (
	"math"
	"testing"

	"repro/internal/stack"
	"repro/internal/units"
)

// fig4Stack returns the Fig. 4 stack at r = 10 µm.
func fig4Stack(t *testing.T) *stack.Stack {
	t.Helper()
	s, err := stack.Fig4Block(units.UM(10))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestResistancesHandComputed(t *testing.T) {
	// Hand-evaluate eqs. (7)-(16) for the Fig. 4 geometry at r = 10 µm with
	// unit coefficients: t_L = 0.5, t_D = 4, t_b = 1, t_Si = 45, t_Si1 = 500,
	// l_ext = 1 (µm); k_Si = 130, k_D = k_L = 1.4, k_b = 0.15, k_f = 400.
	s := fig4Stack(t)
	res, rs, err := Resistances(s, UnitCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	area := 1e-8 - math.Pi*10.5e-6*10.5e-6

	// R1 = (tD/kD + lext/kSi)/A
	r1 := (4e-6/1.4 + 1e-6/130) / area
	if got := res[0].Surround; units.RelErr(got, r1) > 1e-12 {
		t.Errorf("R1 = %g, want %g", got, r1)
	}
	// R2 = (tD+lext)/(kf π r²)
	r2 := 5e-6 / (400 * math.Pi * 1e-10)
	if got := res[0].Metal; units.RelErr(got, r2) > 1e-12 {
		t.Errorf("R2 = %g, want %g", got, r2)
	}
	// R3 = ln((r+tL)/r)/(2π kL (tD+lext))
	r3 := math.Log(10.5/10.0) / (2 * math.Pi * 1.4 * 5e-6)
	if got := res[0].Liner; units.RelErr(got, r3) > 1e-12 {
		t.Errorf("R3 = %g, want %g", got, r3)
	}
	// R4 = (tD/kD + tSi/kSi + tb/kb)/A
	r4 := (4e-6/1.4 + 45e-6/130 + 1e-6/0.15) / area
	if got := res[1].Surround; units.RelErr(got, r4) > 1e-12 {
		t.Errorf("R4 = %g, want %g", got, r4)
	}
	// R5 = (tD+tSi+tb)/(kf π r²)
	r5 := 50e-6 / (400 * math.Pi * 1e-10)
	if got := res[1].Metal; units.RelErr(got, r5) > 1e-12 {
		t.Errorf("R5 = %g, want %g", got, r5)
	}
	// R7 has the same form as R4 in this symmetric stack.
	if got := res[2].Surround; units.RelErr(got, r4) > 1e-12 {
		t.Errorf("R7 = %g, want %g", got, r4)
	}
	// R8 = (tSi+tb)/(kf π r²): the top plane column excludes the ILD.
	r8 := 46e-6 / (400 * math.Pi * 1e-10)
	if got := res[2].Metal; units.RelErr(got, r8) > 1e-12 {
		t.Errorf("R8 = %g, want %g", got, r8)
	}
	// R9 = ln((r+tL)/r)/(2π kL (tSi+tb))
	r9 := math.Log(10.5/10.0) / (2 * math.Pi * 1.4 * 46e-6)
	if got := res[2].Liner; units.RelErr(got, r9) > 1e-12 {
		t.Errorf("R9 = %g, want %g", got, r9)
	}
	// Rs = (tSi1 - lext)/(kSi A0)
	rsWant := 499e-6 / (130 * 1e-8)
	if units.RelErr(rs, rsWant) > 1e-12 {
		t.Errorf("Rs = %g, want %g", rs, rsWant)
	}
}

func TestResistancesCoefficientScaling(t *testing.T) {
	s := fig4Stack(t)
	unit, rsUnit, err := Resistances(s, UnitCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	fitted, rsFitted, err := Resistances(s, Coeffs{K1: 1.3, K2: 0.55, C1: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range unit {
		if units.RelErr(fitted[i].Surround, unit[i].Surround/1.3) > 1e-12 {
			t.Errorf("plane %d: k1 scaling of Surround wrong", i)
		}
		if units.RelErr(fitted[i].Metal, unit[i].Metal/1.3) > 1e-12 {
			t.Errorf("plane %d: k1 scaling of Metal wrong", i)
		}
		if units.RelErr(fitted[i].Liner, unit[i].Liner/0.55) > 1e-12 {
			t.Errorf("plane %d: k2 scaling of Liner wrong", i)
		}
	}
	if units.RelErr(rsFitted, rsUnit/1.3) > 1e-12 {
		t.Errorf("k1 scaling of Rs wrong: %g vs %g", rsFitted, rsUnit)
	}
}

func TestResistancesC1AffectsOnlyPlane1(t *testing.T) {
	s := fig4Stack(t)
	base, rs0, err := Resistances(s, UnitCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	withC1, rs1, err := Resistances(s, Coeffs{K1: 1, K2: 1, C1: 2})
	if err != nil {
		t.Fatal(err)
	}
	if units.RelErr(withC1[0].Surround, base[0].Surround/2) > 1e-12 {
		t.Error("C1 did not scale plane-1 surroundings")
	}
	if withC1[1].Surround != base[1].Surround || withC1[2].Surround != base[2].Surround {
		t.Error("C1 leaked into other planes")
	}
	if withC1[0].Metal != base[0].Metal || withC1[0].Liner != base[0].Liner {
		t.Error("C1 leaked into metal/liner")
	}
	if rs1 != rs0 {
		t.Error("C1 changed Rs")
	}
}

func TestResistancesClusterTransform(t *testing.T) {
	// Eq. (22): splitting the via into n parts of equal total metal area
	// leaves the vertical resistances unchanged and divides the lateral
	// resistance per the updated log term.
	s := fig4Stack(t)
	base, rs0, err := Resistances(s, UnitCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 9, 16} {
		sn := s.WithViaCount(n)
		res, rsN, err := Resistances(sn, UnitCoeffs())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rsN != rs0 {
			t.Errorf("n=%d: Rs changed", n)
		}
		for i := range res {
			if units.RelErr(res[i].Surround, base[i].Surround) > 1e-12 {
				t.Errorf("n=%d plane %d: Surround changed", n, i)
			}
			if units.RelErr(res[i].Metal, base[i].Metal) > 1e-12 {
				t.Errorf("n=%d plane %d: Metal changed", n, i)
			}
			// R'3 = ln((r0 + tL√n)/r0) / (2nπ k2 kL H); check against the
			// directly evaluated eq. (22).
			h := sn.ColumnHeight(i)
			want := math.Log((s.Via.Radius+s.Via.LinerThickness*math.Sqrt(float64(n)))/s.Via.Radius) /
				(2 * float64(n) * math.Pi * 1.4 * h)
			if units.RelErr(res[i].Liner, want) > 1e-12 {
				t.Errorf("n=%d plane %d: Liner = %g, want %g", n, i, res[i].Liner, want)
			}
			if res[i].Liner >= base[i].Liner {
				t.Errorf("n=%d plane %d: lateral resistance did not decrease", n, i)
			}
		}
	}
}

func TestResistancesLinerMonotoneInTL(t *testing.T) {
	prev := 0.0
	for i, tl := range []float64{0.5, 1, 1.5, 2, 3} {
		s, err := stack.Fig5Block(units.UM(tl))
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := Resistances(s, UnitCoeffs())
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res[0].Liner <= prev {
			t.Fatalf("liner resistance not increasing with t_L at %g µm", tl)
		}
		prev = res[0].Liner
	}
}

func TestResistancesRejectsBadInput(t *testing.T) {
	s := fig4Stack(t)
	if _, _, err := Resistances(s, Coeffs{}); err == nil {
		t.Error("zero coefficients accepted")
	}
	if _, _, err := Resistances(s, Coeffs{K1: -1, K2: 1, C1: 1}); err == nil {
		t.Error("negative k1 accepted")
	}
	if _, _, err := Resistances(s, Coeffs{K1: 1, K2: math.NaN(), C1: 1}); err == nil {
		t.Error("NaN k2 accepted")
	}
	bad := s.Clone()
	bad.Via.Radius = -1
	if _, _, err := Resistances(bad, UnitCoeffs()); err == nil {
		t.Error("invalid stack accepted")
	}
}

func TestCoeffsConstructors(t *testing.T) {
	if c := PaperBlockCoeffs(); c.K1 != 1.3 || c.K2 != 0.55 || c.C1 != 1 {
		t.Errorf("PaperBlockCoeffs = %+v", c)
	}
	if c := PaperSystemCoeffs(); c.K1 != 1.6 || c.K2 != 0.8 || c.C1 != 3.5 {
		t.Errorf("PaperSystemCoeffs = %+v", c)
	}
	if c := UnitCoeffs(); c.K1 != 1 || c.K2 != 1 || c.C1 != 1 {
		t.Errorf("UnitCoeffs = %+v", c)
	}
	for _, c := range []Coeffs{PaperBlockCoeffs(), PaperSystemCoeffs(), UnitCoeffs()} {
		if err := c.Validate(); err != nil {
			t.Errorf("stock coefficients invalid: %v", err)
		}
	}
}

// fig4At builds the Fig. 4 stack at the given radius in µm (test helper).
func fig4At(rUM float64) (*stack.Stack, error) {
	return stack.Fig4Block(units.UM(rUM))
}
