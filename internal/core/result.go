package core

import (
	"context"
	"fmt"

	"repro/internal/sparse"
	"repro/internal/stack"
)

// Result reports a solved steady-state temperature field of one model run.
// All temperatures are rises (K) above the heat-sink reference; add
// stack.SinkTemp for absolute temperatures.
type Result struct {
	// Model names the producing model ("A", "B(100)", "1D", ...).
	Model string
	// MaxDT is the maximum temperature rise anywhere in the model (K) —
	// the quantity every figure of the paper plots.
	MaxDT float64
	// PlaneDT is the temperature rise of each plane's representative node
	// (the surroundings node T1, T3, T5, ... in Model A; the hottest node of
	// the plane in Model B; the device layer in the 1-D model).
	PlaneDT []float64
	// BaseDT is the rise of the common substrate node T0 (eq. (6)).
	BaseDT float64
	// Unknowns is the size of the linear system that was solved.
	Unknowns int
	// Solver reports the iterative linear-solve statistics when the
	// producing model solved its system iteratively (Model B above the
	// sparse cutoff, the FVM reference solver). It is zero for direct
	// solves, whose factorizations have no iteration count.
	Solver sparse.Stats
}

func (r *Result) String() string {
	return fmt.Sprintf("%s: maxΔT = %.3f K (planes %v, base %.3f K, %d unknowns)",
		r.Model, r.MaxDT, r.PlaneDT, r.BaseDT, r.Unknowns)
}

// Model is a TTSV thermal model: given a stack it produces temperatures.
type Model interface {
	// Name identifies the model in tables and figures.
	Name() string
	// Solve computes steady-state temperature rises for the stack.
	Solve(s *stack.Stack) (*Result, error)
}

// ContextSolver is implemented by models whose solve can be interrupted
// mid-flight (e.g. the iterative FVM reference solver). Batch runners prefer
// SolveCtx when available, so cancelling a sweep also stops solves that have
// already started rather than only preventing new ones.
type ContextSolver interface {
	Model
	// SolveCtx is Solve honoring cancellation; it returns an error wrapping
	// ctx.Err() when interrupted.
	SolveCtx(ctx context.Context, s *stack.Stack) (*Result, error)
}

// ReusableSolver is implemented by models that can amortize per-solve setup
// (matrix sparsity patterns, preconditioner hierarchies, solver scratch)
// across the many solves of a batch. Batch runners that hold an instance per
// worker get the cross-solve reuse; callers that ignore the interface get
// the plain Solve path — the results are identical either way, because
// reusable state must never change what a solve computes, only what it
// allocates. Warm starting (seeding an iterative solve from the previous
// solution of the same system shape) is the one exception: it perturbs the
// iterate sequence, so it is a separate opt-in at instance creation.
type ReusableSolver interface {
	Model
	// NewReusable returns a fresh instance owning the reusable state.
	// Instances are not safe for concurrent use: create one per worker.
	NewReusable(warmStart bool) ReusableInstance
}

// ReusableInstance is one worker's stateful handle on a ReusableSolver.
type ReusableInstance interface {
	// SolveCtx is ContextSolver.SolveCtx drawing on the instance's cache.
	SolveCtx(ctx context.Context, s *stack.Stack) (*Result, error)
	// ResetWarm forgets warm-start state, so the next solve of every system
	// shape begins cold. A no-op for instances created without warm start.
	ResetWarm()
	// Close releases held resources (e.g. worker pools). The instance must
	// not be used afterwards.
	Close()
}
