package core

import (
	"testing"

	"repro/internal/stack"
	"repro/internal/units"
)

func solve1D(t *testing.T, s *stack.Stack) *Result {
	t.Helper()
	r, err := (Model1D{}).Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestModel1DName(t *testing.T) {
	if (Model1D{}).Name() != "1D" {
		t.Error("name wrong")
	}
}

func TestModel1DHandComputed(t *testing.T) {
	// Check the series/parallel chain directly against the resistance
	// formulas for the Fig. 4 geometry with only the top plane powered.
	s := fig4Stack(t)
	for i := range s.Planes {
		s.Planes[i].DevicePower = 0
		s.Planes[i].ILDPower = 0
	}
	const q = 0.01
	s.Planes[2].DevicePower = q
	r := solve1D(t, s)

	res, rs, err := Resistances(s, UnitCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	want := rs * q
	for j := 0; j < 3; j++ {
		rp := res[j].Surround * res[j].Metal / (res[j].Surround + res[j].Metal)
		want += rp * q
	}
	if units.RelErr(r.MaxDT, want) > 1e-12 {
		t.Errorf("ΔT = %g, want %g", r.MaxDT, want)
	}
}

func TestModel1DAllPlanesPowered(t *testing.T) {
	// With all planes powered, plane j carries the cumulative heat of the
	// planes at and above it.
	s := fig4Stack(t)
	r := solve1D(t, s)
	res, rs, err := Resistances(s, UnitCoeffs())
	if err != nil {
		t.Fatal(err)
	}
	q := s.Planes[0].TotalPower() // identical planes in this stack
	want := rs * 3 * q
	for j := 0; j < 3; j++ {
		rp := res[j].Surround * res[j].Metal / (res[j].Surround + res[j].Metal)
		want += rp * q * float64(3-j)
	}
	if units.RelErr(r.MaxDT, want) > 1e-12 {
		t.Errorf("ΔT = %g, want %g", r.MaxDT, want)
	}
	if units.RelErr(r.BaseDT, rs*3*q) > 1e-12 {
		t.Errorf("T0 = %g, want %g", r.BaseDT, rs*3*q)
	}
}

func TestModel1DBlindToLiner(t *testing.T) {
	// Fig. 5: the 1-D model cannot see the liner thickness (the only
	// residual coupling is the negligible change in surroundings area).
	thin, err := stack.Fig5Block(units.UM(0.5))
	if err != nil {
		t.Fatal(err)
	}
	thick, err := stack.Fig5Block(units.UM(3))
	if err != nil {
		t.Fatal(err)
	}
	a, b := solve1D(t, thin).MaxDT, solve1D(t, thick).MaxDT
	if units.RelErr(a, b) > 0.015 {
		t.Errorf("1-D model sensitive to liner: %g vs %g", a, b)
	}
}

func TestModel1DBlindToClusterSplit(t *testing.T) {
	// Fig. 7: equal metal area means the 1-D model sees an identical
	// network for every n.
	s1, err := stack.Fig7Block(1)
	if err != nil {
		t.Fatal(err)
	}
	s16, err := stack.Fig7Block(16)
	if err != nil {
		t.Fatal(err)
	}
	a, b := solve1D(t, s1).MaxDT, solve1D(t, s16).MaxDT
	if units.RelErr(a, b) > 1e-12 {
		t.Errorf("1-D model sensitive to cluster split: %g vs %g", a, b)
	}
}

func TestModel1DMonotoneInSiliconThickness(t *testing.T) {
	// Fig. 6: the 1-D model increases monotonically with t_Si — it cannot
	// reproduce the interior minimum Models A/B capture.
	var prev float64
	for i, tsi := range []float64{5, 10, 20, 40, 60, 80} {
		s, err := stack.Fig6Block(units.UM(tsi))
		if err != nil {
			t.Fatal(err)
		}
		dt := solve1D(t, s).MaxDT
		if i > 0 && dt <= prev {
			t.Fatalf("1-D not monotone at t_Si = %g µm: %g then %g", tsi, prev, dt)
		}
		prev = dt
	}
}

func TestModel1DMonotoneInRadius(t *testing.T) {
	// The 1-D model does capture the radius trend (Fig. 4): a wider via
	// column conducts more.
	var prev float64
	for i, r := range []float64{6, 8, 10, 14, 20} {
		s, err := stack.Fig4Block(units.UM(r))
		if err != nil {
			t.Fatal(err)
		}
		dt := solve1D(t, s).MaxDT
		if i > 0 && dt >= prev {
			t.Fatalf("1-D not decreasing with radius at %g µm", r)
		}
		prev = dt
	}
}

func TestModel1DPlaneOrdering(t *testing.T) {
	s := fig4Stack(t)
	r := solve1D(t, s)
	if len(r.PlaneDT) != 3 {
		t.Fatalf("PlaneDT = %v", r.PlaneDT)
	}
	prev := 0.0
	for i, dt := range r.PlaneDT {
		if dt <= prev {
			t.Fatalf("plane %d ΔT %g not above %g", i+1, dt, prev)
		}
		prev = dt
	}
	if r.MaxDT != r.PlaneDT[2] {
		t.Errorf("MaxDT = %g, top plane %g", r.MaxDT, r.PlaneDT[2])
	}
}

func TestModel1DLinearInPower(t *testing.T) {
	s := fig4Stack(t)
	base := solve1D(t, s).MaxDT
	s2 := s.Clone()
	for i := range s2.Planes {
		s2.Planes[i].DevicePower *= 5
		s2.Planes[i].ILDPower *= 5
	}
	if got := solve1D(t, s2).MaxDT; units.RelErr(got, 5*base) > 1e-12 {
		t.Errorf("5x power: %g, want %g", got, 5*base)
	}
}

func TestModel1DCrossoverVsDistributed(t *testing.T) {
	// At high aspect ratio (r = 1 µm) the via column is a poor conductor, so
	// ignoring the lateral path makes the 1-D model overestimate; at r =
	// 20 µm the column dominates and the 1-D model underestimates (the
	// "error is higher when the aspect ratio is high" behavior of Fig. 4).
	mb := NewModelB(100)
	thin, err := stack.Fig4Block(units.UM(1))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := stack.Fig4Block(units.UM(20))
	if err != nil {
		t.Fatal(err)
	}
	bThin, err := mb.Solve(thin)
	if err != nil {
		t.Fatal(err)
	}
	bWide, err := mb.Solve(wide)
	if err != nil {
		t.Fatal(err)
	}
	if d := solve1D(t, thin).MaxDT; d <= bThin.MaxDT {
		t.Errorf("r=1µm: 1-D %g not above distributed %g", d, bThin.MaxDT)
	}
	if d := solve1D(t, wide).MaxDT; d >= bWide.MaxDT {
		t.Errorf("r=20µm: 1-D %g not below distributed %g", d, bWide.MaxDT)
	}
}

func TestModel1DRejectsInvalidStack(t *testing.T) {
	s := fig4Stack(t)
	s.Via.Radius = -1
	if _, err := (Model1D{}).Solve(s); err == nil {
		t.Error("invalid stack accepted")
	}
}

func TestModelInterfaceCompliance(t *testing.T) {
	var models = []Model{
		ModelA{Coeffs: PaperBlockCoeffs()},
		NewModelB(10),
		Model1D{},
	}
	s := fig4Stack(t)
	for _, m := range models {
		r, err := m.Solve(s)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if r.MaxDT <= 0 || len(r.PlaneDT) != 3 {
			t.Errorf("%s: implausible result %+v", m.Name(), r)
		}
	}
}
