package core

import (
	"repro/internal/stack"
)

// Model1D is the traditional single-resistance TTSV model the paper compares
// against ([1], [7]-[9]): within each plane the via fill column and the
// plane bulk form two independent vertical resistors that exchange heat only
// at the plane boundaries — there is no lateral liner path at all. Each
// plane therefore contributes parallel(R_surround, R_metal), evaluated from
// the paper's formulas without fitting coefficients, stacked in series from
// the sink up with each plane's heat injected at its top node.
//
// The model is blind to the liner thickness (Fig. 5) and to splitting a via
// into a cluster of equal total metal area (Fig. 7), and is monotone in the
// substrate thickness (Fig. 6) — the deficiencies the paper demonstrates. It
// overestimates ΔT when most heat would enter the via laterally (the
// DRAM-µP case study, §IV-E) and underestimates it when the lateral path is
// cheap relative to the via column.
type Model1D struct{}

// Name implements Model.
func (Model1D) Name() string { return "1D" }

// Solve implements Model by accumulating the series chain
//
//	ΔT_i = R_s·Σq + Σ_{j ≤ i} parallel(R_surr_j, R_metal_j) · Σ_{k ≥ j} q_k.
func (Model1D) Solve(s *stack.Stack) (*Result, error) {
	res, rs, err := Resistances(s, UnitCoeffs())
	if err != nil {
		return nil, err
	}
	n := len(s.Planes)
	// Heat crossing plane j downwards: powers of planes j..N-1.
	crossing := make([]float64, n)
	var sum float64
	for j := n - 1; j >= 0; j-- {
		sum += s.Planes[j].TotalPower()
		crossing[j] = sum
	}
	out := &Result{
		Model:    "1D",
		PlaneDT:  make([]float64, n),
		BaseDT:   rs * sum,
		Unknowns: n + 1,
	}
	t := out.BaseDT
	for j := 0; j < n; j++ {
		rPar := parallelR(res[j].Surround, res[j].Metal)
		t += rPar * crossing[j]
		out.PlaneDT[j] = t
	}
	out.MaxDT = out.PlaneDT[n-1]
	return out, nil
}

// parallelR combines two thermal resistances in parallel.
func parallelR(a, b float64) float64 {
	return a * b / (a + b)
}
