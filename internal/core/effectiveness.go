package core

import (
	"fmt"

	"repro/internal/stack"
)

// NoViaDT computes the stack's maximum temperature rise with the TTSV
// removed entirely: a plain series stack of full-footprint slabs. This is
// the baseline against which a via's benefit is measured — the motivation
// for inserting TTSVs in the first place.
func NoViaDT(s *stack.Stack) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	n := len(s.Planes)
	crossing := make([]float64, n)
	var sum float64
	for i := n - 1; i >= 0; i-- {
		sum += s.Planes[i].TotalPower()
		crossing[i] = sum
	}
	area := s.Footprint
	p0 := s.Planes[0]
	dt := sum * p0.SiThickness / (p0.Si.K * area)
	for i, p := range s.Planes {
		var vertical float64
		if i == 0 {
			vertical = p.ILDThickness / p.ILD.K
		} else {
			vertical = p.ILDThickness/p.ILD.K + p.SiThickness/p.Si.K + p.BondThickness/p.Bond.K
		}
		dt += crossing[i] * vertical / area
	}
	return dt, nil
}

// Effectiveness reports how much a TTSV design improves the stack:
// the temperature rise without any via, with the via (per the given model),
// and the reduction between them.
type Effectiveness struct {
	// WithoutVia is the no-via baseline maximum rise (K).
	WithoutVia float64
	// WithVia is the modeled maximum rise with the TTSV (K).
	WithVia float64
	// Reduction = WithoutVia - WithVia (K).
	Reduction float64
	// Fraction = Reduction / WithoutVia.
	Fraction float64
}

// ViaEffectiveness evaluates the temperature reduction the stack's TTSV
// buys according to the given model.
func ViaEffectiveness(m Model, s *stack.Stack) (*Effectiveness, error) {
	base, err := NoViaDT(s)
	if err != nil {
		return nil, err
	}
	res, err := m.Solve(s)
	if err != nil {
		return nil, err
	}
	if base <= 0 {
		return nil, fmt.Errorf("core: no-via baseline ΔT %g is not positive", base)
	}
	e := &Effectiveness{
		WithoutVia: base,
		WithVia:    res.MaxDT,
		Reduction:  base - res.MaxDT,
	}
	e.Fraction = e.Reduction / base
	return e, nil
}
