package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22.5")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "name", "value", "alpha", "22.5", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: "value" column starts at the same offset in all rows.
	hdr := strings.Index(lines[1], "value")
	row := strings.Index(lines[3], "1")
	if hdr != row {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf(1.23456789, "s", 42)
	if tb.Rows[0][0] != "1.235" || tb.Rows[0][1] != "s" || tb.Rows[0][2] != "42" {
		t.Errorf("AddRowf = %v", tb.Rows[0])
	}
}

func TestTableRenderRejectsWideRows(t *testing.T) {
	tb := NewTable("", "one")
	tb.AddRow("a", "b")
	if err := tb.Render(&bytes.Buffer{}); err == nil {
		t.Error("over-wide row accepted")
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only") {
		t.Error("short row lost")
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("t", "x", "y")
	tb.AddRow("1", "2")
	tb.AddRow("3", "4,5") // needs quoting
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "x,y\n1,2\n") || !strings.Contains(got, `"4,5"`) {
		t.Errorf("CSV = %q", got)
	}
}

func TestPlotRender(t *testing.T) {
	p := &Plot{
		Title:  "ΔT vs r",
		XLabel: "r [µm]",
		Series: []Series{
			{Name: "A", X: []float64{1, 2, 3}, Y: []float64{10, 5, 2}},
			{Name: "B", X: []float64{1, 2, 3}, Y: []float64{12, 6, 3}},
		},
	}
	var buf bytes.Buffer
	if err := p.Render(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ΔT vs r", "* A", "o B", "r [µm]", "12", "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Error("markers missing")
	}
}

func TestPlotErrors(t *testing.T) {
	p := &Plot{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := p.Render(&bytes.Buffer{}, 40, 10); err == nil {
		t.Error("ragged series accepted")
	}
	empty := &Plot{}
	if err := empty.Render(&bytes.Buffer{}, 40, 10); err == nil {
		t.Error("empty plot accepted")
	}
	ok := &Plot{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1}}}}
	if err := ok.Render(&bytes.Buffer{}, 2, 2); err == nil {
		t.Error("tiny plot area accepted")
	}
	// Degenerate ranges (single point) must still render.
	if err := ok.Render(&bytes.Buffer{}, 20, 5); err != nil {
		t.Errorf("single-point plot failed: %v", err)
	}
}
