// Package report renders experiment results as aligned ASCII tables, CSV,
// and quick ASCII line plots, so the benchmark harness can print the same
// rows and series the paper's tables and figures report.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded, long rows are an error at
// render time.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: each argument is rendered with
// %v except float64, which uses %.4g.
func (t *Table) AddRowf(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	ncol := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > ncol {
			return fmt.Errorf("report: row has %d cells, table has %d columns", len(r), ncol)
		}
	}
	widths := make([]int, ncol)
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	seps := make([]string, ncol)
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV writes the table (header + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		row := make([]string, len(t.Columns))
		copy(row, r)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is one named line of a plot.
type Series struct {
	Name string
	X, Y []float64
}

// Plot is a set of series sharing axes.
type Plot struct {
	Title, XLabel, YLabel string
	Series                []Series
}

// markers assigns one rune per series.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws an ASCII scatter/line chart of the series. Width and height
// are the interior plot dimensions in characters.
func (p *Plot) Render(w io.Writer, width, height int) error {
	if width < 10 || height < 4 {
		return fmt.Errorf("report: plot area %dx%d too small", width, height)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	var npts int
	for _, s := range p.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q has %d x but %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
			npts++
		}
	}
	if npts == 0 {
		return fmt.Errorf("report: plot has no points")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for si, s := range p.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			c := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			r := int(math.Round((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1)))
			grid[height-1-r][c] = m
		}
	}
	if p.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", p.Title); err != nil {
			return err
		}
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.3g", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s  %-*g%*g\n", "", width/2, xmin, width-width/2, xmax); err != nil {
		return err
	}
	var legend []string
	for si, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	if _, err := fmt.Fprintf(w, "%8s  x: %s   %s\n", "", p.XLabel, strings.Join(legend, "  ")); err != nil {
		return err
	}
	return nil
}
