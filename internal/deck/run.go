package deck

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sweep"
)

// Options configures a deck run. Workers feeds the sweep and plan engine
// pools only — never the reference solver's internal parallelism — so
// results are bit-identical for any worker count.
type Options struct {
	// Workers is the engine pool size for .sweep and .plan analyses;
	// values < 1 select GOMAXPROCS. A workers= parameter on the analysis
	// card overrides it.
	Workers int
	// Trace optionally records engine spans as NDJSON.
	Trace *obs.Tracer
	// Reuse optionally supplies reusable solver instances for .op solves —
	// the solve service's warm pool hands each request the instances of
	// previous requests with the same grid topology this way. Reuse never
	// changes results (core.ReusableSolver contract); nil solves from
	// scratch. The provider is consulted from the run's goroutine only.
	Reuse ReuseProvider
	// Sweep controls sharding, checkpoint journaling, resumption and
	// merging of .sweep analyses; the zero value runs sweeps in-process
	// with no journal, exactly as before.
	Sweep SweepControl
}

// SweepControl shards, journals, resumes and merges .sweep analyses. Shard,
// JournalPath, Resume and MergePaths apply to the deck's sweep analysis and
// therefore require the deck to contain exactly one analysis, a sweep
// (RunScenario rejects anything else — a journal file checkpoints one batch).
type SweepControl struct {
	// Shard selects one chain-aligned slice of the sweep's job list; the
	// zero spec runs the whole batch. The report then covers only the
	// shard's fully-contained value rows and carries a shard header; the
	// journal (not the shard report) is the merge artifact.
	Shard sweep.ShardSpec
	// JournalPath, when set, checkpoints every completed point to this
	// NDJSON file, creating or truncating it (appending when Resume is set).
	JournalPath string
	// Resume replays the completed points of an existing JournalPath file
	// instead of re-solving them; a missing or empty file starts fresh. The
	// journal's shard spec must match Shard.
	Resume bool
	// MergePaths, when non-empty, skips solving entirely: the named shard
	// journals are merged (they must jointly cover every point) and the
	// report is rendered from the replayed outcomes — byte-identical to a
	// single-process run of the same deck. Exclusive with Shard/JournalPath.
	MergePaths []string
	// CacheDir, when set, backs the sweep with a persistent on-disk result
	// cache (sweep.OpenDiskCache) behind the in-memory LRU, so points
	// solved by earlier runs — or concurrent shards sharing the directory —
	// are replayed from disk.
	CacheDir string
	// Progress, when set, is called once per completed point. Calls arrive
	// concurrently from worker goroutines; the callback must be safe for
	// concurrent use.
	Progress func(SweepProgress)
}

// active reports whether any per-sweep control (shard/journal/merge) is set.
func (c SweepControl) active() bool {
	return !c.Shard.IsZero() || c.JournalPath != "" || len(c.MergePaths) > 0
}

// SweepProgress is one completed sweep point, as delivered to
// SweepControl.Progress and streamed by the solve service's /sweep endpoint.
type SweepProgress struct {
	// Index is the point's global batch index; Total the batch size.
	Index int `json:"i"`
	Total int `json:"n"`
	// Label is the job label, e.g. "r=1e-05/fvm-ref".
	Label string `json:"label"`
	// MaxDT is the point's peak temperature rise (valid when Err is empty).
	MaxDT float64 `json:"max_dt"`
	// Err carries the point's failure, empty on success.
	Err string `json:"error,omitempty"`
	// FromCache and Replayed report result provenance: memoization cache
	// hit, or replay from a checkpoint journal.
	FromCache bool `json:"from_cache,omitempty"`
	Replayed  bool `json:"replayed,omitempty"`
	// RuntimeNS is the point's solve wall time (0 for cache hits/replays).
	RuntimeNS int64 `json:"runtime_ns,omitempty"`
}

// ReuseProvider supplies per-model reusable solver instances to a run. A
// returned instance must be exclusive to this run for its duration
// (instances are not safe for concurrent use); nil means "solve this model
// from scratch".
type ReuseProvider interface {
	InstanceFor(core.Model) core.ReusableInstance
}

// Result collects the outputs of every analysis card of a deck, in deck
// order.
type Result struct {
	// Title echoes the deck title.
	Title string
	// Analyses holds one entry per analysis card.
	Analyses []AnalysisResult
}

// AnalysisResult is one analysis card's output; the fields matching Kind are
// set.
type AnalysisResult struct {
	// Kind is "op", "tran", "sweep" or "plan".
	Kind string
	// Op holds steady-state results, one per model (Kind "op").
	Op []*core.Result
	// Tran holds the transient trace (Kind "tran").
	Tran *core.TransientResult
	// Sweep fields (Kind "sweep"): DT[i][j] is the max rise at Values[i]
	// under Models[j]. A sharded run sets SweepShard and trims Values/DT to
	// the value rows wholly inside the shard (SweepTotalValues keeps the
	// full batch size); unsharded runs leave both zero, so their reports
	// are byte-identical to before sharding existed.
	SweepParam       string
	SweepValues      []float64
	SweepModels      []string
	SweepDT          [][]float64
	SweepShard       string
	SweepTotalValues int
	// Plan fields (Kind "plan").
	Plan       *plan.Result
	PlanModel  string
	PlanBudget float64
}

// Run lowers the deck and executes every analysis in order.
func Run(ctx context.Context, d *Deck, opt Options) (*Result, error) {
	sc, err := d.Lower()
	if err != nil {
		return nil, err
	}
	return RunScenario(ctx, sc, opt)
}

// RunScenario executes an already-lowered scenario.
func RunScenario(ctx context.Context, sc *Scenario, opt Options) (*Result, error) {
	if opt.Sweep.active() {
		if len(sc.Analyses) != 1 || sc.Analyses[0].Kind != "sweep" {
			return nil, fmt.Errorf("deck: shard/journal/merge controls checkpoint one batch and require a deck with exactly one analysis, a .sweep (this deck has %d)", len(sc.Analyses))
		}
		if len(opt.Sweep.MergePaths) > 0 && (!opt.Sweep.Shard.IsZero() || opt.Sweep.JournalPath != "") {
			return nil, fmt.Errorf("deck: merge mode replays existing journals and cannot be combined with -shard or -journal")
		}
	}
	res := &Result{Title: sc.Title}
	for i := range sc.Analyses {
		a := &sc.Analyses[i]
		ar, err := runAnalysis(ctx, sc, a, opt)
		if err != nil {
			return nil, err
		}
		res.Analyses = append(res.Analyses, *ar)
	}
	return res, nil
}

func runAnalysis(ctx context.Context, sc *Scenario, a *Analysis, opt Options) (*AnalysisResult, error) {
	switch a.Kind {
	case "op":
		return runOp(ctx, sc, a.Op, opt)
	case "tran":
		return runTran(sc, a.Tran)
	case "sweep":
		return runSweep(ctx, a.Sweep, opt)
	case "plan":
		return runPlan(ctx, a.Plan, opt)
	default:
		return nil, fmt.Errorf("deck: unknown analysis kind %q", a.Kind)
	}
}

// runOp solves the stack with each model sequentially. Solves route through
// the reuse provider's instance when one is supplied, else through SolveCtx
// when the model supports cancellation (the FVM reference); the numerical
// path is identical every way.
func runOp(ctx context.Context, sc *Scenario, op *OpAnalysis, opt Options) (*AnalysisResult, error) {
	ar := &AnalysisResult{Kind: "op"}
	for _, m := range op.Models {
		var (
			r   *core.Result
			err error
		)
		var ri core.ReusableInstance
		if opt.Reuse != nil {
			ri = opt.Reuse.InstanceFor(m)
		}
		if ri != nil {
			r, err = ri.SolveCtx(ctx, sc.Stack)
		} else if cs, ok := m.(core.ContextSolver); ok {
			r, err = cs.SolveCtx(ctx, sc.Stack)
		} else {
			r, err = m.Solve(sc.Stack)
		}
		if err != nil {
			return nil, fmt.Errorf("deck: .op model %s: %w", m.Name(), err)
		}
		ar.Op = append(ar.Op, r)
	}
	return ar, nil
}

func runTran(sc *Scenario, tr *TranAnalysis) (*AnalysisResult, error) {
	tm := tr.Model.(transientModel)
	r, err := tm.SolveTransient(sc.Stack, tr.Spec)
	if err != nil {
		return nil, fmt.Errorf("deck: .tran model %s: %w", tr.Model.Name(), err)
	}
	return &AnalysisResult{Kind: "tran", Tran: r}, nil
}

// runSweep fans the value×model grid through the batch engine. The engine
// guarantees bit-identical results for any worker count, so the deck layer
// inherits worker invariance for free; sharding, journaling and resumption
// ride on the engine's chain-aligned partition and checkpoint journal, so
// they inherit the same identity guarantee.
func runSweep(ctx context.Context, sw *SweepAnalysis, opt Options) (*AnalysisResult, error) {
	workers := opt.Workers
	if sw.Workers > 0 {
		workers = sw.Workers
	}
	var jobs sweep.Batch
	for i := range sw.Values {
		for _, m := range sw.Models {
			jobs = jobs.Add(fmt.Sprintf("%s=%s/%s", sw.Param, g(sw.Values[i]), m.Name()), sw.Stacks[i], m)
		}
	}
	ctl := opt.Sweep

	if len(ctl.MergePaths) > 0 {
		outcomes, err := mergeJournalFiles(jobs, ctl.MergePaths)
		if err != nil {
			return nil, err
		}
		return sweepResult(sw, outcomes, 0, sweep.ShardSpec{})
	}

	sopt := sweep.Options{Workers: workers, Trace: opt.Trace}
	if ctl.CacheDir != "" {
		disk, err := sweep.OpenDiskCache(ctl.CacheDir, 0)
		if err != nil {
			return nil, fmt.Errorf("deck: .sweep cache: %w", err)
		}
		sopt.Cache = sweep.NewCacheWithDisk(sweep.DefaultCacheCapacity, disk)
	}
	if ctl.Progress != nil {
		total := len(jobs)
		sopt.Progress = func(i int, oc sweep.Outcome) {
			p := SweepProgress{
				Index:     i,
				Total:     total,
				Label:     oc.Job.Name(),
				FromCache: oc.FromCache,
				Replayed:  oc.Replayed,
				RuntimeNS: oc.Runtime.Nanoseconds(),
			}
			if oc.Err != nil {
				p.Err = oc.Err.Error()
			} else if oc.Result != nil {
				p.MaxDT = oc.Result.MaxDT
			}
			ctl.Progress(p)
		}
	}
	var jf *os.File
	if ctl.JournalPath != "" {
		var err error
		if ctl.Resume {
			sopt.Resume, err = readResume(ctl.JournalPath, jobs, ctl.Shard)
			if err != nil {
				return nil, err
			}
			jf, err = os.OpenFile(ctl.JournalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		} else {
			jf, err = os.Create(ctl.JournalPath)
		}
		if err != nil {
			return nil, fmt.Errorf("deck: .sweep journal: %w", err)
		}
		defer jf.Close()
		sopt.Journal, err = sweep.NewJournal(jf, jobs, ctl.Shard)
		if err != nil {
			return nil, fmt.Errorf("deck: .sweep journal: %w", err)
		}
	}

	outcomes, lo, err := sweep.RunShard(ctx, jobs, ctl.Shard, sopt)
	if err != nil {
		return nil, err
	}
	if sopt.Journal != nil {
		if jerr := sopt.Journal.Err(); jerr != nil {
			return nil, fmt.Errorf("deck: .sweep journal: %w", jerr)
		}
		if err := jf.Close(); err != nil {
			return nil, fmt.Errorf("deck: .sweep journal: %w", err)
		}
	}
	return sweepResult(sw, outcomes, lo, ctl.Shard)
}

// readResume replays the completed points of an existing journal file. A
// missing or empty file is a fresh start, not an error — "resume" is then
// just a journaled run. The journal's recorded shard must match the
// requested one: resuming shard 2/5 from shard 1/5's journal would replay
// the wrong points.
func readResume(path string, jobs []sweep.Job, spec sweep.ShardSpec) (map[int]sweep.Outcome, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("deck: .sweep resume: %w", err)
	}
	if len(data) == 0 {
		return nil, nil
	}
	resume, got, err := sweep.ReadJournal(bytes.NewReader(data), jobs)
	if err != nil {
		return nil, fmt.Errorf("deck: .sweep resume %s: %w", path, err)
	}
	if got != spec {
		return nil, fmt.Errorf("deck: .sweep resume %s: journal is for shard %q, this run is shard %q", path, got.String(), spec.String())
	}
	return resume, nil
}

// mergeJournalFiles merges shard journal files into full-batch outcomes.
func mergeJournalFiles(jobs []sweep.Job, paths []string) ([]sweep.Outcome, error) {
	readers := make([]io.Reader, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("deck: .sweep merge: %w", err)
		}
		readers = append(readers, bytes.NewReader(data))
	}
	outcomes, err := sweep.MergeJournals(jobs, readers...)
	if err != nil {
		return nil, fmt.Errorf("deck: .sweep merge: %w", err)
	}
	return outcomes, nil
}

// sweepResult renders outcomes covering batch indices [lo, lo+len(outcomes))
// into the analysis result. Only value rows whose jobs all fall inside the
// range are reported — a shard boundary can split a value's model row when
// the models-per-value count does not divide the chain length — and a
// sharded result is marked so the report says what it covers. An unsharded
// result (zero spec, lo 0) reports every row, exactly as before.
func sweepResult(sw *SweepAnalysis, outcomes []sweep.Outcome, lo int, spec sweep.ShardSpec) (*AnalysisResult, error) {
	ar := &AnalysisResult{Kind: "sweep", SweepParam: sw.Param}
	for _, m := range sw.Models {
		ar.SweepModels = append(ar.SweepModels, m.Name())
	}
	nm := len(sw.Models)
	hi := lo + len(outcomes)
	for i := range sw.Values {
		if i*nm < lo || (i+1)*nm > hi {
			continue
		}
		row := make([]float64, nm)
		for j := 0; j < nm; j++ {
			o := &outcomes[i*nm+j-lo]
			if o.Err != nil {
				return nil, fmt.Errorf("deck: .sweep job %s: %w", o.Job.Name(), o.Err)
			}
			row[j] = o.Result.MaxDT
		}
		ar.SweepValues = append(ar.SweepValues, sw.Values[i])
		ar.SweepDT = append(ar.SweepDT, row)
	}
	if !spec.IsZero() {
		ar.SweepShard = spec.String()
		ar.SweepTotalValues = len(sw.Values)
	}
	return ar, nil
}

func runPlan(ctx context.Context, pa *PlanAnalysis, opt Options) (*AnalysisResult, error) {
	workers := opt.Workers
	if pa.Workers > 0 {
		workers = pa.Workers
	}
	r, err := plan.PlanWith(pa.Floor, pa.Tech, pa.Budget, pa.Model, plan.Options{Ctx: ctx, Workers: workers, Trace: opt.Trace})
	if err != nil {
		return nil, fmt.Errorf("deck: .plan: %w", err)
	}
	return &AnalysisResult{Kind: "plan", Plan: r, PlanModel: pa.Model.Name(), PlanBudget: pa.Budget}, nil
}

// g renders a float64 with full round-trip precision; every number in the
// text report goes through it so goldens are bitwise-stable.
func g(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// maxTranRows bounds the transient trace in the text report; long traces are
// decimated deterministically, keeping first and last samples.
const maxTranRows = 25

// WriteText renders the result as a deterministic text report: no wall
// times, no solver statistics that vary run to run, every float at full
// precision. The same report is produced for any worker count, which is what
// the golden corpus and the CLI -deck paths compare against.
func (r *Result) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("title: %s\n", r.Title)
	for i := range r.Analyses {
		a := &r.Analyses[i]
		bw.printf("\n")
		switch a.Kind {
		case "op":
			bw.printf(".op\n")
			for _, res := range a.Op {
				bw.printf("  model %s: maxDT=%s K baseDT=%s K unknowns=%d\n",
					res.Model, g(res.MaxDT), g(res.BaseDT), res.Unknowns)
				if len(res.PlaneDT) > 0 {
					parts := make([]string, len(res.PlaneDT))
					for j, dt := range res.PlaneDT {
						parts[j] = g(dt)
					}
					bw.printf("    planeDT: %s\n", strings.Join(parts, " "))
				}
			}
		case "tran":
			t := a.Tran
			bw.printf(".tran model=%s steps=%d\n", t.Model, len(t.Times))
			step := 1
			if len(t.Times) > maxTranRows {
				step = (len(t.Times) + maxTranRows - 1) / maxTranRows
			}
			for j := 0; j < len(t.Times); j += step {
				bw.printf("  t=%s dT=%s\n", g(t.Times[j]), g(t.TopDT[j]))
			}
			if len(t.Times) > 0 && (len(t.Times)-1)%step != 0 {
				last := len(t.Times) - 1
				bw.printf("  t=%s dT=%s\n", g(t.Times[last]), g(t.TopDT[last]))
			}
			bw.printf("  final dT=%s K settled=%v settlingTime=%s s\n", g(t.FinalDT), t.Settled, g(t.SettlingTime))
		case "sweep":
			bw.printf(".sweep %s (%d points)\n", a.SweepParam, len(a.SweepValues))
			if a.SweepShard != "" {
				bw.printf("  shard: %s (%d of %d values)\n", a.SweepShard, len(a.SweepValues), a.SweepTotalValues)
			}
			bw.printf("  models: %s\n", strings.Join(a.SweepModels, " "))
			for j, v := range a.SweepValues {
				parts := make([]string, len(a.SweepDT[j]))
				for k, dt := range a.SweepDT[j] {
					parts[k] = g(dt)
				}
				bw.printf("  %s=%s dT: %s\n", a.SweepParam, g(v), strings.Join(parts, " "))
			}
		case "plan":
			p := a.Plan
			bw.printf(".plan model=%s budget=%s K\n", a.PlanModel, g(a.PlanBudget))
			bw.printf("  vias=%d maxDT=%s K viaArea=%s m2\n", p.TotalVias, g(p.MaxDT), g(p.ViaArea))
			bw.printf("  counts:\n")
			for _, row := range p.Counts {
				parts := make([]string, len(row))
				for k, n := range row {
					parts[k] = strconv.Itoa(n)
				}
				bw.printf("    %s\n", strings.Join(parts, " "))
			}
			bw.printf("  tileDT:\n")
			for _, row := range p.TileDT {
				parts := make([]string, len(row))
				for k, dt := range row {
					parts[k] = g(dt)
				}
				bw.printf("    %s\n", strings.Join(parts, " "))
			}
		}
	}
	return bw.err
}

// errWriter folds write errors so report code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
