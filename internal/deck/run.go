package deck

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sweep"
)

// Options configures a deck run. Workers feeds the sweep and plan engine
// pools only — never the reference solver's internal parallelism — so
// results are bit-identical for any worker count.
type Options struct {
	// Workers is the engine pool size for .sweep and .plan analyses;
	// values < 1 select GOMAXPROCS. A workers= parameter on the analysis
	// card overrides it.
	Workers int
	// Trace optionally records engine spans as NDJSON.
	Trace *obs.Tracer
	// Reuse optionally supplies reusable solver instances for .op solves —
	// the solve service's warm pool hands each request the instances of
	// previous requests with the same grid topology this way. Reuse never
	// changes results (core.ReusableSolver contract); nil solves from
	// scratch. The provider is consulted from the run's goroutine only.
	Reuse ReuseProvider
}

// ReuseProvider supplies per-model reusable solver instances to a run. A
// returned instance must be exclusive to this run for its duration
// (instances are not safe for concurrent use); nil means "solve this model
// from scratch".
type ReuseProvider interface {
	InstanceFor(core.Model) core.ReusableInstance
}

// Result collects the outputs of every analysis card of a deck, in deck
// order.
type Result struct {
	// Title echoes the deck title.
	Title string
	// Analyses holds one entry per analysis card.
	Analyses []AnalysisResult
}

// AnalysisResult is one analysis card's output; the fields matching Kind are
// set.
type AnalysisResult struct {
	// Kind is "op", "tran", "sweep" or "plan".
	Kind string
	// Op holds steady-state results, one per model (Kind "op").
	Op []*core.Result
	// Tran holds the transient trace (Kind "tran").
	Tran *core.TransientResult
	// Sweep fields (Kind "sweep"): DT[i][j] is the max rise at Values[i]
	// under Models[j].
	SweepParam  string
	SweepValues []float64
	SweepModels []string
	SweepDT     [][]float64
	// Plan fields (Kind "plan").
	Plan       *plan.Result
	PlanModel  string
	PlanBudget float64
}

// Run lowers the deck and executes every analysis in order.
func Run(ctx context.Context, d *Deck, opt Options) (*Result, error) {
	sc, err := d.Lower()
	if err != nil {
		return nil, err
	}
	return RunScenario(ctx, sc, opt)
}

// RunScenario executes an already-lowered scenario.
func RunScenario(ctx context.Context, sc *Scenario, opt Options) (*Result, error) {
	res := &Result{Title: sc.Title}
	for i := range sc.Analyses {
		a := &sc.Analyses[i]
		ar, err := runAnalysis(ctx, sc, a, opt)
		if err != nil {
			return nil, err
		}
		res.Analyses = append(res.Analyses, *ar)
	}
	return res, nil
}

func runAnalysis(ctx context.Context, sc *Scenario, a *Analysis, opt Options) (*AnalysisResult, error) {
	switch a.Kind {
	case "op":
		return runOp(ctx, sc, a.Op, opt)
	case "tran":
		return runTran(sc, a.Tran)
	case "sweep":
		return runSweep(ctx, a.Sweep, opt)
	case "plan":
		return runPlan(ctx, a.Plan, opt)
	default:
		return nil, fmt.Errorf("deck: unknown analysis kind %q", a.Kind)
	}
}

// runOp solves the stack with each model sequentially. Solves route through
// the reuse provider's instance when one is supplied, else through SolveCtx
// when the model supports cancellation (the FVM reference); the numerical
// path is identical every way.
func runOp(ctx context.Context, sc *Scenario, op *OpAnalysis, opt Options) (*AnalysisResult, error) {
	ar := &AnalysisResult{Kind: "op"}
	for _, m := range op.Models {
		var (
			r   *core.Result
			err error
		)
		var ri core.ReusableInstance
		if opt.Reuse != nil {
			ri = opt.Reuse.InstanceFor(m)
		}
		if ri != nil {
			r, err = ri.SolveCtx(ctx, sc.Stack)
		} else if cs, ok := m.(core.ContextSolver); ok {
			r, err = cs.SolveCtx(ctx, sc.Stack)
		} else {
			r, err = m.Solve(sc.Stack)
		}
		if err != nil {
			return nil, fmt.Errorf("deck: .op model %s: %w", m.Name(), err)
		}
		ar.Op = append(ar.Op, r)
	}
	return ar, nil
}

func runTran(sc *Scenario, tr *TranAnalysis) (*AnalysisResult, error) {
	tm := tr.Model.(transientModel)
	r, err := tm.SolveTransient(sc.Stack, tr.Spec)
	if err != nil {
		return nil, fmt.Errorf("deck: .tran model %s: %w", tr.Model.Name(), err)
	}
	return &AnalysisResult{Kind: "tran", Tran: r}, nil
}

// runSweep fans the value×model grid through the batch engine. The engine
// guarantees bit-identical results for any worker count, so the deck layer
// inherits worker invariance for free.
func runSweep(ctx context.Context, sw *SweepAnalysis, opt Options) (*AnalysisResult, error) {
	workers := opt.Workers
	if sw.Workers > 0 {
		workers = sw.Workers
	}
	var jobs sweep.Batch
	for i := range sw.Values {
		for _, m := range sw.Models {
			jobs = jobs.Add(fmt.Sprintf("%s=%s/%s", sw.Param, g(sw.Values[i]), m.Name()), sw.Stacks[i], m)
		}
	}
	outcomes, err := sweep.Run(ctx, jobs, sweep.Options{Workers: workers, Trace: opt.Trace})
	if err != nil {
		return nil, err
	}
	ar := &AnalysisResult{Kind: "sweep", SweepParam: sw.Param, SweepValues: sw.Values}
	for _, m := range sw.Models {
		ar.SweepModels = append(ar.SweepModels, m.Name())
	}
	nm := len(sw.Models)
	ar.SweepDT = make([][]float64, len(sw.Values))
	for i := range sw.Values {
		row := make([]float64, nm)
		for j := 0; j < nm; j++ {
			o := &outcomes[i*nm+j]
			if o.Err != nil {
				return nil, fmt.Errorf("deck: .sweep job %s: %w", o.Job.Name(), o.Err)
			}
			row[j] = o.Result.MaxDT
		}
		ar.SweepDT[i] = row
	}
	return ar, nil
}

func runPlan(ctx context.Context, pa *PlanAnalysis, opt Options) (*AnalysisResult, error) {
	workers := opt.Workers
	if pa.Workers > 0 {
		workers = pa.Workers
	}
	r, err := plan.PlanWith(pa.Floor, pa.Tech, pa.Budget, pa.Model, plan.Options{Ctx: ctx, Workers: workers, Trace: opt.Trace})
	if err != nil {
		return nil, fmt.Errorf("deck: .plan: %w", err)
	}
	return &AnalysisResult{Kind: "plan", Plan: r, PlanModel: pa.Model.Name(), PlanBudget: pa.Budget}, nil
}

// g renders a float64 with full round-trip precision; every number in the
// text report goes through it so goldens are bitwise-stable.
func g(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// maxTranRows bounds the transient trace in the text report; long traces are
// decimated deterministically, keeping first and last samples.
const maxTranRows = 25

// WriteText renders the result as a deterministic text report: no wall
// times, no solver statistics that vary run to run, every float at full
// precision. The same report is produced for any worker count, which is what
// the golden corpus and the CLI -deck paths compare against.
func (r *Result) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("title: %s\n", r.Title)
	for i := range r.Analyses {
		a := &r.Analyses[i]
		bw.printf("\n")
		switch a.Kind {
		case "op":
			bw.printf(".op\n")
			for _, res := range a.Op {
				bw.printf("  model %s: maxDT=%s K baseDT=%s K unknowns=%d\n",
					res.Model, g(res.MaxDT), g(res.BaseDT), res.Unknowns)
				if len(res.PlaneDT) > 0 {
					parts := make([]string, len(res.PlaneDT))
					for j, dt := range res.PlaneDT {
						parts[j] = g(dt)
					}
					bw.printf("    planeDT: %s\n", strings.Join(parts, " "))
				}
			}
		case "tran":
			t := a.Tran
			bw.printf(".tran model=%s steps=%d\n", t.Model, len(t.Times))
			step := 1
			if len(t.Times) > maxTranRows {
				step = (len(t.Times) + maxTranRows - 1) / maxTranRows
			}
			for j := 0; j < len(t.Times); j += step {
				bw.printf("  t=%s dT=%s\n", g(t.Times[j]), g(t.TopDT[j]))
			}
			if len(t.Times) > 0 && (len(t.Times)-1)%step != 0 {
				last := len(t.Times) - 1
				bw.printf("  t=%s dT=%s\n", g(t.Times[last]), g(t.TopDT[last]))
			}
			bw.printf("  final dT=%s K settled=%v settlingTime=%s s\n", g(t.FinalDT), t.Settled, g(t.SettlingTime))
		case "sweep":
			bw.printf(".sweep %s (%d points)\n", a.SweepParam, len(a.SweepValues))
			bw.printf("  models: %s\n", strings.Join(a.SweepModels, " "))
			for j, v := range a.SweepValues {
				parts := make([]string, len(a.SweepDT[j]))
				for k, dt := range a.SweepDT[j] {
					parts[k] = g(dt)
				}
				bw.printf("  %s=%s dT: %s\n", a.SweepParam, g(v), strings.Join(parts, " "))
			}
		case "plan":
			p := a.Plan
			bw.printf(".plan model=%s budget=%s K\n", a.PlanModel, g(a.PlanBudget))
			bw.printf("  vias=%d maxDT=%s K viaArea=%s m2\n", p.TotalVias, g(p.MaxDT), g(p.ViaArea))
			bw.printf("  counts:\n")
			for _, row := range p.Counts {
				parts := make([]string, len(row))
				for k, n := range row {
					parts[k] = strconv.Itoa(n)
				}
				bw.printf("    %s\n", strings.Join(parts, " "))
			}
			bw.printf("  tileDT:\n")
			for _, row := range p.TileDT {
				parts := make([]string, len(row))
				for k, dt := range row {
					parts[k] = g(dt)
				}
				bw.printf("    %s\n", strings.Join(parts, " "))
			}
		}
	}
	return bw.err
}

// errWriter folds write errors so report code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
