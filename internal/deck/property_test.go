package deck

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/materials"
	"repro/internal/plan"
	"repro/internal/stack"
	"repro/internal/units"
)

// stripWall zeroes the run-varying solver wall times so results compare by
// value.
func stripWall(r *Result) {
	for i := range r.Analyses {
		for _, op := range r.Analyses[i].Op {
			op.Solver.Wall = 0
		}
	}
}

// runCorpusDeck lowers and runs one corpus deck, returning the scenario too
// so tests can inspect the lowered stack.
func runCorpusDeck(t *testing.T, base string, workers int) (*Scenario, *Result) {
	t.Helper()
	d, err := ParseFile(filepath.Join(corpusDir, base+".ttsv"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := d.Lower()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(context.Background(), sc, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	stripWall(res)
	return sc, res
}

// TestDeckWorkerInvariance runs every corpus deck across worker counts 1, 2,
// 4 and 8 and requires bit-identical results: the deck layer must inherit
// the engines' worker invariance.
func TestDeckWorkerInvariance(t *testing.T) {
	for _, path := range corpusDecks(t) {
		base := strings.TrimSuffix(filepath.Base(path), ".ttsv")
		t.Run(base, func(t *testing.T) {
			t.Parallel()
			_, ref := runCorpusDeck(t, base, 1)
			for _, workers := range []int{2, 4, 8} {
				_, got := runCorpusDeck(t, base, workers)
				if !reflect.DeepEqual(ref, got) {
					t.Errorf("workers=%d result differs from workers=1", workers)
				}
			}
		})
	}
}

// mustBuild unwraps the struct-built paper configurations.
func mustBuild(t *testing.T, build func() (*stack.Stack, error)) *stack.Stack {
	t.Helper()
	s, err := build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fig4 is stack.Fig4Block as a test thunk.
func fig4(r float64) func() (*stack.Stack, error) {
	return func() (*stack.Stack, error) { return stack.Fig4Block(r) }
}

// solveExact solves s with m and strips the wall time.
func solveExact(t *testing.T, m core.Model, s *stack.Stack) *core.Result {
	t.Helper()
	r, err := m.Solve(s)
	if err != nil {
		t.Fatalf("model %s: %v", m.Name(), err)
	}
	r.Solver.Wall = 0
	return r
}

// checkOp compares a deck .op analysis against direct struct-built solves,
// field for field (bitwise on every float).
func checkOp(t *testing.T, ar *AnalysisResult, s *stack.Stack, models []core.Model) {
	t.Helper()
	if ar.Kind != "op" || len(ar.Op) != len(models) {
		t.Fatalf("analysis = %+v, want op with %d models", ar.Kind, len(models))
	}
	for i, m := range models {
		want := solveExact(t, m, s)
		if !reflect.DeepEqual(ar.Op[i], want) {
			t.Errorf("model %s: deck result %+v != struct-built %+v", m.Name(), ar.Op[i], want)
		}
	}
}

// paperOpModels is the model set ".op model=all" selects with default
// coefficients.
func paperOpModels(segments int) []core.Model {
	return []core.Model{
		core.ModelA{Coeffs: core.Coeffs{K1: 1.3, K2: 0.55, C1: 1}},
		core.NewModelB(segments),
		core.Model1D{},
	}
}

func TestDeckOpFig4Baseline(t *testing.T) {
	sc, res := runCorpusDeck(t, "op_fig4_baseline", 1)
	want := mustBuild(t, fig4(units.UM(10)))
	if !reflect.DeepEqual(sc.Stack, want) {
		t.Fatalf("lowered stack differs from stack.Fig4Block(10um):\ndeck:  %+v\nbuilt: %+v", sc.Stack, want)
	}
	checkOp(t, &res.Analyses[0], want, paperOpModels(100))
}

func TestDeckOpReference(t *testing.T) {
	sc, res := runCorpusDeck(t, "op_reference", 1)
	want := mustBuild(t, fig4(units.UM(10)))
	if !reflect.DeepEqual(sc.Stack, want) {
		t.Fatalf("lowered stack differs from stack.Fig4Block(10um)")
	}
	checkOp(t, &res.Analyses[0], want, []core.Model{fem.ReferenceModel{Res: fem.DefaultResolution()}})
}

func TestDeckOpCustomMaterials(t *testing.T) {
	sc, res := runCorpusDeck(t, "op_custom_materials", 1)
	mw := 1e-3
	tungsten, err := materials.Lookup("W")
	if err != nil {
		t.Fatal(err)
	}
	bcb, err := materials.Lookup("BCB")
	if err != nil {
		t.Fatal(err)
	}
	upper := func(dev, ild float64) stack.Plane {
		return stack.Plane{
			SiThickness: units.UM(30), ILDThickness: units.UM(5), BondThickness: units.UM(2),
			Si: materials.Silicon, ILD: materials.SiO2, Bond: bcb,
			DevicePower: dev * mw, ILDPower: ild * mw, DeviceLayerThickness: units.UM(1),
		}
	}
	want := &stack.Stack{
		Footprint: units.UM(100) * units.UM(100),
		Planes: []stack.Plane{
			{
				SiThickness: units.UM(400), ILDThickness: units.UM(5),
				Si: materials.Silicon, ILD: materials.SiO2, Bond: materials.Polyimide,
				DevicePower: 10 * mw, ILDPower: 1 * mw, DeviceLayerThickness: units.UM(1),
			},
			upper(8, 0.8), upper(6, 0.6), upper(4, 0.4),
		},
		Via: stack.TTSV{
			Radius: units.UM(8), LinerThickness: units.UM(1), Extension: units.UM(2),
			Fill: tungsten, Liner: materials.SiO2, Count: 4,
		},
		SinkTemp: 35,
	}
	if err := want.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Stack, want) {
		t.Fatalf("lowered stack differs from hand-built stack:\ndeck:  %+v\nbuilt: %+v", sc.Stack, want)
	}
	checkOp(t, &res.Analyses[0], want, paperOpModels(60))
}

// checkSweep compares a deck .sweep analysis against direct solves of
// struct-built stacks, bitwise.
func checkSweep(t *testing.T, ar *AnalysisResult, stacks []*stack.Stack, values []float64, models []core.Model) {
	t.Helper()
	if ar.Kind != "sweep" {
		t.Fatalf("analysis kind = %q", ar.Kind)
	}
	if !reflect.DeepEqual(ar.SweepValues, values) {
		t.Fatalf("sweep values %v != struct-built %v", ar.SweepValues, values)
	}
	for i, s := range stacks {
		for j, m := range models {
			want := solveExact(t, m, s).MaxDT
			if ar.SweepDT[i][j] != want {
				t.Errorf("point %d model %s: deck %v != struct-built %v", i, m.Name(), ar.SweepDT[i][j], want)
			}
		}
	}
}

func TestDeckSweepLiner(t *testing.T) {
	_, res := runCorpusDeck(t, "sweep_liner", 1)
	var values []float64
	var stacks []*stack.Stack
	for _, tl := range []float64{0.5, 1, 1.5, 2, 2.5, 3} {
		values = append(values, units.UM(tl))
		stacks = append(stacks, mustBuild(t, func() (*stack.Stack, error) { return stack.Fig5Block(units.UM(tl)) }))
	}
	checkSweep(t, &res.Analyses[0], stacks, values, paperOpModels(100))
}

func TestDeckSweepCluster(t *testing.T) {
	_, res := runCorpusDeck(t, "sweep_cluster", 1)
	var values []float64
	var stacks []*stack.Stack
	for _, n := range []int{1, 2, 4, 8, 16} {
		values = append(values, float64(n))
		stacks = append(stacks, mustBuild(t, func() (*stack.Stack, error) { return stack.Fig7Block(n) }))
	}
	model := core.ModelA{Coeffs: core.Coeffs{K1: 1.3, K2: 0.55, C1: 1}}
	checkSweep(t, &res.Analyses[0], stacks, values, []core.Model{model})
}

func TestDeckSweepRadius(t *testing.T) {
	_, res := runCorpusDeck(t, "sweep_radius", 1)
	base := mustBuild(t, fig4(units.UM(10)))
	values := units.Linspace(units.UM(6), units.UM(10), 5)
	var stacks []*stack.Stack
	for _, r := range values {
		s := base.Clone()
		s.Via.Radius = r
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		stacks = append(stacks, s)
	}
	checkSweep(t, &res.Analyses[0], stacks, values, []core.Model{core.NewModelB(100)})
}

func TestDeckTranDVFS(t *testing.T) {
	sc, res := runCorpusDeck(t, "tran_dvfs", 1)
	want := mustBuild(t, fig4(units.UM(10)))
	if !reflect.DeepEqual(sc.Stack, want) {
		t.Fatalf("lowered stack differs from stack.Fig4Block(10um)")
	}
	us := 1e-6
	spec := core.TransientSpec{Dt: 100 * us, Steps: 200}
	exp, err := core.NewModelB(20).SolveTransient(want, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Analyses[0].Tran, exp) {
		t.Errorf("deck transient differs from struct-built run")
	}
}

func TestDeckPlanHotspot(t *testing.T) {
	_, res := runCorpusDeck(t, "plan_hotspot", 1)
	tech := plan.Technology{
		ViaRadius:            units.UM(30),
		LinerThickness:       units.UM(1),
		Extension:            units.UM(1),
		TSi1:                 units.UM(300),
		TSi:                  units.UM(300),
		TD:                   units.UM(20),
		TB:                   units.UM(10),
		NumPlanes:            3,
		MaxDensity:           0.1,
		DeviceLayerThickness: units.UM(1),
		Si:                   materials.Silicon,
		ILD:                  materials.SiO2,
		Bond:                 materials.Polyimide,
		Fill:                 materials.Copper,
		Liner:                materials.SiO2,
	}
	floor := &plan.Floorplan{
		TileSide: units.MM(1),
		PlanePowers: [][][]float64{
			{{0.10, 0.25, 0.20}, {0.15, 0.60, 0.50}, {0.10, 0.20, 0.15}},
			{{0.12, 0.30, 0.25}, {0.18, 0.70, 0.55}, {0.08, 0.15, 0.10}},
		},
	}
	model := core.ModelA{Coeffs: core.Coeffs{K1: 1.6, K2: 0.8, C1: 3.5}}
	exp, err := plan.PlanWith(floor, tech, 15, model, plan.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := &res.Analyses[0]
	if got.Kind != "plan" || !reflect.DeepEqual(got.Plan, exp) {
		t.Errorf("deck plan differs from struct-built plan:\ndeck:  %+v\nbuilt: %+v", got.Plan, exp)
	}
	if got.PlanModel != "A" || got.PlanBudget != 15 {
		t.Errorf("plan metadata = %q/%v", got.PlanModel, got.PlanBudget)
	}
}
