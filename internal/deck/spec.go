package deck

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/mg"
	"repro/internal/sparse"
)

// ModelSpec is the deck-independent model selection shared by analysis cards
// and the solve service's JSON requests: both lower to the same spec and
// build model values through the same code path, so a JSON request and the
// equivalent deck card produce value-identical models (and therefore
// byte-identical reports and shared cache/coalescing keys).
//
// The zero value of every field selects the analysis default; see Models.
type ModelSpec struct {
	// Model selects the models: "a", "b", "1d", "ref", "all" or a comma
	// list, case-insensitive. Empty selects the analysis default.
	Model string `json:"model,omitempty"`
	// Segments is Model B's per-plane segment count; 0 selects 100.
	Segments int `json:"segments,omitempty"`
	// K1, K2, C1 are Model A's fitting coefficients; all three zero selects
	// the analysis default coefficients.
	K1 float64 `json:"k1,omitempty"`
	K2 float64 `json:"k2,omitempty"`
	C1 float64 `json:"c1,omitempty"`
	// Refine uniformly refines the reference resolution; 0 and 1 select the
	// default mesh.
	Refine int `json:"refine,omitempty"`
	// Precond selects the reference solver's preconditioner ("auto",
	// "jacobi", "ssor", "chebyshev", "mg", "none"); empty selects "auto".
	Precond string `json:"precond,omitempty"`
	// RefWorkers is the reference solver's kernel worker count; 0 keeps the
	// solver sequential.
	RefWorkers int `json:"ref_workers,omitempty"`
	// Operator selects the reference solver's matrix representation
	// ("auto", "csr", "stencil"); empty selects "auto", which runs
	// matrix-free whenever the preconditioner allows it. Results are
	// bit-identical either way.
	Operator string `json:"operator,omitempty"`
	// MGHierarchy selects how multigrid coarse levels are built ("auto",
	// "galerkin", "geometric"); empty selects "auto" (Galerkin). The
	// geometric hierarchy re-discretizes coarse stencils directly —
	// markedly cheaper fresh builds — and falls back to Galerkin when the
	// operator is not stencil-structured. Temperatures agree within solver
	// tolerance either way.
	MGHierarchy string `json:"mg_hierarchy,omitempty"`
	// MGPrecision selects the multigrid preconditioner-data storage
	// precision ("auto", "f64", "f32"); empty selects "auto" (f64). "f32"
	// requires the geometric hierarchy. The outer CG stays float64, so
	// reported temperatures stay within solver tolerance.
	MGPrecision string `json:"mg_precision,omitempty"`
}

// Models resolves the spec into concrete model values, substituting defSpec
// and defCoeffs for zero fields. Every construction path — deck cards, JSON
// requests — funnels through here.
func (sp ModelSpec) Models(defSpec string, defCoeffs core.Coeffs) ([]core.Model, error) {
	if sp.Model == "" {
		sp.Model = defSpec
	}
	if sp.Segments == 0 {
		sp.Segments = 100
	}
	if sp.K1 == 0 && sp.K2 == 0 && sp.C1 == 0 {
		sp.K1, sp.K2, sp.C1 = defCoeffs.K1, defCoeffs.K2, defCoeffs.C1
	}
	if sp.Refine == 0 {
		sp.Refine = 1
	}
	if sp.Precond == "" {
		sp.Precond = "auto"
	}
	if sp.Operator == "" {
		sp.Operator = "auto"
	}
	if sp.MGHierarchy == "" {
		sp.MGHierarchy = "auto"
	}
	if sp.MGPrecision == "" {
		sp.MGPrecision = "auto"
	}
	return sp.build()
}

// specError tags a spec validation failure with the offending field so the
// deck reader can re-attach its card position.
type specError struct {
	field string
	msg   string
}

func (e *specError) Error() string { return e.msg }

// build constructs the model values from a fully-populated spec. All
// validation of spec fields lives here; errors are *specError.
func (sp ModelSpec) build() ([]core.Model, error) {
	if sp.Segments < 1 {
		return nil, &specError{"segments", fmt.Sprintf("segments must be >= 1, got %d", sp.Segments)}
	}
	if sp.Refine < 1 {
		return nil, &specError{"refine", fmt.Sprintf("refine must be >= 1, got %d", sp.Refine)}
	}
	res := fem.DefaultResolution()
	res.Workers = sp.RefWorkers
	if sp.Refine > 1 {
		res = res.Refine(sp.Refine)
	}
	pk, err := sparse.ParsePrecond(sp.Precond)
	if err != nil {
		return nil, &specError{"precond", err.Error()}
	}
	res.Precond = pk
	opk, err := fem.ParseOperator(sp.Operator)
	if err != nil {
		return nil, &specError{"operator", err.Error()}
	}
	res.Operator = opk
	hk, err := mg.ParseHierarchy(sp.MGHierarchy)
	if err != nil {
		return nil, &specError{"mg.hierarchy", err.Error()}
	}
	res.Hierarchy = hk
	prk, err := mg.ParsePrecision(sp.MGPrecision)
	if err != nil {
		return nil, &specError{"mg.precision", err.Error()}
	}
	res.Precision = prk
	if prk == mg.PrecisionF32 && hk != mg.HierarchyGeometric {
		return nil, &specError{"mg.precision", "mg.precision=f32 requires mg.hierarchy=geometric"}
	}
	coeffs := core.Coeffs{K1: sp.K1, K2: sp.K2, C1: sp.C1}
	one := func(name string) (core.Model, error) {
		switch name {
		case "a":
			return core.ModelA{Coeffs: coeffs}, nil
		case "b":
			return core.NewModelB(sp.Segments), nil
		case "1d":
			return core.Model1D{}, nil
		case "ref":
			return fem.ReferenceModel{Res: res}, nil
		default:
			return nil, &specError{"model", fmt.Sprintf("unknown model %q (want A, B, 1D, ref or all)", name)}
		}
	}
	spec := strings.ToLower(sp.Model)
	if spec == "all" {
		a, _ := one("a")
		b, _ := one("b")
		d1, _ := one("1d")
		return []core.Model{a, b, d1}, nil
	}
	var models []core.Model
	for _, name := range strings.Split(spec, ",") {
		m, err := one(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	return models, nil
}
