package deck

import (
	"os"
	"strings"
	"testing"
)

// FuzzParseDeck asserts two properties over arbitrary input: the parser
// never panics, and any deck that parses survives a format→parse round trip
// as an Equal deck (so Format is a faithful canonical form). Seeds come from
// the golden corpus plus grammar corner cases.
func FuzzParseDeck(f *testing.F) {
	for _, path := range corpusDecks(f) {
		src, err := readFileString(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	f.Add("")
	f.Add("title only")
	f.Add("t\n+ dangling\n")
	f.Add("t\nb1 side=100um side=200um\n")
	f.Add("t\nb1 =empty\n")
	f.Add("t\n* comment\n\n.op model=a ; trailing\n.end\n")
	f.Add("t\np1 tsi=1um\n+ td=4um k=v\n+\n")
	f.Add("t\nv1 r=1e-6 tl=1meg lext=0x10 n=1_0\n")
	f.Add("t\r\nb1 side=1um\r\n.op\r\n")
	f.Add("t\nb1 \t side=1um\v\f\n")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse("fuzz.ttsv", strings.NewReader(src))
		if err != nil {
			if d != nil {
				t.Fatalf("Parse returned both a deck and error %v", err)
			}
			return
		}
		formatted := d.Format()
		d2, err := Parse("fuzz2.ttsv", strings.NewReader(formatted))
		if err != nil {
			t.Fatalf("formatted deck does not reparse: %v\ninput:     %q\nformatted: %q", err, src, formatted)
		}
		if !d.Equal(d2) {
			t.Fatalf("round trip not Equal\ninput:     %q\nformatted: %q", src, formatted)
		}
		// Format must be a fixed point after one round trip.
		if again := d2.Format(); again != formatted {
			t.Fatalf("Format not idempotent\nfirst:  %q\nsecond: %q", formatted, again)
		}
		// Lowering must never panic either; errors are fine.
		if sc, err := d.Lower(); err == nil && sc == nil {
			t.Fatal("Lower returned nil scenario and nil error")
		}
	})
}

func readFileString(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}
