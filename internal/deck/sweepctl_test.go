package deck

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/sweep"
)

// shardDeck is a 12-point Model B radius sweep: 12 jobs, so the engine's
// 8-point chains split it into two shards [0,8) and [8,12) at count 2.
const shardDeck = `Shard identity sweep
b1 side=100um sink=27
p1 tsi=500um td=4um
p2 tsi=45um td=4um tb=1um repeat=2
v1 r=10um tl=0.5um lext=1um
iall plane=all devd=700w/mm3 ildd=70w/mm3
.sweep r 6um 12um 12 model=b segments=100
.end
`

// runShardDeck runs shardDeck with the given sweep controls and renders the
// text report.
func runShardDeck(t *testing.T, ctx context.Context, ctl SweepControl) ([]byte, error) {
	t.Helper()
	d, err := Parse("shard.ttsv", strings.NewReader(shardDeck))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctx, d, Options{Workers: 2, Sweep: ctl})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), nil
}

// TestDeckSweepShardMergeReportIdentity: running the deck's shards in
// separate processes (separate Run calls here), then merging their journals,
// reproduces the single-process report byte for byte.
func TestDeckSweepShardMergeReportIdentity(t *testing.T) {
	ctx := context.Background()
	want, err := runShardDeck(t, ctx, SweepControl{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var journals []string
	for i := 1; i <= 2; i++ {
		spec := sweep.ShardSpec{Index: i - 1, Count: 2}
		jp := filepath.Join(dir, spec.String()[:1]+".journal")
		report, err := runShardDeck(t, ctx, SweepControl{Shard: spec, JournalPath: jp})
		if err != nil {
			t.Fatalf("shard %d/2: %v", i, err)
		}
		if !bytes.Contains(report, []byte("shard: "+spec.String())) {
			t.Errorf("shard %d/2 report lacks its shard header:\n%s", i, report)
		}
		journals = append(journals, jp)
	}

	got, err := runShardDeck(t, ctx, SweepControl{MergePaths: journals})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merged report differs from single-process run:\n--- merged ---\n%s\n--- direct ---\n%s", got, want)
	}
}

// TestDeckSweepJournalResumeReportIdentity: a journaled deck run killed
// mid-sweep resumes from its journal — replaying completed points, solving
// the rest — and renders the same report as an uninterrupted run.
func TestDeckSweepJournalResumeReportIdentity(t *testing.T) {
	want, err := runShardDeck(t, context.Background(), SweepControl{})
	if err != nil {
		t.Fatal(err)
	}

	jp := filepath.Join(t.TempDir(), "sweep.journal")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	_, err = runShardDeck(t, ctx, SweepControl{
		JournalPath: jp,
		Progress: func(p SweepProgress) {
			if done.Add(1) == 3 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("killed run reported success")
	}

	var replayed, solved atomic.Int64
	got, err := runShardDeck(t, context.Background(), SweepControl{
		JournalPath: jp,
		Resume:      true,
		Progress: func(p SweepProgress) {
			if p.Replayed {
				replayed.Add(1)
			} else {
				solved.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed report differs from uninterrupted run:\n--- resumed ---\n%s\n--- direct ---\n%s", got, want)
	}
	if replayed.Load() == 0 {
		t.Error("resume replayed nothing despite a journal with completed points")
	}
	if replayed.Load()+solved.Load() != 12 {
		t.Errorf("resume covered %d points, want 12", replayed.Load()+solved.Load())
	}

	// The resumed journal is itself complete: resuming again replays all 12.
	replayed.Store(0)
	solved.Store(0)
	if _, err := runShardDeck(t, context.Background(), SweepControl{
		JournalPath: jp,
		Resume:      true,
		Progress: func(p SweepProgress) {
			if p.Replayed {
				replayed.Add(1)
			} else {
				solved.Add(1)
			}
		},
	}); err != nil {
		t.Fatalf("second resume: %v", err)
	}
	if replayed.Load() != 12 || solved.Load() != 0 {
		t.Errorf("second resume replayed %d / solved %d, want 12 / 0", replayed.Load(), solved.Load())
	}
}

// TestDeckSweepDiskCacheReplaysAcrossRuns: two runs sharing a cache directory
// — the second serves every point from the persistent cache.
func TestDeckSweepDiskCacheReplaysAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	want, err := runShardDeck(t, context.Background(), SweepControl{CacheDir: dir, JournalPath: filepath.Join(dir, "j1")})
	if err != nil {
		t.Fatal(err)
	}
	var cached atomic.Int64
	got, err := runShardDeck(t, context.Background(), SweepControl{
		CacheDir: dir,
		Progress: func(p SweepProgress) {
			if p.FromCache {
				cached.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Load() != 12 {
		t.Errorf("second run hit the disk cache %d times, want 12", cached.Load())
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cached report differs:\n--- cached ---\n%s\n--- direct ---\n%s", got, want)
	}
}

// TestDeckSweepControlValidation: sweep controls demand a single-sweep deck,
// merge is exclusive with shard/journal, and a resumed journal must match the
// requested shard.
func TestDeckSweepControlValidation(t *testing.T) {
	opDeck := `Op only
b1 side=100um sink=27
p1 tsi=500um td=4um
v1 r=10um tl=0.5um lext=1um
iall plane=all devd=700w/mm3 ildd=70w/mm3
.op model=a
.end
`
	d, err := Parse("op.ttsv", strings.NewReader(opDeck))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), d, Options{Sweep: SweepControl{JournalPath: "x"}}); err == nil {
		t.Error("journaling an .op deck did not error")
	}

	if _, err := runShardDeck(t, context.Background(), SweepControl{
		MergePaths:  []string{"a", "b"},
		JournalPath: "x",
	}); err == nil {
		t.Error("merge combined with journal did not error")
	}

	// A journal written for shard 1/2 cannot resume shard 2/2.
	jp := filepath.Join(t.TempDir(), "j")
	if _, err := runShardDeck(t, context.Background(), SweepControl{
		Shard: sweep.ShardSpec{Index: 0, Count: 2}, JournalPath: jp,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := runShardDeck(t, context.Background(), SweepControl{
		Shard: sweep.ShardSpec{Index: 1, Count: 2}, JournalPath: jp, Resume: true,
	}); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Errorf("resuming shard 2/2 from a 1/2 journal: err = %v, want shard mismatch", err)
	}
}
