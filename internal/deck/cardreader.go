package deck

import (
	"fmt"
	"strings"

	"repro/internal/materials"
	"repro/internal/units"
)

// cardReader is the typed accessor for a card's fields. Getters record the
// first error and return zero values afterwards, so lowering code reads a
// whole card linearly and checks once; finish reports the first error or any
// unconsumed field (unknown parameter names never default silently).
type cardReader struct {
	file string
	card *Card
	// keyed maps lowercased key -> field index; positional holds the indices
	// of unnamed fields in order.
	keyed  map[string]int
	posIdx []int
	used   map[int]bool
	err    error
}

func newReader(file string, c *Card) *cardReader {
	r := &cardReader{
		file:  file,
		card:  c,
		keyed: make(map[string]int),
		used:  make(map[int]bool),
	}
	for i := range c.Fields {
		f := &c.Fields[i]
		if f.Key == "" {
			r.posIdx = append(r.posIdx, i)
			continue
		}
		if prev, dup := r.keyed[f.Key]; dup {
			r.fail(errAt(file, f.Pos, "duplicate parameter %q (first at column %d)", f.Key, c.Fields[prev].Pos.Col))
			continue
		}
		r.keyed[f.Key] = i
	}
	return r
}

// fail records the first error.
func (r *cardReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// lookup fetches a keyed field and marks it consumed.
func (r *cardReader) lookup(key string) (*Field, bool) {
	i, ok := r.keyed[key]
	if !ok {
		return nil, false
	}
	r.used[i] = true
	return &r.card.Fields[i], true
}

// fieldErr builds an error positioned at the named field (or the card when
// the field is absent) and records it.
func (r *cardReader) fieldErr(key string, format string, args ...any) error {
	pos := r.card.Pos
	if i, ok := r.keyed[key]; ok {
		pos = r.card.Fields[i].Pos
	}
	err := errAt(r.file, pos, "%s %s: %s", r.card.Name, key, fmt.Sprintf(format, args...))
	r.fail(err)
	return err
}

// float reads a keyed value with the given dimension, or def when absent.
func (r *cardReader) float(key string, d units.Dim, def float64) float64 {
	f, ok := r.lookup(key)
	if !ok {
		return def
	}
	v, err := units.ParseValue(f.Value, d)
	if err != nil {
		r.fail(errAt(r.file, f.Pos, "%s %s: %v", r.card.Name, key, err))
		return def
	}
	return v
}

// require reads a keyed value that must be present.
func (r *cardReader) require(key string, d units.Dim) float64 {
	if _, ok := r.keyed[key]; !ok {
		r.fail(errAt(r.file, r.card.Pos, "%s card: missing required parameter %s=", r.card.Name, key))
		return 0
	}
	return r.float(key, d, 0)
}

// int reads a keyed integer, or def when absent.
func (r *cardReader) int(key string, def int) int {
	f, ok := r.lookup(key)
	if !ok {
		return def
	}
	n, err := parseInt(f.Value)
	if err != nil {
		r.fail(errAt(r.file, f.Pos, "%s %s: %v", r.card.Name, key, err))
		return def
	}
	return n
}

// str reads a keyed string, or def when absent.
func (r *cardReader) str(key, def string) string {
	f, ok := r.lookup(key)
	if !ok {
		return def
	}
	return f.Value
}

// material reads a keyed material name, or def when absent. Lookup is exact
// first, then case-insensitive against the stock table.
func (r *cardReader) material(key string, def materials.Material) materials.Material {
	f, ok := r.lookup(key)
	if !ok {
		return def
	}
	if m, err := materials.Lookup(f.Value); err == nil {
		return m
	}
	for _, name := range materials.Names() {
		if strings.EqualFold(name, f.Value) {
			m, _ := materials.Lookup(name)
			return m
		}
	}
	r.fail(errAt(r.file, f.Pos, "%s %s: unknown material %q (known: %s)",
		r.card.Name, key, f.Value, strings.Join(materials.Names(), ", ")))
	return def
}

// positional returns the i-th positional field without consuming it.
func (r *cardReader) positional(i int) (*Field, bool) {
	if i >= len(r.posIdx) {
		return nil, false
	}
	return &r.card.Fields[r.posIdx[i]], true
}

// take marks the i-th positional field consumed.
func (r *cardReader) take(i int) {
	if i < len(r.posIdx) {
		r.used[r.posIdx[i]] = true
	}
}

// posInt reads the i-th positional field as an integer.
func (r *cardReader) posInt(i int, what string) int {
	f, ok := r.positional(i)
	if !ok {
		r.fail(errAt(r.file, r.card.Pos, "%s card: missing %s (positional field %d)", r.card.Name, what, i+1))
		return 0
	}
	r.take(i)
	n, err := parseInt(f.Value)
	if err != nil {
		r.fail(errAt(r.file, f.Pos, "%s %s: %v", r.card.Name, what, err))
		return 0
	}
	return n
}

// posFloat reads the i-th positional field with the given dimension.
func (r *cardReader) posFloat(i int, what string, d units.Dim) float64 {
	f, ok := r.positional(i)
	if !ok {
		r.fail(errAt(r.file, r.card.Pos, "%s card: missing %s (positional field %d)", r.card.Name, what, i+1))
		return 0
	}
	r.take(i)
	v, err := units.ParseValue(f.Value, d)
	if err != nil {
		r.fail(errAt(r.file, f.Pos, "%s %s: %v", r.card.Name, what, err))
		return 0
	}
	return v
}

// posFloats reads every positional field from index from onward.
func (r *cardReader) posFloats(from int, d units.Dim) []float64 {
	var out []float64
	for i := from; ; i++ {
		f, ok := r.positional(i)
		if !ok {
			break
		}
		r.take(i)
		v, err := units.ParseValue(f.Value, d)
		if err != nil {
			r.fail(errAt(r.file, f.Pos, "%s value %d: %v", r.card.Name, i+1, err))
			return nil
		}
		out = append(out, v)
	}
	return out
}

// finish returns the first recorded error, or an error for any field the
// card never consumed — unknown parameters are rejected, not ignored.
func (r *cardReader) finish() error {
	if r.err != nil {
		return r.err
	}
	for i := range r.card.Fields {
		if r.used[i] {
			continue
		}
		f := &r.card.Fields[i]
		if f.Key != "" {
			return errAt(r.file, f.Pos, "%s card: unknown parameter %q", r.card.Name, f.Key)
		}
		return errAt(r.file, f.Pos, "%s card: unexpected positional value %q", r.card.Name, f.Value)
	}
	return nil
}
