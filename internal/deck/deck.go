// Package deck implements the .ttsv text deck format: a SPICE-style netlist
// describing a TTSV thermal scenario — geometry, materials, power sources,
// boundary conditions — together with the analyses to run on it. One text
// file replaces a hand-written Go program per scenario and feeds every
// engine in the repository: steady-state model solves and the FVM reference
// (".op"), transient step response (".tran"), parameter sweeps through the
// batch engine (".sweep"), and TTSV insertion planning (".plan").
//
// The grammar follows the classic netlist conventions:
//
//	TTSV liner sweep                      <- first line is always the title
//	* comments start with an asterisk
//	b1 side=100um sink=27                 <- element card: name, then params
//	p1 tsi=500um td=4um                   <- card type = first letter of name
//	+ tdev=1um                            <- '+' continues the previous card
//	v1 r=10um tl=0.5um lext=1um           <- unit-suffixed values
//	.op model=all segments=100            <- analysis cards start with '.'
//	.end                                  <- optional terminator
//
// Values carry SPICE scale suffixes (1meg, 300u) and dimension-aware unit
// words (45um, 0.35w, 27c, 700w/mm3, 100us) resolved by internal/units;
// ';' starts an inline comment. Parse errors, and every lowering error that
// can be pinned to a card or field, carry file:line:column positions.
package deck

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Pos is a source position within a deck file (1-based line and byte
// column).
type Pos struct {
	Line, Col int
}

// Error is a positioned deck error, rendered "file:line:col: message" so
// editors and CI logs can jump to the offending card.
type Error struct {
	// File is the deck name given to Parse.
	File string
	// Pos locates the offending token or card.
	Pos Pos
	// Msg describes the problem.
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Pos.Line, e.Pos.Col, e.Msg)
}

// errAt builds a positioned error.
func errAt(file string, p Pos, format string, args ...any) *Error {
	return &Error{File: file, Pos: p, Msg: fmt.Sprintf(format, args...)}
}

// Field is one token of a card: either a named parameter (Key non-empty,
// from "key=value") or a positional value.
type Field struct {
	// Key is the lowercased parameter name, empty for positional fields.
	Key string
	// Value is the raw value text, case preserved (material names and model
	// specs are case-sensitive in spirit even though matching is lenient).
	Value string
	// Pos locates the token.
	Pos Pos
}

// Card is one logical line of the deck (continuations folded in): an
// element card (plane, via, block, source, tile) or an analysis card
// (leading '.').
type Card struct {
	// Name is the lowercased card name (first token), including the leading
	// '.' for analysis cards.
	Name string
	// Fields lists the card's parameters in source order.
	Fields []Field
	// Pos locates the card name.
	Pos Pos
}

// Dot reports whether the card is an analysis card.
func (c *Card) Dot() bool { return strings.HasPrefix(c.Name, ".") }

// Deck is a parsed .ttsv file. It preserves the title and every card in
// source order; comments and the optional .end terminator are dropped.
type Deck struct {
	// File is the source name used in error positions.
	File string
	// Title is the first line, verbatim.
	Title string
	// Cards lists the element and analysis cards in source order.
	Cards []Card
}

// Equal reports whether two decks have the same title and card structure.
// Positions and file names are ignored: a formatted-and-reparsed deck is
// Equal to the original even though every token moved.
func (d *Deck) Equal(o *Deck) bool {
	if d == nil || o == nil {
		return d == o
	}
	if d.Title != o.Title || len(d.Cards) != len(o.Cards) {
		return false
	}
	for i := range d.Cards {
		a, b := &d.Cards[i], &o.Cards[i]
		if a.Name != b.Name || len(a.Fields) != len(b.Fields) {
			return false
		}
		for j := range a.Fields {
			if a.Fields[j].Key != b.Fields[j].Key || a.Fields[j].Value != b.Fields[j].Value {
				return false
			}
		}
	}
	return true
}

// Format renders the deck in canonical form: the title line followed by one
// line per card, single-space separated. Parsing the result yields a deck
// Equal to the receiver (the property FuzzParseDeck enforces).
func (d *Deck) Format() string {
	var b strings.Builder
	b.WriteString(d.Title)
	b.WriteByte('\n')
	for i := range d.Cards {
		c := &d.Cards[i]
		b.WriteString(c.Name)
		for _, f := range c.Fields {
			b.WriteByte(' ')
			if f.Key != "" {
				b.WriteString(f.Key)
				b.WriteByte('=')
			}
			b.WriteString(f.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// maxLine bounds a single physical line; hostile input beyond it is an
// error, not an allocation.
const maxLine = 1 << 20

// Parse reads a .ttsv deck. name labels error positions (typically the file
// path). The first line is always the title; '*' lines are comments, '+'
// lines continue the previous card, ';' starts an inline comment, and
// parsing stops at an optional ".end".
func Parse(name string, r io.Reader) (*Deck, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxLine)
	d := &Deck{File: name}
	line := 0
	sawTitle := false
scan:
	for sc.Scan() {
		line++
		text := sc.Text()
		if !sawTitle {
			// The scanner drops one \r before \n; a title ending in several
			// (e.g. "x\r\r\n") would keep the rest and break the
			// format→parse round trip, so trailing carriage returns are
			// treated as line-ending material.
			d.Title = strings.TrimRight(text, "\r")
			sawTitle = true
			continue
		}
		// Inline comments end the line; full-line handling below works on
		// the stripped text.
		if i := strings.IndexByte(text, ';'); i >= 0 {
			text = text[:i]
		}
		trimmed := strings.TrimSpace(text)
		switch {
		case trimmed == "" || strings.HasPrefix(trimmed, "*"):
			continue
		case strings.HasPrefix(trimmed, "+"):
			plus := strings.IndexByte(text, '+')
			if len(d.Cards) == 0 {
				return nil, errAt(name, Pos{line, plus + 1}, "dangling continuation line: no card to continue")
			}
			fields, err := tokenize(name, text[plus+1:], line, plus+1)
			if err != nil {
				return nil, err
			}
			last := &d.Cards[len(d.Cards)-1]
			last.Fields = append(last.Fields, fields...)
			continue
		}
		fields, err := tokenize(name, text, line, 0)
		if err != nil {
			return nil, err
		}
		head := fields[0]
		if head.Key != "" {
			return nil, errAt(name, head.Pos, "card name %q must not contain '='", head.Key+"="+head.Value)
		}
		cname := strings.ToLower(head.Value)
		if cname == ".end" {
			break scan
		}
		if !validCardName(cname) {
			return nil, errAt(name, head.Pos, "card name %q must start with a letter (or '.' for analysis cards)", head.Value)
		}
		d.Cards = append(d.Cards, Card{Name: cname, Fields: fields[1:], Pos: head.Pos})
	}
	if err := sc.Err(); err != nil {
		return nil, errAt(name, Pos{line + 1, 1}, "reading deck: %v", err)
	}
	if !sawTitle {
		return nil, errAt(name, Pos{1, 1}, "empty deck: missing title line")
	}
	return d, nil
}

// ParseFile parses the deck at path, using the path as the error-position
// file name.
func ParseFile(path string) (*Deck, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(path, f)
}

// validCardName admits names beginning with an ASCII letter, or '.' followed
// by a letter (analysis cards).
func validCardName(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '.' {
		return len(s) > 1 && isLetter(s[1])
	}
	return isLetter(s[0])
}

func isLetter(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

// tokenize splits one (partial) line into fields, recording positions.
// colOff is the byte offset of text within the physical line.
func tokenize(file, text string, line, colOff int) ([]Field, error) {
	var out []Field
	i := 0
	for i < len(text) {
		if isSpace(text[i]) {
			i++
			continue
		}
		start := i
		for i < len(text) && !isSpace(text[i]) {
			i++
		}
		tok := text[start:i]
		pos := Pos{line, colOff + start + 1}
		if eq := strings.IndexByte(tok, '='); eq >= 0 {
			key := tok[:eq]
			if key == "" {
				return nil, errAt(file, pos, "empty parameter name in %q", tok)
			}
			out = append(out, Field{Key: strings.ToLower(key), Value: tok[eq+1:], Pos: pos})
		} else {
			out = append(out, Field{Value: tok, Pos: pos})
		}
	}
	if len(out) == 0 {
		// Callers strip blank lines first; a continuation line may still be
		// all whitespace, which is a no-op handled by returning no fields.
		return nil, nil
	}
	return out, nil
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\v' || b == '\f'
}
