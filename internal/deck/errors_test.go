package deck

import (
	"errors"
	"strings"
	"testing"
)

// lowerString parses and lowers a deck source, returning the lowering error.
func lowerString(t *testing.T, src string) error {
	t.Helper()
	d, err := Parse("err.ttsv", strings.NewReader(src))
	if err != nil {
		return err
	}
	_, err = d.Lower()
	return err
}

// validBody is a minimal correct deck the error cases perturb.
const validBody = `valid deck
b1 side=100um sink=27
p1 tsi=500um td=4um
p2 tsi=45um td=4um tb=1um
v1 r=10um tl=0.5um lext=1um
iall plane=all devd=700w/mm3 ildd=70w/mm3
.op model=a
`

func TestLowerValidBaseline(t *testing.T) {
	if err := lowerString(t, validBody); err != nil {
		t.Fatalf("baseline deck should lower: %v", err)
	}
}

// TestPositionedErrors table-tests every malformed-card class: each must
// fail with a deck.Error carrying the expected line and mentioning the
// expected message — no silent defaulting.
func TestPositionedErrors(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantMsg  string
		wantLine int // 0 = don't check
	}{
		{
			name:     "negative via radius",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=-10um tl=0.5um\n.op\n",
			wantMsg:  "via radius must be positive",
			wantLine: 5,
		},
		{
			name:     "negative liner thickness",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=10um tl=-1um\n.op\n",
			wantMsg:  "liner thickness must be positive",
			wantLine: 5,
		},
		{
			name:     "unknown unit suffix",
			src:      "t\nb1 side=100zz\n.op\n",
			wantMsg:  "unknown unit suffix",
			wantLine: 2,
		},
		{
			name:     "watts on a length",
			src:      "t\nb1 side=100w\n.op\n",
			wantMsg:  "unknown unit suffix",
			wantLine: 2,
		},
		{
			name:     "dangling continuation",
			src:      "t\n+ side=100um\n.op\n",
			wantMsg:  "dangling continuation",
			wantLine: 2,
		},
		{
			name:     "duplicate card name",
			src:      "t\np1 tsi=1um td=1um\np1 tsi=2um td=1um tb=1um\n.op\n",
			wantMsg:  "duplicate card name \"p1\"",
			wantLine: 3,
		},
		{
			name:     "duplicate parameter",
			src:      "t\nb1 side=100um side=200um\n.op\n",
			wantMsg:  "duplicate parameter \"side\"",
			wantLine: 2,
		},
		{
			name:     "unknown parameter",
			src:      "t\nb1 side=100um bogus=1\n.op\n",
			wantMsg:  "unknown parameter \"bogus\"",
			wantLine: 2,
		},
		{
			name:     "unknown card type",
			src:      "t\nx1 foo=1\n.op\n",
			wantMsg:  "unknown element card \"x1\"",
			wantLine: 2,
		},
		{
			name:     "card name with equals",
			src:      "t\nfoo=bar side=1\n.op\n",
			wantMsg:  "must not contain '='",
			wantLine: 2,
		},
		{
			name:     "card name not a letter",
			src:      "t\n1abc x=1\n.op\n",
			wantMsg:  "must start with a letter",
			wantLine: 2,
		},
		{
			name:     "empty parameter name",
			src:      "t\nb1 =100um\n.op\n",
			wantMsg:  "empty parameter name",
			wantLine: 2,
		},
		{
			name:     "plane 1 with bond layer",
			src:      "t\np1 tsi=500um td=4um tb=1um\n.op\n",
			wantMsg:  "plane 1 sits on the heat sink",
			wantLine: 2,
		},
		{
			name:     "upper plane without bond layer",
			src:      "t\np1 tsi=500um td=4um\np2 tsi=45um td=4um\n.op\n",
			wantMsg:  "needs a positive bond thickness",
			wantLine: 3,
		},
		{
			name:     "negative substrate thickness",
			src:      "t\np1 tsi=-500um td=4um\n.op\n",
			wantMsg:  "substrate thickness must be positive",
			wantLine: 2,
		},
		{
			name:     "missing required parameter",
			src:      "t\np1 td=4um\n.op\n",
			wantMsg:  "missing required parameter tsi=",
			wantLine: 2,
		},
		{
			name:     "unknown material",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=10um tl=1um fill=unobtanium\n.op\n",
			wantMsg:  "unknown material \"unobtanium\"",
			wantLine: 5,
		},
		{
			name:     "duplicate tile",
			src:      "t\np1 tsi=1um td=1um\np2 tsi=1um td=1um tb=1um\nv1 r=1um tl=1um\nt00 0 0 1w 1w\nt99 0 0 2w 2w\n.plan budget=1 tileside=1mm\n",
			wantMsg:  "duplicate tile (0,0)",
			wantLine: 6,
		},
		{
			name:     "source both watts and density",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\ni1 plane=1 dev=1w devd=1w/mm3\n.op\n",
			wantMsg:  "not both",
			wantLine: 4,
		},
		{
			name:     "source before any plane",
			src:      "t\nb1 side=100um\ni1 plane=1 dev=1w\n.op\n",
			wantMsg:  "before any plane card",
			wantLine: 3,
		},
		{
			name:     "source plane out of range",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\ni1 plane=7 dev=1w\n.op\n",
			wantMsg:  "must be \"all\" or 1..1",
			wantLine: 4,
		},
		{
			name:     "missing dt on tran",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=10um tl=1um\n.tran steps=10\n",
			wantMsg:  "missing required parameter dt=",
			wantLine: 6,
		},
		{
			name:     "tran model without transient form",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=10um tl=1um\n.tran dt=1us steps=10 model=1d\n",
			wantMsg:  "no transient form",
			wantLine: 6,
		},
		{
			name:     "unknown sweep parameter",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=10um tl=1um\n.sweep q 1um 2um 3\n",
			wantMsg:  "unknown sweep parameter \"q\"",
			wantLine: 6,
		},
		{
			name:     "sweep too few points",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=10um tl=1um\n.sweep r 1um 2um 1\n",
			wantMsg:  "at least 2 points",
			wantLine: 6,
		},
		{
			name:     "sweep fractional via count",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=10um tl=1um\n.sweep n list 1 2.5\n",
			wantMsg:  "must be a positive integer",
			wantLine: 6,
		},
		{
			name:     "unknown model",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=10um tl=1um\n.op model=z\n",
			wantMsg:  "unknown model \"z\"",
			wantLine: 6,
		},
		{
			name:     "unknown operator",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=10um tl=1um\n.op model=ref operator=dense\n",
			wantMsg:  "unknown operator \"dense\"",
			wantLine: 6,
		},
		{
			name:     "unknown mg hierarchy",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=10um tl=1um\n.op model=ref mg.hierarchy=amg\n",
			wantMsg:  "unknown hierarchy \"amg\"",
			wantLine: 6,
		},
		{
			name:     "unknown mg precision",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=10um tl=1um\n.op model=ref mg.precision=f16\n",
			wantMsg:  "unknown precision \"f16\"",
			wantLine: 6,
		},
		{
			name:     "f32 without geometric",
			src:      "t\nb1 side=100um\np1 tsi=500um td=4um\np2 tsi=45um td=4um tb=1um\nv1 r=10um tl=1um\n.op model=ref mg.precision=f32\n",
			wantMsg:  "mg.precision=f32 requires mg.hierarchy=geometric",
			wantLine: 6,
		},
		{
			name:     "unknown analysis card",
			src:      "t\n.ac dec 10\n",
			wantMsg:  "unknown analysis card \".ac\"",
			wantLine: 2,
		},
		{
			name:     "analysis without stack",
			src:      "t\n.op\n",
			wantMsg:  "needs a block card",
			wantLine: 2,
		},
		{
			name:     "no analysis cards",
			src:      "t\nb1 side=100um\n",
			wantMsg:  "no analysis cards",
			wantLine: 1,
		},
		{
			name:     "empty deck",
			src:      "",
			wantMsg:  "missing title line",
			wantLine: 1,
		},
		{
			name:     "plan tile grid gap",
			src:      "t\np1 tsi=1um td=1um\np2 tsi=1um td=1um tb=1um\nv1 r=1um tl=1um\nt00 0 0 1w 1w\nt11 1 1 1w 1w\n.plan budget=1 tileside=1mm\n",
			wantMsg:  "tile grid 2x2 needs 4 tile cards, deck has 2",
			wantLine: 7,
		},
		{
			name:     "plan tile power arity",
			src:      "t\np1 tsi=1um td=1um\np2 tsi=1um td=1um tb=1um\nv1 r=1um tl=1um\nt00 0 0 1w\n.plan budget=1 tileside=1mm\n",
			wantMsg:  "lists 1 plane powers, deck has 2 planes",
			wantLine: 5,
		},
		{
			name:     "plan nonuniform upper planes",
			src:      "t\np1 tsi=1um td=1um\np2 tsi=1um td=1um tb=1um\np3 tsi=2um td=1um tb=1um\nv1 r=1um tl=1um\nt00 0 0 1w 1w 1w\n.plan budget=1 tileside=1mm\n",
			wantMsg:  "uniform upper planes",
			wantLine: 4,
		},
		{
			name:     "duplicate block card",
			src:      "t\nb1 side=100um\nb2 side=200um\n.op\n",
			wantMsg:  "duplicate block card",
			wantLine: 3,
		},
		{
			name:     "duplicate via card",
			src:      "t\nv1 r=1um tl=1um\nv2 r=2um tl=1um\n.op\n",
			wantMsg:  "duplicate via card",
			wantLine: 3,
		},
		{
			name:     "block without footprint",
			src:      "t\nb1 sink=27\n.op\n",
			wantMsg:  "missing footprint",
			wantLine: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := lowerString(t, tc.src)
			if err == nil {
				t.Fatalf("deck unexpectedly lowered:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
			var de *Error
			if !errors.As(err, &de) {
				t.Fatalf("error %T is not a positioned *deck.Error: %v", err, err)
			}
			if de.Pos.Line < 1 || de.Pos.Col < 1 {
				t.Errorf("unpositioned error: %+v", de)
			}
			if tc.wantLine != 0 && de.Pos.Line != tc.wantLine {
				t.Errorf("error at line %d, want %d: %v", de.Pos.Line, tc.wantLine, err)
			}
			if !strings.HasPrefix(err.Error(), "err.ttsv:") {
				t.Errorf("error %q does not lead with the file position", err)
			}
		})
	}
}
