package deck

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/deck -run TestCorpusGoldens -update
var update = flag.Bool("update", false, "rewrite golden files")

// corpusDir holds the .ttsv corpus shared by the deck package, the CLI
// golden tests and the fuzz seeds.
const corpusDir = "../../testdata/decks"

// goldenDir holds one .golden text report per corpus deck.
const goldenDir = "../../testdata/decks/golden"

// corpusDecks lists the corpus deck paths in sorted order.
func corpusDecks(t testing.TB) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.ttsv"))
	if err != nil {
		t.Fatalf("globbing corpus: %v", err)
	}
	if len(paths) < 6 {
		t.Fatalf("corpus has %d decks, want >= 6", len(paths))
	}
	sort.Strings(paths)
	return paths
}

// runDeckFile parses and runs one corpus deck and renders its text report.
func runDeckFile(t testing.TB, path string, opt Options) []byte {
	t.Helper()
	d, err := ParseFile(path)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	res, err := Run(context.Background(), d, opt)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatalf("%s: rendering: %v", path, err)
	}
	return buf.Bytes()
}

// TestCorpusGoldens runs every corpus deck and compares the text report
// against its golden file byte for byte.
func TestCorpusGoldens(t *testing.T) {
	kinds := map[string]bool{}
	for _, path := range corpusDecks(t) {
		path := path
		base := strings.TrimSuffix(filepath.Base(path), ".ttsv")
		t.Run(base, func(t *testing.T) {
			t.Parallel()
			got := runDeckFile(t, path, Options{Workers: 1})
			golden := filepath.Join(goldenDir, base+".golden")
			if *update {
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
			}
		})
	}
	// The corpus must cover every analysis card kind.
	for _, path := range corpusDecks(t) {
		d, err := ParseFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range d.Cards {
			if c.Dot() {
				kinds[c.Name] = true
			}
		}
	}
	for _, want := range []string{".op", ".tran", ".sweep", ".plan"} {
		if !kinds[want] {
			t.Errorf("corpus covers no %s card", want)
		}
	}
}
