package deck

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/materials"
	"repro/internal/plan"
	"repro/internal/stack"
	"repro/internal/units"
)

// Scenario is the lowered, engine-ready form of a deck: the stack the
// element cards describe (nil for plan-only decks) plus the analyses to run
// in order.
type Scenario struct {
	// Title echoes the deck title.
	Title string
	// Stack is the block geometry, built when the deck has a block card.
	Stack *stack.Stack
	// Analyses lists the lowered analysis cards in deck order.
	Analyses []Analysis
}

// Analysis is one lowered analysis card; exactly one of the typed fields is
// set, matching Kind.
type Analysis struct {
	// Kind is "op", "tran", "sweep" or "plan".
	Kind string
	// Pos locates the analysis card in the deck.
	Pos Pos
	// Op holds the steady-state analysis, Kind "op".
	Op *OpAnalysis
	// Tran holds the transient analysis, Kind "tran".
	Tran *TranAnalysis
	// Sweep holds the parameter-sweep analysis, Kind "sweep".
	Sweep *SweepAnalysis
	// Plan holds the insertion-planning analysis, Kind "plan".
	Plan *PlanAnalysis
}

// OpAnalysis is a steady-state solve of the deck's stack with one or more
// models (".op").
type OpAnalysis struct {
	// Models lists the models to solve with, in report order.
	Models []core.Model
}

// TranAnalysis is a step-power transient simulation (".tran").
type TranAnalysis struct {
	// Model is the transient-capable model (A or B).
	Model core.Model
	// Spec is the integration step and horizon.
	Spec core.TransientSpec
}

// SweepAnalysis is a one-parameter geometry sweep through the batch engine
// (".sweep").
type SweepAnalysis struct {
	// Param is the swept deck parameter (r, tl, lext, n, tsi, tsi1, td, tb).
	Param string
	// Values lists the parameter values in sweep order.
	Values []float64
	// Stacks holds one validated stack per value.
	Stacks []*stack.Stack
	// Models lists the models evaluated at every value.
	Models []core.Model
	// Workers overrides the run option's worker count when positive.
	Workers int
}

// PlanAnalysis is a TTSV insertion-planning run (".plan").
type PlanAnalysis struct {
	// Tech is the per-via/per-plane technology derived from the via and
	// plane cards.
	Tech plan.Technology
	// Floor is the tiled power map assembled from the tile cards.
	Floor *plan.Floorplan
	// Budget is the allowed temperature rise (K).
	Budget float64
	// Model is the planning model.
	Model core.Model
	// Workers overrides the run option's worker count when positive.
	Workers int
}

// elements collects the deck's element cards during lowering.
type elements struct {
	file   string
	block  *Card
	via    *Card
	planes []planeDef
	tiles  []tileDef
	tileAt map[[2]int]*Card

	// block card values
	side, footprint, sink float64

	// via card values
	viaDef viaDef
}

type planeDef struct {
	card *Card
	p    stack.Plane
}

type viaDef struct {
	v stack.TTSV
}

type tileDef struct {
	card     *Card
	row, col int
	powers   []float64
}

// Lower resolves the deck into a Scenario: element cards become a validated
// stack (and floorplan), analysis cards become engine-ready analyses.
// Errors carry the position of the offending card or field.
func (d *Deck) Lower() (*Scenario, error) {
	el := &elements{file: d.File}
	sc := &Scenario{Title: d.Title}
	names := make(map[string]Pos)
	var analyses []*Card
	for i := range d.Cards {
		c := &d.Cards[i]
		if c.Dot() {
			analyses = append(analyses, c)
			continue
		}
		if prev, dup := names[c.Name]; dup {
			return nil, errAt(d.File, c.Pos, "duplicate card name %q (first defined at line %d)", c.Name, prev.Line)
		}
		names[c.Name] = c.Pos
		if err := el.addElement(c); err != nil {
			return nil, err
		}
	}
	// Source cards are applied after every plane exists, so a source may
	// precede the planes it powers.
	for i := range d.Cards {
		c := &d.Cards[i]
		if !c.Dot() && (c.Name[0] == 'i' || c.Name[0] == 's') {
			if err := el.applySource(c); err != nil {
				return nil, err
			}
		}
	}
	if len(analyses) == 0 {
		return nil, errAt(d.File, Pos{1, 1}, "deck has no analysis cards (.op, .tran, .sweep or .plan)")
	}
	for _, c := range analyses {
		a, err := el.lowerAnalysis(c, sc)
		if err != nil {
			return nil, err
		}
		sc.Analyses = append(sc.Analyses, a)
	}
	return sc, nil
}

// addElement dispatches one element card by the first letter of its name.
func (el *elements) addElement(c *Card) error {
	switch c.Name[0] {
	case 'b':
		return el.addBlock(c)
	case 'p':
		return el.addPlane(c)
	case 'v':
		return el.addVia(c)
	case 'i', 's':
		return nil // sources are applied in a second pass
	case 't':
		return el.addTile(c)
	default:
		return errAt(el.file, c.Pos, "unknown element card %q (want b*, p*, v*, i*/s*, t* or a '.' analysis card)", c.Name)
	}
}

func (el *elements) addBlock(c *Card) error {
	if el.block != nil {
		return errAt(el.file, c.Pos, "duplicate block card (first at line %d)", el.block.Pos.Line)
	}
	el.block = c
	r := newReader(el.file, c)
	el.side = r.float("side", units.DimLength, 0)
	el.footprint = r.float("a0", units.DimArea, 0)
	el.sink = r.float("sink", units.DimTemperature, 0)
	if err := r.finish(); err != nil {
		return err
	}
	if el.side != 0 && el.footprint != 0 {
		return errAt(el.file, c.Pos, "block card: give side= or a0=, not both")
	}
	if el.side == 0 && el.footprint == 0 {
		return errAt(el.file, c.Pos, "block card: missing footprint (side= or a0=)")
	}
	if el.footprint == 0 {
		el.footprint = el.side * el.side
	}
	return nil
}

func (el *elements) addPlane(c *Card) error {
	r := newReader(el.file, c)
	first := len(el.planes) == 0
	p := stack.Plane{
		SiThickness:          r.require("tsi", units.DimLength),
		ILDThickness:         r.require("td", units.DimLength),
		BondThickness:        r.float("tb", units.DimLength, 0),
		DevicePower:          r.float("qdev", units.DimPower, 0),
		ILDPower:             r.float("qild", units.DimPower, 0),
		DeviceLayerThickness: r.float("tdev", units.DimLength, units.UM(1)),
		Si:                   r.material("si", materials.Silicon),
		ILD:                  r.material("ild", materials.SiO2),
		Bond:                 r.material("bond", materials.Polyimide),
	}
	repeat := r.int("repeat", 1)
	if err := r.finish(); err != nil {
		return err
	}
	if p.SiThickness <= 0 {
		return r.fieldErr("tsi", "substrate thickness must be positive, got %s", units.FormatMeters(p.SiThickness))
	}
	if p.ILDThickness <= 0 {
		return r.fieldErr("td", "ILD thickness must be positive, got %s", units.FormatMeters(p.ILDThickness))
	}
	if first && p.BondThickness != 0 {
		return r.fieldErr("tb", "plane 1 sits on the heat sink and takes no bond layer")
	}
	if !first && p.BondThickness <= 0 {
		return errAt(el.file, c.Pos, "plane %d needs a positive bond thickness tb=", len(el.planes)+1)
	}
	if repeat < 1 {
		return r.fieldErr("repeat", "repeat must be >= 1, got %d", repeat)
	}
	if first && repeat != 1 {
		return r.fieldErr("repeat", "plane 1 cannot repeat (it has no bond layer)")
	}
	if len(el.planes)+repeat > 1024 {
		return errAt(el.file, c.Pos, "deck exceeds 1024 planes")
	}
	for i := 0; i < repeat; i++ {
		el.planes = append(el.planes, planeDef{card: c, p: p})
	}
	return nil
}

func (el *elements) addVia(c *Card) error {
	if el.via != nil {
		return errAt(el.file, c.Pos, "duplicate via card (first at line %d)", el.via.Pos.Line)
	}
	el.via = c
	r := newReader(el.file, c)
	v := stack.TTSV{
		Radius:         r.require("r", units.DimLength),
		LinerThickness: r.require("tl", units.DimLength),
		Extension:      r.float("lext", units.DimLength, 0),
		Count:          r.int("n", 1),
		Fill:           r.material("fill", materials.Copper),
		Liner:          r.material("liner", materials.SiO2),
	}
	if err := r.finish(); err != nil {
		return err
	}
	// The via column is the deck's "resistor": negative or zero geometry
	// would flip resistance signs, so it is rejected at the field.
	if v.Radius <= 0 {
		return r.fieldErr("r", "via radius must be positive, got %s", units.FormatMeters(v.Radius))
	}
	if v.LinerThickness <= 0 {
		return r.fieldErr("tl", "liner thickness must be positive, got %s", units.FormatMeters(v.LinerThickness))
	}
	if v.Extension < 0 {
		return r.fieldErr("lext", "via extension must be non-negative, got %s", units.FormatMeters(v.Extension))
	}
	if v.Count < 1 {
		return r.fieldErr("n", "via count must be >= 1, got %d", v.Count)
	}
	el.viaDef = viaDef{v: v}
	return nil
}

// applySource folds a power-source card into the plane powers. dev=/ild=
// give plane powers in watts; devd=/ildd= give volumetric densities applied
// over the block footprint and the plane's device-layer/ILD thickness —
// exactly the arithmetic stack.BlockConfig.Build performs, so density-driven
// decks land bit-identical to BlockConfig-built stacks.
func (el *elements) applySource(c *Card) error {
	r := newReader(el.file, c)
	planeSel := r.str("plane", "all")
	dev := r.float("dev", units.DimPower, math.NaN())
	ild := r.float("ild", units.DimPower, math.NaN())
	devd := r.float("devd", units.DimPowerDensity, math.NaN())
	ildd := r.float("ildd", units.DimPowerDensity, math.NaN())
	if err := r.finish(); err != nil {
		return err
	}
	if !math.IsNaN(dev) && !math.IsNaN(devd) {
		return errAt(el.file, c.Pos, "source card: give dev= (watts) or devd= (density), not both")
	}
	if !math.IsNaN(ild) && !math.IsNaN(ildd) {
		return errAt(el.file, c.Pos, "source card: give ild= (watts) or ildd= (density), not both")
	}
	if math.IsNaN(dev) && math.IsNaN(devd) && math.IsNaN(ild) && math.IsNaN(ildd) {
		return errAt(el.file, c.Pos, "source card sets no power (dev=, ild=, devd= or ildd=)")
	}
	if (!math.IsNaN(devd) || !math.IsNaN(ildd)) && el.block == nil {
		return errAt(el.file, c.Pos, "density source needs a block card for the footprint")
	}
	if len(el.planes) == 0 {
		return errAt(el.file, c.Pos, "source card before any plane card")
	}
	lo, hi := 0, len(el.planes)-1
	if planeSel != "all" {
		n, err := parseInt(planeSel)
		if err != nil || n < 1 || n > len(el.planes) {
			return r.fieldErr("plane", "plane %q must be \"all\" or 1..%d", planeSel, len(el.planes))
		}
		lo, hi = n-1, n-1
	}
	for i := lo; i <= hi; i++ {
		p := &el.planes[i].p
		a0 := el.footprint
		switch {
		case !math.IsNaN(dev):
			p.DevicePower = dev
		case !math.IsNaN(devd):
			p.DevicePower = devd * a0 * p.DeviceLayerThickness
		}
		switch {
		case !math.IsNaN(ild):
			p.ILDPower = ild
		case !math.IsNaN(ildd):
			p.ILDPower = ildd * a0 * p.ILDThickness
		}
	}
	return nil
}

func (el *elements) addTile(c *Card) error {
	r := newReader(el.file, c)
	row := r.posInt(0, "row")
	col := r.posInt(1, "col")
	powers := r.posFloats(2, units.DimPower)
	if err := r.finish(); err != nil {
		return err
	}
	if row < 0 || col < 0 {
		return errAt(el.file, c.Pos, "tile position (%d,%d) must be non-negative", row, col)
	}
	if row >= 4096 || col >= 4096 {
		return errAt(el.file, c.Pos, "tile position (%d,%d) outside the 4096x4096 grid bound", row, col)
	}
	if len(powers) == 0 {
		return errAt(el.file, c.Pos, "tile card needs per-plane powers after row and col")
	}
	if prev, dup := el.tileAt[[2]int{row, col}]; dup {
		return errAt(el.file, c.Pos, "duplicate tile (%d,%d) (first at line %d)", row, col, prev.Pos.Line)
	}
	if el.tileAt == nil {
		el.tileAt = make(map[[2]int]*Card)
	}
	el.tileAt[[2]int{row, col}] = c
	el.tiles = append(el.tiles, tileDef{card: c, row: row, col: col, powers: powers})
	return nil
}

// buildStack assembles and validates the stack for stack-based analyses.
func (el *elements) buildStack(at *Card) (*stack.Stack, error) {
	if el.block == nil {
		return nil, errAt(el.file, at.Pos, "%s needs a block card (footprint and sink)", at.Name)
	}
	if el.via == nil {
		return nil, errAt(el.file, at.Pos, "%s needs a via card", at.Name)
	}
	if len(el.planes) < 2 {
		return nil, errAt(el.file, at.Pos, "%s needs at least 2 plane cards, have %d", at.Name, len(el.planes))
	}
	planes := make([]stack.Plane, len(el.planes))
	for i := range el.planes {
		planes[i] = el.planes[i].p
	}
	s := &stack.Stack{
		Footprint: el.footprint,
		Planes:    planes,
		Via:       el.viaDef.v,
		SinkTemp:  el.sink,
	}
	if err := s.Validate(); err != nil {
		return nil, errAt(el.file, el.block.Pos, "%v", err)
	}
	return s, nil
}

// lowerAnalysis dispatches one analysis card.
func (el *elements) lowerAnalysis(c *Card, sc *Scenario) (Analysis, error) {
	switch c.Name {
	case ".op":
		return el.lowerOp(c, sc)
	case ".tran":
		return el.lowerTran(c, sc)
	case ".sweep":
		return el.lowerSweep(c, sc)
	case ".plan":
		return el.lowerPlan(c)
	default:
		return Analysis{}, errAt(el.file, c.Pos, "unknown analysis card %q (want .op, .tran, .sweep, .plan or .end)", c.Name)
	}
}

// ensureStack builds the deck stack once and caches it on the scenario.
func (el *elements) ensureStack(c *Card, sc *Scenario) (*stack.Stack, error) {
	if sc.Stack == nil {
		s, err := el.buildStack(c)
		if err != nil {
			return nil, err
		}
		sc.Stack = s
	}
	return sc.Stack, nil
}

func (el *elements) lowerOp(c *Card, sc *Scenario) (Analysis, error) {
	if _, err := el.ensureStack(c, sc); err != nil {
		return Analysis{}, err
	}
	r := newReader(el.file, c)
	models, err := el.readModels(r, "all", core.Coeffs{K1: 1.3, K2: 0.55, C1: 1})
	if err != nil {
		return Analysis{}, err
	}
	if err := r.finish(); err != nil {
		return Analysis{}, err
	}
	return Analysis{Kind: "op", Pos: c.Pos, Op: &OpAnalysis{Models: models}}, nil
}

func (el *elements) lowerTran(c *Card, sc *Scenario) (Analysis, error) {
	if _, err := el.ensureStack(c, sc); err != nil {
		return Analysis{}, err
	}
	r := newReader(el.file, c)
	spec := core.TransientSpec{
		Dt:    r.require("dt", units.DimTime),
		Steps: r.int("steps", 0),
	}
	models, err := el.readModels(r, "a", core.Coeffs{K1: 1.3, K2: 0.55, C1: 1})
	if err != nil {
		return Analysis{}, err
	}
	if len(models) != 1 {
		return Analysis{}, errAt(el.file, c.Pos, ".tran takes exactly one model (A or B)")
	}
	if _, ok := models[0].(transientModel); !ok {
		return Analysis{}, errAt(el.file, c.Pos, ".tran model %s has no transient form (want A or B)", models[0].Name())
	}
	if err := spec.Validate(); err != nil {
		return Analysis{}, errAt(el.file, c.Pos, "%v", err)
	}
	if err := r.finish(); err != nil {
		return Analysis{}, err
	}
	return Analysis{Kind: "tran", Pos: c.Pos, Tran: &TranAnalysis{Model: models[0], Spec: spec}}, nil
}

// transientModel is the step-response interface ModelA and ModelB implement.
type transientModel interface {
	SolveTransient(*stack.Stack, core.TransientSpec) (*core.TransientResult, error)
}

// sweepDims maps sweepable deck parameters to their dimensions.
var sweepDims = map[string]units.Dim{
	"r": units.DimLength, "tl": units.DimLength, "lext": units.DimLength,
	"tsi": units.DimLength, "tsi1": units.DimLength,
	"td": units.DimLength, "tb": units.DimLength,
	"n": units.DimNone,
}

func (el *elements) lowerSweep(c *Card, sc *Scenario) (Analysis, error) {
	base, err := el.ensureStack(c, sc)
	if err != nil {
		return Analysis{}, err
	}
	r := newReader(el.file, c)
	paramF, ok := r.positional(0)
	if !ok {
		return Analysis{}, errAt(el.file, c.Pos, ".sweep needs a parameter: .sweep <param> <from> <to> <points> or .sweep <param> list v1 v2 …")
	}
	param := strings.ToLower(paramF.Value)
	dim, known := sweepDims[param]
	if !known {
		return Analysis{}, errAt(el.file, paramF.Pos, "unknown sweep parameter %q (want r, tl, lext, n, tsi, tsi1, td or tb)", paramF.Value)
	}
	var values []float64
	if second, ok := r.positional(1); ok && strings.EqualFold(second.Value, "list") {
		r.take(1)
		for i := 2; ; i++ {
			f, ok := r.positional(i)
			if !ok {
				break
			}
			v, err := units.ParseValue(f.Value, dim)
			if err != nil {
				return Analysis{}, errAt(el.file, f.Pos, "sweep value: %v", err)
			}
			values = append(values, v)
			r.take(i)
		}
		if len(values) == 0 {
			return Analysis{}, errAt(el.file, c.Pos, ".sweep list needs at least one value")
		}
	} else {
		lo := r.posFloat(1, "from", dim)
		hi := r.posFloat(2, "to", dim)
		n := r.posInt(3, "points")
		if r.err == nil && n < 2 {
			return Analysis{}, errAt(el.file, c.Pos, ".sweep needs at least 2 points, got %d", n)
		}
		if r.err == nil {
			values = units.Linspace(lo, hi, n)
		}
	}
	r.take(0)
	models, merr := el.readModels(r, "all", core.Coeffs{K1: 1.3, K2: 0.55, C1: 1})
	if merr != nil {
		return Analysis{}, merr
	}
	workers := r.int("workers", 0)
	if err := r.finish(); err != nil {
		return Analysis{}, err
	}
	stacks := make([]*stack.Stack, len(values))
	for i, v := range values {
		s, err := ApplyParam(base, param, v)
		if err != nil {
			return Analysis{}, errAt(el.file, c.Pos, "sweep point %s=%v: %v", param, v, err)
		}
		stacks[i] = s
	}
	return Analysis{Kind: "sweep", Pos: c.Pos, Sweep: &SweepAnalysis{
		Param: param, Values: values, Stacks: stacks, Models: models, Workers: workers,
	}}, nil
}

// ApplyParam clones the base stack with one sweep parameter (r, tl, lext, n,
// tsi, tsi1, td, tb) changed and re-validates it. Deck .sweep cards and the
// solve service's JSON sweep requests both build their per-point stacks
// through it, so equal requests land on identical stack values.
func ApplyParam(base *stack.Stack, param string, v float64) (*stack.Stack, error) {
	s := base.Clone()
	switch param {
	case "r":
		s.Via.Radius = v
	case "tl":
		s.Via.LinerThickness = v
	case "lext":
		s.Via.Extension = v
	case "n":
		n := int(v)
		if float64(n) != v || n < 1 {
			return nil, fmt.Errorf("via count must be a positive integer, got %v", v)
		}
		s.Via.Count = n
	case "tsi":
		for i := 1; i < len(s.Planes); i++ {
			s.Planes[i].SiThickness = v
		}
	case "tsi1":
		s.Planes[0].SiThickness = v
	case "td":
		for i := range s.Planes {
			s.Planes[i].ILDThickness = v
		}
	case "tb":
		for i := 1; i < len(s.Planes); i++ {
			s.Planes[i].BondThickness = v
		}
	default:
		return nil, fmt.Errorf("unknown sweep parameter %q", param)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func (el *elements) lowerPlan(c *Card) (Analysis, error) {
	if el.via == nil {
		return Analysis{}, errAt(el.file, c.Pos, ".plan needs a via card for the technology")
	}
	if len(el.planes) < 2 {
		return Analysis{}, errAt(el.file, c.Pos, ".plan needs at least 2 plane cards, have %d", len(el.planes))
	}
	for i := 2; i < len(el.planes); i++ {
		a, b := el.planes[i].p, el.planes[1].p
		if a.SiThickness != b.SiThickness || a.ILDThickness != b.ILDThickness || a.BondThickness != b.BondThickness {
			return Analysis{}, errAt(el.file, el.planes[i].card.Pos, ".plan needs uniform upper planes; plane %d differs from plane 2", i+1)
		}
	}
	if len(el.tiles) == 0 {
		return Analysis{}, errAt(el.file, c.Pos, ".plan needs tile cards (t<name> <row> <col> <powers…>)")
	}
	r := newReader(el.file, c)
	budget := r.require("budget", units.DimTemperature)
	tileSide := r.require("tileside", units.DimLength)
	maxDensity := r.float("maxdensity", units.DimNone, 0.10)
	workers := r.int("workers", 0)
	models, err := el.readModels(r, "a", core.Coeffs{K1: 1.6, K2: 0.8, C1: 3.5})
	if err != nil {
		return Analysis{}, err
	}
	if len(models) != 1 {
		return Analysis{}, errAt(el.file, c.Pos, ".plan takes exactly one model")
	}
	p0, p1 := el.planes[0].p, el.planes[1].p
	tech := plan.Technology{
		ViaRadius:            el.viaDef.v.Radius,
		LinerThickness:       el.viaDef.v.LinerThickness,
		Extension:            el.viaDef.v.Extension,
		TSi1:                 p0.SiThickness,
		TSi:                  p1.SiThickness,
		TD:                   p0.ILDThickness,
		TB:                   p1.BondThickness,
		NumPlanes:            len(el.planes),
		MaxDensity:           maxDensity,
		DeviceLayerThickness: p0.DeviceLayerThickness,
		Si:                   p0.Si,
		ILD:                  p0.ILD,
		Bond:                 p1.Bond,
		Fill:                 el.viaDef.v.Fill,
		Liner:                el.viaDef.v.Liner,
	}
	rows, cols := 0, 0
	for _, t := range el.tiles {
		rows = max(rows, t.row+1)
		cols = max(cols, t.col+1)
	}
	// Tiles are unique, so a full grid needs exactly rows*cols of them;
	// checking the count first keeps a sparse hostile deck (one tile at a
	// huge coordinate) from allocating the whole grid just to fail.
	if rows*cols > len(el.tiles) {
		return Analysis{}, errAt(el.file, c.Pos, "tile grid %dx%d needs %d tile cards, deck has %d", rows, cols, rows*cols, len(el.tiles))
	}
	powers := make([][][]float64, rows)
	for i := range powers {
		powers[i] = make([][]float64, cols)
	}
	for _, t := range el.tiles {
		if len(t.powers) != tech.NumPlanes {
			return Analysis{}, errAt(el.file, t.card.Pos, "tile (%d,%d) lists %d plane powers, deck has %d planes",
				t.row, t.col, len(t.powers), tech.NumPlanes)
		}
		powers[t.row][t.col] = t.powers
	}
	for ri := range powers {
		for ci := range powers[ri] {
			if powers[ri][ci] == nil {
				return Analysis{}, errAt(el.file, c.Pos, "tile (%d,%d) missing: every cell of the %dx%d grid needs a tile card", ri, ci, rows, cols)
			}
		}
	}
	floor := &plan.Floorplan{TileSide: tileSide, PlanePowers: powers}
	if err := r.finish(); err != nil {
		return Analysis{}, err
	}
	if err := floor.Validate(tech); err != nil {
		return Analysis{}, errAt(el.file, c.Pos, "%v", err)
	}
	return Analysis{Kind: "plan", Pos: c.Pos, Plan: &PlanAnalysis{
		Tech: tech, Floor: floor, Budget: budget, Model: models[0], Workers: workers,
	}}, nil
}

// readModels parses the shared model selection parameters: model= (A, B, 1D,
// ref, all), segments=, k1=, k2=, c1=, and the reference-solver knobs
// workers-ref=, precond=, refine=, operator=, mg.hierarchy=, mg.precision=.
// Construction funnels through
// ModelSpec.build, the same path JSON-driven requests use, so a card and the
// equivalent JSON request yield value-identical models.
func (el *elements) readModels(r *cardReader, defSpec string, defCoeffs core.Coeffs) ([]core.Model, error) {
	sp := ModelSpec{
		Model:       strings.ToLower(r.str("model", defSpec)),
		Segments:    r.int("segments", 100),
		K1:          r.float("k1", units.DimNone, defCoeffs.K1),
		K2:          r.float("k2", units.DimNone, defCoeffs.K2),
		C1:          r.float("c1", units.DimNone, defCoeffs.C1),
		RefWorkers:  r.int("ref-workers", 0),
		Refine:      r.int("refine", 1),
		Precond:     r.str("precond", "auto"),
		Operator:    r.str("operator", "auto"),
		MGHierarchy: r.str("mg.hierarchy", "auto"),
		MGPrecision: r.str("mg.precision", "auto"),
	}
	if r.err != nil {
		return nil, r.err
	}
	models, err := sp.build()
	if err != nil {
		var se *specError
		if errors.As(err, &se) {
			return nil, r.fieldErr(se.field, "%s", se.msg)
		}
		return nil, err
	}
	return models, nil
}

func parseInt(s string) (int, error) {
	v, err := units.ParseValue(s, units.DimNone)
	if err != nil {
		return 0, err
	}
	n := int(v)
	if float64(n) != v {
		return 0, fmt.Errorf("%q is not an integer", s)
	}
	return n, nil
}
