package deck

import (
	"strings"
	"testing"
)

func parseString(t *testing.T, src string) *Deck {
	t.Helper()
	d, err := Parse("test.ttsv", strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return d
}

func TestParseBasics(t *testing.T) {
	d := parseString(t, `My Title Line * not a comment ; not stripped
* full-line comment
b1 side=100um sink=27
V1 R=10um TL=0.5um   ; inline comment
+ lext=1um
.op model=all
.end
ignored after end
`)
	if d.Title != "My Title Line * not a comment ; not stripped" {
		t.Errorf("title = %q", d.Title)
	}
	if len(d.Cards) != 3 {
		t.Fatalf("cards = %d, want 3", len(d.Cards))
	}
	b := d.Cards[0]
	if b.Name != "b1" || len(b.Fields) != 2 {
		t.Fatalf("card 0 = %+v", b)
	}
	if b.Fields[0].Key != "side" || b.Fields[0].Value != "100um" {
		t.Errorf("b1 field 0 = %+v", b.Fields[0])
	}
	v := d.Cards[1]
	if v.Name != "v1" {
		t.Errorf("card name not lowercased: %q", v.Name)
	}
	if len(v.Fields) != 3 {
		t.Fatalf("v1 fields = %+v", v.Fields)
	}
	if v.Fields[2].Key != "lext" || v.Fields[2].Value != "1um" {
		t.Errorf("continuation field = %+v", v.Fields[2])
	}
	if v.Fields[2].Pos.Line != 5 {
		t.Errorf("continuation field line = %d, want 5", v.Fields[2].Pos.Line)
	}
	if keys := v.Fields[0].Key + v.Fields[1].Key; keys != "rtl" {
		t.Errorf("keys not lowercased: %q", keys)
	}
	if d.Cards[2].Name != ".op" || !d.Cards[2].Dot() {
		t.Errorf("analysis card = %+v", d.Cards[2])
	}
}

func TestParsePositions(t *testing.T) {
	d := parseString(t, "t\np1 tsi=1um  td=2um\n.op\n")
	c := d.Cards[0]
	if c.Pos != (Pos{2, 1}) {
		t.Errorf("card pos = %+v", c.Pos)
	}
	if c.Fields[0].Pos != (Pos{2, 4}) {
		t.Errorf("field 0 pos = %+v", c.Fields[0].Pos)
	}
	if c.Fields[1].Pos != (Pos{2, 13}) {
		t.Errorf("field 1 pos = %+v", c.Fields[1].Pos)
	}
}

func TestParsePositionalFields(t *testing.T) {
	d := parseString(t, "t\nt00 0 1 0.5w 0.25w\n.plan budget=1 tileside=1mm\n")
	c := d.Cards[0]
	if len(c.Fields) != 4 {
		t.Fatalf("fields = %+v", c.Fields)
	}
	for i, f := range c.Fields {
		if f.Key != "" {
			t.Errorf("field %d unexpectedly keyed: %+v", i, f)
		}
	}
	if c.Fields[2].Value != "0.5w" {
		t.Errorf("field 2 = %+v", c.Fields[2])
	}
}

func TestParseBlankAndWhitespaceContinuation(t *testing.T) {
	d := parseString(t, "t\n\n  \nb1 side=1um\n+   \n+ sink=27\n.op\n")
	if len(d.Cards) != 2 {
		t.Fatalf("cards = %d", len(d.Cards))
	}
	if len(d.Cards[0].Fields) != 2 {
		t.Errorf("fields = %+v", d.Cards[0].Fields)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	src := `Round trip
* comment dropped
b1 side=100um sink=27
p1 tsi=500um td=4um
+ tdev=1um
t00 0 0 0.5w
.op model=all segments=100
.end
`
	d := parseString(t, src)
	formatted := d.Format()
	d2, err := Parse("formatted.ttsv", strings.NewReader(formatted))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, formatted)
	}
	if !d.Equal(d2) {
		t.Errorf("round trip not equal:\noriginal:  %+v\nreparsed: %+v", d.Cards, d2.Cards)
	}
	if again := d2.Format(); again != formatted {
		t.Errorf("Format not idempotent:\n%q\n%q", formatted, again)
	}
}

func TestDeckEqual(t *testing.T) {
	a := parseString(t, "t\nb1 side=1um\n.op\n")
	b := parseString(t, "t\nb1 side=1um\n.op\n")
	if !a.Equal(b) {
		t.Error("identical decks not Equal")
	}
	c := parseString(t, "t\nb1 side=2um\n.op\n")
	if a.Equal(c) {
		t.Error("different decks Equal")
	}
	var nilDeck *Deck
	if a.Equal(nilDeck) || !nilDeck.Equal(nil) {
		t.Error("nil handling wrong")
	}
}
