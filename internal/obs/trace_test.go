package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
)

func decodeSpans(t *testing.T, buf *bytes.Buffer) []spanRecord {
	t.Helper()
	var out []spanRecord
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec spanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

func TestTracerParentLinks(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.Start("root")
	child := root.Child("child")
	child.Set("iterations", 27)
	child.End()
	child.End() // idempotent: must not emit twice
	root.End()

	recs := decodeSpans(t, &buf)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(recs), recs)
	}
	// Spans emit at End, so the child record comes first.
	if recs[0].Span != "child" || recs[1].Span != "root" {
		t.Fatalf("order = %q, %q", recs[0].Span, recs[1].Span)
	}
	if recs[0].Parent != recs[1].ID {
		t.Fatalf("child.parent = %d, root.id = %d", recs[0].Parent, recs[1].ID)
	}
	if recs[1].Parent != 0 {
		t.Fatalf("root has parent %d", recs[1].Parent)
	}
	if got := recs[0].Attrs["iterations"]; got != float64(27) {
		t.Fatalf("iterations attr = %v", got)
	}
	if recs[0].DurNS < 0 || recs[1].DurNS < recs[0].DurNS {
		t.Fatalf("durations inconsistent: child=%d root=%d", recs[0].DurNS, recs[1].DurNS)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
}

func TestSpanNonFiniteAttrs(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sp := tr.Start("diverged")
	sp.Set("residual", math.NaN())
	sp.Set("bound", math.Inf(1))
	sp.End()
	recs := decodeSpans(t, &buf)
	if recs[0].Attrs["residual"] != "NaN" || recs[0].Attrs["bound"] != "+Inf" {
		t.Fatalf("attrs = %v", recs[0].Attrs)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	sp.Set("k", 1)
	sp.End()
	sp.Child("y").End()
	if err := tr.Err(); err != nil {
		t.Fatalf("nil tracer err = %v", err)
	}
}

func TestTracerFirstWriteErrorSticks(t *testing.T) {
	tr := NewTracer(failWriter{})
	tr.Start("a").End()
	if tr.Err() == nil {
		t.Fatal("write error not recorded")
	}
	tr.Start("b").End() // must not panic; records are dropped
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }

func TestStartSpanContextChain(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	ctx := ContextWithTracer(context.Background(), tr)

	ctx1, outer := StartSpan(ctx, "outer")
	ctx2, inner := StartSpan(ctx1, "inner")
	if _, grand := StartSpan(ctx2, "grand"); grand != nil {
		grand.End()
	}
	inner.End()
	outer.End()

	recs := decodeSpans(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]spanRecord{}
	for _, r := range recs {
		byName[r.Span] = r
	}
	if byName["inner"].Parent != byName["outer"].ID {
		t.Fatal("inner not parented to outer")
	}
	if byName["grand"].Parent != byName["inner"].ID {
		t.Fatal("grand not parented to inner")
	}
	if byName["outer"].Parent != 0 {
		t.Fatal("outer is not a root span")
	}
}

func TestStartSpanWithoutTracer(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil {
		t.Fatal("got a span without a tracer")
	}
	if ctx2 != ctx {
		t.Fatal("context was rewrapped on the disabled path")
	}
	if ContextWithTracer(ctx, nil) != ctx {
		t.Fatal("nil tracer rewrapped the context")
	}
}

func TestServePprof(t *testing.T) {
	addr, closer, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServePprof: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET pprof index: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := closer.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The port must actually be released: the regression this guards is the
	// old unstoppable background server, which pinned its listener (and hid
	// Serve errors) for the life of the process.
	if _, err := http.Get("http://" + addr + "/debug/pprof/"); err == nil {
		t.Fatal("pprof server still serving after Close")
	}
	// Close is idempotent enough for defer chains.
	if err := closer.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
