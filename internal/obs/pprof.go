package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServePprof starts an HTTP server exposing the standard net/http/pprof
// endpoints under /debug/pprof/ on addr (e.g. "localhost:6060"; ":0" picks
// a free port) and returns the bound address. The server runs in a
// background goroutine for the life of the process — it exists for the
// CLIs' -pprof flag, profiling long sweeps and planning runs in flight.
func ServePprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // best-effort diagnostics endpoint
	return ln.Addr().String(), nil
}
