package obs

import (
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// RegisterPprof mounts the standard net/http/pprof endpoints under
// /debug/pprof/ on mux. The solve daemon uses it to expose profiling on its
// own serving mux instead of a second listener; ServePprof uses it for the
// CLIs' standalone debug server.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServePprof starts an HTTP server exposing the net/http/pprof endpoints
// under /debug/pprof/ on addr (e.g. "localhost:6060"; ":0" picks a free
// port) and returns the bound address plus a closer that shuts the server
// down and releases the port. Long-lived processes and tests must Close it;
// the CLIs' -pprof flag deliberately leaks it instead, keeping the profile
// endpoint alive for the whole run (see cliobs).
func ServePprof(addr string) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	RegisterPprof(mux)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), &pprofServer{srv: srv, done: done}, nil
}

// pprofServer closes the background pprof server. Close reports the Serve
// error if it failed for any reason other than the close itself — the old
// fire-and-forget version dropped that error on the floor. Close is
// idempotent; later calls return the first result.
type pprofServer struct {
	srv  *http.Server
	done chan error
	once sync.Once
	err  error
}

func (p *pprofServer) Close() error {
	p.once.Do(func() {
		cerr := p.srv.Close()
		// Serve returns promptly once the listener closes; the timeout only
		// keeps a wedged goroutine from wedging Close with it.
		var err error
		select {
		case err = <-p.done:
		case <-time.After(5 * time.Second):
		}
		if err == http.ErrServerClosed {
			err = nil
		}
		if err == nil {
			err = cerr
		}
		p.err = err
	})
	return p.err
}
