// Package obs is the repository's zero-dependency observability layer: a
// concurrent metrics registry (counters, gauges, fixed-bucket histograms
// with atomic hot paths), lightweight span tracing exporting NDJSON, and a
// pprof endpoint helper. The solver stack (internal/sparse, internal/mg,
// internal/fem), the batch engines (internal/sweep, internal/plan) and the
// top-level workloads record into the package default registry; ttsv.Metrics
// snapshots it and the CLIs dump it behind -metrics.
//
// Every handle type is nil-safe: methods on a nil *Registry return nil
// metrics, and methods on nil metrics are no-ops. Disabling instrumentation
// (SetDefault(nil)) therefore reduces every record site to a nil check — the
// deterministic-solve guarantees and benchmark numbers of the solver stack
// are untouched, because recording never influences control flow or
// floating-point work.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (e.g. solves performed,
// cache hits). The zero value is ready to use; a nil Counter discards adds.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move both ways (e.g. busy workers, hierarchy
// depth of the last build). The zero value reads 0; a nil Gauge discards
// updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (atomically, via compare-and-swap).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current reading.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. Bounds are the
// inclusive upper edges of each bucket; one implicit overflow bucket catches
// everything above the last bound. Observations and reads are lock-free;
// a nil Histogram discards observations.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last = overflow
	sumBits atomic.Uint64
	n       atomic.Int64
}

// NewHistogram returns a histogram over the given strictly increasing
// bucket bounds. Most callers want Registry.Histogram instead, which
// registers the histogram under a name.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n bounds growing geometrically from start by factor —
// the natural shape for iteration counts, wall times and residuals, whose
// interesting range spans decades.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry is a named collection of metrics. Metrics are created on first
// use and live for the registry's lifetime; handles may be cached by
// callers. All methods are safe for concurrent use, and every method on a
// nil *Registry returns a nil (no-op) handle, which is the disabled fast
// path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it over bounds if needed.
// An existing histogram keeps its original bounds; bounds of later calls
// are ignored, so every call site can pass its preferred layout.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Reset drops every metric. Snapshot handles taken before Reset keep
// working but are no longer reachable through the registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.histograms = make(map[string]*Histogram)
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	// Count and Sum aggregate all observations.
	Count int64
	Sum   float64
	// Bounds are the bucket upper edges; Counts has one extra overflow
	// entry for observations above the last bound.
	Bounds []float64
	Counts []int64
}

// Mean returns Sum/Count (0 for an empty histogram).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile approximates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// attributing each bucket's mass to its upper bound — a conservative
// estimate good enough for dashboards and tests.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return math.Inf(1) // overflow bucket
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of a registry, safe to read and
// serialize while recording continues.
type Snapshot struct {
	// Counters, Gauges and Histograms map metric name to frozen value.
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot freezes the registry's current state. A nil registry snapshots
// empty (non-nil) maps, so callers can index without guards.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// String renders the snapshot as sorted, one-metric-per-line text — the
// format the CLIs dump behind -metrics.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter   %-40s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge     %-40s %g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "histogram %-40s count=%d sum=%.6g mean=%.6g p50=%.3g p95=%.3g\n",
			name, h.Count, h.Sum, h.Mean(), h.Quantile(0.50), h.Quantile(0.95))
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// def is the package default registry, enabled at start. SetDefault(nil)
// disables recording globally (the nil fast path); SetDefault(NewRegistry())
// starts a fresh collection.
var def atomic.Pointer[Registry]

func init() {
	def.Store(NewRegistry())
}

// Default returns the process-wide default registry all instrumented
// packages record into, or nil when disabled via SetDefault(nil).
func Default() *Registry {
	return def.Load()
}

// SetDefault replaces the default registry. Passing nil disables recording
// globally: every instrumented site then takes its nil fast path.
func SetDefault(r *Registry) {
	def.Store(r)
}
