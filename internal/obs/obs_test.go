package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 5000, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5 (NaN must be dropped)", got)
	}
	if got := h.Sum(); got != 0.5+1+5+50+5000 {
		t.Fatalf("sum = %g", got)
	}
	s := r.Snapshot().Histograms["h"]
	wantCounts := []int64{2, 1, 1, 1} // ≤1 (0.5 and 1), ≤10, ≤100, overflow
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if q := s.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %g, want 10", q)
	}
	if q := s.Quantile(1); !math.IsInf(q, 1) {
		t.Errorf("p100 = %g, want +Inf (overflow bucket)", q)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("x")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("x", []float64{1})
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	snap := r.Snapshot()
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		t.Fatal("nil registry snapshot returned nil maps")
	}
	r.Reset() // must not panic
}

func TestSnapshotIsFrozen(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	snap := r.Snapshot()
	r.Counter("a").Add(10)
	if snap.Counters["a"] != 1 {
		t.Fatalf("snapshot moved with the registry: %d", snap.Counters["a"])
	}
	if s := snap.String(); s == "" {
		t.Fatal("empty snapshot dump")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared").Inc()
				r.Gauge("busy").Add(1)
				r.Histogram("lat", ExpBuckets(1e-6, 10, 8)).Observe(float64(i))
				r.Gauge("busy").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Gauge("busy").Value(); got != 0 {
		t.Fatalf("busy gauge = %g, want 0", got)
	}
	if got := r.Histogram("lat", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d", got)
	}
}

func TestDefaultSwap(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) did not disable")
	}
	Default().Counter("ghost").Inc() // nil fast path must not panic
	fresh := NewRegistry()
	SetDefault(fresh)
	if Default() != fresh {
		t.Fatal("SetDefault did not swap")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}
