package obs

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer emits completed spans as NDJSON: one JSON object per line, written
// atomically, so concurrent spans from a parallel sweep interleave cleanly.
// A nil Tracer is the disabled fast path — Start returns a nil span and
// every span method no-ops.
//
// Each record carries the span name, its id and parent id (0 = root), the
// start time in nanoseconds since the Unix epoch, the duration in
// nanoseconds, and the key/value attributes set on the span:
//
//	{"span":"sparse.cg","id":3,"parent":2,"start_ns":…,"dur_ns":…,"attrs":{"iterations":27}}
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	ids atomic.Int64
	err error
}

// NewTracer returns a tracer writing NDJSON records to w. The caller
// retains ownership of w (and closes it, if it is a file).
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// Err returns the first write error the tracer encountered, if any;
// recording continues dropping records after a failure rather than
// propagating errors into solver hot paths.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Start begins a root span. End must be called to emit the record.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, id: t.ids.Add(1), name: name, start: time.Now()}
}

// Span is one timed operation. Spans are created by Tracer.Start or
// Span.Child and emitted by End. A nil Span no-ops everywhere, so call
// sites need no guards.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Child begins a sub-span linked to s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, id: s.t.ids.Add(1), parent: s.id, name: name, start: time.Now()}
}

// Set attaches a key/value attribute to the span. Non-finite floats are
// stringified — the trace stays valid JSON even when a solve diverges.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	if f, ok := value.(float64); ok && (math.IsNaN(f) || math.IsInf(f, 0)) {
		value = formatFloat(f)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
}

func formatFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "+Inf"
	default:
		return "-Inf"
	}
}

// End stamps the span's duration and writes its NDJSON record. End is
// idempotent; only the first call emits.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	rec := spanRecord{
		Span:    s.name,
		ID:      s.id,
		Parent:  s.parent,
		StartNS: s.start.UnixNano(),
		DurNS:   end.Sub(s.start).Nanoseconds(),
		Attrs:   attrs,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		// Attributes of an unmarshalable type: drop them, keep the timing.
		rec.Attrs = nil
		line, err = json.Marshal(rec)
		if err != nil {
			return
		}
	}
	line = append(line, '\n')
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		if _, werr := t.w.Write(line); werr != nil {
			t.err = werr
		}
	}
}

type spanRecord struct {
	Span    string         `json:"span"`
	ID      int64          `json:"id"`
	Parent  int64          `json:"parent,omitempty"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

type tracerKey struct{}
type spanKey struct{}

// ContextWithTracer makes t the context's tracer, so StartSpan calls down
// the call chain emit spans. A nil tracer returns ctx unchanged — passing
// an unset -trace flag through costs nothing.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan begins a span under the context's current span (or as a root
// span under the context's tracer) and returns a derived context carrying
// it, so nested StartSpan calls build the parent chain. Without a tracer in
// ctx it returns (ctx, nil) — two context lookups and no allocation, the
// disabled fast path of every instrumented solve.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		sp := parent.Child(name)
		return context.WithValue(ctx, spanKey{}, sp), sp
	}
	if t := TracerFrom(ctx); t != nil {
		sp := t.Start(name)
		return context.WithValue(ctx, spanKey{}, sp), sp
	}
	return ctx, nil
}
