package serve

import (
	"math"
	"sync"
	"time"
)

// tokenBucket is the service's admission controller: requests each cost one
// token, tokens refill at a fixed rate up to a burst capacity, and a request
// arriving to an empty bucket is rejected with the time until a token frees
// up (the 429 Retry-After value). A nil bucket admits everything.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
	now    func() time.Time // injectable for tests
}

// newTokenBucket returns a bucket admitting rate requests per second with
// the given burst capacity (<= 0 selects ceil(rate), at least 1). A rate
// <= 0 disables admission control (nil bucket).
func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = int(math.Ceil(rate))
		if burst < 1 {
			burst = 1
		}
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), now: time.Now}
}

// take admits one request, or reports how long until the next token.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// refund returns an admitted request's token, capped at the burst capacity.
// Requests rejected before any solving (bad body, oversized body) give their
// token back so a stream of malformed posts cannot starve valid solves.
func (b *tokenBucket) refund() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens = math.Min(b.burst, b.tokens+1)
}
